// Quickstart: the paper's running example, end to end.
//
//   1. build the Table 1 path database,
//   2. construct a flowgraph for the whole database (Figure 3),
//   3. build the iceberg flowcube,
//   4. query the (outerwear, nike) cell (Figure 4), roll up and drill down.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/metrics.h"

#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "flowgraph/builder.h"
#include "flowgraph/render.h"
#include "gen/paper_example.h"

using namespace flowcube;

int RunExample() {
  // --- 1. The path database (paper Table 1).
  PathDatabase db = MakePaperDatabase();
  std::printf("Path database: %zu records, %zu dimensions\n\n", db.size(),
              db.schema().num_dimensions());
  for (size_t i = 0; i < db.size(); ++i) {
    std::printf("  %zu: %s\n", i + 1,
                RecordToString(db.schema(), db.record(i)).c_str());
  }

  // --- 2. A flowgraph over all paths (paper Figure 3).
  std::vector<Path> paths;
  for (const PathRecord& rec : db.records()) paths.push_back(rec.path);
  const FlowGraph graph = BuildFlowGraph(paths);
  std::printf("\nFlowgraph of the whole database (Figure 3):\n%s",
              RenderFlowGraph(graph, db.schema()).c_str());

  // --- 3. The flowcube: every cuboid of the item lattice x 4 path levels,
  // iceberg threshold 2 paths, exceptions mined with epsilon = 0.2.
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions options;
  options.min_support = 2;
  options.exceptions.min_support = 2;
  FlowCubeBuilder builder(options);
  FlowCubeBuildStats stats;
  Result<FlowCube> cube = builder.Build(db, plan, &stats);
  if (!cube.ok()) {
    std::printf("build failed: %s\n", cube.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nFlowcube built: %zu cuboids, %zu cells (%zu marked redundant), "
      "%zu exceptions\n",
      cube->num_cuboids(), cube->TotalCells(), cube->RedundantCells(),
      stats.exceptions_found);

  // --- 4. Queries.
  FlowCubeQuery query(&cube.value());
  const Result<CellRef> cell = query.Cell({"outerwear", "nike"});
  if (cell.ok()) {
    std::printf("\nCell (outerwear, nike) - %u paths (Figure 4):\n%s",
                cell->cell->support,
                RenderFlowGraph(cell->cell->graph, db.schema()).c_str());
  }

  const Result<CellRef> rolled = query.RollUp(*cell, 0);
  if (rolled.ok()) {
    std::printf("\nRoll-up along product -> %s, %u paths\n",
                cube->CellName(rolled->cell->dims).c_str(),
                rolled->cell->support);
  }

  const Result<CellRef> apex = query.Cell({"*", "*"});
  std::printf("\nTop 3 typical paths of the whole operation:\n");
  for (const TypicalPath& tp : query.TypicalPaths(*apex, 3)) {
    std::printf("  p=%.3f  %s\n", tp.probability,
                PathToString(db.schema(), tp.path).c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  flowcube::ConsumeMetricsFlag(&argc, argv);
  const int rc = RunExample();
  flowcube::DumpMetricsIfEnabled(stdout);
  return rc;
}
