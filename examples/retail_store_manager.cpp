// Store-manager analysis (the paper's Figure 1 "store view"): a synthetic
// retail operation is generated, the flowcube is built, and the analysis
// slices by product category, compares how fast categories move through
// the system, and drills into the slowest one.
//
// Build & run:  ./build/examples/retail_store_manager

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/metrics.h"

#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "flowgraph/render.h"
#include "flowgraph/stats.h"
#include "gen/path_generator.h"

using namespace flowcube;

int RunExample() {
  // A retail operation: 3 item dimensions (think product / brand /
  // supplier), 25 valid routes through 6 location groups.
  GeneratorConfig cfg;
  cfg.num_dimensions = 3;
  cfg.dim_distinct_per_level = {3, 3, 4};
  cfg.num_location_groups = 6;
  cfg.locations_per_group = 4;
  cfg.num_sequences = 25;
  cfg.seed = 2006;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(5000);
  std::printf("Generated %zu item paths (%zu bytes)\n", db.size(),
              db.ApproximateBytes());

  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions options;
  options.min_support = 50;  // 1%
  options.compute_exceptions = false;
  FlowCubeBuilder builder(options);
  FlowCubeBuildStats stats;
  Result<FlowCube> cube = builder.Build(db, plan, &stats);
  if (!cube.ok()) {
    std::printf("build failed: %s\n", cube.status().ToString().c_str());
    return 1;
  }
  std::printf("Flowcube: %zu cells across %zu cuboids (%.2fs mining, "
              "%.2fs measures)\n\n",
              cube->TotalCells(), cube->num_cuboids(), stats.seconds_mining,
              stats.seconds_redundancy + stats.seconds_measures);

  FlowCubeQuery query(&cube.value());

  // Slice the (category, *, *) cuboid: one cell per top-level category.
  const int il = cube->plan().FindItemLevel(ItemLevel{{1, 0, 0}});
  const auto categories = query.Slice(static_cast<size_t>(il), 0, 0, "d0_0");
  std::printf("Lead time by product category (dimension 0, level 1):\n");
  struct Entry {
    CellRef ref;
    double lead;
  };
  std::vector<Entry> entries;
  const Cuboid& cuboid = cube->cuboid(static_cast<size_t>(il), 0);
  cuboid.ForEach([&](const FlowCell& cell) {
    entries.push_back(
        {CellRef{&cell, static_cast<size_t>(il), 0},
         ExpectedLeadTime(cell.graph)});
  });
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.lead > b.lead; });
  for (const Entry& e : entries) {
    std::printf("  %-28s %6u paths   lead time %6.2f units\n",
                cube->CellName(e.ref.cell->dims).c_str(),
                e.ref.cell->support, e.lead);
  }
  if (entries.empty()) return 0;

  // Drill into the slowest category: which concrete products drive it?
  const CellRef& slowest = entries.front().ref;
  std::printf("\nDrill-down into the slowest category %s:\n",
              cube->CellName(slowest.cell->dims).c_str());
  for (const CellRef& child : query.DrillDown(slowest, 0)) {
    std::printf("  %-28s %6u paths   lead time %6.2f units   distance to "
                "parent %.3f\n",
                cube->CellName(child.cell->dims).c_str(),
                child.cell->support, ExpectedLeadTime(child.cell->graph),
                query.Compare(child, slowest));
  }

  // The store manager's most typical route for the slowest category.
  std::printf("\nTypical paths of %s:\n",
              cube->CellName(slowest.cell->dims).c_str());
  for (const TypicalPath& tp : query.TypicalPaths(slowest, 3)) {
    std::printf("  p=%.3f  %s\n", tp.probability,
                PathToString(db.schema(), tp.path).c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  flowcube::ConsumeMetricsFlag(&argc, argv);
  const int rc = RunExample();
  flowcube::DumpMetricsIfEnabled(stdout);
  return rc;
}
