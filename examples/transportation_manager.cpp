// Transportation-manager analysis (the paper's Figure 1 "transportation
// view" and Figure 5): the same data is viewed through a *mixed* location
// cut that keeps transportation locations at full detail while collapsing
// every other site to its group — the path-view counterpart of slicing.
//
// The example also demonstrates driving the full RFID pipeline: ground
// truth -> simulated reader stream -> cleaning -> path database.
//
// Build & run:  ./build/examples/transportation_manager

#include <cstdio>

#include "common/metrics.h"

#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "flowgraph/render.h"
#include "gen/path_generator.h"
#include "rfid/cleaner.h"
#include "rfid/reader_simulator.h"

using namespace flowcube;

int RunExample() {
  // Ground truth movements: group T0 is "transportation" (kept detailed),
  // the other groups are production/warehousing/retail sites.
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {3, 3, 3};
  cfg.num_location_groups = 4;
  cfg.locations_per_group = 4;
  cfg.num_sequences = 15;
  cfg.seed = 99;
  PathGenerator gen(cfg);
  PathDatabase truth = gen.Generate(2000);

  // --- RFID pipeline: simulate the reader stream, then clean it.
  const int64_t bin_seconds = 3600;
  ReaderSimulatorOptions sim_options;
  sim_options.read_interval_seconds = 600;
  sim_options.drop_probability = 0.03;
  sim_options.duplicate_probability = 0.10;
  ReaderSimulator simulator(sim_options, /*seed=*/7);
  const auto readings =
      simulator.Simulate(PathGenerator::ToItineraries(truth, bin_seconds));
  std::printf("Simulated %zu raw RFID readings for %zu items\n",
              readings.size(), truth.size());

  ReadingCleaner cleaner(CleanerOptions{/*max_gap_seconds=*/6000});
  const auto itineraries = cleaner.Clean(readings);
  PathDatabase db(truth.schema_ptr());
  const DurationDiscretizer discretizer(bin_seconds);
  for (const Itinerary& it : itineraries) {
    PathRecord rec;
    rec.dims = truth.record(static_cast<uint32_t>(it.epc - 1)).dims;
    rec.path = ReadingCleaner::ToPath(it, discretizer);
    if (!db.Append(std::move(rec)).ok()) {
      std::printf("cleaning produced an invalid record\n");
      return 1;
    }
  }
  std::printf("Cleaned into a path database of %zu records\n\n", db.size());

  // --- The transportation manager's path abstraction level: T0's concrete
  // locations + the other groups collapsed (Figure 5's shaded cut).
  const auto& loc = db.schema().locations;
  std::vector<NodeId> cut_nodes;
  for (NodeId child : loc.Children(loc.Find("T0").value())) {
    cut_nodes.push_back(child);
  }
  for (const char* group : {"T1", "T2", "T3"}) {
    cut_nodes.push_back(loc.Find(group).value());
  }
  Result<LocationCut> cut = LocationCut::FromNodes(loc, cut_nodes);
  if (!cut.ok()) {
    std::printf("cut construction failed: %s\n",
                cut.status().ToString().c_str());
    return 1;
  }
  std::printf("Transportation view: %s\n\n", cut->ToString(loc).c_str());

  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  plan.mining.cuts.push_back(std::move(cut.value()));
  const int cut_index = static_cast<int>(plan.mining.cuts.size()) - 1;
  plan.mining.path_levels.push_back(PathLevel{cut_index, 1});
  const int transport_level =
      static_cast<int>(plan.mining.path_levels.size()) - 1;
  plan.path_levels.push_back(transport_level);

  FlowCubeBuilderOptions options;
  options.min_support = 20;  // 1%
  options.exceptions.min_support = 20;
  options.exceptions.epsilon = 0.25;
  FlowCubeBuilder builder(options);
  Result<FlowCube> cube = builder.Build(db, plan);
  if (!cube.ok()) {
    std::printf("build failed: %s\n", cube.status().ToString().c_str());
    return 1;
  }

  FlowCubeQuery query(&cube.value());
  // The apex cell at the transportation path level.
  const size_t pl_index = cube->plan().path_levels.size() - 1;
  const Result<CellRef> apex = query.Cell({"*", "*"}, pl_index);
  if (!apex.ok()) {
    std::printf("query failed: %s\n", apex.status().ToString().c_str());
    return 1;
  }
  std::printf("Commodity flow through the transportation view:\n%s",
              RenderFlowGraph(apex->cell->graph, db.schema()).c_str());

  std::printf("\nMost common transportation routes:\n");
  for (const TypicalPath& tp : query.TypicalPaths(*apex, 5)) {
    std::printf("  p=%.3f  %s\n", tp.probability,
                PathToString(db.schema(), tp.path).c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  flowcube::ConsumeMetricsFlag(&argc, argv);
  const int rc = RunExample();
  flowcube::DumpMetricsIfEnabled(stdout);
  return rc;
}
