// Live query serving over the wire: an IncrementalMaintainer keeps a
// flowcube fresh while a QueryServer exposes it to FCQP clients over
// loopback TCP. Each maintenance batch publishes a new immutable snapshot
// epoch; clients always read a consistent cube, no matter how the
// maintainer races them.
//
//   PathGenerator -> IncrementalMaintainer -> SnapshotRegistry (epochs)
//                                                   |
//                         ServeClient <-- FCQP --> QueryServer
//
// Build & run:  ./build/examples/serve_demo

#include <cstdio>
#include <span>
#include <string>

#include "common/metrics.h"
#include "gen/path_generator.h"
#include "serve/client.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "stream/incremental_maintainer.h"

using namespace flowcube;

namespace {

void ShowResponse(const char* what, const Result<QueryResponse>& resp) {
  if (!resp.ok()) {
    std::printf("%s: transport error: %s\n", what,
                resp.status().ToString().c_str());
    return;
  }
  std::printf("-- %s (epoch %llu) --\n", what,
              static_cast<unsigned long long>(resp->epoch));
  if (resp->code != Status::Code::kOk) {
    std::printf("   server says: %s\n", resp->message.c_str());
    return;
  }
  // Indent the body so multi-line cell dumps read as one block.
  std::string line;
  for (const char c : resp->body) {
    if (c == '\n') {
      std::printf("   %s\n", line.c_str());
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) std::printf("   %s\n", line.c_str());
}

int RunExample() {
  // A small warehouse: 2 item dimensions, 6 routes, 160 tagged items.
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 3, 3};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.seed = 909090;
  PathGenerator gen(cfg);
  const PathDatabase db = gen.Generate(160);

  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  IncrementalMaintainerOptions options;
  options.build.min_support = 3;
  IncrementalMaintainer maintainer = std::move(
      IncrementalMaintainer::Create(db.schema_ptr(), plan, options).value());

  // Every ApplyRecords() below clones the cube into a new snapshot epoch;
  // the server reads whichever epoch is current when a request lands.
  SnapshotRegistry registry;
  AttachToRegistry(&maintainer, &registry);

  const std::span<const PathRecord> records(db.records());
  const size_t half = records.size() / 2;
  if (!maintainer.ApplyRecords(records.subspan(0, half)).ok()) return 1;

  QueryService service(&registry);
  Result<std::unique_ptr<QueryServer>> server = QueryServer::Start(&service);
  if (!server.ok()) {
    std::printf("server start failed: %s\n",
                server.status().ToString().c_str());
    return 1;
  }
  std::printf("FCQP server on 127.0.0.1:%u, epoch %llu (%zu paths)\n\n",
              (*server)->port(),
              static_cast<unsigned long long>(registry.current_epoch()),
              maintainer.live_record_count());

  Result<ServeClient> client = ServeClient::Connect((*server)->port());
  if (!client.ok()) return 1;

  // The dashboard's opening queries, all full wire round trips.
  QueryRequest stats;
  stats.type = RequestType::kStats;
  stats.request_id = 1;
  ShowResponse("cube stats", client->Call(stats));

  QueryRequest apex;
  apex.type = RequestType::kPointLookup;
  apex.request_id = 2;
  apex.values = {"*", "*"};
  ShowResponse("all-* cell", client->Call(apex));

  QueryRequest drill;
  drill.type = RequestType::kDrillDown;
  drill.request_id = 3;
  drill.values = {"*", "*"};
  drill.dim = 0;
  ShowResponse("drill down dim 0", client->Call(drill));

  // The second shift arrives while the connection stays up: the maintainer
  // publishes new epochs and the same client sees them on its next call.
  if (!maintainer.ApplyRecords(records.subspan(half)).ok()) return 1;
  std::printf("\napplied %zu more paths -> epoch %llu\n\n",
              records.size() - half,
              static_cast<unsigned long long>(registry.current_epoch()));

  stats.request_id = 4;
  ShowResponse("cube stats after the second shift", client->Call(stats));

  QueryRequest compare;
  compare.type = RequestType::kSimilarity;
  compare.request_id = 5;
  compare.values = {"*", "*"};
  compare.values_b = {"*", "*"};
  ShowResponse("apex self-similarity", client->Call(compare));

  (*server)->Shutdown();
  std::printf("\nserver drained and stopped; %zu snapshot epochs live\n",
              registry.live_snapshots());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flowcube::ConsumeMetricsFlag(&argc, argv);
  const int rc = RunExample();
  flowcube::DumpMetricsIfEnabled(stdout);
  return rc;
}
