// Exception discovery (the paper's motivating query 2): a quality-control
// correlation is planted in the data — items that linger at the factory's
// QC station are far more likely to end up at the returns counter — and
// the flowcube's exception mining plus the non-redundant cube surface it.
//
// Build & run:  ./build/examples/exception_discovery

#include <cstdio>

#include "common/metrics.h"
#include "common/random.h"
#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "flowgraph/render.h"
#include "gen/paper_example.h"

using namespace flowcube;

namespace {

// Builds a schema with a QC-centric location layout.
SchemaPtr MakeQcSchema() {
  auto schema = std::make_shared<PathSchema>();
  ConceptHierarchy product("product");
  (void)product.AddPath({"electronics", "audio", "headphones"});
  (void)product.AddPath({"electronics", "audio", "speakers"});
  (void)product.AddPath({"electronics", "video", "cameras"});
  schema->dimensions.push_back(std::move(product));
  ConceptHierarchy supplier("supplier");
  (void)supplier.AddPath({"domestic", "farmA"});
  (void)supplier.AddPath({"domestic", "farmB"});
  (void)supplier.AddPath({"overseas", "farmC"});
  schema->dimensions.push_back(std::move(supplier));
  (void)schema->locations.AddPath({"factory", "assembly"});
  (void)schema->locations.AddPath({"factory", "qc"});
  (void)schema->locations.AddPath({"store", "shelf"});
  (void)schema->locations.AddPath({"store", "checkout"});
  (void)schema->locations.AddPath({"store", "returns"});
  schema->durations = DurationHierarchy();
  return schema;
}

}  // namespace

int RunExample() {
  SchemaPtr schema = MakeQcSchema();
  PathDatabase db(schema);
  Random rng(17);

  const NodeId assembly = schema->locations.Find("assembly").value();
  const NodeId qc = schema->locations.Find("qc").value();
  const NodeId shelf = schema->locations.Find("shelf").value();
  const NodeId checkout = schema->locations.Find("checkout").value();
  const NodeId returns = schema->locations.Find("returns").value();

  std::vector<NodeId> products;
  for (const char* p : {"headphones", "speakers", "cameras"}) {
    products.push_back(schema->dimensions[0].Find(p).value());
  }
  std::vector<NodeId> suppliers;
  for (const char* s : {"farmA", "farmB", "farmC"}) {
    suppliers.push_back(schema->dimensions[1].Find(s).value());
  }

  // Plant the correlation: long QC stays (duration 8) quadruple the
  // probability of a post-checkout return.
  for (int i = 0; i < 4000; ++i) {
    PathRecord rec;
    rec.dims = {products[rng.Uniform(products.size())],
                suppliers[rng.Uniform(suppliers.size())]};
    const bool long_qc = rng.Bernoulli(0.3);
    const Duration qc_dur = long_qc ? 8 : 1;
    const double p_return = long_qc ? 0.60 : 0.15;
    rec.path.stages = {Stage{assembly, 2}, Stage{qc, qc_dur},
                       Stage{shelf, static_cast<Duration>(
                                        1 + rng.Uniform(3))},
                       Stage{checkout, 0}};
    if (rng.Bernoulli(p_return)) {
      rec.path.stages.push_back(Stage{returns, 0});
    }
    if (!db.Append(std::move(rec)).ok()) return 1;
  }
  std::printf("Generated %zu item histories with a planted QC correlation\n",
              db.size());

  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions options;
  options.min_support = 40;  // 1%
  options.exceptions.epsilon = 0.20;
  options.exceptions.min_support = 40;
  options.redundancy_tau = 0.03;
  FlowCubeBuilder builder(options);
  FlowCubeBuildStats stats;
  Result<FlowCube> cube = builder.Build(db, plan, &stats);
  if (!cube.ok()) {
    std::printf("build failed: %s\n", cube.status().ToString().c_str());
    return 1;
  }
  std::printf("Flowcube: %zu cells, %zu exceptions found, %zu cells "
              "redundant\n\n",
              cube->TotalCells(), stats.exceptions_found,
              cube->RedundantCells());

  // Inspect the apex cell's exceptions at the raw path level.
  FlowCubeQuery query(&cube.value());
  const Result<CellRef> apex = query.Cell({"*", "*"});
  if (!apex.ok()) return 1;
  const FlowGraph& g = apex->cell->graph;

  std::printf("Global flow:\n%s\n",
              RenderFlowGraph(g, db.schema(),
                              RenderOptions{/*durations=*/false,
                                            /*exceptions=*/false})
                  .c_str());

  std::printf("Exceptions involving the returns counter:\n");
  int shown = 0;
  for (const FlowException& e : g.exceptions()) {
    const bool about_returns =
        e.kind == FlowException::Kind::kTransition &&
        e.transition_target != FlowGraph::kTerminate &&
        g.location(e.transition_target) == returns;
    if (!about_returns) continue;
    std::printf("  %s\n", RenderException(g, db.schema(), e).c_str());
    if (++shown >= 6) break;
  }
  if (shown == 0) {
    std::printf("  (none found - try lowering epsilon)\n");
  }

  // The non-redundant cube: drop every cell whose flow matches its parents.
  const size_t before = cube->TotalCells();
  const size_t removed = cube->EraseRedundant();
  std::printf(
      "\nNon-redundant flowcube: %zu of %zu cells kept (%.1f%% saved)\n",
      before - removed, before, 100.0 * removed / before);
  return 0;
}

int main(int argc, char** argv) {
  flowcube::ConsumeMetricsFlag(&argc, argv);
  const int rc = RunExample();
  flowcube::DumpMetricsIfEnabled(stdout);
  return rc;
}
