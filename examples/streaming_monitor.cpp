// Live warehouse monitor: raw RFID readings stream in batch by batch, the
// flowcube stays queryable between batches, and the whole pipeline survives
// a simulated process restart through a checkpoint.
//
//   ReaderSimulator -> StreamIngestor -> IncrementalMaintainer -> queries
//                                |                     |
//                                +---- checkpoint -----+---- restore ----->
//
// Knobs (environment):
//   FLOWCUBE_STREAM_BATCH       raw batches the reading stream is split
//                               into (default 8)
//   FLOWCUBE_STREAM_QUEUE       ingestor queue capacity in batches
//                               (default 8)
//   FLOWCUBE_STREAM_CHECKPOINT  checkpoint file path (default
//                               flowcube_stream.fcsp in the working dir)
//
// Build & run:  ./build/examples/streaming_monitor

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "flowcube/builder.h"
#include "flowcube/dump.h"
#include "flowgraph/stats.h"
#include "gen/path_generator.h"
#include "rfid/reader_simulator.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"
#include "stream/stream_ingestor.h"

using namespace flowcube;

namespace {

constexpr int64_t kBinSeconds = 3600;

// getenv in the two helpers below is safe: both run from main() before any
// pipeline thread starts, and nothing in the process calls setenv.
size_t EnvSize(const char* name, size_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* s = std::getenv(name);
  if (s == nullptr || s[0] == '\0') return fallback;
  const long v = std::atol(s);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

std::string EnvStr(const char* name, const char* fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* s = std::getenv(name);
  return (s != nullptr && s[0] != '\0') ? s : fallback;
}

// Splits the time-sorted reading stream into contiguous batches, like a
// reader gateway that uploads on a fixed cadence.
std::vector<std::vector<RawReading>> SplitReadings(
    const std::vector<RawReading>& stream, size_t num_batches) {
  std::vector<std::vector<RawReading>> batches(std::max<size_t>(1, num_batches));
  const size_t per = (stream.size() + batches.size() - 1) / batches.size();
  for (size_t i = 0; i < stream.size(); ++i) {
    batches[std::min(i / std::max<size_t>(1, per), batches.size() - 1)]
        .push_back(stream[i]);
  }
  return batches;
}

// Folds one delta into the cube and runs the "monitor query" of the
// moment: cell count plus the busiest top-level category and its expected
// lead time.
void ApplyAndQuery(IncrementalMaintainer& maintainer, StreamDelta delta,
                   std::vector<PathRecord>* union_db) {
  ApplyStats stats;
  const Status s = maintainer.Apply(delta, &stats);
  if (!s.ok()) {
    std::printf("apply failed: %s\n", s.ToString().c_str());
    return;
  }
  union_db->insert(union_db->end(), delta.records.begin(),
                   delta.records.end());

  const FlowCube& cube = maintainer.cube();
  std::printf("  delta #%llu: +%zu paths -> %zu live, %zu cells "
              "(%zu rebuilt, %zu promoted, %zu demoted)\n",
              static_cast<unsigned long long>(delta.batch_sequence),
              stats.records_applied, maintainer.live_record_count(),
              cube.TotalCells(), stats.cells_rebuilt, stats.cells_promoted,
              stats.cells_demoted);

  // Query between batches: the busiest (category, *) cell right now.
  const int il = cube.plan().FindItemLevel(ItemLevel{{1, 0}});
  if (il >= 0) {
    const FlowCell* busiest = nullptr;
    cube.cuboid(static_cast<size_t>(il), 0).ForEach(
        [&](const FlowCell& cell) {
          if (cell.dims.empty()) return;  // skip the apex
          if (busiest == nullptr || cell.support > busiest->support) {
            busiest = &cell;
          }
        });
    if (busiest != nullptr) {
      std::printf("      busiest category: %s (%u paths, lead time "
                  "%.2f units)\n",
                  cube.CellName(busiest->dims).c_str(), busiest->support,
                  ExpectedLeadTime(busiest->graph));
    }
  }
}

// Applies every delta already sitting in the queue without blocking.
void DrainAndQuery(StreamIngestor& ingestor, IncrementalMaintainer& maintainer,
                   std::vector<PathRecord>* union_db) {
  while (std::optional<StreamDelta> delta = ingestor.TryPop()) {
    ApplyAndQuery(maintainer, std::move(*delta), union_db);
  }
}

// Blocking drain for after Close(): waits for the worker's final flush
// delta instead of racing it, stopping only at end-of-stream.
void DrainToEnd(StreamIngestor& ingestor, IncrementalMaintainer& maintainer,
                std::vector<PathRecord>* union_db) {
  while (std::optional<StreamDelta> delta = ingestor.Pop()) {
    ApplyAndQuery(maintainer, std::move(*delta), union_db);
  }
}

int RunExample() {
  const size_t num_batches = EnvSize("FLOWCUBE_STREAM_BATCH", 8);
  const size_t queue_capacity = EnvSize("FLOWCUBE_STREAM_QUEUE", 8);
  const std::string checkpoint_path =
      EnvStr("FLOWCUBE_STREAM_CHECKPOINT", "flowcube_stream.fcsp");

  // A small warehouse: 2 item dimensions, 6 routes through 3 location
  // groups; 120 tagged items move through it.
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 3, 3};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.seed = 424242;
  PathGenerator gen(cfg);
  const PathDatabase db = gen.Generate(120);
  const std::vector<Itinerary> truth =
      PathGenerator::ToItineraries(db, kBinSeconds);
  ReaderSimulator simulator(ReaderSimulatorOptions{}, /*seed=*/11);
  const std::vector<RawReading> stream = simulator.Simulate(truth);
  std::printf("Simulated %zu raw readings for %zu items, split into %zu "
              "batches\n\n",
              stream.size(), db.size(), num_batches);

  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  IncrementalMaintainerOptions maintain_options;
  maintain_options.build.min_support = 3;

  StreamIngestorOptions ingest_options;
  ingest_options.bin_seconds = kBinSeconds;
  ingest_options.close_after_seconds = 4 * kBinSeconds;
  ingest_options.queue_capacity = queue_capacity;

  std::vector<std::vector<RawReading>> batches =
      SplitReadings(stream, num_batches);
  const size_t half = batches.size() / 2;
  std::vector<PathRecord> union_db;

  // --- First half of the shift ---------------------------------------------
  auto ingestor =
      std::make_unique<StreamIngestor>(db.schema_ptr(), ingest_options);
  for (size_t i = 0; i < db.size(); ++i) {
    const Status s = ingestor->RegisterItem(static_cast<EpcId>(i + 1),
                                            db.record(i).dims);
    if (!s.ok()) {
      std::printf("register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  IncrementalMaintainer maintainer = std::move(
      IncrementalMaintainer::Create(db.schema_ptr(), plan, maintain_options)
          .value());

  std::printf("First half of the shift:\n");
  for (size_t i = 0; i < half; ++i) {
    auto batch = batches[i];
    if (!ingestor->Push(std::move(batch)).ok()) return 1;
    ingestor->Flush();
    DrainAndQuery(*ingestor, maintainer, &union_db);
  }

  // --- Checkpoint and simulated restart ------------------------------------
  ingestor->Flush();
  DrainAndQuery(*ingestor, maintainer, &union_db);
  const IngestorState snapshot = ingestor->SnapshotState();
  const Status saved = SaveCheckpoint(maintainer, &snapshot, checkpoint_path);
  if (!saved.ok()) {
    std::printf("checkpoint save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("\nCheckpointed %zu live paths + %zu open items to %s; "
              "restarting the process...\n\n",
              maintainer.live_record_count(), snapshot.open_readings.size(),
              checkpoint_path.c_str());
  ingestor.reset();  // the "crash": worker gone, in-memory state dropped

  Result<RestoredPipeline> restored =
      LoadCheckpoint(checkpoint_path, db.schema_ptr(), plan, maintain_options);
  if (!restored.ok()) {
    std::printf("restore failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }
  IncrementalMaintainer resumed = std::move(restored->maintainer);
  auto resumed_ingestor = std::make_unique<StreamIngestor>(
      db.schema_ptr(), ingest_options,
      restored->ingestor_state.value_or(IngestorState{}));

  // --- Second half of the shift, on the restored pipeline ------------------
  std::printf("Second half of the shift (restored pipeline):\n");
  for (size_t i = half; i < batches.size(); ++i) {
    auto batch = batches[i];
    if (!resumed_ingestor->Push(std::move(batch)).ok()) return 1;
    resumed_ingestor->Flush();
    DrainAndQuery(*resumed_ingestor, resumed, &union_db);
  }
  resumed_ingestor->Close();
  DrainToEnd(*resumed_ingestor, resumed, &union_db);

  // --- End of shift: verify against a from-scratch rebuild ------------------
  PathDatabase replay(db.schema_ptr());
  for (const PathRecord& rec : union_db) {
    if (!replay.Append(rec).ok()) return 1;
  }
  const FlowCubeBuilder builder(maintain_options.build);
  Result<FlowCube> rebuilt = builder.Build(replay, plan);
  if (!rebuilt.ok()) return 1;
  const bool identical =
      DumpFlowCube(resumed.cube()) == DumpFlowCube(rebuilt.value());
  std::printf("\nEnd of shift: %zu paths ingested, %zu cells live; "
              "incremental cube %s a from-scratch rebuild\n",
              union_db.size(), resumed.cube().TotalCells(),
              identical ? "byte-identical to" : "DIVERGED from");
  std::remove(checkpoint_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  flowcube::ConsumeMetricsFlag(&argc, argv);
  const int rc = RunExample();
  flowcube::DumpMetricsIfEnabled(stdout);
  return rc;
}
