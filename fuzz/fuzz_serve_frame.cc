// libFuzzer entry point for the FCQP wire decoders. The harness logic lives
// in serve_frame_harness.cc so the corpus regression test can link every
// harness into one gtest binary without colliding entry points.

#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return flowcube::FuzzServeFrame(data, size);
}
