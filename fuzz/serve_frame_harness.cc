// Fuzz harness for the FCQP wire decoders (serve/protocol.h) — the bytes a
// hostile client can put on the query server's socket. Three invariants are
// FC_CHECKed on top of "never crash":
//   1. an input accepted by DecodeFrameExact re-frames byte-identically;
//   2. an accepted request/response payload re-encodes canonically
//      (encode ∘ decode = id), and the re-encoding decodes back equal;
//   3. FrameAssembler agrees with the exact decoder no matter how the
//      input is chunked (half/half and byte-by-byte).

#include <optional>
#include <string>
#include <string_view>

#include "common/logging.h"
#include "fuzz/harness.h"
#include "serve/protocol.h"

namespace flowcube {
namespace {

// First-frame outcome for one chunking of `bytes`.
Result<std::optional<std::string>> AssembleFirst(std::string_view bytes,
                                                 size_t chunk) {
  FrameAssembler assembler;
  for (size_t i = 0; i < bytes.size(); i += chunk) {
    assembler.Append(bytes.substr(i, chunk));
  }
  if (bytes.empty()) assembler.Append(bytes);
  return assembler.Next();
}

}  // namespace

int FuzzServeFrame(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  const Result<std::string> payload = DecodeFrameExact(bytes);
  if (payload.ok()) {
    const std::string reframed = EncodeFrame(*payload);
    FC_CHECK(std::string_view(reframed) == bytes);

    const Result<QueryRequest> request = DecodeRequest(*payload);
    if (request.ok()) {
      const std::string reencoded = EncodeRequest(*request);
      FC_CHECK(reencoded == *payload);
      const Result<QueryRequest> again = DecodeRequest(reencoded);
      FC_CHECK(again.ok());
      FC_CHECK(*again == *request);
    }

    const Result<QueryResponse> response = DecodeResponse(*payload);
    if (response.ok()) {
      const std::string reencoded = EncodeResponse(*response);
      FC_CHECK(reencoded == *payload);
    }
  }

  // Chunking independence: a whole-input frame must come out of the
  // assembler identically under any delivery pattern, with nothing left
  // over; byte-by-byte only for small inputs to keep the harness fast.
  const size_t chunks[] = {size == 0 ? size_t{1} : size,
                           size / 2 == 0 ? size_t{1} : size / 2,
                           size <= 512 ? size_t{1} : size};
  for (const size_t chunk : chunks) {
    Result<std::optional<std::string>> first = AssembleFirst(bytes, chunk);
    if (payload.ok()) {
      FC_CHECK(first.ok());
      FC_CHECK(first->has_value());
      FC_CHECK(**first == *payload);
    }
  }
  return 0;
}

}  // namespace flowcube
