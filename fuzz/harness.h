#ifndef FLOWCUBE_FUZZ_HARNESS_H_
#define FLOWCUBE_FUZZ_HARNESS_H_

#include <cstddef>
#include <cstdint>

namespace flowcube {

// Fuzz harnesses for the two untrusted-bytes decode surfaces. Each takes an
// arbitrary byte buffer, must never crash / trip a sanitizer, and asserts
// the library's own round-trip invariants on inputs that decode cleanly
// (FC_CHECK failures become fuzzer crashes, so the invariants are part of
// the oracle). Both always return 0 — libFuzzer reserves nonzero.
//
// These functions are wrapped by fuzz_text_io.cc / fuzz_checkpoint.cc for
// the standalone fuzz binaries and linked directly into
// tests/fuzz_regression_test.cc to replay the checked-in corpora.

// io/text_io.h: ReadPathDatabase on an arbitrary text stream. Accepted
// inputs must re-serialize idempotently (write∘read is stable after one
// normalization pass).
int FuzzTextIo(const uint8_t* data, size_t size);

// stream/checkpoint.h: DecodeCheckpoint against a fixed schema/plan/options
// fixture. Accepted inputs must re-encode byte-identically.
int FuzzCheckpoint(const uint8_t* data, size_t size);

// store/mapped_cube.h + stream/checkpoint.h on FCSP v2 images: the
// zero-copy mapped loader (both CRC-verifying and CRC-skipping — the
// structural walk must bound-check either way) and the resume reader
// against the same fixed fixture. Accepted checkpoints must re-encode
// byte-identically; v2 files both readers accept must agree on the cube.
int FuzzFcspV2(const uint8_t* data, size_t size);

// serve/protocol.h: the FCQP frame + request/response decoders. Accepted
// frames must re-frame byte-identically, accepted requests/responses must
// re-encode canonically, and FrameAssembler must agree with the exact
// decoder regardless of how the bytes are chunked.
int FuzzServeFrame(const uint8_t* data, size_t size);

}  // namespace flowcube

#endif  // FLOWCUBE_FUZZ_HARNESS_H_
