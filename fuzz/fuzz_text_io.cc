// libFuzzer entry point for the text path-database parser. The harness
// logic lives in text_io_harness.cc so the corpus regression test can link
// both harnesses into one gtest binary without colliding entry points.

#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return flowcube::FuzzTextIo(data, size);
}
