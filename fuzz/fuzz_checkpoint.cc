// libFuzzer entry point for the FCSP checkpoint decoder. The harness logic
// lives in checkpoint_harness.cc so the corpus regression test can link
// both harnesses into one gtest binary without colliding entry points.

#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return flowcube::FuzzCheckpoint(data, size);
}
