#include "fuzz/harness.h"

#include <sstream>
#include <string>

#include "common/logging.h"
#include "common/status.h"
#include "io/text_io.h"
#include "path/path_database.h"

namespace flowcube {

int FuzzTextIo(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  std::istringstream in(input);
  Result<PathDatabase> db = ReadPathDatabase(in);
  if (!db.ok()) return 0;  // clean rejection is the common, correct path

  // Anything the parser accepts must round-trip stably: one write
  // normalizes, and read∘write is then the identity on the text form.
  std::ostringstream first;
  Status wrote = WritePathDatabase(db.value(), first);
  FC_CHECK_MSG(wrote.ok(),
               "accepted database failed to serialize: " << wrote.ToString());

  std::istringstream again(first.str());
  Result<PathDatabase> db2 = ReadPathDatabase(again);
  FC_CHECK_MSG(db2.ok(), "serialized form failed to re-parse: "
                             << db2.status().ToString());

  std::ostringstream second;
  FC_CHECK(WritePathDatabase(db2.value(), second).ok());
  FC_CHECK_MSG(first.str() == second.str(),
               "text round trip is not idempotent");
  return 0;
}

}  // namespace flowcube
