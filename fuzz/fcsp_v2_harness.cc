#include "fuzz/harness.h"

#include <memory>
#include <string>
#include <string_view>

#include "common/logging.h"
#include "common/status.h"
#include "flowcube/dump.h"
#include "gen/path_generator.h"
#include "store/mapped_cube.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

// Both v2 readers validate against the pipeline config the caller loads
// with, so the harness runs them against one fixed fixture — the same
// two-dimension schema the checkpoint harness and the seed corpus use.
struct FcspV2Fixture {
  SchemaPtr schema;
  FlowCubePlan plan;
  IncrementalMaintainerOptions options;

  FcspV2Fixture() {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.dim_distinct_per_level = {2, 2, 2};
    cfg.num_location_groups = 3;
    cfg.locations_per_group = 3;
    cfg.num_sequences = 6;
    cfg.min_sequence_length = 2;
    cfg.max_sequence_length = 5;
    cfg.seed = 909;
    PathGenerator gen(cfg);
    PathDatabase db = gen.Generate(1);
    schema = db.schema_ptr();
    Result<FlowCubePlan> made = FlowCubePlan::Default(db.schema());
    FC_CHECK(made.ok());
    plan = made.value();
    options.build.min_support = 2;
  }
};

const FcspV2Fixture& Fixture() {
  static const FcspV2Fixture* fixture = new FcspV2Fixture();
  return *fixture;
}

}  // namespace

int FuzzFcspV2(const uint8_t* data, size_t size) {
  const FcspV2Fixture& fx = Fixture();
  const auto buffer = std::make_shared<const std::string>(
      reinterpret_cast<const char*>(data), size);

  // The mapped loader on both verification settings. Skipping the CRC
  // passes drops a cheap early-reject, so the relaxed load drives mutated
  // bytes deeper into the structural walk — it must still never be driven
  // out of bounds, and it must accept a superset of what strict accepts.
  MappedCubeOptions relaxed_opts;
  relaxed_opts.verify_crc = false;
  Result<std::shared_ptr<const MappedCube>> strict =
      MappedCube::FromBuffer(buffer, fx.schema, fx.plan, fx.options);
  Result<std::shared_ptr<const MappedCube>> relaxed = MappedCube::FromBuffer(
      buffer, fx.schema, fx.plan, fx.options, relaxed_opts);
  if (strict.ok()) {
    FC_CHECK_MSG(relaxed.ok(),
                 "CRC-skipping load rejected a file the strict load accepts: "
                     << relaxed.status().message());
    FC_CHECK(DumpFlowCube(relaxed.value()->cube()) ==
             DumpFlowCube(strict.value()->cube()));
  }

  // The resume reader. Inputs it accepts must re-encode byte-identically in
  // their own format (v2 additionally enforces canonical section/column
  // layout, so decode∘encode is the identity on accepted files).
  const std::string_view bytes(*buffer);
  Result<RestoredPipeline> restored =
      DecodeCheckpoint(bytes, fx.schema, fx.plan, fx.options);
  if (restored.ok()) {
    const IngestorState* state = restored->ingestor_state.has_value()
                                     ? &*restored->ingestor_state
                                     : nullptr;
    const std::string reencoded =
        EncodeCheckpoint(restored->maintainer, state, restored->format);
    FC_CHECK_MSG(reencoded == bytes,
                 "accepted checkpoint did not re-encode byte-identically "
                 "(input " << size << " bytes, re-encoded "
                           << reencoded.size() << " bytes)");
    if (restored->format == kCheckpointFormatV2) {
      // Every pipeline-restorable v2 file is also mappable, and the two
      // readers must agree on the cube and the live record count.
      FC_CHECK_MSG(strict.ok(),
                   "mapped load rejected a v2 file DecodeCheckpoint accepts: "
                       << strict.status().message());
      FC_CHECK(DumpFlowCube(strict.value()->cube()) ==
               DumpFlowCube(restored->maintainer.cube()));
      FC_CHECK(strict.value()->live_records() ==
               restored->maintainer.live_record_count());
    }
  } else if (strict.ok()) {
    // Mappable but not restorable (cube-only files, or resume-section
    // corruption the serving path never reads): the load must at least be
    // deterministic.
    Result<std::shared_ptr<const MappedCube>> again =
        MappedCube::FromBuffer(buffer, fx.schema, fx.plan, fx.options);
    FC_CHECK(again.ok());
    FC_CHECK(DumpFlowCube(again.value()->cube()) ==
             DumpFlowCube(strict.value()->cube()));
  }
  return 0;
}

}  // namespace flowcube
