// Minimal driver for toolchains without libFuzzer (gcc): runs the fuzz
// target once over every file passed on the command line, mimicking
// libFuzzer's fixed-input replay mode (`fuzz_target corpus/*`). Linked into
// the fuzz binaries only when -fsanitize=fuzzer is unavailable; no mutation
// happens here — coverage-guided fuzzing needs the clang build.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s input-file...\n"
                 "(standalone replay driver; build with clang for "
                 "coverage-guided fuzzing)\n",
                 argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", argv[i]);
      failures++;
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::fprintf(stderr, "ran %s (%zu bytes)\n", argv[i], bytes.size());
  }
  std::fprintf(stderr, "replayed %d input(s)\n", argc - 1);
  return failures == 0 ? 0 : 1;
}
