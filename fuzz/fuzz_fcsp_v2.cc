#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return flowcube::FuzzFcspV2(data, size);
}
