#include "fuzz/harness.h"

#include <string>
#include <string_view>

#include "common/logging.h"
#include "common/status.h"
#include "flowcube/dump.h"
#include "gen/path_generator.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

// DecodeCheckpoint validates the checkpoint against the pipeline config the
// caller restored with, so the harness decodes against one fixed fixture —
// the same small two-dimension schema the checkpoint tests and the seed
// corpus use. Built once; the fuzzer then hammers the decoder with mutated
// bytes against it.
struct CheckpointFixture {
  SchemaPtr schema;
  FlowCubePlan plan;
  IncrementalMaintainerOptions options;

  CheckpointFixture() {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.dim_distinct_per_level = {2, 2, 2};
    cfg.num_location_groups = 3;
    cfg.locations_per_group = 3;
    cfg.num_sequences = 6;
    cfg.min_sequence_length = 2;
    cfg.max_sequence_length = 5;
    cfg.seed = 909;
    PathGenerator gen(cfg);
    PathDatabase db = gen.Generate(1);
    schema = db.schema_ptr();
    Result<FlowCubePlan> made = FlowCubePlan::Default(db.schema());
    FC_CHECK(made.ok());
    plan = made.value();
    options.build.min_support = 2;
  }
};

const CheckpointFixture& Fixture() {
  static const CheckpointFixture* fixture = new CheckpointFixture();
  return *fixture;
}

}  // namespace

int FuzzCheckpoint(const uint8_t* data, size_t size) {
  const CheckpointFixture& fx = Fixture();
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  Result<RestoredPipeline> restored =
      DecodeCheckpoint(bytes, fx.schema, fx.plan, fx.options);
  if (!restored.ok()) return 0;  // rejected cleanly — the common path

  // An accepted checkpoint must re-encode byte-identically *in its own
  // format*: each format has exactly one serialization of any pipeline
  // state (v2 additionally enforces canonical section/column layout).
  const IngestorState* state = restored->ingestor_state.has_value()
                                   ? &*restored->ingestor_state
                                   : nullptr;
  const std::string reencoded =
      EncodeCheckpoint(restored->maintainer, state, restored->format);
  FC_CHECK_MSG(reencoded == bytes,
               "accepted checkpoint did not re-encode byte-identically "
               "(input " << size << " bytes, re-encoded " << reencoded.size()
                         << " bytes)");

  // And restoring the re-encoding must yield the same cube.
  Result<RestoredPipeline> second =
      DecodeCheckpoint(reencoded, fx.schema, fx.plan, fx.options);
  FC_CHECK(second.ok());
  FC_CHECK(DumpFlowCube(second->maintainer.cube()) ==
           DumpFlowCube(restored->maintainer.cube()));
  return 0;
}

}  // namespace flowcube
