// Regenerates the checked-in seed corpora under fuzz/corpus/. Every seed is
// produced by the library's own writers from seeded generator configs, so
// the corpus is reproducible: same binary, same bytes.
//
//   fuzz_make_seeds <corpus-dir>   # writes <dir>/{text_io,checkpoint,serve}/
//
// The checkpoint corpus stays on the v1 wire format and fuzz/corpus/fcsp_v2
// holds the v2 images, so each grammar keeps its own seed pool.
// The checkpoint seeds use the same fixture config as checkpoint_harness.cc
// and tests/stream_checkpoint_test.cc — DecodeCheckpoint validates a config
// fingerprint, so seeds built against any other config would be rejected at
// the first branch and teach the fuzzer nothing about the payload grammar.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>

#include "common/logging.h"
#include "gen/path_generator.h"
#include "io/binary_io.h"
#include "io/text_io.h"
#include "serve/protocol.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  FC_CHECK_MSG(out.good(), "cannot open " << path.string());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FC_CHECK(out.good());
}

GeneratorConfig FixtureConfig() {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.min_sequence_length = 2;
  cfg.max_sequence_length = 5;
  cfg.seed = 909;
  return cfg;
}

void MakeTextIoSeeds(const std::filesystem::path& dir) {
  // A spread of schema shapes and record counts; plus the two degenerate
  // grammars a mutator discovers slowly on its own.
  struct Spec {
    int dims;
    int records;
    uint64_t seed;
  };
  const Spec specs[] = {{1, 1, 7}, {2, 10, 909}, {3, 25, 31}, {2, 0, 5}};
  int n = 0;
  for (const Spec& spec : specs) {
    GeneratorConfig cfg = FixtureConfig();
    cfg.num_dimensions = spec.dims;
    cfg.seed = spec.seed;
    PathGenerator gen(cfg);
    PathDatabase db = gen.Generate(spec.records);
    Status wrote = WritePathDatabaseFile(
        db, (dir / ("seed_" + std::to_string(n++) + ".txt")).string());
    FC_CHECK(wrote.ok());
  }
  WriteFile(dir / "seed_header_only.txt", "flowcube-paths v1\n");
  WriteFile(dir / "seed_empty.txt", "");
}

void MakeCheckpointSeeds(const std::filesystem::path& dir) {
  PathGenerator gen(FixtureConfig());
  PathDatabase db = gen.Generate(60);
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  FC_CHECK(plan.ok());
  IncrementalMaintainerOptions options;
  options.build.min_support = 2;

  int n = 0;
  for (size_t records : {size_t{0}, size_t{8}, size_t{40}}) {
    Result<IncrementalMaintainer> m =
        IncrementalMaintainer::Create(db.schema_ptr(), plan.value(), options);
    FC_CHECK(m.ok());
    FC_CHECK(m->ApplyRecords(std::span<const PathRecord>(db.records())
                                 .subspan(0, records))
                 .ok());
    WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcsp"),
              EncodeCheckpoint(m.value(), nullptr, kCheckpointFormatV1));
  }

  // One seed with resumable ingestor state so the optional tail section is
  // in the corpus too.
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(db.schema_ptr(), plan.value(), options);
  FC_CHECK(m.ok());
  FC_CHECK(m->ApplyRecords(std::span<const PathRecord>(db.records())
                               .subspan(0, 12))
               .ok());
  IngestorState state;
  state.registrations[7] = db.record(0).dims;
  state.registrations[9] = db.record(1).dims;
  state.open_readings[7] = {
      RawReading{7, db.record(0).path.stages[0].location, 100},
      RawReading{7, db.record(0).path.stages[0].location, 700}};
  state.watermark = 700;
  state.batches_processed = 3;
  WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcsp"),
            EncodeCheckpoint(m.value(), &state, kCheckpointFormatV1));
}

void MakeFcspV2Seeds(const std::filesystem::path& dir) {
  PathGenerator gen(FixtureConfig());
  PathDatabase db = gen.Generate(60);
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  FC_CHECK(plan.ok());
  IncrementalMaintainerOptions options;
  options.build.min_support = 2;

  int n = 0;
  std::string forty;
  for (size_t records : {size_t{0}, size_t{8}, size_t{40}}) {
    Result<IncrementalMaintainer> m =
        IncrementalMaintainer::Create(db.schema_ptr(), plan.value(), options);
    FC_CHECK(m.ok());
    FC_CHECK(m->ApplyRecords(std::span<const PathRecord>(db.records())
                                 .subspan(0, records))
                 .ok());
    forty = EncodeCheckpoint(m.value(), nullptr, kCheckpointFormatV2);
    WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcsp"), forty);
  }

  // One seed with the resumable-ingestor tail in the resume section.
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(db.schema_ptr(), plan.value(), options);
  FC_CHECK(m.ok());
  FC_CHECK(m->ApplyRecords(std::span<const PathRecord>(db.records())
                               .subspan(0, 12))
               .ok());
  IngestorState state;
  state.registrations[7] = db.record(0).dims;
  state.registrations[9] = db.record(1).dims;
  state.open_readings[7] = {
      RawReading{7, db.record(0).path.stages[0].location, 100},
      RawReading{7, db.record(0).path.stages[0].location, 700}};
  state.watermark = 700;
  state.batches_processed = 3;
  WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcsp"),
            EncodeCheckpoint(m.value(), &state, kCheckpointFormatV2));

  // A cube-only variant of the 40-record seed: resume section stripped,
  // resume header fields and live count zeroed, header CRC refreshed. The
  // mapped loader accepts it; the resume reader rejects it — keeping both
  // sides of that boundary in the corpus.
  std::string cube_only = forty;
  uint64_t resume_offset = 0;
  std::memcpy(&resume_offset, cube_only.data() + 64, sizeof resume_offset);
  FC_CHECK(resume_offset != 0 && resume_offset < cube_only.size());
  cube_only.resize(resume_offset);
  const uint64_t file_size = cube_only.size();
  std::memcpy(cube_only.data() + 16, &file_size, sizeof file_size);
  const uint64_t zero64 = 0;
  const uint32_t zero32 = 0;
  std::memcpy(cube_only.data() + 64, &zero64, sizeof zero64);  // resume off
  std::memcpy(cube_only.data() + 72, &zero64, sizeof zero64);  // resume size
  std::memcpy(cube_only.data() + 80, &zero32, sizeof zero32);  // resume crc
  std::memcpy(cube_only.data() + 88, &zero64, sizeof zero64);  // live count
  const uint32_t header_crc =
      Crc32(std::string_view(cube_only).substr(12, 96 - 12));
  std::memcpy(cube_only.data() + 8, &header_crc, sizeof header_crc);
  WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcsp"), cube_only);

  // Degenerate shapes the mutator finds slowly: a truncated header and a
  // full-size file with a foreign magic.
  WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcsp"),
            forty.substr(0, 17));
  std::string bad_magic = forty;
  bad_magic[0] = 'X';
  WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcsp"), bad_magic);
}

void MakeServeSeeds(const std::filesystem::path& dir) {
  // One framed request per type, exercising every payload field, plus a
  // framed response and an empty-payload frame (valid frame, invalid
  // request — keeps the frame/payload error boundary in the corpus).
  QueryRequest point;
  point.type = RequestType::kPointLookup;
  point.request_id = 1;
  point.values = {"d0l1v0", "d1l1v1"};
  QueryRequest ancestor;
  ancestor.type = RequestType::kCellOrAncestor;
  ancestor.request_id = 2;
  ancestor.pl_index = 1;
  ancestor.values = {"d0l2v0", "*"};
  QueryRequest drill;
  drill.type = RequestType::kDrillDown;
  drill.request_id = 3;
  drill.dim = 1;
  drill.values = {"*", "*"};
  QueryRequest similarity;
  similarity.type = RequestType::kSimilarity;
  similarity.request_id = 4;
  similarity.values = {"d0l1v0", "*"};
  similarity.values_b = {"d0l1v1", "*"};
  QueryRequest stats;
  stats.type = RequestType::kStats;
  stats.request_id = 5;

  int n = 0;
  for (const QueryRequest* req :
       {&point, &ancestor, &drill, &similarity, &stats}) {
    WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcqp"),
              EncodeFrame(EncodeRequest(*req)));
  }

  QueryResponse response;
  response.request_id = 1;
  response.epoch = 3;
  response.code = Status::Code::kNotFound;
  response.message = "cell not materialized";
  WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcqp"),
            EncodeFrame(EncodeResponse(response)));
  WriteFile(dir / ("seed_" + std::to_string(n++) + ".fcqp"), EncodeFrame(""));
}

}  // namespace
}  // namespace flowcube

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  std::filesystem::create_directories(root / "text_io");
  std::filesystem::create_directories(root / "checkpoint");
  std::filesystem::create_directories(root / "fcsp_v2");
  std::filesystem::create_directories(root / "serve");
  flowcube::MakeTextIoSeeds(root / "text_io");
  flowcube::MakeCheckpointSeeds(root / "checkpoint");
  flowcube::MakeFcspV2Seeds(root / "fcsp_v2");
  flowcube::MakeServeSeeds(root / "serve");
  std::fprintf(stderr, "seed corpora written under %s\n", argv[1]);
  return 0;
}
