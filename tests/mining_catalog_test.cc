#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "mining/item_catalog.h"
#include "mining/stage_catalog.h"

namespace flowcube {
namespace {

// --- PrefixTrie ------------------------------------------------------------------

TEST(PrefixTrie, EmptyPrefixIsRoot) {
  PrefixTrie trie;
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.depth(kEmptyPrefix), 0);
  EXPECT_EQ(trie.location(kEmptyPrefix), kInvalidNode);
  EXPECT_EQ(trie.parent(kEmptyPrefix), PrefixTrie::kInvalidPrefix);
}

TEST(PrefixTrie, InternIsIdempotent) {
  PrefixTrie trie;
  const PrefixId a = trie.Intern(kEmptyPrefix, 5);
  const PrefixId b = trie.Intern(kEmptyPrefix, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(trie.Find(kEmptyPrefix, 5), a);
  EXPECT_EQ(trie.Find(kEmptyPrefix, 6), PrefixTrie::kInvalidPrefix);
}

TEST(PrefixTrie, TracksDepthAndParent) {
  PrefixTrie trie;
  const PrefixId f = trie.Intern(kEmptyPrefix, 1);
  const PrefixId fd = trie.Intern(f, 2);
  const PrefixId fdt = trie.Intern(fd, 3);
  EXPECT_EQ(trie.depth(fdt), 3);
  EXPECT_EQ(trie.parent(fdt), fd);
  EXPECT_EQ(trie.location(fdt), 3u);
  EXPECT_EQ(trie.Locations(fdt), (std::vector<NodeId>{1, 2, 3}));
}

TEST(PrefixTrie, StrictAncestorRelation) {
  PrefixTrie trie;
  const PrefixId f = trie.Intern(kEmptyPrefix, 1);
  const PrefixId fd = trie.Intern(f, 2);
  const PrefixId fdt = trie.Intern(fd, 3);
  const PrefixId ft = trie.Intern(f, 3);  // diverging branch
  EXPECT_TRUE(trie.IsStrictAncestor(f, fd));
  EXPECT_TRUE(trie.IsStrictAncestor(f, fdt));
  EXPECT_TRUE(trie.IsStrictAncestor(kEmptyPrefix, f));
  EXPECT_FALSE(trie.IsStrictAncestor(fd, fd));      // not strict
  EXPECT_FALSE(trie.IsStrictAncestor(fdt, fd));     // wrong direction
  EXPECT_FALSE(trie.IsStrictAncestor(ft, fdt));     // diverged
  EXPECT_FALSE(trie.IsStrictAncestor(fd, ft));
}

TEST(PrefixTrie, AncestorAtDepth) {
  PrefixTrie trie;
  const PrefixId a = trie.Intern(kEmptyPrefix, 1);
  const PrefixId ab = trie.Intern(a, 2);
  const PrefixId abc = trie.Intern(ab, 3);
  EXPECT_EQ(trie.AncestorAtDepth(abc, 3), abc);
  EXPECT_EQ(trie.AncestorAtDepth(abc, 2), ab);
  EXPECT_EQ(trie.AncestorAtDepth(abc, 1), a);
  EXPECT_EQ(trie.AncestorAtDepth(abc, 0), kEmptyPrefix);
}

// --- ItemCatalog -----------------------------------------------------------------

TEST(ItemCatalog, PreInternsDimensionItems) {
  SchemaPtr schema = MakePaperSchema();
  ItemCatalog cat(schema);
  // product: clothing + shoes + outerwear + 4 leaves = 7 non-root nodes;
  // brand: premium + value + nike + adidas = 4.
  EXPECT_EQ(cat.num_dim_items(), 11u);
  EXPECT_EQ(cat.num_items(), 11u);
}

TEST(ItemCatalog, DimItemMetadata) {
  SchemaPtr schema = MakePaperSchema();
  ItemCatalog cat(schema);
  const NodeId tennis = schema->dimensions[0].Find("tennis").value();
  const ItemId id = cat.DimItem(0, tennis);
  EXPECT_TRUE(cat.IsDimItem(id));
  EXPECT_FALSE(cat.IsStageItem(id));
  EXPECT_EQ(cat.DimOf(id), 0u);
  EXPECT_EQ(cat.NodeOf(id), tennis);
  EXPECT_EQ(cat.DimLevelOf(id), 3);
  EXPECT_EQ(cat.ToString(id), "product=tennis");
}

TEST(ItemCatalog, StageItemInterningAndLookup) {
  SchemaPtr schema = MakePaperSchema();
  ItemCatalog cat(schema);
  const NodeId f = schema->locations.Find("factory").value();
  const PrefixId pf = cat.mutable_trie().Intern(kEmptyPrefix, f);

  const ItemId raw = cat.InternStageItem(0, pf, 10);
  const ItemId again = cat.InternStageItem(0, pf, 10);
  EXPECT_EQ(raw, again);
  EXPECT_TRUE(cat.IsStageItem(raw));
  EXPECT_GE(raw, cat.num_dim_items());

  const ItemId star = cat.InternStageItem(1, pf, kAnyDuration);
  EXPECT_NE(star, raw);
  EXPECT_EQ(cat.FindStageItem(0, pf, 10), raw);
  EXPECT_EQ(cat.FindStageItem(1, pf, kAnyDuration), star);
  EXPECT_EQ(cat.FindStageItem(2, pf, 10), kInvalidItem);

  const auto& info = cat.StageOf(raw);
  EXPECT_EQ(info.prefix, pf);
  EXPECT_EQ(info.duration, 10);
  EXPECT_EQ(info.path_level, 0);
}

TEST(ItemCatalog, StageItemsDistinguishedByAllKeyParts) {
  SchemaPtr schema = MakePaperSchema();
  ItemCatalog cat(schema);
  const NodeId f = schema->locations.Find("factory").value();
  const NodeId t = schema->locations.Find("truck").value();
  const PrefixId pf = cat.mutable_trie().Intern(kEmptyPrefix, f);
  const PrefixId pft = cat.mutable_trie().Intern(pf, t);

  const ItemId a = cat.InternStageItem(0, pf, 5);
  const ItemId b = cat.InternStageItem(0, pf, 6);     // other duration
  const ItemId c = cat.InternStageItem(1, pf, 5);     // other level
  const ItemId d = cat.InternStageItem(0, pft, 5);    // other prefix
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(cat.num_items(), cat.num_dim_items() + 4);
}

TEST(ItemCatalog, ToStringRendersStageItem) {
  SchemaPtr schema = MakePaperSchema();
  ItemCatalog cat(schema);
  const NodeId f = schema->locations.Find("factory").value();
  const NodeId t = schema->locations.Find("truck").value();
  const PrefixId pf = cat.mutable_trie().Intern(kEmptyPrefix, f);
  const PrefixId pft = cat.mutable_trie().Intern(pf, t);
  const ItemId id = cat.InternStageItem(2, pft, kAnyDuration);
  EXPECT_EQ(cat.ToString(id), "(factory>truck,*)@L2");
}

}  // namespace
}  // namespace flowcube
