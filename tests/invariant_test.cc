// Cross-cutting invariants of the mining / cube / flowgraph layers:
//   * iceberg anti-monotonicity — every ancestor of a frequent cell is
//     frequent with support >= the cell's (Apriori's correctness premise);
//   * flowgraph count conservation — the algebraic merge (Lemma 4.2) of a
//     partition's flowgraphs equals the graph built from the union, and
//     per-node counts always balance (path_count == terminate_count + sum
//     of children path_counts);
//   * metrics-counter consistency — the observability layer's registry
//     deltas agree with the stats structs the algorithms return, and BUC's
//     enumeration counters balance (enumerated == visited + iceberg-pruned
//     + shallow-skipped).
// Registry counters are process-global, so every metrics assertion runs
// inside a metrics ScopedEpoch, which zeroes the registry for the scope and
// folds the scope's activity back on exit — absolute assertions stay valid
// regardless of what other tests ran first, and nothing is lost from the
// process totals.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cube/cubing_miner.h"
#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "flowgraph/builder.h"
#include "flowgraph/merge.h"
#include "gen/paper_example.h"
#include "gen/path_generator.h"
#include "mining/mining_result.h"
#include "mining/shared_miner.h"
#include "mining/transform.h"
#include "path/path_view.h"

namespace flowcube {
namespace {

PathDatabase SmallWorkload(uint64_t seed, size_t n) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 3};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 8;
  cfg.min_sequence_length = 2;
  cfg.max_sequence_length = 5;
  cfg.seed = seed;
  PathGenerator gen(cfg);
  return gen.Generate(n);
}

// --- Iceberg anti-monotonicity ---------------------------------------------

// The one-level-up parent of `cell` in dimension `dim` (the item replaced
// by its hierarchy parent, or removed when the parent is the root).
Itemset ParentOf(const Itemset& cell, size_t item_index,
                 const ItemCatalog& cat, const PathSchema& schema) {
  Itemset parent = cell;
  const ItemId id = parent[item_index];
  const size_t dim = cat.DimOf(id);
  const ConceptHierarchy& h = schema.dimensions[dim];
  const NodeId up = h.Parent(cat.NodeOf(id));
  if (h.Level(up) == 0) {
    parent.erase(parent.begin() + static_cast<long>(item_index));
  } else {
    parent[item_index] = cat.DimItem(dim, up);
  }
  std::sort(parent.begin(), parent.end());
  return parent;
}

TEST(IcebergInvariant, FrequentCellAncestorsAreFrequentWithLargerSupport) {
  for (uint64_t seed : {7u, 21u, 1234u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const PathDatabase db = SmallWorkload(seed, 150);
    const MiningPlan plan = MiningPlan::Default(db.schema()).value();
    const TransformedDatabase tdb =
        std::move(TransformPathDatabase(db, plan).value());
    SharedMinerOptions opts;
    opts.min_support = 3;
    opts.num_threads = 1;
    const MiningResult result(&tdb, SharedMiner(tdb, opts).Run().frequent);
    const ItemCatalog& cat = tdb.catalog();

    size_t cells_checked = 0;
    for (const Itemset& cell : result.FrequentCells()) {
      if (cell.empty()) continue;  // the apex has no parents
      const std::optional<uint32_t> support = result.CellSupport(cell);
      ASSERT_TRUE(support.has_value());
      for (size_t i = 0; i < cell.size(); ++i) {
        const Itemset parent = ParentOf(cell, i, cat, db.schema());
        const std::optional<uint32_t> parent_support =
            result.CellSupport(parent);
        // Anti-monotonicity: the parent aggregates a superset of the
        // cell's paths, so it must be frequent too — and must have been
        // found by the miner.
        ASSERT_TRUE(parent_support.has_value())
            << "frequent cell has an unmined ancestor";
        EXPECT_GE(*parent_support, *support);
      }
      cells_checked++;
    }
    EXPECT_GT(cells_checked, 0u);
  }
}

// --- Flowgraph count conservation ------------------------------------------

// Structural equality matching children by location (child order may differ
// between a merged graph and one built directly from the union).
void ExpectSameSubtree(const FlowGraph& a, FlowNodeId na, const FlowGraph& b,
                       FlowNodeId nb) {
  EXPECT_EQ(a.path_count(na), b.path_count(nb));
  EXPECT_EQ(a.terminate_count(na), b.terminate_count(nb));
  const auto da = a.duration_counts(na);
  const auto db = b.duration_counts(nb);
  EXPECT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
  ASSERT_EQ(a.children(na).size(), b.children(nb).size());
  for (FlowNodeId ca : a.children(na)) {
    const FlowNodeId cb = b.FindChild(nb, a.location(ca));
    ASSERT_NE(cb, FlowGraph::kTerminate)
        << "merged graph has a branch the direct build lacks";
    ExpectSameSubtree(a, ca, b, cb);
  }
}

// Every path entering a node either terminates there or continues into
// exactly one child.
void ExpectCountsConserved(const FlowGraph& g, FlowNodeId n) {
  uint32_t into_children = 0;
  for (FlowNodeId c : g.children(n)) into_children += g.path_count(c);
  EXPECT_EQ(g.path_count(n), g.terminate_count(n) + into_children);
  for (FlowNodeId c : g.children(n)) ExpectCountsConserved(g, c);
}

TEST(FlowGraphInvariant, MergeConservesCountsAndEqualsDirectBuild) {
  const PathDatabase db = SmallWorkload(99, 200);
  std::vector<Path> paths;
  paths.reserve(db.size());
  for (const PathRecord& rec : db.records()) paths.push_back(rec.path);

  // Partition into three arbitrary unequal parts.
  std::vector<uint32_t> part_a, part_b, part_c;
  for (uint32_t i = 0; i < paths.size(); ++i) {
    (i % 5 == 0 ? part_a : (i % 2 == 0 ? part_b : part_c)).push_back(i);
  }
  const FlowGraph ga = BuildFlowGraph(PathView(paths, part_a));
  const FlowGraph gb = BuildFlowGraph(PathView(paths, part_b));
  const FlowGraph gc = BuildFlowGraph(PathView(paths, part_c));
  const FlowGraph* parts[] = {&ga, &gb, &gc};
  const FlowGraph merged = MergeFlowGraphs(parts);

  EXPECT_EQ(merged.total_paths(),
            ga.total_paths() + gb.total_paths() + gc.total_paths());
  EXPECT_EQ(merged.total_paths(), static_cast<uint32_t>(paths.size()));
  ExpectCountsConserved(merged, FlowGraph::kRoot);

  // Lemma 4.2: algebraic aggregation equals recomputation from the union.
  const FlowGraph direct = BuildFlowGraph(PathView(paths));
  ASSERT_EQ(merged.num_nodes(), direct.num_nodes());
  ExpectSameSubtree(merged, FlowGraph::kRoot, direct, FlowGraph::kRoot);

  // The merge result carries no exceptions (they are holistic, Lemma 4.3).
  EXPECT_TRUE(merged.exceptions().empty());
}

TEST(FlowGraphInvariant, MergeFromAccumulatesInPlace) {
  const PathDatabase db = SmallWorkload(5, 60);
  std::vector<Path> paths;
  for (const PathRecord& rec : db.records()) paths.push_back(rec.path);
  const size_t half = paths.size() / 2;

  FlowGraph acc = BuildFlowGraph(
      PathView(std::span<const Path>(paths.data(), half)));
  const FlowGraph rest = BuildFlowGraph(PathView(
      std::span<const Path>(paths.data() + half, paths.size() - half)));
  acc.MergeFrom(rest);

  const FlowGraph direct = BuildFlowGraph(PathView(paths));
  ASSERT_EQ(acc.num_nodes(), direct.num_nodes());
  ExpectSameSubtree(acc, FlowGraph::kRoot, direct, FlowGraph::kRoot);
}

// --- Compression completeness ----------------------------------------------

// The value-name coordinate of a cell: one name per dimension, "*" for
// dimensions the itemset leaves at the top level.
std::vector<std::string> CoordinateOf(const FlowCell& cell,
                                      const ItemCatalog& cat,
                                      const PathSchema& schema) {
  std::vector<std::string> values(schema.num_dimensions(), "*");
  for (const ItemId id : cell.dims) {
    const size_t dim = cat.DimOf(id);
    values[dim] = schema.dimensions[dim].Name(cat.NodeOf(id));
  }
  return values;
}

// Erasing redundant cells (Definition 4.4) is lossless by construction:
// every coordinate the full cube answered must still be answerable through
// CellOrAncestor, the ancestor's support can only grow, and the fallback
// must be deterministic. Cells that survive compression must resolve to
// themselves.
TEST(CompressionInvariant, EveryCoordinateSurvivesEraseRedundant) {
  struct Recorded {
    std::vector<std::string> values;
    uint32_t support;
    bool redundant;
  };
  for (const bool use_paper_db : {true, false}) {
    SCOPED_TRACE(use_paper_db ? "paper" : "generated");
    const PathDatabase db =
        use_paper_db ? MakePaperDatabase() : SmallWorkload(13, 200);
    const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
    FlowCubeBuilderOptions opts;
    opts.min_support = use_paper_db ? 2 : 5;
    opts.compute_exceptions = false;
    Result<FlowCube> built = FlowCubeBuilder(opts).Build(db, plan);
    ASSERT_TRUE(built.ok());
    FlowCube& cube = built.value();
    const ItemCatalog& cat = cube.catalog();

    std::vector<Recorded> recorded;
    for (size_t il = 0; il < plan.item_levels.size(); ++il) {
      cube.cuboid(il, 0).ForEach([&](const FlowCell& cell) {
        recorded.push_back({CoordinateOf(cell, cat, db.schema()),
                            cell.support, cell.redundant});
      });
    }
    ASSERT_FALSE(recorded.empty());

    const size_t erased = cube.EraseRedundant();
    if (use_paper_db) {
      EXPECT_GT(erased, 0u);
    }

    const FlowCubeQuery query(&cube);
    for (const Recorded& r : recorded) {
      SCOPED_TRACE(testing::PrintToString(r.values));
      const Result<CellRef> ref = query.CellOrAncestor(r.values);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      // The ancestor aggregates a superset of the coordinate's paths.
      EXPECT_GE(ref->cell->support, r.support);
      if (!r.redundant) {
        // Survivors answer for themselves, with their exact support.
        EXPECT_EQ(CoordinateOf(*ref->cell, cat, db.schema()), r.values);
        EXPECT_EQ(ref->cell->support, r.support);
      }
      // Deterministic fallback: asking again lands on the same cell.
      const Result<CellRef> again = query.CellOrAncestor(r.values);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->cell, ref->cell);
    }
  }
}

// --- Metrics-counter consistency -------------------------------------------

uint64_t CounterValue(const char* name) {
  return MetricRegistry::Global().counter(name).value();
}

TEST(MetricsConsistency, BucEnumerationCountersBalance) {
  const PathDatabase db = SmallWorkload(31, 150);
  const MiningPlan plan = MiningPlan::Default(db.schema()).value();
  const TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());

  const ScopedEpoch epoch;
  CubingMinerOptions opts;
  opts.min_support = 3;
  const SharedMiningOutput out = CubingMiner(db, tdb, opts).Run();
  EXPECT_FALSE(out.frequent.empty());

  EXPECT_GT(CounterValue("cube.buc.visits"), 0u);
  // Every enumerated partition is accounted for exactly once: materialized
  // as a visited cell, pruned by the iceberg condition, or skipped.
  const uint64_t enumerated = CounterValue("cube.buc.partitions_enumerated");
  EXPECT_GT(enumerated, 0u);
  EXPECT_EQ(enumerated, CounterValue("cube.buc.cells_visited") +
                            CounterValue("cube.buc.pruned_iceberg") +
                            CounterValue("cube.buc.skipped_shallow"));
}

TEST(MetricsConsistency, SharedMinerCountersMatchItsStats) {
  const PathDatabase db = SmallWorkload(47, 150);
  const MiningPlan plan = MiningPlan::Default(db.schema()).value();
  const TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());

  const ScopedEpoch epoch;
  SharedMinerOptions opts;
  opts.min_support = 3;
  opts.num_threads = 1;
  const SharedMiningOutput out = SharedMiner(tdb, opts).Run();

  EXPECT_EQ(CounterValue("mining.shared.runs"), 1u);
  EXPECT_EQ(CounterValue("mining.shared.passes"),
            static_cast<uint64_t>(out.stats.passes));
  EXPECT_EQ(CounterValue("mining.shared.candidates_counted"),
            out.stats.TotalCandidates());
  EXPECT_EQ(CounterValue("mining.shared.frequent"), out.frequent.size());
  EXPECT_EQ(CounterValue("mining.shared.transactions_scanned"),
            out.stats.passes * tdb.size());
}

TEST(MetricsConsistency, BuilderCountersMatchItsStats) {
  const PathDatabase db = MakePaperDatabase();
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();

  const ScopedEpoch epoch;
  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  opts.exceptions.min_support = 2;
  opts.num_threads = 1;
  FlowCubeBuildStats stats;
  const Result<FlowCube> cube =
      FlowCubeBuilder(opts).Build(db, plan, &stats);
  ASSERT_TRUE(cube.ok());

  EXPECT_EQ(CounterValue("flowcube.build.runs"), 1u);
  EXPECT_EQ(CounterValue("flowcube.build.paths"), db.size());
  EXPECT_EQ(CounterValue("flowcube.build.cells_materialized"),
            stats.cells_materialized);
  EXPECT_EQ(CounterValue("flowcube.build.exceptions_found"),
            stats.exceptions_found);
  EXPECT_EQ(CounterValue("flowcube.build.cells_marked_redundant"),
            stats.cells_marked_redundant);
  EXPECT_EQ(stats.cells_materialized, cube->TotalCells());
  // The phase spans cover the whole build: the timed phases can't exceed
  // the enclosing total.
  EXPECT_LE(stats.seconds_transform + stats.seconds_mining +
                stats.seconds_measures + stats.seconds_redundancy,
            stats.seconds_total + 1e-6);
}

TEST(MetricsConsistency, QueryStatsBalanceAndFallbackWalks) {
  const PathDatabase db = MakePaperDatabase();
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  opts.exceptions.min_support = 2;
  const Result<FlowCube> cube = FlowCubeBuilder(opts).Build(db, plan);
  ASSERT_TRUE(cube.ok());
  const FlowCubeQuery query(&cube.value());

  const size_t num_dims = db.schema().num_dimensions();
  const std::vector<std::string> apex(num_dims, "*");
  ASSERT_TRUE(query.Cell(apex).ok());

  // A leaf-level coordinate that exists in the hierarchy: walk up from it.
  std::vector<std::string> fine(num_dims, "*");
  fine[0] = db.schema().dimensions[0].Name(
      db.schema().dimensions[0].NodesAtLevel(
          db.schema().dimensions[0].MaxLevel())[0]);
  const Result<CellRef> fallback = query.CellOrAncestor(fine);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();

  // Unknown names surface immediately instead of walking.
  std::vector<std::string> bad(num_dims, "*");
  bad[0] = "no-such-value";
  EXPECT_FALSE(query.CellOrAncestor(bad).ok());

  const QueryStats stats = query.stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_GE(stats.hits, 2u);  // the apex hit + the fallback's final hit
}

}  // namespace
}  // namespace flowcube
