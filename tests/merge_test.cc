// Tests of algebraic flowgraph aggregation (Lemma 4.2): merging the
// flowgraphs of a partition must reproduce the flowgraph of the union
// exactly, and the flowcube query API must exploit it for roll-ups.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowcube/dump.h"
#include "flowcube/query.h"
#include "flowgraph/builder.h"
#include "flowgraph/merge.h"
#include "flowgraph/similarity.h"
#include "gen/paper_example.h"
#include "gen/path_generator.h"

namespace flowcube {
namespace {

void ExpectSameCounts(const FlowGraph& a, const FlowGraph& b,
                      FlowNodeId na = FlowGraph::kRoot,
                      FlowNodeId nb = FlowGraph::kRoot) {
  ASSERT_EQ(a.path_count(na), b.path_count(nb));
  ASSERT_EQ(a.terminate_count(na), b.terminate_count(nb));
  const auto da = a.duration_counts(na);
  const auto db = b.duration_counts(nb);
  ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
  ASSERT_EQ(a.children(na).size(), b.children(nb).size());
  for (FlowNodeId ca : a.children(na)) {
    const FlowNodeId cb = b.FindChild(nb, a.location(ca));
    ASSERT_NE(cb, FlowGraph::kTerminate);
    ExpectSameCounts(a, b, ca, cb);
  }
}

TEST(Merge, PartitionMergeEqualsDirectConstruction) {
  PathDatabase db = MakePaperDatabase();
  std::vector<Path> all;
  for (const PathRecord& r : db.records()) all.push_back(r.path);

  // Partition the paths arbitrarily into three parts.
  std::vector<Path> p1(all.begin(), all.begin() + 3);
  std::vector<Path> p2(all.begin() + 3, all.begin() + 5);
  std::vector<Path> p3(all.begin() + 5, all.end());
  const FlowGraph g1 = BuildFlowGraph(p1);
  const FlowGraph g2 = BuildFlowGraph(p2);
  const FlowGraph g3 = BuildFlowGraph(p3);

  const std::vector<const FlowGraph*> parts = {&g1, &g2, &g3};
  const FlowGraph merged = MergeFlowGraphs(parts);
  const FlowGraph direct = BuildFlowGraph(all);

  ExpectSameCounts(merged, direct);
  EXPECT_DOUBLE_EQ(FlowGraphDistance(merged, direct), 0.0);
}

TEST(Merge, MergeFromAccumulatesInPlace) {
  PathDatabase db = MakePaperDatabase();
  FlowGraph acc;
  std::vector<Path> all;
  for (const PathRecord& r : db.records()) {
    std::vector<Path> one = {r.path};
    acc.MergeFrom(BuildFlowGraph(one));
    all.push_back(r.path);
  }
  ExpectSameCounts(acc, BuildFlowGraph(all));
}

TEST(Merge, EmptyMergeIsNeutral) {
  FlowGraph empty;
  std::vector<Path> paths = {Path{{Stage{1, 2}, Stage{3, 4}}}};
  FlowGraph g = BuildFlowGraph(paths);
  g.MergeFrom(empty);
  EXPECT_EQ(g.total_paths(), 1u);
  FlowGraph g2;
  g2.MergeFrom(g);
  ExpectSameCounts(g2, g);
}

TEST(Merge, MergeDoesNotCarryExceptions) {
  std::vector<Path> paths = {Path{{Stage{1, 2}}}};
  FlowGraph g = BuildFlowGraph(paths);
  FlowException e;
  e.node = 1;
  g.AddException(e);
  FlowGraph merged;
  merged.MergeFrom(g);
  EXPECT_TRUE(merged.exceptions().empty());
}

TEST(Merge, RandomPartitionProperty) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 1;
  cfg.num_sequences = 10;
  cfg.seed = 8;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(200);
  std::vector<Path> all;
  std::vector<Path> even;
  std::vector<Path> odd;
  for (size_t i = 0; i < db.size(); ++i) {
    all.push_back(db.record(i).path);
    (i % 2 == 0 ? even : odd).push_back(db.record(i).path);
  }
  FlowGraph merged = BuildFlowGraph(even);
  merged.MergeFrom(BuildFlowGraph(odd));
  ExpectSameCounts(merged, BuildFlowGraph(all));
}

TEST(Merge, QueryMergeChildrenMatchesParent) {
  // With min_support 1 every child cell materializes, so the children
  // cover the parent exactly and the algebraic roll-up must reproduce it.
  PathDatabase db = MakePaperDatabase();
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 1;
  opts.compute_exceptions = false;
  FlowCubeBuilder builder(opts);
  Result<FlowCube> cube = builder.Build(db, plan);
  ASSERT_TRUE(cube.ok());

  FlowCubeQuery query(&cube.value());
  const Result<CellRef> shoes = query.Cell({"shoes", "nike"});
  ASSERT_TRUE(shoes.ok());
  const Result<FlowGraph> merged = query.MergeChildren(*shoes, 0);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectSameCounts(merged.value(), shoes->cell->graph);
}

// --- MergeFrom properties with sealed sources ------------------------------
// The shard coordinator merges sealed graphs decoded off the wire, so the
// algebraic properties must hold with sources in either storage form, and
// the canonical dump must not depend on merge order.

// Total count mass of a graph: every per-node counter summed. MergeFrom
// must conserve this — merging never invents or drops counts.
struct CountMass {
  uint64_t paths = 0;
  uint64_t terminates = 0;
  uint64_t durations = 0;

  friend bool operator==(const CountMass& a, const CountMass& b) = default;
  CountMass operator+(const CountMass& o) const {
    return CountMass{paths + o.paths, terminates + o.terminates,
                     durations + o.durations};
  }
};

CountMass MassOf(const FlowGraph& g) {
  CountMass m;
  for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
    m.paths += g.path_count(n);
    m.terminates += g.terminate_count(n);
    for (const DurationCount& dc : g.duration_counts(n)) {
      m.durations += dc.count;
    }
  }
  return m;
}

FlowGraph Sealed(const FlowGraph& g) {
  FlowGraph copy = g;
  copy.Seal();
  return copy;
}

std::string CanonicalDump(const FlowGraph& g) {
  return DumpFlowGraph(g.Canonical());
}

TEST(MergeProperty, SealedSourcesMergeExactlyLikeMutableOnes) {
  PathDatabase db = MakePaperDatabase();
  std::vector<Path> all;
  for (const PathRecord& r : db.records()) all.push_back(r.path);
  std::vector<Path> p1(all.begin(), all.begin() + 4);
  std::vector<Path> p2(all.begin() + 4, all.end());
  const FlowGraph g1 = BuildFlowGraph(p1);
  const FlowGraph g2 = BuildFlowGraph(p2);

  FlowGraph from_mutable;
  from_mutable.MergeFrom(g1);
  from_mutable.MergeFrom(g2);
  FlowGraph from_sealed;
  from_sealed.MergeFrom(Sealed(g1));
  from_sealed.MergeFrom(Sealed(g2));

  ExpectSameCounts(from_mutable, from_sealed);
  EXPECT_EQ(DumpFlowGraph(from_mutable), DumpFlowGraph(from_sealed));
  ExpectSameCounts(from_sealed, BuildFlowGraph(all));
}

TEST(MergeProperty, DisjointMergeConservesCountsAndNodes) {
  // Location alphabets {1,2} and {7,8} share nothing but the root, so the
  // merged tree is the two trees glued at the root.
  std::vector<Path> pa = {Path{{Stage{1, 2}, Stage{2, 3}}},
                          Path{{Stage{1, 4}}}};
  std::vector<Path> pb = {Path{{Stage{7, 1}, Stage{8, 1}}}};
  const FlowGraph a = BuildFlowGraph(pa);
  const FlowGraph b = BuildFlowGraph(pb);

  FlowGraph merged;
  merged.MergeFrom(Sealed(a));
  merged.MergeFrom(Sealed(b));
  EXPECT_EQ(merged.num_nodes(), a.num_nodes() + b.num_nodes() - 1);
  EXPECT_EQ(merged.total_paths(), a.total_paths() + b.total_paths());
  EXPECT_EQ(MassOf(merged), MassOf(a) + MassOf(b));
}

TEST(MergeProperty, OverlappingMergeConservesCountMass) {
  // Shared prefixes: counts add on shared nodes instead of duplicating
  // branches, but the total mass is still the sum.
  std::vector<Path> pa = {Path{{Stage{1, 2}, Stage{2, 3}}},
                          Path{{Stage{1, 2}, Stage{3, 1}}}};
  std::vector<Path> pb = {Path{{Stage{1, 5}, Stage{2, 3}}},
                          Path{{Stage{1, 2}}}};
  const FlowGraph a = BuildFlowGraph(pa);
  const FlowGraph b = BuildFlowGraph(pb);

  FlowGraph merged;
  merged.MergeFrom(a);
  merged.MergeFrom(Sealed(b));
  EXPECT_LT(merged.num_nodes(), a.num_nodes() + b.num_nodes() - 1);
  EXPECT_EQ(MassOf(merged), MassOf(a) + MassOf(b));

  std::vector<Path> all = pa;
  all.insert(all.end(), pb.begin(), pb.end());
  ExpectSameCounts(merged, BuildFlowGraph(all));
}

TEST(MergeProperty, EmptySealedSourceIsNeutral) {
  std::vector<Path> paths = {Path{{Stage{1, 2}, Stage{3, 4}}}};
  FlowGraph g = BuildFlowGraph(paths);
  const std::string before = CanonicalDump(g);
  FlowGraph empty;
  g.MergeFrom(Sealed(empty));
  EXPECT_EQ(CanonicalDump(g), before);
  EXPECT_EQ(MassOf(g), MassOf(BuildFlowGraph(paths)));

  // An empty destination adopts a sealed source wholesale.
  FlowGraph fresh;
  fresh.MergeFrom(Sealed(g));
  EXPECT_EQ(CanonicalDump(fresh), before);
}

TEST(MergeProperty, CanonicalDumpIsMergeOrderIndependent) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 1;
  cfg.num_sequences = 8;
  cfg.seed = 31;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(60);

  // One single-path sealed graph per record, merged under three different
  // fixed orders. Node numbering of the raw merges differs (insertion
  // order), but the canonical dump must be one string.
  std::vector<FlowGraph> parts;
  std::vector<Path> all;
  for (size_t i = 0; i < db.size(); ++i) {
    std::vector<Path> one = {db.record(i).path};
    parts.push_back(Sealed(BuildFlowGraph(one)));
    all.push_back(db.record(i).path);
  }
  std::vector<size_t> forward;
  std::vector<size_t> reverse;
  std::vector<size_t> interleaved;
  for (size_t i = 0; i < parts.size(); ++i) forward.push_back(i);
  for (size_t i = parts.size(); i-- > 0;) reverse.push_back(i);
  for (size_t i = 0; i < parts.size(); i += 2) interleaved.push_back(i);
  for (size_t i = 1; i < parts.size(); i += 2) interleaved.push_back(i);

  std::string expected;
  for (const std::vector<size_t>& order : {forward, reverse, interleaved}) {
    FlowGraph merged;
    for (size_t i : order) merged.MergeFrom(parts[i]);
    const std::string dump = CanonicalDump(merged);
    if (expected.empty()) {
      expected = dump;
    } else {
      EXPECT_EQ(dump, expected);
    }
    EXPECT_EQ(MassOf(merged), MassOf(BuildFlowGraph(all)));
  }
  // Direct accumulation canonicalizes to the same bytes as any merge.
  EXPECT_EQ(CanonicalDump(BuildFlowGraph(all)), expected);
}

TEST(Merge, QueryMergeChildrenFailsUnderIcebergPruning) {
  // With min_support 2 the (shirt, nike) child of (outerwear, nike) is
  // pruned, so the algebraic roll-up must refuse.
  PathDatabase db = MakePaperDatabase();
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  opts.compute_exceptions = false;
  FlowCubeBuilder builder(opts);
  Result<FlowCube> cube = builder.Build(db, plan);
  ASSERT_TRUE(cube.ok());

  FlowCubeQuery query(&cube.value());
  const Result<CellRef> outerwear = query.Cell({"outerwear", "nike"});
  ASSERT_TRUE(outerwear.ok());
  const Result<FlowGraph> merged = query.MergeChildren(*outerwear, 0);
  EXPECT_EQ(merged.status().code(), Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace flowcube
