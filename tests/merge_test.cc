// Tests of algebraic flowgraph aggregation (Lemma 4.2): merging the
// flowgraphs of a partition must reproduce the flowgraph of the union
// exactly, and the flowcube query API must exploit it for roll-ups.

#include <algorithm>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "flowgraph/builder.h"
#include "flowgraph/merge.h"
#include "flowgraph/similarity.h"
#include "gen/paper_example.h"
#include "gen/path_generator.h"

namespace flowcube {
namespace {

void ExpectSameCounts(const FlowGraph& a, const FlowGraph& b,
                      FlowNodeId na = FlowGraph::kRoot,
                      FlowNodeId nb = FlowGraph::kRoot) {
  ASSERT_EQ(a.path_count(na), b.path_count(nb));
  ASSERT_EQ(a.terminate_count(na), b.terminate_count(nb));
  const auto da = a.duration_counts(na);
  const auto db = b.duration_counts(nb);
  ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
  ASSERT_EQ(a.children(na).size(), b.children(nb).size());
  for (FlowNodeId ca : a.children(na)) {
    const FlowNodeId cb = b.FindChild(nb, a.location(ca));
    ASSERT_NE(cb, FlowGraph::kTerminate);
    ExpectSameCounts(a, b, ca, cb);
  }
}

TEST(Merge, PartitionMergeEqualsDirectConstruction) {
  PathDatabase db = MakePaperDatabase();
  std::vector<Path> all;
  for (const PathRecord& r : db.records()) all.push_back(r.path);

  // Partition the paths arbitrarily into three parts.
  std::vector<Path> p1(all.begin(), all.begin() + 3);
  std::vector<Path> p2(all.begin() + 3, all.begin() + 5);
  std::vector<Path> p3(all.begin() + 5, all.end());
  const FlowGraph g1 = BuildFlowGraph(p1);
  const FlowGraph g2 = BuildFlowGraph(p2);
  const FlowGraph g3 = BuildFlowGraph(p3);

  const std::vector<const FlowGraph*> parts = {&g1, &g2, &g3};
  const FlowGraph merged = MergeFlowGraphs(parts);
  const FlowGraph direct = BuildFlowGraph(all);

  ExpectSameCounts(merged, direct);
  EXPECT_DOUBLE_EQ(FlowGraphDistance(merged, direct), 0.0);
}

TEST(Merge, MergeFromAccumulatesInPlace) {
  PathDatabase db = MakePaperDatabase();
  FlowGraph acc;
  std::vector<Path> all;
  for (const PathRecord& r : db.records()) {
    std::vector<Path> one = {r.path};
    acc.MergeFrom(BuildFlowGraph(one));
    all.push_back(r.path);
  }
  ExpectSameCounts(acc, BuildFlowGraph(all));
}

TEST(Merge, EmptyMergeIsNeutral) {
  FlowGraph empty;
  std::vector<Path> paths = {Path{{Stage{1, 2}, Stage{3, 4}}}};
  FlowGraph g = BuildFlowGraph(paths);
  g.MergeFrom(empty);
  EXPECT_EQ(g.total_paths(), 1u);
  FlowGraph g2;
  g2.MergeFrom(g);
  ExpectSameCounts(g2, g);
}

TEST(Merge, MergeDoesNotCarryExceptions) {
  std::vector<Path> paths = {Path{{Stage{1, 2}}}};
  FlowGraph g = BuildFlowGraph(paths);
  FlowException e;
  e.node = 1;
  g.AddException(e);
  FlowGraph merged;
  merged.MergeFrom(g);
  EXPECT_TRUE(merged.exceptions().empty());
}

TEST(Merge, RandomPartitionProperty) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 1;
  cfg.num_sequences = 10;
  cfg.seed = 8;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(200);
  std::vector<Path> all;
  std::vector<Path> even;
  std::vector<Path> odd;
  for (size_t i = 0; i < db.size(); ++i) {
    all.push_back(db.record(i).path);
    (i % 2 == 0 ? even : odd).push_back(db.record(i).path);
  }
  FlowGraph merged = BuildFlowGraph(even);
  merged.MergeFrom(BuildFlowGraph(odd));
  ExpectSameCounts(merged, BuildFlowGraph(all));
}

TEST(Merge, QueryMergeChildrenMatchesParent) {
  // With min_support 1 every child cell materializes, so the children
  // cover the parent exactly and the algebraic roll-up must reproduce it.
  PathDatabase db = MakePaperDatabase();
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 1;
  opts.compute_exceptions = false;
  FlowCubeBuilder builder(opts);
  Result<FlowCube> cube = builder.Build(db, plan);
  ASSERT_TRUE(cube.ok());

  FlowCubeQuery query(&cube.value());
  const Result<CellRef> shoes = query.Cell({"shoes", "nike"});
  ASSERT_TRUE(shoes.ok());
  const Result<FlowGraph> merged = query.MergeChildren(*shoes, 0);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectSameCounts(merged.value(), shoes->cell->graph);
}

TEST(Merge, QueryMergeChildrenFailsUnderIcebergPruning) {
  // With min_support 2 the (shirt, nike) child of (outerwear, nike) is
  // pruned, so the algebraic roll-up must refuse.
  PathDatabase db = MakePaperDatabase();
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  opts.compute_exceptions = false;
  FlowCubeBuilder builder(opts);
  Result<FlowCube> cube = builder.Build(db, plan);
  ASSERT_TRUE(cube.ok());

  FlowCubeQuery query(&cube.value());
  const Result<CellRef> outerwear = query.Cell({"outerwear", "nike"});
  ASSERT_TRUE(outerwear.ok());
  const Result<FlowGraph> merged = query.MergeChildren(*outerwear, 0);
  EXPECT_EQ(merged.status().code(), Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace flowcube
