#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "flowgraph/builder.h"
#include "flowgraph/render.h"
#include "gen/paper_example.h"
#include "path/path_aggregator.h"

namespace flowcube {
namespace {

class FlowGraphTest : public ::testing::Test {
 protected:
  FlowGraphTest() : db_(MakePaperDatabase()) {
    for (const PathRecord& rec : db_.records()) paths_.push_back(rec.path);
    graph_ = BuildFlowGraph(paths_);
  }

  NodeId Loc(const std::string& name) const {
    return db_.schema().locations.Find(name).value();
  }

  FlowNodeId Node(const std::vector<std::string>& names) const {
    FlowNodeId cur = FlowGraph::kRoot;
    for (const auto& n : names) {
      cur = graph_.FindChild(cur, Loc(n));
      EXPECT_NE(cur, FlowGraph::kTerminate) << n;
    }
    return cur;
  }

  PathDatabase db_;
  std::vector<Path> paths_;
  FlowGraph graph_;
};

TEST_F(FlowGraphTest, CountsTotalPaths) {
  EXPECT_EQ(graph_.total_paths(), 8u);
}

TEST_F(FlowGraphTest, Figure3FactoryDistributions) {
  // Figure 3's annotation box for the factory node:
  //   duration 5 : 0.38 (3/8), 10 : 0.62 (5/8);
  //   transitions dist.center : 0.65-ish (5/8), truck : 0.35-ish (3/8),
  //   terminate : 0.
  const FlowNodeId f = Node({"factory"});
  EXPECT_EQ(graph_.path_count(f), 8u);
  EXPECT_DOUBLE_EQ(graph_.DurationProbability(f, 5), 3.0 / 8);
  EXPECT_DOUBLE_EQ(graph_.DurationProbability(f, 10), 5.0 / 8);
  EXPECT_DOUBLE_EQ(graph_.DurationProbability(f, 7), 0.0);

  const FlowNodeId fd = Node({"factory", "dist.center"});
  const FlowNodeId ft = Node({"factory", "truck"});
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(f, fd), 5.0 / 8);
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(f, ft), 3.0 / 8);
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(f, FlowGraph::kTerminate),
                   0.0);
}

TEST_F(FlowGraphTest, Figure3TruckBranch) {
  // From factory>truck (paths 4, 5, 6): shelf 2/3, warehouse 1/3.
  const FlowNodeId ft = Node({"factory", "truck"});
  EXPECT_EQ(graph_.path_count(ft), 3u);
  const FlowNodeId fts = Node({"factory", "truck", "shelf"});
  const FlowNodeId ftw = Node({"factory", "truck", "warehouse"});
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(ft, fts), 2.0 / 3);
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(ft, ftw), 1.0 / 3);
  // Warehouse is terminal in path 6.
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(ftw, FlowGraph::kTerminate),
                   1.0);
}

TEST_F(FlowGraphTest, CommonPrefixesShareBranches) {
  // Paths 1, 2, 3, 7, 8 share factory>dist.center.
  const FlowNodeId fd = Node({"factory", "dist.center"});
  EXPECT_EQ(graph_.path_count(fd), 5u);
  EXPECT_EQ(graph_.depth(fd), 2);
  EXPECT_EQ(graph_.parent(fd), Node({"factory"}));
}

TEST_F(FlowGraphTest, TerminationCountsAreConsistent) {
  // At every node: path_count == terminate_count + sum child path_counts.
  for (FlowNodeId n = 0; n < graph_.num_nodes(); ++n) {
    uint32_t child_sum = 0;
    for (FlowNodeId c : graph_.children(n)) child_sum += graph_.path_count(c);
    EXPECT_EQ(graph_.path_count(n), graph_.terminate_count(n) + child_sum);
  }
}

TEST_F(FlowGraphTest, TransitionProbabilitiesSumToOne) {
  for (FlowNodeId n = 0; n < graph_.num_nodes(); ++n) {
    if (graph_.path_count(n) == 0) continue;
    double total = graph_.TransitionProbability(n, FlowGraph::kTerminate);
    for (FlowNodeId c : graph_.children(n)) {
      total += graph_.TransitionProbability(n, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(FlowGraphTest, DurationProbabilitiesSumToOne) {
  for (FlowNodeId n = 1; n < graph_.num_nodes(); ++n) {
    double total = 0.0;
    for (const auto& [d, c] : graph_.duration_counts(n)) {
      total += graph_.DurationProbability(n, d);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(FlowGraphTest, WalkFollowsLocations) {
  EXPECT_EQ(graph_.Walk(paths_[0], 2), Node({"factory", "dist.center"}));
  EXPECT_EQ(graph_.Walk(paths_[0]),
            Node({"factory", "dist.center", "truck", "shelf", "checkout"}));
  Path unknown;
  unknown.stages = {Stage{Loc("shelf"), 1}};
  EXPECT_EQ(graph_.Walk(unknown), FlowGraph::kTerminate);
}

TEST_F(FlowGraphTest, PathProbabilityOfObservedPath) {
  // Path 6: (f,10)(t,1)(w,5):
  //   P = P(f)*P(10|f) * P(t|f)*P(1|t) * P(w|t)*P(5|w) * P(term|w)
  //     = 1 * 5/8 * 3/8 * 2/3 * 1/3 * 1 * 1 = 5/96... with durations:
  const double p = graph_.PathProbability(paths_[5]);
  const double expected = 1.0 * (5.0 / 8) * (3.0 / 8) * (2.0 / 3) *
                          (1.0 / 3) * 1.0 * 1.0;
  EXPECT_NEAR(p, expected, 1e-12);
  // A path that leaves the tree has probability 0.
  Path off;
  off.stages = {Stage{Loc("checkout"), 1}};
  EXPECT_DOUBLE_EQ(graph_.PathProbability(off), 0.0);
}

TEST_F(FlowGraphTest, AggregatedCellGraphMatchesFigure4) {
  // Figure 4: flowgraph for cell (outerwear, nike) — paths 4, 5, 6:
  // factory -> truck (1.0); truck -> shelf (0.67) / warehouse (0.33);
  // shelf -> checkout (1.0).
  std::vector<Path> cell_paths = {paths_[3], paths_[4], paths_[5]};
  const FlowGraph g = BuildFlowGraph(cell_paths);
  const FlowNodeId f = g.FindChild(FlowGraph::kRoot, Loc("factory"));
  const FlowNodeId ft = g.FindChild(f, Loc("truck"));
  ASSERT_NE(ft, FlowGraph::kTerminate);
  EXPECT_DOUBLE_EQ(g.TransitionProbability(f, ft), 1.0);
  const FlowNodeId fts = g.FindChild(ft, Loc("shelf"));
  const FlowNodeId ftw = g.FindChild(ft, Loc("warehouse"));
  EXPECT_NEAR(g.TransitionProbability(ft, fts), 2.0 / 3, 1e-9);
  EXPECT_NEAR(g.TransitionProbability(ft, ftw), 1.0 / 3, 1e-9);
  const FlowNodeId ftsc = g.FindChild(fts, Loc("checkout"));
  EXPECT_DOUBLE_EQ(g.TransitionProbability(fts, ftsc), 1.0);
}

TEST_F(FlowGraphTest, RenderContainsStructure) {
  RenderOptions opts;
  const std::string text = RenderFlowGraph(graph_, db_.schema(), opts);
  EXPECT_NE(text.find("flowgraph over 8 paths"), std::string::npos);
  EXPECT_NE(text.find("factory"), std::string::npos);
  EXPECT_NE(text.find("dist.center p=0.62"), std::string::npos);
  EXPECT_NE(text.find("dur{"), std::string::npos);
  EXPECT_NE(text.find("(terminate)"), std::string::npos);
}

// --- Sealed columnar form ---------------------------------------------------

// Every accessor must return the same values before and after Seal(): node
// ids, child order, duration order, counts, and the derived probabilities.
void ExpectSameGraph(const FlowGraph& a, const FlowGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.total_paths(), b.total_paths());
  for (FlowNodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.location(n), b.location(n));
    EXPECT_EQ(a.parent(n), b.parent(n));
    EXPECT_EQ(a.depth(n), b.depth(n));
    EXPECT_EQ(a.path_count(n), b.path_count(n));
    EXPECT_EQ(a.terminate_count(n), b.terminate_count(n));
    const auto ca = a.children(n);
    const auto cb = b.children(n);
    ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()));
    const auto da = a.duration_counts(n);
    const auto db = b.duration_counts(n);
    ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
  }
}

class FlowGraphSealTest : public FlowGraphTest {};

TEST_F(FlowGraphSealTest, SealPreservesEveryAccessor) {
  FlowGraph sealed = BuildFlowGraph(paths_);
  sealed.Seal();
  ASSERT_TRUE(sealed.sealed());
  ASSERT_FALSE(graph_.sealed());
  ExpectSameGraph(graph_, sealed);
  // Derived quantities are bit-identical too (same counts, same arithmetic).
  for (const Path& p : paths_) {
    EXPECT_EQ(graph_.Walk(p), sealed.Walk(p));
    EXPECT_DOUBLE_EQ(graph_.PathProbability(p), sealed.PathProbability(p));
  }
  const FlowNodeId f = Node({"factory"});
  EXPECT_EQ(sealed.FindChild(FlowGraph::kRoot, Loc("factory")), f);
  EXPECT_DOUBLE_EQ(sealed.DurationProbability(f, 5), 3.0 / 8);
  EXPECT_DOUBLE_EQ(sealed.DurationProbability(f, 11), 0.0);
}

TEST_F(FlowGraphSealTest, SealIsIdempotent) {
  FlowGraph sealed = BuildFlowGraph(paths_);
  sealed.Seal();
  sealed.Seal();
  ExpectSameGraph(graph_, sealed);
}

TEST_F(FlowGraphSealTest, SealNeverGrowsMemory) {
  FlowGraph g = BuildFlowGraph(paths_);
  const size_t mutable_bytes = g.MemoryUsage();
  g.Seal();
  const size_t sealed_bytes = g.MemoryUsage();
  EXPECT_GT(sealed_bytes, sizeof(FlowGraph));
  // The columnar form drops per-node vector headers and heap slack; it may
  // tie on degenerate graphs but must never cost more.
  EXPECT_LE(sealed_bytes, mutable_bytes);
}

TEST_F(FlowGraphSealTest, SealedGraphIsAValidMergeSource) {
  FlowGraph sealed = BuildFlowGraph(paths_);
  sealed.Seal();
  FlowGraph acc;
  acc.MergeFrom(sealed);
  EXPECT_FALSE(acc.sealed());
  // MergeFrom assigns node ids in its own traversal order, so compare
  // structurally: same per-path model, same size, same totals.
  ASSERT_EQ(acc.num_nodes(), graph_.num_nodes());
  EXPECT_EQ(acc.total_paths(), graph_.total_paths());
  for (const Path& p : paths_) {
    EXPECT_DOUBLE_EQ(acc.PathProbability(p), graph_.PathProbability(p));
  }
}

TEST_F(FlowGraphSealTest, MutationAfterSealAborts) {
  FlowGraph sealed = BuildFlowGraph(paths_);
  sealed.Seal();
  EXPECT_DEATH(sealed.AddPath(paths_[0]), "sealed");
  EXPECT_DEATH(sealed.MergeFrom(graph_), "sealed");
}

TEST(FlowGraphSealEdge, EmptyGraphSeals) {
  FlowGraph g;
  g.Seal();
  EXPECT_TRUE(g.sealed());
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.total_paths(), 0u);
  EXPECT_TRUE(g.children(FlowGraph::kRoot).empty());
  EXPECT_TRUE(g.duration_counts(FlowGraph::kRoot).empty());
}

TEST(FlowGraphEdge, EmptyGraphHasOnlyRoot) {
  FlowGraph g;
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.total_paths(), 0u);
}

TEST(FlowGraphEdge, SinglePath) {
  FlowGraph g;
  Path p;
  p.stages = {Stage{3, 1}, Stage{5, 2}};
  g.AddPath(p);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_DOUBLE_EQ(g.PathProbability(p), 1.0);
}

TEST(FlowGraphEdge, ExceptionStorage) {
  FlowGraph g;
  Path p;
  p.stages = {Stage{3, 1}};
  g.AddPath(p);
  FlowException e;
  e.kind = FlowException::Kind::kDuration;
  e.node = 1;
  e.duration_value = 1;
  g.AddException(e);
  ASSERT_EQ(g.exceptions().size(), 1u);
  EXPECT_EQ(g.exceptions()[0].node, 1u);
}

}  // namespace
}  // namespace flowcube
