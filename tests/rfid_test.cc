#include <gtest/gtest.h>

#include "gen/path_generator.h"
#include "rfid/cleaner.h"
#include "rfid/discretizer.h"
#include "rfid/reader_simulator.h"

namespace flowcube {
namespace {

// --- DurationHierarchy ---------------------------------------------------------

TEST(DurationHierarchy, DefaultHasTwoLevels) {
  DurationHierarchy h;
  EXPECT_EQ(h.MaxLevel(), 1);
  EXPECT_EQ(h.Aggregate(7, 1), 7);
  EXPECT_EQ(h.Aggregate(7, 0), kAnyDuration);
}

TEST(DurationHierarchy, FactorsBucketCorrectly) {
  // hour -> day -> week.
  DurationHierarchy h({24, 7});
  EXPECT_EQ(h.MaxLevel(), 3);
  EXPECT_EQ(h.Aggregate(50, 3), 50);       // hours
  EXPECT_EQ(h.Aggregate(50, 2), 2);        // days
  EXPECT_EQ(h.Aggregate(50, 1), 0);        // weeks
  EXPECT_EQ(h.Aggregate(24 * 7 * 3, 1), 3);
  EXPECT_EQ(h.Aggregate(50, 0), kAnyDuration);
}

TEST(DurationHierarchy, AnyDurationStaysAny) {
  DurationHierarchy h({10});
  EXPECT_EQ(h.Aggregate(kAnyDuration, 2), kAnyDuration);
  EXPECT_EQ(h.Aggregate(kAnyDuration, 1), kAnyDuration);
}

TEST(DurationHierarchy, ToStringRendersStar) {
  DurationHierarchy h;
  EXPECT_EQ(h.ToString(5), "5");
  EXPECT_EQ(h.ToString(kAnyDuration), "*");
}

TEST(DurationDiscretizer, BinsBySeconds) {
  DurationDiscretizer d(3600);
  EXPECT_EQ(d.Discretize(0), 0);
  EXPECT_EQ(d.Discretize(3599), 0);
  EXPECT_EQ(d.Discretize(3600), 1);
  EXPECT_EQ(d.Discretize(7201), 2);
  EXPECT_EQ(d.Discretize(-5), 0);  // clamped
}

// --- ReaderSimulator -------------------------------------------------------------

ConceptHierarchy TwoLocations() {
  ConceptHierarchy h("location");
  EXPECT_TRUE(h.AddPath({"site", "a"}).ok());
  EXPECT_TRUE(h.AddPath({"site", "b"}).ok());
  return h;
}

TEST(ReaderSimulator, EmitsReadingsWithinStayWindows) {
  ConceptHierarchy loc = TwoLocations();
  const NodeId a = loc.Find("a").value();
  Itinerary it;
  it.epc = 42;
  it.stays = {Stay{a, 1000, 5000}};
  ReaderSimulator sim(ReaderSimulatorOptions{}, /*seed=*/1);
  const auto readings = sim.Simulate({it});
  ASSERT_FALSE(readings.empty());
  for (const RawReading& r : readings) {
    EXPECT_EQ(r.epc, 42u);
    EXPECT_EQ(r.location, a);
    EXPECT_GE(r.timestamp, 1000);
    EXPECT_LE(r.timestamp, 5000);
  }
}

TEST(ReaderSimulator, LongStayYieldsManyReadings) {
  ConceptHierarchy loc = TwoLocations();
  Itinerary it;
  it.epc = 1;
  it.stays = {Stay{loc.Find("a").value(), 0, 600 * 200}};
  ReaderSimulatorOptions opts;
  opts.read_interval_seconds = 600;
  ReaderSimulator sim(opts, 2);
  const auto readings = sim.Simulate({it});
  // ~200 scan cycles, some dropped, some duplicated.
  EXPECT_GT(readings.size(), 150u);
}

TEST(ReaderSimulator, EveryStayProducesAtLeastOneReadingEvenWithFullDrops) {
  ConceptHierarchy loc = TwoLocations();
  Itinerary it;
  it.epc = 9;
  it.stays = {Stay{loc.Find("a").value(), 0, 100},
              Stay{loc.Find("b").value(), 200, 300}};
  ReaderSimulatorOptions opts;
  opts.drop_probability = 1.0;  // drop everything scheduled
  ReaderSimulator sim(opts, 3);
  const auto readings = sim.Simulate({it});
  EXPECT_EQ(readings.size(), 2u);  // one fallback reading per stay
}

TEST(ReaderSimulator, OutputSortedByTimestamp) {
  ConceptHierarchy loc = TwoLocations();
  std::vector<Itinerary> its;
  for (int i = 0; i < 5; ++i) {
    Itinerary it;
    it.epc = static_cast<EpcId>(i);
    it.stays = {Stay{loc.Find("a").value(), i * 100, i * 100 + 5000},
                Stay{loc.Find("b").value(), i * 100 + 5001, i * 100 + 9000}};
    its.push_back(it);
  }
  ReaderSimulator sim(ReaderSimulatorOptions{}, 4);
  const auto readings = sim.Simulate(its);
  for (size_t i = 1; i < readings.size(); ++i) {
    EXPECT_LE(readings[i - 1].timestamp, readings[i].timestamp);
  }
}

// --- ReadingCleaner -------------------------------------------------------------

TEST(ReadingCleaner, MergesSameLocationRuns) {
  ConceptHierarchy loc = TwoLocations();
  const NodeId a = loc.Find("a").value();
  const NodeId b = loc.Find("b").value();
  std::vector<RawReading> readings = {
      {1, a, 100}, {1, a, 200}, {1, a, 300}, {1, b, 400}, {1, b, 500},
  };
  ReadingCleaner cleaner(CleanerOptions{});
  const auto its = cleaner.Clean(readings);
  ASSERT_EQ(its.size(), 1u);
  ASSERT_EQ(its[0].stays.size(), 2u);
  EXPECT_EQ(its[0].stays[0], (Stay{a, 100, 300}));
  EXPECT_EQ(its[0].stays[1], (Stay{b, 400, 500}));
}

TEST(ReadingCleaner, GapSplitsRevisits) {
  ConceptHierarchy loc = TwoLocations();
  const NodeId a = loc.Find("a").value();
  CleanerOptions opts;
  opts.max_gap_seconds = 100;
  ReadingCleaner cleaner(opts);
  const auto its = cleaner.Clean({{1, a, 0}, {1, a, 50}, {1, a, 500}});
  ASSERT_EQ(its.size(), 1u);
  ASSERT_EQ(its[0].stays.size(), 2u);  // revisit after a 450s silence
}

TEST(ReadingCleaner, HandlesUnsortedAndDuplicateReadings) {
  ConceptHierarchy loc = TwoLocations();
  const NodeId a = loc.Find("a").value();
  const NodeId b = loc.Find("b").value();
  ReadingCleaner cleaner(CleanerOptions{});
  const auto its =
      cleaner.Clean({{1, b, 900}, {1, a, 100}, {1, a, 100}, {1, a, 400}});
  ASSERT_EQ(its.size(), 1u);
  ASSERT_EQ(its[0].stays.size(), 2u);
  EXPECT_EQ(its[0].stays[0].location, a);
  EXPECT_EQ(its[0].stays[1].location, b);
}

TEST(ReadingCleaner, SeparatesItemsByEpc) {
  ConceptHierarchy loc = TwoLocations();
  const NodeId a = loc.Find("a").value();
  ReadingCleaner cleaner(CleanerOptions{});
  const auto its = cleaner.Clean({{1, a, 100}, {2, a, 100}, {3, a, 100}});
  EXPECT_EQ(its.size(), 3u);
}

TEST(ReadingCleaner, ToPathDiscretizesStayLengths) {
  ConceptHierarchy loc = TwoLocations();
  const NodeId a = loc.Find("a").value();
  const NodeId b = loc.Find("b").value();
  Itinerary it;
  it.epc = 1;
  it.stays = {Stay{a, 0, 7200}, Stay{b, 7300, 7400}};
  const Path p = ReadingCleaner::ToPath(it, DurationDiscretizer(3600));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.stages[0], (Stage{a, 2}));
  EXPECT_EQ(p.stages[1], (Stage{b, 0}));
}

// --- Full pipeline property: simulate -> clean recovers ground truth ------------

class PipelineRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineRoundTrip, CleanedPathsMatchGroundTruth) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.num_sequences = 10;
  cfg.seed = GetParam();
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(50);
  const int64_t bin = 3600;
  const auto itineraries = PathGenerator::ToItineraries(db, bin);

  ReaderSimulatorOptions sim_opts;
  sim_opts.read_interval_seconds = 600;
  sim_opts.timestamp_jitter_seconds = 0;  // keep endpoints exact
  sim_opts.drop_probability = 0.02;
  ReaderSimulator sim(sim_opts, GetParam() + 1);
  const auto readings = sim.Simulate(itineraries);

  // The gap tolerance must cover a run of dropped scan cycles: with a 2%
  // drop rate, runs of up to ~5 consecutive drops occur over thousands of
  // readings.
  ReadingCleaner cleaner(CleanerOptions{/*max_gap_seconds=*/6000});
  const auto cleaned = cleaner.Clean(readings);
  ASSERT_EQ(cleaned.size(), db.size());

  const DurationDiscretizer disc(bin);
  size_t exact_locations = 0;
  for (size_t i = 0; i < cleaned.size(); ++i) {
    // EPC i+1 is record i.
    const size_t rec = static_cast<size_t>(cleaned[i].epc) - 1;
    const Path p = ReadingCleaner::ToPath(cleaned[i], disc);
    ASSERT_EQ(p.size(), db.record(rec).path.size());
    bool all_match = true;
    for (size_t s = 0; s < p.size(); ++s) {
      if (p.stages[s].location != db.record(rec).path.stages[s].location) {
        all_match = false;
      }
    }
    if (all_match) exact_locations++;
  }
  // Location sequences must always be recovered (no stay is fully silent).
  EXPECT_EQ(exact_locations, cleaned.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRoundTrip,
                         ::testing::Values(1u, 7u, 2026u));

}  // namespace
}  // namespace flowcube
