#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mining/apriori.h"

namespace flowcube {
namespace {

std::vector<std::span<const ItemId>> Spans(
    const std::vector<std::vector<ItemId>>& txns) {
  std::vector<std::span<const ItemId>> out;
  out.reserve(txns.size());
  for (const auto& t : txns) out.emplace_back(t.data(), t.size());
  return out;
}

// Brute force: count every subset of every transaction (bounded lengths).
std::map<Itemset, uint32_t> BruteForceFrequent(
    const std::vector<std::vector<ItemId>>& txns, uint32_t minsup,
    size_t max_len) {
  std::map<Itemset, uint32_t> counts;
  for (const auto& txn : txns) {
    // Enumerate subsets up to max_len via recursion.
    Itemset cur;
    std::function<void(size_t)> rec = [&](size_t start) {
      if (!cur.empty()) counts[cur]++;
      if (cur.size() == max_len) return;
      for (size_t i = start; i < txn.size(); ++i) {
        cur.push_back(txn[i]);
        rec(i + 1);
        cur.pop_back();
      }
    };
    rec(0);
  }
  std::map<Itemset, uint32_t> frequent;
  for (const auto& [items, c] : counts) {
    if (c >= minsup) frequent[items] = c;
  }
  return frequent;
}

// --- CandidateCounter -------------------------------------------------------------

TEST(CandidateCounter, CountsPairs) {
  CandidateCounter counter;
  const size_t ab = counter.Add({1, 2});
  const size_t ac = counter.Add({1, 3});
  counter.Finalize();
  const std::vector<ItemId> t1 = {1, 2, 3};
  const std::vector<ItemId> t2 = {1, 2};
  const std::vector<ItemId> t3 = {2, 3};
  counter.CountTransaction(t1);
  counter.CountTransaction(t2);
  counter.CountTransaction(t3);
  EXPECT_EQ(counter.count(ab), 2u);
  EXPECT_EQ(counter.count(ac), 1u);
}

TEST(CandidateCounter, CountsLongerItemsets) {
  CandidateCounter counter;
  const size_t abc = counter.Add({1, 2, 3});
  const size_t abd = counter.Add({1, 2, 4});
  const size_t abcde = counter.Add({1, 2, 3, 4, 5});
  counter.Finalize();
  const std::vector<ItemId> full = {1, 2, 3, 4, 5};
  const std::vector<ItemId> part = {1, 2, 3, 5};
  counter.CountTransaction(full);
  counter.CountTransaction(part);
  EXPECT_EQ(counter.count(abc), 2u);
  EXPECT_EQ(counter.count(abd), 1u);
  EXPECT_EQ(counter.count(abcde), 1u);
}

TEST(CandidateCounter, MixedLengthsInOnePass) {
  CandidateCounter counter;
  const size_t pair = counter.Add({1, 5});
  const size_t triple = counter.Add({1, 5, 9});
  counter.Finalize();
  const std::vector<ItemId> t = {1, 3, 5, 9};
  counter.CountTransaction(t);
  EXPECT_EQ(counter.count(pair), 1u);
  EXPECT_EQ(counter.count(triple), 1u);
}

TEST(CandidateCounter, IgnoresIrrelevantItems) {
  CandidateCounter counter;
  const size_t c = counter.Add({100, 200});
  counter.Finalize();
  std::vector<ItemId> t;
  for (ItemId i = 0; i < 50; ++i) t.push_back(i);
  t.push_back(100);
  t.push_back(200);
  counter.CountTransaction(t);
  EXPECT_EQ(counter.count(c), 1u);
}

TEST(CandidateCounter, ClearResets) {
  CandidateCounter counter;
  counter.Add({1, 2});
  counter.Finalize();
  counter.Clear();
  EXPECT_EQ(counter.size(), 0u);
  counter.Add({3, 4});
  counter.Finalize();
  EXPECT_EQ(counter.size(), 1u);
}

// --- AprioriJoin ------------------------------------------------------------------

TEST(AprioriJoin, JoinsSingletonsIntoAllPairs) {
  const auto out = AprioriJoin({{1}, {2}, {3}});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Itemset{1, 2}));
  EXPECT_EQ(out[1], (Itemset{1, 3}));
  EXPECT_EQ(out[2], (Itemset{2, 3}));
}

TEST(AprioriJoin, JoinsOnSharedPrefix) {
  const auto out = AprioriJoin({{1, 2}, {1, 3}, {2, 3}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Itemset{1, 2, 3}));
}

TEST(AprioriJoin, EmptyInput) { EXPECT_TRUE(AprioriJoin({}).empty()); }

TEST(AllSubsetsFrequent, DetectsMissingSubset) {
  std::unordered_set<Itemset, ItemsetHash> frequent = {{1, 2}, {1, 3}};
  EXPECT_FALSE(AllSubsetsFrequent({1, 2, 3}, frequent));
  frequent.insert({2, 3});
  EXPECT_TRUE(AllSubsetsFrequent({1, 2, 3}, frequent));
}

// --- Apriori ----------------------------------------------------------------------

TEST(Apriori, ClassicTextbookExample) {
  const std::vector<std::vector<ItemId>> txns = {
      {1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}};
  Apriori apriori(AprioriOptions{2, nullptr});
  const auto result = apriori.Mine(Spans(txns));
  std::map<Itemset, uint32_t> got;
  for (const auto& fi : result) got[fi.items] = fi.support;
  // The classic Agrawal-Srikant example result.
  EXPECT_EQ(got.at({1}), 2u);
  EXPECT_EQ(got.at({2}), 3u);
  EXPECT_EQ(got.at({3}), 3u);
  EXPECT_EQ(got.at({5}), 3u);
  EXPECT_EQ(got.at({1, 3}), 2u);
  EXPECT_EQ(got.at({2, 3}), 2u);
  EXPECT_EQ(got.at({2, 5}), 3u);
  EXPECT_EQ(got.at({3, 5}), 2u);
  EXPECT_EQ(got.at({2, 3, 5}), 2u);
  EXPECT_EQ(got.size(), 9u);
  EXPECT_FALSE(got.contains({4}));
}

TEST(Apriori, CandidateFilterPrunes) {
  const std::vector<std::vector<ItemId>> txns = {{1, 2}, {1, 2}, {1, 2}};
  AprioriOptions opts;
  opts.min_support = 2;
  opts.candidate_filter = [](const Itemset&) { return false; };
  Apriori apriori(opts);
  const auto result = apriori.Mine(Spans(txns));
  // Only singletons survive: every longer candidate is filtered.
  for (const auto& fi : result) EXPECT_EQ(fi.items.size(), 1u);
}

TEST(Apriori, StatsTrackCandidatesAndPasses) {
  const std::vector<std::vector<ItemId>> txns = {
      {1, 2, 3}, {1, 2, 3}, {1, 2, 3}};
  Apriori apriori(AprioriOptions{3, nullptr});
  apriori.Mine(Spans(txns));
  const MiningStats& stats = apriori.stats();
  EXPECT_GE(stats.passes, 3);
  ASSERT_GT(stats.candidates_per_length.size(), 3u);
  EXPECT_EQ(stats.candidates_per_length[2], 3u);
  EXPECT_EQ(stats.candidates_per_length[3], 1u);
  EXPECT_EQ(stats.frequent_per_length[3], 1u);
  EXPECT_EQ(stats.TotalCandidates(),
            stats.candidates_per_length[1] + 3 + 1);
}

TEST(MiningStats, MergeAccumulates) {
  MiningStats a;
  a.candidates_per_length = {0, 5, 3};
  a.frequent_per_length = {0, 4, 1};
  a.passes = 2;
  MiningStats b;
  b.candidates_per_length = {0, 1, 2, 7};
  b.frequent_per_length = {0, 1, 0, 2};
  b.passes = 3;
  a.Merge(b);
  EXPECT_EQ(a.candidates_per_length, (std::vector<uint64_t>{0, 6, 5, 7}));
  EXPECT_EQ(a.frequent_per_length, (std::vector<uint64_t>{0, 5, 1, 2}));
  EXPECT_EQ(a.passes, 5);
  EXPECT_EQ(a.TotalFrequent(), 8u);
}

// Property test: Apriori output equals brute force over random databases.
class AprioriBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AprioriBruteForce, MatchesBruteForceEnumeration) {
  Random rng(GetParam());
  std::vector<std::vector<ItemId>> txns(40);
  for (auto& t : txns) {
    std::set<ItemId> items;
    const size_t len = 1 + rng.Uniform(6);
    for (size_t i = 0; i < len; ++i) {
      items.insert(static_cast<ItemId>(rng.Uniform(12)));
    }
    t.assign(items.begin(), items.end());
  }
  const uint32_t minsup = 3;
  Apriori apriori(AprioriOptions{minsup, nullptr});
  const auto result = apriori.Mine(Spans(txns));
  std::map<Itemset, uint32_t> got;
  for (const auto& fi : result) got[fi.items] = fi.support;

  const auto want = BruteForceFrequent(txns, minsup, 7);
  EXPECT_EQ(got.size(), want.size());
  for (const auto& [items, support] : want) {
    ASSERT_TRUE(got.contains(items));
    EXPECT_EQ(got.at(items), support);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriBruteForce,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

}  // namespace
}  // namespace flowcube
