// Unit tests of the streaming subsystem: the bounded backpressure queue
// (including cross-thread behavior, exercised under tsan), the
// StreamIngestor's watermark/closing/resume semantics, the per-item cleaner
// entry point it uses, the IncrementalMaintainer's promote/demote logic,
// and the metrics::ScopedEpoch isolation helper the stream tests rely on
// for asserting absolute counter values.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "flowcube/dump.h"
#include "gen/path_generator.h"
#include "path/path.h"
#include "rfid/cleaner.h"
#include "rfid/reader_simulator.h"
#include "stream/bounded_queue.h"
#include "stream/incremental_maintainer.h"
#include "stream/stream_ingestor.h"

namespace flowcube {
namespace {

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueueTest, PushPopOrdering) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99)) << "queue at capacity must refuse TryPush";
  for (int i = 0; i < 4; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3)) << "push after close must fail";
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value()) << "closed and drained";
  q.Close();  // idempotent
}

TEST(BoundedQueueTest, BackpressureAcrossThreads) {
  // Small capacity forces the producer to block; every element must arrive
  // exactly once and in order.
  BoundedQueue<int> q(2);
  constexpr int kItems = 2000;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
    q.Close();
  });
  int expected = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, expected);
    expected++;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());
    popped = true;
  });
  // Give the consumer a chance to block, then close.
  while (q.size() != 0) {
  }
  q.Close();
  consumer.join();
  EXPECT_TRUE(popped);
}

// --- ScopedEpoch ------------------------------------------------------------

TEST(ScopedEpochTest, CountersAreIsolatedAndFoldedBack) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& c = reg.counter("test.epoch.counter");
  c.Add(7);
  const uint64_t outside = c.value();
  {
    ScopedEpoch epoch;
    EXPECT_EQ(c.value(), 0u) << "epoch must zero pre-existing counters";
    c.Add(5);
    EXPECT_EQ(c.value(), 5u);
  }
  EXPECT_EQ(c.value(), outside + 5) << "scope activity folds into the total";
}

TEST(ScopedEpochTest, GaugesKeepLatestWriter) {
  MetricRegistry& reg = MetricRegistry::Global();
  Gauge& touched = reg.gauge("test.epoch.gauge_touched");
  Gauge& untouched = reg.gauge("test.epoch.gauge_untouched");
  touched.Set(11);
  untouched.Set(22);
  {
    ScopedEpoch epoch;
    EXPECT_EQ(touched.value(), 0);
    EXPECT_EQ(untouched.value(), 0);
    touched.Set(33);
  }
  EXPECT_EQ(touched.value(), 33) << "a gauge set inside the scope wins";
  EXPECT_EQ(untouched.value(), 22) << "an untouched gauge is restored";
}

TEST(ScopedEpochTest, HistogramsFoldBack) {
  MetricRegistry& reg = MetricRegistry::Global();
  Histogram& h = reg.histogram("test.epoch.histogram");
  h.Record(1.0);
  h.Record(3.0);
  {
    ScopedEpoch epoch;
    EXPECT_EQ(h.snapshot().count, 0u);
    h.Record(100.0);
    EXPECT_EQ(h.snapshot().count, 1u);
    EXPECT_EQ(h.snapshot().min, 100.0);
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_EQ(s.sum, 104.0);
}

TEST(ScopedEpochTest, EpochsNest) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& c = reg.counter("test.epoch.nested");
  c.Add(1);
  const uint64_t outside = c.value();
  {
    ScopedEpoch outer;
    c.Add(10);
    {
      ScopedEpoch inner;
      EXPECT_EQ(c.value(), 0u);
      c.Add(100);
    }
    EXPECT_EQ(c.value(), 110u);
  }
  EXPECT_EQ(c.value(), outside + 110);
}

TEST(ScopedEpochTest, InstrumentsBornInsideTheScopeSurvive) {
  std::string name = "test.epoch.born_inside." +
                     std::to_string(::testing::UnitTest::GetInstance()
                                        ->random_seed());
  {
    ScopedEpoch epoch;
    MetricRegistry::Global().counter(name).Add(4);
  }
  EXPECT_EQ(MetricRegistry::Global().counter(name).value(), 4u);
}

// --- ReadingCleaner::CleanItem ---------------------------------------------

TEST(CleanItemTest, MatchesBatchCleanPerItem) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.seed = 77;
  PathGenerator gen(cfg);
  const PathDatabase db = gen.Generate(30);
  const int64_t kBin = 3600;
  const std::vector<Itinerary> truth =
      PathGenerator::ToItineraries(db, kBin);
  ReaderSimulator simulator(ReaderSimulatorOptions{}, /*seed=*/5);
  const std::vector<RawReading> stream = simulator.Simulate(truth);

  const ReadingCleaner cleaner(CleanerOptions{});
  const std::vector<Itinerary> batch = cleaner.Clean(stream);
  ASSERT_EQ(batch.size(), truth.size());

  for (const Itinerary& expected : batch) {
    std::vector<RawReading> mine;
    for (const RawReading& r : stream) {
      if (r.epc == expected.epc) mine.push_back(r);
    }
    const Itinerary single = cleaner.CleanItem(expected.epc, std::move(mine));
    EXPECT_EQ(single.epc, expected.epc);
    EXPECT_EQ(single.stays, expected.stays);
  }
}

// --- StreamIngestor ---------------------------------------------------------

struct CollectedDelta {
  uint64_t sequence;
  std::vector<PathRecord> records;
};

std::vector<CollectedDelta> DrainAll(StreamIngestor& ingestor) {
  std::vector<CollectedDelta> out;
  while (auto delta = ingestor.Pop()) {
    out.push_back({delta->batch_sequence, std::move(delta->records)});
  }
  return out;
}

std::string RecordsToString(const PathSchema& schema,
                            const std::vector<CollectedDelta>& deltas) {
  std::string out;
  for (const CollectedDelta& d : deltas) {
    out += "batch " + std::to_string(d.sequence) + "\n";
    for (const PathRecord& rec : d.records) {
      out += RecordToString(schema, rec) + "\n";
    }
  }
  return out;
}

class StreamIngestorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.seed = 4242;
    PathGenerator gen(cfg);
    db_ = std::make_unique<PathDatabase>(gen.Generate(40));
    truth_ = PathGenerator::ToItineraries(*db_, kBin);
    ReaderSimulator simulator(ReaderSimulatorOptions{}, /*seed=*/9);
    stream_ = simulator.Simulate(truth_);
  }

  StreamIngestorOptions Options() const {
    StreamIngestorOptions options;
    options.bin_seconds = kBin;
    options.close_after_seconds = 4 * kBin;
    return options;
  }

  void RegisterAll(StreamIngestor& ingestor) const {
    for (size_t i = 0; i < db_->size(); ++i) {
      const EpcId epc = static_cast<EpcId>(i + 1);
      ASSERT_TRUE(
          ingestor.RegisterItem(epc, db_->record(i).dims).ok());
    }
  }

  // Splits the time-sorted stream into `num_batches` contiguous batches.
  std::vector<std::vector<RawReading>> Batches(size_t num_batches) const {
    std::vector<std::vector<RawReading>> batches(num_batches);
    const size_t per = (stream_.size() + num_batches - 1) / num_batches;
    for (size_t i = 0; i < stream_.size(); ++i) {
      batches[std::min(i / per, num_batches - 1)].push_back(stream_[i]);
    }
    return batches;
  }

  static constexpr int64_t kBin = 3600;
  std::unique_ptr<PathDatabase> db_;
  std::vector<Itinerary> truth_;
  std::vector<RawReading> stream_;
};

TEST_F(StreamIngestorTest, EmitsEveryRegisteredItemExactlyOnce) {
  StreamIngestor ingestor(db_->schema_ptr(), Options());
  RegisterAll(ingestor);
  for (auto& batch : Batches(8)) {
    ASSERT_TRUE(ingestor.Push(std::move(batch)).ok());
  }
  ingestor.Close();
  const std::vector<CollectedDelta> deltas = DrainAll(ingestor);

  size_t total = 0;
  for (const CollectedDelta& d : deltas) total += d.records.size();
  EXPECT_EQ(total, db_->size());
}

TEST_F(StreamIngestorTest, DeltaStreamIsDeterministic) {
  const auto run = [&] {
    StreamIngestor ingestor(db_->schema_ptr(), Options());
    RegisterAll(ingestor);
    for (auto& batch : Batches(8)) {
      EXPECT_TRUE(ingestor.Push(std::move(batch)).ok());
    }
    ingestor.Close();
    return RecordsToString(db_->schema(), DrainAll(ingestor));
  };
  EXPECT_EQ(run(), run());
}

TEST_F(StreamIngestorTest, WatermarkClosesSilentItemsBeforeClose) {
  StreamIngestor ingestor(db_->schema_ptr(), Options());
  RegisterAll(ingestor);
  const auto batches = Batches(8);
  for (size_t i = 0; i + 1 < batches.size(); ++i) {
    auto copy = batches[i];
    ASSERT_TRUE(ingestor.Push(std::move(copy)).ok());
  }
  ingestor.Flush();
  // Most items finish their stays well before the last batch; the watermark
  // horizon must have closed at least one of them without Close().
  size_t closed_early = 0;
  while (auto delta = ingestor.TryPop()) closed_early += delta->records.size();
  EXPECT_GT(closed_early, 0u);
  ingestor.Close();
}

TEST_F(StreamIngestorTest, UnregisteredItemsAreDroppedAndCounted) {
  ScopedEpoch epoch;
  StreamIngestor ingestor(db_->schema_ptr(), Options());
  // No registrations at all: every reading is dropped at close time.
  std::vector<RawReading> batch = stream_;
  ASSERT_TRUE(ingestor.Push(std::move(batch)).ok());
  ingestor.Close();
  EXPECT_TRUE(DrainAll(ingestor).empty());
  EXPECT_EQ(
      MetricRegistry::Global().counter("stream.ingest.readings_dropped")
          .value(),
      stream_.size());
  EXPECT_EQ(
      MetricRegistry::Global().counter("stream.ingest.paths_emitted").value(),
      0u);
}

TEST_F(StreamIngestorTest, PushAfterCloseFails) {
  StreamIngestor ingestor(db_->schema_ptr(), Options());
  ingestor.Close();
  const Status s = ingestor.Push({});
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition);
}

TEST_F(StreamIngestorTest, RegisterRejectsBadDims) {
  StreamIngestor ingestor(db_->schema_ptr(), Options());
  EXPECT_FALSE(ingestor.RegisterItem(1, {}).ok());
  std::vector<NodeId> out_of_range(db_->schema().num_dimensions(),
                                   static_cast<NodeId>(1 << 30));
  EXPECT_FALSE(ingestor.RegisterItem(1, out_of_range).ok());
}

TEST_F(StreamIngestorTest, ResumeFromSnapshotContinuesTheStream) {
  const auto batches = Batches(8);

  // Uninterrupted reference run.
  std::vector<CollectedDelta> reference;
  {
    StreamIngestor ingestor(db_->schema_ptr(), Options());
    RegisterAll(ingestor);
    for (const auto& batch : batches) {
      auto copy = batch;
      ASSERT_TRUE(ingestor.Push(std::move(copy)).ok());
    }
    ingestor.Close();
    reference = DrainAll(ingestor);
  }

  // Same input with a snapshot/restore after the first half.
  std::vector<CollectedDelta> resumed;
  IngestorState snapshot;
  {
    StreamIngestor first(db_->schema_ptr(), Options());
    RegisterAll(first);
    for (size_t i = 0; i < batches.size() / 2; ++i) {
      auto copy = batches[i];
      ASSERT_TRUE(first.Push(std::move(copy)).ok());
    }
    first.Flush();
    while (auto delta = first.TryPop()) {
      resumed.push_back({delta->batch_sequence, std::move(delta->records)});
    }
    snapshot = first.SnapshotState();
    first.Close();
    // Deltas drained before the snapshot stay drained; the final flush of
    // `first` is intentionally ignored — the restored ingestor owns those
    // items now.
    while (first.Pop().has_value()) {
    }
  }
  {
    StreamIngestor second(db_->schema_ptr(), Options(), std::move(snapshot));
    for (size_t i = batches.size() / 2; i < batches.size(); ++i) {
      auto copy = batches[i];
      ASSERT_TRUE(second.Push(std::move(copy)).ok());
    }
    second.Close();
    for (CollectedDelta& d : DrainAll(second)) resumed.push_back(std::move(d));
  }

  EXPECT_EQ(RecordsToString(db_->schema(), reference),
            RecordsToString(db_->schema(), resumed));
}

// --- IncrementalMaintainer --------------------------------------------------

class MaintainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.dim_distinct_per_level = {2, 2, 2};
    cfg.seed = 303;
    PathGenerator gen(cfg);
    db_ = std::make_unique<PathDatabase>(gen.Generate(60));
    Result<FlowCubePlan> plan = FlowCubePlan::Default(db_->schema());
    ASSERT_TRUE(plan.ok());
    plan_ = plan.value();
  }

  std::unique_ptr<PathDatabase> db_;
  FlowCubePlan plan_;
};

TEST_F(MaintainerTest, CreateRejectsWindowWithExceptions) {
  IncrementalMaintainerOptions options;
  options.window_records = 10;
  options.build.compute_exceptions = true;
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(db_->schema_ptr(), plan_, options);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(MaintainerTest, CreateRejectsBadPlanWithoutCrashing) {
  IncrementalMaintainerOptions options;
  FlowCubePlan bad = plan_;
  bad.mining.dim_levels.pop_back();
  EXPECT_FALSE(
      IncrementalMaintainer::Create(db_->schema_ptr(), bad, options).ok());

  bad = plan_;
  bad.path_levels.push_back(99);
  EXPECT_FALSE(
      IncrementalMaintainer::Create(db_->schema_ptr(), bad, options).ok());

  options.build.min_support = 0;
  EXPECT_FALSE(
      IncrementalMaintainer::Create(db_->schema_ptr(), plan_, options).ok());
}

TEST_F(MaintainerTest, InvalidRecordLeavesTheCubeUntouched) {
  IncrementalMaintainerOptions options;
  Result<IncrementalMaintainer> created =
      IncrementalMaintainer::Create(db_->schema_ptr(), plan_, options);
  ASSERT_TRUE(created.ok());
  IncrementalMaintainer m = std::move(created.value());
  ASSERT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                 .subspan(0, 20))
                  .ok());
  const std::string before = DumpFlowCube(m.cube());

  // A batch where a later record is invalid must be rejected atomically.
  std::vector<PathRecord> batch = {db_->record(20), PathRecord{}};
  const Status s = m.Apply(StreamDelta{0, std::move(batch)});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(DumpFlowCube(m.cube()), before);
  EXPECT_EQ(m.live_record_count(), 20u);
}

TEST_F(MaintainerTest, ApplyStatsTrackPromotionsAndDemotions) {
  IncrementalMaintainerOptions options;
  options.build.compute_exceptions = false;
  options.window_records = 10;
  Result<IncrementalMaintainer> created =
      IncrementalMaintainer::Create(db_->schema_ptr(), plan_, options);
  ASSERT_TRUE(created.ok());
  IncrementalMaintainer m = std::move(created.value());

  ApplyStats stats;
  ASSERT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                 .subspan(0, 10),
                             &stats)
                  .ok());
  EXPECT_EQ(stats.records_applied, 10u);
  EXPECT_EQ(stats.records_retired, 0u);
  EXPECT_GT(stats.cells_promoted, 0u) << "the apex cell at least";
  EXPECT_GT(stats.cells_rebuilt, 0u);

  ASSERT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                 .subspan(10, 20),
                             &stats)
                  .ok());
  EXPECT_EQ(stats.records_applied, 20u);
  EXPECT_EQ(stats.records_retired, 20u) << "window keeps only 10 live";
  EXPECT_EQ(m.live_record_count(), 10u);
  EXPECT_EQ(m.LiveRecords().size(), 10u);
  EXPECT_EQ(m.total_records(), 30u);
}

TEST_F(MaintainerTest, ApexCellIsAlwaysMaterialized) {
  IncrementalMaintainerOptions options;
  options.build.min_support = 1000;  // nothing else qualifies
  Result<IncrementalMaintainer> created =
      IncrementalMaintainer::Create(db_->schema_ptr(), plan_, options);
  ASSERT_TRUE(created.ok());
  IncrementalMaintainer m = std::move(created.value());
  ASSERT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                 .subspan(0, 5))
                  .ok());
  // Find the all-'*' item level: every cuboid there has exactly the apex.
  const int apex = m.plan().FindItemLevel(
      ItemLevel{std::vector<int>(db_->schema().num_dimensions(), 0)});
  ASSERT_GE(apex, 0);
  const Cuboid& cuboid = m.cube().cuboid(static_cast<size_t>(apex), 0);
  EXPECT_EQ(cuboid.size(), 1u);
  const FlowCell* cell = cuboid.Find(Itemset{});
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->support, 5u);
}

TEST_F(MaintainerTest, MaintainMetricsAccumulate) {
  ScopedEpoch epoch;
  IncrementalMaintainerOptions options;
  Result<IncrementalMaintainer> created =
      IncrementalMaintainer::Create(db_->schema_ptr(), plan_, options);
  ASSERT_TRUE(created.ok());
  IncrementalMaintainer m = std::move(created.value());
  ASSERT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                 .subspan(0, 15))
                  .ok());
  MetricRegistry& reg = MetricRegistry::Global();
  EXPECT_EQ(reg.counter("stream.maintain.batches").value(), 1u);
  EXPECT_EQ(reg.counter("stream.maintain.records").value(), 15u);
  EXPECT_EQ(reg.gauge("stream.maintain.live_records").value(), 15);
}

}  // namespace
}  // namespace flowcube
