// Differential oracle for incremental maintenance: after ANY sequence of
// micro-batches, the incrementally maintained flowcube must dump
// byte-identically to a from-scratch FlowCubeBuilder rebuild over the union
// path database (flowcube/dump renders cells sorted with %.17g doubles, so
// string equality is bitwise cube equality). 20 seeded workloads, each
// driven through 3 batch-size schedules with exceptions and redundancy
// marking on, checked after every single batch. A second suite exercises
// sliding-window maintenance (exceptions off) against rebuilds over the
// live window.

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowcube/dump.h"
#include "gen/path_generator.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

struct Workload {
  GeneratorConfig cfg;
  size_t num_records = 0;
  uint32_t min_support = 0;
};

// Same shape as the mining differential suite: small 2-dimension workloads
// whose seed drives density and threshold, big enough to promote, demote,
// and re-mine cells across batches.
Workload MakeWorkload(int seed) {
  Workload w;
  w.cfg.num_dimensions = 2;
  w.cfg.dim_distinct_per_level = {2, 2, 2};
  w.cfg.dim_zipf_alpha = 0.5 + 0.1 * (seed % 5);
  w.cfg.num_location_groups = 3;
  w.cfg.locations_per_group = 3;
  w.cfg.num_sequences = 4 + seed % 5;
  w.cfg.min_sequence_length = 2;
  w.cfg.max_sequence_length = 5;
  w.cfg.num_distinct_durations = 4 + seed % 4;
  w.cfg.seed = 5000 + static_cast<uint64_t>(seed) * 131;
  w.num_records = 50 + (static_cast<size_t>(seed) * 11) % 41;
  w.min_support = 2 + static_cast<uint32_t>(seed) % 4;
  return w;
}

// The three batch-size schedules every workload runs under.
std::vector<size_t> Schedule(int kind, size_t n) {
  std::vector<size_t> sizes;
  switch (kind) {
    case 0:  // one bulk load
      sizes.push_back(n);
      break;
    case 1:  // steady micro-batches
      for (size_t done = 0; done < n; done += 7) {
        sizes.push_back(std::min<size_t>(7, n - done));
      }
      break;
    default:  // geometric ramp: 1, 2, 4, 8, ...
      for (size_t done = 0, next = 1; done < n; done += sizes.back()) {
        sizes.push_back(std::min(next, n - done));
        next *= 2;
      }
      break;
  }
  return sizes;
}

FlowCubeBuilderOptions BuildOptions(uint32_t min_support,
                                    bool compute_exceptions) {
  FlowCubeBuilderOptions options;
  options.min_support = min_support;
  options.compute_exceptions = compute_exceptions;
  options.mark_redundant = true;
  return options;
}

std::string RebuildDump(const PathDatabase& db, const FlowCubePlan& plan,
                        const FlowCubeBuilderOptions& options) {
  const FlowCubeBuilder builder(options);
  Result<FlowCube> cube = builder.Build(db, plan);
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  return DumpFlowCube(cube.value());
}

class StreamDifferential : public ::testing::TestWithParam<int> {};

TEST_P(StreamDifferential, IncrementalEqualsRebuildAfterEveryBatch) {
  const Workload w = MakeWorkload(GetParam());
  PathGenerator gen(w.cfg);
  const PathDatabase db = gen.Generate(w.num_records);
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  ASSERT_TRUE(plan.ok());

  for (int schedule = 0; schedule < 3; ++schedule) {
    IncrementalMaintainerOptions options;
    options.build = BuildOptions(w.min_support, /*compute_exceptions=*/true);
    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        db.schema_ptr(), plan.value(), options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    IncrementalMaintainer maintainer = std::move(created.value());

    PathDatabase prefix(db.schema_ptr());
    size_t offset = 0;
    for (const size_t batch : Schedule(schedule, db.size())) {
      ASSERT_TRUE(
          maintainer
              .ApplyRecords(std::span<const PathRecord>(db.records())
                                .subspan(offset, batch))
              .ok());
      for (size_t i = 0; i < batch; ++i) {
        ASSERT_TRUE(prefix.Append(db.record(offset + i)).ok());
      }
      offset += batch;
      ASSERT_EQ(DumpFlowCube(maintainer.cube()),
                RebuildDump(prefix, plan.value(), options.build))
          << "schedule " << schedule << " diverged after " << offset
          << " records";
    }
    ASSERT_EQ(offset, db.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, StreamDifferential,
                         ::testing::Range(0, 20));

class WindowDifferential : public ::testing::TestWithParam<int> {};

TEST_P(WindowDifferential, WindowEqualsRebuildOverLiveRecords) {
  const Workload w = MakeWorkload(GetParam());
  PathGenerator gen(w.cfg);
  const PathDatabase db = gen.Generate(w.num_records);
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  ASSERT_TRUE(plan.ok());

  for (int schedule = 0; schedule < 3; ++schedule) {
    IncrementalMaintainerOptions options;
    options.build = BuildOptions(w.min_support, /*compute_exceptions=*/false);
    options.window_records = 25;
    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        db.schema_ptr(), plan.value(), options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    IncrementalMaintainer maintainer = std::move(created.value());

    size_t offset = 0;
    for (const size_t batch : Schedule(schedule, db.size())) {
      ASSERT_TRUE(
          maintainer
              .ApplyRecords(std::span<const PathRecord>(db.records())
                                .subspan(offset, batch))
              .ok());
      offset += batch;

      PathDatabase window(db.schema_ptr());
      for (const PathRecord& rec : maintainer.LiveRecords()) {
        ASSERT_TRUE(window.Append(rec).ok());
      }
      EXPECT_LE(window.size(), 25u);
      ASSERT_EQ(DumpFlowCube(maintainer.cube()),
                RebuildDump(window, plan.value(), options.build))
          << "schedule " << schedule << " diverged after " << offset
          << " records";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, WindowDifferential,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace flowcube
