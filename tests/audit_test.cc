#include "common/audit.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowgraph/builder.h"
#include "gen/paper_example.h"
#include "mining/transform.h"

namespace flowcube {

// Friends of the audited classes (declared in their headers): the only way
// to break invariants the public API maintains by construction.
struct FlowGraphTestPeer {
  static uint32_t& PathCount(FlowGraph& g, FlowNodeId n) {
    return g.nodes_[n].path_count;
  }
  static FlowNodeId& Parent(FlowGraph& g, FlowNodeId n) {
    return g.nodes_[n].parent;
  }
  static std::vector<DurationCount>& DurationCounts(FlowGraph& g,
                                                    FlowNodeId n) {
    return g.nodes_[n].duration_counts;
  }
};

struct ItemCatalogTestPeer {
  static std::vector<NodeId>& NodeOf(ItemCatalog& c) { return c.node_of_; }
  static std::vector<ItemCatalog::StageInfo>& StageInfos(ItemCatalog& c) {
    return c.stage_info_;
  }
};

namespace {

bool HasViolationContaining(const AuditReport& report,
                            std::string_view needle) {
  for (const std::string& v : report.violations()) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::vector<Path> PaperPaths(const PathDatabase& db) {
  std::vector<Path> paths;
  paths.reserve(db.size());
  for (const PathRecord& rec : db.records()) paths.push_back(rec.path);
  return paths;
}

// --- Green runs over the paper's running example ---------------------------

TEST(AuditPaperExampleTest, PathDatabaseIsClean) {
  const PathDatabase db = MakePaperDatabase();
  const AuditReport report = AuditPathDatabase(db);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditPaperExampleTest, SchemaHierarchiesAreClean) {
  const PathDatabase db = MakePaperDatabase();
  for (const ConceptHierarchy& h : db.schema().dimensions) {
    const AuditReport report = AuditConceptHierarchy(h);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  const AuditReport locations = AuditConceptHierarchy(db.schema().locations);
  EXPECT_TRUE(locations.ok()) << locations.ToString();
}

TEST(AuditPaperExampleTest, FlowGraphIsClean) {
  const PathDatabase db = MakePaperDatabase();
  const std::vector<Path> paths = PaperPaths(db);
  const FlowGraph g = BuildFlowGraph(paths);
  const AuditReport report = AuditFlowGraph(g);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditPaperExampleTest, MergedFlowGraphIsClean) {
  const PathDatabase db = MakePaperDatabase();
  const std::vector<Path> paths = PaperPaths(db);
  FlowGraph merged = BuildFlowGraph({paths.data(), 4});
  const FlowGraph rest = BuildFlowGraph({paths.data() + 4, paths.size() - 4});
  merged.MergeFrom(rest);
  const AuditReport report = AuditFlowGraph(merged);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(merged.total_paths(), db.size());
}

TEST(AuditPaperExampleTest, ItemCatalogIsClean) {
  const PathDatabase db = MakePaperDatabase();
  const MiningPlan plan = MiningPlan::Default(db.schema()).value();
  const TransformedDatabase tdb = TransformPathDatabase(db, plan).value();
  const AuditReport report = AuditItemCatalog(tdb.catalog());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditPaperExampleTest, BuiltFlowCubeIsClean) {
  const PathDatabase db = MakePaperDatabase();
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  opts.exceptions.min_support = 2;
  const FlowCube cube = FlowCubeBuilder(opts).Build(db, plan).value();
  FlowGraphAuditOptions graph_options;
  graph_options.min_condition_support = opts.exceptions.min_support;
  const AuditReport report = AuditFlowCube(cube, opts.min_support,
                                           graph_options);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- Deliberate corruption: the audits must notice -------------------------

TEST(AuditFlowGraphTest, DetectsCorruptedPathCount) {
  FlowGraph g = BuildFlowGraph(PaperPaths(MakePaperDatabase()));
  ASSERT_GT(g.num_nodes(), 1u);
  FlowGraphTestPeer::PathCount(g, 1) += 1;
  const AuditReport report = AuditFlowGraph(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "path count"))
      << report.ToString();
}

TEST(AuditFlowGraphTest, DetectsCorruptedParentPointer) {
  FlowGraph g = BuildFlowGraph(PaperPaths(MakePaperDatabase()));
  // Find a node at depth >= 2 and re-parent it onto itself.
  FlowNodeId victim = FlowGraph::kTerminate;
  for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.depth(n) >= 2) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, FlowGraph::kTerminate);
  FlowGraphTestPeer::Parent(g, victim) = victim;
  const AuditReport report = AuditFlowGraph(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "parent")) << report.ToString();
}

TEST(AuditFlowGraphTest, DetectsCorruptedDurationDistribution) {
  FlowGraph g = BuildFlowGraph(PaperPaths(MakePaperDatabase()));
  ASSERT_GT(g.num_nodes(), 1u);
  ASSERT_FALSE(FlowGraphTestPeer::DurationCounts(g, 1).empty());
  FlowGraphTestPeer::DurationCounts(g, 1).begin()->count += 3;
  const AuditReport report = AuditFlowGraph(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "duration"))
      << report.ToString();
}

TEST(AuditFlowGraphTest, DetectsMalformedException) {
  FlowGraph g = BuildFlowGraph(PaperPaths(MakePaperDatabase()));
  FlowException bogus;
  bogus.node = static_cast<FlowNodeId>(g.num_nodes() + 7);
  g.AddException(bogus);
  const AuditReport report = AuditFlowGraph(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "exception 0"))
      << report.ToString();
}

TEST(AuditFlowGraphTest, DetectsInfrequentExceptionCondition) {
  FlowGraph g = BuildFlowGraph(PaperPaths(MakePaperDatabase()));
  ASSERT_GT(g.num_nodes(), 1u);
  FlowException e;
  e.kind = FlowException::Kind::kTransition;
  e.node = 1;
  e.condition = {StageCondition{1, 5}};
  e.transition_target = FlowGraph::kTerminate;
  e.condition_support = 1;  // below the miner's delta of 2
  g.AddException(e);
  FlowGraphAuditOptions options;
  options.min_condition_support = 2;
  const AuditReport report = AuditFlowGraph(g, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "delta")) << report.ToString();
}

TEST(AuditItemCatalogTest, DetectsBrokenDimensionBijection) {
  const PathDatabase db = MakePaperDatabase();
  const MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = TransformPathDatabase(db, plan).value();
  ItemCatalog& catalog = const_cast<ItemCatalog&>(tdb.catalog());
  ASSERT_GE(catalog.num_dim_items(), 2u);
  std::vector<NodeId>& node_of = ItemCatalogTestPeer::NodeOf(catalog);
  std::swap(node_of[0], node_of[1]);
  const AuditReport report = AuditItemCatalog(catalog);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "resolve back"))
      << report.ToString();
}

TEST(AuditItemCatalogTest, DetectsBrokenStageBijection) {
  const PathDatabase db = MakePaperDatabase();
  const MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = TransformPathDatabase(db, plan).value();
  ItemCatalog& catalog = const_cast<ItemCatalog&>(tdb.catalog());
  std::vector<ItemCatalog::StageInfo>& infos =
      ItemCatalogTestPeer::StageInfos(catalog);
  ASSERT_FALSE(infos.empty());
  infos[0].duration += 1000;
  const AuditReport report = AuditItemCatalog(catalog);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "FindStageItem"))
      << report.ToString();
}

TEST(AuditFlowCubeTest, DetectsIcebergAndRollUpViolations) {
  const PathDatabase db = MakePaperDatabase();
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  opts.exceptions.min_support = 2;
  FlowCube cube = FlowCubeBuilder(opts).Build(db, plan).value();
  // Shrink one specific cell's support below the iceberg threshold; the
  // flowgraph no longer matches either.
  bool corrupted = false;
  cube.ForEachCuboidMutable([&](Cuboid* cuboid) {
    if (corrupted) return;
    cuboid->ForEachMutable([&](FlowCell* cell) {
      if (!corrupted && !cell->dims.empty()) {
        cell->support = 1;
        corrupted = true;
      }
    });
  });
  ASSERT_TRUE(corrupted);
  const AuditReport report = AuditFlowCube(cube, opts.min_support);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "iceberg")) << report.ToString();
}

// --- The FC_AUDIT enforcement path -----------------------------------------

TEST(AuditReportTest, AbsorbPrefixesWithSubject) {
  AuditReport inner("FlowGraph");
  inner.Fail("node 1 path count 3 != terminate count + children's counts 2");
  AuditReport outer("FlowCube");
  outer.Absorb(inner);
  ASSERT_EQ(outer.violations().size(), 1u);
  EXPECT_TRUE(HasViolationContaining(outer, "FlowGraph: node 1"));
  EXPECT_NE(outer.ToString().find("1 violation(s)"), std::string::npos);
}

TEST(AuditDeathTest, EnforcementAbortsWithTheViolationList) {
  AuditReport report("CorruptStructure");
  report.Fail("boom: the invariant is broken");
  EXPECT_DEATH(internal::AuditFailIfNotOk(report, "audit_test.cc", 1),
               "boom: the invariant is broken");
}

#if FC_AUDIT_ENABLED
TEST(AuditDeathTest, FcAuditMacroFiresOnCorruptedFlowGraph) {
  FlowGraph g = BuildFlowGraph(PaperPaths(MakePaperDatabase()));
  ASSERT_GT(g.num_nodes(), 1u);
  FlowGraphTestPeer::PathCount(g, 1) += 1;
  EXPECT_DEATH(FC_AUDIT(AuditFlowGraph(g)), "FC_AUDIT failed");
}
#else
TEST(AuditDeathTest, FcAuditMacroCompilesOutWhenDisabled) {
  // The macro must not evaluate its argument in non-audit builds.
  FC_AUDIT(AuditReport("never constructed"));
  SUCCEED();
}
#endif

}  // namespace
}  // namespace flowcube
