// Stress tests for BoundedQueue's shutdown contract (bounded_queue.h):
// a true Push return means the item is delivered to some Pop even when
// Close() races in immediately after, no Push succeeds after Close(), and
// consumers drain the backlog exactly once before seeing nullopt. The
// suite hammers the close/pop interleaving with many producers/consumers
// and is run under ThreadSanitizer in CI (tsan preset, stream label), so
// any lost-wakeup or data race in the queue itself also surfaces here.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stream/bounded_queue.h"

namespace flowcube {
namespace {

TEST(BoundedQueueStressTest, AcceptedPushesAreDeliveredExactlyOnceAcrossClose) {
  // Producers push monotonically tagged items while a closer thread slams
  // the door mid-stream. Every accepted push must surface in exactly one
  // consumer; every rejected push must surface in none.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  constexpr int kRounds = 8;

  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<uint64_t> queue(8);
    std::atomic<uint64_t> accepted_count{0};
    std::vector<std::vector<uint64_t>> accepted(kProducers);
    std::vector<std::vector<uint64_t>> consumed(kConsumers);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const uint64_t tag =
              static_cast<uint64_t>(p) * kPerProducer + static_cast<uint64_t>(i);
          if (queue.Push(tag)) {
            accepted[p].push_back(tag);
            accepted_count.fetch_add(1, std::memory_order_relaxed);
          } else {
            break;  // closed: every later Push must fail too
          }
        }
      });
    }

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&, c] {
        while (std::optional<uint64_t> item = queue.Pop()) {
          consumed[c].push_back(*item);
        }
      });
    }

    // Let some traffic through, then close mid-stream; vary the cut point
    // across rounds so the race lands at different queue occupancies.
    while (accepted_count.load(std::memory_order_relaxed) <
           static_cast<uint64_t>(100 * (round + 1))) {
      std::this_thread::yield();
    }
    queue.Close();

    for (std::thread& t : producers) t.join();
    for (std::thread& t : consumers) t.join();

    std::vector<uint64_t> all_accepted;
    for (const auto& v : accepted)
      all_accepted.insert(all_accepted.end(), v.begin(), v.end());
    std::vector<uint64_t> all_consumed;
    for (const auto& v : consumed)
      all_consumed.insert(all_consumed.end(), v.begin(), v.end());

    std::sort(all_accepted.begin(), all_accepted.end());
    std::sort(all_consumed.begin(), all_consumed.end());
    EXPECT_EQ(all_consumed, all_accepted)
        << "round " << round << ": delivered set != accepted set "
        << "(accepted " << all_accepted.size() << ", delivered "
        << all_consumed.size() << ")";
  }
}

TEST(BoundedQueueStressTest, PushBlockedOnFullQueueFailsCleanlyAtClose) {
  // Fill the queue, park producers on the full queue, close with no
  // consumer running: every parked Push must wake, return false, and leave
  // the backlog untouched for the late consumer.
  constexpr size_t kCapacity = 4;
  BoundedQueue<int> queue(kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) ASSERT_TRUE(queue.Push(int(i)));

  std::atomic<int> rejected{0};
  std::vector<std::thread> blocked;
  for (int p = 0; p < 8; ++p) {
    blocked.emplace_back([&] {
      if (!queue.Push(-1)) rejected.fetch_add(1);
    });
  }
  // Give producers a moment to park inside Push on the full queue; the
  // contract holds either way (a Push that hasn't entered yet fails on the
  // closed check instead of the wakeup).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(queue.size(), kCapacity);
  queue.Close();
  for (std::thread& t : blocked) t.join();
  EXPECT_EQ(rejected.load(), 8);

  // The pre-close backlog drains in FIFO order, then nullopt.
  for (size_t i = 0; i < kCapacity; ++i) {
    std::optional<int> item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, int(i));
  }
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueStressTest, NoPushSucceedsAfterCloseEvenWithFreeCapacity) {
  BoundedQueue<int> queue(64);
  ASSERT_TRUE(queue.Push(1));
  queue.Close();
  std::vector<std::thread> pushers;
  std::atomic<int> succeeded{0};
  for (int p = 0; p < 8; ++p) {
    pushers.emplace_back([&] {
      if (queue.Push(2)) succeeded.fetch_add(1);
      if (queue.TryPush(3)) succeeded.fetch_add(1);
    });
  }
  for (std::thread& t : pushers) t.join();
  EXPECT_EQ(succeeded.load(), 0);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueStressTest, BackpressureNeverOverfillsUnderContention) {
  constexpr size_t kCapacity = 3;
  BoundedQueue<int> queue(kCapacity);
  std::atomic<bool> overfilled{false};
  std::atomic<int> consumed{0};
  constexpr int kItems = 5000;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.Push(i));
    queue.Close();
  });
  std::thread watcher([&] {
    while (consumed.load(std::memory_order_relaxed) < kItems) {
      if (queue.size() > kCapacity) overfilled.store(true);
      std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    int expect = 0;
    while (std::optional<int> item = queue.Pop()) {
      ASSERT_EQ(*item, expect++);  // single consumer sees strict FIFO
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
    consumed.store(kItems);
  });

  producer.join();
  consumer.join();
  watcher.join();
  EXPECT_FALSE(overfilled.load());
  EXPECT_EQ(consumed.load(), kItems);
}

}  // namespace
}  // namespace flowcube
