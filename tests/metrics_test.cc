// The observability layer itself (common/metrics.h, common/trace.h):
// instrument arithmetic, registry identity and render formats, the
// --metrics flag plumbing, and trace spans. Registry state is process-wide
// and shared with every other test in this binary, so assertions are
// delta-based and instrument names are namespaced "test.metrics.*".

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"

namespace flowcube {
namespace {

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeSetAddAndHighWaterMark) {
  Gauge g;
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
  g.Add(15);
  EXPECT_EQ(g.value(), 10);
  g.SetMax(7);  // lower: no-op
  EXPECT_EQ(g.value(), 10);
  g.SetMax(12);  // higher: raises
  EXPECT_EQ(g.value(), 12);
}

TEST(Metrics, HistogramSnapshotIsExactForCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  for (double v : {0.25, 1.0, 4.0}) h.Record(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 5.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 1.75);
  // Percentiles are bucket-resolution (power-of-two buckets): p50 lands in
  // the bucket of 1.0, i.e. within [1, 2); all percentiles stay in range.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p50, s.max);
  EXPECT_GE(s.p90, s.p50);
  EXPECT_LE(s.p99, s.max);
}

TEST(Metrics, HistogramSingleSamplePercentilesAreExact) {
  Histogram h;
  h.Record(3.5);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
}

TEST(Metrics, RegistryReturnsStableIdentities) {
  MetricRegistry& reg = MetricRegistry::Global();
  Counter& a = reg.counter("test.metrics.identity");
  // Force rebalancing pressure: the map must be node-based so `a` stays
  // valid no matter how many instruments are added after it.
  for (int i = 0; i < 100; ++i) {
    reg.counter("test.metrics.identity." + std::to_string(i));
  }
  Counter& b = reg.counter("test.metrics.identity");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.value();
  b.Increment();
  EXPECT_EQ(a.value(), before + 1);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter& c = MetricRegistry::Global().counter("test.metrics.threaded");
  const uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), before + kThreads * kPerThread);
}

TEST(Metrics, RendersAllThreeFormats) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.counter("test.metrics.render_counter").Add(3);
  reg.gauge("test.metrics.render_gauge").Set(-2);
  reg.histogram("test.metrics.render_histogram").Record(0.5);

  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("test.metrics.render_counter"), std::string::npos);
  EXPECT_NE(text.find("test.metrics.render_gauge"), std::string::npos);

  const std::string json = reg.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.render_gauge\":-2"), std::string::npos);
  // One-line JSON: foldable into BENCH_<name>.json without re-indenting.
  EXPECT_EQ(json.find('\n'), std::string::npos);

  const std::string prom = reg.RenderPrometheus();
  // Dots flatten to underscores under a flowcube_ prefix.
  EXPECT_NE(prom.find("flowcube_test_metrics_render_counter 3"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE flowcube_test_metrics_render_counter counter"),
            std::string::npos);
}

TEST(Metrics, ResetZeroesButKeepsReferencesValid) {
  // A private registry so Reset() does not clobber the global counters the
  // other tests (and the instrumented library code) accumulate into.
  MetricRegistry reg;
  Counter& c = reg.counter("test.metrics.reset");
  Histogram& h = reg.histogram("test.metrics.reset_hist");
  c.Add(5);
  h.Record(1.0);
  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.Increment();
  EXPECT_EQ(reg.counter("test.metrics.reset").value(), 1u);
}

TEST(Metrics, ParseMetricsFormat) {
  EXPECT_EQ(ParseMetricsFormat("text"), MetricsFormat::kText);
  EXPECT_EQ(ParseMetricsFormat("1"), MetricsFormat::kText);
  EXPECT_EQ(ParseMetricsFormat("json"), MetricsFormat::kJson);
  EXPECT_EQ(ParseMetricsFormat("prom"), MetricsFormat::kPrometheus);
  EXPECT_EQ(ParseMetricsFormat("prometheus"), MetricsFormat::kPrometheus);
  EXPECT_EQ(ParseMetricsFormat(""), MetricsFormat::kNone);
  EXPECT_EQ(ParseMetricsFormat("garbage"), MetricsFormat::kNone);
}

// Restores the process-wide format/trace state a ConsumeMetricsFlag test
// mutates, so test order never matters.
class MetricsFlagTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_metrics_format(MetricsFormat::kNone);
    TraceSink::Global().SetEnabled(false);
    TraceSink::Global().Clear();
  }
};

TEST_F(MetricsFlagTest, ConsumeMetricsFlagStripsBareFlag) {
  char prog[] = "bench";
  char flag[] = "--metrics";
  char other[] = "--benchmark_filter=all";
  char* argv[] = {prog, flag, other, nullptr};
  int argc = 3;
  EXPECT_EQ(ConsumeMetricsFlag(&argc, argv), MetricsFormat::kText);
  EXPECT_EQ(metrics_format(), MetricsFormat::kText);
  // The flag is gone; downstream flag parsers never see it.
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=all");
  // Event capture turns on together with output.
  EXPECT_TRUE(TraceSink::Global().enabled());
}

TEST_F(MetricsFlagTest, ConsumeMetricsFlagParsesExplicitFormat) {
  char prog[] = "bench";
  char flag[] = "--metrics=json";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(ConsumeMetricsFlag(&argc, argv), MetricsFormat::kJson);
  EXPECT_EQ(argc, 1);
}

TEST_F(MetricsFlagTest, ConsumeMetricsFlagLeavesOtherArgsAlone) {
  char prog[] = "bench";
  char other[] = "--metricsandmore";  // not the flag; must survive
  char* argv[] = {prog, other, nullptr};
  int argc = 2;
  ConsumeMetricsFlag(&argc, argv);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--metricsandmore");
}

TEST(Trace, SpanRecordsHistogramAlways) {
  Histogram& h =
      MetricRegistry::Global().histogram("trace.test.span_hist.seconds");
  const uint64_t before = h.snapshot().count;
  {
    TraceSpan span("test.span_hist");
  }
  EXPECT_EQ(h.snapshot().count, before + 1);
}

TEST(Trace, StopIsIdempotentAndReturnsDuration) {
  Histogram& h =
      MetricRegistry::Global().histogram("trace.test.span_stop.seconds");
  const uint64_t before = h.snapshot().count;
  TraceSpan span("test.span_stop");
  const double first = span.Stop();
  EXPECT_GE(first, 0.0);
  // A second Stop (and the destructor) must not double-record.
  EXPECT_EQ(span.Stop(), first);
  EXPECT_EQ(h.snapshot().count, before + 1);
}

TEST(Trace, SinkCapturesEventsOnlyWhenEnabled) {
  TraceSink& sink = TraceSink::Global();
  const bool was_enabled = sink.enabled();
  sink.SetEnabled(false);
  const size_t before = sink.Events().size();
  { TraceSpan span("test.sink_disabled"); }
  EXPECT_EQ(sink.Events().size(), before);

  sink.SetEnabled(true);
  { TraceSpan span("test.sink_enabled"); }
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_GT(events.size(), before);
  EXPECT_EQ(events.back().name, "test.sink_enabled");
  EXPECT_GE(events.back().duration_seconds, 0.0);

  const std::string text = sink.RenderText();
  EXPECT_NE(text.find("test.sink_enabled"), std::string::npos);
  const std::string json = sink.RenderJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"test.sink_enabled\""), std::string::npos);

  sink.SetEnabled(was_enabled);
  sink.Clear();
  EXPECT_TRUE(sink.Events().empty());
}

TEST(Trace, NowIsMonotonic) {
  const double a = TraceNowSeconds();
  const double b = TraceNowSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace flowcube
