// Snapshot isolation differential: N reader threads hammer the query
// server over loopback while the maintainer keeps applying batches and
// publishing epochs. Every response a reader receives must byte-match the
// same request executed against a from-scratch FlowCubeBuilder rebuild of
// the record prefix the response's epoch was published at — i.e. a reader
// always sees one complete, consistent cube state, never a half-applied
// batch, no matter how the publish raced its request. Runs tsan-clean (the
// serve label is in the tsan CI leg).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "flowcube/builder.h"
#include "gen/path_generator.h"
#include "path/path_database.h"
#include "serve/client.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

constexpr int kNumReaders = 8;
constexpr int kRequestsPerReader = 50;
constexpr size_t kBatchSize = 10;
constexpr size_t kNumRecords = 120;  // 12 epochs at kBatchSize

GeneratorConfig FixtureConfig() {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.min_sequence_length = 2;
  cfg.max_sequence_length = 5;
  cfg.seed = 4242;
  return cfg;
}

FlowCubeBuilderOptions BuildOptions() {
  FlowCubeBuilderOptions options;
  options.min_support = 2;
  options.compute_exceptions = true;
  options.mark_redundant = true;
  return options;
}

// A cell coordinate expressed as the value names a request carries.
struct Candidate {
  std::vector<std::string> values;
  uint32_t pl_index = 0;
};

// Decodes every materialized cell of `cube` into request value names —
// the deterministic pool the readers draw their lookups from.
std::vector<Candidate> HarvestCells(const FlowCube& cube) {
  std::vector<Candidate> out;
  const FlowCubePlan& plan = cube.plan();
  for (size_t il = 0; il < plan.item_levels.size(); ++il) {
    for (size_t pl = 0; pl < plan.path_levels.size(); ++pl) {
      for (const FlowCell* cell : cube.cuboid(il, pl).SortedCells()) {
        Candidate c;
        c.pl_index = static_cast<uint32_t>(pl);
        c.values.assign(cube.schema().num_dimensions(), "*");
        for (ItemId id : cell->dims) {
          const size_t d = cube.catalog().DimOf(id);
          c.values[d] =
              cube.schema().dimensions[d].Name(cube.catalog().NodeOf(id));
        }
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

std::vector<std::string> LeafValues(const PathSchema& schema,
                                    const PathRecord& rec) {
  std::vector<std::string> values;
  values.reserve(rec.dims.size());
  for (size_t d = 0; d < rec.dims.size(); ++d) {
    values.push_back(schema.dimensions[d].Name(rec.dims[d]));
  }
  return values;
}

// Deterministic request mix: materialized-cell lookups, leaf lookups that
// fall back to ancestors, drill-downs, similarity pairs, stats, and one
// guaranteed-miss — errors must be snapshot-consistent too.
QueryRequest MakeRequest(const PathDatabase& db,
                         const std::vector<Candidate>& pool, int reader,
                         int i) {
  QueryRequest req;
  req.request_id =
      static_cast<uint64_t>(reader) * 100000 + static_cast<uint64_t>(i);
  const size_t pick = (static_cast<size_t>(reader) * 13 +
                       static_cast<size_t>(i) * 7) %
                      pool.size();
  switch ((reader + i) % 6) {
    case 0:
      req.type = RequestType::kPointLookup;
      req.values = pool[pick].values;
      req.pl_index = pool[pick].pl_index;
      break;
    case 1:
      req.type = RequestType::kCellOrAncestor;
      req.values = LeafValues(
          db.schema(),
          db.record((static_cast<size_t>(reader) * 31 +
                     static_cast<size_t>(i) * 11) %
                    db.size()));
      break;
    case 2:
      req.type = RequestType::kDrillDown;
      req.values = pool[pick].values;
      req.pl_index = pool[pick].pl_index;
      req.dim = static_cast<uint32_t>((reader + i) % 2);
      break;
    case 3:
      req.type = RequestType::kSimilarity;
      req.values = pool[pick].values;
      req.values_b = pool[(pick + 1) % pool.size()].values;
      req.pl_index = pool[pick].pl_index;
      break;
    case 4:
      req.type = RequestType::kStats;
      break;
    default:
      req.type = RequestType::kPointLookup;
      req.values = {"no-such-value", "*"};
      break;
  }
  return req;
}

TEST(SnapshotIsolationTest, ResponsesMatchFullRebuildAtPinnedEpoch) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(kNumRecords);
  ASSERT_EQ(db.size(), kNumRecords);
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  ASSERT_TRUE(plan.ok());

  IncrementalMaintainerOptions options;
  options.build = BuildOptions();
  Result<IncrementalMaintainer> created =
      IncrementalMaintainer::Create(db.schema_ptr(), plan.value(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  IncrementalMaintainer maintainer = std::move(created.value());

  SnapshotRegistry registry;
  AttachToRegistry(&maintainer, &registry);

  // Epoch 1 goes out before the server accepts traffic, so no reader ever
  // sees the no-snapshot error and every response has a rebuildable epoch.
  ASSERT_TRUE(maintainer
                  .ApplyRecords(std::span<const PathRecord>(db.records())
                                    .subspan(0, kBatchSize))
                  .ok());
  ASSERT_EQ(registry.current_epoch(), 1u);

  // The candidate pool comes from a rebuild of epoch 1 — deterministic, and
  // most of these cells stay materialized as records accumulate.
  const FlowCubeBuilder builder(options.build);
  std::vector<Candidate> pool;
  {
    PathDatabase first(db.schema_ptr());
    for (size_t i = 0; i < kBatchSize; ++i) {
      ASSERT_TRUE(first.Append(db.record(i)).ok());
    }
    Result<FlowCube> cube = builder.Build(first, plan.value());
    ASSERT_TRUE(cube.ok());
    pool = HarvestCells(cube.value());
  }
  ASSERT_FALSE(pool.empty());

  QueryService service(&registry);
  Result<std::unique_ptr<QueryServer>> server = QueryServer::Start(&service);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  struct Recorded {
    QueryRequest request;
    QueryResponse response;
  };
  std::vector<std::vector<Recorded>> recorded(kNumReaders);
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kNumReaders);
  for (int r = 0; r < kNumReaders; ++r) {
    readers.emplace_back([&, r] {
      Result<ServeClient> client = ServeClient::Connect(port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerReader; ++i) {
        const QueryRequest request = MakeRequest(db, pool, r, i);
        Result<QueryResponse> response = client->Call(request);
        if (!response.ok()) {
          failures.fetch_add(1);
          return;
        }
        recorded[r].push_back(Recorded{request, *response});
      }
    });
  }

  // Keep publishing epochs while the readers run.
  for (size_t offset = kBatchSize; offset < kNumRecords;
       offset += kBatchSize) {
    ASSERT_TRUE(maintainer
                    .ApplyRecords(std::span<const PathRecord>(db.records())
                                      .subspan(offset, kBatchSize))
                    .ok());
    std::this_thread::yield();
  }
  for (std::thread& t : readers) t.join();
  (*server)->Shutdown();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_EQ(registry.current_epoch(), kNumRecords / kBatchSize);

  // Oracle: rebuild each observed epoch's record prefix from scratch and
  // replay the request against it through the same execution path; the
  // wire response must match byte-for-byte.
  std::map<uint64_t, CubeSnapshot> oracles;
  size_t checked = 0;
  size_t ok_responses = 0;
  for (int r = 0; r < kNumReaders; ++r) {
    ASSERT_EQ(recorded[r].size(), static_cast<size_t>(kRequestsPerReader));
    for (const Recorded& entry : recorded[r]) {
      const uint64_t epoch = entry.response.epoch;
      ASSERT_GE(epoch, 1u);
      ASSERT_LE(epoch, kNumRecords / kBatchSize);
      auto it = oracles.find(epoch);
      if (it == oracles.end()) {
        PathDatabase prefix(db.schema_ptr());
        for (size_t i = 0; i < epoch * kBatchSize; ++i) {
          ASSERT_TRUE(prefix.Append(db.record(i)).ok());
        }
        Result<FlowCube> cube = builder.Build(prefix, plan.value());
        ASSERT_TRUE(cube.ok()) << cube.status().ToString();
        CubeSnapshot snapshot;
        snapshot.epoch = epoch;
        snapshot.records = epoch * kBatchSize;
        snapshot.cube =
            std::make_shared<const FlowCube>(std::move(cube.value()));
        it = oracles.emplace(epoch, std::move(snapshot)).first;
      }
      const QueryResponse expected =
          QueryService::ExecuteOn(it->second, entry.request);
      ASSERT_EQ(EncodeResponse(entry.response), EncodeResponse(expected))
          << "reader " << r << " request " << entry.request.request_id
          << " diverged from the epoch-" << epoch << " rebuild";
      ++checked;
      if (entry.response.code == Status::Code::kOk) ++ok_responses;
    }
  }
  EXPECT_EQ(checked,
            static_cast<size_t>(kNumReaders) * kRequestsPerReader);
  // The mix must actually exercise cube reads, not just error paths.
  EXPECT_GT(ok_responses, checked / 2);
}

// The registry itself: pinned epochs survive newer publishes; retirement
// frees them once unpinned.
TEST(SnapshotIsolationTest, PinnedEpochSurvivesLaterPublishes) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(30);
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  ASSERT_TRUE(plan.ok());
  IncrementalMaintainerOptions options;
  options.build = BuildOptions();
  Result<IncrementalMaintainer> created =
      IncrementalMaintainer::Create(db.schema_ptr(), plan.value(), options);
  ASSERT_TRUE(created.ok());
  IncrementalMaintainer maintainer = std::move(created.value());
  SnapshotRegistry registry;
  AttachToRegistry(&maintainer, &registry);

  EXPECT_EQ(registry.Acquire(), nullptr);
  ASSERT_TRUE(maintainer
                  .ApplyRecords(
                      std::span<const PathRecord>(db.records()).subspan(0, 10))
                  .ok());
  SnapshotPtr pinned = registry.Acquire();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned->records, 10u);
  const size_t cells_at_epoch1 = pinned->cube->TotalCells();

  ASSERT_TRUE(maintainer
                  .ApplyRecords(
                      std::span<const PathRecord>(db.records()).subspan(10, 20))
                  .ok());
  EXPECT_EQ(registry.current_epoch(), 2u);
  EXPECT_EQ(registry.live_snapshots(), 2u);  // current + the pin

  // The pinned cube is frozen at its epoch.
  EXPECT_EQ(pinned->cube->TotalCells(), cells_at_epoch1);
  SnapshotPtr current = registry.Acquire();
  EXPECT_EQ(current->epoch, 2u);
  EXPECT_EQ(current->records, 30u);

  pinned.reset();
  EXPECT_EQ(registry.live_snapshots(), 1u);
  current.reset();
  EXPECT_EQ(registry.live_snapshots(), 1u);  // registry's own reference
}

TEST(SnapshotIsolationTest, UnchangedCellsShareSealedGraphsAcrossEpochs) {
  // Publication is not a deep copy: a cell untouched between two Apply
  // batches reaches the next epoch as the SAME sealed column block (Clone
  // bumps a refcount), counted by serve.snapshot_shared_graphs. Two pinned
  // epochs therefore cost one graph allocation for shared cells — the
  // snapshot-publication copy-reduction contract.
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(61);
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  ASSERT_TRUE(plan.ok());
  IncrementalMaintainerOptions options;
  options.build = BuildOptions();
  Result<IncrementalMaintainer> created =
      IncrementalMaintainer::Create(db.schema_ptr(), plan.value(), options);
  ASSERT_TRUE(created.ok());
  IncrementalMaintainer maintainer = std::move(created.value());
  SnapshotRegistry registry;
  AttachToRegistry(&maintainer, &registry);

  Counter& shared_counter =
      MetricRegistry::Global().counter("serve.snapshot_shared_graphs");

  // A large first batch, then a single record: most cells of epoch 1 are
  // untouched by the second publish.
  ASSERT_TRUE(maintainer
                  .ApplyRecords(
                      std::span<const PathRecord>(db.records()).subspan(0, 60))
                  .ok());
  SnapshotPtr first = registry.Acquire();
  ASSERT_NE(first, nullptr);
  const uint64_t counter_before = shared_counter.value();

  ASSERT_TRUE(maintainer
                  .ApplyRecords(
                      std::span<const PathRecord>(db.records()).subspan(60, 1))
                  .ok());
  SnapshotPtr second = registry.Acquire();
  ASSERT_NE(second, nullptr);
  ASSERT_NE(first->cube.get(), second->cube.get());

  // Count physical sharing directly via sealed_identity().
  size_t shared = 0;
  size_t total = 0;
  second->cube->ForEachCuboid([&](const Cuboid& cuboid) {
    const Cuboid* before = first->cube->FindCuboid(cuboid.item_level(),
                                                   cuboid.path_level());
    ASSERT_NE(before, nullptr);
    cuboid.ForEach([&](const FlowCell& cell) {
      ++total;
      const FlowCell* old = before->Find(cell.dims);
      if (old != nullptr && cell.graph.sealed_identity() != nullptr &&
          old->graph.sealed_identity() == cell.graph.sealed_identity()) {
        ++shared;
      }
    });
  });
  EXPECT_GT(total, 0u);
  EXPECT_GT(shared, 0u) << "a one-record batch must leave some sealed "
                           "graphs shared across epochs";
  EXPECT_EQ(shared_counter.value() - counter_before,
            static_cast<uint64_t>(shared))
      << "the publish hook must count exactly the physically shared graphs";
}

}  // namespace
}  // namespace flowcube
