// End-to-end test of the fcsp_tool CLI (tools/fcsp_tool.cc), driven as a
// subprocess the way an operator runs it. The binary path comes in via the
// FLOWCUBE_FCSP_TOOL_PATH compile definition (tests/CMakeLists.txt). The
// core guarantee: a v1 checkpoint upgraded by the tool serves the entire
// FCQP query surface byte-identically through the zero-copy mapped loader.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/path_generator.h"
#include "serve/query_service.h"
#include "serve/snapshot_registry.h"
#include "store/mapped_cube.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

class FcspToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.dim_distinct_per_level = {2, 2, 2};
    cfg.num_location_groups = 3;
    cfg.locations_per_group = 3;
    cfg.num_sequences = 6;
    cfg.min_sequence_length = 2;
    cfg.max_sequence_length = 5;
    cfg.seed = 909;  // the tool's --seed default — no flags needed below
    PathGenerator gen(cfg);
    db_ = std::make_unique<PathDatabase>(gen.Generate(40));
    Result<FlowCubePlan> plan = FlowCubePlan::Default(db_->schema());
    ASSERT_TRUE(plan.ok());
    plan_ = plan.value();
    options_.build.min_support = 2;
  }

  IncrementalMaintainer MakeMaintainer(size_t num_records) {
    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        db_->schema_ptr(), plan_, options_);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    IncrementalMaintainer m = std::move(created.value());
    EXPECT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                   .subspan(0, num_records))
                    .ok());
    return m;
  }

  std::string TempFile(const std::string& name) const {
    return ::testing::TempDir() + "/fcsp_tool_test_" + name + ".fcsp";
  }

  // Runs the tool with `args`, returns its exit code; output is discarded
  // (operators read it; the test asserts on exit codes and file effects).
  static int RunTool(const std::string& args) {
    const std::string cmd =
        std::string(FLOWCUBE_FCSP_TOOL_PATH) + " " + args + " >/dev/null 2>&1";
    // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test driver
    const int rc = std::system(cmd.c_str());
    return rc;
  }

  std::unique_ptr<PathDatabase> db_;
  FlowCubePlan plan_;
  IncrementalMaintainerOptions options_;
};

// Every request type against every materialized cell, same shape as the
// store_test differential (trimmed: the point of this file is the CLI).
std::vector<QueryRequest> QuerySurface(const PathDatabase& db,
                                       const FlowCube& cube) {
  std::vector<QueryRequest> out;
  uint64_t id = 0;
  const FlowCubePlan& plan = cube.plan();
  for (size_t il = 0; il < plan.item_levels.size(); ++il) {
    for (size_t pl = 0; pl < plan.path_levels.size(); ++pl) {
      for (const FlowCell* cell : cube.cuboid(il, pl).SortedCells()) {
        QueryRequest req;
        req.request_id = ++id;
        req.type = RequestType::kPointLookup;
        req.pl_index = static_cast<uint32_t>(pl);
        req.values.assign(cube.schema().num_dimensions(), "*");
        for (ItemId item : cell->dims) {
          const size_t d = cube.catalog().DimOf(item);
          req.values[d] =
              cube.schema().dimensions[d].Name(cube.catalog().NodeOf(item));
        }
        out.push_back(req);
        for (uint32_t dim = 0; dim < cube.schema().num_dimensions(); ++dim) {
          req.request_id = ++id;
          req.type = RequestType::kDrillDown;
          req.dim = dim;
          out.push_back(req);
        }
      }
    }
  }
  QueryRequest stats;
  stats.request_id = ++id;
  stats.type = RequestType::kStats;
  out.push_back(stats);
  return out;
}

TEST_F(FcspToolTest, UpgradedV1ServesByteIdenticalQueriesThroughMmap) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string v1 = TempFile("upgrade_in_v1");
  const std::string v2 = TempFile("upgrade_out_v2");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, v1, kCheckpointFormatV1).ok());

  ASSERT_EQ(RunTool("upgrade " + v1 + " " + v2), 0);

  Result<std::shared_ptr<const MappedCube>> mapped =
      MappedCube::Load(v2, db_->schema_ptr(), plan_, options_);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  CubeSnapshot heap_snap;
  heap_snap.epoch = 1;
  heap_snap.records = 40;
  heap_snap.cube = std::make_shared<const FlowCube>(m.cube().Clone());
  CubeSnapshot mapped_snap = heap_snap;
  mapped_snap.cube = mapped.value()->shared_cube();

  const std::vector<QueryRequest> surface = QuerySurface(*db_, *heap_snap.cube);
  ASSERT_GT(surface.size(), 10u);
  for (const QueryRequest& req : surface) {
    EXPECT_EQ(QueryService::ExecuteOn(heap_snap, req),
              QueryService::ExecuteOn(mapped_snap, req))
        << "request " << req.request_id << " diverged after CLI upgrade";
  }

  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST_F(FcspToolTest, InfoAndVerifyAcceptBothFormats) {
  IncrementalMaintainer m = MakeMaintainer(24);
  const std::string v1 = TempFile("cli_v1");
  const std::string v2 = TempFile("cli_v2");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, v1, kCheckpointFormatV1).ok());
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, v2, kCheckpointFormatV2).ok());

  EXPECT_EQ(RunTool("info " + v1), 0);
  EXPECT_EQ(RunTool("info " + v2), 0);
  EXPECT_EQ(RunTool("verify " + v1), 0);
  EXPECT_EQ(RunTool("verify " + v2), 0);

  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST_F(FcspToolTest, RejectsCorruptFilesAndBadUsage) {
  IncrementalMaintainer m = MakeMaintainer(24);
  const std::string v2 = TempFile("cli_corrupt");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, v2, kCheckpointFormatV2).ok());
  std::string bytes;
  {
    std::ifstream in(v2, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(v2, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  EXPECT_NE(RunTool("info " + v2), 0);
  EXPECT_NE(RunTool("verify " + v2), 0);
  EXPECT_NE(RunTool("info " + TempFile("does_not_exist")), 0);
  EXPECT_NE(RunTool("frobnicate " + v2), 0);
  EXPECT_NE(RunTool("upgrade " + v2), 0);  // missing output operand

  std::remove(v2.c_str());
}

// Upgrading a v2 file to v2 is a canonicalizing no-op: the output bytes
// equal the input bytes (decode∘encode is the identity on v2).
TEST_F(FcspToolTest, UpgradeOfV2IsIdempotent) {
  IncrementalMaintainer m = MakeMaintainer(24);
  const std::string in = TempFile("idem_in");
  const std::string out = TempFile("idem_out");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, in, kCheckpointFormatV2).ok());
  ASSERT_EQ(RunTool("upgrade " + in + " " + out), 0);

  std::ifstream a(in, std::ios::binary);
  std::ifstream b(out, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);

  std::remove(in.c_str());
  std::remove(out.c_str());
}

}  // namespace
}  // namespace flowcube
