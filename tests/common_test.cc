#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/zipf.h"

namespace flowcube {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), Status::Code::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad input").ToString(),
            "InvalidArgument: bad input");
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(Result, WorksWithMoveOnlyAndNonDefaultConstructible) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  Result<NoDefault> ok(NoDefault(7));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->value, 7);
  Result<NoDefault> err(Status::Internal("x"));
  EXPECT_FALSE(err.ok());
}

TEST(Result, ReturnIfErrorMacroPropagates) {
  auto inner = []() -> Status { return Status::OutOfRange("stop"); };
  auto outer = [&]() -> Status {
    FC_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), Status::Code::kOutOfRange);
}

// --- Random ------------------------------------------------------------------

TEST(Random, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) equal++;
  }
  EXPECT_LT(equal, 2);
}

TEST(Random, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, UniformCoversAllValues) {
  Random rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, NextDoubleInHalfOpenUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, BernoulliMatchesProbability) {
  Random rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

// --- Zipf --------------------------------------------------------------------

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler z(10, 0.8);
  double total = 0.0;
  for (size_t k = 0; k < z.n(); ++k) total += z.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(5, 0.0);
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(z.Probability(k), 0.2, 1e-9);
  }
}

TEST(Zipf, ProbabilityDecreasesWithRank) {
  ZipfSampler z(20, 1.2);
  for (size_t k = 1; k < 20; ++k) {
    EXPECT_GT(z.Probability(k - 1), z.Probability(k));
  }
}

TEST(Zipf, HigherAlphaIsMoreSkewed) {
  ZipfSampler flat(10, 0.2);
  ZipfSampler steep(10, 2.0);
  EXPECT_GT(steep.Probability(0), flat.Probability(0));
}

TEST(Zipf, EmpiricalFrequenciesMatchTheory) {
  ZipfSampler z(8, 1.0);
  Random rng(42);
  std::vector<int> counts(8, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.Probability(k), 0.01)
        << "rank " << k;
  }
}

TEST(Zipf, SingleRankAlwaysSampled) {
  ZipfSampler z(1, 1.5);
  Random rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

// --- String utilities --------------------------------------------------------

TEST(StringUtil, StrJoin) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtil, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.5");
  EXPECT_EQ(FormatDouble(3.0, 2), "3");
  EXPECT_EQ(FormatDouble(0.38, 2), "0.38");
  EXPECT_EQ(FormatDouble(0.625, 2), "0.62");  // rounds
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  w.Reset();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
  EXPECT_GE(w.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace flowcube
