// Differential oracle for the two mining algorithms. A naive Basic-style
// reference recomputes the support of EVERY possible cell directly from the
// raw path records — no shared counting, no pruning, no transform — by
// enumerating the full cartesian product of dimension values across all
// hierarchy levels. Both SharedMiner and CubingMiner must agree with it
// exactly on 50 seeded random workloads: identical frequent-cell sets,
// identical supports, and byte-identical canonical cube dumps
// (flowcube/dump renders cells sorted with %.17g doubles, so string
// equality is bitwise cube equality).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cube/cubing_miner.h"
#include "flowcube/builder.h"
#include "flowcube/dump.h"
#include "flowcube/flowcube.h"
#include "flowgraph/builder.h"
#include "gen/path_generator.h"
#include "hierarchy/lattice.h"
#include "mining/counting_backend.h"
#include "mining/mining_result.h"
#include "mining/shared_miner.h"
#include "mining/transform.h"
#include "path/path_aggregator.h"
#include "path/path_view.h"

namespace flowcube {
namespace {

struct Workload {
  GeneratorConfig cfg;
  size_t num_records = 0;
  uint32_t min_support = 0;
};

// Small, fully-checkable workloads: 2 dimensions with 3-level {2,2,2}
// hierarchies (15 nodes each, so the oracle's cartesian product is 16x16
// coordinate combinations) and 60..120 paths. The seed drives every knob so
// the 50 workloads cover different densities and thresholds.
Workload MakeWorkload(int seed) {
  Workload w;
  w.cfg.num_dimensions = 2;
  w.cfg.dim_distinct_per_level = {2, 2, 2};
  w.cfg.dim_zipf_alpha = 0.5 + 0.1 * (seed % 5);
  w.cfg.num_location_groups = 3;
  w.cfg.locations_per_group = 3;
  w.cfg.num_sequences = 4 + seed % 5;
  w.cfg.min_sequence_length = 2;
  w.cfg.max_sequence_length = 5;
  w.cfg.num_distinct_durations = 4 + seed % 4;
  w.cfg.seed = 1000 + static_cast<uint64_t>(seed) * 97;
  w.num_records = 60 + (static_cast<size_t>(seed) * 7) % 61;
  w.min_support = 2 + static_cast<uint32_t>(seed) % 5;
  return w;
}

// The naive reference: support of every cell, keyed by the cell's sorted
// dimension items (empty = apex). One coordinate per dimension, drawn from
// {'*'} + every hierarchy node; a record supports a coordinate when the
// record's leaf value generalizes to it.
std::map<Itemset, uint32_t> OracleCellSupports(const PathDatabase& db,
                                               const ItemCatalog& cat) {
  const PathSchema& schema = db.schema();
  const size_t num_dims = schema.num_dimensions();
  // options[d] holds the hierarchy root (meaning '*') plus every concept.
  std::vector<std::vector<NodeId>> options(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    for (NodeId n = 0; n < schema.dimensions[d].NodeCount(); ++n) {
      options[d].push_back(n);
    }
  }

  std::map<Itemset, uint32_t> supports;
  std::vector<NodeId> combo(num_dims);
  const auto count_combo = [&] {
    uint32_t support = 0;
    for (const PathRecord& rec : db.records()) {
      bool covered = true;
      for (size_t d = 0; d < num_dims; ++d) {
        const ConceptHierarchy& h = schema.dimensions[d];
        if (h.AncestorAtLevel(rec.dims[d], h.Level(combo[d])) != combo[d]) {
          covered = false;
          break;
        }
      }
      if (covered) support++;
    }
    Itemset key;
    for (size_t d = 0; d < num_dims; ++d) {
      if (combo[d] == schema.dimensions[d].root()) continue;
      key.push_back(cat.DimItem(d, combo[d]));
    }
    std::sort(key.begin(), key.end());
    supports[std::move(key)] = support;
  };
  // Odometer over the cartesian product of per-dimension options.
  std::vector<size_t> idx(num_dims, 0);
  for (;;) {
    for (size_t d = 0; d < num_dims; ++d) combo[d] = options[d][idx[d]];
    count_combo();
    size_t d = 0;
    while (d < num_dims && ++idx[d] == options[d].size()) idx[d++] = 0;
    if (d == num_dims) break;
  }
  return supports;
}

// A miner's frequent PROPER cells (at most one item per dimension): the
// union of CellsAtLevel over the full item lattice plus the apex. This is
// the shape the oracle enumerates; it is also exactly what the flowcube
// materializes.
std::set<Itemset> ProperFrequentCells(const MiningResult& result,
                                      const PathSchema& schema) {
  std::vector<int> max_levels;
  for (const ConceptHierarchy& dim : schema.dimensions) {
    max_levels.push_back(dim.MaxLevel());
  }
  std::set<Itemset> out;
  for (const ItemLevel& il : ItemLattice(std::move(max_levels)).AllLevels()) {
    for (Itemset& cell : result.CellsAtLevel(il)) {
      out.insert(std::move(cell));
    }
  }
  return out;
}

void ExpectMatchesOracle(const MiningResult& result,
                         const std::map<Itemset, uint32_t>& oracle,
                         uint32_t min_support, const PathSchema& schema,
                         const ItemCatalog& cat, const char* miner_name) {
  SCOPED_TRACE(miner_name);
  std::set<Itemset> expected;
  for (const auto& [cell, support] : oracle) {
    if (support >= min_support) expected.insert(cell);
  }
  const std::set<Itemset> got = ProperFrequentCells(result, schema);
  EXPECT_EQ(got, expected);
  for (const Itemset& cell : expected) {
    const std::optional<uint32_t> support = result.CellSupport(cell);
    ASSERT_TRUE(support.has_value())
        << "missing support for a frequent cell of " << cell.size()
        << " item(s)";
    std::string name;
    for (ItemId id : cell) name += cat.ToString(id) + " ";
    EXPECT_EQ(*support, oracle.at(cell)) << "cell " << name;
  }
}

// Materializes a flowcube from any miner's output, mirroring the builder's
// measure phase with exceptions and redundancy analysis off: for every
// cuboid, the frequent cells' member paths are gathered and their flowgraph
// is rebuilt from the aggregated raw paths. Because supports and graphs
// come from the raw records (not from the miner's counts), the dumps of two
// miners agree iff their frequent-cell sets agree.
std::string CubeDumpFromMining(const PathDatabase& db,
                               const FlowCubePlan& plan,
                               const TransformedDatabase& tdb,
                               const MiningResult& result) {
  FlowCube cube(plan, db.schema_ptr());
  const ItemCatalog& cat = tdb.catalog();
  const PathAggregator aggregator(db.schema_ptr());

  std::vector<std::vector<Path>> agg(plan.path_levels.size());
  for (size_t p = 0; p < plan.path_levels.size(); ++p) {
    const PathLevel& level =
        plan.mining.path_levels[static_cast<size_t>(plan.path_levels[p])];
    agg[p].reserve(db.size());
    for (uint32_t tid = 0; tid < db.size(); ++tid) {
      agg[p].push_back(aggregator.AggregatePath(
          db.record(tid).path,
          plan.mining.cuts[static_cast<size_t>(level.cut_index)],
          level.duration_level));
    }
  }

  for (size_t i = 0; i < plan.item_levels.size(); ++i) {
    const ItemLevel& il = plan.item_levels[i];
    std::unordered_set<Itemset, ItemsetHash> frequent_cells;
    for (Itemset& cell : result.CellsAtLevel(il)) {
      frequent_cells.insert(std::move(cell));
    }
    std::unordered_map<Itemset, std::vector<uint32_t>, ItemsetHash> members;
    Itemset key;
    for (uint32_t tid = 0; tid < db.size(); ++tid) {
      const PathRecord& rec = db.record(tid);
      key.clear();
      for (size_t d = 0; d < rec.dims.size(); ++d) {
        if (il.levels[d] == 0) continue;
        const ConceptHierarchy& h = db.schema().dimensions[d];
        const NodeId n = h.AncestorAtLevel(rec.dims[d], il.levels[d]);
        if (h.Level(n) == 0) continue;
        key.push_back(cat.DimItem(d, n));
      }
      std::sort(key.begin(), key.end());
      if (frequent_cells.contains(key)) members[key].push_back(tid);
    }
    for (size_t p = 0; p < plan.path_levels.size(); ++p) {
      Cuboid& cuboid = cube.mutable_cuboid(i, p);
      for (const auto& [cell_key, tids] : members) {
        FlowCell cell;
        cell.dims = cell_key;
        cell.support = static_cast<uint32_t>(tids.size());
        cell.graph = BuildFlowGraph(PathView(agg[p], tids));
        cuboid.Insert(std::move(cell));
      }
    }
  }
  return DumpFlowCube(cube);
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, MinersAgreeWithNaiveOracle) {
  const Workload w = MakeWorkload(GetParam());
  SCOPED_TRACE("seed=" + std::to_string(w.cfg.seed) +
               " n=" + std::to_string(w.num_records) +
               " minsup=" + std::to_string(w.min_support));
  PathGenerator gen(w.cfg);
  const PathDatabase db = gen.Generate(w.num_records);

  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  const TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan.mining).value());

  SharedMinerOptions sopts;
  sopts.min_support = w.min_support;
  sopts.num_threads = 1;
  sopts.count_backend = CountBackend::kScalar;
  const MiningResult shared(&tdb, SharedMiner(tdb, sopts).Run().frequent);

  // Every counting backend must reproduce the scalar run exactly: same
  // frequent itemsets, same supports, same order (supports are exact
  // integer counts, so the backend can never change mining results). The
  // canonical cube dumps derived from each backend's run are compared
  // byte-for-byte further down.
  std::vector<std::pair<CountBackend, MiningResult>> backend_results;
  for (const CountBackend backend :
       {CountBackend::kSimd, CountBackend::kTidlist}) {
    SharedMinerOptions mopts = sopts;
    mopts.count_backend = backend;
    MiningResult result(&tdb, SharedMiner(tdb, mopts).Run().frequent);
    ASSERT_EQ(result.all().size(), shared.all().size())
        << CountBackendName(backend);
    for (size_t i = 0; i < result.all().size(); ++i) {
      ASSERT_EQ(result.all()[i].items, shared.all()[i].items)
          << CountBackendName(backend) << " itemset " << i;
      ASSERT_EQ(result.all()[i].support, shared.all()[i].support)
          << CountBackendName(backend) << " itemset " << i;
    }
    backend_results.emplace_back(backend, std::move(result));
  }

  CubingMinerOptions copts;
  copts.min_support = w.min_support;
  const MiningResult cubing(
      &tdb, CubingMiner(db, tdb, copts).Run().frequent);

  const std::map<Itemset, uint32_t> oracle =
      OracleCellSupports(db, tdb.catalog());

  // Not vacuous: with 2x2 level-1 values over >= 60 paths, some non-apex
  // cell always clears a threshold of at most 6.
  size_t non_apex_frequent = 0;
  for (const auto& [cell, support] : oracle) {
    if (!cell.empty() && support >= w.min_support) non_apex_frequent++;
  }
  ASSERT_GT(non_apex_frequent, 0u);

  ExpectMatchesOracle(shared, oracle, w.min_support, db.schema(),
                      tdb.catalog(), "SharedMiner");
  ExpectMatchesOracle(cubing, oracle, w.min_support, db.schema(),
                      tdb.catalog(), "CubingMiner");

  // Byte-equal canonical dumps: Shared-derived cube == Cubing-derived cube
  // == the production builder's cube (exceptions/redundancy off — those
  // phases are holistic post-processing, not part of the mining contract).
  const std::string dump_shared = CubeDumpFromMining(db, plan, tdb, shared);
  const std::string dump_cubing = CubeDumpFromMining(db, plan, tdb, cubing);
  EXPECT_FALSE(dump_shared.empty());
  EXPECT_EQ(dump_shared, dump_cubing);
  for (const auto& [backend, result] : backend_results) {
    EXPECT_EQ(CubeDumpFromMining(db, plan, tdb, result), dump_shared)
        << CountBackendName(backend);
  }

  FlowCubeBuilderOptions bopts;
  bopts.min_support = w.min_support;
  bopts.compute_exceptions = false;
  bopts.mark_redundant = false;
  bopts.num_threads = 1;
  const Result<FlowCube> built =
      FlowCubeBuilder(bopts).Build(db, plan);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(dump_shared, DumpFlowCube(built.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeded, DifferentialTest,
                         ::testing::Range(1, 51));

}  // namespace
}  // namespace flowcube
