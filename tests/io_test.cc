#include <sstream>

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "gen/path_generator.h"
#include "io/text_io.h"

namespace flowcube {
namespace {

void ExpectSameDatabase(const PathDatabase& a, const PathDatabase& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.schema().num_dimensions(), b.schema().num_dimensions());
  for (size_t i = 0; i < a.size(); ++i) {
    const PathRecord& ra = a.record(i);
    const PathRecord& rb = b.record(i);
    // Ids may differ across schemas; compare by name.
    for (size_t d = 0; d < ra.dims.size(); ++d) {
      EXPECT_EQ(a.schema().dimensions[d].Name(ra.dims[d]),
                b.schema().dimensions[d].Name(rb.dims[d]));
    }
    ASSERT_EQ(ra.path.size(), rb.path.size());
    for (size_t s = 0; s < ra.path.stages.size(); ++s) {
      EXPECT_EQ(a.schema().locations.Name(ra.path.stages[s].location),
                b.schema().locations.Name(rb.path.stages[s].location));
      EXPECT_EQ(ra.path.stages[s].duration, rb.path.stages[s].duration);
    }
  }
}

TEST(TextIo, RoundTripsPaperDatabase) {
  PathDatabase db = MakePaperDatabase();
  std::stringstream stream;
  ASSERT_TRUE(WritePathDatabase(db, stream).ok());
  Result<PathDatabase> back = ReadPathDatabase(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameDatabase(db, back.value());
}

TEST(TextIo, RoundTripsGeneratedDatabaseWithDurationFactors) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 3;
  cfg.seed = 77;
  PathGenerator gen(cfg);
  PathDatabase original = gen.Generate(100);
  // Rebuild with a multi-level duration hierarchy to exercise the factors.
  auto schema = std::make_shared<PathSchema>(*original.schema_ptr());
  schema->durations = DurationHierarchy({24, 7});
  PathDatabase db(schema);
  for (const PathRecord& rec : original.records()) {
    ASSERT_TRUE(db.Append(rec).ok());
  }

  std::stringstream stream;
  ASSERT_TRUE(WritePathDatabase(db, stream).ok());
  Result<PathDatabase> back = ReadPathDatabase(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameDatabase(db, back.value());
  EXPECT_EQ(back->schema().durations, db.schema().durations);
}

TEST(TextIo, RejectsMissingHeader) {
  std::stringstream stream("not a database\n");
  EXPECT_FALSE(ReadPathDatabase(stream).ok());
}

TEST(TextIo, RejectsTruncatedRecords) {
  PathDatabase db = MakePaperDatabase();
  std::stringstream stream;
  ASSERT_TRUE(WritePathDatabase(db, stream).ok());
  std::string text = stream.str();
  text.resize(text.size() - 30);  // drop the tail
  std::stringstream broken(text);
  EXPECT_FALSE(ReadPathDatabase(broken).ok());
}

TEST(TextIo, RejectsUnknownConceptInRecord) {
  PathDatabase db = MakePaperDatabase();
  std::stringstream stream;
  ASSERT_TRUE(WritePathDatabase(db, stream).ok());
  std::string text = stream.str();
  const size_t pos = text.find("tennis,");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "skates");
  std::stringstream broken(text);
  const Result<PathDatabase> r = ReadPathDatabase(broken);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(TextIo, RejectsMalformedStage) {
  std::stringstream stream(
      "flowcube-paths v1\n"
      "dimension d\n"
      "concept a *\n"
      "end\n"
      "locations\n"
      "concept x *\n"
      "end\n"
      "durations\n"
      "records 1\n"
      "a|x10\n");  // missing ':'
  EXPECT_FALSE(ReadPathDatabase(stream).ok());
}

TEST(TextIo, FileRoundTrip) {
  PathDatabase db = MakePaperDatabase();
  const std::string path = ::testing::TempDir() + "/flowcube_io_test.txt";
  ASSERT_TRUE(WritePathDatabaseFile(db, path).ok());
  Result<PathDatabase> back = ReadPathDatabaseFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameDatabase(db, back.value());
  EXPECT_FALSE(ReadPathDatabaseFile("/nonexistent/nope.txt").ok());
}

TEST(TextIo, MiningResultsIdenticalAfterRoundTrip) {
  // The serialized database must be byte-for-byte equivalent for the
  // algorithms: schema rebuild yields identical node numbering (insertion
  // order is preserved), so mining produces identical outputs.
  PathDatabase db = MakePaperDatabase();
  std::stringstream stream;
  ASSERT_TRUE(WritePathDatabase(db, stream).ok());
  Result<PathDatabase> back = ReadPathDatabase(stream);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(RecordToString(db.schema(), db.record(i)),
              RecordToString(back->schema(), back->record(i)));
  }
}

}  // namespace
}  // namespace flowcube
