#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace flowcube {
namespace {

TEST(ResolveNumThreadsTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
}

// getenv/setenv are mt-unsafe, but this test runs before any pool thread
// exists and gtest runs tests single-threaded.
// NOLINTBEGIN(concurrency-mt-unsafe)
TEST(ResolveNumThreadsTest, EnvDrivesDefault) {
  const char* saved = std::getenv("FLOWCUBE_THREADS");
  const std::string saved_value = saved ? saved : "";
  setenv("FLOWCUBE_THREADS", "3", 1);
  EXPECT_EQ(ResolveNumThreads(), 3u);
  EXPECT_EQ(ResolveNumThreads(0), 3u);
  // Explicit request still beats the environment.
  EXPECT_EQ(ResolveNumThreads(2), 2u);
  // Garbage and non-positive values fall through to hardware concurrency.
  setenv("FLOWCUBE_THREADS", "0", 1);
  EXPECT_GE(ResolveNumThreads(), 1u);
  setenv("FLOWCUBE_THREADS", "banana", 1);
  EXPECT_GE(ResolveNumThreads(), 1u);
  if (saved) {
    setenv("FLOWCUBE_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("FLOWCUBE_THREADS");
  }
}
// NOLINTEND(concurrency-mt-unsafe)

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, /*grain=*/1,
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  constexpr size_t kN = 1'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelForChunks(kN, /*grain=*/7,
                         [&](size_t shard, size_t begin, size_t end) {
                           EXPECT_LT(shard, 3u);
                           EXPECT_LT(begin, end);
                           EXPECT_LE(end, kN);
                           for (size_t i = begin; i < end; ++i) {
                             hits[i].fetch_add(1);
                           }
                         });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, /*grain=*/1, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelForChunks(0, /*grain=*/1,
                         [&](size_t, size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineAsShardZero) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  pool.ParallelForChunks(100, /*grain=*/10,
                         [&](size_t shard, size_t begin, size_t end) {
                           EXPECT_EQ(shard, 0u);
                           EXPECT_EQ(std::this_thread::get_id(), caller);
                           calls += end - begin;
                         });
  EXPECT_EQ(calls, 100u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(1'000, /*grain=*/1,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 137) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool is intact after a throwing loop.
  std::atomic<int> after{0};
  pool.ParallelFor(100, /*grain=*/1, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPoolTest, ExceptionFromChunkBodyPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelForChunks(
                   10, /*grain=*/1,
                   [&](size_t, size_t, size_t) {
                     throw std::logic_error("chunk failure");
                   }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedLoopsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, /*grain=*/1, [&](size_t o) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    // The nested loop must execute inline on the shard that started it.
    pool.ParallelFor(kInner, /*grain=*/1, [&](size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, PerShardPartialsSumLikeSerial) {
  // The reduction pattern every build phase uses: shard-indexed partials
  // merged after the loop equal the serial total.
  constexpr size_t kN = 5'000;
  ThreadPool pool(4);
  std::vector<uint64_t> partial(pool.num_threads(), 0);
  pool.ParallelForChunks(kN, /*grain=*/16,
                         [&](size_t shard, size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             partial[shard] += i;
                           }
                         });
  const uint64_t total =
      std::accumulate(partial.begin(), partial.end(), uint64_t{0});
  EXPECT_EQ(total, uint64_t{kN} * (kN - 1) / 2);
}

}  // namespace
}  // namespace flowcube
