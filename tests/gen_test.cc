#include <map>
#include <set>

#include <gtest/gtest.h>

#include "gen/path_generator.h"
#include "gen/sequence_pool.h"

namespace flowcube {
namespace {

TEST(SequencePool, BuildsLocationHierarchyShape) {
  GeneratorConfig cfg;
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 4;
  ConceptHierarchy loc("location");
  SequencePool::BuildLocationHierarchy(cfg, &loc);
  EXPECT_EQ(loc.NodesAtLevel(1).size(), 3u);
  EXPECT_EQ(loc.NodesAtLevel(2).size(), 12u);
  EXPECT_EQ(loc.MaxLevel(), 2);
}

TEST(SequencePool, SequencesAreDistinctAndValid) {
  GeneratorConfig cfg;
  cfg.num_sequences = 30;
  ConceptHierarchy loc("location");
  SequencePool::BuildLocationHierarchy(cfg, &loc);
  Random rng(1);
  SequencePool pool(cfg, loc, rng);
  EXPECT_EQ(pool.size(), 30u);

  std::set<std::vector<NodeId>> seen;
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto& seq = pool.sequence(i);
    EXPECT_GE(seq.size(), static_cast<size_t>(cfg.min_sequence_length));
    EXPECT_LE(seq.size(), static_cast<size_t>(cfg.max_sequence_length));
    for (size_t j = 1; j < seq.size(); ++j) {
      EXPECT_NE(seq[j], seq[j - 1]) << "immediate repetition";
    }
    for (NodeId n : seq) {
      EXPECT_EQ(loc.Level(n), 2) << "sequences use concrete locations";
    }
    EXPECT_TRUE(seen.insert(seq).second) << "duplicate sequence";
  }
}

TEST(SequencePool, CapsWhenSpaceExhausted) {
  // 2 locations, length-1..2 sequences: only a handful of distinct ones
  // exist; the pool must stop rather than loop forever.
  GeneratorConfig cfg;
  cfg.num_location_groups = 1;
  cfg.locations_per_group = 2;
  cfg.num_sequences = 100;
  cfg.min_sequence_length = 1;
  cfg.max_sequence_length = 2;
  ConceptHierarchy loc("location");
  SequencePool::BuildLocationHierarchy(cfg, &loc);
  Random rng(2);
  SequencePool pool(cfg, loc, rng);
  EXPECT_GT(pool.size(), 0u);
  EXPECT_LE(pool.size(), 4u);  // a, b, ab, ba
}

TEST(PathGenerator, DeterministicForSameSeed) {
  GeneratorConfig cfg;
  cfg.seed = 77;
  PathGenerator g1(cfg);
  PathGenerator g2(cfg);
  PathDatabase a = g1.Generate(100);
  PathDatabase b = g2.Generate(100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.record(i).dims, b.record(i).dims);
    EXPECT_EQ(a.record(i).path, b.record(i).path);
  }
}

TEST(PathGenerator, DifferentSeedsDiffer) {
  GeneratorConfig c1;
  c1.seed = 1;
  GeneratorConfig c2;
  c2.seed = 2;
  PathDatabase a = PathGenerator(c1).Generate(50);
  PathDatabase b = PathGenerator(c2).Generate(50);
  int differing = 0;
  for (size_t i = 0; i < 50; ++i) {
    if (!(a.record(i).path == b.record(i).path)) differing++;
  }
  EXPECT_GT(differing, 10);
}

TEST(PathGenerator, SchemaMatchesConfig) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 3;
  cfg.dim_distinct_per_level = {2, 3, 4};
  PathGenerator gen(cfg);
  const PathSchema& schema = *gen.schema();
  ASSERT_EQ(schema.num_dimensions(), 3u);
  for (const auto& dim : schema.dimensions) {
    EXPECT_EQ(dim.MaxLevel(), 3);
    EXPECT_EQ(dim.NodesAtLevel(1).size(), 2u);
    EXPECT_EQ(dim.NodesAtLevel(2).size(), 6u);
    EXPECT_EQ(dim.NodesAtLevel(3).size(), 24u);
  }
}

TEST(PathGenerator, RecordsAreSchemaValid) {
  GeneratorConfig cfg;
  cfg.num_distinct_durations = 5;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(200);
  ASSERT_EQ(db.size(), 200u);
  for (const PathRecord& rec : db.records()) {
    for (size_t d = 0; d < rec.dims.size(); ++d) {
      EXPECT_EQ(db.schema().dimensions[d].Level(rec.dims[d]), 3);
    }
    for (const Stage& s : rec.path.stages) {
      EXPECT_GE(s.duration, 0);
      EXPECT_LT(s.duration, 5);
      EXPECT_EQ(db.schema().locations.Level(s.location), 2);
    }
  }
}

TEST(PathGenerator, PathsComeFromSequencePool) {
  GeneratorConfig cfg;
  cfg.num_sequences = 5;
  PathGenerator gen(cfg);
  std::set<std::vector<NodeId>> pool;
  for (size_t i = 0; i < gen.sequence_pool().size(); ++i) {
    pool.insert(gen.sequence_pool().sequence(i));
  }
  PathDatabase db = gen.Generate(100);
  for (const PathRecord& rec : db.records()) {
    std::vector<NodeId> locs;
    for (const Stage& s : rec.path.stages) locs.push_back(s.location);
    EXPECT_TRUE(pool.contains(locs));
  }
}

TEST(PathGenerator, ZipfSkewConcentratesValues) {
  GeneratorConfig skewed;
  skewed.dim_zipf_alpha = 2.5;
  skewed.seed = 5;
  GeneratorConfig flat;
  flat.dim_zipf_alpha = 0.0;
  flat.seed = 5;

  auto top_share = [](PathGenerator& gen) {
    PathDatabase db = gen.Generate(2000);
    std::map<NodeId, int> counts;
    for (const PathRecord& r : db.records()) counts[r.dims[0]]++;
    int max = 0;
    for (const auto& [n, c] : counts) max = std::max(max, c);
    return static_cast<double>(max) / db.size();
  };
  PathGenerator gs(skewed);
  PathGenerator gf(flat);
  EXPECT_GT(top_share(gs), top_share(gf) * 2);
}

TEST(PathGenerator, ToItinerariesRoundTripsDurations) {
  GeneratorConfig cfg;
  cfg.seed = 9;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(20);
  const int64_t bin = 3600;
  const auto its = PathGenerator::ToItineraries(db, bin);
  ASSERT_EQ(its.size(), db.size());
  const DurationDiscretizer disc(bin);
  for (size_t i = 0; i < its.size(); ++i) {
    ASSERT_EQ(its[i].stays.size(), db.record(i).path.size());
    for (size_t s = 0; s < its[i].stays.size(); ++s) {
      const Stay& stay = its[i].stays[s];
      EXPECT_EQ(stay.location, db.record(i).path.stages[s].location);
      EXPECT_EQ(disc.Discretize(stay.time_out - stay.time_in),
                db.record(i).path.stages[s].duration);
    }
  }
}

}  // namespace
}  // namespace flowcube
