// Shard differential: the coordinator's responses are byte-identical to a
// single-shard deployment, across seeds, shard counts, and both transports
// — and under live per-shard ingestion every response is explained exactly
// by its pinned epoch vector.
//
// Two oracles:
//  * Static phase: a 1-shard local-transport deployment. The coordinator
//    canonicalizes every merged flowgraph, so its output is a pure function
//    of the global cube content — N shards over any transport must produce
//    the same bytes as one shard.
//  * Live phase: recorded (request, response, epoch-vector) triples are
//    replayed through a FixedBackend whose per-shard snapshots are
//    from-scratch FlowCubeBuilder rebuilds (with ShardNode::ShardLocalBuild
//    options) of exactly the record prefix each shard held at its recorded
//    epoch. The splitter applies non-empty sub-batches only, so shard s at
//    epoch e holds precisely the records of its first e-1 non-empty
//    sub-batches — re-partitioning the stream offline reproduces it.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "gen/path_generator.h"
#include "path/path_database.h"
#include "serve/protocol.h"
#include "serve/query_service.h"
#include "serve/snapshot_registry.h"
#include "shard/backend.h"
#include "shard/coordinator.h"
#include "shard/ingest_splitter.h"
#include "shard/partitioner.h"
#include "shard/shard_node.h"

namespace flowcube {
namespace {

constexpr size_t kBatchSize = 10;

GeneratorConfig FixtureConfig(uint64_t seed) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.min_sequence_length = 2;
  cfg.max_sequence_length = 5;
  cfg.seed = seed;
  return cfg;
}

FlowCubeBuilderOptions GlobalOptions() {
  // The sharded deployment's contract: global iceberg threshold applied by
  // the coordinator; exceptions and redundancy (whole-cube passes) off.
  FlowCubeBuilderOptions options;
  options.min_support = 2;
  options.compute_exceptions = false;
  options.mark_redundant = false;
  return options;
}

// A cell coordinate expressed as the value names a request carries.
struct Candidate {
  std::vector<std::string> values;
  uint32_t pl_index = 0;
};

// Decodes every materialized cell of `cube` into request value names.
std::vector<Candidate> HarvestCells(const FlowCube& cube) {
  std::vector<Candidate> out;
  const FlowCubePlan& plan = cube.plan();
  for (size_t il = 0; il < plan.item_levels.size(); ++il) {
    for (size_t pl = 0; pl < plan.path_levels.size(); ++pl) {
      for (const FlowCell* cell : cube.cuboid(il, pl).SortedCells()) {
        Candidate c;
        c.pl_index = static_cast<uint32_t>(pl);
        c.values.assign(cube.schema().num_dimensions(), "*");
        for (ItemId id : cell->dims) {
          const size_t d = cube.catalog().DimOf(id);
          c.values[d] =
              cube.schema().dimensions[d].Name(cube.catalog().NodeOf(id));
        }
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

std::vector<std::string> LeafValues(const PathSchema& schema,
                                    const PathRecord& rec) {
  std::vector<std::string> values;
  values.reserve(rec.dims.size());
  for (size_t d = 0; d < rec.dims.size(); ++d) {
    values.push_back(schema.dimensions[d].Name(rec.dims[d]));
  }
  return values;
}

// Deterministic request mix over every public type: materialized-cell
// lookups, leaf lookups falling back to ancestors, drill-downs, similarity
// pairs, stats, and one guaranteed name miss (errors must be identical
// across deployments too).
QueryRequest MakeRequest(const PathDatabase& db,
                         const std::vector<Candidate>& pool, int lane,
                         int i) {
  QueryRequest req;
  req.request_id =
      static_cast<uint64_t>(lane) * 100000 + static_cast<uint64_t>(i);
  const size_t pick =
      (static_cast<size_t>(lane) * 13 + static_cast<size_t>(i) * 7) %
      pool.size();
  switch ((lane + i) % 6) {
    case 0:
      req.type = RequestType::kPointLookup;
      req.values = pool[pick].values;
      req.pl_index = pool[pick].pl_index;
      break;
    case 1:
      req.type = RequestType::kCellOrAncestor;
      req.values = LeafValues(
          db.schema(),
          db.record((static_cast<size_t>(lane) * 31 +
                     static_cast<size_t>(i) * 11) %
                    db.size()));
      break;
    case 2:
      req.type = RequestType::kDrillDown;
      req.values = pool[pick].values;
      req.pl_index = pool[pick].pl_index;
      req.dim = static_cast<uint32_t>((lane + i) % 2);
      break;
    case 3:
      req.type = RequestType::kSimilarity;
      req.values = pool[pick].values;
      req.values_b = pool[(pick + 1) % pool.size()].values;
      req.pl_index = pool[pick].pl_index;
      break;
    case 4:
      req.type = RequestType::kStats;
      break;
    default:
      req.type = RequestType::kPointLookup;
      req.values = {"no-such-value", "*"};
      break;
  }
  return req;
}

// One sharded deployment: N nodes, a splitter, one backend (in-process or
// FCQP-over-loopback), and the coordinator on top.
struct Deployment {
  SchemaPtr schema;
  FlowCubePlan plan;
  std::unique_ptr<ShardPartitioner> partitioner;
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::unique_ptr<ShardIngestSplitter> splitter;
  std::unique_ptr<ShardBackend> backend;
  std::unique_ptr<ShardCoordinator> coordinator;
};

void BuildDeployment(const PathDatabase& db, size_t num_shards, bool remote,
                     Deployment* d) {
  d->schema = db.schema_ptr();
  d->plan = FlowCubePlan::Default(db.schema()).value();
  d->partitioner = std::make_unique<DimsHashPartitioner>(num_shards);
  std::vector<ShardNode*> raw;
  std::vector<const QueryService*> services;
  std::vector<uint16_t> ports;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardNodeOptions options;
    options.global_build = GlobalOptions();
    options.serve_remote = remote;
    Result<std::unique_ptr<ShardNode>> node =
        ShardNode::Create(d->schema, d->plan, options);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    d->nodes.push_back(std::move(node).value());
    raw.push_back(d->nodes.back().get());
    services.push_back(&d->nodes.back()->service());
    if (remote) {
      ASSERT_NE(d->nodes.back()->port(), 0u);
      ports.push_back(d->nodes.back()->port());
    }
  }
  d->splitter =
      std::make_unique<ShardIngestSplitter>(d->partitioner.get(), raw);
  if (remote) {
    d->backend = std::make_unique<RemoteShardBackend>(std::move(ports));
  } else {
    d->backend = std::make_unique<LocalShardBackend>(std::move(services));
  }
  ShardCoordinatorOptions coordinator_options;
  coordinator_options.min_support = GlobalOptions().min_support;
  d->coordinator = std::make_unique<ShardCoordinator>(
      d->schema, d->plan, d->backend.get(), coordinator_options);
}

void IngestAll(const PathDatabase& db, Deployment* d) {
  const std::span<const PathRecord> records(db.records());
  for (size_t offset = 0; offset < records.size(); offset += kBatchSize) {
    const size_t n = std::min(kBatchSize, records.size() - offset);
    ASSERT_TRUE(d->splitter->Apply(records.subspan(offset, n)).ok());
  }
}

std::vector<Candidate> PoolFromMonolithicBuild(const PathDatabase& db,
                                               const FlowCubePlan& plan) {
  const FlowCubeBuilder builder(GlobalOptions());
  Result<FlowCube> cube = builder.Build(db, plan);
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  return HarvestCells(cube.value());
}

TEST(ShardDifferentialTest, ByteIdenticalAcrossSeedsShardCountsTransports) {
  for (const uint64_t seed : {11u, 29u, 53u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    PathGenerator gen(FixtureConfig(seed));
    const PathDatabase db = gen.Generate(160);

    Deployment oracle;
    BuildDeployment(db, 1, /*remote=*/false, &oracle);
    if (HasFatalFailure()) return;
    IngestAll(db, &oracle);

    const std::vector<Candidate> pool =
        PoolFromMonolithicBuild(db, oracle.plan);
    ASSERT_FALSE(pool.empty());

    for (const size_t num_shards : {2u, 4u, 8u}) {
      for (const bool remote : {false, true}) {
        SCOPED_TRACE("shards " + std::to_string(num_shards) +
                     (remote ? " remote" : " local"));
        Deployment d;
        BuildDeployment(db, num_shards, remote, &d);
        if (HasFatalFailure()) return;
        IngestAll(db, &d);

        for (int lane = 0; lane < 4; ++lane) {
          for (int i = 0; i < 12; ++i) {
            const QueryRequest request = MakeRequest(db, pool, lane, i);
            const CoordinatorResult want = oracle.coordinator->Execute(request);
            const CoordinatorResult got = d.coordinator->Execute(request);
            // The coordinator's public epoch is always 0; per-shard truth
            // travels in the epoch vector.
            EXPECT_EQ(got.response.epoch, 0u);
            ASSERT_EQ(EncodeResponse(got.response),
                      EncodeResponse(want.response))
                << "request type "
                << static_cast<int>(request.type) << " id "
                << request.request_id << "\n--- oracle ---\n"
                << want.response.body << "\n--- sharded ---\n"
                << got.response.body;
            // Errors raised before the fan-out carry no epochs; anything
            // that fanned out pins exactly one epoch per shard.
            EXPECT_TRUE(got.epochs.empty() ||
                        got.epochs.size() == num_shards);
          }
        }
      }
    }
  }
}

// Replay backend: answers shard s from one fixed snapshot, exactly like a
// shard whose registry is frozen at the recorded epoch.
class FixedBackend : public ShardBackend {
 public:
  explicit FixedBackend(std::vector<CubeSnapshot> snapshots)
      : snapshots_(std::move(snapshots)) {}

  Result<QueryResponse> Call(size_t shard,
                             const QueryRequest& request) override {
    return QueryService::ExecuteOn(snapshots_[shard], request);
  }
  size_t num_shards() const override { return snapshots_.size(); }

 private:
  std::vector<CubeSnapshot> snapshots_;
};

TEST(ShardDifferentialTest, LiveIngestionResponsesMatchPinnedEpochVector) {
  constexpr size_t kNumShards = 4;
  constexpr size_t kNumRecords = 240;
  constexpr int kNumLanes = 3;
  constexpr int kRequestsPerLane = 40;

  PathGenerator gen(FixtureConfig(61));
  const PathDatabase db = gen.Generate(kNumRecords);

  Deployment d;
  BuildDeployment(db, kNumShards, /*remote=*/false, &d);
  if (HasFatalFailure()) return;

  // The pool comes from the full database: early queries simply miss cells
  // that are not yet above the (global) threshold, which is itself a case
  // the replay must explain.
  const std::vector<Candidate> pool = PoolFromMonolithicBuild(db, d.plan);
  ASSERT_FALSE(pool.empty());

  struct Recorded {
    QueryRequest request;
    CoordinatorResult result;
  };
  std::vector<std::vector<Recorded>> recorded(kNumLanes);

  // Lanes hammer the coordinator while the main thread keeps splitting
  // batches into the shards; each response must be one consistent
  // epoch-vector's worth of cube state, never a half-applied batch.
  std::vector<std::thread> lanes;
  lanes.reserve(kNumLanes);
  for (int lane = 0; lane < kNumLanes; ++lane) {
    lanes.emplace_back([&, lane] {
      for (int i = 0; i < kRequestsPerLane; ++i) {
        Recorded r;
        r.request = MakeRequest(db, pool, lane, i);
        r.result = d.coordinator->Execute(r.request);
        recorded[lane].push_back(std::move(r));
      }
    });
  }
  {
    const std::span<const PathRecord> records(db.records());
    for (size_t offset = 0; offset < records.size(); offset += kBatchSize) {
      const size_t n = std::min(kBatchSize, records.size() - offset);
      ASSERT_TRUE(d.splitter->Apply(records.subspan(offset, n)).ok());
    }
  }
  for (std::thread& t : lanes) t.join();

  // Offline re-partition of the stream: per shard, the record prefix after
  // each non-empty sub-batch. prefixes[s][k] = records shard s held at
  // epoch k+1 (epoch 1 = the empty cube published at creation).
  std::vector<std::vector<std::vector<PathRecord>>> prefixes(kNumShards);
  for (size_t s = 0; s < kNumShards; ++s) {
    prefixes[s].push_back({});  // epoch 1
  }
  {
    const std::span<const PathRecord> records(db.records());
    for (size_t offset = 0; offset < records.size(); offset += kBatchSize) {
      const size_t n = std::min(kBatchSize, records.size() - offset);
      std::vector<std::vector<PathRecord>> buckets(kNumShards);
      for (const PathRecord& record : records.subspan(offset, n)) {
        buckets[d.partitioner->ShardOf(record)].push_back(record);
      }
      for (size_t s = 0; s < kNumShards; ++s) {
        if (buckets[s].empty()) continue;
        std::vector<PathRecord> next = prefixes[s].back();
        next.insert(next.end(), buckets[s].begin(), buckets[s].end());
        prefixes[s].push_back(std::move(next));
      }
    }
    for (size_t s = 0; s < kNumShards; ++s) {
      ASSERT_EQ(d.nodes[s]->current_epoch(), prefixes[s].size());
      ASSERT_EQ(d.nodes[s]->live_record_count(), prefixes[s].back().size());
    }
  }

  // Snapshot cache: shard s at epoch e, rebuilt from scratch with the
  // shard-local build options — exactly what the live shard ran.
  const FlowCubeBuilder shard_builder(
      ShardNode::ShardLocalBuild(GlobalOptions()));
  std::map<std::pair<size_t, uint64_t>, CubeSnapshot> cache;
  const auto snapshot_at = [&](size_t s, uint64_t epoch) -> CubeSnapshot {
    const auto key = std::make_pair(s, epoch);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    const std::vector<PathRecord>& prefix = prefixes[s][epoch - 1];
    PathDatabase shard_db(db.schema_ptr());
    for (const PathRecord& record : prefix) {
      EXPECT_TRUE(shard_db.Append(record).ok());
    }
    Result<FlowCube> cube = shard_builder.Build(shard_db, d.plan);
    EXPECT_TRUE(cube.ok()) << cube.status().ToString();
    CubeSnapshot snapshot;
    snapshot.epoch = epoch;
    snapshot.records = prefix.size();
    snapshot.cube = std::make_shared<const FlowCube>(std::move(cube.value()));
    cache[key] = snapshot;
    return snapshot;
  };

  size_t replayed = 0;
  for (int lane = 0; lane < kNumLanes; ++lane) {
    ASSERT_EQ(recorded[lane].size(), static_cast<size_t>(kRequestsPerLane));
    for (const Recorded& r : recorded[lane]) {
      SCOPED_TRACE("lane " + std::to_string(lane) + " request " +
                   std::to_string(r.request.request_id));
      std::vector<CubeSnapshot> snapshots;
      if (r.result.epochs.size() == kNumShards) {
        for (size_t s = 0; s < kNumShards; ++s) {
          const uint64_t epoch = r.result.epochs[s];
          ASSERT_GE(epoch, 1u);
          ASSERT_LE(epoch, prefixes[s].size());
          snapshots.push_back(snapshot_at(s, epoch));
        }
      } else {
        // The coordinator failed before fanning out (e.g. a name error):
        // the response is snapshot-independent, so replay against empty
        // shards and expect the same pre-fan-out error with no epochs.
        ASSERT_TRUE(r.result.epochs.empty());
        for (size_t s = 0; s < kNumShards; ++s) {
          snapshots.push_back(snapshot_at(s, 1));
        }
      }
      FixedBackend fixed(std::move(snapshots));
      ShardCoordinatorOptions options;
      options.min_support = GlobalOptions().min_support;
      const ShardCoordinator oracle(d.schema, d.plan, &fixed, options);
      const CoordinatorResult want = oracle.Execute(r.request);
      ASSERT_EQ(EncodeResponse(r.result.response),
                EncodeResponse(want.response))
          << "--- live ---\n"
          << r.result.response.body << "\n--- replay ---\n"
          << want.response.body;
      EXPECT_EQ(want.epochs, r.result.epochs);
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, static_cast<size_t>(kNumLanes * kRequestsPerLane));
}

}  // namespace
}  // namespace flowcube
