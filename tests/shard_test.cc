// Unit tests of the sharding layer (src/shard/): partitioner determinism
// and bounds, shard-local build-option derivation, ingest splitting with
// epoch accounting, shard-node lifecycle, and the coordinator's dispatch /
// merge / partial-failure semantics against small fixtures. The heavy
// byte-identity sweeps live in shard_differential_test.cc (label: shard).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowcube/dump.h"
#include "gen/path_generator.h"
#include "path/path_database.h"
#include "serve/query_service.h"
#include "shard/backend.h"
#include "shard/coordinator.h"
#include "shard/ingest_splitter.h"
#include "shard/partitioner.h"
#include "shard/shard_node.h"

namespace flowcube {
namespace {

GeneratorConfig FixtureConfig() {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.min_sequence_length = 2;
  cfg.max_sequence_length = 5;
  cfg.seed = 909;
  return cfg;
}

FlowCubeBuilderOptions GlobalOptions() {
  // Exceptions and redundancy are whole-cube passes a sharded deployment
  // does not run; the coordinator's contract is defined against a
  // monolithic build with them off.
  FlowCubeBuilderOptions options;
  options.min_support = 2;
  options.compute_exceptions = false;
  options.mark_redundant = false;
  return options;
}

PathRecord RecordWithLeadingId(NodeId id) {
  PathRecord record;
  record.dims = {id, 0};
  record.path = Path{{Stage{1, 1}}};
  return record;
}

// --- Partitioners ----------------------------------------------------------

TEST(PartitionerTest, DimsHashIsDeterministicInRangeAndSpreads) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(200);
  DimsHashPartitioner partitioner(4);
  const DimsHashPartitioner again(4);
  std::set<size_t> used;
  for (const PathRecord& record : db.records()) {
    const size_t shard = partitioner.ShardOf(record);
    ASSERT_LT(shard, 4u);
    // Pure function of the record: a second instance agrees on every call.
    ASSERT_EQ(again.ShardOf(record), shard);
    used.insert(shard);
  }
  // 200 records over 4 hash buckets must touch more than one shard.
  EXPECT_GT(used.size(), 1u);
  // Records with equal dims co-locate regardless of their paths.
  PathRecord a = db.record(0);
  PathRecord b = db.record(0);
  b.path = Path{{Stage{42, 7}}};
  EXPECT_EQ(partitioner.ShardOf(a), partitioner.ShardOf(b));
}

TEST(PartitionerTest, RangePartitionerMapsContiguousRangesInOrder) {
  RangePartitioner partitioner(4, 100);
  EXPECT_EQ(partitioner.ShardOf(RecordWithLeadingId(0)), 0u);
  EXPECT_EQ(partitioner.ShardOf(RecordWithLeadingId(24)), 0u);
  EXPECT_EQ(partitioner.ShardOf(RecordWithLeadingId(25)), 1u);
  EXPECT_EQ(partitioner.ShardOf(RecordWithLeadingId(50)), 2u);
  EXPECT_EQ(partitioner.ShardOf(RecordWithLeadingId(99)), 3u);
  // Ids beyond the declared space clamp into the last shard.
  EXPECT_EQ(partitioner.ShardOf(RecordWithLeadingId(1000)), 3u);
  // Shard index is monotone in the leading id — contiguous ranges.
  size_t prev = 0;
  for (NodeId id = 0; id < 100; ++id) {
    const size_t shard = partitioner.ShardOf(RecordWithLeadingId(id));
    ASSERT_GE(shard, prev);
    ASSERT_LT(shard, 4u);
    prev = shard;
  }
}

TEST(PartitionerTest, MakePartitionerResolvesNamesAndRejectsUnknown) {
  Result<std::unique_ptr<ShardPartitioner>> dflt = MakePartitioner("", 2, 10);
  ASSERT_TRUE(dflt.ok());
  EXPECT_EQ((*dflt)->name(), "dims_hash");
  Result<std::unique_ptr<ShardPartitioner>> hash =
      MakePartitioner("dims_hash", 3, 10);
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ((*hash)->num_shards(), 3u);
  Result<std::unique_ptr<ShardPartitioner>> range =
      MakePartitioner("range", 2, 10);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ((*range)->name(), "range");
  Result<std::unique_ptr<ShardPartitioner>> bad =
      MakePartitioner("bogus", 2, 10);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(bad.status().message(), "unknown partitioner kind: bogus");
}

// --- Shard-local options ---------------------------------------------------

TEST(ShardNodeTest, ShardLocalBuildKeepsEverythingExceptGlobalPasses) {
  FlowCubeBuilderOptions global = GlobalOptions();
  global.min_support = 5;
  const FlowCubeBuilderOptions local = ShardNode::ShardLocalBuild(global);
  EXPECT_EQ(local.min_support, 1u);
  EXPECT_FALSE(local.compute_exceptions);
  EXPECT_FALSE(local.mark_redundant);
}

TEST(ShardNodeTest, FreshShardPublishesTheEmptyCubeAtEpochOne) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(1);
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  ShardNodeOptions options;
  options.global_build = GlobalOptions();
  Result<std::unique_ptr<ShardNode>> node =
      ShardNode::Create(db.schema_ptr(), plan, options);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_EQ((*node)->current_epoch(), 1u);
  EXPECT_EQ((*node)->live_record_count(), 0u);
  EXPECT_EQ((*node)->port(), 0u);

  // A record-less shard answers queries instead of failing the fan-out.
  QueryRequest stats;
  stats.type = RequestType::kStats;
  const QueryResponse response = (*node)->service().Execute(stats);
  EXPECT_EQ(response.code, Status::Code::kOk);
  EXPECT_EQ(response.epoch, 1u);
  EXPECT_EQ(response.body.substr(0, 10), "records 0\n");
}

// --- Deployment helper -----------------------------------------------------

struct Deployment {
  SchemaPtr schema;
  FlowCubePlan plan;
  std::unique_ptr<ShardPartitioner> partitioner;
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::unique_ptr<ShardIngestSplitter> splitter;
  std::unique_ptr<ShardBackend> backend;
  std::unique_ptr<ShardCoordinator> coordinator;
};

void BuildLocalDeployment(const PathDatabase& db, size_t num_shards,
                          Deployment* d) {
  d->schema = db.schema_ptr();
  d->plan = FlowCubePlan::Default(db.schema()).value();
  d->partitioner = std::make_unique<DimsHashPartitioner>(num_shards);
  std::vector<ShardNode*> raw;
  std::vector<const QueryService*> services;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardNodeOptions options;
    options.global_build = GlobalOptions();
    Result<std::unique_ptr<ShardNode>> node =
        ShardNode::Create(d->schema, d->plan, options);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    d->nodes.push_back(std::move(node).value());
    raw.push_back(d->nodes.back().get());
    services.push_back(&d->nodes.back()->service());
  }
  d->splitter =
      std::make_unique<ShardIngestSplitter>(d->partitioner.get(), raw);
  d->backend = std::make_unique<LocalShardBackend>(services);
  ShardCoordinatorOptions coordinator_options;
  coordinator_options.min_support = GlobalOptions().min_support;
  d->coordinator = std::make_unique<ShardCoordinator>(
      d->schema, d->plan, d->backend.get(), coordinator_options);
}

void IngestAll(const PathDatabase& db, Deployment* d, size_t batch = 16) {
  const std::span<const PathRecord> records(db.records());
  for (size_t offset = 0; offset < records.size(); offset += batch) {
    const size_t n = std::min(batch, records.size() - offset);
    ASSERT_TRUE(d->splitter->Apply(records.subspan(offset, n)).ok());
  }
}

// --- Ingest splitter -------------------------------------------------------

TEST(SplitterTest, RoutesEveryRecordAndAdvancesOnlyTouchedShards) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(60);
  Deployment d;
  BuildLocalDeployment(db, 2, &d);

  SplitStats stats;
  ASSERT_TRUE(
      d.splitter->Apply(std::span<const PathRecord>(db.records()), &stats)
          .ok());
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_EQ(stats.per_shard[0] + stats.per_shard[1], db.size());
  EXPECT_EQ(d.nodes[0]->live_record_count(), stats.per_shard[0]);
  EXPECT_EQ(d.nodes[1]->live_record_count(), stats.per_shard[1]);

  // A batch containing only shard-0 records must not advance shard 1's
  // epoch: empty sub-batches are skipped, not applied.
  std::vector<PathRecord> only_zero;
  for (const PathRecord& record : db.records()) {
    if (d.partitioner->ShardOf(record) == 0) only_zero.push_back(record);
    if (only_zero.size() == 5) break;
  }
  ASSERT_FALSE(only_zero.empty());
  const uint64_t epoch0 = d.nodes[0]->current_epoch();
  const uint64_t epoch1 = d.nodes[1]->current_epoch();
  SplitStats skewed;
  ASSERT_TRUE(
      d.splitter->Apply(std::span<const PathRecord>(only_zero), &skewed)
          .ok());
  EXPECT_EQ(skewed.per_shard[1], 0u);
  EXPECT_EQ(d.nodes[0]->current_epoch(), epoch0 + 1);
  EXPECT_EQ(d.nodes[1]->current_epoch(), epoch1);
}

// --- Coordinator -----------------------------------------------------------

// The monolithic oracle: one cube over the whole database, served through
// the single-node execution path.
CubeSnapshot MonolithicSnapshot(const PathDatabase& db,
                                const FlowCubePlan& plan) {
  const FlowCubeBuilder builder(GlobalOptions());
  Result<FlowCube> cube = builder.Build(db, plan);
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  CubeSnapshot snapshot;
  snapshot.epoch = 1;
  snapshot.records = db.size();
  snapshot.cube = std::make_shared<const FlowCube>(std::move(cube.value()));
  return snapshot;
}

TEST(ShardCoordinatorTest, StatsMatchMonolithicBuildByteForByte) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(120);
  Deployment d;
  BuildLocalDeployment(db, 3, &d);
  IngestAll(db, &d);

  QueryRequest request;
  request.type = RequestType::kStats;
  request.request_id = 5;
  const CoordinatorResult result = d.coordinator->Execute(request);
  ASSERT_EQ(result.response.code, Status::Code::kOk);
  EXPECT_EQ(result.response.request_id, 5u);
  EXPECT_EQ(result.response.epoch, 0u);  // epoch vector carries the truth
  EXPECT_EQ(result.epochs.size(), 3u);

  const CubeSnapshot mono = MonolithicSnapshot(db, d.plan);
  const QueryResponse expected = QueryService::ExecuteOn(mono, request);
  EXPECT_EQ(result.response.body, expected.body);
}

TEST(ShardCoordinatorTest, PointLookupSupportMatchesMonolithicCell) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(120);
  Deployment d;
  BuildLocalDeployment(db, 3, &d);
  IngestAll(db, &d);

  const CubeSnapshot mono = MonolithicSnapshot(db, d.plan);
  // The apex cell aggregates every record, so it is always materialized.
  QueryRequest request;
  request.type = RequestType::kPointLookup;
  request.values = {"*", "*"};
  const CoordinatorResult result = d.coordinator->Execute(request);
  ASSERT_EQ(result.response.code, Status::Code::kOk)
      << result.response.message;
  const QueryResponse expected = QueryService::ExecuteOn(mono, request);
  ASSERT_EQ(expected.code, Status::Code::kOk) << expected.message;
  // Graph node numbering differs between a merged and a monolithic build,
  // but the header lines and the cell's support must agree exactly.
  const auto header_and_support = [](const std::string& body) {
    size_t p = body.find('\n');
    EXPECT_NE(p, std::string::npos);
    p = body.find('\n', p + 1);
    EXPECT_NE(p, std::string::npos);
    const size_t s = body.find("support=", p);
    EXPECT_NE(s, std::string::npos);
    const size_t e = body.find(' ', s);
    return body.substr(0, p + 1) + body.substr(s, e - s);
  };
  EXPECT_EQ(header_and_support(result.response.body),
            header_and_support(expected.body));
}

TEST(ShardCoordinatorTest, ErrorVocabularyMatchesTheSingleNodeService) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(40);
  Deployment d;
  BuildLocalDeployment(db, 2, &d);
  IngestAll(db, &d);

  QueryRequest bad_pl;
  bad_pl.type = RequestType::kPointLookup;
  bad_pl.values = {"*", "*"};
  bad_pl.pl_index = 99;
  CoordinatorResult r = d.coordinator->Execute(bad_pl);
  EXPECT_EQ(r.response.code, Status::Code::kInvalidArgument);
  EXPECT_EQ(r.response.message, "pl_index out of range");
  EXPECT_TRUE(r.epochs.empty());  // failed before any fan-out

  QueryRequest bad_dim;
  bad_dim.type = RequestType::kDrillDown;
  bad_dim.values = {"*", "*"};
  bad_dim.dim = 99;
  r = d.coordinator->Execute(bad_dim);
  EXPECT_EQ(r.response.code, Status::Code::kInvalidArgument);
  EXPECT_EQ(r.response.message, "dimension index out of range");

  QueryRequest bad_name;
  bad_name.type = RequestType::kPointLookup;
  bad_name.values = {"no-such-value", "*"};
  r = d.coordinator->Execute(bad_name);
  EXPECT_EQ(r.response.code, Status::Code::kNotFound);
  EXPECT_NE(r.response.message.find("no concept named"), std::string::npos);

  QueryRequest internal;
  internal.type = RequestType::kCellFetchBatch;
  r = d.coordinator->Execute(internal);
  EXPECT_EQ(r.response.code, Status::Code::kInvalidArgument);
  EXPECT_NE(r.response.message.find("internal request types"),
            std::string::npos);
}

// A backend whose shard 1 is dead: calls to it fail with kUnavailable.
class OneDeadShardBackend : public ShardBackend {
 public:
  explicit OneDeadShardBackend(ShardBackend* inner) : inner_(inner) {}
  Result<QueryResponse> Call(size_t shard,
                             const QueryRequest& request) override {
    if (shard == 1) {
      return Status::Unavailable("connect: Connection refused");
    }
    return inner_->Call(shard, request);
  }
  size_t num_shards() const override { return inner_->num_shards(); }

 private:
  ShardBackend* inner_;
};

TEST(ShardCoordinatorTest, DeadShardSurfacesAsPartialFailureStatus) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(40);
  Deployment d;
  BuildLocalDeployment(db, 3, &d);
  IngestAll(db, &d);

  OneDeadShardBackend flaky(d.backend.get());
  ShardCoordinatorOptions options;
  options.min_support = GlobalOptions().min_support;
  const ShardCoordinator coordinator(d.schema, d.plan, &flaky, options);

  QueryRequest request;
  request.type = RequestType::kStats;
  const CoordinatorResult result = coordinator.Execute(request);
  EXPECT_EQ(result.response.code, Status::Code::kUnavailable);
  EXPECT_EQ(result.response.message,
            "shard 1: connect: Connection refused");
  EXPECT_TRUE(result.response.body.empty());
  // Shard 0 answered before the failure: the epoch vector is partial.
  EXPECT_EQ(result.epochs.size(), 1u);
}

TEST(ShardCoordinatorTest, RemoteTransportAnswersThroughRealServers) {
  PathGenerator gen(FixtureConfig());
  const PathDatabase db = gen.Generate(60);
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();

  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<ShardNode*> raw;
  std::vector<uint16_t> ports;
  for (size_t s = 0; s < 2; ++s) {
    ShardNodeOptions options;
    options.global_build = GlobalOptions();
    options.serve_remote = true;
    Result<std::unique_ptr<ShardNode>> node =
        ShardNode::Create(db.schema_ptr(), plan, options);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    ASSERT_NE((*node)->port(), 0u);
    ports.push_back((*node)->port());
    nodes.push_back(std::move(node).value());
    raw.push_back(nodes.back().get());
  }
  DimsHashPartitioner partitioner(2);
  ShardIngestSplitter splitter(&partitioner, raw);
  ASSERT_TRUE(splitter.Apply(std::span<const PathRecord>(db.records())).ok());

  RemoteShardBackend backend(ports);
  ShardCoordinatorOptions options;
  options.min_support = GlobalOptions().min_support;
  const ShardCoordinator coordinator(db.schema_ptr(), plan, &backend,
                                     options);
  QueryRequest request;
  request.type = RequestType::kStats;
  const CoordinatorResult result = coordinator.Execute(request);
  ASSERT_EQ(result.response.code, Status::Code::kOk)
      << result.response.message;
  const CubeSnapshot mono = MonolithicSnapshot(db, plan);
  EXPECT_EQ(result.response.body,
            QueryService::ExecuteOn(mono, request).body);
}

}  // namespace
}  // namespace flowcube
