// Kernel-equivalence tests for the mining hot paths (DESIGN.md §13): every
// simd.h kernel at every compiled-in level against its scalar reference,
// and the three counting backends (scalar / simd / tidlist) against each
// other over randomized transaction databases — including empty, 1-item,
// and duplicate-heavy edge cases. Runs in the `unit` label, so the
// asan-ubsan and tsan CI legs cover the intrinsics paths too.

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "mining/apriori.h"
#include "mining/counting_backend.h"

namespace flowcube {
namespace {

// Every level worth testing on this build: scalar always; the hardware's
// ActiveLevel(); SSE2 explicitly when the build carries x86 kernels.
std::vector<simd::Level> TestLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::ActiveLevel() != simd::Level::kScalar) {
    levels.push_back(simd::Level::kSse2);
    levels.push_back(simd::ActiveLevel());
  }
  return levels;
}

std::vector<uint32_t> RandomSortedUnique(Random* rng, size_t max_len,
                                         uint32_t universe) {
  std::set<uint32_t> s;
  const size_t len = rng->Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.insert(static_cast<uint32_t>(rng->Uniform(universe)));
  }
  return {s.begin(), s.end()};
}

// --- simd.h primitives ------------------------------------------------------

TEST(SimdKernels, FilterByU32MaskMatchesScalar) {
  Random rng(7);
  for (int round = 0; round < 200; ++round) {
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.Uniform(300));
    const size_t mask_size = rng.Uniform(universe + 50);
    std::vector<uint32_t> mask(mask_size);
    for (auto& m : mask) m = rng.Uniform(2) ? 1 : 0;
    // Unsorted ids, may exceed mask_size (bounds path).
    std::vector<uint32_t> ids(rng.Uniform(40));
    for (auto& id : ids) id = static_cast<uint32_t>(rng.Uniform(universe));

    std::vector<uint32_t> want(ids.size() + 1, 0xdeadbeef);
    const size_t want_n = simd::FilterByU32MaskScalar(
        ids.data(), ids.size(), mask.data(), mask.size(), want.data());
    for (simd::Level level : TestLevels()) {
      std::vector<uint32_t> got(ids.size() + 1, 0xdeadbeef);
      const size_t got_n =
          simd::FilterByU32Mask(ids.data(), ids.size(), mask.data(),
                                mask.size(), got.data(), level);
      ASSERT_EQ(got_n, want_n) << simd::LevelName(level);
      for (size_t i = 0; i < want_n; ++i) {
        ASSERT_EQ(got[i], want[i]) << simd::LevelName(level) << " at " << i;
      }
      // The slot one past the end is never written.
      ASSERT_EQ(got[ids.size()], 0xdeadbeefu);
    }
  }
}

TEST(SimdKernels, PairProbeSlotsMatchesScalar) {
  Random rng(11);
  for (int round = 0; round < 200; ++round) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(1u << 20));
    const uint64_t slot_mask = (1ull << (4 + rng.Uniform(16))) - 1;
    std::vector<uint32_t> bs(rng.Uniform(30));
    for (auto& b : bs) b = static_cast<uint32_t>(rng.Uniform(1u << 20));

    std::vector<uint32_t> want(bs.size());
    simd::PairProbeSlotsScalar(a, bs.data(), bs.size(), slot_mask,
                               want.data());
    for (simd::Level level : TestLevels()) {
      std::vector<uint32_t> got(bs.size());
      simd::PairProbeSlots(a, bs.data(), bs.size(), slot_mask, got.data(),
                           level);
      ASSERT_EQ(got, want) << simd::LevelName(level);
    }
  }
}

TEST(SimdKernels, IntersectCountMatchesScalarAndStd) {
  Random rng(13);
  for (int round = 0; round < 300; ++round) {
    // Mix dense overlaps with heavily skewed sizes (gallop path).
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.Uniform(400));
    const auto a = RandomSortedUnique(&rng, 80, universe);
    const size_t b_max = rng.Uniform(3) == 0 ? 2000 : 40;
    const auto b = RandomSortedUnique(&rng, b_max, universe + 2000);

    std::vector<uint32_t> ref;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(ref));
    ASSERT_EQ(simd::IntersectCountU32Scalar(a.data(), a.size(), b.data(),
                                            b.size()),
              ref.size());
    for (simd::Level level : TestLevels()) {
      ASSERT_EQ(simd::IntersectCountU32(a.data(), a.size(), b.data(),
                                        b.size(), level),
                ref.size())
          << simd::LevelName(level) << " round " << round;
    }
    std::vector<uint32_t> out(std::min(a.size(), b.size()));
    const size_t n =
        simd::IntersectU32(a.data(), a.size(), b.data(), b.size(), out.data());
    out.resize(n);
    ASSERT_EQ(out, ref);
  }
}

TEST(SimdKernels, AndPopcountAndAndIntoMatchScalar) {
  Random rng(17);
  for (int round = 0; round < 200; ++round) {
    const size_t n_words = rng.Uniform(40);
    std::vector<uint64_t> a(n_words);
    std::vector<uint64_t> b(n_words);
    for (size_t i = 0; i < n_words; ++i) {
      a[i] = (static_cast<uint64_t>(rng.Uniform(1u << 30)) << 34) ^
             rng.Uniform(1u << 30);
      b[i] = (static_cast<uint64_t>(rng.Uniform(1u << 30)) << 34) ^
             rng.Uniform(1u << 30);
    }
    std::vector<uint64_t> want(n_words);
    simd::AndIntoU64Scalar(a.data(), b.data(), n_words, want.data());
    const size_t want_count =
        simd::AndPopcountU64Scalar(a.data(), b.data(), n_words);
    size_t check = 0;
    for (uint64_t w : want) check += __builtin_popcountll(w);
    ASSERT_EQ(want_count, check);
    for (simd::Level level : TestLevels()) {
      ASSERT_EQ(simd::AndPopcountU64(a.data(), b.data(), n_words, level),
                want_count)
          << simd::LevelName(level);
      std::vector<uint64_t> got(n_words);
      simd::AndIntoU64(a.data(), b.data(), n_words, got.data(), level);
      ASSERT_EQ(got, want) << simd::LevelName(level);
      // In-place destination aliasing a, as the k-way chains use it.
      std::vector<uint64_t> inplace = a;
      simd::AndIntoU64(inplace.data(), b.data(), n_words, inplace.data(),
                       level);
      ASSERT_EQ(inplace, want) << simd::LevelName(level);
    }
  }
}

// --- Counting backends ------------------------------------------------------

// A randomized workload: transactions (sorted unique items) plus candidates
// drawn from 2-4 item subsets of the item universe.
struct Workload {
  std::vector<std::vector<ItemId>> txns;
  std::vector<Itemset> candidates;
};

Workload MakeWorkload(uint64_t seed, bool duplicate_heavy) {
  Random rng(seed);
  Workload w;
  const uint32_t universe = 2 + static_cast<uint32_t>(rng.Uniform(24));
  const size_t n_txns = 30 + rng.Uniform(60);
  for (size_t t = 0; t < n_txns; ++t) {
    // Edge cases on purpose: empty and 1-item transactions stay in the mix.
    w.txns.push_back(RandomSortedUnique(&rng, 10, universe));
    if (duplicate_heavy && !w.txns.back().empty()) {
      // Repeat the same transaction many times (supports accumulate).
      for (size_t r = rng.Uniform(4); r > 0; --r) {
        w.txns.push_back(w.txns.back());
      }
    }
  }
  std::set<Itemset> cands;
  for (int c = 0; c < 40; ++c) {
    const auto items = RandomSortedUnique(&rng, 4, universe);
    if (items.size() >= 2) cands.insert(Itemset(items.begin(), items.end()));
  }
  w.candidates = {cands.begin(), cands.end()};
  return w;
}

std::vector<uint32_t> CountWith(const Workload& w, CountBackend backend,
                                ThreadPool* pool) {
  CandidateCounter counter;
  counter.Reserve(w.candidates.size());
  for (const Itemset& c : w.candidates) counter.Add(c);
  counter.Finalize();
  std::vector<std::span<const ItemId>> views;
  views.reserve(w.txns.size());
  for (const auto& t : w.txns) views.emplace_back(t);
  CountAllTransactions(views, backend, pool, /*grain=*/8, &counter);
  std::vector<uint32_t> counts(counter.size());
  for (size_t i = 0; i < counts.size(); ++i) counts[i] = counter.count(i);
  return counts;
}

class BackendEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalence, AllBackendsAgree) {
  for (const bool duplicate_heavy : {false, true}) {
    const Workload w = MakeWorkload(GetParam(), duplicate_heavy);
    const auto scalar = CountWith(w, CountBackend::kScalar, nullptr);
    const auto simd_counts = CountWith(w, CountBackend::kSimd, nullptr);
    const auto tidlist = CountWith(w, CountBackend::kTidlist, nullptr);
    ASSERT_EQ(simd_counts, scalar) << "simd vs scalar, seed " << GetParam();
    ASSERT_EQ(tidlist, scalar) << "tidlist vs scalar, seed " << GetParam();

    // Parallel scans shard-and-merge (horizontal) or split candidates
    // (tidlist); counts must not depend on the split.
    ThreadPool pool(4);
    for (CountBackend backend :
         {CountBackend::kScalar, CountBackend::kSimd, CountBackend::kTidlist}) {
      ASSERT_EQ(CountWith(w, backend, &pool), scalar)
          << CountBackendName(backend) << " with threads, seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence,
                         ::testing::Range<uint64_t>(1, 21));

TEST(BackendEquivalence, EmptyAndTinyInputs) {
  // No candidates: counting is a no-op under every backend.
  CandidateCounter counter;
  counter.Finalize();
  std::vector<ItemId> txn = {1, 2, 3};
  std::vector<std::span<const ItemId>> views = {txn};
  for (CountBackend b :
       {CountBackend::kScalar, CountBackend::kSimd, CountBackend::kTidlist}) {
    CountAllTransactions(views, b, nullptr, 8, &counter);
  }
  EXPECT_EQ(counter.size(), 0u);

  // No transactions: every count stays zero.
  Workload w;
  w.candidates = {{1, 2}, {2, 3, 4}};
  for (CountBackend b :
       {CountBackend::kScalar, CountBackend::kSimd, CountBackend::kTidlist}) {
    const auto counts = CountWith(w, b, nullptr);
    EXPECT_EQ(counts, (std::vector<uint32_t>{0, 0}));
  }
}

TEST(ResolveCountBackendTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveCountBackend(CountBackend::kScalar), CountBackend::kScalar);
  EXPECT_EQ(ResolveCountBackend(CountBackend::kSimd), CountBackend::kSimd);
  EXPECT_EQ(ResolveCountBackend(CountBackend::kTidlist),
            CountBackend::kTidlist);
  EXPECT_NE(ResolveCountBackend(CountBackend::kAuto), CountBackend::kAuto);
}

}  // namespace
}  // namespace flowcube
