#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "gen/path_generator.h"
#include "mining/compatibility.h"
#include "mining/mining_result.h"
#include "mining/shared_miner.h"

namespace flowcube {
namespace {

class SharedMinerTest : public ::testing::Test {
 protected:
  SharedMinerTest() : db_(MakePaperDatabase()) {
    MiningPlan plan = MiningPlan::Default(db_.schema()).value();
    tdb_ = std::make_unique<TransformedDatabase>(
        std::move(TransformPathDatabase(db_, plan).value()));
  }

  ItemId Dim(size_t d, const std::string& name) const {
    return tdb_->catalog().DimItem(
        d, db_.schema().dimensions[d].Find(name).value());
  }

  // Raw-level (path level 0) stage item for a location-name chain.
  ItemId StageItem(const std::vector<std::string>& locs, Duration dur,
                   uint8_t path_level = 0) const {
    const ItemCatalog& cat = tdb_->catalog();
    PrefixId p = kEmptyPrefix;
    for (const auto& name : locs) {
      p = cat.trie().Find(p, db_.schema().locations.Find(name).value());
      EXPECT_NE(p, PrefixTrie::kInvalidPrefix) << name;
    }
    const ItemId id = cat.FindStageItem(path_level, p, dur);
    EXPECT_NE(id, kInvalidItem);
    return id;
  }

  std::map<Itemset, uint32_t> Mine(SharedMinerOptions opts) {
    SharedMiner miner(*tdb_, opts);
    std::map<Itemset, uint32_t> out;
    for (const auto& fi : miner.Run().frequent) {
      out[fi.items] = fi.support;
    }
    return out;
  }

  PathDatabase db_;
  std::unique_ptr<TransformedDatabase> tdb_;
};

// --- Table 4 ground truth (recomputed from Table 1) --------------------------

TEST_F(SharedMinerTest, Length1SupportsMatchTable1) {
  SharedMinerOptions opts;
  opts.min_support = 3;
  const auto got = Mine(opts);

  EXPECT_EQ(got.at({Dim(0, "tennis")}), 4u);
  EXPECT_EQ(got.at({Dim(0, "shoes")}), 5u);
  EXPECT_EQ(got.at({Dim(0, "outerwear")}), 3u);
  EXPECT_EQ(got.at({Dim(1, "nike")}), 6u);
  // Table 4 rows that are consistent with Table 1:
  EXPECT_EQ(got.at({StageItem({"factory"}, 10)}), 5u);
  EXPECT_EQ(got.at({StageItem({"factory"}, kAnyDuration, 1)}), 8u);
  EXPECT_EQ(got.at({StageItem({"factory", "dist.center"}, 2)}), 4u);
}

TEST_F(SharedMinerTest, Length2SupportsMatchTable1) {
  SharedMinerOptions opts;
  opts.min_support = 3;
  const auto got = Mine(opts);

  // {shoes, nike} = paths 1,2,3.
  Itemset shoes_nike = {Dim(0, "shoes"), Dim(1, "nike")};
  std::sort(shoes_nike.begin(), shoes_nike.end());
  EXPECT_EQ(got.at(shoes_nike), 3u);

  // {(f,5), (fd,2)} = paths 2,7,8 (Table 4 agrees: 3).
  Itemset seg = {StageItem({"factory"}, 5),
                 StageItem({"factory", "dist.center"}, 2)};
  std::sort(seg.begin(), seg.end());
  EXPECT_EQ(got.at(seg), 3u);

  // {nike, (f,10)} = paths 1,3,4,5,6.
  Itemset mixed = {Dim(1, "nike"), StageItem({"factory"}, 10)};
  std::sort(mixed.begin(), mixed.end());
  EXPECT_EQ(got.at(mixed), 5u);
}

TEST_F(SharedMinerTest, InfrequentItemsExcluded) {
  SharedMinerOptions opts;
  opts.min_support = 3;
  const auto got = Mine(opts);
  EXPECT_FALSE(got.contains({Dim(0, "shirt")}));    // support 1
  EXPECT_FALSE(got.contains({Dim(0, "sandals")}));  // support 1
  EXPECT_FALSE(got.contains({Dim(1, "adidas")}));   // support 2
}

TEST_F(SharedMinerTest, MinSupportOneFindsEverything) {
  SharedMinerOptions opts;
  opts.min_support = 1;
  const auto got = Mine(opts);
  EXPECT_TRUE(got.contains({Dim(0, "shirt")}));
  EXPECT_EQ(got.at({Dim(0, "shirt")}), 1u);
}

// --- Pruning-rule semantics ---------------------------------------------------

TEST_F(SharedMinerTest, CompatibilityRules) {
  SharedMinerOptions opts;
  SharedMiner miner(*tdb_, opts);

  // Dimension value with a stage: compatible.
  EXPECT_TRUE(miner.ItemsCompatible(Dim(0, "tennis"),
                                    StageItem({"factory"}, 10)));
  // Different dimensions: compatible.
  EXPECT_TRUE(miner.ItemsCompatible(Dim(0, "tennis"), Dim(1, "nike")));
  // Same dimension, unrelated values: never co-occur.
  EXPECT_FALSE(miner.ItemsCompatible(Dim(0, "tennis"), Dim(0, "sandals")));
  // Item with its ancestor: implied, pruned.
  EXPECT_FALSE(miner.ItemsCompatible(Dim(0, "tennis"), Dim(0, "shoes")));
  // Stages with chained prefixes at the same level: compatible.
  EXPECT_TRUE(miner.ItemsCompatible(
      StageItem({"factory"}, 10),
      StageItem({"factory", "dist.center"}, 2)));
  // Stages with diverging prefixes (the paper's (fd,2) vs (fts,5)).
  EXPECT_FALSE(miner.ItemsCompatible(
      StageItem({"factory", "dist.center"}, 2),
      StageItem({"factory", "truck", "shelf"}, 5)));
  // Stages at different path abstraction levels.
  EXPECT_FALSE(miner.ItemsCompatible(
      StageItem({"factory"}, 10),
      StageItem({"factory"}, kAnyDuration, 1)));
}

TEST_F(SharedMinerTest, GeneralizeItemMapsToHighLevel) {
  SharedMinerOptions opts;
  opts.high_level_dim_level = 2;
  SharedMiner miner(*tdb_, opts);

  EXPECT_EQ(miner.GeneralizeItem(Dim(0, "tennis")), Dim(0, "shoes"));
  EXPECT_EQ(miner.GeneralizeItem(Dim(0, "shoes")), Dim(0, "shoes"));
  EXPECT_EQ(miner.GeneralizeItem(Dim(1, "nike")), Dim(1, "nike"));
  EXPECT_EQ(miner.GeneralizeItem(StageItem({"factory"}, 10)),
            StageItem({"factory"}, kAnyDuration, 1));
  EXPECT_TRUE(miner.IsHighLevel(Dim(0, "shoes")));
  EXPECT_FALSE(miner.IsHighLevel(Dim(0, "tennis")));
  EXPECT_TRUE(miner.IsHighLevel(StageItem({"factory"}, kAnyDuration, 1)));
  EXPECT_FALSE(miner.IsHighLevel(StageItem({"factory"}, 10)));
}

TEST_F(SharedMinerTest, PrunedRedundantPatternsAbsent) {
  SharedMinerOptions opts;
  opts.min_support = 2;
  const auto got = Mine(opts);
  // {tennis, shoes}: ancestor pair, pruned even though it co-occurs.
  Itemset pair = {Dim(0, "tennis"), Dim(0, "shoes")};
  std::sort(pair.begin(), pair.end());
  EXPECT_FALSE(got.contains(pair));
  // Cross-path-level stage pair, pruned.
  Itemset cross = {StageItem({"factory"}, 10),
                   StageItem({"factory"}, kAnyDuration, 1)};
  std::sort(cross.begin(), cross.end());
  EXPECT_FALSE(got.contains(cross));
}

TEST_F(SharedMinerTest, BasicFindsSupersetWithEqualSupports) {
  SharedMinerOptions shared_opts;
  shared_opts.min_support = 2;
  const auto shared = Mine(shared_opts);

  SharedMinerOptions basic_opts;
  basic_opts.min_support = 2;
  basic_opts.prune_precount = false;
  basic_opts.prune_unlinkable = false;
  basic_opts.prune_ancestors = false;
  const auto basic = Mine(basic_opts);

  EXPECT_GT(basic.size(), shared.size());
  for (const auto& [items, support] : shared) {
    ASSERT_TRUE(basic.contains(items));
    EXPECT_EQ(basic.at(items), support);
  }
  // Every extra pattern in basic violates a compatibility rule.
  const ItemCompatibility compat(tdb_.get(), true, true);
  for (const auto& [items, support] : basic) {
    if (shared.contains(items)) continue;
    bool violates = false;
    for (size_t i = 0; i < items.size() && !violates; ++i) {
      for (size_t j = i + 1; j < items.size() && !violates; ++j) {
        violates = !compat.Compatible(items[i], items[j]);
      }
    }
    EXPECT_TRUE(violates);
  }
}

TEST_F(SharedMinerTest, PrecountDoesNotChangeResults) {
  for (uint32_t minsup : {2u, 3u, 4u}) {
    SharedMinerOptions with;
    with.min_support = minsup;
    SharedMinerOptions without = with;
    without.prune_precount = false;
    EXPECT_EQ(Mine(with), Mine(without)) << "minsup=" << minsup;
  }
}

TEST_F(SharedMinerTest, PrecountCountsFewerCandidates) {
  SharedMinerOptions with;
  with.min_support = 2;
  SharedMinerOptions without = with;
  without.prune_precount = false;
  SharedMiner m1(*tdb_, with);
  SharedMiner m2(*tdb_, without);
  EXPECT_LE(m1.Run().stats.TotalCandidates(),
            m2.Run().stats.TotalCandidates());
}

TEST_F(SharedMinerTest, BasicCountsManyMoreCandidates) {
  SharedMinerOptions shared_opts;
  shared_opts.min_support = 2;
  SharedMinerOptions basic_opts = shared_opts;
  basic_opts.prune_precount = false;
  basic_opts.prune_unlinkable = false;
  basic_opts.prune_ancestors = false;
  SharedMiner shared(*tdb_, shared_opts);
  SharedMiner basic(*tdb_, basic_opts);
  const auto s_stats = shared.Run().stats;
  const auto b_stats = basic.Run().stats;
  EXPECT_GT(b_stats.TotalCandidates(), 2 * s_stats.TotalCandidates());
  // Figure 11's second observation: basic considers longer patterns because
  // its transactions mix items with their ancestors.
  size_t s_max = 0, b_max = 0;
  for (size_t k = 0; k < s_stats.frequent_per_length.size(); ++k) {
    if (s_stats.frequent_per_length[k] > 0) s_max = k;
  }
  for (size_t k = 0; k < b_stats.frequent_per_length.size(); ++k) {
    if (b_stats.frequent_per_length[k] > 0) b_max = k;
  }
  EXPECT_GT(b_max, s_max);
}

// --- MiningResult ---------------------------------------------------------------

TEST_F(SharedMinerTest, MiningResultIndexesCellsAndSegments) {
  SharedMinerOptions opts;
  opts.min_support = 2;
  SharedMiner miner(*tdb_, opts);
  MiningResult result(tdb_.get(), miner.Run().frequent);

  // Apex cell support = database size.
  EXPECT_EQ(result.CellSupport({}).value(), 8u);

  Itemset nike_cell = {Dim(1, "nike")};
  EXPECT_EQ(result.CellSupport(nike_cell).value(), 6u);
  EXPECT_EQ(result.CellSupport({Dim(1, "adidas")}).value(), 2u);
  EXPECT_FALSE(result.CellSupport({Dim(0, "shirt")}).has_value());

  // Cells at item level (0,1): brand at level 1 -> premium (6) and
  // value (2), both at or above min support 2.
  const auto cells = result.CellsAtLevel(ItemLevel{{0, 1}});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_TRUE(std::find(cells.begin(), cells.end(),
                        Itemset{Dim(1, "premium")}) != cells.end());
  EXPECT_TRUE(std::find(cells.begin(), cells.end(),
                        Itemset{Dim(1, "value")}) != cells.end());

  // Segments of the apex cell at raw path level contain (f,10).
  bool found = false;
  for (const auto& seg : result.SegmentsForCell({}, 0)) {
    if (seg.stages == Itemset{StageItem({"factory"}, 10)}) {
      EXPECT_EQ(seg.support, 5u);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Segments are sorted by decreasing support.
  const auto segs = result.SegmentsForCell({}, 0);
  for (size_t i = 1; i < segs.size(); ++i) {
    EXPECT_GE(segs[i - 1].support, segs[i].support);
  }
}

TEST_F(SharedMinerTest, FrequentCellsIncludeApex) {
  SharedMinerOptions opts;
  opts.min_support = 2;
  SharedMiner miner(*tdb_, opts);
  MiningResult result(tdb_.get(), miner.Run().frequent);
  const auto cells = result.FrequentCells();
  EXPECT_FALSE(cells.empty());
  EXPECT_TRUE(cells[0].empty());  // apex first
  for (const auto& cell : cells) {
    for (ItemId id : cell) {
      EXPECT_TRUE(tdb_->catalog().IsDimItem(id));
    }
  }
}

// --- Randomized consistency: shared == basic on the shared output space -------

class SharedConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedConsistency, SharedEqualsFilteredBasicOnGeneratedData) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_sequences = 8;
  cfg.max_sequence_length = 5;
  cfg.seed = GetParam();
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(300);
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = std::move(TransformPathDatabase(db, plan).value());

  SharedMinerOptions shared_opts;
  shared_opts.min_support = 15;
  SharedMiner shared(tdb, shared_opts);
  std::map<Itemset, uint32_t> s;
  for (const auto& fi : shared.Run().frequent) s[fi.items] = fi.support;

  SharedMinerOptions basic_opts = shared_opts;
  basic_opts.prune_precount = false;
  basic_opts.prune_unlinkable = false;
  basic_opts.prune_ancestors = false;
  SharedMiner basic(tdb, basic_opts);
  std::map<Itemset, uint32_t> b;
  for (const auto& fi : basic.Run().frequent) b[fi.items] = fi.support;

  // Shared's output must be exactly basic's output restricted to
  // compatibility-respecting itemsets.
  const ItemCompatibility compat(&tdb, true, true);
  std::map<Itemset, uint32_t> b_filtered;
  for (const auto& [items, support] : b) {
    bool ok = true;
    for (size_t i = 0; i < items.size() && ok; ++i) {
      for (size_t j = i + 1; j < items.size() && ok; ++j) {
        ok = compat.Compatible(items[i], items[j]);
      }
    }
    if (ok) b_filtered[items] = support;
  }
  EXPECT_EQ(s, b_filtered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedConsistency,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace flowcube
