// Full-pipeline integration tests: raw RFID readings -> cleaning -> path
// database -> flowcube -> OLAP queries, plus three-way miner consistency on
// generated workloads.

#include <map>

#include <gtest/gtest.h>

#include "cube/cubing_miner.h"
#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "gen/path_generator.h"
#include "mining/compatibility.h"
#include "mining/shared_miner.h"
#include "rfid/cleaner.h"
#include "rfid/reader_simulator.h"

namespace flowcube {
namespace {

TEST(Integration, ReadingsToFlowCube) {
  // 1. Generate ground-truth commodity movements.
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_sequences = 8;
  cfg.seed = 404;
  PathGenerator gen(cfg);
  PathDatabase truth = gen.Generate(300);

  // 2. Simulate the reader stream and clean it back into paths.
  const int64_t bin = 3600;
  ReaderSimulatorOptions sim_opts;
  sim_opts.timestamp_jitter_seconds = 0;
  sim_opts.drop_probability = 0.0;
  ReaderSimulator sim(sim_opts, 7);
  const auto readings =
      sim.Simulate(PathGenerator::ToItineraries(truth, bin));
  ReadingCleaner cleaner(CleanerOptions{/*max_gap_seconds=*/6000});
  const auto itineraries = cleaner.Clean(readings);
  ASSERT_EQ(itineraries.size(), truth.size());

  // 3. Rebuild the path database from the cleaned stream.
  PathDatabase db(truth.schema_ptr());
  const DurationDiscretizer disc(bin);
  for (const Itinerary& it : itineraries) {
    PathRecord rec;
    rec.dims = truth.record(static_cast<uint32_t>(it.epc - 1)).dims;
    rec.path = ReadingCleaner::ToPath(it, disc);
    ASSERT_TRUE(db.Append(std::move(rec)).ok());
  }

  // The cleaned database must exactly reproduce the ground truth (no noise
  // was injected).
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.record(i).path, truth.record(i).path) << "record " << i;
  }

  // 4. Build the flowcube and query it.
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 15;
  opts.exceptions.min_support = 15;
  FlowCubeBuilder builder(opts);
  FlowCubeBuildStats stats;
  Result<FlowCube> cube = builder.Build(db, plan, &stats);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_GT(stats.cells_materialized, 0u);

  FlowCubeQuery query(&cube.value());
  const Result<CellRef> apex =
      query.Cell(std::vector<std::string>(2, "*"), 0);
  ASSERT_TRUE(apex.ok());
  EXPECT_EQ(apex->cell->support, 300u);
  EXPECT_FALSE(query.TypicalPaths(*apex, 3).empty());
}

// Three-way consistency: Shared == Cubing exactly, and both equal Basic
// restricted to structurally sound patterns, across several workloads.
struct ConsistencyParam {
  uint64_t seed;
  int num_sequences;
  uint32_t min_support;
};

class ThreeWayConsistency
    : public ::testing::TestWithParam<ConsistencyParam> {};

TEST_P(ThreeWayConsistency, AllMinersAgree) {
  const ConsistencyParam param = GetParam();
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_sequences = param.num_sequences;
  cfg.max_sequence_length = 5;
  cfg.seed = param.seed;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(250);
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = std::move(TransformPathDatabase(db, plan).value());

  SharedMinerOptions sopts;
  sopts.min_support = param.min_support;
  SharedMiner shared(tdb, sopts);
  std::map<Itemset, uint32_t> s;
  for (const auto& fi : shared.Run().frequent) s[fi.items] = fi.support;

  CubingMiner cubing(db, tdb, CubingMinerOptions{param.min_support});
  std::map<Itemset, uint32_t> c;
  for (const auto& fi : cubing.Run().frequent) c[fi.items] = fi.support;
  EXPECT_EQ(s, c);

  SharedMinerOptions bopts = sopts;
  bopts.prune_precount = false;
  bopts.prune_unlinkable = false;
  bopts.prune_ancestors = false;
  SharedMiner basic(tdb, bopts);
  std::map<Itemset, uint32_t> b;
  for (const auto& fi : basic.Run().frequent) b[fi.items] = fi.support;
  for (const auto& [items, support] : s) {
    ASSERT_TRUE(b.contains(items));
    EXPECT_EQ(b.at(items), support);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ThreeWayConsistency,
    ::testing::Values(ConsistencyParam{1, 6, 10},
                      ConsistencyParam{2, 15, 12},
                      ConsistencyParam{3, 30, 25},
                      ConsistencyParam{8, 10, 5}));

TEST(Integration, FlowCubeFromCustomTransportationPlan) {
  // A Figure 1 / Figure 5 style analysis plan: the transportation manager's
  // mixed cut as an extra path level.
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.seed = 5;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(200);

  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  // Custom cut: group T0 stays detailed, T1/T2 collapse.
  const auto& loc = db.schema().locations;
  std::vector<NodeId> nodes;
  for (NodeId child : loc.Children(loc.Find("T0").value())) {
    nodes.push_back(child);
  }
  nodes.push_back(loc.Find("T1").value());
  nodes.push_back(loc.Find("T2").value());
  Result<LocationCut> cut = LocationCut::FromNodes(loc, nodes);
  ASSERT_TRUE(cut.ok()) << cut.status().ToString();
  plan.mining.cuts.push_back(std::move(cut.value()));
  const int cut_index = static_cast<int>(plan.mining.cuts.size()) - 1;
  plan.mining.path_levels.push_back(PathLevel{cut_index, 1});
  plan.path_levels.push_back(
      static_cast<int>(plan.mining.path_levels.size()) - 1);

  FlowCubeBuilderOptions opts;
  opts.min_support = 10;
  opts.compute_exceptions = false;
  FlowCubeBuilder builder(opts);
  Result<FlowCube> cube = builder.Build(db, plan);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();

  // The custom-level graphs contain collapsed T1/T2 nodes but detailed T0
  // leaves.
  const size_t custom_pl = cube->plan().path_levels.size() - 1;
  const int il = cube->plan().FindItemLevel(ItemLevel{{0, 0}});
  const FlowCell* apex =
      cube->cuboid(static_cast<size_t>(il), custom_pl).Find({});
  ASSERT_NE(apex, nullptr);
  bool saw_group = false;
  bool saw_leaf = false;
  for (FlowNodeId n = 1; n < apex->graph.num_nodes(); ++n) {
    const int level = loc.Level(apex->graph.location(n));
    if (level == 1) saw_group = true;
    if (level == 2) saw_leaf = true;
  }
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_leaf);
}

TEST(Integration, IcebergThresholdShrinksCube) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.seed = 99;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(400);
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();

  size_t previous = SIZE_MAX;
  for (uint32_t minsup : {4u, 20u, 100u}) {
    FlowCubeBuilderOptions opts;
    opts.min_support = minsup;
    opts.compute_exceptions = false;
    opts.mark_redundant = false;
    FlowCubeBuilder builder(opts);
    Result<FlowCube> cube = builder.Build(db, plan);
    ASSERT_TRUE(cube.ok());
    EXPECT_LT(cube->TotalCells(), previous);
    previous = cube->TotalCells();
  }
}

TEST(Integration, NonRedundantCubeIsSmallerButQueryable) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.seed = 123;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(300);
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 10;
  opts.compute_exceptions = false;
  opts.redundancy_tau = 0.10;
  FlowCubeBuilder builder(opts);
  Result<FlowCube> cube = builder.Build(db, plan);
  ASSERT_TRUE(cube.ok());

  const size_t total = cube->TotalCells();
  const size_t redundant = cube->RedundantCells();
  EXPECT_GT(redundant, 0u);  // hierarchical zipf data always has lookalikes
  cube->EraseRedundant();
  EXPECT_EQ(cube->TotalCells(), total - redundant);

  // The apex remains queryable after compaction.
  FlowCubeQuery query(&cube.value());
  EXPECT_TRUE(query.Cell({"*", "*"}).ok());
}

}  // namespace
}  // namespace flowcube
