// Byte-level round-trip guarantees of the text IO format: serializing a
// database that was itself read back from text must reproduce the exact
// bytes (write -> read -> write is the identity on the serialized form),
// including the degenerate 0-dimension schema. Plus malformed-input cases
// that must fail with a clean error, never crash or silently truncate.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "gen/path_generator.h"
#include "io/text_io.h"

namespace flowcube {
namespace {

// Serializes, reads back, serializes again, and asserts the two texts are
// byte-identical.
void ExpectWriteReadWriteIdentity(const PathDatabase& db) {
  std::stringstream first;
  ASSERT_TRUE(WritePathDatabase(db, first).ok());
  Result<PathDatabase> back = ReadPathDatabase(first);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  std::stringstream second;
  ASSERT_TRUE(WritePathDatabase(back.value(), second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(TextIoRoundTrip, PaperDatabaseIsByteStable) {
  ExpectWriteReadWriteIdentity(MakePaperDatabase());
}

TEST(TextIoRoundTrip, GeneratedDatabaseIsByteStable) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 3;
  cfg.seed = 2026;
  PathGenerator gen(cfg);
  ExpectWriteReadWriteIdentity(gen.Generate(150));
}

TEST(TextIoRoundTrip, ZeroDimensionSchemaRoundTrips) {
  // A schema with no path-independent dimensions is legal: records are
  // bare paths and serialize as "|loc:dur;...". The reader must not treat
  // the empty dims part as one empty value.
  auto schema = std::make_shared<PathSchema>();
  const NodeId a = schema->locations
                       .AddChild(schema->locations.root(), "A")
                       .value();
  const NodeId b = schema->locations
                       .AddChild(schema->locations.root(), "B")
                       .value();
  PathDatabase db(schema);
  PathRecord rec;
  rec.path.stages.push_back(Stage{a, 3});
  rec.path.stages.push_back(Stage{b, 7});
  ASSERT_TRUE(db.Append(rec).ok());
  rec.path.stages.pop_back();
  ASSERT_TRUE(db.Append(rec).ok());

  std::stringstream stream;
  ASSERT_TRUE(WritePathDatabase(db, stream).ok());
  Result<PathDatabase> back = ReadPathDatabase(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->schema().num_dimensions(), 0u);
  ASSERT_EQ(back->record(0).path.size(), 2u);
  EXPECT_EQ(back->record(0).path.stages[1].duration, 7);

  ExpectWriteReadWriteIdentity(db);
}

// --- Malformed inputs -------------------------------------------------------

std::string ValidPrefix() {
  return "flowcube-paths v1\n"
         "dimension d\n"
         "concept a *\n"
         "end\n"
         "locations\n"
         "concept x *\n"
         "end\n"
         "durations\n";
}

Status ReadFrom(const std::string& text) {
  std::stringstream stream(text);
  Result<PathDatabase> r = ReadPathDatabase(stream);
  return r.ok() ? Status::OK() : r.status();
}

TEST(TextIoMalformed, AcceptsTheValidBaseline) {
  // Guards the fixture: every malformed case below is a one-line deviation
  // from this accepted input.
  EXPECT_TRUE(ReadFrom(ValidPrefix() + "records 1\na|x:10\n").ok());
}

TEST(TextIoMalformed, RejectsGarbageAfterDuration) {
  // strtoll would silently parse "12" and drop the "q"; the reader must
  // reject the stage instead.
  const Status s = ReadFrom(ValidPrefix() + "records 1\na|x:12q\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad duration"), std::string::npos);
}

TEST(TextIoMalformed, RejectsEmptyDuration) {
  const Status s = ReadFrom(ValidPrefix() + "records 1\na|x:\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(TextIoMalformed, RejectsMalformedConceptLine) {
  const Status s = ReadFrom(
      "flowcube-paths v1\n"
      "dimension d\n"
      "concept onlyname\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("concept"), std::string::npos);
}

TEST(TextIoMalformed, RejectsUnterminatedHierarchy) {
  const Status s = ReadFrom(
      "flowcube-paths v1\n"
      "dimension d\n"
      "concept a *\n");  // no "end", and the stream just stops
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unterminated"), std::string::npos);
}

TEST(TextIoMalformed, RejectsUnknownSection) {
  const Status s = ReadFrom(
      "flowcube-paths v1\n"
      "frobnicate\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unknown section"), std::string::npos);
}

TEST(TextIoMalformed, RejectsMissingRecordCount) {
  const Status s = ReadFrom(ValidPrefix() + "records\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("count"), std::string::npos);
}

TEST(TextIoMalformed, RejectsBadDurationFactor) {
  const Status s = ReadFrom(
      "flowcube-paths v1\n"
      "dimension d\n"
      "concept a *\n"
      "end\n"
      "locations\n"
      "concept x *\n"
      "end\n"
      "durations 1\n"  // factors must be >= 2
      "records 0\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(TextIoMalformed, RejectsTooManyDimensionValues) {
  const Status s = ReadFrom(ValidPrefix() + "records 1\na,a|x:10\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("too many dimension values"),
            std::string::npos);
}

TEST(TextIoMalformed, RejectsUnknownParentConcept) {
  const Status s = ReadFrom(
      "flowcube-paths v1\n"
      "dimension d\n"
      "concept a nope\n"
      "end\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace flowcube
