#include <gtest/gtest.h>

#include "flowgraph/builder.h"
#include "flowgraph/stats.h"
#include "gen/paper_example.h"

namespace flowcube {
namespace {

class FlowStatsTest : public ::testing::Test {
 protected:
  FlowStatsTest() : db_(MakePaperDatabase()) {
    for (const PathRecord& rec : db_.records()) paths_.push_back(rec.path);
    graph_ = BuildFlowGraph(paths_);
  }

  NodeId Loc(const std::string& name) const {
    return db_.schema().locations.Find(name).value();
  }

  PathDatabase db_;
  std::vector<Path> paths_;
  FlowGraph graph_;
};

TEST_F(FlowStatsTest, MeanDurationAtFactory) {
  // Factory durations over the 8 paths: 5,5,5 and 10,10,10,10,10.
  const FlowNodeId f = graph_.FindChild(FlowGraph::kRoot, Loc("factory"));
  EXPECT_NEAR(MeanDuration(graph_, f), (3 * 5 + 5 * 10) / 8.0, 1e-12);
}

TEST_F(FlowStatsTest, ExpectedLeadTimeEqualsMeanTotalDuration) {
  // For exact counts, the reach-weighted sum of mean stage durations
  // equals the average of per-path total durations.
  double total = 0.0;
  for (const Path& p : paths_) {
    for (const Stage& s : p.stages) total += static_cast<double>(s.duration);
  }
  EXPECT_NEAR(ExpectedLeadTime(graph_), total / paths_.size(), 1e-9);
}

TEST_F(FlowStatsTest, ExpectedPathLengthEqualsMean) {
  double stages = 0.0;
  for (const Path& p : paths_) stages += static_cast<double>(p.size());
  EXPECT_NEAR(ExpectedPathLength(graph_), stages / paths_.size(), 1e-12);
}

TEST_F(FlowStatsTest, VisitProbabilities) {
  EXPECT_DOUBLE_EQ(VisitProbability(graph_, Loc("factory")), 1.0);
  // dist.center appears in paths 1,2,3,7,8 (path 8 twice, counted once).
  EXPECT_DOUBLE_EQ(VisitProbability(graph_, Loc("dist.center")), 5.0 / 8);
  EXPECT_DOUBLE_EQ(VisitProbability(graph_, Loc("warehouse")), 1.0 / 8);
  // Checkout appears in paths 1-5 (6 ends at the warehouse, 7 at the
  // shelf, 8 at the second dist.center stop).
  EXPECT_DOUBLE_EQ(VisitProbability(graph_, Loc("checkout")), 5.0 / 8);
  // Truck appears in every path.
  EXPECT_DOUBLE_EQ(VisitProbability(graph_, Loc("truck")), 1.0);
  EXPECT_DOUBLE_EQ(VisitProbability(graph_, 9999), 0.0);
}

TEST_F(FlowStatsTest, DwellByLocationAggregatesRevisits) {
  const auto dwell = DwellByLocation(graph_);
  ASSERT_FALSE(dwell.empty());
  // Factory and truck both score 8 visits; both must lead the ranking.
  EXPECT_EQ(dwell[0].visits, 8u);
  EXPECT_EQ(dwell[1].visits, 8u);
  bool saw_factory = false;
  bool saw_dist_center = false;
  for (const LocationDwell& d : dwell) {
    if (d.location == Loc("factory")) {
      saw_factory = true;
      EXPECT_EQ(d.visits, 8u);
      EXPECT_EQ(d.max_duration, 10);
      EXPECT_NEAR(d.mean_duration, (3 * 5 + 5 * 10) / 8.0, 1e-12);
    }
    // dist.center: visited by 5 paths plus the revisit in path 8 -> 6
    // visits; durations 2,2,1,2,2 then 5.
    if (d.location == Loc("dist.center")) {
      saw_dist_center = true;
      EXPECT_EQ(d.visits, 6u);
      EXPECT_NEAR(d.mean_duration, (2 + 2 + 1 + 2 + 2 + 5) / 6.0, 1e-12);
      EXPECT_EQ(d.max_duration, 5);
    }
  }
  EXPECT_TRUE(saw_factory);
  EXPECT_TRUE(saw_dist_center);
}

TEST(FlowStatsEdge, EmptyGraph) {
  FlowGraph g;
  EXPECT_DOUBLE_EQ(ExpectedLeadTime(g), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedPathLength(g), 0.0);
  EXPECT_DOUBLE_EQ(VisitProbability(g, 1), 0.0);
  EXPECT_TRUE(DwellByLocation(g).empty());
}

TEST(FlowStatsEdge, StarDurationsContributeNothing) {
  std::vector<Path> paths = {Path{{Stage{1, kAnyDuration}}},
                             Path{{Stage{1, kAnyDuration}}}};
  const FlowGraph g = BuildFlowGraph(paths);
  EXPECT_DOUBLE_EQ(ExpectedLeadTime(g), 0.0);
  const auto dwell = DwellByLocation(g);
  ASSERT_EQ(dwell.size(), 1u);
  EXPECT_DOUBLE_EQ(dwell[0].mean_duration, 0.0);
}

}  // namespace
}  // namespace flowcube
