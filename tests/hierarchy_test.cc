#include <algorithm>

#include <gtest/gtest.h>

#include "hierarchy/concept_hierarchy.h"
#include "hierarchy/lattice.h"

namespace flowcube {
namespace {

ConceptHierarchy MakeLocationHierarchy() {
  // The paper's Figure 5.
  ConceptHierarchy h("location");
  EXPECT_TRUE(h.AddPath({"transportation", "dist.center"}).ok());
  EXPECT_TRUE(h.AddPath({"transportation", "truck"}).ok());
  EXPECT_TRUE(h.AddPath({"factory"}).ok());
  EXPECT_TRUE(h.AddPath({"store", "warehouse"}).ok());
  EXPECT_TRUE(h.AddPath({"store", "shelf"}).ok());
  EXPECT_TRUE(h.AddPath({"store", "checkout"}).ok());
  return h;
}

// --- ConceptHierarchy --------------------------------------------------------

TEST(ConceptHierarchy, RootExistsAtLevelZero) {
  ConceptHierarchy h("d");
  EXPECT_EQ(h.NodeCount(), 1u);
  EXPECT_EQ(h.Level(h.root()), 0);
  EXPECT_EQ(h.Name(h.root()), "*");
  EXPECT_EQ(h.Parent(h.root()), kInvalidNode);
  EXPECT_EQ(h.MaxLevel(), 0);
}

TEST(ConceptHierarchy, AddChildAssignsLevelsAndParents) {
  ConceptHierarchy h("d");
  Result<NodeId> a = h.AddChild(h.root(), "a");
  ASSERT_TRUE(a.ok());
  Result<NodeId> b = h.AddChild(a.value(), "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(h.Level(a.value()), 1);
  EXPECT_EQ(h.Level(b.value()), 2);
  EXPECT_EQ(h.Parent(b.value()), a.value());
  EXPECT_EQ(h.MaxLevel(), 2);
  EXPECT_EQ(h.Children(a.value()).size(), 1u);
}

TEST(ConceptHierarchy, DuplicateNameRejected) {
  ConceptHierarchy h("d");
  ASSERT_TRUE(h.AddChild(h.root(), "a").ok());
  Result<NodeId> dup = h.AddChild(h.root(), "a");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), Status::Code::kAlreadyExists);
}

TEST(ConceptHierarchy, AddChildRejectsBadParent) {
  ConceptHierarchy h("d");
  EXPECT_FALSE(h.AddChild(999, "x").ok());
}

TEST(ConceptHierarchy, AddPathReusesExistingPrefix) {
  ConceptHierarchy h("d");
  Result<NodeId> leaf1 = h.AddPath({"a", "b"});
  ASSERT_TRUE(leaf1.ok());
  Result<NodeId> leaf2 = h.AddPath({"a", "c"});
  ASSERT_TRUE(leaf2.ok());
  // "a" was reused, so: root, a, b, c.
  EXPECT_EQ(h.NodeCount(), 4u);
  EXPECT_EQ(h.Parent(leaf1.value()), h.Parent(leaf2.value()));
}

TEST(ConceptHierarchy, AddPathRejectsReparenting) {
  ConceptHierarchy h("d");
  ASSERT_TRUE(h.AddPath({"a", "b"}).ok());
  // "b" exists under "a"; re-adding it under "c" must fail.
  EXPECT_FALSE(h.AddPath({"c", "b"}).ok());
}

TEST(ConceptHierarchy, AddPathRejectsEmpty) {
  ConceptHierarchy h("d");
  EXPECT_FALSE(h.AddPath({}).ok());
}

TEST(ConceptHierarchy, FindByName) {
  ConceptHierarchy h = MakeLocationHierarchy();
  ASSERT_TRUE(h.Find("truck").ok());
  EXPECT_EQ(h.Level(h.Find("truck").value()), 2);
  EXPECT_EQ(h.Find("*").value(), h.root());
  EXPECT_FALSE(h.Find("spaceship").ok());
}

TEST(ConceptHierarchy, AncestorAtLevel) {
  ConceptHierarchy h = MakeLocationHierarchy();
  const NodeId truck = h.Find("truck").value();
  const NodeId transportation = h.Find("transportation").value();
  EXPECT_EQ(h.AncestorAtLevel(truck, 1), transportation);
  EXPECT_EQ(h.AncestorAtLevel(truck, 0), h.root());
  // A node at or above the requested level stays put.
  EXPECT_EQ(h.AncestorAtLevel(truck, 2), truck);
  EXPECT_EQ(h.AncestorAtLevel(transportation, 2), transportation);
}

TEST(ConceptHierarchy, IsAncestorOrSelf) {
  ConceptHierarchy h = MakeLocationHierarchy();
  const NodeId truck = h.Find("truck").value();
  const NodeId transportation = h.Find("transportation").value();
  const NodeId store = h.Find("store").value();
  EXPECT_TRUE(h.IsAncestorOrSelf(transportation, truck));
  EXPECT_TRUE(h.IsAncestorOrSelf(truck, truck));
  EXPECT_TRUE(h.IsAncestorOrSelf(h.root(), truck));
  EXPECT_FALSE(h.IsAncestorOrSelf(truck, transportation));
  EXPECT_FALSE(h.IsAncestorOrSelf(store, truck));
}

TEST(ConceptHierarchy, NodesAtLevelAndLeaves) {
  ConceptHierarchy h = MakeLocationHierarchy();
  EXPECT_EQ(h.NodesAtLevel(1).size(), 3u);  // transportation, factory, store
  EXPECT_EQ(h.NodesAtLevel(2).size(), 5u);
  // factory is a level-1 leaf; the other five leaves are at level 2.
  EXPECT_EQ(h.Leaves().size(), 6u);
}

// --- ItemLattice --------------------------------------------------------------

TEST(ItemLattice, ApexAndBase) {
  ItemLattice lat({3, 2});
  EXPECT_EQ(lat.Apex().levels, (std::vector<int>{0, 0}));
  EXPECT_EQ(lat.Base().levels, (std::vector<int>{3, 2}));
}

TEST(ItemLattice, AllLevelsEnumeratesProduct) {
  ItemLattice lat({2, 1});
  const auto all = lat.AllLevels();
  EXPECT_EQ(all.size(), 6u);  // 3 * 2
  // Parents precede children: apex first, base last.
  EXPECT_EQ(all.front().levels, (std::vector<int>{0, 0}));
  EXPECT_EQ(all.back().levels, (std::vector<int>{2, 1}));
  // General-before-specific ordering by total level sum.
  for (size_t i = 1; i < all.size(); ++i) {
    int prev = 0, cur = 0;
    for (int l : all[i - 1].levels) prev += l;
    for (int l : all[i].levels) cur += l;
    EXPECT_LE(prev, cur);
  }
}

TEST(ItemLattice, ParentsAndChildren) {
  ItemLattice lat({2, 2});
  const ItemLevel mid{{1, 1}};
  const auto parents = lat.Parents(mid);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0].levels, (std::vector<int>{0, 1}));
  EXPECT_EQ(parents[1].levels, (std::vector<int>{1, 0}));
  const auto children = lat.Children(mid);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].levels, (std::vector<int>{2, 1}));
  EXPECT_EQ(children[1].levels, (std::vector<int>{1, 2}));
  EXPECT_TRUE(lat.Parents(lat.Apex()).empty());
  EXPECT_TRUE(lat.Children(lat.Base()).empty());
}

TEST(ItemLattice, GeneralizesOrEquals) {
  EXPECT_TRUE(ItemLattice::GeneralizesOrEquals(ItemLevel{{0, 1}},
                                               ItemLevel{{2, 1}}));
  EXPECT_TRUE(ItemLattice::GeneralizesOrEquals(ItemLevel{{1, 1}},
                                               ItemLevel{{1, 1}}));
  EXPECT_FALSE(ItemLattice::GeneralizesOrEquals(ItemLevel{{2, 0}},
                                                ItemLevel{{1, 1}}));
  EXPECT_FALSE(
      ItemLattice::GeneralizesOrEquals(ItemLevel{{0}}, ItemLevel{{0, 0}}));
}

TEST(ItemLattice, Contains) {
  ItemLattice lat({2, 1});
  EXPECT_TRUE(lat.Contains(ItemLevel{{2, 1}}));
  EXPECT_TRUE(lat.Contains(ItemLevel{{0, 0}}));
  EXPECT_FALSE(lat.Contains(ItemLevel{{3, 0}}));
  EXPECT_FALSE(lat.Contains(ItemLevel{{1}}));
}

TEST(ItemLevel, ToStringRendersLevels) {
  EXPECT_EQ((ItemLevel{{2, 0, 1}}).ToString(), "(2,0,1)");
}

// --- LocationCut ---------------------------------------------------------------

TEST(LocationCut, UniformAtLeafLevelIsIdentity) {
  ConceptHierarchy h = MakeLocationHierarchy();
  Result<LocationCut> cut = LocationCut::Uniform(h, 2);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(cut->IsIdentity());
  const NodeId truck = h.Find("truck").value();
  EXPECT_EQ(cut->Map(truck), truck);
  // factory is a shallow leaf (level 1); a level-2 cut must still cover it.
  const NodeId factory = h.Find("factory").value();
  EXPECT_EQ(cut->Map(factory), factory);
}

TEST(LocationCut, UniformLevelOneAggregates) {
  ConceptHierarchy h = MakeLocationHierarchy();
  Result<LocationCut> cut = LocationCut::Uniform(h, 1);
  ASSERT_TRUE(cut.ok());
  EXPECT_FALSE(cut->IsIdentity());
  EXPECT_EQ(cut->Map(h.Find("truck").value()),
            h.Find("transportation").value());
  EXPECT_EQ(cut->Map(h.Find("shelf").value()), h.Find("store").value());
  EXPECT_EQ(cut->Map(h.Find("factory").value()), h.Find("factory").value());
}

TEST(LocationCut, MixedCutPerFigure5) {
  // Transportation manager view: keep dist.center/truck detailed, collapse
  // the store.
  ConceptHierarchy h = MakeLocationHierarchy();
  Result<LocationCut> cut = LocationCut::FromNodes(
      h, {h.Find("dist.center").value(), h.Find("truck").value(),
          h.Find("factory").value(), h.Find("store").value()});
  ASSERT_TRUE(cut.ok()) << cut.status().ToString();
  EXPECT_EQ(cut->Map(h.Find("truck").value()), h.Find("truck").value());
  EXPECT_EQ(cut->Map(h.Find("shelf").value()), h.Find("store").value());
  EXPECT_EQ(cut->Map(h.Find("checkout").value()), h.Find("store").value());
}

TEST(LocationCut, RejectsNestedCutNodes) {
  ConceptHierarchy h = MakeLocationHierarchy();
  Result<LocationCut> cut = LocationCut::FromNodes(
      h, {h.Find("store").value(), h.Find("shelf").value(),
          h.Find("transportation").value(), h.Find("factory").value()});
  EXPECT_FALSE(cut.ok());
}

TEST(LocationCut, RejectsIncompleteCover) {
  ConceptHierarchy h = MakeLocationHierarchy();
  Result<LocationCut> cut =
      LocationCut::FromNodes(h, {h.Find("store").value()});
  EXPECT_FALSE(cut.ok());
}

TEST(LocationCut, MapAboveCutIsInvalid) {
  ConceptHierarchy h = MakeLocationHierarchy();
  Result<LocationCut> cut = LocationCut::Uniform(h, 2);
  ASSERT_TRUE(cut.ok());
  // "store" (level 1, above the leaf cut) has no representative.
  EXPECT_EQ(cut->Map(h.Find("store").value()), kInvalidNode);
}

TEST(PathLevel, ToStringAndEquality) {
  PathLevel a{0, 1};
  PathLevel b{0, 1};
  PathLevel c{1, 0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(c.ToString(), "<cut=1,dur=0>");
}

}  // namespace
}  // namespace flowcube
