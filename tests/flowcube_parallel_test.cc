// The parallel builder's contract: for ANY thread count the constructed
// cube serializes byte-identically to the serial build, and every
// thread-independent stat matches. DumpFlowCube is the canonical
// serialization (cells sorted, %.17g doubles), so string equality here is
// bitwise equality of the cubes.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowcube/dump.h"
#include "gen/paper_example.h"
#include "gen/path_generator.h"
#include "mining/shared_miner.h"
#include "mining/transform.h"

namespace flowcube {
namespace {

struct BuildOutput {
  std::string dump;
  FlowCubeBuildStats stats;
};

BuildOutput BuildWithThreads(const PathDatabase& db, int num_threads,
                             uint32_t min_support = 2) {
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = min_support;
  opts.exceptions.min_support = min_support;
  opts.num_threads = num_threads;
  FlowCubeBuilder builder(opts);
  FlowCubeBuildStats stats;
  Result<FlowCube> cube = builder.Build(db, plan, &stats);
  EXPECT_TRUE(cube.ok());
  return BuildOutput{DumpFlowCube(cube.value()), stats};
}

void ExpectSameCube(const BuildOutput& serial, const BuildOutput& parallel,
                    size_t expected_threads) {
  EXPECT_EQ(serial.stats.threads, 1u);
  EXPECT_EQ(parallel.stats.threads, expected_threads);
  // Byte-identical serialization: same cells, measures, exceptions, flags.
  EXPECT_EQ(serial.dump, parallel.dump);
  // Every thread-independent counter matches too.
  EXPECT_EQ(serial.stats.cells_materialized,
            parallel.stats.cells_materialized);
  EXPECT_EQ(serial.stats.exceptions_found, parallel.stats.exceptions_found);
  EXPECT_EQ(serial.stats.cells_marked_redundant,
            parallel.stats.cells_marked_redundant);
  EXPECT_EQ(serial.stats.mining.TotalCandidates(),
            parallel.stats.mining.TotalCandidates());
  EXPECT_EQ(serial.stats.mining.TotalFrequent(),
            parallel.stats.mining.TotalFrequent());
  EXPECT_EQ(serial.stats.mining.candidates_per_length,
            parallel.stats.mining.candidates_per_length);
  EXPECT_EQ(serial.stats.mining.passes, parallel.stats.mining.passes);
}

TEST(FlowCubeParallelTest, PaperExampleIdenticalAt1_2_8Threads) {
  const PathDatabase db = MakePaperDatabase();
  const BuildOutput serial = BuildWithThreads(db, 1);
  EXPECT_FALSE(serial.dump.empty());
  ExpectSameCube(serial, BuildWithThreads(db, 2), 2);
  ExpectSameCube(serial, BuildWithThreads(db, 8), 8);
}

TEST(FlowCubeParallelTest, GeneratedWorkloadIdenticalAcrossThreads) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {3, 3, 3};
  cfg.num_sequences = 20;
  cfg.seed = 20060912;
  PathGenerator gen(cfg);
  const PathDatabase db = gen.Generate(400);

  const BuildOutput serial = BuildWithThreads(db, 1, /*min_support=*/4);
  EXPECT_FALSE(serial.dump.empty());
  EXPECT_GT(serial.stats.cells_materialized, 0u);
  ExpectSameCube(serial, BuildWithThreads(db, 2, /*min_support=*/4), 2);
  ExpectSameCube(serial, BuildWithThreads(db, 8, /*min_support=*/4), 8);
}

TEST(FlowCubeParallelTest, DumpIsSensitiveToTheBuildKnobs) {
  // Guards against a vacuous determinism test: different cubes must
  // serialize differently.
  const PathDatabase db = MakePaperDatabase();
  const BuildOutput a = BuildWithThreads(db, 1, /*min_support=*/2);
  const BuildOutput b = BuildWithThreads(db, 1, /*min_support=*/3);
  EXPECT_NE(a.dump, b.dump);
}

TEST(FlowCubeParallelTest, SharedMinerFrequentSetsThreadInvariant) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 3;
  cfg.dim_distinct_per_level = {3, 3};
  cfg.num_sequences = 15;
  cfg.seed = 42;
  PathGenerator gen(cfg);
  const PathDatabase db = gen.Generate(300);
  const MiningPlan plan = MiningPlan::Default(db.schema()).value();
  const TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());

  SharedMinerOptions opts;
  opts.min_support = 5;
  opts.num_threads = 1;
  const SharedMiningOutput serial = SharedMiner(tdb, opts).Run();
  opts.num_threads = 4;
  const SharedMiningOutput parallel = SharedMiner(tdb, opts).Run();

  // Identical itemsets with identical supports, in identical order.
  EXPECT_EQ(serial.frequent, parallel.frequent);
  EXPECT_EQ(serial.stats.candidates_per_length,
            parallel.stats.candidates_per_length);
  EXPECT_EQ(serial.stats.frequent_per_length,
            parallel.stats.frequent_per_length);
  EXPECT_EQ(serial.stats.passes, parallel.stats.passes);
}

}  // namespace
}  // namespace flowcube
