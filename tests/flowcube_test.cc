#include <algorithm>

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "gen/paper_example.h"
#include "gen/path_generator.h"

namespace flowcube {
namespace {

class FlowCubeTest : public ::testing::Test {
 protected:
  FlowCubeTest() : db_(MakePaperDatabase()) {
    plan_ = FlowCubePlan::Default(db_.schema()).value();
    FlowCubeBuilderOptions opts;
    opts.min_support = 2;
    opts.exceptions.min_support = 2;
    FlowCubeBuilder builder(opts);
    cube_ = std::make_unique<FlowCube>(
        std::move(builder.Build(db_, plan_, &stats_).value()));
  }

  PathDatabase db_;
  FlowCubePlan plan_;
  FlowCubeBuildStats stats_;
  std::unique_ptr<FlowCube> cube_;
};

TEST_F(FlowCubeTest, PlanEnumeratesAllCuboids) {
  // product depth 3, brand depth 2 -> 4*3 item levels; 4 path levels.
  EXPECT_EQ(plan_.item_levels.size(), 12u);
  EXPECT_EQ(plan_.path_levels.size(), 4u);
  EXPECT_EQ(cube_->num_cuboids(), 48u);
}

TEST_F(FlowCubeTest, IcebergConditionHolds) {
  cube_->ForEachCuboid([](const Cuboid& cuboid) {
    cuboid.ForEach([](const FlowCell& cell) {
      EXPECT_GE(cell.support, 2u);
      EXPECT_EQ(cell.graph.total_paths(), cell.support);
    });
  });
}

TEST_F(FlowCubeTest, ApexCellCoversDatabase) {
  const int il = plan_.FindItemLevel(ItemLevel{{0, 0}});
  ASSERT_GE(il, 0);
  const FlowCell* apex =
      cube_->cuboid(static_cast<size_t>(il), 0).Find({});
  ASSERT_NE(apex, nullptr);
  EXPECT_EQ(apex->support, 8u);
}

TEST_F(FlowCubeTest, CellSupportsMatchTable2) {
  FlowCubeQuery query(cube_.get());
  // Table 2: (shoes, nike)=3 paths, (shoes, adidas)=2, (outerwear, nike)=3.
  EXPECT_EQ(query.Cell({"shoes", "nike"})->cell->support, 3u);
  EXPECT_EQ(query.Cell({"shoes", "adidas"})->cell->support, 2u);
  EXPECT_EQ(query.Cell({"outerwear", "nike"})->cell->support, 3u);
  // (shirt, nike) has a single path: below the iceberg threshold.
  EXPECT_EQ(query.Cell({"shirt", "nike"}).status().code(),
            Status::Code::kNotFound);
}

TEST_F(FlowCubeTest, StarCoordinatesResolve) {
  FlowCubeQuery query(cube_.get());
  const Result<CellRef> nike = query.Cell({"*", "nike"});
  ASSERT_TRUE(nike.ok());
  EXPECT_EQ(nike->cell->support, 6u);
  const Result<CellRef> apex = query.Cell({"*", "*"});
  ASSERT_TRUE(apex.ok());
  EXPECT_EQ(apex->cell->support, 8u);
}

TEST_F(FlowCubeTest, PathLevelChangesGraphShape) {
  FlowCubeQuery query(cube_.get());
  // Path level 2 = one-up cut with raw durations: the (tennis, nike) cell's
  // graph starts at "production" instead of "factory".
  const Result<CellRef> raw = query.Cell({"tennis", "nike"}, 0);
  const Result<CellRef> up = query.Cell({"tennis", "nike"}, 2);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(up.ok());
  const auto& loc = db_.schema().locations;
  EXPECT_NE(raw->cell->graph.FindChild(FlowGraph::kRoot,
                                       loc.Find("factory").value()),
            FlowGraph::kTerminate);
  EXPECT_NE(up->cell->graph.FindChild(FlowGraph::kRoot,
                                      loc.Find("production").value()),
            FlowGraph::kTerminate);
  EXPECT_EQ(up->cell->graph.FindChild(FlowGraph::kRoot,
                                      loc.Find("factory").value()),
            FlowGraph::kTerminate);
}

TEST_F(FlowCubeTest, DurationStarLevelHasAnyDurations) {
  FlowCubeQuery query(cube_.get());
  const Result<CellRef> star = query.Cell({"*", "nike"}, 1);
  ASSERT_TRUE(star.ok());
  const FlowGraph& g = star->cell->graph;
  for (FlowNodeId n = 1; n < g.num_nodes(); ++n) {
    for (const auto& [d, c] : g.duration_counts(n)) {
      EXPECT_EQ(d, kAnyDuration);
    }
  }
}

TEST_F(FlowCubeTest, RollUpAndDrillDown) {
  FlowCubeQuery query(cube_.get());
  const Result<CellRef> tennis = query.Cell({"tennis", "nike"});
  ASSERT_TRUE(tennis.ok());
  const Result<CellRef> shoes = query.RollUp(*tennis, 0);
  ASSERT_TRUE(shoes.ok());
  EXPECT_EQ(cube_->CellName(shoes->cell->dims), "(shoes, nike)");
  EXPECT_EQ(shoes->cell->support, 3u);

  const Result<CellRef> brand_up = query.RollUp(*shoes, 1);
  ASSERT_TRUE(brand_up.ok());
  EXPECT_EQ(cube_->CellName(brand_up->cell->dims), "(shoes, premium)");

  const auto children = query.DrillDown(*shoes, 0);
  ASSERT_EQ(children.size(), 1u);  // only tennis passes the iceberg
  EXPECT_EQ(cube_->CellName(children[0].cell->dims), "(tennis, nike)");

  // Rolling up a '*' dimension fails.
  const Result<CellRef> apex = query.Cell({"*", "*"});
  EXPECT_EQ(query.RollUp(*apex, 0).status().code(),
            Status::Code::kFailedPrecondition);
}

TEST_F(FlowCubeTest, SliceFindsMatchingCells) {
  FlowCubeQuery query(cube_.get());
  const int il = plan_.FindItemLevel(ItemLevel{{3, 2}});
  ASSERT_GE(il, 0);
  const auto cells =
      query.Slice(static_cast<size_t>(il), 0, 1, "nike");
  ASSERT_TRUE(cells.ok());
  // (tennis, nike) and (jacket, nike) pass the iceberg at level (3,2).
  EXPECT_EQ(cells->size(), 2u);
  for (const CellRef& ref : *cells) {
    EXPECT_NE(cube_->CellName(ref.cell->dims).find("nike"),
              std::string::npos);
  }
  EXPECT_FALSE(query.Slice(99, 0, 1, "nike").ok());
  EXPECT_FALSE(query.Slice(0, 0, 1, "noname").ok());
}

TEST_F(FlowCubeTest, TypicalPathsOrderedByProbability) {
  FlowCubeQuery query(cube_.get());
  const Result<CellRef> apex = query.Cell({"*", "*"});
  ASSERT_TRUE(apex.ok());
  const auto typical = query.TypicalPaths(*apex, 10);
  ASSERT_FALSE(typical.empty());
  for (size_t i = 1; i < typical.size(); ++i) {
    EXPECT_GE(typical[i - 1].probability, typical[i].probability);
  }
  // The most typical route is factory > dist.center > truck > shelf >
  // checkout (4 of 8 paths follow it fully).
  const auto& loc = db_.schema().locations;
  EXPECT_EQ(typical[0].path.stages.front().location,
            loc.Find("factory").value());
  const auto k1 = query.TypicalPaths(*apex, 1);
  EXPECT_EQ(k1.size(), 1u);
}

TEST_F(FlowCubeTest, CompareIsZeroForSelf) {
  FlowCubeQuery query(cube_.get());
  const Result<CellRef> a = query.Cell({"shoes", "nike"});
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(query.Compare(*a, *a), 0.0);
  const Result<CellRef> b = query.Cell({"outerwear", "nike"});
  ASSERT_TRUE(b.ok());
  EXPECT_GT(query.Compare(*a, *b), 0.0);
}

TEST_F(FlowCubeTest, RedundancyMarkingAndErasure) {
  // (clothing, *) covers all 8 paths, as does the apex: the child is
  // necessarily redundant (identical path set => identical flowgraph).
  const int il = plan_.FindItemLevel(ItemLevel{{1, 0}});
  ASSERT_GE(il, 0);
  const ItemCatalog& cat = cube_->catalog();
  const Itemset clothing = {
      cat.DimItem(0, db_.schema().dimensions[0].Find("clothing").value())};
  const FlowCell* cell =
      cube_->cuboid(static_cast<size_t>(il), 0).Find(clothing);
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(cell->redundant);

  EXPECT_GT(cube_->RedundantCells(), 0u);
  const size_t before = cube_->TotalCells();
  const size_t removed = cube_->EraseRedundant();
  EXPECT_EQ(cube_->TotalCells(), before - removed);
  EXPECT_EQ(cube_->RedundantCells(), 0u);
}

TEST_F(FlowCubeTest, CellOrAncestorFallsBackAfterEraseRedundant) {
  // Compressing the cube must not lose answers: (clothing, *) is redundant
  // w.r.t. the apex (identical path set), so after EraseRedundant() a direct
  // lookup misses but the ancestor fallback still serves the same flowgraph
  // from (*, *).
  FlowCubeQuery query(cube_.get());
  const Result<CellRef> direct = query.Cell({"clothing", "*"});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(direct->cell->redundant);
  const uint32_t support_before = direct->cell->support;

  ASSERT_GT(cube_->EraseRedundant(), 0u);

  EXPECT_EQ(query.Cell({"clothing", "*"}).status().code(),
            Status::Code::kNotFound);
  const Result<CellRef> fallback = query.CellOrAncestor({"clothing", "*"});
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(cube_->CellName(fallback->cell->dims), "(*, *)");
  // Redundancy (Definition 4.4) means the ancestor describes the same path
  // set, so the answer the fallback serves is as good as the erased cell's.
  EXPECT_EQ(fallback->cell->support, support_before);

  // Non-redundant cells still resolve directly after compression.
  const Result<CellRef> shoes = query.CellOrAncestor({"shoes", "nike"});
  ASSERT_TRUE(shoes.ok());
  EXPECT_EQ(cube_->CellName(shoes->cell->dims), "(shoes, nike)");
  EXPECT_EQ(shoes->cell->support, 3u);
}

TEST_F(FlowCubeTest, CellOrAncestorIsDeterministicOnCompressedCube) {
  cube_->EraseRedundant();
  FlowCubeQuery query(cube_.get());
  const Result<CellRef> first = query.CellOrAncestor({"clothing", "*"});
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    const Result<CellRef> again = query.CellOrAncestor({"clothing", "*"});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->cell, first->cell);
  }
}

TEST_F(FlowCubeTest, ApexIsNeverRedundant) {
  const int il = plan_.FindItemLevel(ItemLevel{{0, 0}});
  const FlowCell* apex =
      cube_->cuboid(static_cast<size_t>(il), 0).Find({});
  ASSERT_NE(apex, nullptr);
  EXPECT_FALSE(apex->redundant);
}

TEST_F(FlowCubeTest, ExceptionsAttachedToCellGraphs) {
  EXPECT_GE(stats_.exceptions_found, 0u);
  EXPECT_GT(stats_.cells_materialized, 0u);
  EXPECT_GT(stats_.mining.TotalCandidates(), 0u);
}

TEST_F(FlowCubeTest, CellNameRendersStarsForMissingDims) {
  const ItemCatalog& cat = cube_->catalog();
  const Itemset nike = {
      cat.DimItem(1, db_.schema().dimensions[1].Find("nike").value())};
  EXPECT_EQ(cube_->CellName(nike), "(*, nike)");
  EXPECT_EQ(cube_->CellName({}), "(*, *)");
}

// --- Layered (partial) materialization --------------------------------------------

TEST(FlowCubePlanTest, LayeredChainBetweenLayers) {
  PathDatabase db = MakePaperDatabase();
  const Result<FlowCubePlan> plan = FlowCubePlan::Layered(
      db.schema(), ItemLevel{{1, 0}}, ItemLevel{{3, 2}});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Chain: (3,2) -> (2,2) -> (1,2) -> (1,1) -> (1,0): 5 cuboid levels.
  EXPECT_EQ(plan->item_levels.size(), 5u);
  EXPECT_EQ(plan->item_levels.front(), (ItemLevel{{3, 2}}));
  EXPECT_EQ(plan->item_levels.back(), (ItemLevel{{1, 0}}));
}

TEST(FlowCubePlanTest, LayeredRejectsInvertedLayers) {
  PathDatabase db = MakePaperDatabase();
  EXPECT_FALSE(FlowCubePlan::Layered(db.schema(), ItemLevel{{3, 2}},
                                     ItemLevel{{1, 0}})
                   .ok());
  EXPECT_FALSE(
      FlowCubePlan::Layered(db.schema(), ItemLevel{{9, 9}}, ItemLevel{{9, 9}})
          .ok());
}

TEST(FlowCubePlanTest, LayeredBuildsOnlyPlannedCuboids) {
  PathDatabase db = MakePaperDatabase();
  FlowCubePlan plan = FlowCubePlan::Layered(db.schema(), ItemLevel{{2, 1}},
                                            ItemLevel{{3, 2}})
                          .value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  opts.compute_exceptions = false;
  FlowCubeBuilder builder(opts);
  Result<FlowCube> cube = builder.Build(db, plan);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->plan().item_levels.size(), 3u);  // (3,2),(2,2),(2,1)
  // A level outside the plan is not materialized.
  EXPECT_EQ(cube->FindCuboid(ItemLevel{{0, 0}}, 0), nullptr);
  EXPECT_NE(cube->FindCuboid(ItemLevel{{2, 1}}, 0), nullptr);
}

// --- Generated data ----------------------------------------------------------------

TEST(FlowCubeGenerated, BuildsOnSyntheticData) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_sequences = 6;
  cfg.seed = 31;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(500);
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions opts;
  opts.min_support = 25;
  opts.exceptions.min_support = 25;
  FlowCubeBuilder builder(opts);
  FlowCubeBuildStats stats;
  Result<FlowCube> cube = builder.Build(db, plan, &stats);
  ASSERT_TRUE(cube.ok());
  EXPECT_GT(cube->TotalCells(), 10u);
  // Support is monotone along roll-up: every cell's parent has at least the
  // cell's support.
  FlowCubeQuery query(&cube.value());
  cube->ForEachCuboid([&](const Cuboid& cuboid) {
    cuboid.ForEach([&](const FlowCell& cell) {
      for (size_t d = 0; d < cuboid.item_level().levels.size(); ++d) {
        if (cuboid.item_level().levels[d] == 0) continue;
        CellRef ref{&cell, 0, 0};
        // Locate indices for RollUp.
        ref.il_index = static_cast<size_t>(
            cube->plan().FindItemLevel(cuboid.item_level()));
        const Result<CellRef> parent = query.RollUp(ref, d);
        if (parent.ok()) {
          EXPECT_GE(parent->cell->support, cell.support);
        }
      }
    });
  });
}

}  // namespace
}  // namespace flowcube
