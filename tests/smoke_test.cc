// End-to-end smoke: paper database -> transform -> Shared mining ->
// flowcube -> query. Deeper per-module coverage lives in the sibling test
// files.

#include <gtest/gtest.h>

#include "flowcube/builder.h"
#include "flowcube/query.h"
#include "gen/paper_example.h"
#include "mining/mining_result.h"

namespace flowcube {
namespace {

TEST(Smoke, PaperDatabaseBuilds) {
  PathDatabase db = MakePaperDatabase();
  ASSERT_EQ(db.size(), 8u);
  EXPECT_EQ(PathToString(db.schema(), db.record(0).path),
            "(factory,10)(dist.center,2)(truck,1)(shelf,5)(checkout,0)");
}

TEST(Smoke, SharedMinerFindsTable4Patterns) {
  PathDatabase db = MakePaperDatabase();
  Result<MiningPlan> plan = MiningPlan::Default(db.schema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<TransformedDatabase> tdb = TransformPathDatabase(db, plan.value());
  ASSERT_TRUE(tdb.ok()) << tdb.status().ToString();

  SharedMinerOptions opts;
  opts.min_support = 3;
  SharedMiner miner(tdb.value(), opts);
  SharedMiningOutput out = miner.Run();
  EXPECT_GT(out.frequent.size(), 0u);

  // Table 4 reports {121} (tennis) with support 5, but Table 1 contains
  // tennis in exactly 4 paths (ids 1, 2, 7, 8) — the paper's table is
  // internally inconsistent there. We assert the recomputed ground truth:
  // tennis = 4, shoes ({12*}) = 5 (matching the paper's row).
  const ItemCatalog& cat = tdb.value().catalog();
  const auto& product = db.schema().dimensions[0];
  const ItemId tennis = cat.DimItem(0, product.Find("tennis").value());
  const ItemId shoes = cat.DimItem(0, product.Find("shoes").value());
  uint32_t tennis_support = 0;
  uint32_t shoes_support = 0;
  for (const FrequentItemset& fi : out.frequent) {
    if (fi.items == Itemset{tennis}) tennis_support = fi.support;
    if (fi.items == Itemset{shoes}) shoes_support = fi.support;
  }
  EXPECT_EQ(tennis_support, 4u);
  EXPECT_EQ(shoes_support, 5u);
}

TEST(Smoke, FlowCubeBuildsAndAnswersQueries) {
  PathDatabase db = MakePaperDatabase();
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  FlowCubeBuilderOptions opts;
  opts.min_support = 2;
  FlowCubeBuilder builder(opts);
  FlowCubeBuildStats stats;
  Result<FlowCube> cube = builder.Build(db, plan.value(), &stats);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_GT(stats.cells_materialized, 0u);

  FlowCubeQuery query(&cube.value());
  // The (outerwear, nike) cell of Table 2 / Figure 4.
  Result<CellRef> cell = query.Cell({"outerwear", "nike"}, 0);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_EQ(cell->cell->support, 3u);

  // Figure 4: factory -> truck with probability 1.
  const FlowGraph& g = cell->cell->graph;
  const auto& loc = db.schema().locations;
  const FlowNodeId factory =
      g.FindChild(FlowGraph::kRoot, loc.Find("factory").value());
  ASSERT_NE(factory, FlowGraph::kTerminate);
  const FlowNodeId truck = g.FindChild(factory, loc.Find("truck").value());
  ASSERT_NE(truck, FlowGraph::kTerminate);
  EXPECT_DOUBLE_EQ(g.TransitionProbability(factory, truck), 1.0);
}

}  // namespace
}  // namespace flowcube
