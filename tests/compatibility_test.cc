#include <algorithm>

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "gen/path_generator.h"
#include "mining/compatibility.h"
#include "mining/shared_miner.h"

namespace flowcube {
namespace {

class CompatibilityTest : public ::testing::Test {
 protected:
  CompatibilityTest() : db_(MakePaperDatabase()) {
    MiningPlan plan = MiningPlan::Default(db_.schema()).value();
    tdb_ = std::make_unique<TransformedDatabase>(
        std::move(TransformPathDatabase(db_, plan).value()));
  }

  ItemId Dim(size_t d, const std::string& name) const {
    return tdb_->catalog().DimItem(
        d, db_.schema().dimensions[d].Find(name).value());
  }

  ItemId StageItem(const std::vector<std::string>& locs, Duration dur,
                   uint8_t path_level = 0) const {
    const ItemCatalog& cat = tdb_->catalog();
    PrefixId p = kEmptyPrefix;
    for (const auto& name : locs) {
      p = cat.trie().Find(p, db_.schema().locations.Find(name).value());
    }
    return cat.FindStageItem(path_level, p, dur);
  }

  PathDatabase db_;
  std::unique_ptr<TransformedDatabase> tdb_;
};

TEST_F(CompatibilityTest, TogglesAreIndependent) {
  // With everything off, anything goes.
  const ItemCompatibility none(tdb_.get(), false, false);
  EXPECT_TRUE(none.Compatible(Dim(0, "tennis"), Dim(0, "sandals")));
  EXPECT_TRUE(none.Compatible(Dim(0, "tennis"), Dim(0, "shoes")));
  EXPECT_TRUE(none.Compatible(StageItem({"factory"}, 10),
                              StageItem({"factory"}, kAnyDuration, 1)));

  // Only the unlinkable rule: ancestor pairs still allowed, unrelated
  // same-dimension pairs rejected.
  const ItemCompatibility unlink(tdb_.get(), true, false);
  EXPECT_FALSE(unlink.Compatible(Dim(0, "tennis"), Dim(0, "sandals")));
  EXPECT_TRUE(unlink.Compatible(Dim(0, "tennis"), Dim(0, "shoes")));

  // Only the ancestor rule: unrelated same-dimension pairs allowed (they
  // simply count to zero), ancestor pairs rejected.
  const ItemCompatibility anc(tdb_.get(), false, true);
  EXPECT_TRUE(anc.Compatible(Dim(0, "tennis"), Dim(0, "sandals")));
  EXPECT_FALSE(anc.Compatible(Dim(0, "tennis"), Dim(0, "shoes")));
  // Duration-star twin of the same stage at the same cut is an implied
  // ancestor.
  EXPECT_FALSE(anc.Compatible(StageItem({"factory"}, 10),
                              StageItem({"factory"}, kAnyDuration, 1)));
}

TEST_F(CompatibilityTest, CompatibilityIsSymmetric) {
  const ItemCompatibility compat(tdb_.get(), true, true);
  const std::vector<ItemId> items = {
      Dim(0, "tennis"),
      Dim(0, "shoes"),
      Dim(1, "nike"),
      StageItem({"factory"}, 10),
      StageItem({"factory", "dist.center"}, 2),
      StageItem({"factory"}, kAnyDuration, 1),
  };
  for (ItemId a : items) {
    for (ItemId b : items) {
      if (a == b) continue;
      EXPECT_EQ(compat.Compatible(a, b), compat.Compatible(b, a))
          << tdb_->catalog().ToString(a) << " vs "
          << tdb_->catalog().ToString(b);
    }
  }
}

TEST_F(CompatibilityTest, CandidateOkChecksLastPair) {
  const ItemCompatibility compat(tdb_.get(), true, true);
  Itemset good = {Dim(0, "tennis"), Dim(1, "nike")};
  std::sort(good.begin(), good.end());
  EXPECT_TRUE(compat.CandidateOk(good));
  EXPECT_TRUE(compat.CandidateOk({Dim(0, "tennis")}));  // trivial
  Itemset bad = {Dim(0, "tennis"), Dim(0, "sandals")};
  std::sort(bad.begin(), bad.end());
  EXPECT_FALSE(compat.CandidateOk(bad));
}

TEST_F(CompatibilityTest, IncompatiblePairsHaveZeroOrRedundantSupport) {
  // Ground-truth check of the pruning rules' soundness: for every pair of
  // frequent items ruled incompatible by the *unlinkable* rule, the pair's
  // true support over the transformed database must be zero; pairs ruled
  // out by the *ancestor* rule must have support equal to the descendant
  // item's support (the ancestor is implied).
  const ItemCompatibility unlink(tdb_.get(), true, false);
  const ItemCompatibility anc(tdb_.get(), false, true);
  const ItemCatalog& cat = tdb_->catalog();

  auto support = [&](std::initializer_list<ItemId> items) {
    uint32_t count = 0;
    for (const Transaction& t : tdb_->transactions()) {
      bool all = true;
      for (ItemId id : items) {
        if (!std::binary_search(t.items.begin(), t.items.end(), id)) {
          all = false;
          break;
        }
      }
      if (all) count++;
    }
    return count;
  };

  for (ItemId a = 0; a < cat.num_items(); ++a) {
    for (ItemId b = a + 1; b < cat.num_items(); ++b) {
      if (support({a}) == 0 || support({b}) == 0) continue;
      if (!unlink.Compatible(a, b)) {
        // Exception: ancestor pairs are allowed by 'unlink' for dims but
        // cross-level stage pairs are cut for cuboid homogeneity even
        // though they can co-occur; restrict the zero-support assertion to
        // same-path-level stage pairs and same-dimension value pairs.
        const bool both_stage = cat.IsStageItem(a) && cat.IsStageItem(b);
        const bool same_level =
            both_stage &&
            cat.StageOf(a).path_level == cat.StageOf(b).path_level;
        const bool both_dim = cat.IsDimItem(a) && cat.IsDimItem(b);
        if (same_level || both_dim) {
          EXPECT_EQ(support({a, b}), 0u)
              << cat.ToString(a) << " + " << cat.ToString(b);
        }
      }
      if (unlink.Compatible(a, b) && !anc.Compatible(a, b)) {
        const uint32_t pair_support = support({a, b});
        const uint32_t min_single = std::min(support({a}), support({b}));
        EXPECT_EQ(pair_support, min_single)
            << cat.ToString(a) << " + " << cat.ToString(b);
      }
    }
  }
}

class TransformSupportProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TransformSupportProperty, ReportedSupportsAreExact) {
  // Every support Shared reports must equal a direct count over the
  // transformed transactions.
  PathDatabase db = MakePaperDatabase();
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = std::move(TransformPathDatabase(db, plan).value());
  SharedMinerOptions opts;
  opts.min_support = GetParam();
  SharedMiner miner(tdb, opts);
  for (const FrequentItemset& fi : miner.Run().frequent) {
    uint32_t count = 0;
    for (const Transaction& t : tdb.transactions()) {
      if (std::includes(t.items.begin(), t.items.end(), fi.items.begin(),
                        fi.items.end())) {
        count++;
      }
    }
    EXPECT_EQ(fi.support, count)
        << FrequentItemsetToString(tdb.catalog(), fi);
    EXPECT_GE(count, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(MinSupports, TransformSupportProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

}  // namespace
}  // namespace flowcube
