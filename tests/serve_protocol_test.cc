// FCQP wire-format robustness (serve/protocol.h): every malformed-frame
// class — truncation, bad magic, version skew, length-field overflow, CRC
// tampering — must decode to a distinct, stable error status, and every
// well-formed message must round-trip canonically. Mirrors the FCSP
// checkpoint robustness suite (stream_checkpoint_test.cc): corrupt one
// field at a time, assert the exact status message.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"

namespace flowcube {
namespace {

constexpr size_t kMagicOffset = 0;
constexpr size_t kVersionOffset = 4;
constexpr size_t kCrcOffset = 8;
constexpr size_t kSizeOffset = 12;

void PutU32(std::string* bytes, size_t offset, uint32_t v) {
  ASSERT_LE(offset + 4, bytes->size());
  for (int i = 0; i < 4; ++i) {
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

QueryRequest SampleRequest() {
  QueryRequest request;
  request.type = RequestType::kPointLookup;
  request.request_id = 42;
  request.pl_index = 1;
  request.values = {"outerwear", "*"};
  return request;
}

std::string SampleFrame() { return EncodeFrame(EncodeRequest(SampleRequest())); }

void ExpectDecodeError(const std::string& bytes, const std::string& message) {
  Result<std::string> payload = DecodeFrameExact(bytes);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(payload.status().message(), message);
}

TEST(ServeProtocolTest, FrameRoundTrips) {
  const std::string payload = EncodeRequest(SampleRequest());
  const std::string frame = EncodeFrame(payload);
  EXPECT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  Result<std::string> decoded = DecodeFrameExact(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, payload);
}

TEST(ServeProtocolTest, EmptyPayloadFrameRoundTrips) {
  Result<std::string> decoded = DecodeFrameExact(EncodeFrame(""));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->empty());
}

TEST(ServeProtocolTest, TruncatedHeaderEveryPrefixLength) {
  const std::string frame = SampleFrame();
  for (size_t len = 0; len < kFrameHeaderSize; ++len) {
    SCOPED_TRACE(len);
    ExpectDecodeError(frame.substr(0, len),
                      "malformed frame: truncated header");
  }
}

TEST(ServeProtocolTest, TruncatedPayloadEveryLength) {
  const std::string frame = SampleFrame();
  for (size_t len = kFrameHeaderSize; len < frame.size(); ++len) {
    SCOPED_TRACE(len);
    ExpectDecodeError(frame.substr(0, len),
                      "malformed frame: truncated payload");
  }
}

TEST(ServeProtocolTest, BadMagic) {
  std::string frame = SampleFrame();
  PutU32(&frame, kMagicOffset, kFrameMagic ^ 1);
  ExpectDecodeError(frame, "malformed frame: bad magic");
}

TEST(ServeProtocolTest, VersionSkew) {
  for (uint32_t version : {0u, kProtocolVersion + 1, 0xFFFFFFFFu}) {
    SCOPED_TRACE(version);
    std::string frame = SampleFrame();
    PutU32(&frame, kVersionOffset, version);
    ExpectDecodeError(frame, "malformed frame: unsupported version");
  }
}

TEST(ServeProtocolTest, LengthFieldOverflow) {
  // A hostile length field beyond the cap must be rejected from the header
  // alone — before any allocation and regardless of how many payload bytes
  // actually follow.
  for (uint32_t size : {static_cast<uint32_t>(kMaxFramePayload) + 1,
                        0xFFFFFFFFu}) {
    SCOPED_TRACE(size);
    std::string frame = SampleFrame();
    PutU32(&frame, kSizeOffset, size);
    ExpectDecodeError(frame, "malformed frame: payload length exceeds limit");
  }
}

TEST(ServeProtocolTest, CrcTamperedPayload) {
  // Flipping any payload byte must trip the checksum.
  const std::string frame = SampleFrame();
  for (size_t i = kFrameHeaderSize; i < frame.size(); ++i) {
    SCOPED_TRACE(i);
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    ExpectDecodeError(bad, "malformed frame: payload checksum mismatch");
  }
}

TEST(ServeProtocolTest, CrcTamperedField) {
  std::string frame = SampleFrame();
  PutU32(&frame, kCrcOffset, 0xDEADBEEF);
  ExpectDecodeError(frame, "malformed frame: payload checksum mismatch");
}

TEST(ServeProtocolTest, TrailingBytesAfterFrame) {
  ExpectDecodeError(SampleFrame() + "x",
                    "malformed frame: trailing bytes after frame");
}

// ---------------------------------------------------------------------------
// Request payloads.

TEST(ServeProtocolTest, RequestRoundTripsEveryType) {
  QueryRequest point = SampleRequest();
  QueryRequest ancestor;
  ancestor.type = RequestType::kCellOrAncestor;
  ancestor.request_id = 7;
  ancestor.values = {"*", "nike"};
  QueryRequest drill;
  drill.type = RequestType::kDrillDown;
  drill.request_id = 8;
  drill.pl_index = 2;
  drill.dim = 1;
  drill.values = {"outerwear", "*"};
  QueryRequest similarity;
  similarity.type = RequestType::kSimilarity;
  similarity.request_id = 9;
  similarity.values = {"outerwear", "*"};
  similarity.values_b = {"shirts", "*"};
  QueryRequest stats;
  stats.type = RequestType::kStats;
  stats.request_id = 10;

  for (const QueryRequest& request :
       {point, ancestor, drill, similarity, stats}) {
    SCOPED_TRACE(static_cast<int>(request.type));
    const std::string payload = EncodeRequest(request);
    Result<QueryRequest> decoded = DecodeRequest(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, request);
    // Canonical: re-encoding reproduces the payload byte-for-byte.
    EXPECT_EQ(EncodeRequest(*decoded), payload);
  }
}

TEST(ServeProtocolTest, RequestUnknownType) {
  std::string payload = EncodeRequest(SampleRequest());
  payload[0] = 99;
  Result<QueryRequest> decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "malformed request: unknown type");
}

TEST(ServeProtocolTest, RequestTruncatedAtEveryLength) {
  const std::string payload = EncodeRequest(SampleRequest());
  for (size_t len = 0; len < payload.size(); ++len) {
    SCOPED_TRACE(len);
    Result<QueryRequest> decoded = DecodeRequest(payload.substr(0, len));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), Status::Code::kInvalidArgument);
    EXPECT_TRUE(decoded.status().message() ==
                    "malformed request: truncated header" ||
                decoded.status().message() ==
                    "malformed request: truncated body")
        << decoded.status().message();
  }
}

TEST(ServeProtocolTest, RequestTooManyValues) {
  QueryRequest request = SampleRequest();
  request.values.assign(kMaxQueryValues + 1, "v");
  Result<QueryRequest> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(),
            "malformed request: too many dimension values");
}

TEST(ServeProtocolTest, RequestTrailingBytes) {
  Result<QueryRequest> decoded =
      DecodeRequest(EncodeRequest(SampleRequest()) + "x");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "malformed request: trailing bytes");
}

// ---------------------------------------------------------------------------
// Response payloads.

TEST(ServeProtocolTest, ResponseRoundTrips) {
  QueryResponse ok;
  ok.request_id = 42;
  ok.epoch = 17;
  ok.body = "cell (outerwear, *)\n";
  QueryResponse error;
  error.request_id = 43;
  error.epoch = 17;
  error.code = Status::Code::kNotFound;
  error.message = "cell not materialized";
  for (const QueryResponse& response : {ok, error}) {
    const std::string payload = EncodeResponse(response);
    Result<QueryResponse> decoded = DecodeResponse(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, response);
    EXPECT_EQ(EncodeResponse(*decoded), payload);
  }
}

TEST(ServeProtocolTest, ResponseTruncated) {
  QueryResponse response;
  response.request_id = 1;
  const std::string payload = EncodeResponse(response);
  for (size_t len = 0; len < payload.size(); ++len) {
    SCOPED_TRACE(len);
    Result<QueryResponse> decoded = DecodeResponse(payload.substr(0, len));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().message(), "malformed response: truncated");
  }
}

TEST(ServeProtocolTest, ResponseUnknownStatusCode) {
  QueryResponse response;
  std::string payload = EncodeResponse(response);
  payload[16] = 99;  // code byte follows the two u64s
  Result<QueryResponse> decoded = DecodeResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(),
            "malformed response: unknown status code");
}

TEST(ServeProtocolTest, ResponseTrailingBytes) {
  QueryResponse response;
  Result<QueryResponse> decoded =
      DecodeResponse(EncodeResponse(response) + "x");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().message(), "malformed response: trailing bytes");
}

// ---------------------------------------------------------------------------
// Streaming assembly.

TEST(ServeProtocolTest, AssemblerReassemblesByteByByte) {
  // Three frames delivered one byte at a time must come out intact, in
  // order, regardless of where frame boundaries fall.
  std::vector<std::string> payloads;
  std::string wire;
  for (uint64_t id = 1; id <= 3; ++id) {
    QueryRequest request = SampleRequest();
    request.request_id = id;
    payloads.push_back(EncodeRequest(request));
    wire += EncodeFrame(payloads.back());
  }
  FrameAssembler assembler;
  std::vector<std::string> got;
  for (char byte : wire) {
    assembler.Append(std::string_view(&byte, 1));
    for (;;) {
      Result<std::optional<std::string>> next = assembler.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      got.push_back(**next);
    }
  }
  EXPECT_EQ(got, payloads);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(ServeProtocolTest, AssemblerPoisonsOnBadMagicAndStaysPoisoned) {
  std::string frame = SampleFrame();
  PutU32(&frame, kMagicOffset, 0x12345678);
  FrameAssembler assembler;
  assembler.Append(frame);
  for (int i = 0; i < 3; ++i) {
    Result<std::optional<std::string>> next = assembler.Next();
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().message(), "malformed frame: bad magic");
  }
  // Even appending a valid frame cannot revive the stream.
  assembler.Append(SampleFrame());
  EXPECT_FALSE(assembler.Next().ok());
}

TEST(ServeProtocolTest, AssemblerPoisonsOnCrcMismatch) {
  std::string frame = SampleFrame();
  frame[frame.size() - 1] = static_cast<char>(frame[frame.size() - 1] ^ 0x40);
  FrameAssembler assembler;
  assembler.Append(frame);
  Result<std::optional<std::string>> next = assembler.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().message(),
            "malformed frame: payload checksum mismatch");
}

TEST(ServeProtocolTest, AssemblerHonorsCustomPayloadCap) {
  FrameAssembler assembler(/*max_payload=*/8);
  assembler.Append(EncodeFrame("123456789"));  // 9 > 8
  Result<std::optional<std::string>> next = assembler.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().message(),
            "malformed frame: payload length exceeds limit");
}

}  // namespace
}  // namespace flowcube
