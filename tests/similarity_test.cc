#include <gtest/gtest.h>

#include "flowgraph/builder.h"
#include "flowgraph/similarity.h"
#include "gen/paper_example.h"

namespace flowcube {
namespace {

std::vector<Path> MakePaths(
    const std::vector<std::pair<std::vector<NodeId>, Duration>>& specs,
    const std::vector<int>& copies) {
  std::vector<Path> out;
  for (size_t i = 0; i < specs.size(); ++i) {
    Path p;
    for (NodeId loc : specs[i].first) {
      p.stages.push_back(Stage{loc, specs[i].second});
    }
    for (int c = 0; c < copies[i]; ++c) out.push_back(p);
  }
  return out;
}

TEST(Similarity, IdenticalGraphsHaveZeroDistance) {
  const auto paths = MakePaths({{{1, 2}, 1}, {{1, 3}, 2}}, {3, 5});
  const FlowGraph a = BuildFlowGraph(paths);
  const FlowGraph b = BuildFlowGraph(paths);
  EXPECT_DOUBLE_EQ(FlowGraphDistance(a, b), 0.0);
  SimilarityOptions kl;
  kl.kind = DivergenceKind::kKullbackLeibler;
  EXPECT_NEAR(FlowGraphDistance(a, b, kl), 0.0, 1e-9);
}

TEST(Similarity, ScaledCopiesAreIdentical) {
  // Distributions are count ratios: doubling every path leaves them equal.
  const auto small = MakePaths({{{1, 2}, 1}, {{1, 3}, 2}}, {3, 5});
  const auto big = MakePaths({{{1, 2}, 1}, {{1, 3}, 2}}, {6, 10});
  EXPECT_NEAR(
      FlowGraphDistance(BuildFlowGraph(small), BuildFlowGraph(big)), 0.0,
      1e-12);
}

TEST(Similarity, DisjointGraphsAreMaximallyDistant) {
  const auto a = MakePaths({{{1, 2}, 1}}, {4});
  const auto b = MakePaths({{{7, 8}, 1}}, {4});
  EXPECT_NEAR(FlowGraphDistance(BuildFlowGraph(a), BuildFlowGraph(b)), 1.0,
              1e-9);
}

TEST(Similarity, EmptyGraphConventions) {
  FlowGraph empty;
  const FlowGraph some = BuildFlowGraph(MakePaths({{{1}, 1}}, {2}));
  EXPECT_DOUBLE_EQ(FlowGraphDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(FlowGraphDistance(empty, some), 1.0);
}

TEST(Similarity, DistanceIsSymmetric) {
  const auto pa = MakePaths({{{1, 2}, 1}, {{1, 3}, 1}}, {7, 3});
  const auto pb = MakePaths({{{1, 2}, 1}, {{1, 4}, 2}}, {5, 5});
  const FlowGraph a = BuildFlowGraph(pa);
  const FlowGraph b = BuildFlowGraph(pb);
  EXPECT_NEAR(FlowGraphDistance(a, b), FlowGraphDistance(b, a), 1e-12);
  SimilarityOptions kl;
  kl.kind = DivergenceKind::kKullbackLeibler;
  EXPECT_NEAR(FlowGraphDistance(a, b, kl), FlowGraphDistance(b, a, kl),
              1e-9);
}

TEST(Similarity, GrowsWithTransitionShift) {
  // Fix the structure, shift the transition mix progressively.
  auto make = [](int to2, int to3) {
    return BuildFlowGraph(
        MakePaths({{{1, 2}, 1}, {{1, 3}, 1}}, {to2, to3}));
  };
  const FlowGraph base = make(5, 5);
  const double d1 = FlowGraphDistance(base, make(6, 4));
  const double d2 = FlowGraphDistance(base, make(8, 2));
  const double d3 = FlowGraphDistance(base, make(10, 0));
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
  EXPECT_GT(d1, 0.0);
}

TEST(Similarity, GrowsWithDurationShift) {
  auto make = [](int dur1, int dur9) {
    std::vector<Path> paths;
    for (int i = 0; i < dur1; ++i) {
      Path p;
      p.stages = {Stage{1, 1}};
      paths.push_back(p);
    }
    for (int i = 0; i < dur9; ++i) {
      Path p;
      p.stages = {Stage{1, 9}};
      paths.push_back(p);
    }
    return BuildFlowGraph(paths);
  };
  const FlowGraph base = make(5, 5);
  EXPECT_LT(FlowGraphDistance(base, make(6, 4)),
            FlowGraphDistance(base, make(9, 1)));
}

TEST(Similarity, DeepDifferencesWeighLessThanShallowOnes) {
  // The divergence is weighted by reach probability: disagreeing on a node
  // most paths visit matters more than disagreeing on a rare branch.
  auto make = [](int rare_branch_loc) {
    std::vector<Path> paths = MakePaths({{{1, 2}, 1}}, {9});
    Path rare;
    rare.stages = {Stage{1, 1},
                   Stage{static_cast<NodeId>(rare_branch_loc), 1}};
    paths.push_back(rare);
    return BuildFlowGraph(paths);
  };
  const FlowGraph a = make(5);
  const FlowGraph b = make(6);  // differs only on the 10% branch
  auto shallow = [](int first_loc) {
    return BuildFlowGraph(MakePaths({{{static_cast<NodeId>(first_loc), 2},
                                      1}},
                                    {10}));
  };
  const double rare_diff = FlowGraphDistance(a, b);
  const double shallow_diff = FlowGraphDistance(shallow(1), shallow(9));
  EXPECT_LT(rare_diff, shallow_diff);
  EXPECT_GT(rare_diff, 0.0);
}

TEST(Similarity, KlIsMoreSensitiveThanJsToDisjointSupport) {
  const auto pa = MakePaths({{{1, 2}, 1}}, {10});
  const auto pb = MakePaths({{{1, 2}, 5}}, {10});  // same shape, other durs
  const FlowGraph a = BuildFlowGraph(pa);
  const FlowGraph b = BuildFlowGraph(pb);
  SimilarityOptions kl;
  kl.kind = DivergenceKind::kKullbackLeibler;
  EXPECT_GT(FlowGraphDistance(a, b, kl), FlowGraphDistance(a, b));
}

TEST(Similarity, PaperCellsProductComparison) {
  // (shoes, nike) vs (outerwear, nike) from Table 2 share the factory
  // start but diverge after it; the distance must be strictly between 0
  // and 1.
  PathDatabase db = MakePaperDatabase();
  std::vector<Path> shoes = {db.record(0).path, db.record(1).path,
                             db.record(2).path};
  std::vector<Path> outerwear = {db.record(3).path, db.record(4).path,
                                 db.record(5).path};
  const double d = FlowGraphDistance(BuildFlowGraph(shoes),
                                     BuildFlowGraph(outerwear));
  EXPECT_GT(d, 0.1);
  EXPECT_LT(d, 1.0);
}

}  // namespace
}  // namespace flowcube
