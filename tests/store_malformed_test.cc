// Malformed FCSP v2 inputs, each pinned to its exact rejection status, so
// the error surface of the out-of-core loader stays stable: truncation at
// every length (section boundaries included), header/section CRC tampers,
// non-canonical / misaligned / out-of-bounds section offsets, meta layout
// tampers, resume tampers, and fingerprint mismatches. Both untrusted-bytes
// readers are driven over the same corpus: the strict pipeline restore
// (DecodeCheckpoint) and the serving-side loader (MappedCube::FromBuffer).
// None of these may crash — the suite runs under asan/ubsan and the same
// surface is fuzzed by fuzz/fcsp_v2_harness.cc.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/path_generator.h"
#include "io/binary_io.h"
#include "store/format.h"
#include "store/mapped_cube.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

// Header field offsets (store/format.h).
constexpr size_t kHeaderCrcOff = 8;
constexpr size_t kFingerprintOff = 12;
constexpr size_t kFileSizeOff = 16;
constexpr size_t kMetaOffsetOff = 24;
constexpr size_t kMetaSizeOff = 32;
constexpr size_t kMetaCrcOff = 40;
constexpr size_t kArenaCrcOff = 44;
constexpr size_t kArenaOffsetOff = 48;
constexpr size_t kArenaSizeOff = 56;
constexpr size_t kResumeOffsetOff = 64;
constexpr size_t kResumeSizeOff = 72;
constexpr size_t kResumeCrcOff = 80;
constexpr size_t kReservedOff = 84;

void PutU32(std::string* bytes, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(std::string* bytes, size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

uint64_t GetU64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  return v;
}

// Recomputes the header CRC after header fields were tampered, so the
// corruption reaches the structural validators instead of the checksum.
void FixHeaderCrc(std::string* bytes) {
  PutU32(bytes, kHeaderCrcOff,
         Crc32(std::string_view(*bytes).substr(12, kFcspV2HeaderSize - 12)));
}

// Recomputes all three section CRCs (from the current header offsets) and
// then the header CRC — the "CRC-valid but semantically bad" setup.
void FixAllCrcs(std::string* bytes) {
  const std::string_view v(*bytes);
  const uint64_t meta_off = GetU64(*bytes, kMetaOffsetOff);
  const uint64_t meta_size = GetU64(*bytes, kMetaSizeOff);
  const uint64_t arena_off = GetU64(*bytes, kArenaOffsetOff);
  const uint64_t arena_size = GetU64(*bytes, kArenaSizeOff);
  const uint64_t resume_off = GetU64(*bytes, kResumeOffsetOff);
  const uint64_t resume_size = GetU64(*bytes, kResumeSizeOff);
  PutU32(bytes, kMetaCrcOff, Crc32(v.substr(meta_off, meta_size)));
  PutU32(bytes, kArenaCrcOff, Crc32(v.substr(arena_off, arena_size)));
  if (resume_size != 0) {
    PutU32(bytes, kResumeCrcOff, Crc32(v.substr(resume_off, resume_size)));
  }
  FixHeaderCrc(bytes);
}

class StoreMalformedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.dim_distinct_per_level = {2, 2, 2};
    cfg.num_location_groups = 3;
    cfg.locations_per_group = 3;
    cfg.num_sequences = 6;
    cfg.min_sequence_length = 2;
    cfg.max_sequence_length = 5;
    cfg.seed = 909;
    PathGenerator gen(cfg);
    db_ = std::make_unique<PathDatabase>(gen.Generate(60));
    Result<FlowCubePlan> plan = FlowCubePlan::Default(db_->schema());
    ASSERT_TRUE(plan.ok());
    plan_ = plan.value();
    options_.build.min_support = 2;

    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        db_->schema_ptr(), plan_, options_);
    ASSERT_TRUE(created.ok());
    IncrementalMaintainer m = std::move(created.value());
    ASSERT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                   .subspan(0, 40))
                    .ok());
    good_ = EncodeCheckpoint(m, nullptr, kCheckpointFormatV2);
    ASSERT_GE(good_.size(), kFcspV2HeaderSize);
  }

  Status RestoreStatus(const std::string& bytes) const {
    return DecodeCheckpoint(bytes, db_->schema_ptr(), plan_, options_)
        .status();
  }

  Status MapStatus(const std::string& bytes,
                   const MappedCubeOptions& mopts = {}) const {
    return MappedCube::FromBuffer(std::make_shared<const std::string>(bytes),
                                  db_->schema_ptr(), plan_, options_, mopts)
        .status();
  }

  // Asserts both readers reject `bytes` with exactly `message`.
  void ExpectBothReject(const std::string& bytes, const std::string& message) {
    const Status restore = RestoreStatus(bytes);
    EXPECT_EQ(restore.code(), Status::Code::kInvalidArgument);
    EXPECT_EQ(restore.message(), message);
    const Status map = MapStatus(bytes);
    EXPECT_EQ(map.code(), Status::Code::kInvalidArgument);
    EXPECT_EQ(map.message(), message);
  }

  std::unique_ptr<PathDatabase> db_;
  FlowCubePlan plan_;
  IncrementalMaintainerOptions options_;
  std::string good_;
};

TEST_F(StoreMalformedTest, GoodFileLoadsThroughBothReaders) {
  EXPECT_TRUE(RestoreStatus(good_).ok());
  EXPECT_TRUE(MapStatus(good_).ok());
  MappedCubeOptions no_crc;
  no_crc.verify_crc = false;
  EXPECT_TRUE(MapStatus(good_, no_crc).ok());
}

TEST_F(StoreMalformedTest, RejectsEveryTruncation) {
  // Every proper prefix must be rejected — the header's file-size field
  // pins the exact length, so section-boundary truncations (end of meta,
  // arena start, arena end, mid-resume) all fail closed.
  for (size_t len = 0; len < good_.size(); ++len) {
    const std::string t = good_.substr(0, len);
    EXPECT_FALSE(RestoreStatus(t).ok()) << "restore accepted " << len;
    EXPECT_FALSE(MapStatus(t).ok()) << "map accepted " << len;
  }
  // Exact boundary truncations get the pinned statuses.
  EXPECT_EQ(RestoreStatus(good_.substr(0, kFcspV2HeaderSize - 1)).message(),
            "corrupt v2 checkpoint: truncated header");
  const uint64_t arena_end = GetU64(good_, kArenaOffsetOff) +
                             GetU64(good_, kArenaSizeOff);
  EXPECT_EQ(RestoreStatus(good_.substr(0, arena_end)).message(),
            "corrupt v2 checkpoint: file size disagrees with header");
}

TEST_F(StoreMalformedTest, RejectsBadMagicVersionAndTrailingGarbage) {
  std::string bad = good_;
  bad[0] = 'X';
  ExpectBothReject(bad, "not a flowcube checkpoint (bad magic)");

  bad = good_;
  PutU32(&bad, 4, 3);
  EXPECT_EQ(RestoreStatus(bad).message(), "unsupported checkpoint version");
  EXPECT_EQ(MapStatus(bad).message(), "unsupported checkpoint version");

  ExpectBothReject(good_ + "tail",
                   "corrupt v2 checkpoint: file size disagrees with header");
}

TEST_F(StoreMalformedTest, RejectsHeaderCrcTamper) {
  // Any header-field flip without repairing the CRC.
  std::string bad = good_;
  PutU64(&bad, kMetaSizeOff, GetU64(bad, kMetaSizeOff) + 1);
  ExpectBothReject(bad, "corrupt v2 checkpoint: header checksum mismatch");
}

TEST_F(StoreMalformedTest, RejectsReservedFieldTamper) {
  std::string bad = good_;
  PutU32(&bad, kReservedOff, 1);
  FixHeaderCrc(&bad);
  ExpectBothReject(bad,
                   "corrupt v2 checkpoint: reserved header field is not zero");
}

TEST_F(StoreMalformedTest, RejectsNonCanonicalSectionOffsets) {
  // Meta not at 96.
  std::string bad = good_;
  PutU64(&bad, kMetaOffsetOff, kFcspV2HeaderSize + 8);
  FixHeaderCrc(&bad);
  ExpectBothReject(
      bad, "corrupt v2 checkpoint: meta section is not at the canonical offset");

  // Meta size beyond the file.
  bad = good_;
  PutU64(&bad, kMetaSizeOff, bad.size());
  FixHeaderCrc(&bad);
  ExpectBothReject(bad, "corrupt v2 checkpoint: meta section exceeds the file");

  // Arena off the canonical 64-byte boundary.
  bad = good_;
  PutU64(&bad, kArenaOffsetOff, GetU64(bad, kArenaOffsetOff) + 8);
  FixHeaderCrc(&bad);
  ExpectBothReject(
      bad,
      "corrupt v2 checkpoint: arena is not at the canonical aligned offset");

  // Arena size beyond the file.
  bad = good_;
  PutU64(&bad, kArenaSizeOff, bad.size());
  FixHeaderCrc(&bad);
  ExpectBothReject(bad,
                   "corrupt v2 checkpoint: arena section exceeds the file");

  // Resume not immediately after the arena.
  bad = good_;
  PutU64(&bad, kResumeOffsetOff, GetU64(bad, kResumeOffsetOff) + 1);
  FixHeaderCrc(&bad);
  ExpectBothReject(
      bad,
      "corrupt v2 checkpoint: resume section is not at the canonical offset");

  // Declared sizes that do not add up to the file size.
  bad = good_;
  PutU64(&bad, kResumeSizeOff, GetU64(bad, kResumeSizeOff) + 1);
  FixHeaderCrc(&bad);
  ExpectBothReject(
      bad,
      "corrupt v2 checkpoint: file size disagrees with the section sizes");

  // Empty resume section but a dangling offset.
  bad = good_;
  PutU64(&bad, kResumeSizeOff, 0);
  FixHeaderCrc(&bad);
  ExpectBothReject(bad,
                   "corrupt v2 checkpoint: empty resume section with nonzero "
                   "offset or checksum");
}

TEST_F(StoreMalformedTest, RejectsNonzeroPadding) {
  const uint64_t meta_end = kFcspV2HeaderSize + GetU64(good_, kMetaSizeOff);
  const uint64_t arena_off = GetU64(good_, kArenaOffsetOff);
  ASSERT_LT(meta_end, arena_off) << "fixture needs a nonempty pad gap";
  std::string bad = good_;
  bad[meta_end] = 1;
  FixHeaderCrc(&bad);
  ExpectBothReject(bad,
                   "corrupt v2 checkpoint: nonzero padding between sections");
}

TEST_F(StoreMalformedTest, RejectsSectionCrcTampers) {
  // Flip one content byte per section; only that section's CRC must trip.
  std::string bad = good_;
  bad[kFcspV2HeaderSize] = static_cast<char>(bad[kFcspV2HeaderSize] ^ 0x01);
  ExpectBothReject(bad, "corrupt v2 checkpoint: meta checksum mismatch");

  bad = good_;
  const uint64_t arena_off = GetU64(good_, kArenaOffsetOff);
  bad[arena_off] = static_cast<char>(bad[arena_off] ^ 0x01);
  ExpectBothReject(bad, "corrupt v2 checkpoint: arena checksum mismatch");

  bad = good_;
  const uint64_t resume_off = GetU64(good_, kResumeOffsetOff);
  bad[resume_off + 8] = static_cast<char>(bad[resume_off + 8] ^ 0x01);
  EXPECT_EQ(RestoreStatus(bad).message(),
            "corrupt v2 checkpoint: resume checksum mismatch");
  EXPECT_EQ(MapStatus(bad).message(),
            "corrupt v2 checkpoint: resume checksum mismatch");
}

TEST_F(StoreMalformedTest, RejectsFingerprintTamperEvenWithValidCrc) {
  std::string bad = good_;
  bad[kFingerprintOff] = static_cast<char>(bad[kFingerprintOff] ^ 0x01);
  FixHeaderCrc(&bad);
  ExpectBothReject(
      bad, "checkpoint was written with a different schema, plan, or options");
}

TEST_F(StoreMalformedTest, RejectsMetaLayoutTampersEvenWithValidCrc) {
  // Meta stream layout: u32 num_cuboids, then per cuboid u32 il, u32 pl,
  // six u64 counts, fifteen u64 column offsets (store/cube_codec.cc).
  // Tampering any of them breaks the canonical packing.
  const size_t meta = kFcspV2HeaderSize;

  // Cuboid-grid size.
  std::string bad = good_;
  PutU32(&bad, meta, 1);
  FixAllCrcs(&bad);
  ExpectBothReject(bad, "corrupt v2 checkpoint: cuboid count mismatch");

  // First cuboid's plan indices out of order.
  bad = good_;
  PutU32(&bad, meta + 4, 1);
  FixAllCrcs(&bad);
  ExpectBothReject(bad, "corrupt v2 checkpoint: cuboid out of order");

  // First cuboid's total_dims count: the recomputed canonical packing no
  // longer matches the stored offsets. (The cell count is not used here —
  // bumping it can trip the slot-capacity check instead, depending on the
  // load factor; total_dims only moves column offsets.)
  bad = good_;
  PutU64(&bad, meta + 20, GetU64(bad, meta + 20) + 1);
  FixAllCrcs(&bad);
  const Status s = RestoreStatus(bad);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(),
            "corrupt v2 checkpoint: "
            "column layout disagrees with the canonical packing");

  // A stored column offset (first of the fifteen).
  bad = good_;
  PutU64(&bad, meta + 12 + 48, GetU64(bad, meta + 12 + 48) + 4);
  FixAllCrcs(&bad);
  ExpectBothReject(bad,
                   "corrupt v2 checkpoint: "
                   "column layout disagrees with the canonical packing");

  // Structural validation runs even when the CRC pass is skipped.
  MappedCubeOptions no_crc;
  no_crc.verify_crc = false;
  EXPECT_EQ(MapStatus(bad, no_crc).message(),
            "corrupt v2 checkpoint: "
            "column layout disagrees with the canonical packing");
}

TEST_F(StoreMalformedTest, RejectsResumeTampersEvenWithValidCrc) {
  const uint64_t resume_off = GetU64(good_, kResumeOffsetOff);

  // Resume record count disagrees with the header's live_records.
  std::string bad = good_;
  PutU64(&bad, resume_off, GetU64(bad, resume_off) + 1);
  FixAllCrcs(&bad);
  Status s = RestoreStatus(bad);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(),
            "corrupt v2 checkpoint: "
            "live record count disagrees with the header");

  // Trailing bytes inside the resume section.
  bad = good_;
  bad.push_back('\0');
  PutU64(&bad, kFileSizeOff, bad.size());
  PutU64(&bad, kResumeSizeOff, GetU64(bad, kResumeSizeOff) + 1);
  FixAllCrcs(&bad);
  s = RestoreStatus(bad);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(),
            "corrupt v2 checkpoint: trailing bytes after resume section");
  // The serving-side loader ignores the resume payload beyond its CRC.
  EXPECT_TRUE(MapStatus(bad).ok());
}

TEST_F(StoreMalformedTest, CubeOnlyFileMapsButDoesNotRestore) {
  // Strip the resume section: a cube-only v2 file is valid for the serving
  // loader but cannot resume a pipeline.
  const uint64_t arena_end = GetU64(good_, kArenaOffsetOff) +
                             GetU64(good_, kArenaSizeOff);
  std::string cube_only = good_.substr(0, arena_end);
  PutU64(&cube_only, kFileSizeOff, cube_only.size());
  PutU64(&cube_only, kResumeOffsetOff, 0);
  PutU64(&cube_only, kResumeSizeOff, 0);
  PutU32(&cube_only, kResumeCrcOff, 0);
  PutU64(&cube_only, 88, 0);  // live_records
  FixHeaderCrc(&cube_only);

  EXPECT_TRUE(MapStatus(cube_only).ok());
  const Status s = RestoreStatus(cube_only);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(),
            "v2 checkpoint has no resume section (cube-only file)");
}

}  // namespace
}  // namespace flowcube
