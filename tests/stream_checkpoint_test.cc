// Checkpoint guarantees, mirroring io_roundtrip_test.cc for the binary
// format: (1) round trips are byte-stable — encode(restore(encode(x))) is
// the identity on the serialized form, and the restored cube dumps
// byte-identically; (2) a restored pipeline continues exactly like the
// original under further batches; (3) malformed inputs — truncations at
// every length, flipped bits, wrong magic/version, config mismatches,
// trailing garbage — are rejected with a clean Status, never a crash (the
// suite runs under asan/ubsan in CI).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "flowcube/dump.h"
#include "gen/path_generator.h"
#include "io/binary_io.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.dim_distinct_per_level = {2, 2, 2};
    cfg.num_location_groups = 3;
    cfg.locations_per_group = 3;
    cfg.num_sequences = 6;
    cfg.min_sequence_length = 2;
    cfg.max_sequence_length = 5;
    cfg.seed = 909;
    PathGenerator gen(cfg);
    db_ = std::make_unique<PathDatabase>(gen.Generate(60));
    Result<FlowCubePlan> plan = FlowCubePlan::Default(db_->schema());
    ASSERT_TRUE(plan.ok());
    plan_ = plan.value();
    options_.build.min_support = 2;
  }

  IncrementalMaintainer MakeMaintainer(size_t num_records) {
    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        db_->schema_ptr(), plan_, options_);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    IncrementalMaintainer m = std::move(created.value());
    EXPECT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                   .subspan(0, num_records))
                    .ok());
    return m;
  }

  IngestorState MakeIngestorState() const {
    IngestorState state;
    state.registrations[7] = db_->record(0).dims;
    state.registrations[9] = db_->record(1).dims;
    state.open_readings[7] = {RawReading{7, db_->record(0).path.stages[0].location, 100},
                              RawReading{7, db_->record(0).path.stages[0].location, 700}};
    state.watermark = 700;
    state.batches_processed = 3;
    return state;
  }

  Result<RestoredPipeline> Restore(const std::string& bytes) {
    return DecodeCheckpoint(bytes, db_->schema_ptr(), plan_, options_);
  }

  std::unique_ptr<PathDatabase> db_;
  FlowCubePlan plan_;
  IncrementalMaintainerOptions options_;
};

TEST_F(CheckpointTest, RoundTripIsByteStableAndDumpIdentical) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const IngestorState ingestor = MakeIngestorState();
  const std::string first = EncodeCheckpoint(m, &ingestor);

  Result<RestoredPipeline> restored = Restore(first);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(DumpFlowCube(restored->maintainer.cube()), DumpFlowCube(m.cube()));
  EXPECT_EQ(restored->maintainer.live_record_count(), 40u);

  ASSERT_TRUE(restored->ingestor_state.has_value());
  EXPECT_EQ(restored->ingestor_state->registrations, ingestor.registrations);
  EXPECT_EQ(restored->ingestor_state->open_readings, ingestor.open_readings);
  EXPECT_EQ(restored->ingestor_state->watermark, ingestor.watermark);
  EXPECT_EQ(restored->ingestor_state->batches_processed,
            ingestor.batches_processed);

  const std::string second =
      EncodeCheckpoint(restored->maintainer, &*restored->ingestor_state);
  EXPECT_EQ(first, second) << "re-encoding a restored pipeline must "
                              "reproduce the checkpoint bytes";
}

TEST_F(CheckpointTest, MaintainerOnlyCheckpointHasNoIngestorState) {
  IncrementalMaintainer m = MakeMaintainer(25);
  Result<RestoredPipeline> restored = Restore(EncodeCheckpoint(m, nullptr));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(restored->ingestor_state.has_value());
}

TEST_F(CheckpointTest, RestoredPipelineContinuesIdentically) {
  IncrementalMaintainer original = MakeMaintainer(30);
  Result<RestoredPipeline> restored =
      Restore(EncodeCheckpoint(original, nullptr));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const std::span<const PathRecord> rest =
      std::span<const PathRecord>(db_->records()).subspan(30);
  ASSERT_TRUE(original.ApplyRecords(rest).ok());
  ASSERT_TRUE(restored->maintainer.ApplyRecords(rest).ok());
  EXPECT_EQ(DumpFlowCube(restored->maintainer.cube()),
            DumpFlowCube(original.cube()))
      << "restore must resume without replay drift";
}

TEST_F(CheckpointTest, EmptyPipelineRoundTrips) {
  IncrementalMaintainer m = MakeMaintainer(0);
  Result<RestoredPipeline> restored = Restore(EncodeCheckpoint(m, nullptr));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->maintainer.live_record_count(), 0u);
  EXPECT_EQ(DumpFlowCube(restored->maintainer.cube()), DumpFlowCube(m.cube()));
}

TEST_F(CheckpointTest, SaveAndLoadFileRoundTrip) {
  IncrementalMaintainer m = MakeMaintainer(20);
  const std::string path =
      ::testing::TempDir() + "/flowcube_checkpoint_test.fcsp";
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path).ok());
  Result<RestoredPipeline> restored =
      LoadCheckpoint(path, db_->schema_ptr(), plan_, options_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(DumpFlowCube(restored->maintainer.cube()), DumpFlowCube(m.cube()));
  std::remove(path.c_str());
  EXPECT_EQ(LoadCheckpoint(path, db_->schema_ptr(), plan_, options_)
                .status()
                .code(),
            Status::Code::kNotFound);
}

// --- Malformed checkpoints --------------------------------------------------

TEST_F(CheckpointTest, RejectsWrongMagicAndVersion) {
  IncrementalMaintainer m = MakeMaintainer(10);
  const std::string good = EncodeCheckpoint(m, nullptr);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(Restore(bad_magic).ok());

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(0x7f);
  EXPECT_FALSE(Restore(bad_version).ok());

  EXPECT_FALSE(Restore("").ok());
  EXPECT_FALSE(Restore("FCSP").ok());
  EXPECT_FALSE(Restore("not a checkpoint at all").ok());
}

TEST_F(CheckpointTest, RejectsEveryTruncation) {
  IncrementalMaintainer m = MakeMaintainer(8);
  const std::string good = EncodeCheckpoint(m, nullptr);
  ASSERT_TRUE(Restore(good).ok());
  for (size_t len = 0; len < good.size(); ++len) {
    const Result<RestoredPipeline> r = Restore(good.substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST_F(CheckpointTest, RejectsBitFlips) {
  IncrementalMaintainer m = MakeMaintainer(8);
  const std::string good = EncodeCheckpoint(m, nullptr);
  // Flip one bit of every byte; the CRC (or the header checks) must catch
  // each corruption. None may crash or be silently accepted as a DIFFERENT
  // pipeline: the rare survivable flips could only hit redundant encoding,
  // so any accepted flip must restore to the identical cube.
  const std::string original_dump = DumpFlowCube(m.cube());
  size_t accepted = 0;
  for (size_t i = 0; i < good.size(); ++i) {
    std::string flipped = good;
    flipped[i] = static_cast<char>(flipped[i] ^ (1 << (i % 8)));
    const Result<RestoredPipeline> r = Restore(flipped);
    if (r.ok()) {
      accepted++;
      EXPECT_EQ(DumpFlowCube(r.value().maintainer.cube()), original_dump);
    }
  }
  EXPECT_EQ(accepted, 0u) << "payload is CRC-protected; header flips are "
                             "structurally rejected";
}

TEST_F(CheckpointTest, RejectsTrailingGarbage) {
  IncrementalMaintainer m = MakeMaintainer(8);
  EXPECT_FALSE(Restore(EncodeCheckpoint(m, nullptr) + "tail").ok());
}

// Inputs promoted from fuzzing the decoder (fuzz/fuzz_checkpoint.cc):
// length-field overflows and CRC-valid-but-semantically-bad payloads, each
// pinned to the exact rejection status so error surfaces stay stable.

// Helpers for surgical payload mutation. Header layout (checkpoint.h):
//   [0,4)  magic   [4,8) version   [8,12) crc32(payload)
//   [12,20) u64 payload size       [20,...) payload
constexpr size_t kPayloadOffset = 20;

void PutU32(std::string* bytes, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(std::string* bytes, size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    (*bytes)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

uint64_t GetU64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  return v;
}

// Recomputes the header's crc and payload-size fields after the payload was
// mutated, so the corruption reaches the structural validators instead of
// being caught by the checksum.
void RepairHeader(std::string* bytes) {
  PutU64(bytes, 12, bytes->size() - kPayloadOffset);
  PutU32(bytes, 8, Crc32(std::string_view(*bytes).substr(kPayloadOffset)));
}

// Byte offset (within the whole checkpoint) of the first cell's u32 support
// field, found by walking the payload the way the decoder does: fingerprint,
// live records, first cuboid header, first cell's item list.
size_t FirstCellSupportOffset(const std::string& bytes) {
  size_t pos = kPayloadOffset + 4;  // skip config fingerprint
  const uint64_t num_records = GetU64(bytes, pos);
  pos += 8;
  for (uint64_t r = 0; r < num_records; ++r) {
    const uint64_t num_dims = GetU64(bytes, pos);
    pos += 8 + num_dims * 4;
    const uint64_t num_stages = GetU64(bytes, pos);
    pos += 8 + num_stages * 12;  // u32 location + i64 duration per stage
  }
  pos += 4 + 4;  // cuboid (il_index, pl_index)
  const uint64_t num_cells = GetU64(bytes, pos);
  pos += 8;
  EXPECT_GT(num_cells, 0u);
  const uint64_t num_items = GetU64(bytes, pos);
  pos += 8 + num_items * 4;
  return pos;  // u32 support
}

TEST_F(CheckpointTest, RejectsRecordCountOverflow) {
  // A u64 record count far beyond the payload size must be rejected by the
  // count/remaining guard before any allocation is attempted.
  IncrementalMaintainer m = MakeMaintainer(10);
  std::string bad = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  PutU64(&bad, kPayloadOffset + 4, ~uint64_t{0});
  RepairHeader(&bad);
  const Status s = Restore(bad).status();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(),
            "corrupt checkpoint: element count exceeds payload size");
}

TEST_F(CheckpointTest, RejectsPayloadSizeFieldOverflow) {
  // The header's u64 payload-size field claims more bytes than exist.
  IncrementalMaintainer m = MakeMaintainer(10);
  std::string bad = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  PutU64(&bad, 12, ~uint64_t{0});
  const Status s = Restore(bad).status();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "corrupt checkpoint: payload truncated");
}

TEST_F(CheckpointTest, RejectsPayloadCorruptionViaChecksum) {
  IncrementalMaintainer m = MakeMaintainer(10);
  std::string bad = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x20);
  const Status s = Restore(bad).status();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "corrupt checkpoint: payload checksum mismatch");
}

TEST_F(CheckpointTest, RejectsFingerprintTamperEvenWithValidCrc) {
  // CRC-valid but semantically bad: the stored config fingerprint is
  // altered and the checksum repaired, so only the fingerprint comparison
  // can catch it.
  IncrementalMaintainer m = MakeMaintainer(10);
  std::string bad = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  bad[kPayloadOffset] = static_cast<char>(bad[kPayloadOffset] ^ 0x01);
  RepairHeader(&bad);
  const Status s = Restore(bad).status();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(),
            "checkpoint was written with a different schema, plan, or options");
}

TEST_F(CheckpointTest, RejectsSupportTamperEvenWithValidCrc) {
  // CRC-valid but semantically bad: a cell's support count is inflated (and
  // the checksum repaired). The decoder must cross-check every cell against
  // the membership index rebuilt from the live records.
  IncrementalMaintainer m = MakeMaintainer(10);
  std::string bad = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  const size_t support_offset = FirstCellSupportOffset(bad);
  ASSERT_LT(support_offset + 4, bad.size());
  PutU32(&bad, support_offset, 1000000);
  RepairHeader(&bad);
  const Status s = Restore(bad).status();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(),
            "corrupt checkpoint: cell support disagrees with the live records");
}

TEST_F(CheckpointTest, RejectsIngestorFlagOutOfRangeEvenWithValidCrc) {
  // The has-ingestor flag is the final payload byte of a maintainer-only
  // checkpoint; values other than 0/1 must be rejected, not interpreted.
  IncrementalMaintainer m = MakeMaintainer(10);
  std::string bad = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  bad.back() = static_cast<char>(2);
  RepairHeader(&bad);
  const Status s = Restore(bad).status();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "corrupt checkpoint: ingestor flag out of range");
}

TEST_F(CheckpointTest, RejectsTrailingPayloadBytesEvenWithValidCrc) {
  // Trailing bytes *inside* the CRC-covered payload (the outer trailing-
  // garbage case is covered above): the payload parser must consume the
  // payload exactly.
  IncrementalMaintainer m = MakeMaintainer(10);
  std::string bad = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  bad.push_back('\0');
  RepairHeader(&bad);
  const Status s = Restore(bad).status();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "corrupt checkpoint: trailing bytes after payload");
}

TEST_F(CheckpointTest, RejectsConfigMismatch) {
  IncrementalMaintainer m = MakeMaintainer(10);
  const std::string good = EncodeCheckpoint(m, nullptr);

  IncrementalMaintainerOptions different = options_;
  different.build.min_support = options_.build.min_support + 1;
  Result<RestoredPipeline> r =
      DecodeCheckpoint(good, db_->schema_ptr(), plan_, different);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);

  FlowCubePlan fewer_levels = plan_;
  fewer_levels.item_levels.pop_back();
  EXPECT_FALSE(
      DecodeCheckpoint(good, db_->schema_ptr(), fewer_levels, options_).ok());
}

}  // namespace
}  // namespace flowcube
