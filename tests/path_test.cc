#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "path/path_aggregator.h"
#include "path/path_database.h"

namespace flowcube {
namespace {

// --- PathDatabase ----------------------------------------------------------------

TEST(PathDatabase, AppendValidatesDimensionCount) {
  SchemaPtr schema = MakePaperSchema();
  PathDatabase db(schema);
  PathRecord rec;
  rec.dims = {0};  // schema has 2 dimensions
  rec.path.stages = {Stage{schema->locations.Find("factory").value(), 1}};
  EXPECT_EQ(db.Append(rec).code(), Status::Code::kInvalidArgument);
}

TEST(PathDatabase, AppendValidatesIdsAndDurations) {
  SchemaPtr schema = MakePaperSchema();
  PathDatabase db(schema);
  const NodeId f = schema->locations.Find("factory").value();
  PathRecord rec;
  rec.dims = {schema->dimensions[0].Find("tennis").value(),
              schema->dimensions[1].Find("nike").value()};

  rec.path.stages = {};
  EXPECT_FALSE(db.Append(rec).ok());  // empty path

  rec.path.stages = {Stage{9999, 1}};
  EXPECT_FALSE(db.Append(rec).ok());  // bad location

  rec.path.stages = {Stage{f, -1}};
  EXPECT_FALSE(db.Append(rec).ok());  // negative duration

  rec.path.stages = {Stage{f, 1}};
  EXPECT_TRUE(db.Append(rec).ok());
  EXPECT_EQ(db.size(), 1u);

  PathRecord bad_dim = rec;
  bad_dim.dims[0] = 9999;
  EXPECT_FALSE(db.Append(bad_dim).ok());
}

TEST(PathDatabase, RecordsKeptInInsertionOrder) {
  PathDatabase db = MakePaperDatabase();
  ASSERT_EQ(db.size(), 8u);
  EXPECT_EQ(db.schema().dimensions[0].Name(db.record(0).dims[0]), "tennis");
  EXPECT_EQ(db.schema().dimensions[0].Name(db.record(3).dims[0]), "shirt");
  EXPECT_EQ(db.schema().dimensions[1].Name(db.record(7).dims[1]), "adidas");
}

TEST(PathDatabase, ApproximateBytesGrowsWithRecords) {
  PathDatabase db = MakePaperDatabase();
  EXPECT_GT(db.ApproximateBytes(), 0u);
}

TEST(PathDatabase, RecordToStringRendersTable1Row) {
  PathDatabase db = MakePaperDatabase();
  EXPECT_EQ(
      RecordToString(db.schema(), db.record(5)),
      "jacket,nike : (factory,10)(truck,1)(warehouse,5)");
}

// --- PathAggregator ---------------------------------------------------------------

class PathAggregatorTest : public ::testing::Test {
 protected:
  PathAggregatorTest()
      : db_(MakePaperDatabase()),
        schema_(db_.schema_ptr()),
        aggregator_(schema_) {}

  NodeId Loc(const std::string& name) const {
    return schema_->locations.Find(name).value();
  }

  PathDatabase db_;
  SchemaPtr schema_;
  PathAggregator aggregator_;
};

TEST_F(PathAggregatorTest, IdentityCutKeepsPath) {
  const LocationCut cut =
      LocationCut::Uniform(schema_->locations, 2).value();
  const Path& original = db_.record(0).path;
  const Path agg = aggregator_.AggregatePath(original, cut, 1);
  EXPECT_EQ(agg, original);
}

TEST_F(PathAggregatorTest, LevelOneCutMergesConsecutiveStages) {
  // Path 1: (f,10)(d,2)(t,1)(s,5)(c,0) aggregated to level 1 merges d+t
  // into transportation (duration 3) and s+c into store (duration 5).
  const LocationCut cut =
      LocationCut::Uniform(schema_->locations, 1).value();
  const Path agg = aggregator_.AggregatePath(db_.record(0).path, cut, 1);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_EQ(agg.stages[0], (Stage{Loc("production"), 10}));
  EXPECT_EQ(agg.stages[1], (Stage{Loc("transportation"), 3}));
  EXPECT_EQ(agg.stages[2], (Stage{Loc("store"), 5}));
}

TEST_F(PathAggregatorTest, Figure1TransportationViewKeepsDetail) {
  // The Figure 1 "transportation view": dist.center and truck stay
  // detailed, store locations collapse.
  const LocationCut cut =
      LocationCut::FromNodes(
          schema_->locations,
          {Loc("dist.center"), Loc("truck"), Loc("production"), Loc("store")})
          .value();
  const Path agg = aggregator_.AggregatePath(db_.record(0).path, cut, 1);
  ASSERT_EQ(agg.size(), 4u);
  EXPECT_EQ(agg.stages[0].location, Loc("production"));
  EXPECT_EQ(agg.stages[1].location, Loc("dist.center"));
  EXPECT_EQ(agg.stages[2].location, Loc("truck"));
  EXPECT_EQ(agg.stages[3].location, Loc("store"));
  EXPECT_EQ(agg.stages[3].duration, 5);  // shelf 5 + checkout 0
}

TEST_F(PathAggregatorTest, DurationStarLevelErasesDurations) {
  const LocationCut cut =
      LocationCut::Uniform(schema_->locations, 2).value();
  const Path agg = aggregator_.AggregatePath(db_.record(0).path, cut, 0);
  ASSERT_EQ(agg.size(), 5u);
  for (const Stage& s : agg.stages) {
    EXPECT_EQ(s.duration, kAnyDuration);
  }
}

TEST_F(PathAggregatorTest, NonConsecutiveSameConceptStaysSeparate) {
  // Path 8 ends (s,10)(d,5): after level-1 aggregation the trailing d maps
  // to transportation again but is NOT adjacent to the earlier
  // transportation run, so it stays a separate stage.
  const LocationCut cut =
      LocationCut::Uniform(schema_->locations, 1).value();
  const Path agg = aggregator_.AggregatePath(db_.record(7).path, cut, 1);
  ASSERT_EQ(agg.size(), 4u);
  EXPECT_EQ(agg.stages[1].location, Loc("transportation"));
  EXPECT_EQ(agg.stages[3].location, Loc("transportation"));
}

TEST_F(PathAggregatorTest, MergedDurationSumsRawBeforeBucketing) {
  // With a duration hierarchy that buckets by 4, stages of raw durations 2
  // and 3 merging must give bucket (2+3)/4 = 1, not 2/4 + 3/4 = 0.
  auto schema = std::make_shared<PathSchema>();
  ConceptHierarchy dim("d");
  ASSERT_TRUE(dim.AddChild(dim.root(), "v").ok());
  schema->dimensions.push_back(std::move(dim));
  ASSERT_TRUE(schema->locations.AddPath({"g", "x"}).ok());
  ASSERT_TRUE(schema->locations.AddPath({"g", "y"}).ok());
  schema->durations = DurationHierarchy({4});

  PathAggregator agg(schema);
  const LocationCut cut = LocationCut::Uniform(schema->locations, 1).value();
  Path p;
  p.stages = {Stage{schema->locations.Find("x").value(), 2},
              Stage{schema->locations.Find("y").value(), 3}};
  const Path out = agg.AggregatePath(p, cut, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.stages[0].duration, 1);
}

TEST_F(PathAggregatorTest, AggregateDimsRollsUpEachDimension) {
  const std::vector<NodeId> dims = db_.record(0).dims;  // tennis, nike
  const auto up = aggregator_.AggregateDims(dims, ItemLevel{{2, 1}});
  EXPECT_EQ(schema_->dimensions[0].Name(up[0]), "shoes");
  EXPECT_EQ(schema_->dimensions[1].Name(up[1]), "premium");
  const auto apex = aggregator_.AggregateDims(dims, ItemLevel{{0, 0}});
  EXPECT_EQ(apex[0], schema_->dimensions[0].root());
  EXPECT_EQ(apex[1], schema_->dimensions[1].root());
}

}  // namespace
}  // namespace flowcube
