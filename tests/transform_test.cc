#include <algorithm>

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "mining/transform.h"

namespace flowcube {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  TransformTest() : db_(MakePaperDatabase()) {
    Result<MiningPlan> plan = MiningPlan::Default(db_.schema());
    EXPECT_TRUE(plan.ok());
    plan_ = std::move(plan.value());
  }

  PathDatabase db_;
  MiningPlan plan_;
};

TEST_F(TransformTest, DefaultPlanHasFourPathLevels) {
  // {identity cut, one-up cut} x {raw duration, '*'} — the 4 levels the
  // paper's experiments use.
  EXPECT_EQ(plan_.cuts.size(), 2u);
  EXPECT_TRUE(plan_.cuts[0].IsIdentity());
  EXPECT_FALSE(plan_.cuts[1].IsIdentity());
  ASSERT_EQ(plan_.path_levels.size(), 4u);
  EXPECT_EQ(plan_.path_levels[0], (PathLevel{0, 1}));
  EXPECT_EQ(plan_.path_levels[1], (PathLevel{0, 0}));
  EXPECT_EQ(plan_.path_levels[2], (PathLevel{1, 1}));
  EXPECT_EQ(plan_.path_levels[3], (PathLevel{1, 0}));
  // Every dimension level >= 1 is mined.
  ASSERT_EQ(plan_.dim_levels.size(), 2u);
  EXPECT_EQ(plan_.dim_levels[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(plan_.dim_levels[1], (std::vector<int>{1, 2}));
}

TEST_F(TransformTest, DurationStarLevelMapsRawToStar) {
  EXPECT_EQ(plan_.DurationStarLevel(0), 1);
  EXPECT_EQ(plan_.DurationStarLevel(1), 1);
  EXPECT_EQ(plan_.DurationStarLevel(2), 3);
  EXPECT_EQ(plan_.DurationStarLevel(3), 3);
}

TEST_F(TransformTest, TransactionCountMatchesDatabase) {
  Result<TransformedDatabase> tdb = TransformPathDatabase(db_, plan_);
  ASSERT_TRUE(tdb.ok());
  EXPECT_EQ(tdb->size(), db_.size());
}

TEST_F(TransformTest, TransactionsAreSortedUniqueAndSplit) {
  Result<TransformedDatabase> tdb = TransformPathDatabase(db_, plan_);
  ASSERT_TRUE(tdb.ok());
  const ItemCatalog& cat = tdb->catalog();
  for (const Transaction& t : tdb->transactions()) {
    EXPECT_TRUE(std::is_sorted(t.items.begin(), t.items.end()));
    EXPECT_EQ(std::adjacent_find(t.items.begin(), t.items.end()),
              t.items.end());
    const auto dims = t.DimItems(cat);
    const auto stages = t.StageItems(cat);
    EXPECT_EQ(dims.size() + stages.size(), t.items.size());
    for (ItemId id : dims) EXPECT_TRUE(cat.IsDimItem(id));
    for (ItemId id : stages) EXPECT_TRUE(cat.IsStageItem(id));
  }
}

TEST_F(TransformTest, Table3EncodingOfFirstPath) {
  // Transaction 1 of Table 3:
  //   {121, 211, (f,10), (fd,2), (fdt,1), (fdts,5), (fdtsc,0)}
  // plus our other three path levels. Check the raw-level stage items and
  // the multi-level dimension items are present.
  Result<TransformedDatabase> tdb = TransformPathDatabase(db_, plan_);
  ASSERT_TRUE(tdb.ok());
  const ItemCatalog& cat = tdb->catalog();
  const Transaction& t = tdb->transactions()[0];
  const auto& schema = db_.schema();

  // Dimension items at all levels: tennis/shoes/clothing, nike/premium.
  for (const char* name : {"tennis", "shoes", "clothing"}) {
    const ItemId id =
        cat.DimItem(0, schema.dimensions[0].Find(name).value());
    EXPECT_TRUE(std::binary_search(t.items.begin(), t.items.end(), id))
        << name;
  }
  for (const char* name : {"nike", "premium"}) {
    const ItemId id =
        cat.DimItem(1, schema.dimensions[1].Find(name).value());
    EXPECT_TRUE(std::binary_search(t.items.begin(), t.items.end(), id))
        << name;
  }

  // Raw-level stage items: walk the trie along f, d, t, s, c.
  const PrefixTrie& trie = cat.trie();
  PrefixId prefix = kEmptyPrefix;
  const std::vector<std::pair<std::string, Duration>> stages = {
      {"factory", 10}, {"dist.center", 2}, {"truck", 1}, {"shelf", 5},
      {"checkout", 0}};
  for (const auto& [name, dur] : stages) {
    prefix = trie.Find(prefix, schema.locations.Find(name).value());
    ASSERT_NE(prefix, PrefixTrie::kInvalidPrefix) << name;
    const ItemId raw = cat.FindStageItem(0, prefix, dur);
    ASSERT_NE(raw, kInvalidItem) << name;
    EXPECT_TRUE(std::binary_search(t.items.begin(), t.items.end(), raw));
    // The duration-'*' twin at path level 1.
    const ItemId star = cat.FindStageItem(1, prefix, kAnyDuration);
    ASSERT_NE(star, kInvalidItem) << name;
    EXPECT_TRUE(std::binary_search(t.items.begin(), t.items.end(), star));
  }
}

TEST_F(TransformTest, AggregatedLevelsMergeStages) {
  // At the one-up cut, path 1 becomes production>transportation>store; the
  // transaction must contain the (production>transportation, 3) stage.
  Result<TransformedDatabase> tdb = TransformPathDatabase(db_, plan_);
  ASSERT_TRUE(tdb.ok());
  const ItemCatalog& cat = tdb->catalog();
  const auto& loc = db_.schema().locations;
  const PrefixTrie& trie = cat.trie();
  PrefixId p = trie.Find(kEmptyPrefix, loc.Find("production").value());
  ASSERT_NE(p, PrefixTrie::kInvalidPrefix);
  p = trie.Find(p, loc.Find("transportation").value());
  ASSERT_NE(p, PrefixTrie::kInvalidPrefix);
  const ItemId merged = cat.FindStageItem(2, p, 3);  // durations 2+1
  ASSERT_NE(merged, kInvalidItem);
  const Transaction& t = tdb->transactions()[0];
  EXPECT_TRUE(std::binary_search(t.items.begin(), t.items.end(), merged));
}

TEST_F(TransformTest, NoTopLevelItemsEmitted) {
  // Optimization: values aggregated to '*' are dropped from transactions —
  // no level-0 dimension item may appear.
  Result<TransformedDatabase> tdb = TransformPathDatabase(db_, plan_);
  ASSERT_TRUE(tdb.ok());
  const ItemCatalog& cat = tdb->catalog();
  for (const Transaction& t : tdb->transactions()) {
    for (ItemId id : t.DimItems(cat)) {
      EXPECT_GE(cat.DimLevelOf(id), 1);
    }
  }
}

TEST_F(TransformTest, RejectsMismatchedPlan) {
  MiningPlan bad = plan_;
  bad.dim_levels.pop_back();
  EXPECT_FALSE(TransformPathDatabase(db_, bad).ok());

  MiningPlan empty = plan_;
  empty.path_levels.clear();
  EXPECT_FALSE(TransformPathDatabase(db_, empty).ok());
}

TEST_F(TransformTest, RestrictedDimLevelsAreHonored) {
  MiningPlan restricted = plan_;
  restricted.dim_levels[0] = {2};  // only the "shoes/outerwear" level
  Result<TransformedDatabase> tdb = TransformPathDatabase(db_, restricted);
  ASSERT_TRUE(tdb.ok());
  const ItemCatalog& cat = tdb->catalog();
  for (const Transaction& t : tdb->transactions()) {
    for (ItemId id : t.DimItems(cat)) {
      if (cat.DimOf(id) == 0) {
        EXPECT_EQ(cat.DimLevelOf(id), 2);
      }
    }
  }
}

}  // namespace
}  // namespace flowcube
