// Out-of-core store guarantees (src/store): a FlowCube served out of a
// mapped FCSP v2 checkpoint answers the entire public FCQP surface
// byte-identically to the heap-built cube it was written from; v2 files
// round-trip byte-stably through the pipeline reader; warm start publishes
// the mapped image; a cold-started shard resumes at its checkpointed state
// and continues ingestion without drift; and v1 files upgrade into v2 files
// that serve the same bytes.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "flowcube/dump.h"
#include "gen/path_generator.h"
#include "serve/query_service.h"
#include "serve/snapshot_registry.h"
#include "shard/shard_node.h"
#include "store/mapped_cube.h"
#include "store/upgrade.h"
#include "store/warm_start.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_dimensions = 2;
    cfg.dim_distinct_per_level = {2, 2, 2};
    cfg.num_location_groups = 3;
    cfg.locations_per_group = 3;
    cfg.num_sequences = 6;
    cfg.min_sequence_length = 2;
    cfg.max_sequence_length = 5;
    cfg.seed = 909;
    PathGenerator gen(cfg);
    db_ = std::make_unique<PathDatabase>(gen.Generate(60));
    Result<FlowCubePlan> plan = FlowCubePlan::Default(db_->schema());
    ASSERT_TRUE(plan.ok());
    plan_ = plan.value();
    options_.build.min_support = 2;
    // Exceptions and redundancy flags ride through the v2 meta stream;
    // keep them on so the mapped differential covers those columns too.
    options_.build.compute_exceptions = true;
    options_.build.mark_redundant = true;
  }

  IncrementalMaintainer MakeMaintainer(size_t num_records) {
    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        db_->schema_ptr(), plan_, options_);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    IncrementalMaintainer m = std::move(created.value());
    EXPECT_TRUE(m.ApplyRecords(std::span<const PathRecord>(db_->records())
                                   .subspan(0, num_records))
                    .ok());
    return m;
  }

  std::string TempFile(const std::string& name) const {
    return ::testing::TempDir() + "/store_test_" + name + ".fcsp";
  }

  Result<std::shared_ptr<const MappedCube>> LoadMapped(
      const std::string& path, const MappedCubeOptions& mopts = {}) const {
    return MappedCube::Load(path, db_->schema_ptr(), plan_, options_, mopts);
  }

  std::unique_ptr<PathDatabase> db_;
  FlowCubePlan plan_;
  IncrementalMaintainerOptions options_;
};

// A cell coordinate expressed as request value names.
struct Candidate {
  std::vector<std::string> values;
  uint32_t pl_index = 0;
};

std::vector<Candidate> HarvestCells(const FlowCube& cube) {
  std::vector<Candidate> out;
  const FlowCubePlan& plan = cube.plan();
  for (size_t il = 0; il < plan.item_levels.size(); ++il) {
    for (size_t pl = 0; pl < plan.path_levels.size(); ++pl) {
      for (const FlowCell* cell : cube.cuboid(il, pl).SortedCells()) {
        Candidate c;
        c.pl_index = static_cast<uint32_t>(pl);
        c.values.assign(cube.schema().num_dimensions(), "*");
        for (ItemId id : cell->dims) {
          const size_t d = cube.catalog().DimOf(id);
          c.values[d] =
              cube.schema().dimensions[d].Name(cube.catalog().NodeOf(id));
        }
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

// The entire public FCQP request surface against every materialized cell:
// point lookups, ancestor fallbacks from leaf coordinates, drill-downs
// along both dimensions, similarity between consecutive cells, stats, and
// a guaranteed miss (error responses must match too).
std::vector<QueryRequest> FullQuerySurface(const PathDatabase& db,
                                           const FlowCube& cube) {
  const std::vector<Candidate> pool = HarvestCells(cube);
  std::vector<QueryRequest> out;
  uint64_t id = 0;
  for (const Candidate& c : pool) {
    QueryRequest req;
    req.request_id = ++id;
    req.type = RequestType::kPointLookup;
    req.values = c.values;
    req.pl_index = c.pl_index;
    out.push_back(req);
    for (uint32_t dim = 0; dim < cube.schema().num_dimensions(); ++dim) {
      req.request_id = ++id;
      req.type = RequestType::kDrillDown;
      req.dim = dim;
      out.push_back(req);
    }
  }
  for (size_t i = 0; i + 1 < pool.size(); i += 2) {
    QueryRequest req;
    req.request_id = ++id;
    req.type = RequestType::kSimilarity;
    req.values = pool[i].values;
    req.values_b = pool[i + 1].values;
    req.pl_index = pool[i].pl_index;
    out.push_back(req);
  }
  for (size_t r = 0; r < db.size(); ++r) {
    QueryRequest req;
    req.request_id = ++id;
    req.type = RequestType::kCellOrAncestor;
    for (size_t d = 0; d < db.record(r).dims.size(); ++d) {
      req.values.push_back(
          db.schema().dimensions[d].Name(db.record(r).dims[d]));
    }
    out.push_back(req);
  }
  QueryRequest stats;
  stats.request_id = ++id;
  stats.type = RequestType::kStats;
  out.push_back(stats);
  QueryRequest miss;
  miss.request_id = ++id;
  miss.type = RequestType::kPointLookup;
  miss.values = {"no-such-value", "*"};
  out.push_back(miss);
  return out;
}

TEST_F(StoreTest, MappedCubeServesByteIdenticalQueries) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string path = TempFile("differential");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path, kCheckpointFormatV2).ok());

  Result<std::shared_ptr<const MappedCube>> mapped = LoadMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  CubeSnapshot heap_snap;
  heap_snap.epoch = 1;
  heap_snap.records = 40;
  heap_snap.cube = std::make_shared<const FlowCube>(m.cube().Clone());
  CubeSnapshot mapped_snap;
  mapped_snap.epoch = 1;
  mapped_snap.records = 40;
  mapped_snap.cube = mapped.value()->shared_cube();

  const std::vector<QueryRequest> surface =
      FullQuerySurface(*db_, *heap_snap.cube);
  ASSERT_GT(surface.size(), 20u);
  for (const QueryRequest& req : surface) {
    const QueryResponse from_heap = QueryService::ExecuteOn(heap_snap, req);
    const QueryResponse from_map = QueryService::ExecuteOn(mapped_snap, req);
    EXPECT_EQ(from_heap, from_map)
        << "request " << req.request_id << " diverged";
  }

  std::remove(path.c_str());
}

TEST_F(StoreTest, MappedCubeDumpAndMetadataMatch) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string path = TempFile("dump");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path, kCheckpointFormatV2).ok());

  std::shared_ptr<const FlowCube> cube;
  std::string before;
  {
    Result<std::shared_ptr<const MappedCube>> mapped = LoadMapped(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ(DumpFlowCube(mapped.value()->cube()), DumpFlowCube(m.cube()));
    EXPECT_EQ(mapped.value()->live_records(), 40u);
    EXPECT_GT(mapped.value()->bytes_mapped(), kFcspV2HeaderSize);
    // The dump touched every page; residency is sampled, but stays bounded.
    EXPECT_LE(mapped.value()->ResidentBytes(),
              mapped.value()->bytes_mapped());
    cube = mapped.value()->shared_cube();
    before = DumpFlowCube(*cube);
  }
  // The cube pins the mapping: cells stay valid after the handle drops.
  EXPECT_EQ(DumpFlowCube(*cube), before);

  std::remove(path.c_str());
}

TEST_F(StoreTest, BufferedLoadMatchesMmap) {
  IncrementalMaintainer m = MakeMaintainer(30);
  const std::string path = TempFile("buffered");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path, kCheckpointFormatV2).ok());

  MappedCubeOptions no_mmap;
  no_mmap.use_mmap = false;
  Result<std::shared_ptr<const MappedCube>> buffered =
      LoadMapped(path, no_mmap);
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  Result<std::shared_ptr<const MappedCube>> mmapped = LoadMapped(path);
  ASSERT_TRUE(mmapped.ok()) << mmapped.status().ToString();
  EXPECT_EQ(DumpFlowCube(buffered.value()->cube()),
            DumpFlowCube(mmapped.value()->cube()));
  // Buffered loads report full residency by definition.
  EXPECT_EQ(buffered.value()->ResidentBytes(),
            buffered.value()->bytes_mapped());

  std::remove(path.c_str());
}

TEST_F(StoreTest, MappedCubeIsImmutable) {
  IncrementalMaintainer m = MakeMaintainer(20);
  const std::string path = TempFile("immutable");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path, kCheckpointFormatV2).ok());
  Result<std::shared_ptr<const MappedCube>> mapped = LoadMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // Store-loaded cuboids borrow their slot tables from the mapping — a
  // borrow the Clone preserves — so erasing a present cell must die on the
  // borrowed-column check (the death test keeps the contract honest).
  FlowCube copy = mapped.value()->cube().Clone();
  EXPECT_DEATH(
      {
        copy.ForEachCuboidMutable([](Cuboid* cuboid) {
          if (cuboid->size() == 0) return;
          const Itemset dims = cuboid->SortedCells().front()->dims;
          cuboid->Erase(dims);
        });
      },
      "borrowed");
  std::remove(path.c_str());
}

TEST_F(StoreTest, V2CheckpointRoundTripIsByteStable) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string first = EncodeCheckpoint(m, nullptr, kCheckpointFormatV2);
  Result<RestoredPipeline> restored =
      DecodeCheckpoint(first, db_->schema_ptr(), plan_, options_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->format, kCheckpointFormatV2);
  EXPECT_EQ(DumpFlowCube(restored->maintainer.cube()), DumpFlowCube(m.cube()));
  const std::string second =
      EncodeCheckpoint(restored->maintainer, nullptr, kCheckpointFormatV2);
  EXPECT_EQ(first, second) << "v2 is canonical: decode∘encode is the "
                              "identity on the serialized form";
}

TEST_F(StoreTest, V2RestoreContinuesIdentically) {
  IncrementalMaintainer original = MakeMaintainer(30);
  Result<RestoredPipeline> restored = DecodeCheckpoint(
      EncodeCheckpoint(original, nullptr, kCheckpointFormatV2),
      db_->schema_ptr(), plan_, options_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const std::span<const PathRecord> rest =
      std::span<const PathRecord>(db_->records()).subspan(30);
  ASSERT_TRUE(original.ApplyRecords(rest).ok());
  ASSERT_TRUE(restored->maintainer.ApplyRecords(rest).ok());
  EXPECT_EQ(DumpFlowCube(restored->maintainer.cube()),
            DumpFlowCube(original.cube()))
      << "a v2 restore must keep ingesting without replay drift";
}

TEST_F(StoreTest, FormatNegotiationReadsBothAndHonorsDefault) {
  IncrementalMaintainer m = MakeMaintainer(25);
  const std::string v1 = EncodeCheckpoint(m, nullptr, kCheckpointFormatV1);
  const std::string v2 = EncodeCheckpoint(m, nullptr, kCheckpointFormatV2);
  EXPECT_NE(v1, v2);

  Result<RestoredPipeline> from_v1 =
      DecodeCheckpoint(v1, db_->schema_ptr(), plan_, options_);
  Result<RestoredPipeline> from_v2 =
      DecodeCheckpoint(v2, db_->schema_ptr(), plan_, options_);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  EXPECT_EQ(from_v1->format, kCheckpointFormatV1);
  EXPECT_EQ(from_v2->format, kCheckpointFormatV2);
  EXPECT_EQ(DumpFlowCube(from_v1->maintainer.cube()),
            DumpFlowCube(from_v2->maintainer.cube()));

  // Format 0 follows FLOWCUBE_CHECKPOINT_FORMAT (unset here → v2).
  EXPECT_EQ(DefaultCheckpointFormat(), kCheckpointFormatV2);
  EXPECT_EQ(EncodeCheckpoint(m, nullptr), v2);
}

TEST_F(StoreTest, WarmStartPublishesMappedV2) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string path = TempFile("warm_v2");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path, kCheckpointFormatV2).ok());

  SnapshotRegistry registry;
  Result<WarmStart> ws = WarmStartFromCheckpoint(
      path, db_->schema_ptr(), plan_, options_, &registry);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_EQ(ws->format, kCheckpointFormatV2);
  EXPECT_EQ(ws->live_records, 40u);
  EXPECT_EQ(ws->epoch, 1u);
  ASSERT_NE(ws->mapped, nullptr);

  SnapshotPtr snap = registry.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->records, 40u);
  // The published snapshot IS the mapped image, not a copy.
  EXPECT_EQ(snap->cube.get(), &ws->mapped->cube());
  EXPECT_EQ(DumpFlowCube(*snap->cube), DumpFlowCube(m.cube()));
  std::remove(path.c_str());
}

TEST_F(StoreTest, WarmStartFallsBackToV1Decode) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string path = TempFile("warm_v1");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path, kCheckpointFormatV1).ok());

  SnapshotRegistry registry;
  Result<WarmStart> ws = WarmStartFromCheckpoint(
      path, db_->schema_ptr(), plan_, options_, &registry);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_EQ(ws->format, kCheckpointFormatV1);
  EXPECT_EQ(ws->mapped, nullptr);
  SnapshotPtr snap = registry.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(DumpFlowCube(*snap->cube), DumpFlowCube(m.cube()));
  std::remove(path.c_str());
}

TEST_F(StoreTest, ShardColdStartResumesCheckpointedState) {
  ShardNodeOptions shard_options;
  shard_options.global_build = options_.build;

  Result<std::unique_ptr<ShardNode>> original =
      ShardNode::Create(db_->schema_ptr(), plan_, shard_options);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_TRUE((*original)
                  ->Apply(std::span<const PathRecord>(db_->records())
                              .subspan(0, 40))
                  .ok());

  const std::string path = TempFile("shard");
  ASSERT_TRUE((*original)->SaveCheckpoint(path).ok());

  Result<std::unique_ptr<ShardNode>> cold =
      ShardNode::ColdStart(db_->schema_ptr(), plan_, shard_options, path);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ((*cold)->live_record_count(), 40u);
  EXPECT_EQ((*cold)->current_epoch(), 1u);

  SnapshotPtr cold_snap = (*cold)->registry().Acquire();
  SnapshotPtr orig_snap = (*original)->registry().Acquire();
  ASSERT_NE(cold_snap, nullptr);
  EXPECT_EQ(cold_snap->records, 40u);
  EXPECT_EQ(DumpFlowCube(*cold_snap->cube), DumpFlowCube(*orig_snap->cube))
      << "a cold-started shard must serve its pre-restart state";

  // And ingestion continues without drift.
  const std::span<const PathRecord> rest =
      std::span<const PathRecord>(db_->records()).subspan(40);
  ASSERT_TRUE((*original)->Apply(rest).ok());
  ASSERT_TRUE((*cold)->Apply(rest).ok());
  EXPECT_EQ(DumpFlowCube(*(*cold)->registry().Acquire()->cube),
            DumpFlowCube(*(*original)->registry().Acquire()->cube));

  // A monolithic (non-shard) checkpoint is rejected: the fingerprint covers
  // the derived shard-local options.
  IncrementalMaintainer mono = MakeMaintainer(10);
  ASSERT_TRUE(SaveCheckpoint(mono, nullptr, path).ok());
  EXPECT_FALSE(
      ShardNode::ColdStart(db_->schema_ptr(), plan_, shard_options, path)
          .ok());
  std::remove(path.c_str());
}

TEST_F(StoreTest, UpgradedV1ServesByteIdenticalQueries) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string v1_path = TempFile("upgrade_in");
  const std::string v2_path = TempFile("upgrade_out");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, v1_path, kCheckpointFormatV1).ok());

  ASSERT_TRUE(UpgradeCheckpointFile(v1_path, v2_path, db_->schema_ptr(),
                                    plan_, options_)
                  .ok());

  Result<std::shared_ptr<const MappedCube>> mapped = LoadMapped(v2_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  CubeSnapshot heap_snap;
  heap_snap.epoch = 1;
  heap_snap.records = 40;
  heap_snap.cube = std::make_shared<const FlowCube>(m.cube().Clone());
  CubeSnapshot mapped_snap = heap_snap;
  mapped_snap.cube = mapped.value()->shared_cube();
  for (const QueryRequest& req : FullQuerySurface(*db_, *heap_snap.cube)) {
    EXPECT_EQ(QueryService::ExecuteOn(heap_snap, req),
              QueryService::ExecuteOn(mapped_snap, req));
  }

  // Upgrading a file already in the target format is a canonicalizing
  // no-op: the output bytes equal the input bytes.
  const std::string again = TempFile("upgrade_again");
  ASSERT_TRUE(UpgradeCheckpointFile(v2_path, again, db_->schema_ptr(), plan_,
                                    options_)
                  .ok());
  std::ifstream a(v2_path, std::ios::binary), b(again, std::ios::binary);
  std::string bytes_a((std::istreambuf_iterator<char>(a)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(b)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);

  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(again.c_str());
}

TEST_F(StoreTest, InspectReportsBothFormats) {
  IncrementalMaintainer m = MakeMaintainer(40);
  const std::string v1_path = TempFile("inspect_v1");
  const std::string v2_path = TempFile("inspect_v2");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, v1_path, kCheckpointFormatV1).ok());
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, v2_path, kCheckpointFormatV2).ok());

  Result<CheckpointFileInfo> v1 = InspectCheckpointFile(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->format, kCheckpointFormatV1);
  EXPECT_EQ(v1->live_records, 40u);

  Result<CheckpointFileInfo> v2 = InspectCheckpointFile(v2_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2->format, kCheckpointFormatV2);
  EXPECT_EQ(v2->live_records, 40u);
  EXPECT_GT(v2->meta_size, 0u);
  EXPECT_GT(v2->arena_size, 0u);
  EXPECT_GT(v2->resume_size, 0u);
  EXPECT_EQ(v2->config_fingerprint, v1->config_fingerprint);
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST_F(StoreTest, StoreMetricsTrackLoads) {
  IncrementalMaintainer m = MakeMaintainer(20);
  const std::string path = TempFile("metrics");
  ASSERT_TRUE(SaveCheckpoint(m, nullptr, path, kCheckpointFormatV2).ok());

  MetricRegistry& reg = MetricRegistry::Global();
  const uint64_t loads_before = reg.counter("store.mapped_loads").value();
  const uint64_t failures_before = reg.counter("store.load_failures").value();

  {
    Result<std::shared_ptr<const MappedCube>> mapped = LoadMapped(path);
    ASSERT_TRUE(mapped.ok());
    EXPECT_GE(reg.gauge("store.bytes_mapped").value(),
              static_cast<int64_t>(mapped.value()->bytes_mapped()));
  }
  // The mapping is gone; its bytes were subtracted from the gauge.
  EXPECT_EQ(reg.counter("store.mapped_loads").value(), loads_before + 1);

  EXPECT_FALSE(LoadMapped(path + ".missing").ok());
  EXPECT_EQ(reg.counter("store.load_failures").value(), failures_before + 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flowcube
