#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "cube/buc.h"
#include "cube/cubing_miner.h"
#include "gen/paper_example.h"
#include "gen/path_generator.h"
#include "mining/shared_miner.h"

namespace flowcube {
namespace {

// Brute-force iceberg cube: enumerate every (dim value or ancestor) combo.
std::map<std::vector<NodeId>, size_t> BruteForceCube(const PathDatabase& db,
                                                     uint32_t minsup) {
  std::map<std::vector<NodeId>, size_t> counts;
  for (const PathRecord& rec : db.records()) {
    // All ancestor combinations of the record's dim values.
    std::vector<std::vector<NodeId>> choices;
    for (size_t d = 0; d < rec.dims.size(); ++d) {
      std::vector<NodeId> chain;
      NodeId cur = rec.dims[d];
      while (cur != kInvalidNode) {
        chain.push_back(cur);
        cur = db.schema().dimensions[d].Parent(cur);
      }
      choices.push_back(chain);
    }
    std::vector<size_t> idx(choices.size(), 0);
    for (;;) {
      std::vector<NodeId> key(choices.size());
      for (size_t d = 0; d < choices.size(); ++d) key[d] = choices[d][idx[d]];
      counts[key]++;
      size_t d = 0;
      while (d < idx.size()) {
        if (++idx[d] < choices[d].size()) break;
        idx[d] = 0;
        ++d;
      }
      if (d == idx.size()) break;
    }
  }
  std::map<std::vector<NodeId>, size_t> frequent;
  for (const auto& [key, c] : counts) {
    if (c >= minsup) frequent[key] = c;
  }
  return frequent;
}

TEST(BucIcebergCube, PaperDatabaseCellsMatchBruteForce) {
  PathDatabase db = MakePaperDatabase();
  for (uint32_t minsup : {1u, 2u, 3u, 5u}) {
    BucIcebergCube cube(BucIcebergCube::Options{minsup});
    std::map<std::vector<NodeId>, size_t> got;
    cube.Visit(db, [&](const CubeCell& cell) {
      EXPECT_FALSE(got.contains(cell.coords)) << "cell visited twice";
      got[cell.coords] = cell.tids.size();
    });
    EXPECT_EQ(got, BruteForceCube(db, minsup)) << "minsup=" << minsup;
  }
}

TEST(BucIcebergCube, ApexCellContainsEverything) {
  PathDatabase db = MakePaperDatabase();
  BucIcebergCube cube(BucIcebergCube::Options{1});
  bool seen_apex = false;
  cube.Visit(db, [&](const CubeCell& cell) {
    bool all_root = true;
    for (size_t d = 0; d < cell.coords.size(); ++d) {
      if (cell.coords[d] != db.schema().dimensions[d].root()) all_root = false;
    }
    if (all_root) {
      seen_apex = true;
      EXPECT_EQ(cell.tids.size(), db.size());
    }
  });
  EXPECT_TRUE(seen_apex);
}

TEST(BucIcebergCube, IcebergPrunesSmallCells) {
  PathDatabase db = MakePaperDatabase();
  BucIcebergCube cube(BucIcebergCube::Options{3});
  cube.Visit(db, [&](const CubeCell& cell) {
    EXPECT_GE(cell.tids.size(), 3u) << cell.ToString(db.schema());
  });
}

TEST(BucIcebergCube, HighThresholdLeavesOnlyApex) {
  PathDatabase db = MakePaperDatabase();
  BucIcebergCube cube(BucIcebergCube::Options{8});
  std::vector<CubeCell> cells = cube.Compute(db);
  // Apex (8 paths), (*, nike) has 6, (clothing, *) has 8,
  // (clothing, nike) has 6 ... only support-8 cells survive.
  for (const CubeCell& cell : cells) {
    EXPECT_EQ(cell.tids.size(), 8u);
  }
  EXPECT_GE(cells.size(), 2u);  // apex + (clothing, *)
}

TEST(BucIcebergCube, TidListsPartitionPerLevel) {
  PathDatabase db = MakePaperDatabase();
  BucIcebergCube cube(BucIcebergCube::Options{1});
  // Cells with product at level 3 and brand at '*' partition the db.
  std::set<uint32_t> seen;
  cube.Visit(db, [&](const CubeCell& cell) {
    const auto& product = db.schema().dimensions[0];
    if (product.Level(cell.coords[0]) == 3 &&
        cell.coords[1] == db.schema().dimensions[1].root()) {
      for (uint32_t tid : cell.tids) {
        EXPECT_TRUE(seen.insert(tid).second);
      }
    }
  });
  EXPECT_EQ(seen.size(), db.size());
}

TEST(BucIcebergCube, CellToStringRendersNames) {
  PathDatabase db = MakePaperDatabase();
  CubeCell cell;
  cell.coords = {db.schema().dimensions[0].Find("outerwear").value(),
                 db.schema().dimensions[1].root()};
  EXPECT_EQ(cell.ToString(db.schema()), "(outerwear, *)");
}

// --- CubingMiner -------------------------------------------------------------------

TEST(CubingMiner, MatchesSharedOnPaperDatabase) {
  PathDatabase db = MakePaperDatabase();
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = std::move(TransformPathDatabase(db, plan).value());

  for (uint32_t minsup : {2u, 3u}) {
    SharedMinerOptions sopts;
    sopts.min_support = minsup;
    SharedMiner shared(tdb, sopts);
    std::map<Itemset, uint32_t> s;
    for (const auto& fi : shared.Run().frequent) s[fi.items] = fi.support;

    CubingMiner cubing(db, tdb, CubingMinerOptions{minsup});
    std::map<Itemset, uint32_t> c;
    for (const auto& fi : cubing.Run().frequent) c[fi.items] = fi.support;

    EXPECT_EQ(s, c) << "minsup=" << minsup;
  }
}

class CubingConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CubingConsistency, MatchesSharedOnGeneratedData) {
  GeneratorConfig cfg;
  cfg.num_dimensions = 3;
  cfg.dim_distinct_per_level = {2, 2, 3};
  cfg.num_sequences = 12;
  cfg.seed = GetParam();
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(400);
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = std::move(TransformPathDatabase(db, plan).value());

  SharedMinerOptions sopts;
  sopts.min_support = 20;
  SharedMiner shared(tdb, sopts);
  std::map<Itemset, uint32_t> s;
  for (const auto& fi : shared.Run().frequent) s[fi.items] = fi.support;

  CubingMiner cubing(db, tdb, CubingMinerOptions{20});
  std::map<Itemset, uint32_t> c;
  for (const auto& fi : cubing.Run().frequent) c[fi.items] = fi.support;

  EXPECT_EQ(s, c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubingConsistency,
                         ::testing::Values(5u, 17u, 99u));

TEST(CubingMiner, CountsMoreCandidatesThanShared) {
  // The structural claim behind Figures 6-11: cubing re-generates
  // candidates per cell and cannot cross-prune, so it counts far more.
  GeneratorConfig cfg;
  cfg.num_dimensions = 3;
  cfg.seed = 4;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(1000);
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb = std::move(TransformPathDatabase(db, plan).value());

  SharedMinerOptions sopts;
  sopts.min_support = 20;
  SharedMiner shared(tdb, sopts);
  CubingMiner cubing(db, tdb, CubingMinerOptions{20});
  EXPECT_GT(cubing.Run().stats.TotalCandidates(),
            shared.Run().stats.TotalCandidates());
}

}  // namespace
}  // namespace flowcube
