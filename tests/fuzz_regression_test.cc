// Replays every checked-in fuzz corpus input byte-for-byte through the
// fuzz harnesses (fuzz/harness.h) in the plain tier-1 build. This keeps the
// corpora from rotting — a decoder change that crashes or breaks a
// round-trip invariant on any historical input (including future minimized
// crashers promoted into fuzz/corpus/) fails here, without needing clang,
// libFuzzer, or the fuzz preset.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/harness.h"

namespace flowcube {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles(const char* surface) {
  const fs::path dir = fs::path(FLOWCUBE_FUZZ_CORPUS_DIR) / surface;
  std::vector<fs::path> files;
  if (fs::is_directory(dir)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void Replay(const char* surface,
            int (*harness)(const uint8_t*, size_t)) {
  const std::vector<fs::path> files = CorpusFiles(surface);
  ASSERT_FALSE(files.empty())
      << "no corpus under " << FLOWCUBE_FUZZ_CORPUS_DIR << "/" << surface
      << " — regenerate with fuzz_make_seeds (fuzz preset)";
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    const std::string bytes = ReadBytes(file);
    // The harness FC_CHECKs the decode invariants internally; reaching the
    // return at all means no crash, no sanitizer report, invariants held.
    EXPECT_EQ(harness(reinterpret_cast<const uint8_t*>(bytes.data()),
                      bytes.size()),
              0);
  }
}

TEST(FuzzRegressionTest, TextIoCorpusReplaysCleanly) {
  Replay("text_io", &FuzzTextIo);
}

TEST(FuzzRegressionTest, CheckpointCorpusReplaysCleanly) {
  Replay("checkpoint", &FuzzCheckpoint);
}

TEST(FuzzRegressionTest, FcspV2CorpusReplaysCleanly) {
  Replay("fcsp_v2", &FuzzFcspV2);
}

TEST(FuzzRegressionTest, ServeFrameCorpusReplaysCleanly) {
  Replay("serve", &FuzzServeFrame);
}

}  // namespace
}  // namespace flowcube
