#include <gtest/gtest.h>

#include "flowgraph/builder.h"
#include "flowgraph/exception_miner.h"

namespace flowcube {
namespace {

// A small synthetic world with a planted correlation, echoing the paper's
// example: items that stay long at the factory move to the warehouse much
// more often than the overall population.
//
// Locations: 1 = factory, 2 = warehouse, 3 = store.
constexpr NodeId kFactory = 1;
constexpr NodeId kWarehouse = 2;
constexpr NodeId kStore = 3;

std::vector<Path> PlantedCorrelationPaths() {
  std::vector<Path> paths;
  auto add = [&paths](Duration f_dur, NodeId next, Duration next_dur,
                      int copies) {
    for (int i = 0; i < copies; ++i) {
      Path p;
      p.stages = {Stage{kFactory, f_dur}, Stage{next, next_dur}};
      paths.push_back(p);
    }
  };
  // Short factory stays (duration 1): 90% to store, 10% to warehouse.
  add(1, kStore, 2, 18);
  add(1, kWarehouse, 2, 2);
  // Long factory stays (duration 9): 90% to warehouse, 10% to store.
  add(9, kWarehouse, 2, 18);
  add(9, kStore, 2, 2);
  return paths;
}

class ExceptionMinerTest : public ::testing::Test {
 protected:
  ExceptionMinerTest() : paths_(PlantedCorrelationPaths()) {
    graph_ = BuildFlowGraph(paths_);
    factory_ = graph_.FindChild(FlowGraph::kRoot, kFactory);
    warehouse_ = graph_.FindChild(factory_, kWarehouse);
    store_ = graph_.FindChild(factory_, kStore);
  }

  std::vector<Path> paths_;
  FlowGraph graph_;
  FlowNodeId factory_ = 0;
  FlowNodeId warehouse_ = 0;
  FlowNodeId store_ = 0;
};

TEST_F(ExceptionMinerTest, GlobalDistributionIsBalanced) {
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(factory_, warehouse_), 0.5);
  EXPECT_DOUBLE_EQ(graph_.TransitionProbability(factory_, store_), 0.5);
}

TEST_F(ExceptionMinerTest, FindsPlantedTransitionException) {
  ExceptionMiner miner(ExceptionMinerOptions{/*epsilon=*/0.2,
                                             /*min_support=*/5});
  const std::vector<StageCondition> long_stay = {{factory_, 9}};
  const auto exceptions = miner.Mine(graph_, paths_, {long_stay});

  // Conditioned on (factory, 9): P(warehouse) = 0.9 vs global 0.5 and
  // P(store) = 0.1 vs 0.5 — both deviate by 0.4 >= epsilon.
  bool warehouse_up = false;
  bool store_down = false;
  for (const FlowException& e : exceptions) {
    if (e.kind != FlowException::Kind::kTransition) continue;
    EXPECT_EQ(e.node, factory_);
    EXPECT_EQ(e.condition_support, 20u);
    if (e.transition_target == warehouse_) {
      EXPECT_NEAR(e.global_probability, 0.5, 1e-9);
      EXPECT_NEAR(e.conditional_probability, 0.9, 1e-9);
      warehouse_up = true;
    }
    if (e.transition_target == store_) {
      EXPECT_NEAR(e.conditional_probability, 0.1, 1e-9);
      store_down = true;
    }
  }
  EXPECT_TRUE(warehouse_up);
  EXPECT_TRUE(store_down);
}

TEST_F(ExceptionMinerTest, EpsilonThresholdSuppressesSmallDeviations) {
  ExceptionMiner miner(ExceptionMinerOptions{/*epsilon=*/0.45,
                                             /*min_support=*/5});
  const std::vector<StageCondition> long_stay = {{factory_, 9}};
  // Deviations are exactly 0.4 < 0.45: nothing may be reported.
  EXPECT_TRUE(miner.Mine(graph_, paths_, {long_stay}).empty());
}

TEST_F(ExceptionMinerTest, MinSupportSuppressesRareConditions) {
  ExceptionMiner miner(ExceptionMinerOptions{/*epsilon=*/0.2,
                                             /*min_support=*/21});
  const std::vector<StageCondition> long_stay = {{factory_, 9}};
  // Only 20 paths match the condition.
  EXPECT_TRUE(miner.Mine(graph_, paths_, {long_stay}).empty());
}

TEST_F(ExceptionMinerTest, NonInformativePatternsSkipped) {
  ExceptionMiner miner(ExceptionMinerOptions{0.1, 2});
  // Passage-only condition (duration '*'): implied by reaching the node,
  // deviation would be zero by construction; the miner skips it.
  const std::vector<StageCondition> passage = {{factory_, kAnyDuration}};
  EXPECT_TRUE(miner.Mine(graph_, paths_, {passage}).empty());
}

TEST_F(ExceptionMinerTest, LocalPatternMiningFindsTheSameException) {
  ExceptionMiner miner(ExceptionMinerOptions{/*epsilon=*/0.3,
                                             /*min_support=*/5});
  const auto exceptions = miner.MineWithLocalPatterns(graph_, paths_);
  bool found = false;
  for (const FlowException& e : exceptions) {
    if (e.kind == FlowException::Kind::kTransition &&
        e.node == factory_ && e.transition_target == warehouse_ &&
        e.condition.size() == 1 && e.condition[0].duration == 9) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExceptionMinerDuration, FindsDurationExceptionGivenPreviousDuration) {
  // The paper's second example: the duration at the next location depends
  // on the duration at the previous one.
  std::vector<Path> paths;
  auto add = [&paths](Duration a, Duration b, int copies) {
    for (int i = 0; i < copies; ++i) {
      Path p;
      p.stages = {Stage{kFactory, a}, Stage{kStore, b}};
      paths.push_back(p);
    }
  };
  // Global durations at the store: half 1, half 2. But after a short
  // factory stay the store duration is always 1.
  add(1, 1, 10);
  add(5, 1, 0);
  add(5, 2, 10);
  const FlowGraph g = BuildFlowGraph(paths);
  const FlowNodeId f = g.FindChild(FlowGraph::kRoot, kFactory);
  const FlowNodeId fs = g.FindChild(f, kStore);

  ExceptionMiner miner(ExceptionMinerOptions{0.3, 5});
  const auto exceptions =
      miner.Mine(g, paths, {{StageCondition{f, 1}}});
  bool found = false;
  for (const FlowException& e : exceptions) {
    if (e.kind == FlowException::Kind::kDuration && e.node == fs &&
        e.duration_value == 1) {
      EXPECT_NEAR(e.global_probability, 0.5, 1e-9);
      EXPECT_NEAR(e.conditional_probability, 1.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExceptionMinerDuration, ConditionalAbsenceIsAnException) {
  std::vector<Path> paths;
  auto add = [&paths](Duration a, Duration b, int copies) {
    for (int i = 0; i < copies; ++i) {
      Path p;
      p.stages = {Stage{kFactory, a}, Stage{kStore, b}};
      paths.push_back(p);
    }
  };
  add(1, 1, 10);
  add(5, 2, 10);
  const FlowGraph g = BuildFlowGraph(paths);
  const FlowNodeId f = g.FindChild(FlowGraph::kRoot, kFactory);
  const FlowNodeId fs = g.FindChild(f, kStore);

  ExceptionMiner miner(ExceptionMinerOptions{0.4, 5});
  const auto exceptions = miner.Mine(g, paths, {{StageCondition{f, 1}}});
  // Given (factory,1), store duration 2 has conditional probability 0
  // against a global 0.5.
  bool absence = false;
  for (const FlowException& e : exceptions) {
    if (e.kind == FlowException::Kind::kDuration && e.node == fs &&
        e.duration_value == 2) {
      EXPECT_NEAR(e.conditional_probability, 0.0, 1e-9);
      absence = true;
    }
  }
  EXPECT_TRUE(absence);
}

TEST(ExceptionMinerChains, MultiStageConditionsEvaluate) {
  // Three-stage paths where the pair (factory=1, warehouse=1) makes the
  // final transition deterministic.
  std::vector<Path> paths;
  auto add = [&paths](Duration a, Duration b, NodeId last, int copies) {
    for (int i = 0; i < copies; ++i) {
      Path p;
      p.stages = {Stage{kFactory, a}, Stage{kWarehouse, b}, Stage{last, 1}};
      paths.push_back(p);
    }
  };
  add(1, 1, kStore, 10);
  add(1, 2, kFactory + 10, 10);  // location 11
  add(2, 1, kFactory + 10, 10);
  const FlowGraph g = BuildFlowGraph(paths);
  const FlowNodeId f = g.FindChild(FlowGraph::kRoot, kFactory);
  const FlowNodeId fw = g.FindChild(f, kWarehouse);

  ExceptionMiner miner(ExceptionMinerOptions{0.3, 5});
  const std::vector<StageCondition> chain = {{f, 1}, {fw, 1}};
  const auto exceptions = miner.Mine(g, paths, {chain});
  bool found = false;
  for (const FlowException& e : exceptions) {
    if (e.kind == FlowException::Kind::kTransition && e.node == fw &&
        e.transition_target == g.FindChild(fw, kStore)) {
      EXPECT_EQ(e.condition_support, 10u);
      EXPECT_NEAR(e.conditional_probability, 1.0, 1e-9);
      EXPECT_NEAR(e.global_probability, 1.0 / 3, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace flowcube
