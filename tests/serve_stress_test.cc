// Shutdown-contract and robustness stress for the FCQP server, in the
// spirit of bounded_queue_stress_test.cc: connect/disconnect churn from
// many threads, malformed frames poisoning a connection, a slow reader
// hitting the write-buffer cap, and Shutdown() landing mid-request — all
// must terminate cleanly with no leaked connections or pinned epochs
// (asan-clean; the serve label runs in the asan-ubsan CI leg).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "gen/path_generator.h"
#include "serve/client.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

// Everything a serving stack needs, with one published epoch.
struct Stack {
  std::unique_ptr<IncrementalMaintainer> maintainer;
  std::unique_ptr<SnapshotRegistry> registry;
  std::unique_ptr<QueryService> service;
};

Stack MakeStack() {
  GeneratorConfig cfg;
  cfg.num_dimensions = 2;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.min_sequence_length = 2;
  cfg.max_sequence_length = 5;
  cfg.seed = 1337;
  PathGenerator gen(cfg);

  const PathDatabase db = gen.Generate(40);
  Stack stack;
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  EXPECT_TRUE(plan.ok());
  IncrementalMaintainerOptions options;
  options.build.min_support = 2;
  Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
      db.schema_ptr(), plan.value(), options);
  EXPECT_TRUE(created.ok());
  stack.maintainer =
      std::make_unique<IncrementalMaintainer>(std::move(created.value()));
  stack.registry = std::make_unique<SnapshotRegistry>();
  AttachToRegistry(stack.maintainer.get(), stack.registry.get());
  EXPECT_TRUE(
      stack.maintainer
          ->ApplyRecords(std::span<const PathRecord>(db.records()))
          .ok());
  stack.service = std::make_unique<QueryService>(stack.registry.get());
  return stack;
}

QueryRequest StatsRequest(uint64_t id) {
  QueryRequest req;
  req.type = RequestType::kStats;
  req.request_id = id;
  return req;
}

// Spins until the event thread has reaped every closed connection. The
// bound is generous because the sanitizer CI legs run the whole suite in
// parallel on few cores; the wait exits as soon as the count matches.
void WaitForActiveConnections(const QueryServer& server, size_t want) {
  for (int i = 0; i < 30000 && server.active_connections() != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.active_connections(), want);
}

TEST(ServeStressTest, ConnectDisconnectChurn) {
  Stack stack = MakeStack();
  Result<std::unique_ptr<QueryServer>> server =
      QueryServer::Start(stack.service.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kThreads = 6;
  constexpr int kIterations = 25;
  std::atomic<int> responses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        Result<ServeClient> client =
            ServeClient::Connect((*server)->port());
        if (!client.ok()) continue;
        Result<QueryResponse> resp = client->Call(
            StatsRequest(static_cast<uint64_t>(t) * 1000 + i));
        if (resp.ok() && resp->code == Status::Code::kOk) {
          responses.fetch_add(1);
        }
        // Half the iterations disconnect abruptly with a request in
        // flight, so the server keeps meeting fresh half-open sockets.
        if (i % 2 == 0) {
          (void)client->SendRaw(
              EncodeFrame(EncodeRequest(StatsRequest(99))));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(responses.load(), kThreads * kIterations);
  WaitForActiveConnections(**server, 0);
  (*server)->Shutdown();
  EXPECT_EQ(stack.registry->live_snapshots(), 1u);
}

TEST(ServeStressTest, MalformedFramePoisonsOnlyThatConnection) {
  Stack stack = MakeStack();
  Result<std::unique_ptr<QueryServer>> server =
      QueryServer::Start(stack.service.get());
  ASSERT_TRUE(server.ok());

  Result<ServeClient> bad = ServeClient::Connect((*server)->port());
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(bad->SendRaw("this is definitely not an FCQP frame").ok());
  // The server must drop the poisoned stream...
  Result<QueryResponse> resp = bad->ReadResponse();
  EXPECT_FALSE(resp.ok());

  // ...while a healthy connection keeps working.
  Result<ServeClient> good = ServeClient::Connect((*server)->port());
  ASSERT_TRUE(good.ok());
  Result<QueryResponse> ok = good->Call(StatsRequest(1));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->code, Status::Code::kOk);
  (*server)->Shutdown();
}

TEST(ServeStressTest, SlowReaderIsDroppedAtWriteBufferCap) {
  Stack stack = MakeStack();
  ServerOptions options;
  options.max_write_buffer = 1u << 16;
  // Shrink the kernel's share of the buffering (server send side and
  // client receive side) so the backlog lands in the server's out buffer
  // where the cap can see it — with default loopback buffers the kernel
  // happily absorbs more than the cap and the drop never fires.
  options.sndbuf = 4096;
  Result<std::unique_ptr<QueryServer>> server =
      QueryServer::Start(stack.service.get(), options);
  ASSERT_TRUE(server.ok());

  Counter& dropped =
      MetricRegistry::Global().counter("serve.connections.dropped_slow");
  const uint64_t dropped_before = dropped.value();

  Result<ServeClient> client =
      ServeClient::Connect((*server)->port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(client.ok());
  // Pipeline far more responses than the cap plus the shrunken socket
  // buffers can hold, without reading any of them. A drill-down on the
  // all-* cell returns every child dump, so each response is large.
  QueryRequest drill;
  drill.type = RequestType::kDrillDown;
  drill.values = {"*", "*"};
  drill.dim = 0;
  const std::string frame = EncodeFrame(EncodeRequest(drill));
  std::string burst;
  for (int i = 0; i < 200; ++i) burst += frame;
  bool send_failed = false;
  for (int i = 0; i < 40 && dropped.value() == dropped_before; ++i) {
    if (!client->SendRaw(burst).ok()) {
      send_failed = true;  // server already reset the connection
      break;
    }
  }
  // The server must have dropped the connection rather than pinning
  // unbounded response memory. Workers may still be draining the queued
  // requests — slowly, under sanitizers with the suite running in
  // parallel — so give the counter a generous bounded window to move.
  for (int i = 0; i < 30000 && dropped.value() == dropped_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(dropped.value(), dropped_before);
  // The drop shut the socket down, so reading is bounded: buffered
  // responses, then EOF/reset — never a clean end of stream.
  if (!send_failed) {
    Result<QueryResponse> resp = client->ReadResponse();
    while (resp.ok()) resp = client->ReadResponse();
    EXPECT_FALSE(resp.ok());
  }
  WaitForActiveConnections(**server, 0);
  (*server)->Shutdown();
  EXPECT_EQ(stack.registry->live_snapshots(), 1u);
}

TEST(ServeStressTest, ShutdownMidRequestDrainsCleanly) {
  Stack stack = MakeStack();
  ServerOptions options;
  options.num_workers = 2;
  Result<std::unique_ptr<QueryServer>> server =
      QueryServer::Start(stack.service.get(), options);
  ASSERT_TRUE(server.ok());

  constexpr int kThreads = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<ServeClient> client = ServeClient::Connect((*server)->port());
      if (!client.ok()) return;
      uint64_t id = static_cast<uint64_t>(t) * 100000;
      while (!stop.load(std::memory_order_relaxed)) {
        Result<QueryResponse> resp = client->Call(StatsRequest(id++));
        if (!resp.ok()) return;  // server went away mid-request: expected
        completed.fetch_add(1);
      }
    });
  }
  // Let traffic build, then pull the plug while requests are in flight.
  while (completed.load() < 50) {
    std::this_thread::yield();
  }
  (*server)->Shutdown();
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_GT(completed.load(), 0);

  // Shutdown is idempotent and the destructor tolerates a second call.
  (*server)->Shutdown();
  server->reset();

  // No epoch leaked: with every reader gone, only the registry's own
  // current-snapshot reference remains.
  EXPECT_EQ(stack.registry->live_snapshots(), 1u);
}

TEST(ServeStressTest, ManySequentialServersReuseCleanly) {
  // Start/stop cycles must not leak fds or threads (asan/lsan-checked).
  Stack stack = MakeStack();
  for (int i = 0; i < 10; ++i) {
    Result<std::unique_ptr<QueryServer>> server =
        QueryServer::Start(stack.service.get());
    ASSERT_TRUE(server.ok());
    Result<ServeClient> client = ServeClient::Connect((*server)->port());
    ASSERT_TRUE(client.ok());
    Result<QueryResponse> resp = client->Call(StatsRequest(i));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, Status::Code::kOk);
  }
  EXPECT_EQ(stack.registry->live_snapshots(), 1u);
}

}  // namespace
}  // namespace flowcube
