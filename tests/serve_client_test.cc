// ServeClient failure vocabulary and the QueryService lookup cache.
//
// The client's statuses are load-bearing for the shard coordinator's
// partial-failure reporting: kUnavailable (refused), kDeadlineExceeded
// (connect/read timeout), kInvalidArgument (poisoned frame), kInternal
// (server closed mid-conversation) each travel through RemoteShardBackend
// into coordinator responses, so this suite pins the exact code for each
// failure class against real sockets.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "flowcube/builder.h"
#include "gen/paper_example.h"
#include "serve/client.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"

namespace flowcube {
namespace {

// A loopback listener managed with raw sockets, so tests can produce
// server behaviors a real QueryServer never exhibits: never answering,
// sending garbage, or closing immediately.
class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd_, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() { Close(); }

  uint16_t port() const { return port_; }

  int Accept() { return ::accept(fd_, nullptr, nullptr); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// A loopback port with nothing listening on it: bind, read the port back,
// close. Nothing re-binds it within the test, so connects are refused.
uint16_t ClosedPort() {
  RawListener listener;
  const uint16_t port = listener.port();
  listener.Close();
  return port;
}

QueryRequest StatsRequest() {
  QueryRequest request;
  request.type = RequestType::kStats;
  request.request_id = 7;
  return request;
}

TEST(ServeClientTest, RefusedConnectIsUnavailable) {
  Result<ServeClient> client = ServeClient::Connect(ClosedPort());
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), Status::Code::kUnavailable);
}

TEST(ServeClientTest, RefusedConnectStaysUnavailableAfterRetries) {
  ClientOptions options;
  options.reconnect_attempts = 3;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 4;
  Result<ServeClient> client = ServeClient::Connect(ClosedPort(), options);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), Status::Code::kUnavailable);
}

TEST(ServeClientTest, ReadTimeoutIsDeadlineExceeded) {
  // The listener's backlog completes the TCP handshake but the "server"
  // never reads or answers, so the request send succeeds and the read must
  // time out — distinctly from refused and from closed.
  RawListener listener;
  ClientOptions options;
  options.read_timeout_ms = 50;
  Result<ServeClient> client = ServeClient::Connect(listener.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<QueryResponse> response = client->Call(StatsRequest());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(response.status().message(), "read timed out awaiting response");
}

TEST(ServeClientTest, PoisonedFrameIsInvalidArgument) {
  RawListener listener;
  std::thread server([&] {
    const int fd = listener.Accept();
    ASSERT_GE(fd, 0);
    // A full header of 0xFF cannot carry the FCQP magic.
    const std::string garbage(64, '\xFF');
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    ::close(fd);
  });
  Result<ServeClient> client = ServeClient::Connect(listener.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<QueryResponse> response = client->ReadResponse();
  server.join();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(response.status().message(), "malformed frame: bad magic");
}

TEST(ServeClientTest, ServerCloseIsInternal) {
  RawListener listener;
  std::thread server([&] {
    const int fd = listener.Accept();
    ASSERT_GE(fd, 0);
    ::close(fd);
  });
  Result<ServeClient> client = ServeClient::Connect(listener.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  server.join();
  Result<QueryResponse> response = client->Call(StatsRequest());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kInternal);
  EXPECT_EQ(response.status().message(), "connection closed by server");
}

TEST(ServeClientTest, ReconnectBackoffRidesOutLateServerStart) {
  // The server comes up only after the client's first attempts have been
  // refused; bounded reconnect-with-backoff must land the connection once
  // it is listening, and a real Call must then complete.
  const uint16_t port = ClosedPort();
  SnapshotRegistry registry;
  QueryService service(&registry);
  std::unique_ptr<QueryServer> server;
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    ServerOptions options;
    options.port = port;
    Result<std::unique_ptr<QueryServer>> started =
        QueryServer::Start(&service, options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(started.value());
  });
  ClientOptions options;
  options.reconnect_attempts = 50;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 20;
  options.read_timeout_ms = 5000;
  Result<ServeClient> client = ServeClient::Connect(port, options);
  starter.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<QueryResponse> response = client->Call(StatsRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // No snapshot was published; the error must still arrive as a response.
  EXPECT_EQ(response->code, Status::Code::kFailedPrecondition);
  client->Close();
  server->Shutdown();
}

// --- QueryService lookup cache ---------------------------------------------

std::shared_ptr<const FlowCube> BuildPaperCube() {
  PathDatabase db = MakePaperDatabase();
  FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  FlowCubeBuilderOptions options;
  options.min_support = 1;
  options.compute_exceptions = false;
  FlowCubeBuilder builder(options);
  Result<FlowCube> cube = builder.Build(db, plan);
  EXPECT_TRUE(cube.ok());
  return std::make_shared<const FlowCube>(std::move(cube.value()));
}

QueryRequest Lookup(const std::vector<std::string>& values) {
  QueryRequest request;
  request.type = RequestType::kPointLookup;
  request.request_id = 1;
  request.values = values;
  return request;
}

TEST(QueryServiceCacheTest, RepeatLookupHitsWithinOneEpoch) {
  SnapshotRegistry registry;
  registry.Publish(BuildPaperCube(), 10);
  QueryServiceOptions options;
  options.cell_cache_capacity = 8;
  QueryService service(&registry, options);

  ScopedEpoch epoch;
  Counter& hits = MetricRegistry::Global().counter("serve.cell_cache_hits");
  Counter& misses =
      MetricRegistry::Global().counter("serve.cell_cache_misses");

  const QueryResponse first = service.Execute(Lookup({"shoes", "nike"}));
  ASSERT_EQ(first.code, Status::Code::kOk);
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(misses.value(), 1u);

  QueryRequest repeat = Lookup({"shoes", "nike"});
  repeat.request_id = 2;
  const QueryResponse second = service.Execute(repeat);
  EXPECT_EQ(hits.value(), 1u);
  EXPECT_EQ(misses.value(), 1u);
  // A cached response is the original body at the original epoch, with the
  // request id of the request that hit.
  EXPECT_EQ(second.request_id, 2u);
  EXPECT_EQ(second.epoch, first.epoch);
  EXPECT_EQ(second.body, first.body);

  // A different key misses; errors are not cached.
  service.Execute(Lookup({"outerwear", "nike"}));
  EXPECT_EQ(misses.value(), 2u);
  const QueryResponse miss = service.Execute(Lookup({"no-such", "nike"}));
  EXPECT_EQ(miss.code, Status::Code::kNotFound);
  service.Execute(Lookup({"no-such", "nike"}));
  EXPECT_EQ(hits.value(), 1u);
  EXPECT_EQ(misses.value(), 4u);
}

TEST(QueryServiceCacheTest, NewEpochInvalidatesByKey) {
  SnapshotRegistry registry;
  registry.Publish(BuildPaperCube(), 10);
  QueryServiceOptions options;
  options.cell_cache_capacity = 8;
  QueryService service(&registry, options);

  ScopedEpoch epoch;
  Counter& hits = MetricRegistry::Global().counter("serve.cell_cache_hits");
  Counter& misses =
      MetricRegistry::Global().counter("serve.cell_cache_misses");

  service.Execute(Lookup({"shoes", "nike"}));
  registry.Publish(BuildPaperCube(), 20);
  const QueryResponse after = service.Execute(Lookup({"shoes", "nike"}));
  // The epoch is part of the cache key, so the stale entry cannot answer.
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(misses.value(), 2u);
}

TEST(QueryServiceCacheTest, CapacityEvictsLeastRecentlyUsed) {
  SnapshotRegistry registry;
  registry.Publish(BuildPaperCube(), 10);
  QueryServiceOptions options;
  options.cell_cache_capacity = 1;
  QueryService service(&registry, options);

  ScopedEpoch epoch;
  Counter& hits = MetricRegistry::Global().counter("serve.cell_cache_hits");
  Counter& misses =
      MetricRegistry::Global().counter("serve.cell_cache_misses");

  service.Execute(Lookup({"shoes", "nike"}));
  service.Execute(Lookup({"outerwear", "nike"}));  // evicts shoes
  service.Execute(Lookup({"shoes", "nike"}));      // miss again
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(misses.value(), 3u);
  service.Execute(Lookup({"shoes", "nike"}));
  EXPECT_EQ(hits.value(), 1u);
}

TEST(QueryServiceCacheTest, ZeroCapacityDisablesTheCache) {
  SnapshotRegistry registry;
  registry.Publish(BuildPaperCube(), 10);
  QueryServiceOptions options;
  options.cell_cache_capacity = 0;
  QueryService service(&registry, options);

  ScopedEpoch epoch;
  Counter& hits = MetricRegistry::Global().counter("serve.cell_cache_hits");
  Counter& misses =
      MetricRegistry::Global().counter("serve.cell_cache_misses");
  service.Execute(Lookup({"shoes", "nike"}));
  service.Execute(Lookup({"shoes", "nike"}));
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(misses.value(), 0u);
}

}  // namespace
}  // namespace flowcube
