#include "flowgraph/merge.h"

namespace flowcube {

void MergeInto(const FlowGraph& src, FlowGraph* dst) {
  dst->MergeFrom(src);
}

FlowGraph MergeFlowGraphs(std::span<const FlowGraph* const> graphs) {
  FlowGraph out;
  for (const FlowGraph* g : graphs) {
    out.MergeFrom(*g);
  }
  return out;
}

}  // namespace flowcube
