#include "flowgraph/merge.h"

#include "common/audit.h"

namespace flowcube {

void MergeInto(const FlowGraph& src, FlowGraph* dst) {
  dst->MergeFrom(src);
  FC_AUDIT(AuditFlowGraph(*dst));
}

FlowGraph MergeFlowGraphs(std::span<const FlowGraph* const> graphs) {
  FlowGraph out;
  for (const FlowGraph* g : graphs) {
    out.MergeFrom(*g);
  }
  FC_AUDIT(AuditFlowGraph(out));
  return out;
}

}  // namespace flowcube
