#include "flowgraph/similarity.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/logging.h"

namespace flowcube {
namespace {

constexpr double kLn2 = 0.6931471805599453;

// One outcome of a categorical distribution keyed by int64 (locations cast
// up, kTerminate mapped to a sentinel, durations as-is). Distributions are
// flat vectors sorted by key ascending — the same iteration order the
// std::map-based implementation had, so every floating-point sum is
// performed in the identical order and distances stay bit-identical.
struct Outcome {
  int64_t key = 0;
  double p = 0.0;
};

using Categorical = std::span<const Outcome>;

// Merges p and q into aligned probability columns over their key union in
// ascending key order, 0.0 on the side missing a key. One merge pass feeds
// every divergence accumulation (the map-callback form walked the union
// once per direction); the columns then run through tight batch loops.
// Returns the union size.
size_t MergeUnion(Categorical p, Categorical q, std::vector<double>* pv,
                  std::vector<double>* qv) {
  pv->clear();
  qv->clear();
  pv->reserve(p.size() + q.size());
  qv->reserve(p.size() + q.size());
  size_t i = 0;
  size_t j = 0;
  while (i < p.size() || j < q.size()) {
    if (j == q.size() || (i < p.size() && p[i].key < q[j].key)) {
      pv->push_back(p[i].p);
      qv->push_back(0.0);
      ++i;
    } else if (i == p.size() || q[j].key < p[i].key) {
      pv->push_back(0.0);
      qv->push_back(q[j].p);
      ++j;
    } else {
      pv->push_back(p[i].p);
      qv->push_back(q[j].p);
      ++i;
      ++j;
    }
  }
  return pv->size();
}

// KL(p || q) over aligned union columns, with additive smoothing across the
// union support. Accumulates left to right — the union's ascending key
// order — so results match the merge-callback implementation bit for bit.
double KlBatch(const double* pv, const double* qv, size_t n,
               double smoothing) {
  const double denom = 1.0 + smoothing * static_cast<double>(n);
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pp = (pv[i] + smoothing) / denom;
    const double qq = (qv[i] + smoothing) / denom;
    d += pp * std::log(pp / qq);
  }
  return d;
}

// Jensen-Shannon divergence normalized to [0, 1], over aligned columns.
double JsBatch(const double* pv, const double* qv, size_t n) {
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pp = pv[i];
    const double qq = qv[i];
    const double m = 0.5 * (pp + qq);
    if (pp > 0.0) d += 0.5 * pp * std::log(pp / m);
    if (qq > 0.0) d += 0.5 * qq * std::log(qq / m);
  }
  return d / kLn2;
}

// Reusable scratch buffers so the recursion allocates only on the deepest
// first descent: the two flat distributions plus their aligned union
// columns.
struct Scratch {
  std::vector<Outcome> lhs;
  std::vector<Outcome> rhs;
  std::vector<double> pv;
  std::vector<double> qv;
};

double Divergence(Categorical p, Categorical q,
                  const SimilarityOptions& options, Scratch* scratch) {
  const size_t n = MergeUnion(p, q, &scratch->pv, &scratch->qv);
  const double* pv = scratch->pv.data();
  const double* qv = scratch->qv.data();
  switch (options.kind) {
    case DivergenceKind::kJensenShannon:
      return JsBatch(pv, qv, n);
    case DivergenceKind::kKullbackLeibler:
      // Both directions run over the same merged columns.
      return 0.5 * (KlBatch(pv, qv, n, options.kl_smoothing) +
                    KlBatch(qv, pv, n, options.kl_smoothing));
  }
  return 0.0;
}

// The maximal value a divergence can take, used for unmatched branches.
double MaxDivergence(const SimilarityOptions& options, Scratch* scratch) {
  switch (options.kind) {
    case DivergenceKind::kJensenShannon:
      return 1.0;
    case DivergenceKind::kKullbackLeibler: {
      // Disjoint binary supports under the configured smoothing.
      const Outcome zero[] = {{0, 1.0}};
      const Outcome one[] = {{1, 1.0}};
      const size_t n = MergeUnion(zero, one, &scratch->pv, &scratch->qv);
      return KlBatch(scratch->pv.data(), scratch->qv.data(), n,
                     options.kl_smoothing);
    }
  }
  return 1.0;
}

constexpr int64_t kTerminateKey = -1;

// Gathers a node's transition distribution straight from the columnar
// storage: the children span plus the path_count/terminate_count columns,
// one division per outcome (the exact arithmetic of
// FlowGraph::TransitionProbability, minus its per-call checks).
void FillTransitionCategorical(const FlowGraph& g, FlowNodeId n,
                               std::vector<Outcome>* out) {
  out->clear();
  const std::span<const FlowNodeId> kids = g.children(n);
  out->reserve(kids.size() + 1);
  const uint32_t paths = g.path_count(n);
  if (paths == 0) {
    out->push_back({kTerminateKey, 0.0});
    for (FlowNodeId c : kids) {
      out->push_back({static_cast<int64_t>(g.location(c)), 0.0});
    }
  } else {
    out->push_back(
        {kTerminateKey, static_cast<double>(g.terminate_count(n)) / paths});
    for (FlowNodeId c : kids) {
      out->push_back({static_cast<int64_t>(g.location(c)),
                      static_cast<double>(g.path_count(c)) / paths});
    }
  }
  // Children are in insertion order; the flat distribution must be sorted by
  // key (the terminate sentinel -1 stays first). Locations are unique among
  // siblings, so the sort is a permutation with no ties.
  std::sort(out->begin(), out->end(),
            [](const Outcome& a, const Outcome& b) { return a.key < b.key; });
}

void FillDurationCategorical(const FlowGraph& g, FlowNodeId n,
                             std::vector<Outcome>* out) {
  out->clear();
  const std::span<const DurationCount> counts = g.duration_counts(n);
  out->reserve(counts.size());
  const double total = g.path_count(n);
  // duration_counts are sorted by duration already — a straight linear copy.
  for (const DurationCount& dc : counts) {
    out->push_back({dc.duration, dc.count / total});
  }
}

struct Accumulator {
  double weighted_divergence = 0.0;
  double total_weight = 0.0;
};

double ReachProbability(const FlowGraph& g, FlowNodeId n) {
  if (g.total_paths() == 0) return 0.0;
  return static_cast<double>(g.path_count(n)) / g.total_paths();
}

// Recursively matches nodes of `a` and `b` by location and accumulates
// weighted divergences; `na`/`nb` are matched nodes (or kTerminate when one
// side has no counterpart). `max_divergence` is MaxDivergence(options),
// computed once per distance call.
void Accumulate(const FlowGraph& a, const FlowGraph& b, FlowNodeId na,
                FlowNodeId nb, const SimilarityOptions& options,
                double max_divergence, Scratch* scratch, Accumulator* acc) {
  const bool in_a = na != FlowGraph::kTerminate;
  const bool in_b = nb != FlowGraph::kTerminate;
  FC_CHECK(in_a || in_b);
  const double wa = in_a ? ReachProbability(a, na) : 0.0;
  const double wb = in_b ? ReachProbability(b, nb) : 0.0;
  const double w = 0.5 * (wa + wb);
  if (w <= 0.0) return;

  if (in_a && in_b) {
    FillTransitionCategorical(a, na, &scratch->lhs);
    FillTransitionCategorical(b, nb, &scratch->rhs);
    const double dt = Divergence(scratch->lhs, scratch->rhs, options, scratch);
    if (na == FlowGraph::kRoot) {
      // The root has no stay duration; only its transition mix counts.
      acc->weighted_divergence += w * dt;
    } else {
      FillDurationCategorical(a, na, &scratch->lhs);
      FillDurationCategorical(b, nb, &scratch->rhs);
      const double dd =
          Divergence(scratch->lhs, scratch->rhs, options, scratch);
      acc->weighted_divergence += w * 0.5 * (dt + dd);
    }
    acc->total_weight += w;
    // Recurse on the union of child locations.
    for (FlowNodeId ca : a.children(na)) {
      Accumulate(a, b, ca, b.FindChild(nb, a.location(ca)), options,
                 max_divergence, scratch, acc);
    }
    for (FlowNodeId cb : b.children(nb)) {
      if (a.FindChild(na, b.location(cb)) == FlowGraph::kTerminate) {
        Accumulate(a, b, FlowGraph::kTerminate, cb, options, max_divergence,
                   scratch, acc);
      }
    }
    return;
  }

  // Branch present in only one graph: maximal disagreement, weighted by the
  // reach probability on the side that has it; no recursion needed (the
  // whole subtree is unmatched and its weight is bounded by this node's).
  acc->weighted_divergence += w * max_divergence;
  acc->total_weight += w;
}

}  // namespace

double FlowGraphDistance(const FlowGraph& a, const FlowGraph& b,
                         const SimilarityOptions& options) {
  Scratch scratch;
  if (a.total_paths() == 0 && b.total_paths() == 0) return 0.0;
  if (a.total_paths() == 0 || b.total_paths() == 0) {
    return MaxDivergence(options, &scratch);
  }
  Accumulator acc;
  const double max_divergence = MaxDivergence(options, &scratch);
  Accumulate(a, b, FlowGraph::kRoot, FlowGraph::kRoot, options,
             max_divergence, &scratch, &acc);
  if (acc.total_weight <= 0.0) return 0.0;
  return acc.weighted_divergence / acc.total_weight;
}

}  // namespace flowcube
