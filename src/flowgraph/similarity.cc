#include "flowgraph/similarity.h"

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace flowcube {
namespace {

constexpr double kLn2 = 0.6931471805599453;

// A categorical distribution keyed by int64 outcomes (locations cast up,
// kTerminate mapped to a sentinel, durations as-is).
using Categorical = std::map<int64_t, double>;

double KlDivergence(const Categorical& p, const Categorical& q,
                    double smoothing) {
  // Support union with additive smoothing.
  Categorical keys = p;
  for (const auto& [k, v] : q) keys.emplace(k, 0.0);
  const double n = static_cast<double>(keys.size());
  double d = 0.0;
  for (const auto& [k, unused] : keys) {
    const auto pi = p.find(k);
    const auto qi = q.find(k);
    const double pp =
        ((pi != p.end() ? pi->second : 0.0) + smoothing) / (1.0 + smoothing * n);
    const double qq =
        ((qi != q.end() ? qi->second : 0.0) + smoothing) / (1.0 + smoothing * n);
    d += pp * std::log(pp / qq);
  }
  return d;
}

// Jensen-Shannon divergence normalized to [0, 1].
double JsDivergence(const Categorical& p, const Categorical& q) {
  Categorical keys = p;
  for (const auto& [k, v] : q) keys.emplace(k, 0.0);
  double d = 0.0;
  for (const auto& [k, unused] : keys) {
    const auto pi = p.find(k);
    const auto qi = q.find(k);
    const double pp = pi != p.end() ? pi->second : 0.0;
    const double qq = qi != q.end() ? qi->second : 0.0;
    const double m = 0.5 * (pp + qq);
    if (pp > 0.0) d += 0.5 * pp * std::log(pp / m);
    if (qq > 0.0) d += 0.5 * qq * std::log(qq / m);
  }
  return d / kLn2;
}

double Divergence(const Categorical& p, const Categorical& q,
                  const SimilarityOptions& options) {
  switch (options.kind) {
    case DivergenceKind::kJensenShannon:
      return JsDivergence(p, q);
    case DivergenceKind::kKullbackLeibler:
      return 0.5 * (KlDivergence(p, q, options.kl_smoothing) +
                    KlDivergence(q, p, options.kl_smoothing));
  }
  return 0.0;
}

// The maximal value a divergence can take, used for unmatched branches.
double MaxDivergence(const SimilarityOptions& options) {
  switch (options.kind) {
    case DivergenceKind::kJensenShannon:
      return 1.0;
    case DivergenceKind::kKullbackLeibler:
      // Disjoint binary supports under the configured smoothing.
      return KlDivergence({{0, 1.0}}, {{1, 1.0}}, options.kl_smoothing);
  }
  return 1.0;
}

constexpr int64_t kTerminateKey = -1;

Categorical TransitionCategorical(const FlowGraph& g, FlowNodeId n) {
  Categorical out;
  for (FlowNodeId c : g.children(n)) {
    out[static_cast<int64_t>(g.location(c))] = g.TransitionProbability(n, c);
  }
  out[kTerminateKey] = g.TransitionProbability(n, FlowGraph::kTerminate);
  return out;
}

Categorical DurationCategorical(const FlowGraph& g, FlowNodeId n) {
  Categorical out;
  const double total = g.path_count(n);
  for (const auto& [d, c] : g.duration_counts(n)) {
    out[d] = c / total;
  }
  return out;
}

struct Accumulator {
  double weighted_divergence = 0.0;
  double total_weight = 0.0;
};

double ReachProbability(const FlowGraph& g, FlowNodeId n) {
  if (g.total_paths() == 0) return 0.0;
  return static_cast<double>(g.path_count(n)) / g.total_paths();
}

// Recursively matches nodes of `a` and `b` by location and accumulates
// weighted divergences; `na`/`nb` are matched nodes (or kTerminate when one
// side has no counterpart).
void Accumulate(const FlowGraph& a, const FlowGraph& b, FlowNodeId na,
                FlowNodeId nb, const SimilarityOptions& options,
                Accumulator* acc) {
  const bool in_a = na != FlowGraph::kTerminate;
  const bool in_b = nb != FlowGraph::kTerminate;
  FC_CHECK(in_a || in_b);
  const double wa = in_a ? ReachProbability(a, na) : 0.0;
  const double wb = in_b ? ReachProbability(b, nb) : 0.0;
  const double w = 0.5 * (wa + wb);
  if (w <= 0.0) return;

  if (in_a && in_b) {
    const double dt = Divergence(TransitionCategorical(a, na),
                                 TransitionCategorical(b, nb), options);
    if (na == FlowGraph::kRoot) {
      // The root has no stay duration; only its transition mix counts.
      acc->weighted_divergence += w * dt;
    } else {
      const double dd = Divergence(DurationCategorical(a, na),
                                   DurationCategorical(b, nb), options);
      acc->weighted_divergence += w * 0.5 * (dt + dd);
    }
    acc->total_weight += w;
    // Recurse on the union of child locations.
    for (FlowNodeId ca : a.children(na)) {
      Accumulate(a, b, ca, b.FindChild(nb, a.location(ca)), options, acc);
    }
    for (FlowNodeId cb : b.children(nb)) {
      if (a.FindChild(na, b.location(cb)) == FlowGraph::kTerminate) {
        Accumulate(a, b, FlowGraph::kTerminate, cb, options, acc);
      }
    }
    return;
  }

  // Branch present in only one graph: maximal disagreement, weighted by the
  // reach probability on the side that has it; no recursion needed (the
  // whole subtree is unmatched and its weight is bounded by this node's).
  acc->weighted_divergence += w * MaxDivergence(options);
  acc->total_weight += w;
}

}  // namespace

double FlowGraphDistance(const FlowGraph& a, const FlowGraph& b,
                         const SimilarityOptions& options) {
  if (a.total_paths() == 0 && b.total_paths() == 0) return 0.0;
  if (a.total_paths() == 0 || b.total_paths() == 0) {
    return MaxDivergence(options);
  }
  Accumulator acc;
  Accumulate(a, b, FlowGraph::kRoot, FlowGraph::kRoot, options, &acc);
  if (acc.total_weight <= 0.0) return 0.0;
  return acc.weighted_divergence / acc.total_weight;
}

}  // namespace flowcube
