#include "flowgraph/similarity.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/logging.h"

namespace flowcube {
namespace {

constexpr double kLn2 = 0.6931471805599453;

// One outcome of a categorical distribution keyed by int64 (locations cast
// up, kTerminate mapped to a sentinel, durations as-is). Distributions are
// flat vectors sorted by key ascending — the same iteration order the
// std::map-based implementation had, so every floating-point sum is
// performed in the identical order and distances stay bit-identical.
struct Outcome {
  int64_t key = 0;
  double p = 0.0;
};

using Categorical = std::span<const Outcome>;

// Calls fn(pp, qq) for every key in the union of p's and q's keys, in
// ascending key order, with 0.0 for the side missing the key.
template <typename Fn>
void ForEachUnion(Categorical p, Categorical q, Fn&& fn) {
  size_t i = 0;
  size_t j = 0;
  while (i < p.size() || j < q.size()) {
    if (j == q.size() || (i < p.size() && p[i].key < q[j].key)) {
      fn(p[i].p, 0.0);
      ++i;
    } else if (i == p.size() || q[j].key < p[i].key) {
      fn(0.0, q[j].p);
      ++j;
    } else {
      fn(p[i].p, q[j].p);
      ++i;
      ++j;
    }
  }
}

double KlDivergence(Categorical p, Categorical q, double smoothing) {
  // Support union with additive smoothing.
  size_t union_size = 0;
  ForEachUnion(p, q, [&](double, double) { ++union_size; });
  const double n = static_cast<double>(union_size);
  double d = 0.0;
  ForEachUnion(p, q, [&](double pv, double qv) {
    const double pp = (pv + smoothing) / (1.0 + smoothing * n);
    const double qq = (qv + smoothing) / (1.0 + smoothing * n);
    d += pp * std::log(pp / qq);
  });
  return d;
}

// Jensen-Shannon divergence normalized to [0, 1].
double JsDivergence(Categorical p, Categorical q) {
  double d = 0.0;
  ForEachUnion(p, q, [&](double pp, double qq) {
    const double m = 0.5 * (pp + qq);
    if (pp > 0.0) d += 0.5 * pp * std::log(pp / m);
    if (qq > 0.0) d += 0.5 * qq * std::log(qq / m);
  });
  return d / kLn2;
}

double Divergence(Categorical p, Categorical q,
                  const SimilarityOptions& options) {
  switch (options.kind) {
    case DivergenceKind::kJensenShannon:
      return JsDivergence(p, q);
    case DivergenceKind::kKullbackLeibler:
      return 0.5 * (KlDivergence(p, q, options.kl_smoothing) +
                    KlDivergence(q, p, options.kl_smoothing));
  }
  return 0.0;
}

// The maximal value a divergence can take, used for unmatched branches.
double MaxDivergence(const SimilarityOptions& options) {
  switch (options.kind) {
    case DivergenceKind::kJensenShannon:
      return 1.0;
    case DivergenceKind::kKullbackLeibler: {
      // Disjoint binary supports under the configured smoothing.
      const Outcome zero[] = {{0, 1.0}};
      const Outcome one[] = {{1, 1.0}};
      return KlDivergence(zero, one, options.kl_smoothing);
    }
  }
  return 1.0;
}

constexpr int64_t kTerminateKey = -1;

void FillTransitionCategorical(const FlowGraph& g, FlowNodeId n,
                               std::vector<Outcome>* out) {
  out->clear();
  out->push_back({kTerminateKey, g.TransitionProbability(n, FlowGraph::kTerminate)});
  for (FlowNodeId c : g.children(n)) {
    out->push_back({static_cast<int64_t>(g.location(c)),
                    g.TransitionProbability(n, c)});
  }
  // Children are in insertion order; the flat distribution must be sorted by
  // key (the terminate sentinel -1 stays first). Locations are unique among
  // siblings, so the sort is a permutation with no ties.
  std::sort(out->begin(), out->end(),
            [](const Outcome& a, const Outcome& b) { return a.key < b.key; });
}

void FillDurationCategorical(const FlowGraph& g, FlowNodeId n,
                             std::vector<Outcome>* out) {
  out->clear();
  const double total = g.path_count(n);
  // duration_counts are sorted by duration already — a straight linear copy.
  for (const DurationCount& dc : g.duration_counts(n)) {
    out->push_back({dc.duration, dc.count / total});
  }
}

struct Accumulator {
  double weighted_divergence = 0.0;
  double total_weight = 0.0;
};

// Reusable scratch buffers so the recursion allocates only on the deepest
// first descent.
struct Scratch {
  std::vector<Outcome> lhs;
  std::vector<Outcome> rhs;
};

double ReachProbability(const FlowGraph& g, FlowNodeId n) {
  if (g.total_paths() == 0) return 0.0;
  return static_cast<double>(g.path_count(n)) / g.total_paths();
}

// Recursively matches nodes of `a` and `b` by location and accumulates
// weighted divergences; `na`/`nb` are matched nodes (or kTerminate when one
// side has no counterpart).
void Accumulate(const FlowGraph& a, const FlowGraph& b, FlowNodeId na,
                FlowNodeId nb, const SimilarityOptions& options,
                Scratch* scratch, Accumulator* acc) {
  const bool in_a = na != FlowGraph::kTerminate;
  const bool in_b = nb != FlowGraph::kTerminate;
  FC_CHECK(in_a || in_b);
  const double wa = in_a ? ReachProbability(a, na) : 0.0;
  const double wb = in_b ? ReachProbability(b, nb) : 0.0;
  const double w = 0.5 * (wa + wb);
  if (w <= 0.0) return;

  if (in_a && in_b) {
    FillTransitionCategorical(a, na, &scratch->lhs);
    FillTransitionCategorical(b, nb, &scratch->rhs);
    const double dt = Divergence(scratch->lhs, scratch->rhs, options);
    if (na == FlowGraph::kRoot) {
      // The root has no stay duration; only its transition mix counts.
      acc->weighted_divergence += w * dt;
    } else {
      FillDurationCategorical(a, na, &scratch->lhs);
      FillDurationCategorical(b, nb, &scratch->rhs);
      const double dd = Divergence(scratch->lhs, scratch->rhs, options);
      acc->weighted_divergence += w * 0.5 * (dt + dd);
    }
    acc->total_weight += w;
    // Recurse on the union of child locations.
    for (FlowNodeId ca : a.children(na)) {
      Accumulate(a, b, ca, b.FindChild(nb, a.location(ca)), options, scratch,
                 acc);
    }
    for (FlowNodeId cb : b.children(nb)) {
      if (a.FindChild(na, b.location(cb)) == FlowGraph::kTerminate) {
        Accumulate(a, b, FlowGraph::kTerminate, cb, options, scratch, acc);
      }
    }
    return;
  }

  // Branch present in only one graph: maximal disagreement, weighted by the
  // reach probability on the side that has it; no recursion needed (the
  // whole subtree is unmatched and its weight is bounded by this node's).
  acc->weighted_divergence += w * MaxDivergence(options);
  acc->total_weight += w;
}

}  // namespace

double FlowGraphDistance(const FlowGraph& a, const FlowGraph& b,
                         const SimilarityOptions& options) {
  if (a.total_paths() == 0 && b.total_paths() == 0) return 0.0;
  if (a.total_paths() == 0 || b.total_paths() == 0) {
    return MaxDivergence(options);
  }
  Accumulator acc;
  Scratch scratch;
  Accumulate(a, b, FlowGraph::kRoot, FlowGraph::kRoot, options, &scratch,
             &acc);
  if (acc.total_weight <= 0.0) return 0.0;
  return acc.weighted_divergence / acc.total_weight;
}

}  // namespace flowcube
