#ifndef FLOWCUBE_FLOWGRAPH_BUILDER_H_
#define FLOWCUBE_FLOWGRAPH_BUILDER_H_

#include "flowgraph/flowgraph.h"
#include "path/path_view.h"

namespace flowcube {

// Builds the duration/transition component of a flowgraph from a collection
// of (already aggregated) paths in a single scan — steps (1) and (2) of the
// construction recipe in paper Section 3. Exceptions (step 3) are mined
// separately by ExceptionMiner. The view may gather cell members out of a
// shared aggregation table; nothing is copied.
FlowGraph BuildFlowGraph(PathView paths);

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_BUILDER_H_
