#ifndef FLOWCUBE_FLOWGRAPH_BUILDER_H_
#define FLOWCUBE_FLOWGRAPH_BUILDER_H_

#include <span>

#include "flowgraph/flowgraph.h"

namespace flowcube {

// Builds the duration/transition component of a flowgraph from a collection
// of (already aggregated) paths in a single scan — steps (1) and (2) of the
// construction recipe in paper Section 3. Exceptions (step 3) are mined
// separately by ExceptionMiner.
FlowGraph BuildFlowGraph(std::span<const Path> paths);

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_BUILDER_H_
