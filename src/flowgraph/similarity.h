#ifndef FLOWCUBE_FLOWGRAPH_SIMILARITY_H_
#define FLOWCUBE_FLOWGRAPH_SIMILARITY_H_

#include "flowgraph/flowgraph.h"

namespace flowcube {

// Which divergence is used to compare per-node distributions. The paper
// (Section 4.3) suggests KL divergence of the induced distributions but
// leaves the metric phi application-defined; Jensen-Shannon is our default
// because it is symmetric and bounded (which makes the redundancy
// threshold tau easy to pick), while smoothed KL is available for fidelity
// with the paper's suggestion.
enum class DivergenceKind {
  kJensenShannon,
  kKullbackLeibler,
};

struct SimilarityOptions {
  DivergenceKind kind = DivergenceKind::kJensenShannon;
  // Additive smoothing applied to KL so that unseen outcomes do not produce
  // infinities. Ignored for Jensen-Shannon.
  double kl_smoothing = 1e-6;
};

// Distance between two flowgraphs: the reach-probability-weighted average of
// the per-node divergences of their transition and duration distributions,
// taken over the union of their trees (a branch present in only one graph
// contributes the maximal divergence, weighted by its reach probability).
//
// Jensen-Shannon divergences are normalized by ln 2, so the distance lies
// in [0, 1]: 0 means the graphs induce identical distributions; 1 means
// they disagree completely. A cell's flowgraph is *redundant* w.r.t. its
// parents when the distance to each parent is <= tau (Definition 4.4,
// phrased as a distance rather than a similarity).
double FlowGraphDistance(const FlowGraph& a, const FlowGraph& b,
                         const SimilarityOptions& options = {});

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_SIMILARITY_H_
