#ifndef FLOWCUBE_FLOWGRAPH_EXCEPTION_MINER_H_
#define FLOWCUBE_FLOWGRAPH_EXCEPTION_MINER_H_

#include <vector>

#include "flowgraph/flowgraph.h"
#include "path/path_view.h"

namespace flowcube {

// Parameters of exception mining (paper Section 3): epsilon is the minimum
// deviation of a duration or transition probability required to record an
// exception; delta (min_support) is the minimum number of paths that must
// match the conditioning prefix, preventing exceptions dominated by noise.
struct ExceptionMinerOptions {
  double epsilon = 0.2;
  uint32_t min_support = 2;
};

// Mines the exception set X of a flowgraph — step (3) of the construction
// recipe in Section 3. Given frequent path-prefix patterns (each a chain of
// (node, duration) constraints along one branch), it computes the
// conditional transition distribution at the deepest conditioned node and
// the conditional duration distribution at each of its children, and
// records every probability deviating from the flowgraph's general
// distribution by at least epsilon.
class ExceptionMiner {
 public:
  explicit ExceptionMiner(ExceptionMinerOptions options);

  // Evaluates externally mined patterns (e.g. the per-cell frequent path
  // segments found by algorithm Shared, mapped into `g`'s node space). Each
  // pattern must be sorted by node depth, with all nodes on one branch of
  // `g`. `paths` must be the same collection `g` was built from.
  std::vector<FlowException> Mine(
      const FlowGraph& g, PathView paths,
      const std::vector<std::vector<StageCondition>>& patterns) const;

  // Self-contained variant: first mines the frequent (node, duration)
  // chains of `paths` with Apriori at min_support, then evaluates them.
  // This is what standalone flowgraph construction (outside a flowcube)
  // uses.
  std::vector<FlowException> MineWithLocalPatterns(
      const FlowGraph& g, PathView paths) const;

 private:
  ExceptionMinerOptions options_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_EXCEPTION_MINER_H_
