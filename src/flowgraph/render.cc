#include "flowgraph/render.h"

#include "common/string_util.h"

namespace flowcube {
namespace {

std::string DurationDist(const FlowGraph& g, const PathSchema& schema,
                         FlowNodeId n, int digits) {
  std::vector<std::string> parts;
  const double total = g.path_count(n);
  for (const auto& [d, c] : g.duration_counts(n)) {
    parts.push_back(schema.durations.ToString(d) + ":" +
                    FormatDouble(c / total, digits));
  }
  return "dur{" + StrJoin(parts, ", ") + "}";
}

void RenderNode(const FlowGraph& g, const PathSchema& schema,
                const RenderOptions& options, FlowNodeId n, int indent,
                std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 4, ' ');
  for (FlowNodeId c : g.children(n)) {
    *out += pad + "|-> " + schema.locations.Name(g.location(c)) +
            " p=" + FormatDouble(g.TransitionProbability(n, c), options.digits);
    if (options.durations) {
      *out += "  " + DurationDist(g, schema, c, options.digits);
    }
    *out += "\n";
    RenderNode(g, schema, options, c, indent + 1, out);
  }
  const double term = g.TransitionProbability(n, FlowGraph::kTerminate);
  if (term > 0.0 && n != FlowGraph::kRoot) {
    *out += pad + "|-> (terminate) p=" + FormatDouble(term, options.digits) +
            "\n";
  }
}

std::string ConditionString(const FlowGraph& g, const PathSchema& schema,
                            const std::vector<StageCondition>& condition) {
  std::vector<std::string> parts;
  parts.reserve(condition.size());
  for (const StageCondition& c : condition) {
    parts.push_back("(" + schema.locations.Name(g.location(c.node)) + "," +
                    schema.durations.ToString(c.duration) + ")");
  }
  return "{" + StrJoin(parts, ",") + "}";
}

}  // namespace

std::string RenderException(const FlowGraph& g, const PathSchema& schema,
                            const FlowException& e, int digits) {
  std::string out;
  if (e.kind == FlowException::Kind::kTransition) {
    const std::string target =
        e.transition_target == FlowGraph::kTerminate
            ? "(terminate)"
            : schema.locations.Name(g.location(e.transition_target));
    out = "transition " + schema.locations.Name(g.location(e.node)) + "->" +
          target;
  } else {
    out = "duration " + schema.locations.Name(g.location(e.node)) + "=" +
          schema.durations.ToString(e.duration_value);
  }
  out += ": " + FormatDouble(e.global_probability, digits) + " -> " +
         FormatDouble(e.conditional_probability, digits) + " given " +
         ConditionString(g, schema, e.condition) +
         StrFormat(" (n=%u)", e.condition_support);
  return out;
}

std::string RenderFlowGraph(const FlowGraph& g, const PathSchema& schema,
                            const RenderOptions& options) {
  std::string out =
      StrFormat("flowgraph over %u paths\n", g.total_paths());
  RenderNode(g, schema, options, FlowGraph::kRoot, 0, &out);
  if (options.exceptions && !g.exceptions().empty()) {
    out += StrFormat("exceptions (%zu):\n", g.exceptions().size());
    for (const FlowException& e : g.exceptions()) {
      out += "  " + RenderException(g, schema, e, options.digits) + "\n";
    }
  }
  return out;
}

}  // namespace flowcube
