#ifndef FLOWCUBE_FLOWGRAPH_FLOWGRAPH_H_
#define FLOWCUBE_FLOWGRAPH_FLOWGRAPH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "path/path.h"

namespace flowcube {

// Index of a node inside one FlowGraph.
using FlowNodeId = uint32_t;

// One duration (or passage) constraint of an exception condition: the path
// visited flowgraph node `node` with the given duration (kAnyDuration = any
// duration, i.e. only passage through the node is required).
struct StageCondition {
  FlowNodeId node = 0;
  Duration duration = kAnyDuration;

  friend bool operator==(const StageCondition& a, const StageCondition& b) {
    return a.node == b.node && a.duration == b.duration;
  }
};

// A recorded deviation from the flowgraph's general distributions given a
// frequent path prefix (paper Section 3): conditioned on `condition`, the
// probability of `transition_target` (or of `duration_value`) at `node`
// differs from the unconditional one by at least epsilon, with the
// condition matched by at least delta paths.
struct FlowException {
  enum class Kind { kTransition, kDuration };

  Kind kind = Kind::kTransition;
  // Conditions sorted by node depth; every condition node is an ancestor of
  // (or equal to, for transition exceptions) `node`.
  std::vector<StageCondition> condition;
  // The node whose distribution deviates.
  FlowNodeId node = 0;
  // Kind::kTransition — the deviating transition (child node index, or
  // FlowGraph::kTerminate for the termination probability).
  FlowNodeId transition_target = 0;
  // Kind::kDuration — the deviating duration value.
  Duration duration_value = 0;
  double global_probability = 0.0;
  double conditional_probability = 0.0;
  // Number of paths matching the condition (and reaching `node`).
  uint32_t condition_support = 0;
};

// The flowgraph (paper Definition 3.1): a tree-shaped probabilistic
// workflow. Each node corresponds to a unique path prefix; it carries a
// multinomial distribution over stay durations, a multinomial distribution
// over transitions to child locations (plus termination), and a set of
// exceptions to those distributions under frequent path prefixes.
//
// The tree is built by accumulating counts over a collection of paths
// (AddPath); distributions are exact count ratios, which is what makes the
// distribution component an algebraic measure (Lemma 4.2).
class FlowGraph {
 public:
  // Sentinel transition target meaning "path terminates here".
  static constexpr FlowNodeId kTerminate = static_cast<FlowNodeId>(-1);
  // The virtual root node (empty prefix). Its children are the first
  // locations of paths; its path_count is the total number of paths.
  static constexpr FlowNodeId kRoot = 0;

  FlowGraph();

  // Accumulates one path into the counts.
  void AddPath(const Path& path);

  // Adds `other`'s counts into this graph, creating missing branches — the
  // algebraic aggregation of Lemma 4.2. Exceptions are holistic (Lemma
  // 4.3) and are NOT merged; this graph's exception list is left unchanged
  // and should be re-mined when needed.
  void MergeFrom(const FlowGraph& other);

  size_t num_nodes() const { return nodes_.size(); }

  // Total number of paths added.
  uint32_t total_paths() const { return nodes_[kRoot].path_count; }

  // --- Node structure -------------------------------------------------------

  NodeId location(FlowNodeId n) const { return nodes_[n].location; }
  FlowNodeId parent(FlowNodeId n) const { return nodes_[n].parent; }
  const std::vector<FlowNodeId>& children(FlowNodeId n) const {
    return nodes_[n].children;
  }
  int depth(FlowNodeId n) const { return nodes_[n].depth; }

  // Child of `n` whose location is `loc`, or kTerminate if none.
  FlowNodeId FindChild(FlowNodeId n, NodeId loc) const;

  // Node reached by following the path's locations from the root, or
  // kTerminate when the graph has no such branch. `upto` limits the number
  // of stages followed (SIZE_MAX = all).
  FlowNodeId Walk(const Path& path, size_t upto = SIZE_MAX) const;

  // --- Counts and distributions ----------------------------------------------

  // Paths passing through the node.
  uint32_t path_count(FlowNodeId n) const { return nodes_[n].path_count; }
  // Paths terminating at the node.
  uint32_t terminate_count(FlowNodeId n) const {
    return nodes_[n].terminate_count;
  }
  // Count of each observed stay duration at the node.
  const std::map<Duration, uint32_t>& duration_counts(FlowNodeId n) const {
    return nodes_[n].duration_counts;
  }

  // P(duration = d | at node), exact count ratio.
  double DurationProbability(FlowNodeId n, Duration d) const;

  // P(next = child | at node) for a child node index; use kTerminate for
  // the termination probability.
  double TransitionProbability(FlowNodeId n, FlowNodeId target) const;

  // Probability of observing exactly `path` under the model (product of
  // transition and duration probabilities, with termination). 0 when the
  // path leaves the tree.
  double PathProbability(const Path& path) const;

  // --- Exceptions (paper Section 3) ------------------------------------------

  void AddException(FlowException e) {
    exceptions_.push_back(std::move(e));
  }
  const std::vector<FlowException>& exceptions() const { return exceptions_; }

 private:
  // Corruption backdoor for tests/audit_test.cc.
  friend struct FlowGraphTestPeer;
  // Checkpoint codec (src/stream/checkpoint.cc): serializes nodes_ verbatim
  // (children order included) so a restored graph dumps byte-identically.
  friend struct FlowGraphSerializer;

  struct Node {
    NodeId location = kInvalidNode;
    FlowNodeId parent = kRoot;
    int depth = 0;
    std::vector<FlowNodeId> children;
    uint32_t path_count = 0;
    uint32_t terminate_count = 0;
    std::map<Duration, uint32_t> duration_counts;
  };

  std::vector<Node> nodes_;
  std::vector<FlowException> exceptions_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_FLOWGRAPH_H_
