#ifndef FLOWCUBE_FLOWGRAPH_FLOWGRAPH_H_
#define FLOWCUBE_FLOWGRAPH_FLOWGRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "path/path.h"

namespace flowcube {

// Index of a node inside one FlowGraph.
using FlowNodeId = uint32_t;

// One entry of a node's stay-duration distribution: `count` paths stayed at
// the node for exactly `duration`. A node's entries are kept sorted by
// duration ascending, in both the mutable and the sealed representation, so
// iteration order matches the std::map the accumulation code historically
// used (dumps and checkpoints depend on it).
struct DurationCount {
  Duration duration = 0;
  uint32_t count = 0;

  friend bool operator==(const DurationCount& a,
                         const DurationCount& b) = default;
};

// One duration (or passage) constraint of an exception condition: the path
// visited flowgraph node `node` with the given duration (kAnyDuration = any
// duration, i.e. only passage through the node is required).
struct StageCondition {
  FlowNodeId node = 0;
  Duration duration = kAnyDuration;

  friend bool operator==(const StageCondition& a, const StageCondition& b) {
    return a.node == b.node && a.duration == b.duration;
  }
};

// A recorded deviation from the flowgraph's general distributions given a
// frequent path prefix (paper Section 3): conditioned on `condition`, the
// probability of `transition_target` (or of `duration_value`) at `node`
// differs from the unconditional one by at least epsilon, with the
// condition matched by at least delta paths.
struct FlowException {
  enum class Kind { kTransition, kDuration };

  Kind kind = Kind::kTransition;
  // Conditions sorted by node depth; every condition node is an ancestor of
  // (or equal to, for transition exceptions) `node`.
  std::vector<StageCondition> condition;
  // The node whose distribution deviates.
  FlowNodeId node = 0;
  // Kind::kTransition — the deviating transition (child node index, or
  // FlowGraph::kTerminate for the termination probability).
  FlowNodeId transition_target = 0;
  // Kind::kDuration — the deviating duration value.
  Duration duration_value = 0;
  double global_probability = 0.0;
  double conditional_probability = 0.0;
  // Number of paths matching the condition (and reaching `node`).
  uint32_t condition_support = 0;
};

// The flowgraph (paper Definition 3.1): a tree-shaped probabilistic
// workflow. Each node corresponds to a unique path prefix; it carries a
// multinomial distribution over stay durations, a multinomial distribution
// over transitions to child locations (plus termination), and a set of
// exceptions to those distributions under frequent path prefixes.
//
// The tree is built by accumulating counts over a collection of paths
// (AddPath); distributions are exact count ratios, which is what makes the
// distribution component an algebraic measure (Lemma 4.2).
//
// The graph has two storage forms behind one accessor API:
//
//   * mutable (the default): node-at-a-time records, each owning its child
//     vector and duration vector — cheap to grow while counts accumulate.
//   * sealed (after Seal()): immutable structure-of-arrays column tables,
//     CSR child-edge arrays, and a single flat arena of sorted
//     (duration, count) pairs addressed by per-node spans — half the
//     memory and scan-friendly for similarity/query/serialization.
//
// Seal() preserves node ids, child order, and duration order exactly, so
// every derived artifact (dump text, checkpoint bytes, probabilities) is
// bit-identical across the two forms. Mutation (AddPath / MergeFrom /
// AddException) is only legal on the mutable form; a sealed graph can still
// be a *source* of MergeFrom.
//
// The sealed columns live behind a shared immutable block
// (shared_ptr<const Columns>): the column *views* are spans that resolve
// against either vectors owned by the block (heap-sealed graphs) or an
// external checkpoint mapping pinned by the block's keepalive handle
// (store/mapped_cube.h). Copying a sealed graph therefore shares the
// column block instead of deep-copying it — which is both what makes a
// mapped cube zero-copy and what lets the serving layer share unchanged
// graphs across snapshot epochs (sealed_identity()).
class FlowGraph {
 public:
  // Sentinel transition target meaning "path terminates here".
  static constexpr FlowNodeId kTerminate = static_cast<FlowNodeId>(-1);
  // The virtual root node (empty prefix). Its children are the first
  // locations of paths; its path_count is the total number of paths.
  static constexpr FlowNodeId kRoot = 0;

  FlowGraph();

  // Accumulates one path into the counts. Requires !sealed().
  void AddPath(const Path& path);

  // Adds `other`'s counts into this graph, creating missing branches — the
  // algebraic aggregation of Lemma 4.2. Exceptions are holistic (Lemma
  // 4.3) and are NOT merged; this graph's exception list is left unchanged
  // and should be re-mined when needed. Requires !sealed(); `other` may be
  // in either form.
  void MergeFrom(const FlowGraph& other);

  // Returns a structurally-equal copy whose node numbering is a pure
  // function of the abstract tree: breadth-first from the root, each node's
  // children ordered by ascending location. Two graphs accumulating the same
  // counts — regardless of AddPath/MergeFrom order — canonicalize to the
  // same node tables, so dumps and serializations of the canonical form are
  // byte-comparable. Exceptions are dropped (their node ids refer to the
  // original numbering, and the exception set is holistic anyway). The
  // result is mutable (unsealed). Works on either storage form.
  FlowGraph Canonical() const;

  // Freezes the graph into the columnar form. Idempotent. Accessors keep
  // returning the same values; mutating entry points FC_CHECK afterwards.
  void Seal();
  bool sealed() const { return sealed_; }

  // Bytes owned by this graph: sizeof(*this) plus all heap the current
  // representation holds (node records, child edges, duration entries,
  // exceptions).
  size_t MemoryUsage() const;

  size_t num_nodes() const {
    return sealed_ ? cols_->location.size() : nodes_.size();
  }

  // Total number of paths added.
  uint32_t total_paths() const { return path_count(kRoot); }

  // Identity of the sealed column block: two sealed graphs share storage
  // iff their identities compare equal (copies of a sealed graph share the
  // block). nullptr for mutable graphs. The serving layer counts
  // epoch-over-epoch snapshot sharing with this.
  const void* sealed_identity() const {
    return static_cast<const void*>(cols_.get());
  }

  // --- Node structure -------------------------------------------------------

  NodeId location(FlowNodeId n) const {
    return sealed_ ? cols_->location[n] : nodes_[n].location;
  }
  FlowNodeId parent(FlowNodeId n) const {
    return sealed_ ? cols_->parent[n] : nodes_[n].parent;
  }
  std::span<const FlowNodeId> children(FlowNodeId n) const {
    if (sealed_) {
      return {cols_->child_arena.data() + cols_->child_begin[n],
              cols_->child_begin[n + 1] - cols_->child_begin[n]};
    }
    return {nodes_[n].children.data(), nodes_[n].children.size()};
  }
  int depth(FlowNodeId n) const {
    return sealed_ ? cols_->depth[n] : nodes_[n].depth;
  }

  // Child of `n` whose location is `loc`, or kTerminate if none.
  FlowNodeId FindChild(FlowNodeId n, NodeId loc) const;

  // Node reached by following the path's locations from the root, or
  // kTerminate when the graph has no such branch. `upto` limits the number
  // of stages followed (SIZE_MAX = all).
  FlowNodeId Walk(const Path& path, size_t upto = SIZE_MAX) const;

  // --- Counts and distributions ----------------------------------------------

  // Paths passing through the node.
  uint32_t path_count(FlowNodeId n) const {
    return sealed_ ? cols_->path_count[n] : nodes_[n].path_count;
  }
  // Paths terminating at the node.
  uint32_t terminate_count(FlowNodeId n) const {
    return sealed_ ? cols_->terminate_count[n] : nodes_[n].terminate_count;
  }
  // Count of each observed stay duration at the node, sorted by duration
  // ascending.
  std::span<const DurationCount> duration_counts(FlowNodeId n) const {
    if (sealed_) {
      return {cols_->duration_arena.data() + cols_->duration_begin[n],
              cols_->duration_begin[n + 1] - cols_->duration_begin[n]};
    }
    return {nodes_[n].duration_counts.data(),
            nodes_[n].duration_counts.size()};
  }

  // P(duration = d | at node), exact count ratio.
  double DurationProbability(FlowNodeId n, Duration d) const;

  // P(next = child | at node) for a child node index; use kTerminate for
  // the termination probability.
  double TransitionProbability(FlowNodeId n, FlowNodeId target) const;

  // Probability of observing exactly `path` under the model (product of
  // transition and duration probabilities, with termination). 0 when the
  // path leaves the tree.
  double PathProbability(const Path& path) const;

  // --- Exceptions (paper Section 3) ------------------------------------------

  void AddException(FlowException e);
  const std::vector<FlowException>& exceptions() const { return exceptions_; }

 private:
  // Corruption backdoor for tests/audit_test.cc.
  friend struct FlowGraphTestPeer;
  // Checkpoint codec (src/stream/checkpoint.cc): serializes the node
  // tables verbatim (children order included) so a restored graph dumps
  // byte-identically.
  friend struct FlowGraphSerializer;
  // Store loader (src/store/cube_codec.cc): assembles sealed graphs whose
  // column views borrow a checkpoint mapping.
  friend struct FlowGraphStoreAccess;

  // Mutable accumulation form: one record per node.
  struct Node {
    NodeId location = kInvalidNode;
    FlowNodeId parent = kRoot;
    int depth = 0;
    std::vector<FlowNodeId> children;
    uint32_t path_count = 0;
    uint32_t terminate_count = 0;
    // Sorted by duration ascending; AddPath/MergeFrom insert in place.
    std::vector<DurationCount> duration_counts;
  };

  // Sealed columnar form: parallel column views indexed by node id, plus
  // CSR offset arrays (num_nodes + 1 entries) into the two arenas. The
  // views resolve against `owned` for heap-sealed graphs, or against an
  // external allocation pinned by `keepalive` for mapped graphs — in which
  // case child_begin/duration_begin values may be absolute offsets into an
  // arena shared by every graph of a cuboid (the accessor arithmetic
  // `arena.data() + begin[n]` is the same either way). Immutable once
  // built; shared between graph copies via shared_ptr.
  struct Columns {
    std::span<const NodeId> location;
    std::span<const FlowNodeId> parent;
    std::span<const int32_t> depth;
    std::span<const uint32_t> path_count;
    std::span<const uint32_t> terminate_count;
    std::span<const uint32_t> child_begin;
    std::span<const FlowNodeId> child_arena;
    std::span<const uint32_t> duration_begin;
    std::span<const DurationCount> duration_arena;

    struct Owned {
      std::vector<NodeId> location;
      std::vector<FlowNodeId> parent;
      std::vector<int32_t> depth;
      std::vector<uint32_t> path_count;
      std::vector<uint32_t> terminate_count;
      std::vector<uint32_t> child_begin;
      std::vector<FlowNodeId> child_arena;
      std::vector<uint32_t> duration_begin;
      std::vector<DurationCount> duration_arena;
    };
    Owned owned;                            // empty for mapped graphs
    std::shared_ptr<const void> keepalive;  // mapping pin for mapped graphs

    // Heap bytes held by the owned vectors (0 for mapped graphs).
    size_t OwnedBytes() const;
  };

  // Increments the count of duration `d` at mutable node `n`, keeping the
  // entries sorted.
  void BumpDuration(FlowNodeId n, Duration d, uint32_t by);

  std::vector<Node> nodes_;              // empty once sealed
  std::shared_ptr<const Columns> cols_;  // null until sealed
  bool sealed_ = false;
  std::vector<FlowException> exceptions_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_FLOWGRAPH_H_
