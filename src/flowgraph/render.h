#ifndef FLOWCUBE_FLOWGRAPH_RENDER_H_
#define FLOWCUBE_FLOWGRAPH_RENDER_H_

#include <string>

#include "flowgraph/flowgraph.h"
#include "path/path.h"

namespace flowcube {

// What RenderFlowGraph includes.
struct RenderOptions {
  // Print the per-node duration distributions.
  bool durations = true;
  // Print the exception list after the tree.
  bool exceptions = true;
  // Probabilities are rounded to this many digits.
  int digits = 2;
};

// Renders a flowgraph as an indented text tree, one node per line with its
// transition probabilities — the textual equivalent of the paper's
// Figure 3:
//
//   factory  dur{5:0.38, 10:0.62}
//   |-> dist.center p=0.65  dur{1:0.2, 2:0.8}
//   |   |-> truck p=1.00 ...
//   |-> truck p=0.35 ...
//
// `schema` supplies location and duration names.
std::string RenderFlowGraph(const FlowGraph& g, const PathSchema& schema,
                            const RenderOptions& options = {});

// Renders one exception on a single line, e.g.:
//   "transition truck->warehouse: 0.33 -> 0.50 given {(truck,1)} (n=2)".
std::string RenderException(const FlowGraph& g, const PathSchema& schema,
                            const FlowException& e, int digits = 2);

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_RENDER_H_
