#include "flowgraph/stats.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace flowcube {

double MeanDuration(const FlowGraph& g, FlowNodeId node) {
  FC_CHECK(node < g.num_nodes());
  if (g.path_count(node) == 0) return 0.0;
  double total = 0.0;
  uint32_t counted = 0;
  for (const auto& [d, c] : g.duration_counts(node)) {
    if (d == kAnyDuration) continue;
    total += static_cast<double>(d) * c;
    counted += c;
  }
  return counted == 0 ? 0.0 : total / counted;
}

double ExpectedLeadTime(const FlowGraph& g) {
  if (g.total_paths() == 0) return 0.0;
  double total = 0.0;
  for (FlowNodeId n = 1; n < g.num_nodes(); ++n) {
    const double reach =
        static_cast<double>(g.path_count(n)) / g.total_paths();
    total += reach * MeanDuration(g, n);
  }
  return total;
}

double ExpectedPathLength(const FlowGraph& g) {
  if (g.total_paths() == 0) return 0.0;
  // Every non-root node is visited path_count times; the expected length
  // is the total number of stage visits over the number of paths.
  double visits = 0.0;
  for (FlowNodeId n = 1; n < g.num_nodes(); ++n) {
    visits += g.path_count(n);
  }
  return visits / g.total_paths();
}

double VisitProbability(const FlowGraph& g, NodeId location) {
  if (g.total_paths() == 0) return 0.0;
  // Sum reach over the *highest* nodes with the location on each branch:
  // nodes whose ancestors do not already carry it (avoids double counting
  // paths that revisit the location).
  double covered = 0.0;
  std::vector<std::pair<FlowNodeId, bool>> work = {{FlowGraph::kRoot, false}};
  while (!work.empty()) {
    const auto [node, seen] = work.back();
    work.pop_back();
    const bool here = node != FlowGraph::kRoot && g.location(node) == location;
    if (here && !seen) {
      covered += g.path_count(node);
      continue;  // everything below is already counted
    }
    for (FlowNodeId c : g.children(node)) {
      work.emplace_back(c, seen || here);
    }
  }
  return covered / g.total_paths();
}

std::vector<LocationDwell> DwellByLocation(const FlowGraph& g) {
  std::map<NodeId, LocationDwell> by_location;
  std::map<NodeId, double> weighted_total;
  std::map<NodeId, uint32_t> counted;
  for (FlowNodeId n = 1; n < g.num_nodes(); ++n) {
    LocationDwell& dwell = by_location[g.location(n)];
    dwell.location = g.location(n);
    dwell.visits += g.path_count(n);
    for (const auto& [d, c] : g.duration_counts(n)) {
      if (d == kAnyDuration) continue;
      weighted_total[g.location(n)] += static_cast<double>(d) * c;
      counted[g.location(n)] += c;
      dwell.max_duration = std::max(dwell.max_duration, d);
    }
  }
  std::vector<LocationDwell> out;
  out.reserve(by_location.size());
  for (auto& [loc, dwell] : by_location) {
    if (counted[loc] > 0) {
      dwell.mean_duration = weighted_total[loc] / counted[loc];
    }
    out.push_back(dwell);
  }
  std::sort(out.begin(), out.end(),
            [](const LocationDwell& a, const LocationDwell& b) {
              if (a.visits != b.visits) return a.visits > b.visits;
              return a.location < b.location;
            });
  return out;
}

}  // namespace flowcube
