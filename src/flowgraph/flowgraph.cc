#include "flowgraph/flowgraph.h"

#include <utility>

#include "common/logging.h"

namespace flowcube {

FlowGraph::FlowGraph() { nodes_.emplace_back(); }

void FlowGraph::AddPath(const Path& path) {
  FC_CHECK_MSG(!path.empty(), "cannot add an empty path to a flowgraph");
  nodes_[kRoot].path_count++;
  FlowNodeId cur = kRoot;
  for (const Stage& s : path.stages) {
    FlowNodeId child = FindChild(cur, s.location);
    if (child == kTerminate) {
      child = static_cast<FlowNodeId>(nodes_.size());
      Node node;
      node.location = s.location;
      node.parent = cur;
      node.depth = nodes_[cur].depth + 1;
      nodes_.push_back(std::move(node));
      nodes_[cur].children.push_back(child);
    }
    nodes_[child].path_count++;
    nodes_[child].duration_counts[s.duration]++;
    cur = child;
  }
  nodes_[cur].terminate_count++;
}

void FlowGraph::MergeFrom(const FlowGraph& other) {
  // Iterative pairwise walk over (other node, this node).
  std::vector<std::pair<FlowNodeId, FlowNodeId>> work = {{kRoot, kRoot}};
  while (!work.empty()) {
    const auto [src, dst] = work.back();
    work.pop_back();
    const Node& from = other.nodes_[src];
    nodes_[dst].path_count += from.path_count;
    nodes_[dst].terminate_count += from.terminate_count;
    for (const auto& [d, c] : from.duration_counts) {
      nodes_[dst].duration_counts[d] += c;
    }
    for (FlowNodeId src_child : from.children) {
      const NodeId loc = other.nodes_[src_child].location;
      FlowNodeId dst_child = FindChild(dst, loc);
      if (dst_child == kTerminate) {
        dst_child = static_cast<FlowNodeId>(nodes_.size());
        Node node;
        node.location = loc;
        node.parent = dst;
        node.depth = nodes_[dst].depth + 1;
        nodes_.push_back(std::move(node));
        nodes_[dst].children.push_back(dst_child);
      }
      work.emplace_back(src_child, dst_child);
    }
  }
}

FlowNodeId FlowGraph::FindChild(FlowNodeId n, NodeId loc) const {
  FC_DCHECK(n < nodes_.size());
  for (FlowNodeId c : nodes_[n].children) {
    if (nodes_[c].location == loc) return c;
  }
  return kTerminate;
}

FlowNodeId FlowGraph::Walk(const Path& path, size_t upto) const {
  FlowNodeId cur = kRoot;
  const size_t n = std::min(upto, path.stages.size());
  for (size_t i = 0; i < n; ++i) {
    cur = FindChild(cur, path.stages[i].location);
    if (cur == kTerminate) return kTerminate;
  }
  return cur;
}

double FlowGraph::DurationProbability(FlowNodeId n, Duration d) const {
  FC_CHECK(n < nodes_.size());
  const Node& node = nodes_[n];
  if (node.path_count == 0) return 0.0;
  const auto it = node.duration_counts.find(d);
  if (it == node.duration_counts.end()) return 0.0;
  return static_cast<double>(it->second) / node.path_count;
}

double FlowGraph::TransitionProbability(FlowNodeId n, FlowNodeId target) const {
  FC_CHECK(n < nodes_.size());
  const Node& node = nodes_[n];
  if (node.path_count == 0) return 0.0;
  if (target == kTerminate) {
    return static_cast<double>(node.terminate_count) / node.path_count;
  }
  FC_CHECK(target < nodes_.size());
  FC_CHECK_MSG(nodes_[target].parent == n && target != kRoot,
               "transition target must be a child of the node");
  return static_cast<double>(nodes_[target].path_count) / node.path_count;
}

double FlowGraph::PathProbability(const Path& path) const {
  double p = 1.0;
  FlowNodeId cur = kRoot;
  for (const Stage& s : path.stages) {
    const FlowNodeId child = FindChild(cur, s.location);
    if (child == kTerminate) return 0.0;
    p *= TransitionProbability(cur, child);
    p *= DurationProbability(child, s.duration);
    cur = child;
  }
  p *= TransitionProbability(cur, kTerminate);
  return p;
}

}  // namespace flowcube
