#include "flowgraph/flowgraph.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/logging.h"

namespace flowcube {

FlowGraph::FlowGraph() { nodes_.emplace_back(); }

void FlowGraph::BumpDuration(FlowNodeId n, Duration d, uint32_t by) {
  std::vector<DurationCount>& counts = nodes_[n].duration_counts;
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), d,
      [](const DurationCount& e, Duration v) { return e.duration < v; });
  if (it != counts.end() && it->duration == d) {
    it->count += by;
  } else {
    counts.insert(it, DurationCount{d, by});
  }
}

void FlowGraph::AddPath(const Path& path) {
  FC_CHECK_MSG(!sealed_, "cannot add paths to a sealed flowgraph");
  FC_CHECK_MSG(!path.empty(), "cannot add an empty path to a flowgraph");
  nodes_[kRoot].path_count++;
  FlowNodeId cur = kRoot;
  for (const Stage& s : path.stages) {
    FlowNodeId child = FindChild(cur, s.location);
    if (child == kTerminate) {
      child = static_cast<FlowNodeId>(nodes_.size());
      Node node;
      node.location = s.location;
      node.parent = cur;
      node.depth = nodes_[cur].depth + 1;
      nodes_.push_back(std::move(node));
      nodes_[cur].children.push_back(child);
    }
    nodes_[child].path_count++;
    BumpDuration(child, s.duration, 1);
    cur = child;
  }
  nodes_[cur].terminate_count++;
}

void FlowGraph::MergeFrom(const FlowGraph& other) {
  FC_CHECK_MSG(!sealed_, "cannot merge into a sealed flowgraph");
  // Iterative pairwise walk over (other node, this node). `other` is read
  // through accessors only, so sealed graphs are valid merge sources.
  std::vector<std::pair<FlowNodeId, FlowNodeId>> work = {{kRoot, kRoot}};
  while (!work.empty()) {
    const auto [src, dst] = work.back();
    work.pop_back();
    nodes_[dst].path_count += other.path_count(src);
    nodes_[dst].terminate_count += other.terminate_count(src);
    for (const DurationCount& dc : other.duration_counts(src)) {
      BumpDuration(dst, dc.duration, dc.count);
    }
    for (FlowNodeId src_child : other.children(src)) {
      const NodeId loc = other.location(src_child);
      FlowNodeId dst_child = FindChild(dst, loc);
      if (dst_child == kTerminate) {
        dst_child = static_cast<FlowNodeId>(nodes_.size());
        Node node;
        node.location = loc;
        node.parent = dst;
        node.depth = nodes_[dst].depth + 1;
        nodes_.push_back(std::move(node));
        nodes_[dst].children.push_back(dst_child);
      }
      work.emplace_back(src_child, dst_child);
    }
  }
}

FlowGraph FlowGraph::Canonical() const {
  FlowGraph out;
  // Breadth-first over (source node, canonical node) pairs. Canonical ids
  // are assigned in visit order, which depends only on the abstract tree
  // because each node's children are expanded in ascending location order
  // (locations are unique among siblings).
  std::deque<std::pair<FlowNodeId, FlowNodeId>> work;
  work.emplace_back(kRoot, kRoot);
  std::vector<FlowNodeId> kids;
  while (!work.empty()) {
    const auto [src, dst] = work.front();
    work.pop_front();
    out.nodes_[dst].path_count = path_count(src);
    out.nodes_[dst].terminate_count = terminate_count(src);
    const std::span<const DurationCount> durs = duration_counts(src);
    out.nodes_[dst].duration_counts.assign(durs.begin(), durs.end());
    kids.assign(children(src).begin(), children(src).end());
    std::sort(kids.begin(), kids.end(), [this](FlowNodeId a, FlowNodeId b) {
      return location(a) < location(b);
    });
    for (FlowNodeId c : kids) {
      const FlowNodeId id = static_cast<FlowNodeId>(out.nodes_.size());
      Node node;
      node.location = location(c);
      node.parent = dst;
      node.depth = out.nodes_[dst].depth + 1;
      out.nodes_.push_back(std::move(node));
      out.nodes_[dst].children.push_back(id);
      work.emplace_back(c, id);
    }
  }
  return out;
}

size_t FlowGraph::Columns::OwnedBytes() const {
  size_t bytes = 0;
  bytes += owned.location.capacity() * sizeof(NodeId);
  bytes += owned.parent.capacity() * sizeof(FlowNodeId);
  bytes += owned.depth.capacity() * sizeof(int32_t);
  bytes += owned.path_count.capacity() * sizeof(uint32_t);
  bytes += owned.terminate_count.capacity() * sizeof(uint32_t);
  bytes += owned.child_begin.capacity() * sizeof(uint32_t);
  bytes += owned.child_arena.capacity() * sizeof(FlowNodeId);
  bytes += owned.duration_begin.capacity() * sizeof(uint32_t);
  bytes += owned.duration_arena.capacity() * sizeof(DurationCount);
  return bytes;
}

void FlowGraph::Seal() {
  if (sealed_) return;
  const size_t n = nodes_.size();
  size_t num_edges = 0;
  size_t num_durations = 0;
  for (const Node& node : nodes_) {
    num_edges += node.children.size();
    num_durations += node.duration_counts.size();
  }

  auto cols = std::make_shared<Columns>();
  Columns::Owned& o = cols->owned;
  o.location.reserve(n);
  o.parent.reserve(n);
  o.depth.reserve(n);
  o.path_count.reserve(n);
  o.terminate_count.reserve(n);
  o.child_begin.reserve(n + 1);
  o.child_arena.reserve(num_edges);
  o.duration_begin.reserve(n + 1);
  o.duration_arena.reserve(num_durations);

  for (const Node& node : nodes_) {
    o.location.push_back(node.location);
    o.parent.push_back(node.parent);
    o.depth.push_back(node.depth);
    o.path_count.push_back(node.path_count);
    o.terminate_count.push_back(node.terminate_count);
    o.child_begin.push_back(static_cast<uint32_t>(o.child_arena.size()));
    o.child_arena.insert(o.child_arena.end(), node.children.begin(),
                         node.children.end());
    o.duration_begin.push_back(
        static_cast<uint32_t>(o.duration_arena.size()));
    o.duration_arena.insert(o.duration_arena.end(),
                            node.duration_counts.begin(),
                            node.duration_counts.end());
  }
  o.child_begin.push_back(static_cast<uint32_t>(o.child_arena.size()));
  o.duration_begin.push_back(static_cast<uint32_t>(o.duration_arena.size()));

  // The views are set only after the owned vectors reach their final
  // addresses inside the heap block.
  cols->location = {o.location.data(), o.location.size()};
  cols->parent = {o.parent.data(), o.parent.size()};
  cols->depth = {o.depth.data(), o.depth.size()};
  cols->path_count = {o.path_count.data(), o.path_count.size()};
  cols->terminate_count = {o.terminate_count.data(),
                           o.terminate_count.size()};
  cols->child_begin = {o.child_begin.data(), o.child_begin.size()};
  cols->child_arena = {o.child_arena.data(), o.child_arena.size()};
  cols->duration_begin = {o.duration_begin.data(), o.duration_begin.size()};
  cols->duration_arena = {o.duration_arena.data(), o.duration_arena.size()};

  cols_ = std::move(cols);
  nodes_.clear();
  nodes_.shrink_to_fit();
  sealed_ = true;
}

size_t FlowGraph::MemoryUsage() const {
  size_t bytes = sizeof(*this);
  if (sealed_) {
    // The column block is shared between copies of a sealed graph (and is
    // empty of heap when the columns borrow a checkpoint mapping); each
    // holder reports the full block, mirroring how shared snapshots are
    // accounted per cube.
    bytes += sizeof(Columns) + cols_->OwnedBytes();
  } else {
    bytes += nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_) {
      bytes += node.children.capacity() * sizeof(FlowNodeId);
      bytes += node.duration_counts.capacity() * sizeof(DurationCount);
    }
  }
  bytes += exceptions_.capacity() * sizeof(FlowException);
  for (const FlowException& e : exceptions_) {
    bytes += e.condition.capacity() * sizeof(StageCondition);
  }
  return bytes;
}

void FlowGraph::AddException(FlowException e) {
  FC_CHECK_MSG(!sealed_, "cannot add exceptions to a sealed flowgraph");
  exceptions_.push_back(std::move(e));
}

FlowNodeId FlowGraph::FindChild(FlowNodeId n, NodeId loc) const {
  FC_DCHECK(n < num_nodes());
  for (FlowNodeId c : children(n)) {
    if (location(c) == loc) return c;
  }
  return kTerminate;
}

FlowNodeId FlowGraph::Walk(const Path& path, size_t upto) const {
  FlowNodeId cur = kRoot;
  const size_t n = std::min(upto, path.stages.size());
  for (size_t i = 0; i < n; ++i) {
    cur = FindChild(cur, path.stages[i].location);
    if (cur == kTerminate) return kTerminate;
  }
  return cur;
}

double FlowGraph::DurationProbability(FlowNodeId n, Duration d) const {
  FC_CHECK(n < num_nodes());
  const uint32_t paths = path_count(n);
  if (paths == 0) return 0.0;
  const std::span<const DurationCount> counts = duration_counts(n);
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), d,
      [](const DurationCount& e, Duration v) { return e.duration < v; });
  if (it == counts.end() || it->duration != d) return 0.0;
  return static_cast<double>(it->count) / paths;
}

double FlowGraph::TransitionProbability(FlowNodeId n, FlowNodeId target) const {
  FC_CHECK(n < num_nodes());
  const uint32_t paths = path_count(n);
  if (paths == 0) return 0.0;
  if (target == kTerminate) {
    return static_cast<double>(terminate_count(n)) / paths;
  }
  FC_CHECK(target < num_nodes());
  FC_CHECK_MSG(parent(target) == n && target != kRoot,
               "transition target must be a child of the node");
  return static_cast<double>(path_count(target)) / paths;
}

double FlowGraph::PathProbability(const Path& path) const {
  double p = 1.0;
  FlowNodeId cur = kRoot;
  for (const Stage& s : path.stages) {
    const FlowNodeId child = FindChild(cur, s.location);
    if (child == kTerminate) return 0.0;
    p *= TransitionProbability(cur, child);
    p *= DurationProbability(child, s.duration);
    cur = child;
  }
  p *= TransitionProbability(cur, kTerminate);
  return p;
}

}  // namespace flowcube
