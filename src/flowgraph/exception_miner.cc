#include "flowgraph/exception_miner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "mining/apriori.h"

namespace flowcube {
namespace {

// Per-path node chains: chain[i] is the flowgraph node of stage i.
std::vector<std::vector<FlowNodeId>> BuildChains(const FlowGraph& g,
                                                 PathView paths) {
  std::vector<std::vector<FlowNodeId>> chains;
  chains.reserve(paths.size());
  for (const Path& p : paths) {
    std::vector<FlowNodeId> chain;
    chain.reserve(p.stages.size());
    FlowNodeId cur = FlowGraph::kRoot;
    for (const Stage& s : p.stages) {
      cur = g.FindChild(cur, s.location);
      FC_CHECK_MSG(cur != FlowGraph::kTerminate,
                   "path does not belong to this flowgraph");
      chain.push_back(cur);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

bool Matches(const std::vector<StageCondition>& pattern, const Path& path,
             const std::vector<FlowNodeId>& chain, const FlowGraph& g) {
  for (const StageCondition& c : pattern) {
    const int d = g.depth(c.node);
    FC_DCHECK(d >= 1);
    const size_t idx = static_cast<size_t>(d - 1);
    if (idx >= chain.size() || chain[idx] != c.node) return false;
    if (c.duration != kAnyDuration &&
        path.stages[idx].duration != c.duration) {
      return false;
    }
  }
  return true;
}

bool Informative(const std::vector<StageCondition>& pattern) {
  for (const StageCondition& c : pattern) {
    if (c.duration != kAnyDuration) return true;
  }
  return false;
}

}  // namespace

ExceptionMiner::ExceptionMiner(ExceptionMinerOptions options)
    : options_(options) {
  FC_CHECK_MSG(options_.epsilon > 0.0 && options_.epsilon <= 1.0,
               "epsilon must be in (0, 1]");
  FC_CHECK_MSG(options_.min_support >= 1, "min_support must be >= 1");
}

std::vector<FlowException> ExceptionMiner::Mine(
    const FlowGraph& g, PathView paths,
    const std::vector<std::vector<StageCondition>>& patterns) const {
  std::vector<FlowException> out;
  const auto chains = BuildChains(g, paths);

  // Mine runs once per cell from parallel loops; tallies stay in locals
  // until one flush at the end.
  uint64_t dropped_uninformative = 0;
  uint64_t dropped_support = 0;
  for (const std::vector<StageCondition>& pattern : patterns) {
    if (pattern.empty() || !Informative(pattern)) {
      dropped_uninformative++;
      continue;
    }
    FC_DCHECK(std::is_sorted(pattern.begin(), pattern.end(),
                             [&g](const StageCondition& a,
                                  const StageCondition& b) {
                               return g.depth(a.node) < g.depth(b.node);
                             }));
    const FlowNodeId deepest = pattern.back().node;
    const size_t dd = static_cast<size_t>(g.depth(deepest));

    std::vector<uint32_t> matching;
    for (uint32_t i = 0; i < paths.size(); ++i) {
      if (Matches(pattern, paths[i], chains[i], g)) matching.push_back(i);
    }
    if (matching.size() < options_.min_support) {
      dropped_support++;
      continue;
    }
    const double n_match = static_cast<double>(matching.size());

    // --- Conditional transition distribution at the deepest node.
    std::map<FlowNodeId, uint32_t> trans_counts;
    for (uint32_t i : matching) {
      const FlowNodeId target =
          chains[i].size() > dd ? chains[i][dd] : FlowGraph::kTerminate;
      trans_counts[target]++;
    }
    // Compare over every possible target (children + termination), so that
    // conditional probability 0 against a large global probability is also
    // recorded.
    const auto deepest_children = g.children(deepest);
    std::vector<FlowNodeId> targets(deepest_children.begin(),
                                    deepest_children.end());
    targets.push_back(FlowGraph::kTerminate);
    for (FlowNodeId target : targets) {
      const auto it = trans_counts.find(target);
      const double p_cond =
          it == trans_counts.end() ? 0.0 : it->second / n_match;
      const double p_glob = g.TransitionProbability(deepest, target);
      if (std::fabs(p_cond - p_glob) >= options_.epsilon) {
        FlowException e;
        e.kind = FlowException::Kind::kTransition;
        e.condition = pattern;
        e.node = deepest;
        e.transition_target = target;
        e.global_probability = p_glob;
        e.conditional_probability = p_cond;
        e.condition_support = static_cast<uint32_t>(matching.size());
        out.push_back(std::move(e));
      }
    }

    // --- Conditional duration distribution at each child of the deepest
    // node ("durations at a location given previous durations").
    for (FlowNodeId child : g.children(deepest)) {
      std::map<Duration, uint32_t> dur_counts;
      uint32_t n_child = 0;
      for (uint32_t i : matching) {
        if (chains[i].size() > dd && chains[i][dd] == child) {
          dur_counts[paths[i].stages[dd].duration]++;
          n_child++;
        }
      }
      if (n_child < options_.min_support) continue;
      // Union of conditional and global duration values.
      std::map<Duration, uint32_t> all_values;
      for (const auto& [d, c] : g.duration_counts(child)) all_values[d] = c;
      for (const auto& [d, c] : dur_counts) all_values[d] += 0;
      for (const auto& [d, unused] : all_values) {
        const auto it = dur_counts.find(d);
        const double p_cond =
            it == dur_counts.end() ? 0.0 : static_cast<double>(it->second) / n_child;
        const double p_glob = g.DurationProbability(child, d);
        if (std::fabs(p_cond - p_glob) >= options_.epsilon) {
          FlowException e;
          e.kind = FlowException::Kind::kDuration;
          e.condition = pattern;
          e.node = child;
          e.duration_value = d;
          e.global_probability = p_glob;
          e.conditional_probability = p_cond;
          e.condition_support = n_child;
          out.push_back(std::move(e));
        }
      }
    }
  }

  {
    MetricRegistry& reg = MetricRegistry::Global();
    static Counter& m_calls = reg.counter("flowgraph.exceptions.mine_calls");
    static Counter& m_patterns =
        reg.counter("flowgraph.exceptions.patterns_considered");
    static Counter& m_uninformative =
        reg.counter("flowgraph.exceptions.patterns_dropped_uninformative");
    static Counter& m_support =
        reg.counter("flowgraph.exceptions.patterns_dropped_support");
    static Counter& m_kept = reg.counter("flowgraph.exceptions.kept");
    m_calls.Increment();
    m_patterns.Add(patterns.size());
    m_uninformative.Add(dropped_uninformative);
    m_support.Add(dropped_support);
    m_kept.Add(out.size());
  }
  return out;
}

std::vector<FlowException> ExceptionMiner::MineWithLocalPatterns(
    const FlowGraph& g, PathView paths) const {
  // Encode each path as a transaction of (node, duration) items and mine
  // frequent chains with Apriori. Items are interned locally.
  const auto chains = BuildChains(g, paths);
  std::unordered_map<uint64_t, ItemId> intern;
  std::vector<StageCondition> decode;
  std::vector<std::vector<ItemId>> txns(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    for (size_t j = 0; j < chains[i].size(); ++j) {
      const Duration dur = paths[i].stages[j].duration;
      const uint64_t key = (static_cast<uint64_t>(chains[i][j]) << 32) |
                           static_cast<uint32_t>(dur + 1);
      auto [it, inserted] =
          intern.try_emplace(key, static_cast<ItemId>(decode.size()));
      if (inserted) decode.push_back(StageCondition{chains[i][j], dur});
      txns[i].push_back(it->second);
    }
    std::sort(txns[i].begin(), txns[i].end());
  }

  AprioriOptions opts;
  opts.min_support = options_.min_support;
  // Two constraints on one node cannot both hold (a stage has one
  // duration).
  opts.candidate_filter = [&decode](const Itemset& cand) {
    for (size_t a = 0; a + 1 < cand.size(); ++a) {
      for (size_t b = a + 1; b < cand.size(); ++b) {
        if (decode[cand[a]].node == decode[cand[b]].node) return false;
      }
    }
    return true;
  };
  Apriori apriori(opts);
  std::vector<std::span<const ItemId>> spans;
  spans.reserve(txns.size());
  for (const auto& t : txns) spans.emplace_back(t.data(), t.size());

  std::vector<std::vector<StageCondition>> patterns;
  for (const FrequentItemset& fi : apriori.Mine(spans)) {
    std::vector<StageCondition> pattern;
    pattern.reserve(fi.items.size());
    for (ItemId id : fi.items) pattern.push_back(decode[id]);
    std::sort(pattern.begin(), pattern.end(),
              [&g](const StageCondition& a, const StageCondition& b) {
                return g.depth(a.node) < g.depth(b.node);
              });
    patterns.push_back(std::move(pattern));
  }
  return Mine(g, paths, patterns);
}

}  // namespace flowcube
