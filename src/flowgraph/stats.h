#ifndef FLOWCUBE_FLOWGRAPH_STATS_H_
#define FLOWCUBE_FLOWGRAPH_STATS_H_

#include <vector>

#include "flowgraph/flowgraph.h"

namespace flowcube {

// Summary statistics over a flowgraph — the quantitative side of the
// paper's motivating queries ("average duration at each stage",
// "durations spent at quality control points", "contrast path durations").
// All statistics are exact functions of the flowgraph's counts; stages
// with duration '*' (fully aggregated cuboids) contribute nothing to
// duration-based metrics.

// Expected total time an item spends in the system: the sum over nodes of
// the node's mean stay duration weighted by its reach probability.
double ExpectedLeadTime(const FlowGraph& g);

// Mean stay duration at one node (0 when the node only has '*' durations).
double MeanDuration(const FlowGraph& g, FlowNodeId node);

// Expected number of stages a path visits.
double ExpectedPathLength(const FlowGraph& g);

// Probability that a path ever visits a node whose location is `location`.
double VisitProbability(const FlowGraph& g, NodeId location);

// Per-location dwell summary, aggregated over every node with that
// location (a location can appear at several tree positions).
struct LocationDwell {
  NodeId location = kInvalidNode;
  // Paths that visited the location at least once, counting multiplicity.
  uint32_t visits = 0;
  double mean_duration = 0.0;
  Duration max_duration = 0;
};

// Dwell statistics for every location occurring in the graph, sorted by
// descending visits.
std::vector<LocationDwell> DwellByLocation(const FlowGraph& g);

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_STATS_H_
