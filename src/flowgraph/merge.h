#ifndef FLOWCUBE_FLOWGRAPH_MERGE_H_
#define FLOWCUBE_FLOWGRAPH_MERGE_H_

#include <span>

#include "flowgraph/flowgraph.h"

namespace flowcube {

// Algebraic flowgraph aggregation (paper Lemma 4.2): the duration and
// transition distributions of a flowgraph are algebraic measures, so the
// flowgraph of a union of path sets is computed exactly by adding the
// per-node counts of the parts — no access to the underlying path database
// is needed. This is what lets a flowcube derive a high-level cell's
// measure from already-materialized low-level cells.
//
// The exception set is *holistic* (Lemma 4.3) and cannot be merged; the
// result of a merge carries no exceptions (re-mine them if needed).

// Adds `src`'s counts into `dst`, creating missing branches. Both graphs
// must be over the same location space (the same path abstraction level).
void MergeInto(const FlowGraph& src, FlowGraph* dst);

// Merges any number of flowgraphs into a fresh one.
FlowGraph MergeFlowGraphs(std::span<const FlowGraph* const> graphs);

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWGRAPH_MERGE_H_
