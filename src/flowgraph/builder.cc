#include "flowgraph/builder.h"

namespace flowcube {

FlowGraph BuildFlowGraph(std::span<const Path> paths) {
  FlowGraph g;
  for (const Path& p : paths) {
    g.AddPath(p);
  }
  return g;
}

}  // namespace flowcube
