#include "flowgraph/builder.h"

#include "common/audit.h"

namespace flowcube {

FlowGraph BuildFlowGraph(PathView paths) {
  FlowGraph g;
  for (const Path& p : paths) {
    g.AddPath(p);
  }
  FC_AUDIT(AuditFlowGraph(g));
  return g;
}

}  // namespace flowcube
