#include "flowgraph/builder.h"

#include "common/audit.h"
#include "common/metrics.h"

namespace flowcube {

FlowGraph BuildFlowGraph(PathView paths) {
  // BuildFlowGraph runs once per (cell, path level) from parallel loops;
  // two relaxed atomic adds per graph are negligible next to AddPath.
  static Counter& m_graphs =
      MetricRegistry::Global().counter("flowgraph.build.graphs");
  static Counter& m_paths =
      MetricRegistry::Global().counter("flowgraph.build.paths_added");
  FlowGraph g;
  for (const Path& p : paths) {
    g.AddPath(p);
  }
  m_graphs.Increment();
  m_paths.Add(paths.size());
  FC_AUDIT(AuditFlowGraph(g));
  return g;
}

}  // namespace flowcube
