#ifndef FLOWCUBE_SHARD_INGEST_SPLITTER_H_
#define FLOWCUBE_SHARD_INGEST_SPLITTER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "shard/partitioner.h"
#include "shard/shard_node.h"
#include "stream/stream_ingestor.h"

namespace flowcube {

// Per-Apply accounting of one split batch.
struct SplitStats {
  // Records routed to each shard by the partitioner.
  std::vector<size_t> per_shard;
};

// Routes incoming record batches to shards: partitions each batch with the
// ShardPartitioner (preserving intra-shard record order — shard s sees
// exactly the subsequence of the stream the partitioner assigns to it) and
// applies every non-empty sub-batch through its shard's maintainer, in
// ascending shard order. Empty sub-batches are skipped entirely, so a
// shard's epoch counter advances once per batch that actually contained
// records for it — the deterministic epoch↔record-count mapping the
// differential suite's oracle replays.
//
// Single-writer like the maintainers it drives: one logical owner calls
// Apply; concurrent queries are safe because shards publish RCU snapshots.
class ShardIngestSplitter {
 public:
  // `partitioner` and `shards` must outlive the splitter;
  // partitioner->num_shards() must equal shards.size().
  ShardIngestSplitter(const ShardPartitioner* partitioner,
                      std::vector<ShardNode*> shards);

  // Partitions `records` and applies the sub-batches. On a shard failure
  // the error is returned immediately; earlier shards of the batch have
  // already applied (the same at-least-once boundary a multi-node deploy
  // has — the differential suite only exercises the success path).
  Status Apply(std::span<const PathRecord> records, SplitStats* stats = nullptr);

  // Convenience: Apply over a stream delta's records.
  Status Apply(const StreamDelta& delta, SplitStats* stats = nullptr);

 private:
  const ShardPartitioner* partitioner_;
  std::vector<ShardNode*> shards_;
  // Reused scratch: per-shard record buffers.
  std::vector<std::vector<PathRecord>> buckets_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_SHARD_INGEST_SPLITTER_H_
