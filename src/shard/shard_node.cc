#include "shard/shard_node.h"

#include <utility>

#include "common/logging.h"
#include "stream/checkpoint.h"

namespace flowcube {

FlowCubeBuilderOptions ShardNode::ShardLocalBuild(
    const FlowCubeBuilderOptions& global) {
  FlowCubeBuilderOptions local = global;
  // Materialize every cell with at least one path: the global iceberg
  // threshold is applied coordinator-side to summed supports.
  local.min_support = 1;
  // Exceptions are holistic (Lemma 4.3) and redundancy is a global
  // property; neither can be assembled from per-shard results.
  local.compute_exceptions = false;
  local.mark_redundant = false;
  return local;
}

Result<std::unique_ptr<ShardNode>> ShardNode::Create(SchemaPtr schema,
                                                     FlowCubePlan plan,
                                                     ShardNodeOptions options) {
  IncrementalMaintainerOptions maintainer_options;
  maintainer_options.build = ShardLocalBuild(options.global_build);
  maintainer_options.window_records = options.window_records;
  Result<IncrementalMaintainer> maintainer = IncrementalMaintainer::Create(
      std::move(schema), std::move(plan), maintainer_options);
  if (!maintainer.ok()) return maintainer.status();

  std::unique_ptr<ShardNode> node(new ShardNode());
  node->maintainer_ = std::make_unique<IncrementalMaintainer>(
      std::move(maintainer).value());
  AttachToRegistry(node->maintainer_.get(), &node->registry_);
  // Publish the empty cube as epoch 1 so a record-less shard is queryable
  // (every coordinator query pins one epoch per shard; "no snapshot yet"
  // would poison the whole fan-out).
  {
    auto clone = std::make_shared<FlowCube>(node->maintainer_->cube().Clone());
    node->registry_.Publish(std::move(clone), 0);
  }
  node->service_ = std::make_unique<QueryService>(&node->registry_,
                                                  options.service);
  if (options.serve_remote) {
    ServerOptions server_options;
    server_options.max_frame_payload = kMaxInternalFramePayload;
    Result<std::unique_ptr<QueryServer>> server =
        QueryServer::Start(node->service_.get(), server_options);
    if (!server.ok()) return server.status();
    node->server_ = std::move(server).value();
  }
  return node;
}

Result<std::unique_ptr<ShardNode>> ShardNode::ColdStart(
    SchemaPtr schema, FlowCubePlan plan, ShardNodeOptions options,
    const std::string& checkpoint_file, const MappedCubeOptions& mopts) {
  IncrementalMaintainerOptions maintainer_options;
  maintainer_options.build = ShardLocalBuild(options.global_build);
  maintainer_options.window_records = options.window_records;

  // Resume the maintainer first — it validates the fingerprint against the
  // derived shard-local options and rebuilds the live-record indexes, so
  // ingestion continues exactly where the checkpointed shard stopped.
  Result<RestoredPipeline> restored =
      LoadCheckpoint(checkpoint_file, schema, plan, maintainer_options);
  if (!restored.ok()) return restored.status();

  std::unique_ptr<ShardNode> node(new ShardNode());
  node->maintainer_ = std::make_unique<IncrementalMaintainer>(
      std::move(restored.value().maintainer));
  AttachToRegistry(node->maintainer_.get(), &node->registry_);

  // Epoch 1: the checkpointed cube. The v2 path publishes the mapped file
  // image itself — the registry snapshot's columns are views into the
  // mapping, so a cold shard serves before reading most of the file.
  if (restored.value().format == kCheckpointFormatV2) {
    Result<std::shared_ptr<const MappedCube>> mapped = MappedCube::Load(
        checkpoint_file, std::move(schema), plan, maintainer_options, mopts);
    if (!mapped.ok()) return mapped.status();
    node->registry_.Publish(mapped.value()->shared_cube(),
                            mapped.value()->live_records());
  } else {
    node->registry_.Publish(
        std::make_shared<const FlowCube>(node->maintainer_->cube().Clone()),
        node->maintainer_->live_record_count());
  }

  node->service_ = std::make_unique<QueryService>(&node->registry_,
                                                  options.service);
  if (options.serve_remote) {
    ServerOptions server_options;
    server_options.max_frame_payload = kMaxInternalFramePayload;
    Result<std::unique_ptr<QueryServer>> server =
        QueryServer::Start(node->service_.get(), server_options);
    if (!server.ok()) return server.status();
    node->server_ = std::move(server).value();
  }
  return node;
}

Status ShardNode::SaveCheckpoint(const std::string& filename,
                                 uint32_t format) const {
  return flowcube::SaveCheckpoint(*maintainer_, nullptr, filename, format);
}

ShardNode::~ShardNode() {
  // The server's workers call into service_ (and through it the registry);
  // stop them before any of that is torn down.
  if (server_ != nullptr) server_->Shutdown();
  if (maintainer_ != nullptr) maintainer_->SetPublishHook(nullptr);
}

Status ShardNode::Apply(std::span<const PathRecord> records) {
  return maintainer_->ApplyRecords(records);
}

}  // namespace flowcube
