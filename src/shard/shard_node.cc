#include "shard/shard_node.h"

#include <utility>

#include "common/logging.h"

namespace flowcube {

FlowCubeBuilderOptions ShardNode::ShardLocalBuild(
    const FlowCubeBuilderOptions& global) {
  FlowCubeBuilderOptions local = global;
  // Materialize every cell with at least one path: the global iceberg
  // threshold is applied coordinator-side to summed supports.
  local.min_support = 1;
  // Exceptions are holistic (Lemma 4.3) and redundancy is a global
  // property; neither can be assembled from per-shard results.
  local.compute_exceptions = false;
  local.mark_redundant = false;
  return local;
}

Result<std::unique_ptr<ShardNode>> ShardNode::Create(SchemaPtr schema,
                                                     FlowCubePlan plan,
                                                     ShardNodeOptions options) {
  IncrementalMaintainerOptions maintainer_options;
  maintainer_options.build = ShardLocalBuild(options.global_build);
  maintainer_options.window_records = options.window_records;
  Result<IncrementalMaintainer> maintainer = IncrementalMaintainer::Create(
      std::move(schema), std::move(plan), maintainer_options);
  if (!maintainer.ok()) return maintainer.status();

  std::unique_ptr<ShardNode> node(new ShardNode());
  node->maintainer_ = std::make_unique<IncrementalMaintainer>(
      std::move(maintainer).value());
  AttachToRegistry(node->maintainer_.get(), &node->registry_);
  // Publish the empty cube as epoch 1 so a record-less shard is queryable
  // (every coordinator query pins one epoch per shard; "no snapshot yet"
  // would poison the whole fan-out).
  {
    auto clone = std::make_shared<FlowCube>(node->maintainer_->cube().Clone());
    node->registry_.Publish(std::move(clone), 0);
  }
  node->service_ = std::make_unique<QueryService>(&node->registry_,
                                                  options.service);
  if (options.serve_remote) {
    ServerOptions server_options;
    server_options.max_frame_payload = kMaxInternalFramePayload;
    Result<std::unique_ptr<QueryServer>> server =
        QueryServer::Start(node->service_.get(), server_options);
    if (!server.ok()) return server.status();
    node->server_ = std::move(server).value();
  }
  return node;
}

ShardNode::~ShardNode() {
  // The server's workers call into service_ (and through it the registry);
  // stop them before any of that is torn down.
  if (server_ != nullptr) server_->Shutdown();
  if (maintainer_ != nullptr) maintainer_->SetPublishHook(nullptr);
}

Status ShardNode::Apply(std::span<const PathRecord> records) {
  return maintainer_->ApplyRecords(records);
}

}  // namespace flowcube
