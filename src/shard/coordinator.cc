#include "shard/coordinator.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "flowcube/dump.h"
#include "flowcube/query.h"
#include "io/binary_io.h"
#include "stream/checkpoint.h"

namespace flowcube {
namespace {

// Rebuilds a status with the same code but a different message (used to
// prefix shard errors while preserving the partial-failure code).
Status StatusWithCode(Status::Code code, std::string_view msg) {
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case Status::Code::kNotFound:
      return Status::NotFound(msg);
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(msg);
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(msg);
    case Status::Code::kFailedPrecondition:
      return Status::FailedPrecondition(msg);
    case Status::Code::kInternal:
      return Status::Internal(msg);
    case Status::Code::kUnavailable:
      return Status::Unavailable(msg);
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
  }
  return Status::Internal(msg);
}

Status ShardError(size_t shard, Status::Code code, std::string_view msg) {
  return StatusWithCode(
      code, "shard " + std::to_string(shard) + ": " + std::string(msg));
}

Status MalformedBody(size_t shard) {
  return Status::Internal("shard " + std::to_string(shard) +
                          ": malformed internal response body");
}

QueryResponse ErrorResponse(const QueryRequest& request,
                            const Status& status) {
  QueryResponse response;
  response.request_id = request.request_id;
  response.epoch = 0;
  response.code = status.code();
  response.message = status.message();
  return response;
}

CoordinatorResult ErrorResult(const QueryRequest& request,
                              const Status& status,
                              std::vector<uint64_t> epochs = {}) {
  CoordinatorResult result;
  result.response = ErrorResponse(request, status);
  result.epochs = std::move(epochs);
  return result;
}

// One shard's contribution to one requested coordinate.
struct FetchedCell {
  bool found = false;
  uint32_t support = 0;
  FlowGraph graph;  // sealed (DecodeFlowGraph output)
};

Status DecodeCellFetchBody(size_t shard, std::string_view body,
                           const PathSchema& schema, size_t expected,
                           std::vector<FetchedCell>* out) {
  ByteReader r(body);
  uint32_t n = 0;
  if (!r.U32(&n).ok() || n != expected) return MalformedBody(shard);
  out->clear();
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t found = 0;
    if (!r.U8(&found).ok()) return MalformedBody(shard);
    if (found == 0) continue;
    if (found != 1) return MalformedBody(shard);
    FetchedCell& cell = (*out)[i];
    cell.found = true;
    if (!r.U32(&cell.support).ok()) return MalformedBody(shard);
    if (!DecodeFlowGraph(&r, schema, &cell.graph).ok()) {
      return MalformedBody(shard);
    }
  }
  if (!r.AtEnd()) return MalformedBody(shard);
  return Status::OK();
}

Status DecodeKey(ByteReader* r, Itemset* key) {
  uint32_t n = 0;
  FC_RETURN_IF_ERROR(r->U32(&n));
  if (n > kMaxQueryValues) return Status::Internal("key too long");
  key->clear();
  key->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    FC_RETURN_IF_ERROR(r->U32(&id));
    key->push_back(id);
  }
  return Status::OK();
}

struct FetchedChildren {
  FetchedCell parent;
  std::vector<std::pair<Itemset, FetchedCell>> children;
};

Status DecodeChildrenBody(size_t shard, std::string_view body,
                          const PathSchema& schema, FetchedChildren* out) {
  ByteReader r(body);
  uint8_t found = 0;
  if (!r.U8(&found).ok()) return MalformedBody(shard);
  if (found == 0) {
    uint32_t zero = 0;
    if (!r.U32(&zero).ok() || zero != 0 || !r.AtEnd()) {
      return MalformedBody(shard);
    }
    return Status::OK();
  }
  if (found != 1) return MalformedBody(shard);
  out->parent.found = true;
  if (!r.U32(&out->parent.support).ok()) return MalformedBody(shard);
  if (!DecodeFlowGraph(&r, schema, &out->parent.graph).ok()) {
    return MalformedBody(shard);
  }
  uint32_t n = 0;
  if (!r.U32(&n).ok()) return MalformedBody(shard);
  out->children.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto& [key, cell] = out->children[i];
    if (!DecodeKey(&r, &key).ok()) return MalformedBody(shard);
    cell.found = true;
    if (!r.U32(&cell.support).ok()) return MalformedBody(shard);
    if (!DecodeFlowGraph(&r, schema, &cell.graph).ok()) {
      return MalformedBody(shard);
    }
  }
  if (!r.AtEnd()) return MalformedBody(shard);
  return Status::OK();
}

struct FetchedStats {
  uint64_t records = 0;
  // cuboids[il * num_pl + pl] = (key, support) list, sorted by key.
  std::vector<std::vector<std::pair<Itemset, uint32_t>>> cuboids;
};

Status DecodeStatsBody(size_t shard, std::string_view body,
                       const FlowCubePlan& plan, FetchedStats* out) {
  ByteReader r(body);
  if (!r.U64(&out->records).ok()) return MalformedBody(shard);
  uint32_t n_il = 0;
  uint32_t n_pl = 0;
  if (!r.U32(&n_il).ok() || !r.U32(&n_pl).ok()) return MalformedBody(shard);
  // A shard running a different plan is a deployment error, not data.
  if (n_il != plan.item_levels.size() || n_pl != plan.path_levels.size()) {
    return MalformedBody(shard);
  }
  out->cuboids.resize(static_cast<size_t>(n_il) * n_pl);
  for (auto& cells : out->cuboids) {
    uint32_t n = 0;
    if (!r.U32(&n).ok()) return MalformedBody(shard);
    cells.resize(n);
    for (auto& [key, support] : cells) {
      if (!DecodeKey(&r, &key).ok()) return MalformedBody(shard);
      if (!r.U32(&support).ok()) return MalformedBody(shard);
    }
  }
  if (!r.AtEnd()) return MalformedBody(shard);
  return Status::OK();
}

WireCellCoord ToWire(const CellCoords& coords) {
  WireCellCoord wire;
  wire.il_index = static_cast<uint32_t>(coords.il_index);
  wire.key.assign(coords.key.begin(), coords.key.end());
  return wire;
}

// Merged (support, graph) of one coordinate across shards, in ascending
// shard order so the accumulated counts are order-deterministic.
struct MergedCell {
  uint64_t support = 0;
  FlowGraph graph;  // mutable accumulator
};

void MergeShard(const FetchedCell& fetched, MergedCell* merged) {
  if (!fetched.found) return;
  merged->support += fetched.support;
  merged->graph.MergeFrom(fetched.graph);
}

}  // namespace

ShardCoordinator::ShardCoordinator(SchemaPtr schema, FlowCubePlan plan,
                                   ShardBackend* backend,
                                   ShardCoordinatorOptions options)
    : schema_(std::move(schema)),
      skeleton_(std::move(plan), schema_),
      backend_(backend),
      options_(options) {
  FC_CHECK(backend_ != nullptr);
  FC_CHECK_MSG(backend_->num_shards() > 0, "coordinator needs >= 1 shard");
}

Result<std::vector<std::string>> ShardCoordinator::FanOut(
    const QueryRequest& internal, std::vector<uint64_t>* epochs) const {
  const size_t n = backend_->num_shards();
  std::vector<std::string> bodies;
  bodies.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    Result<QueryResponse> response = backend_->Call(s, internal);
    if (!response.ok()) {
      return ShardError(s, response.status().code(),
                        response.status().message());
    }
    if (response->code != Status::Code::kOk) {
      return ShardError(s, response->code, response->message);
    }
    epochs->push_back(response->epoch);
    bodies.push_back(std::move(response->body));
  }
  return bodies;
}

CoordinatorResult ShardCoordinator::Execute(const QueryRequest& request) const {
  switch (request.type) {
    case RequestType::kPointLookup:
      return PointLookup(request, /*or_ancestor=*/false);
    case RequestType::kCellOrAncestor:
      return PointLookup(request, /*or_ancestor=*/true);
    case RequestType::kDrillDown:
      return DrillDown(request);
    case RequestType::kSimilarity:
      return Similarity(request);
    case RequestType::kStats:
      return Stats(request);
    case RequestType::kCellFetchBatch:
    case RequestType::kChildrenFetch:
    case RequestType::kStatsFetch:
      break;
  }
  return ErrorResult(request,
                     Status::InvalidArgument(
                         "internal request types are not accepted by the "
                         "coordinator"));
}

CoordinatorResult ShardCoordinator::PointLookup(const QueryRequest& request,
                                                bool or_ancestor) const {
  // Shape errors first, with the single-node CheckShape vocabulary.
  if (request.pl_index >= skeleton_.plan().path_levels.size()) {
    return ErrorResult(request,
                       Status::InvalidArgument("pl_index out of range"));
  }
  const PathSchema& schema = skeleton_.schema();
  if (request.values.size() != schema.num_dimensions()) {
    // Matches ResolveCellCoords' size error before candidate expansion can
    // index dimensions out of range.
    Result<CellCoords> bad =
        ResolveCellCoords(skeleton_, request.values, request.pl_index);
    return ErrorResult(request, bad.status());
  }

  // The candidate list, in probe order. For a point lookup it is just the
  // requested cell; for cell-or-ancestor it is the whole generalization
  // closure, fanned out in ONE internal round per shard so every candidate
  // is answered at the same pinned epoch.
  std::vector<std::vector<std::string>> candidates;
  if (or_ancestor) {
    Result<std::vector<std::vector<std::string>>> closure =
        EnumerateAncestorCandidates(schema, request.values);
    if (!closure.ok()) return ErrorResult(request, closure.status());
    candidates = std::move(closure).value();
  } else {
    candidates.push_back(request.values);
  }

  std::vector<CellCoords> resolved;
  resolved.reserve(candidates.size());
  for (const std::vector<std::string>& candidate : candidates) {
    Result<CellCoords> coords =
        ResolveCellCoords(skeleton_, candidate, request.pl_index);
    if (coords.ok()) {
      resolved.push_back(std::move(coords).value());
      continue;
    }
    // Unmaterialized-cuboid candidates are walkable for cell-or-ancestor
    // (exactly FlowCubeQuery::CellOrAncestor's rule); every other error —
    // and any error on a plain point lookup — surfaces.
    if (!or_ancestor ||
        coords.status().code() != Status::Code::kNotFound) {
      return ErrorResult(request, coords.status());
    }
  }
  if (resolved.empty()) {
    return ErrorResult(
        request,
        Status::NotFound(
            "no materialized ancestor (not even the apex) for the "
            "requested cell"));
  }

  QueryRequest internal;
  internal.type = RequestType::kCellFetchBatch;
  internal.request_id = request.request_id;
  internal.pl_index = request.pl_index;
  internal.coords.reserve(resolved.size());
  for (const CellCoords& coords : resolved) {
    internal.coords.push_back(ToWire(coords));
  }

  CoordinatorResult result;
  Result<std::vector<std::string>> bodies = FanOut(internal, &result.epochs);
  if (!bodies.ok()) {
    return ErrorResult(request, bodies.status(), std::move(result.epochs));
  }
  std::vector<std::vector<FetchedCell>> per_shard(bodies->size());
  for (size_t s = 0; s < bodies->size(); ++s) {
    Status decoded = DecodeCellFetchBody(s, (*bodies)[s], schema,
                                         resolved.size(), &per_shard[s]);
    if (!decoded.ok()) {
      return ErrorResult(request, decoded, std::move(result.epochs));
    }
  }

  const uint64_t delta = std::max<uint32_t>(options_.min_support, 1);
  for (size_t i = 0; i < resolved.size(); ++i) {
    MergedCell merged;
    for (const std::vector<FetchedCell>& shard : per_shard) {
      MergeShard(shard[i], &merged);
    }
    if (merged.support < delta) continue;
    // First candidate at or above the global threshold is the answer
    // (candidates are in CellOrAncestor probe order).
    FlowCell cell;
    cell.dims = resolved[i].key;
    cell.support = static_cast<uint32_t>(merged.support);
    cell.graph = merged.graph.Canonical();
    result.response.request_id = request.request_id;
    result.response.body =
        "cell " + skeleton_.CellName(cell.dims) + "\nil " +
        std::to_string(resolved[i].il_index) + " pl " +
        std::to_string(request.pl_index) + "\n" + DumpFlowCell(cell);
    return result;
  }

  const Status miss =
      or_ancestor
          ? Status::NotFound(
                "no materialized ancestor (not even the apex) for the "
                "requested cell")
          : Status::NotFound("cell " + skeleton_.CellName(resolved[0].key) +
                             " is not materialized (below the iceberg "
                             "threshold or pruned)");
  return ErrorResult(request, miss, std::move(result.epochs));
}

CoordinatorResult ShardCoordinator::DrillDown(const QueryRequest& request) const {
  if (request.pl_index >= skeleton_.plan().path_levels.size()) {
    return ErrorResult(request,
                       Status::InvalidArgument("pl_index out of range"));
  }
  if (request.dim >= skeleton_.schema().num_dimensions()) {
    return ErrorResult(
        request, Status::InvalidArgument("dimension index out of range"));
  }
  Result<CellCoords> parent =
      ResolveCellCoords(skeleton_, request.values, request.pl_index);
  if (!parent.ok()) return ErrorResult(request, parent.status());

  QueryRequest internal;
  internal.type = RequestType::kChildrenFetch;
  internal.request_id = request.request_id;
  internal.pl_index = request.pl_index;
  internal.dim = request.dim;
  internal.coords.push_back(ToWire(*parent));

  CoordinatorResult result;
  Result<std::vector<std::string>> bodies = FanOut(internal, &result.epochs);
  if (!bodies.ok()) {
    return ErrorResult(request, bodies.status(), std::move(result.epochs));
  }
  std::vector<FetchedChildren> per_shard(bodies->size());
  for (size_t s = 0; s < bodies->size(); ++s) {
    Status decoded =
        DecodeChildrenBody(s, (*bodies)[s], skeleton_.schema(), &per_shard[s]);
    if (!decoded.ok()) {
      return ErrorResult(request, decoded, std::move(result.epochs));
    }
  }

  const uint64_t delta = std::max<uint32_t>(options_.min_support, 1);
  uint64_t parent_support = 0;
  for (const FetchedChildren& shard : per_shard) {
    if (shard.parent.found) parent_support += shard.parent.support;
  }
  if (parent_support < delta) {
    return ErrorResult(
        request,
        Status::NotFound("cell " + skeleton_.CellName(parent->key) +
                         " is not materialized (below the iceberg "
                         "threshold or pruned)"),
        std::move(result.epochs));
  }

  // std::map keeps children in ascending key order — the same coordinate
  // sort the single-node drill-down body uses.
  std::map<Itemset, MergedCell> children;
  for (const FetchedChildren& shard : per_shard) {
    for (const auto& [key, cell] : shard.children) {
      MergeShard(cell, &children[key]);
    }
  }

  std::string body;
  size_t materialized = 0;
  for (const auto& [key, merged] : children) {
    if (merged.support < delta) continue;
    ++materialized;
  }
  body = "children " + std::to_string(materialized) + "\n";
  for (auto& [key, merged] : children) {
    if (merged.support < delta) continue;
    FlowCell cell;
    cell.dims = key;
    cell.support = static_cast<uint32_t>(merged.support);
    cell.graph = merged.graph.Canonical();
    body += "child " + skeleton_.CellName(cell.dims) + "\n" +
            DumpFlowCell(cell);
  }
  result.response.request_id = request.request_id;
  result.response.body = std::move(body);
  return result;
}

CoordinatorResult ShardCoordinator::Similarity(const QueryRequest& request) const {
  if (request.pl_index >= skeleton_.plan().path_levels.size()) {
    return ErrorResult(request,
                       Status::InvalidArgument("pl_index out of range"));
  }
  Result<CellCoords> a =
      ResolveCellCoords(skeleton_, request.values, request.pl_index);
  if (!a.ok()) return ErrorResult(request, a.status());
  // b's resolution error may only surface after a's materialization is
  // known (the single-node service evaluates Cell(a) fully before touching
  // b), so hold it until a's support has been summed.
  Result<CellCoords> b =
      ResolveCellCoords(skeleton_, request.values_b, request.pl_index);

  QueryRequest internal;
  internal.type = RequestType::kCellFetchBatch;
  internal.request_id = request.request_id;
  internal.pl_index = request.pl_index;
  internal.coords.push_back(ToWire(*a));
  if (b.ok()) internal.coords.push_back(ToWire(*b));

  CoordinatorResult result;
  Result<std::vector<std::string>> bodies = FanOut(internal, &result.epochs);
  if (!bodies.ok()) {
    return ErrorResult(request, bodies.status(), std::move(result.epochs));
  }
  std::vector<std::vector<FetchedCell>> per_shard(bodies->size());
  for (size_t s = 0; s < bodies->size(); ++s) {
    Status decoded =
        DecodeCellFetchBody(s, (*bodies)[s], skeleton_.schema(),
                            internal.coords.size(), &per_shard[s]);
    if (!decoded.ok()) {
      return ErrorResult(request, decoded, std::move(result.epochs));
    }
  }

  const uint64_t delta = std::max<uint32_t>(options_.min_support, 1);
  MergedCell merged_a;
  for (const std::vector<FetchedCell>& shard : per_shard) {
    MergeShard(shard[0], &merged_a);
  }
  if (merged_a.support < delta) {
    return ErrorResult(
        request,
        Status::NotFound("cell " + skeleton_.CellName(a->key) +
                         " is not materialized (below the iceberg "
                         "threshold or pruned)"),
        std::move(result.epochs));
  }
  if (!b.ok()) {
    return ErrorResult(request, b.status(), std::move(result.epochs));
  }
  MergedCell merged_b;
  for (const std::vector<FetchedCell>& shard : per_shard) {
    MergeShard(shard[1], &merged_b);
  }
  if (merged_b.support < delta) {
    return ErrorResult(
        request,
        Status::NotFound("cell " + skeleton_.CellName(b->key) +
                         " is not materialized (below the iceberg "
                         "threshold or pruned)"),
        std::move(result.epochs));
  }

  // Canonicalize both sides: the distance scan walks nodes in id order, so
  // float accumulation order — and therefore the printed %.17g — must not
  // depend on how many shards contributed counts.
  const double distance =
      FlowGraphDistance(merged_a.graph.Canonical(), merged_b.graph.Canonical(),
                        options_.similarity);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "distance %.17g\n", distance);
  result.response.request_id = request.request_id;
  result.response.body = buf;
  return result;
}

CoordinatorResult ShardCoordinator::Stats(const QueryRequest& request) const {
  QueryRequest internal;
  internal.type = RequestType::kStatsFetch;
  internal.request_id = request.request_id;

  CoordinatorResult result;
  Result<std::vector<std::string>> bodies = FanOut(internal, &result.epochs);
  if (!bodies.ok()) {
    return ErrorResult(request, bodies.status(), std::move(result.epochs));
  }
  std::vector<FetchedStats> per_shard(bodies->size());
  for (size_t s = 0; s < bodies->size(); ++s) {
    Status decoded =
        DecodeStatsBody(s, (*bodies)[s], skeleton_.plan(), &per_shard[s]);
    if (!decoded.ok()) {
      return ErrorResult(request, decoded, std::move(result.epochs));
    }
  }

  const uint64_t delta = std::max<uint32_t>(options_.min_support, 1);
  uint64_t records = 0;
  size_t cells = 0;
  const size_t num_cuboids = skeleton_.num_cuboids();
  std::map<Itemset, uint64_t> supports;
  for (const FetchedStats& shard : per_shard) records += shard.records;
  for (size_t c = 0; c < num_cuboids; ++c) {
    supports.clear();
    for (const FetchedStats& shard : per_shard) {
      for (const auto& [key, support] : shard.cuboids[c]) {
        supports[key] += support;
      }
    }
    for (const auto& [key, support] : supports) {
      if (support >= delta) ++cells;
    }
  }

  // Redundancy analysis is a whole-cube post-pass a sharded deployment does
  // not run (DESIGN.md §15), so the global count is by definition 0.
  result.response.request_id = request.request_id;
  result.response.body = "records " + std::to_string(records) + "\ncuboids " +
                         std::to_string(num_cuboids) + "\ncells " +
                         std::to_string(cells) + "\nredundant 0\n";
  return result;
}

}  // namespace flowcube
