#ifndef FLOWCUBE_SHARD_COORDINATOR_H_
#define FLOWCUBE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "flowcube/flowcube.h"
#include "flowgraph/similarity.h"
#include "serve/protocol.h"
#include "shard/backend.h"

namespace flowcube {

// Coordinator knobs.
struct ShardCoordinatorOptions {
  // The *global* iceberg threshold delta: a cell exists for clients when
  // its per-shard supports sum to at least this. Must equal the
  // min_support a monolithic build would use.
  uint32_t min_support = 2;
  // Distance options for kSimilarity (the single-node service uses the
  // defaults; keep them unless every node agrees).
  SimilarityOptions similarity;
};

// One coordinator answer: the public FCQP response plus the epoch vector —
// for each shard, the snapshot epoch its contribution was pinned at. The
// response's own epoch field is always 0: a fanned-out answer has no single
// epoch, the vector is the honest version. Every public query costs
// exactly one internal round per shard, so each shard's slice of the
// answer is internally consistent at its pinned epoch by construction.
// `epochs` is empty when the query failed before fan-out (resolution or
// shape errors) and partial when a shard failed mid-fan-out.
struct CoordinatorResult {
  QueryResponse response;
  std::vector<uint64_t> epochs;
};

// Fans public FCQP queries out to N shards and merges their results into
// byte-canonical responses (DESIGN.md §15). The coordinator holds no cube
// data — only a "skeleton" FlowCube (plan + schema + item catalog, zero
// cells) for name resolution and rendering; measures arrive from shards as
// serialized flowgraphs, are combined with the algebraic MergeFrom in
// ascending shard order, canonicalized (FlowGraph::Canonical — shard
// counts must not leak into node numbering), and rendered with the same
// dump primitives the single-node service uses. Responses are therefore
// byte-identical for any shard count and both transports; the shard
// differential suite pins this against a 1-shard deployment.
//
// Error semantics mirror the single-node QueryService exactly (same codes,
// same messages) for every data-dependent outcome. Transport failures add
// the partial-failure vocabulary: kUnavailable / kDeadlineExceeded /
// kInternal with a "shard <i>: " message prefix.
class ShardCoordinator {
 public:
  // `backend` must outlive the coordinator. `schema`/`plan` must be the
  // ones every shard runs (dimension-item ids are derived from the schema,
  // so coordinates resolved here mean the same thing on every shard).
  ShardCoordinator(SchemaPtr schema, FlowCubePlan plan, ShardBackend* backend,
                   ShardCoordinatorOptions options = {});

  // Executes one public query (kPointLookup, kCellOrAncestor, kDrillDown,
  // kSimilarity, kStats). Internal request types are rejected with
  // kInvalidArgument. Thread-safe if the backend's Call is.
  CoordinatorResult Execute(const QueryRequest& request) const;

  // The catalog/plan skeleton (no cells); exposed for tests.
  const FlowCube& skeleton() const { return skeleton_; }

 private:
  // Sends `internal` to every shard in ascending order, collecting bodies
  // and epochs. Any shard error aborts with a "shard <i>: "-prefixed
  // status of the same code.
  Result<std::vector<std::string>> FanOut(const QueryRequest& internal,
                                          std::vector<uint64_t>* epochs) const;

  CoordinatorResult PointLookup(const QueryRequest& request,
                                bool or_ancestor) const;
  CoordinatorResult DrillDown(const QueryRequest& request) const;
  CoordinatorResult Similarity(const QueryRequest& request) const;
  CoordinatorResult Stats(const QueryRequest& request) const;

  SchemaPtr schema_;
  FlowCube skeleton_;
  ShardBackend* backend_;
  ShardCoordinatorOptions options_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_SHARD_COORDINATOR_H_
