#include "shard/backend.h"

#include <utility>

#include "common/logging.h"

namespace flowcube {

LocalShardBackend::LocalShardBackend(std::vector<const QueryService*> services)
    : services_(std::move(services)) {
  for (const QueryService* service : services_) FC_CHECK(service != nullptr);
}

Result<QueryResponse> LocalShardBackend::Call(size_t shard,
                                              const QueryRequest& request) {
  FC_CHECK(shard < services_.size());
  return services_[shard]->Execute(request);
}

RemoteShardBackend::RemoteShardBackend(std::vector<uint16_t> ports,
                                       RemoteShardBackendOptions options)
    : options_(options) {
  channels_.reserve(ports.size());
  for (uint16_t port : ports) {
    auto channel = std::make_unique<Channel>();
    channel->port = port;
    channels_.push_back(std::move(channel));
  }
}

Result<QueryResponse> RemoteShardBackend::CallLocked(
    Channel* channel, const QueryRequest& request) {
  if (channel->client == nullptr) {
    ClientOptions client_options;
    client_options.connect_timeout_ms = options_.timeout_ms;
    client_options.read_timeout_ms = options_.timeout_ms;
    client_options.reconnect_attempts = options_.reconnect_attempts;
    client_options.max_frame_payload = kMaxInternalFramePayload;
    Result<ServeClient> client =
        ServeClient::Connect(channel->port, client_options);
    if (!client.ok()) return client.status();
    channel->client =
        std::make_unique<ServeClient>(std::move(client).value());
  }
  Result<QueryResponse> response = channel->client->Call(request);
  if (!response.ok()) {
    // The connection is in an unknown state after any failure; drop it so
    // the next attempt starts fresh.
    channel->client.reset();
  }
  return response;
}

Result<QueryResponse> RemoteShardBackend::Call(size_t shard,
                                               const QueryRequest& request) {
  FC_CHECK(shard < channels_.size());
  Channel* channel = channels_[shard].get();
  MutexLock lock(channel->mu);
  Result<QueryResponse> response = CallLocked(channel, request);
  if (response.ok()) return response;
  // Single retry over a fresh connection: a server-dropped idle connection
  // fails the first send or read, not the shard. A second failure is the
  // shard's true state and surfaces to the coordinator.
  return CallLocked(channel, request);
}

}  // namespace flowcube
