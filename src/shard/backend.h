#ifndef FLOWCUBE_SHARD_BACKEND_H_
#define FLOWCUBE_SHARD_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/query_service.h"

namespace flowcube {

// Transport abstraction between the coordinator and its shards: one
// synchronous call to one shard. The coordinator is transport-agnostic —
// byte-identical responses are required from both implementations, which
// the shard differential suite enforces by running every scenario through
// each.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  // Executes `request` on shard `shard`. Transport-level failures surface
  // as the partial-failure vocabulary: kUnavailable (shard unreachable),
  // kDeadlineExceeded (per-shard timeout), kInternal (broken mid-call).
  virtual Result<QueryResponse> Call(size_t shard,
                                     const QueryRequest& request) = 0;

  virtual size_t num_shards() const = 0;
};

// In-process transport: shards are threads in this address space and the
// backend invokes each shard's QueryService directly (which still pins one
// RCU snapshot per call — exactly the isolation a remote shard has).
class LocalShardBackend : public ShardBackend {
 public:
  // `services[i]` must outlive the backend.
  explicit LocalShardBackend(std::vector<const QueryService*> services);

  Result<QueryResponse> Call(size_t shard,
                             const QueryRequest& request) override;
  size_t num_shards() const override { return services_.size(); }

 private:
  std::vector<const QueryService*> services_;
};

// Remote-transport knobs.
struct RemoteShardBackendOptions {
  // Per-shard connect/read deadline for one call attempt.
  int timeout_ms = 5000;
  // Extra connect attempts (with exponential backoff) when establishing a
  // connection.
  int reconnect_attempts = 3;
};

// FCQP transport: each shard is fronted by a QueryServer and the backend
// speaks the wire protocol through one ServeClient per shard, with the
// internal frame cap, a per-shard timeout on every call, and a single
// retry over a fresh connection when a call fails mid-conversation (the
// server may have dropped an idle connection; one reconnect distinguishes
// that from a dead shard). Calls are serialized per shard; different
// shards proceed independently.
class RemoteShardBackend : public ShardBackend {
 public:
  RemoteShardBackend(std::vector<uint16_t> ports,
                     RemoteShardBackendOptions options = {});

  Result<QueryResponse> Call(size_t shard,
                             const QueryRequest& request) override;
  size_t num_shards() const override { return channels_.size(); }

 private:
  struct Channel {
    Mutex mu;
    uint16_t port = 0;
    std::unique_ptr<ServeClient> client FC_GUARDED_BY(mu);
  };

  Result<QueryResponse> CallLocked(Channel* channel,
                                   const QueryRequest& request)
      FC_EXCLUSIVE_LOCKS_REQUIRED(channel->mu);

  RemoteShardBackendOptions options_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_SHARD_BACKEND_H_
