#ifndef FLOWCUBE_SHARD_SHARD_NODE_H_
#define FLOWCUBE_SHARD_SHARD_NODE_H_

#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "store/mapped_cube.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {

// Knobs of one shard.
struct ShardNodeOptions {
  // The *global* construction options of the sharded deployment — the ones
  // a monolithic build of the whole database would use. The shard derives
  // its local options from these via ShardLocalBuild(): local min_support
  // drops to 1 and exception mining / redundancy marking turn off, because
  // the iceberg threshold, exceptions, and redundancy are global properties
  // only the coordinator (or nobody, for the holistic ones) can evaluate.
  FlowCubeBuilderOptions global_build;
  // Sliding window passed through to the shard maintainer.
  uint32_t window_records = 0;
  // Serve-path cache of the shard's QueryService. Internal fetches bypass
  // it (they are not kPointLookup), so the default is fine.
  QueryServiceOptions service;
  // When true the shard fronts itself with a QueryServer speaking FCQP on
  // a loopback ephemeral port (the remote transport); when false the shard
  // is queried in-process through service().
  bool serve_remote = false;
};

// One shard of a sharded FlowCube deployment: its own IncrementalMaintainer
// over the records the partitioner routes here, its own SnapshotRegistry
// (RCU epochs, exactly as in the single-node serving stack), a QueryService
// over that registry, and optionally a QueryServer fronting it all over
// FCQP. Created with one epoch already published (the empty cube), so a
// shard that has not yet received a single record still answers queries —
// a freshly resharded deployment is queryable immediately.
//
// Why min_support is forced to 1 locally: a cell globally above the
// iceberg threshold can be locally below it on every shard (its paths
// spread out). Shards therefore materialize every cell they hold paths for
// and the coordinator applies the global delta to summed supports; local
// pruning would silently lose globally-frequent cells.
class ShardNode {
 public:
  // Derives the shard-local build options from the global ones. Exposed so
  // the differential suite's oracle can rebuild a shard's cube with exactly
  // the options the shard runs.
  static FlowCubeBuilderOptions ShardLocalBuild(
      const FlowCubeBuilderOptions& global);

  // Validates options and publishes epoch 1 (the empty cube). Rejects
  // window_records combined with compute_exceptions exactly as the
  // maintainer does.
  static Result<std::unique_ptr<ShardNode>> Create(SchemaPtr schema,
                                                   FlowCubePlan plan,
                                                   ShardNodeOptions options);

  // Like Create, but epoch 1 is the cube stored in `checkpoint_file`
  // instead of the empty cube, and the maintainer resumes that file's live
  // records — a restarted shard is queryable at its pre-restart state
  // before any re-ingestion. The checkpoint must have been written by this
  // shard's SaveCheckpoint (the config fingerprint covers the derived
  // shard-local options, so a monolithic checkpoint is rejected). For v2
  // files the published epoch is the zero-copy mapped image
  // (store/mapped_cube.h); v1 files publish a heap clone of the restored
  // cube.
  static Result<std::unique_ptr<ShardNode>> ColdStart(
      SchemaPtr schema, FlowCubePlan plan, ShardNodeOptions options,
      const std::string& checkpoint_file,
      const MappedCubeOptions& mopts = {});

  // Checkpoints this shard's maintainer to `filename` (no ingestor state —
  // the splitter upstream owns buffering). `format` as in SaveCheckpoint:
  // kCheckpointFormatV1 / V2 / 0 for the env default.
  Status SaveCheckpoint(const std::string& filename,
                        uint32_t format = 0) const;

  ~ShardNode();
  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  // Applies one sub-batch of records. Publishes the next epoch on success
  // (the maintainer's registry hook). Single-writer, like the maintainer.
  Status Apply(std::span<const PathRecord> records);

  const IncrementalMaintainer& maintainer() const { return *maintainer_; }
  const SnapshotRegistry& registry() const { return registry_; }
  const QueryService& service() const { return *service_; }

  // The FCQP port when serve_remote was set; 0 otherwise.
  uint16_t port() const { return server_ ? server_->port() : 0; }

  uint64_t current_epoch() const { return registry_.current_epoch(); }
  size_t live_record_count() const { return maintainer_->live_record_count(); }

 private:
  ShardNode() = default;

  std::unique_ptr<IncrementalMaintainer> maintainer_;
  SnapshotRegistry registry_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<QueryServer> server_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_SHARD_SHARD_NODE_H_
