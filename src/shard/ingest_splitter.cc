#include "shard/ingest_splitter.h"

#include "common/logging.h"

namespace flowcube {

ShardIngestSplitter::ShardIngestSplitter(const ShardPartitioner* partitioner,
                                         std::vector<ShardNode*> shards)
    : partitioner_(partitioner), shards_(std::move(shards)) {
  FC_CHECK(partitioner_ != nullptr);
  FC_CHECK_MSG(partitioner_->num_shards() == shards_.size(),
               "partitioner shard count disagrees with the shard list");
  for (ShardNode* shard : shards_) FC_CHECK(shard != nullptr);
  buckets_.resize(shards_.size());
}

Status ShardIngestSplitter::Apply(std::span<const PathRecord> records,
                                  SplitStats* stats) {
  for (std::vector<PathRecord>& bucket : buckets_) bucket.clear();
  for (const PathRecord& record : records) {
    const size_t shard = partitioner_->ShardOf(record);
    FC_CHECK_MSG(shard < buckets_.size(),
                 "partitioner returned an out-of-range shard");
    buckets_[shard].push_back(record);
  }
  if (stats != nullptr) {
    stats->per_shard.assign(shards_.size(), 0);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (stats != nullptr) stats->per_shard[s] = buckets_[s].size();
    if (buckets_[s].empty()) continue;
    FC_RETURN_IF_ERROR(shards_[s]->Apply(buckets_[s]));
  }
  return Status::OK();
}

Status ShardIngestSplitter::Apply(const StreamDelta& delta, SplitStats* stats) {
  return Apply(std::span<const PathRecord>(delta.records), stats);
}

}  // namespace flowcube
