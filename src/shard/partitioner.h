#ifndef FLOWCUBE_SHARD_PARTITIONER_H_
#define FLOWCUBE_SHARD_PARTITIONER_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "path/path.h"

namespace flowcube {

// Assigns each path record to one of N shards (DESIGN.md §15). The
// assignment must be a pure function of the record and the construction
// parameters — never of clocks, random state, or arrival order — so that
// re-partitioning the same database always lands every record on the same
// shard; the shard differential suite's oracle replays depend on it.
class ShardPartitioner {
 public:
  virtual ~ShardPartitioner() = default;

  // The shard index of `record`, in [0, num_shards()).
  virtual size_t ShardOf(const PathRecord& record) const = 0;

  virtual size_t num_shards() const = 0;

  // Stable identifier for logs and bench labels ("dims_hash", "range").
  virtual std::string name() const = 0;
};

// Hash partitioner over the record's item-dimension ids: FNV-1a folded over
// dims, modulo the shard count. Spreads any dimension mix evenly and needs
// no knowledge of the schema.
class DimsHashPartitioner : public ShardPartitioner {
 public:
  explicit DimsHashPartitioner(size_t num_shards);

  size_t ShardOf(const PathRecord& record) const override;
  size_t num_shards() const override { return num_shards_; }
  std::string name() const override { return "dims_hash"; }

 private:
  size_t num_shards_;
};

// Range partitioner over the leading dimension's node-id space, the
// EPC-range style of the RFID literature: contiguous id ranges map to
// consecutive shards, so co-ranged items (think consecutive EPC blocks)
// stay colocated. `id_space` is the leading dimension's node count
// (PathSchema::dimensions[0].NodeCount()); ids at or beyond it clamp into
// the last shard rather than fault.
class RangePartitioner : public ShardPartitioner {
 public:
  RangePartitioner(size_t num_shards, size_t id_space);

  size_t ShardOf(const PathRecord& record) const override;
  size_t num_shards() const override { return num_shards_; }
  std::string name() const override { return "range"; }

 private:
  size_t num_shards_;
  size_t id_space_;
};

// Builds a partitioner by name: "dims_hash" (default) or "range". The
// FLOWCUBE_SHARD_PARTITIONER knob feeds this. `id_space` is only consulted
// by "range".
Result<std::unique_ptr<ShardPartitioner>> MakePartitioner(
    const std::string& kind, size_t num_shards, size_t id_space);

}  // namespace flowcube

#endif  // FLOWCUBE_SHARD_PARTITIONER_H_
