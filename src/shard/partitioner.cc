#include "shard/partitioner.h"

#include <algorithm>

#include "common/logging.h"

namespace flowcube {

DimsHashPartitioner::DimsHashPartitioner(size_t num_shards)
    : num_shards_(num_shards) {
  FC_CHECK_MSG(num_shards_ > 0, "partitioner needs at least one shard");
}

size_t DimsHashPartitioner::ShardOf(const PathRecord& record) const {
  // FNV-1a over the dimension ids' little-endian bytes: deterministic,
  // platform-independent, and entirely derived from the record.
  uint64_t h = 1469598103934665603ull;
  for (NodeId d : record.dims) {
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (static_cast<uint64_t>(d) >> (8 * byte)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return static_cast<size_t>(h % num_shards_);
}

RangePartitioner::RangePartitioner(size_t num_shards, size_t id_space)
    : num_shards_(num_shards), id_space_(id_space) {
  FC_CHECK_MSG(num_shards_ > 0, "partitioner needs at least one shard");
  FC_CHECK_MSG(id_space_ > 0, "range partitioner needs a non-empty id space");
}

size_t RangePartitioner::ShardOf(const PathRecord& record) const {
  FC_CHECK_MSG(!record.dims.empty(),
               "range partitioner needs a leading dimension value");
  const size_t id = std::min(static_cast<size_t>(record.dims[0]),
                             id_space_ - 1);
  // Even split of [0, id_space) into num_shards contiguous ranges.
  return id * num_shards_ / id_space_;
}

Result<std::unique_ptr<ShardPartitioner>> MakePartitioner(
    const std::string& kind, size_t num_shards, size_t id_space) {
  if (num_shards == 0) {
    return Status::InvalidArgument("shard count must be positive");
  }
  if (kind.empty() || kind == "dims_hash") {
    return std::unique_ptr<ShardPartitioner>(
        new DimsHashPartitioner(num_shards));
  }
  if (kind == "range") {
    if (id_space == 0) {
      return Status::InvalidArgument(
          "range partitioner needs a positive id space");
    }
    return std::unique_ptr<ShardPartitioner>(
        new RangePartitioner(num_shards, id_space));
  }
  return Status::InvalidArgument("unknown partitioner kind: " + kind);
}

}  // namespace flowcube
