#include "mining/transaction.h"

#include <algorithm>

namespace flowcube {

std::span<const ItemId> Transaction::DimItems(
    const ItemCatalog& catalog) const {
  const auto split = std::lower_bound(
      items.begin(), items.end(), static_cast<ItemId>(catalog.num_dim_items()));
  return {items.data(), static_cast<size_t>(split - items.begin())};
}

std::span<const ItemId> Transaction::StageItems(
    const ItemCatalog& catalog) const {
  const auto split = std::lower_bound(
      items.begin(), items.end(), static_cast<ItemId>(catalog.num_dim_items()));
  const size_t offset = static_cast<size_t>(split - items.begin());
  return {items.data() + offset, items.size() - offset};
}

std::string FrequentItemsetToString(const ItemCatalog& catalog,
                                    const FrequentItemset& fi) {
  std::string out = "{";
  for (size_t i = 0; i < fi.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += catalog.ToString(fi.items[i]);
  }
  out += "} : " + std::to_string(fi.support);
  return out;
}

}  // namespace flowcube
