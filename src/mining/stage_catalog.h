#ifndef FLOWCUBE_MINING_STAGE_CATALOG_H_
#define FLOWCUBE_MINING_STAGE_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hierarchy/concept_hierarchy.h"

namespace flowcube {

// Identifier of an interned location prefix. kEmptyPrefix is the empty
// prefix (start of every path).
using PrefixId = uint32_t;
inline constexpr PrefixId kEmptyPrefix = 0;

// Interns location prefixes — the "fdt" part of the paper's stage encoding
// (Section 5, Table 3): a stage is identified by the full sequence of
// locations from the start of the (aggregated) path up to and including the
// stage's own location. Prefixes form a trie; the trie structure is what
// lets the miners check in O(depth) whether two stages can appear in the
// same path (one prefix must strictly extend the other).
//
// One trie serves every path abstraction level: nodes are location NodeIds,
// which are unique across the location hierarchy regardless of level.
class PrefixTrie {
 public:
  PrefixTrie();

  // Interns (or finds) the child of `parent` labelled with `location`.
  PrefixId Intern(PrefixId parent, NodeId location);

  // Finds the child or returns kInvalidPrefix.
  static constexpr PrefixId kInvalidPrefix = static_cast<PrefixId>(-1);
  PrefixId Find(PrefixId parent, NodeId location) const;

  // Number of interned prefixes including the empty prefix.
  size_t size() const { return parent_.size(); }

  // The last location of a prefix; kInvalidNode for the empty prefix.
  NodeId location(PrefixId p) const;

  // The prefix without its last location; kInvalidPrefix for the empty one.
  PrefixId parent(PrefixId p) const;

  // Number of locations in the prefix (0 for the empty prefix).
  int depth(PrefixId p) const;

  // True when `ancestor` is a strict prefix of `descendant` (both interned).
  // Two stages can co-occur in one path exactly when one's prefix is a
  // strict ancestor of the other's.
  bool IsStrictAncestor(PrefixId ancestor, PrefixId descendant) const;

  // The ancestor of `p` at exactly `depth` (walks up). Requires
  // depth <= depth(p).
  PrefixId AncestorAtDepth(PrefixId p, int depth) const;

  // The locations of the prefix from first to last.
  std::vector<NodeId> Locations(PrefixId p) const;

  // Renders like "f>d>t" using hierarchy names.
  std::string ToString(PrefixId p, const ConceptHierarchy& locations) const;

 private:
  std::vector<PrefixId> parent_;
  std::vector<NodeId> location_;
  std::vector<int> depth_;
  // (parent, location) -> child.
  std::unordered_map<uint64_t, PrefixId> children_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_STAGE_CATALOG_H_
