#ifndef FLOWCUBE_MINING_LOCAL_SEGMENTS_H_
#define FLOWCUBE_MINING_LOCAL_SEGMENTS_H_

#include <span>
#include <vector>

#include "mining/mining_result.h"
#include "mining/transform.h"

namespace flowcube {

// Mines the frequent path segments of one cell directly from its member
// transactions: each member is projected onto the stage items of one path
// abstraction level and run through plain exact Apriori at `min_support`.
//
// For a cell whose members are exactly the transactions containing its
// dimension items (which holds for every cuboid cell: a record maps to the
// cell's coordinates at item level Il iff its transaction contains them),
// this returns the same patterns with the same supports as
// MiningResult::SegmentsForCell over a global Shared run, in the same order
// (support desc, stages asc). The incremental maintainer uses it to re-mine
// only the cells a delta touched instead of re-running Shared on the whole
// database.
std::vector<SegmentPattern> MineCellSegments(const TransformedDatabase& tdb,
                                             std::span<const uint32_t> tids,
                                             int path_level,
                                             uint32_t min_support);

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_LOCAL_SEGMENTS_H_
