#ifndef FLOWCUBE_MINING_MINING_RESULT_H_
#define FLOWCUBE_MINING_MINING_RESULT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hierarchy/lattice.h"
#include "mining/transform.h"

namespace flowcube {

// A frequent path segment of one cell: a set of stage items (all at one
// path abstraction level) with the support it reached among the cell's
// paths.
struct SegmentPattern {
  Itemset stages;
  uint32_t support = 0;
};

// Organizes a miner's raw frequent itemsets into the structure the flowcube
// needs: frequent cells (itemsets of dimension items only) and, for each
// cell, the frequent path segments mined inside it (itemsets combining the
// cell's dimension items with stage items).
//
// The empty itemset is the apex cell (every dimension at '*'); its support
// is the database size and its segments are the dimension-free patterns.
class MiningResult {
 public:
  // `db` must outlive the result. `frequent` is a miner's output.
  MiningResult(const TransformedDatabase* db,
               std::vector<FrequentItemset> frequent);

  const TransformedDatabase& db() const { return *db_; }

  // Every mined frequent itemset.
  const std::vector<FrequentItemset>& all() const { return frequent_; }

  // Support of a cell given by its sorted dimension items; empty = apex.
  // nullopt when the cell is not frequent (or, for non-apex cells, unknown).
  std::optional<uint32_t> CellSupport(const Itemset& cell_dims) const;

  // All frequent cells (dimension-only itemsets), including the apex.
  std::vector<Itemset> FrequentCells() const;

  // Frequent cells whose dimension items sit exactly at `level` (absent
  // dimensions must be at level 0).
  std::vector<Itemset> CellsAtLevel(const ItemLevel& level) const;

  // The frequent path segments of a cell at a path abstraction level:
  // patterns whose dimension part equals `cell_dims` and whose stage items
  // all live at path level `path_level`. Sorted by decreasing support.
  std::vector<SegmentPattern> SegmentsForCell(const Itemset& cell_dims,
                                              int path_level) const;

 private:
  const TransformedDatabase* db_;
  std::vector<FrequentItemset> frequent_;
  // cell dims -> indices into frequent_ (both cell-only and cell+segment).
  std::unordered_map<Itemset, std::vector<uint32_t>, ItemsetHash> by_cell_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_MINING_RESULT_H_
