#include "mining/apriori.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "mining/counting_backend.h"

namespace flowcube {
namespace {

constexpr uint32_t kNoCandidate = static_cast<uint32_t>(-1);

// Slot-table sizing, mirroring Cuboid's open addressing (flowcube.cc): the
// counter index is built once and probed billions of times, so it trades
// memory for short probe chains — load factor capped at 1/2 rather than
// Cuboid's mutating-table 7/10.
constexpr size_t kMinSlotCapacity = 16;
constexpr size_t kMaxLoadPercent = 50;

uint64_t PairKey(ItemId a, ItemId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

void EnsureLength(std::vector<uint64_t>* v, size_t len) {
  if (v->size() <= len) v->resize(len + 1, 0);
}

}  // namespace

void CandidateCounter::Clear() {
  finalized_ = false;
  candidates_.clear();
  counts_.clear();
  slots_.clear();
  next_.clear();
  slot_mask_ = 0;
  cand_begin_.clear();
  cand_items_.clear();
  relevant_.clear();
  first_.clear();
}

void CandidateCounter::Reserve(size_t expected_candidates) {
  FC_DCHECK(!finalized_);
  candidates_.reserve(expected_candidates);
  counts_.reserve(expected_candidates);
}

size_t CandidateCounter::Add(Itemset candidate) {
  FC_DCHECK(!finalized_);
  FC_DCHECK(candidate.size() >= 2);
  FC_DCHECK(std::is_sorted(candidate.begin(), candidate.end()));
  const size_t idx = candidates_.size();
  candidates_.push_back(std::move(candidate));
  counts_.push_back(0);
  return idx;
}

void CandidateCounter::Finalize() {
  FC_CHECK(!finalized_);
  finalized_ = true;
  if (candidates_.empty()) return;

  ItemId max_item = 0;
  size_t total_items = 0;
  for (const Itemset& cand : candidates_) {
    max_item = std::max(max_item, cand.back());
    total_items += cand.size();
  }
  relevant_.assign(static_cast<size_t>(max_item) + 1, 0);
  first_.assign(static_cast<size_t>(max_item) + 1, 0);

  size_t capacity = kMinSlotCapacity;
  while (capacity * kMaxLoadPercent < candidates_.size() * 100) capacity <<= 1;
  slot_mask_ = capacity - 1;
  slots_.assign(capacity, Slot{});
  next_.assign(candidates_.size(), kNoCandidate);
  cand_begin_.clear();
  cand_begin_.reserve(candidates_.size() + 1);
  cand_begin_.push_back(0);
  cand_items_.clear();
  cand_items_.reserve(total_items);

  // Probe lengths accumulate locally and flush as one bulk Record per
  // distinct length (metrics.h: never Record inside per-item loops).
  std::vector<uint64_t> probe_hist;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const Itemset& cand = candidates_[i];
    for (ItemId id : cand) {
      relevant_[id] = 1;
      cand_items_.push_back(id);
    }
    cand_begin_.push_back(static_cast<uint32_t>(cand_items_.size()));
    first_[cand[0]] = 1;
    const uint64_t key = PairKey(cand[0], cand[1]);
    uint64_t h = key * simd::kHashMultiplier;
    h ^= h >> 32;
    size_t slot = static_cast<size_t>(h & slot_mask_);
    size_t probes = 1;
    while (slots_[slot].key != key && slots_[slot].head != kNoCandidate) {
      slot = (slot + 1) & slot_mask_;
      ++probes;
    }
    if (probe_hist.size() <= probes) probe_hist.resize(probes + 1, 0);
    probe_hist[probes]++;
    slots_[slot].key = key;
    next_[i] = slots_[slot].head;
    slots_[slot].head = static_cast<uint32_t>(i);
  }

  static Histogram& m_probe =
      MetricRegistry::Global().histogram("mining.counter.probe_length");
  for (size_t p = 1; p < probe_hist.size(); ++p) {
    m_probe.Record(static_cast<double>(p), probe_hist[p]);
  }
}

void CandidateCounter::CountTransaction(std::span<const ItemId> raw_txn,
                                        simd::Level level) {
  CountInto(raw_txn, level, &counts_, &scratch_);
}

void CandidateCounter::CountTransaction(std::span<const ItemId> raw_txn,
                                        Shard* shard,
                                        simd::Level level) const {
  if (shard->counts_.size() != counts_.size()) {
    shard->counts_.assign(counts_.size(), 0);
  }
  CountInto(raw_txn, level, &shard->counts_, &shard->scratch_);
}

void CandidateCounter::Absorb(const Shard& shard) {
  if (shard.counts_.empty()) return;  // shard never counted anything
  FC_CHECK(shard.counts_.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += shard.counts_[i];
}

void CandidateCounter::CountInto(std::span<const ItemId> raw_txn,
                                 simd::Level level,
                                 std::vector<uint32_t>* counts,
                                 Scratch* scratch) const {
  FC_DCHECK(finalized_);
  if (candidates_.empty() || raw_txn.size() < 2) return;
  // Drop items no candidate contains: transactions carry every abstraction
  // level while a pass's candidates touch few of them.
  if (scratch->filtered.size() < raw_txn.size()) {
    scratch->filtered.resize(raw_txn.size());
  }
  const size_t m =
      simd::FilterByU32Mask(raw_txn.data(), raw_txn.size(), relevant_.data(),
                            relevant_.size(), scratch->filtered.data(), level);
  if (m < 2) return;
  const ItemId* txn = scratch->filtered.data();
  if (scratch->slots.size() < m) scratch->slots.resize(m);
  uint32_t* slots = scratch->slots.data();
  for (size_t i = 0; i + 1 < m; ++i) {
    if (!first_[txn[i]]) continue;
    // Probe starts for the whole (txn[i], txn[j>i]) suffix in one kernel
    // call, then resolve in blocks behind a prefetch front so the slot
    // lines are in cache by the time the key compare touches them.
    const size_t nb = m - i - 1;
    const ItemId* bs = txn + i + 1;
    simd::PairProbeSlots(txn[i], bs, nb, slot_mask_, slots, level);
    constexpr size_t kBlock = 16;
    for (size_t j0 = 0; j0 < nb; j0 += kBlock) {
      const size_t j1 = std::min(j0 + kBlock, nb);
      for (size_t j = j0; j < j1; ++j) simd::PrefetchRead(&slots_[slots[j]]);
      for (size_t j = j0; j < j1; ++j) {
        const uint64_t key = PairKey(txn[i], bs[j]);
        size_t slot = slots[j];
        while (slots_[slot].key != key &&
               slots_[slot].head != kNoCandidate) {
          slot = (slot + 1) & slot_mask_;
        }
        // An absent key stops on an empty slot, whose chain is empty — no
        // separate hit test needed.
        for (uint32_t idx = slots_[slot].head; idx != kNoCandidate;
             idx = next_[idx]) {
          const size_t ce = cand_begin_[idx + 1];
          // Verify the remaining items (cand[2..]) against txn beyond bs[j];
          // both sides are sorted and cand's first two items are its
          // smallest. Candidate items stream from the flat arena.
          size_t ci = cand_begin_[idx] + 2;
          size_t ti = i + 1 + j + 1;
          while (ci < ce && ti < m) {
            if (txn[ti] < cand_items_[ci]) {
              ++ti;
            } else if (txn[ti] == cand_items_[ci]) {
              ++ti;
              ++ci;
            } else {
              break;
            }
          }
          if (ci == ce) (*counts)[idx]++;
        }
      }
    }
  }
}

std::vector<Itemset> AprioriJoin(const std::vector<Itemset>& frequent) {
  std::vector<Itemset> out;
  if (frequent.empty()) return out;
  [[maybe_unused]] const size_t k1 = frequent.front().size();
  // Group by shared (k-2)-prefix; frequent is sorted lexicographically so
  // groups are contiguous.
  size_t group_start = 0;
  for (size_t i = 1; i <= frequent.size(); ++i) {
    const bool same_group =
        i < frequent.size() &&
        std::equal(frequent[i].begin(), frequent[i].end() - 1,
                   frequent[group_start].begin(),
                   frequent[group_start].end() - 1);
    if (same_group) continue;
    for (size_t a = group_start; a < i; ++a) {
      for (size_t b = a + 1; b < i; ++b) {
        Itemset cand = frequent[a];
        cand.push_back(frequent[b].back());
        FC_DCHECK(cand.size() == k1 + 1);
        out.push_back(std::move(cand));
      }
    }
    group_start = i;
  }
  return out;
}

bool AllSubsetsFrequent(
    const Itemset& candidate,
    const std::unordered_set<Itemset, ItemsetHash>& frequent_set) {
  Itemset sub;
  sub.reserve(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    sub.clear();
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) sub.push_back(candidate[i]);
    }
    if (!frequent_set.contains(sub)) return false;
  }
  return true;
}

uint64_t MiningStats::TotalCandidates() const {
  uint64_t total = 0;
  for (uint64_t c : candidates_per_length) total += c;
  return total;
}

uint64_t MiningStats::TotalFrequent() const {
  uint64_t total = 0;
  for (uint64_t c : frequent_per_length) total += c;
  return total;
}

void MiningStats::Merge(const MiningStats& other) {
  if (candidates_per_length.size() < other.candidates_per_length.size()) {
    candidates_per_length.resize(other.candidates_per_length.size(), 0);
  }
  if (frequent_per_length.size() < other.frequent_per_length.size()) {
    frequent_per_length.resize(other.frequent_per_length.size(), 0);
  }
  for (size_t i = 0; i < other.candidates_per_length.size(); ++i) {
    candidates_per_length[i] += other.candidates_per_length[i];
  }
  for (size_t i = 0; i < other.frequent_per_length.size(); ++i) {
    frequent_per_length[i] += other.frequent_per_length[i];
  }
  passes += other.passes;
}

Apriori::Apriori(AprioriOptions options) : options_(std::move(options)) {
  FC_CHECK_MSG(options_.min_support >= 1, "min_support must be >= 1");
}

std::vector<FrequentItemset> Apriori::Mine(
    const std::vector<std::span<const ItemId>>& txns) {
  std::vector<FrequentItemset> result;
  // stats_ accumulates across Mine calls (Cubing runs one Apriori over many
  // cells), so metric deltas are tracked in locals and flushed at the end.
  uint64_t passes_this_call = 0;
  uint64_t candidates_this_call = 0;
  uint64_t pruned_this_call = 0;

  // Pass 1: count single items.
  std::unordered_map<ItemId, uint32_t> item_counts;
  for (const auto& txn : txns) {
    for (ItemId id : txn) item_counts[id]++;
  }
  stats_.passes++;
  passes_this_call++;
  EnsureLength(&stats_.candidates_per_length, 1);
  EnsureLength(&stats_.frequent_per_length, 1);
  stats_.candidates_per_length[1] += item_counts.size();
  candidates_this_call += item_counts.size();

  std::vector<Itemset> frequent_k;
  for (const auto& [id, count] : item_counts) {
    if (count >= options_.min_support) {
      result.push_back(FrequentItemset{{id}, count});
      frequent_k.push_back({id});
    }
  }
  std::sort(frequent_k.begin(), frequent_k.end());
  stats_.frequent_per_length[1] += frequent_k.size();

  // Passes k = 2, 3, ... until no candidates survive.
  while (!frequent_k.empty()) {
    const size_t k = frequent_k.front().size() + 1;
    std::unordered_set<Itemset, ItemsetHash> frequent_set(
        frequent_k.begin(), frequent_k.end());
    CandidateCounter counter;
    std::vector<Itemset> joined = AprioriJoin(frequent_k);
    counter.Reserve(joined.size());
    for (Itemset& cand : joined) {
      if (k > 2 && !AllSubsetsFrequent(cand, frequent_set)) {
        pruned_this_call++;
        continue;
      }
      if (options_.candidate_filter && !options_.candidate_filter(cand)) {
        pruned_this_call++;
        continue;
      }
      counter.Add(std::move(cand));
    }
    if (counter.size() == 0) break;
    counter.Finalize();

    CountAllTransactions(txns, options_.count_backend, /*pool=*/nullptr,
                         /*grain=*/256, &counter);
    stats_.passes++;
    passes_this_call++;
    EnsureLength(&stats_.candidates_per_length, k);
    EnsureLength(&stats_.frequent_per_length, k);
    stats_.candidates_per_length[k] += counter.size();
    candidates_this_call += counter.size();

    std::vector<Itemset> next;
    for (size_t i = 0; i < counter.size(); ++i) {
      if (counter.count(i) >= options_.min_support) {
        result.push_back(FrequentItemset{counter.candidate(i),
                                         counter.count(i)});
        next.push_back(counter.candidate(i));
      }
    }
    std::sort(next.begin(), next.end());
    stats_.frequent_per_length[k] += next.size();
    frequent_k = std::move(next);
  }

  {
    MetricRegistry& reg = MetricRegistry::Global();
    static Counter& m_runs = reg.counter("mining.apriori.runs");
    static Counter& m_passes = reg.counter("mining.apriori.passes");
    static Counter& m_scanned =
        reg.counter("mining.apriori.transactions_scanned");
    static Counter& m_candidates =
        reg.counter("mining.apriori.candidates_counted");
    static Counter& m_pruned = reg.counter("mining.apriori.pruned");
    static Counter& m_frequent = reg.counter("mining.apriori.frequent");
    m_runs.Increment();
    m_passes.Add(passes_this_call);
    m_scanned.Add(passes_this_call * txns.size());
    m_candidates.Add(candidates_this_call);
    m_pruned.Add(pruned_this_call);
    m_frequent.Add(result.size());
  }
  return result;
}

}  // namespace flowcube
