#ifndef FLOWCUBE_MINING_ITEM_CATALOG_H_
#define FLOWCUBE_MINING_ITEM_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mining/stage_catalog.h"
#include "path/path.h"
#include "rfid/discretizer.h"

namespace flowcube {

// Dense id of a mined item. An item is either a *dimension item* — a value
// of one path-independent dimension at some hierarchy level (the paper's
// "112" encoding) — or a *stage item* — a (prefix, duration) pair at some
// path abstraction level (the paper's "(fdt,1)" encoding).
using ItemId = uint32_t;
inline constexpr ItemId kInvalidItem = static_cast<ItemId>(-1);

// Interns all mined items. Dimension items are pre-interned at construction
// (every node at level >= 1 of every dimension hierarchy), so they occupy
// the id range [0, num_dim_items()); stage items are interned on demand
// during transaction encoding and occupy ids >= num_dim_items(). This split
// lets a sorted transaction be partitioned into its cell part and its
// path-segment part with one binary search.
class ItemCatalog {
 public:
  // Metadata of a stage item.
  struct StageInfo {
    PrefixId prefix = kEmptyPrefix;
    Duration duration = 0;
    // Index into the mining plan's path_levels.
    uint8_t path_level = 0;
  };

  explicit ItemCatalog(SchemaPtr schema);

  // The schema all dimension items are interpreted against.
  const PathSchema& schema() const { return *schema_; }

  // Total interned items (dimension + stage).
  size_t num_items() const { return dim_of_.size() + stage_info_.size(); }

  size_t num_dim_items() const { return dim_of_.size(); }

  bool IsDimItem(ItemId id) const { return id < num_dim_items(); }
  bool IsStageItem(ItemId id) const {
    return id >= num_dim_items() && id < num_items();
  }

  // --- Dimension items -----------------------------------------------------

  // The item for `node` of dimension `dim`. `node` must be at level >= 1.
  ItemId DimItem(size_t dim, NodeId node) const;

  // Dimension index / hierarchy node / hierarchy level of a dim item.
  size_t DimOf(ItemId id) const;
  NodeId NodeOf(ItemId id) const;
  int DimLevelOf(ItemId id) const;

  // --- Stage items ----------------------------------------------------------

  // Interns (or finds) the stage item (path_level, prefix, duration).
  // duration may be kAnyDuration.
  ItemId InternStageItem(uint8_t path_level, PrefixId prefix,
                         Duration duration);

  // Finds an already-interned stage item or returns kInvalidItem.
  ItemId FindStageItem(uint8_t path_level, PrefixId prefix,
                       Duration duration) const;

  const StageInfo& StageOf(ItemId id) const;

  // The shared prefix trie all stage items reference.
  const PrefixTrie& trie() const { return trie_; }
  PrefixTrie& mutable_trie() { return trie_; }

  // Renders an item for humans: "product=outerwear" or "(f>d>t,1)@L2".
  std::string ToString(ItemId id) const;

 private:
  // Corruption backdoor for tests/audit_test.cc.
  friend struct ItemCatalogTestPeer;

  SchemaPtr schema_;
  PrefixTrie trie_;

  // Dimension items, indexed by id.
  std::vector<uint16_t> dim_of_;
  std::vector<NodeId> node_of_;
  std::vector<int8_t> dim_level_of_;
  // (dim << 32 | node) -> id.
  std::unordered_map<uint64_t, ItemId> dim_lookup_;

  // Stage items, indexed by (id - num_dim_items()).
  std::vector<StageInfo> stage_info_;
  std::unordered_map<uint64_t, ItemId> stage_lookup_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_ITEM_CATALOG_H_
