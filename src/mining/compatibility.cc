#include "mining/compatibility.h"

#include "common/logging.h"

namespace flowcube {

ItemCompatibility::ItemCompatibility(const TransformedDatabase* db,
                                     bool prune_unlinkable,
                                     bool prune_ancestors)
    : db_(db),
      prune_unlinkable_(prune_unlinkable),
      prune_ancestors_(prune_ancestors) {
  FC_CHECK(db_ != nullptr);
}

bool ItemCompatibility::Compatible(ItemId a, ItemId b) const {
  const ItemCatalog& cat = db_->catalog();
  const bool a_dim = cat.IsDimItem(a);
  const bool b_dim = cat.IsDimItem(b);
  if (a_dim != b_dim) return true;  // a dimension value and a stage

  if (a_dim) {
    if (cat.DimOf(a) != cat.DimOf(b)) return true;
    const ConceptHierarchy& h = db_->schema().dimensions[cat.DimOf(a)];
    const bool related = h.IsAncestorOrSelf(cat.NodeOf(a), cat.NodeOf(b)) ||
                         h.IsAncestorOrSelf(cat.NodeOf(b), cat.NodeOf(a));
    if (related) {
      // An item together with its own ancestor: the ancestor is implied, so
      // the pair carries no information.
      return !prune_ancestors_;
    }
    // Two unrelated values of one dimension can never share a transaction.
    return !prune_unlinkable_;
  }

  const auto& sa = cat.StageOf(a);
  const auto& sb = cat.StageOf(b);
  if (prune_unlinkable_) {
    // Frequent path segments live inside one cuboid, i.e. one path
    // abstraction level; and two stages can only co-occur in a path when
    // one's prefix strictly extends the other's.
    if (sa.path_level != sb.path_level) return false;
    const PrefixTrie& trie = cat.trie();
    if (!trie.IsStrictAncestor(sa.prefix, sb.prefix) &&
        !trie.IsStrictAncestor(sb.prefix, sa.prefix)) {
      return false;
    }
  }
  if (prune_ancestors_) {
    // A stage together with its duration-'*' twin at the same cut: the twin
    // is implied.
    if (sa.prefix == sb.prefix) {
      const auto& pls = db_->plan().path_levels;
      const bool same_cut =
          pls[sa.path_level].cut_index == pls[sb.path_level].cut_index;
      const bool star_twin =
          (sa.duration == kAnyDuration) != (sb.duration == kAnyDuration);
      if (same_cut && star_twin) return false;
    }
  }
  return true;
}

bool ItemCompatibility::CandidateOk(const Itemset& cand) const {
  if (cand.size() < 2) return true;
  return Compatible(cand[cand.size() - 2], cand[cand.size() - 1]);
}

}  // namespace flowcube
