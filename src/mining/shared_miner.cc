#include "mining/shared_miner.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "mining/counting_backend.h"

namespace flowcube {
namespace {

uint64_t PairKey(ItemId a, ItemId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

void EnsureLength(std::vector<uint64_t>* v, size_t len) {
  if (v->size() <= len) v->resize(len + 1, 0);
}

// Open-addressing counter for pair keys, used by the pass-1 pre-count. Much
// cheaper than unordered_map in the hot loop; grows by rehashing when load
// exceeds 1/2. The table is allocated lazily on the first Add so that idle
// per-thread instances cost nothing.
class FlatPairCounts {
 public:
  void Add(uint64_t key, uint32_t delta = 1) {
    if (keys_.empty()) Rehash(1 << 16);
    size_t slot = Probe(key);
    if (keys_[slot] == kEmpty) {
      if (++used_ * 2 > keys_.size()) {
        Grow();
        slot = Probe(key);
        used_++;
      }
      keys_[slot] = key;
    }
    counts_[slot] += delta;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) fn(keys_[i], counts_[i]);
    }
  }

 private:
  static constexpr uint64_t kEmpty = static_cast<uint64_t>(-1);

  size_t Probe(uint64_t key) const {
    uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    size_t slot = static_cast<size_t>(h & mask_);
    while (keys_[slot] != kEmpty && keys_[slot] != key) {
      slot = (slot + 1) & mask_;
    }
    return slot;
  }

  void Rehash(size_t capacity) {
    keys_.assign(capacity, kEmpty);
    counts_.assign(capacity, 0);
    mask_ = capacity - 1;
    used_ = 0;
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_counts = std::move(counts_);
    Rehash(old_keys.size() * 2);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      const size_t slot = Probe(old_keys[i]);
      keys_[slot] = old_keys[i];
      counts_[slot] = old_counts[i];
      used_++;
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> counts_;
  uint64_t mask_ = 0;
  size_t used_ = 0;
};

}  // namespace

SharedMiner::SharedMiner(const TransformedDatabase& db,
                         SharedMinerOptions options)
    : db_(db),
      options_(options),
      compat_(&db_, options.prune_unlinkable, options.prune_ancestors) {
  FC_CHECK_MSG(options_.min_support >= 1, "min_support must be >= 1");
}

bool SharedMiner::IsHighLevel(ItemId id) const {
  const ItemCatalog& cat = db_.catalog();
  if (cat.IsDimItem(id)) {
    return cat.DimLevelOf(id) <= options_.high_level_dim_level;
  }
  const auto& info = cat.StageOf(id);
  return db_.plan().path_levels[info.path_level].duration_level == 0;
}

ItemId SharedMiner::GeneralizeItem(ItemId id) const {
  const ItemCatalog& cat = db_.catalog();
  if (IsHighLevel(id)) return id;
  if (cat.IsDimItem(id)) {
    const size_t dim = cat.DimOf(id);
    const ConceptHierarchy& h = db_.schema().dimensions[dim];
    const NodeId anc =
        h.AncestorAtLevel(cat.NodeOf(id), options_.high_level_dim_level);
    if (h.Level(anc) == 0) return kInvalidItem;
    // The generalization is only usable when its level is actually mined
    // (emitted into transactions); otherwise its pre-counts would be void.
    const auto& levels = db_.plan().dim_levels[dim];
    if (!std::binary_search(levels.begin(), levels.end(), h.Level(anc))) {
      return kInvalidItem;
    }
    return cat.DimItem(dim, anc);
  }
  const auto& info = cat.StageOf(id);
  const int star_level = db_.plan().DurationStarLevel(info.path_level);
  if (star_level < 0) return kInvalidItem;
  return cat.FindStageItem(static_cast<uint8_t>(star_level), info.prefix,
                           kAnyDuration);
}

bool SharedMiner::GeneralizeItemset(const Itemset& in, Itemset* out) const {
  out->clear();
  for (ItemId id : in) {
    const ItemId g = GeneralizeItem(id);
    if (g == kInvalidItem) return false;
    out->push_back(g);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

bool SharedMiner::ItemsCompatible(ItemId a, ItemId b) const {
  return compat_.Compatible(a, b);
}

SharedMiningOutput SharedMiner::Run() {
  SharedMiningOutput out;
  hl_counts_.clear();
  const auto& txns = db_.transactions();
  const ItemCatalog& cat = db_.catalog();
  const uint32_t minsup = options_.min_support;
  const bool use_filters = options_.prune_unlinkable || options_.prune_ancestors;

  // The transaction scans (pass 1 and every candidate-counting pass) are
  // split across this pool; each shard counts into private state merged at
  // the pass boundary, so supports are exact and thread-count independent.
  ThreadPool pool(ResolveNumThreads(options_.num_threads));
  const size_t num_shards = pool.num_threads();
  // Scheduling grain of the scans: transactions are cheap individually, so
  // hand them out a few hundred at a time.
  constexpr size_t kScanGrain = 256;

  // --- Pass 1: count every length-1 item; pre-count co-occurring
  // high-level pairs (the P1 of Algorithm 1, step 1).
  std::vector<uint32_t> item_counts(cat.num_items(), 0);
  FlatPairCounts hl_pairs;
  // Bitmap of high-level items, hoisted out of the scan loop.
  std::vector<uint8_t> is_hl(cat.num_items(), 0);
  if (options_.prune_precount) {
    for (ItemId id = 0; id < is_hl.size(); ++id) {
      is_hl[id] = IsHighLevel(id) ? 1 : 0;
    }
  }
  {
    std::vector<std::vector<uint32_t>> shard_items(num_shards);
    std::vector<FlatPairCounts> shard_pairs(num_shards);
    pool.ParallelForChunks(
        txns.size(), kScanGrain,
        [&](size_t shard, size_t begin, size_t end) {
          std::vector<uint32_t>& counts = shard_items[shard];
          if (counts.empty()) counts.assign(cat.num_items(), 0);
          FlatPairCounts& pairs = shard_pairs[shard];
          std::vector<ItemId> hl_buf;
          for (size_t ti = begin; ti < end; ++ti) {
            const Transaction& t = txns[ti];
            for (ItemId id : t.items) counts[id]++;
            if (!options_.prune_precount) continue;
            hl_buf.clear();
            for (ItemId id : t.items) {
              if (is_hl[id]) hl_buf.push_back(id);
            }
            // Compatibility is not checked per occurrence — counting a
            // superset of the needed pairs is cheaper than filtering in the
            // hot loop, and incompatible pairs are simply never looked up
            // later.
            for (size_t i = 0; i + 1 < hl_buf.size(); ++i) {
              for (size_t j = i + 1; j < hl_buf.size(); ++j) {
                pairs.Add(PairKey(hl_buf[i], hl_buf[j]));
              }
            }
          }
        });
    for (const std::vector<uint32_t>& counts : shard_items) {
      if (counts.empty()) continue;
      for (size_t i = 0; i < item_counts.size(); ++i) {
        item_counts[i] += counts[i];
      }
    }
    for (const FlatPairCounts& pairs : shard_pairs) {
      pairs.ForEach([&](uint64_t key, uint32_t c) { hl_pairs.Add(key, c); });
    }
  }
  out.stats.passes = 1;
  EnsureLength(&out.stats.candidates_per_length, 1);
  EnsureLength(&out.stats.frequent_per_length, 1);
  out.stats.candidates_per_length[1] += cat.num_items();

  std::vector<Itemset> frequent_k;
  for (ItemId id = 0; id < item_counts.size(); ++id) {
    if (item_counts[id] >= minsup) {
      out.frequent.push_back(FrequentItemset{{id}, item_counts[id]});
      frequent_k.push_back({id});
    }
  }
  std::sort(frequent_k.begin(), frequent_k.end());
  out.stats.frequent_per_length[1] += frequent_k.size();

  // Register pre-counted pairs whose items are both frequent; others cannot
  // generalize any viable candidate.
  if (options_.prune_precount) {
    EnsureLength(&out.stats.candidates_per_length, 2);
    hl_pairs.ForEach([&](uint64_t key, uint32_t count) {
      const ItemId a = static_cast<ItemId>(key >> 32);
      const ItemId b = static_cast<ItemId>(key & 0xffffffffu);
      if (item_counts[a] < minsup || item_counts[b] < minsup) return;
      if (use_filters && !ItemsCompatible(a, b)) return;
      hl_counts_.emplace(Itemset{a, b}, count);
      out.stats.candidates_per_length[2]++;
    });
  }

  // Span views of the transactions, built once for the counting backends.
  std::vector<std::span<const ItemId>> txn_views;
  txn_views.reserve(txns.size());
  for (const Transaction& t : txns) txn_views.push_back(t.items);

  // --- Passes k = 2, 3, ...
  // Metrics accumulate into locals and flush once at the end of Run, so
  // the hot candidate loops never touch shared state.
  uint64_t pruned_subset = 0;
  uint64_t pruned_compat = 0;
  uint64_t pruned_precount = 0;
  uint64_t precount_resolved = 0;
  while (!frequent_k.empty()) {
    const size_t k = frequent_k.front().size() + 1;
    std::unordered_set<Itemset, ItemsetHash> frequent_set(frequent_k.begin(),
                                                          frequent_k.end());
    CandidateCounter counter;
    std::vector<Itemset> next_frequent;
    std::vector<Itemset> hl_frequent_k;  // resolved high-level patterns
    Itemset generalized;

    EnsureLength(&out.stats.candidates_per_length, k + 1);
    EnsureLength(&out.stats.frequent_per_length, k + 1);

    std::vector<Itemset> joined = AprioriJoin(frequent_k);
    counter.Reserve(joined.size());
    for (Itemset& cand : joined) {
      if (k > 2 && !AllSubsetsFrequent(cand, frequent_set)) {
        pruned_subset++;
        continue;
      }
      // The join extends by one item, so the only item pair not already
      // vetted inside some frequent (k-1)-subset is the last one.
      if (use_filters && !ItemsCompatible(cand[k - 2], cand[k - 1])) {
        pruned_compat++;
        continue;
      }

      if (options_.prune_precount) {
        bool all_hl = true;
        for (ItemId id : cand) {
          if (!IsHighLevel(id)) {
            all_hl = false;
            break;
          }
        }
        if (all_hl) {
          // Already pre-counted one pass earlier: resolve, never recount.
          precount_resolved++;
          const auto it = hl_counts_.find(cand);
          const uint32_t count = it == hl_counts_.end() ? 0 : it->second;
          if (count >= minsup) {
            out.stats.frequent_per_length[k]++;
            out.frequent.push_back(FrequentItemset{cand, count});
            hl_frequent_k.push_back(cand);
            next_frequent.push_back(std::move(cand));
          }
          continue;
        }
        // Prune a low-level candidate whose high-level generalization is
        // known infrequent (precounting covers the whole high-level space,
        // so a missing entry means support below threshold).
        if (GeneralizeItemset(cand, &generalized) && generalized.size() >= 2) {
          const auto it = hl_counts_.find(generalized);
          const uint32_t gcount = it == hl_counts_.end() ? 0 : it->second;
          if (gcount < minsup) {
            pruned_precount++;
            continue;
          }
        }
      }
      counter.Add(std::move(cand));
    }
    const size_t num_regular = counter.size();
    out.stats.candidates_per_length[k] += num_regular;

    // Pre-count high-level patterns of length k+1 alongside the length-k
    // scan (Algorithm 1, step 6).
    std::vector<size_t> precount_idx;
    if (options_.prune_precount && !hl_frequent_k.empty()) {
      std::sort(hl_frequent_k.begin(), hl_frequent_k.end());
      std::unordered_set<Itemset, ItemsetHash> hl_set(hl_frequent_k.begin(),
                                                      hl_frequent_k.end());
      for (Itemset& cand : AprioriJoin(hl_frequent_k)) {
        if (!AllSubsetsFrequent(cand, hl_set)) continue;
        if (use_filters && !ItemsCompatible(cand[k - 1], cand[k])) continue;
        precount_idx.push_back(counter.Add(std::move(cand)));
      }
      out.stats.candidates_per_length[k + 1] += precount_idx.size();
    }

    if (counter.size() > 0) {
      counter.Finalize();
      CountAllTransactions(txn_views, options_.count_backend, &pool,
                           kScanGrain, &counter);
      out.stats.passes++;
    }

    for (size_t i = 0; i < num_regular; ++i) {
      if (counter.count(i) >= minsup) {
        out.stats.frequent_per_length[k]++;
        out.frequent.push_back(
            FrequentItemset{counter.candidate(i), counter.count(i)});
        next_frequent.push_back(counter.candidate(i));
      }
    }
    for (size_t idx : precount_idx) {
      hl_counts_.emplace(counter.candidate(idx), counter.count(idx));
    }

    std::sort(next_frequent.begin(), next_frequent.end());
    frequent_k = std::move(next_frequent);
  }

  {
    MetricRegistry& reg = MetricRegistry::Global();
    static Counter& m_runs = reg.counter("mining.shared.runs");
    static Counter& m_passes = reg.counter("mining.shared.passes");
    static Counter& m_scanned =
        reg.counter("mining.shared.transactions_scanned");
    static Counter& m_candidates =
        reg.counter("mining.shared.candidates_counted");
    static Counter& m_frequent = reg.counter("mining.shared.frequent");
    static Counter& m_pruned_subset =
        reg.counter("mining.shared.pruned_subset");
    static Counter& m_pruned_compat =
        reg.counter("mining.shared.pruned_compat");
    static Counter& m_pruned_precount =
        reg.counter("mining.shared.pruned_precount");
    static Counter& m_precount_resolved =
        reg.counter("mining.shared.precount_resolved");
    m_runs.Increment();
    m_passes.Add(out.stats.passes);
    m_scanned.Add(out.stats.passes * txns.size());
    m_candidates.Add(out.stats.TotalCandidates());
    m_frequent.Add(out.frequent.size());
    m_pruned_subset.Add(pruned_subset);
    m_pruned_compat.Add(pruned_compat);
    m_pruned_precount.Add(pruned_precount);
    m_precount_resolved.Add(precount_resolved);
  }
  return out;
}

}  // namespace flowcube
