#include "mining/item_catalog.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace flowcube {
namespace {

uint64_t DimKey(size_t dim, NodeId node) {
  return (static_cast<uint64_t>(dim) << 32) | node;
}

uint64_t StageKey(uint8_t path_level, PrefixId prefix, Duration duration) {
  // prefix < 2^28, path_level < 16, duration + 1 < 2^32 (durations are
  // discretized, small, and >= -1).
  FC_DCHECK(prefix < (1u << 28));
  FC_DCHECK(path_level < 16);
  FC_DCHECK(duration >= -1 &&
            duration + 1 < static_cast<int64_t>(1) << 32);
  return (static_cast<uint64_t>(prefix) << 36) |
         (static_cast<uint64_t>(path_level) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(duration + 1));
}

}  // namespace

ItemCatalog::ItemCatalog(SchemaPtr schema) : schema_(std::move(schema)) {
  FC_CHECK_MSG(schema_ != nullptr, "ItemCatalog requires a schema");
  // Pre-intern every dimension value at every level >= 1 ('*' items are
  // dropped, the paper's "pruning of path independent dimensions aggregated
  // to the highest abstraction level").
  for (size_t d = 0; d < schema_->num_dimensions(); ++d) {
    const ConceptHierarchy& h = schema_->dimensions[d];
    for (NodeId n = 0; n < h.NodeCount(); ++n) {
      if (h.Level(n) == 0) continue;
      const ItemId id = static_cast<ItemId>(dim_of_.size());
      dim_of_.push_back(static_cast<uint16_t>(d));
      node_of_.push_back(n);
      dim_level_of_.push_back(static_cast<int8_t>(h.Level(n)));
      dim_lookup_.emplace(DimKey(d, n), id);
    }
  }
}

ItemId ItemCatalog::DimItem(size_t dim, NodeId node) const {
  const auto it = dim_lookup_.find(DimKey(dim, node));
  FC_CHECK_MSG(it != dim_lookup_.end(), "unknown dimension item");
  return it->second;
}

size_t ItemCatalog::DimOf(ItemId id) const {
  FC_CHECK(IsDimItem(id));
  return dim_of_[id];
}

NodeId ItemCatalog::NodeOf(ItemId id) const {
  FC_CHECK(IsDimItem(id));
  return node_of_[id];
}

int ItemCatalog::DimLevelOf(ItemId id) const {
  FC_CHECK(IsDimItem(id));
  return dim_level_of_[id];
}

ItemId ItemCatalog::InternStageItem(uint8_t path_level, PrefixId prefix,
                                    Duration duration) {
  const uint64_t key = StageKey(path_level, prefix, duration);
  auto [it, inserted] = stage_lookup_.try_emplace(
      key, static_cast<ItemId>(num_items()));
  if (inserted) {
    stage_info_.push_back(StageInfo{prefix, duration, path_level});
  }
  return it->second;
}

ItemId ItemCatalog::FindStageItem(uint8_t path_level, PrefixId prefix,
                                  Duration duration) const {
  const auto it = stage_lookup_.find(StageKey(path_level, prefix, duration));
  return it == stage_lookup_.end() ? kInvalidItem : it->second;
}

const ItemCatalog::StageInfo& ItemCatalog::StageOf(ItemId id) const {
  FC_CHECK(IsStageItem(id));
  return stage_info_[id - num_dim_items()];
}

std::string ItemCatalog::ToString(ItemId id) const {
  if (IsDimItem(id)) {
    const size_t d = DimOf(id);
    return schema_->dimensions[d].dimension_name() + "=" +
           schema_->dimensions[d].Name(NodeOf(id));
  }
  const StageInfo& s = StageOf(id);
  return StrFormat("(%s,%s)@L%d",
                   trie_.ToString(s.prefix, schema_->locations).c_str(),
                   schema_->durations.ToString(s.duration).c_str(),
                   s.path_level);
}

}  // namespace flowcube
