#include "mining/stage_catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace flowcube {
namespace {

uint64_t ChildKey(PrefixId parent, NodeId location) {
  return (static_cast<uint64_t>(parent) << 32) | location;
}

}  // namespace

PrefixTrie::PrefixTrie() {
  parent_.push_back(kInvalidPrefix);
  location_.push_back(kInvalidNode);
  depth_.push_back(0);
}

PrefixId PrefixTrie::Intern(PrefixId parent, NodeId location) {
  FC_DCHECK(parent < parent_.size());
  const uint64_t key = ChildKey(parent, location);
  auto [it, inserted] = children_.try_emplace(
      key, static_cast<PrefixId>(parent_.size()));
  if (inserted) {
    parent_.push_back(parent);
    location_.push_back(location);
    depth_.push_back(depth_[parent] + 1);
  }
  return it->second;
}

PrefixId PrefixTrie::Find(PrefixId parent, NodeId location) const {
  const auto it = children_.find(ChildKey(parent, location));
  return it == children_.end() ? kInvalidPrefix : it->second;
}

NodeId PrefixTrie::location(PrefixId p) const {
  FC_CHECK(p < location_.size());
  return location_[p];
}

PrefixId PrefixTrie::parent(PrefixId p) const {
  FC_CHECK(p < parent_.size());
  return parent_[p];
}

int PrefixTrie::depth(PrefixId p) const {
  FC_CHECK(p < depth_.size());
  return depth_[p];
}

bool PrefixTrie::IsStrictAncestor(PrefixId ancestor,
                                  PrefixId descendant) const {
  FC_DCHECK(ancestor < parent_.size());
  FC_DCHECK(descendant < parent_.size());
  if (depth_[ancestor] >= depth_[descendant]) return false;
  return AncestorAtDepth(descendant, depth_[ancestor]) == ancestor;
}

PrefixId PrefixTrie::AncestorAtDepth(PrefixId p, int depth) const {
  FC_DCHECK(p < parent_.size());
  FC_DCHECK(depth >= 0 && depth <= depth_[p]);
  PrefixId cur = p;
  while (depth_[cur] > depth) cur = parent_[cur];
  return cur;
}

std::vector<NodeId> PrefixTrie::Locations(PrefixId p) const {
  FC_CHECK(p < parent_.size());
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(depth_[p]));
  for (PrefixId cur = p; cur != kEmptyPrefix; cur = parent_[cur]) {
    out.push_back(location_[cur]);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string PrefixTrie::ToString(PrefixId p,
                                 const ConceptHierarchy& locations) const {
  std::string out;
  for (NodeId loc : Locations(p)) {
    if (!out.empty()) out += ">";
    out += locations.Name(loc);
  }
  return out;
}

}  // namespace flowcube
