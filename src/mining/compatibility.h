#ifndef FLOWCUBE_MINING_COMPATIBILITY_H_
#define FLOWCUBE_MINING_COMPATIBILITY_H_

#include "mining/transform.h"

namespace flowcube {

// Structural co-occurrence rules over encoded items, shared by the miners:
//
//  * two unrelated values of one dimension can never share a transaction;
//  * an item never needs to be counted together with its own ancestor (the
//    ancestor is implied — Srikant & Agrawal's multi-level optimization);
//  * two stages can only share a path when one's prefix strictly extends
//    the other's, and a mined path segment lives inside a single path
//    abstraction level.
//
// SharedMiner applies these through its option toggles; CubingMiner's
// per-cell Apriori applies them unconditionally (they are local,
// within-transaction rules any multi-level Apriori implements — what
// Cubing lacks, per the paper, is the *global* cross-lattice pruning).
class ItemCompatibility {
 public:
  // `db` must outlive this object. The two flags select which rule groups
  // are enforced (both false accepts everything, which is algorithm Basic).
  ItemCompatibility(const TransformedDatabase* db, bool prune_unlinkable,
                    bool prune_ancestors);

  // True when items a and b may appear together in a candidate.
  bool Compatible(ItemId a, ItemId b) const;

  // Checks the one item pair of `cand` not already vetted by previous
  // generations: its two largest items. Valid as an Apriori candidate
  // filter because the join extends a filtered (k-1)-itemset by one item
  // larger than all others, so every other pair was checked before.
  bool CandidateOk(const Itemset& cand) const;

 private:
  const TransformedDatabase* db_;
  bool prune_unlinkable_;
  bool prune_ancestors_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_COMPATIBILITY_H_
