#include "mining/transform.h"

#include <algorithm>

#include "common/audit.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace flowcube {

Result<MiningPlan> MiningPlan::Default(const PathSchema& schema) {
  MiningPlan plan;
  plan.dim_levels.reserve(schema.num_dimensions());
  for (const ConceptHierarchy& h : schema.dimensions) {
    std::vector<int> levels;
    for (int l = 1; l <= h.MaxLevel(); ++l) levels.push_back(l);
    plan.dim_levels.push_back(std::move(levels));
  }

  const int leaf_level = schema.locations.MaxLevel();
  Result<LocationCut> fine = LocationCut::Uniform(schema.locations, leaf_level);
  if (!fine.ok()) return fine.status();
  plan.cuts.push_back(std::move(fine.value()));
  if (leaf_level > 1) {
    Result<LocationCut> coarse =
        LocationCut::Uniform(schema.locations, leaf_level - 1);
    if (!coarse.ok()) return coarse.status();
    plan.cuts.push_back(std::move(coarse.value()));
  }

  const int dur_max = schema.durations.MaxLevel();
  for (int c = 0; c < static_cast<int>(plan.cuts.size()); ++c) {
    plan.path_levels.push_back(PathLevel{c, dur_max});
    plan.path_levels.push_back(PathLevel{c, 0});
  }
  return plan;
}

int MiningPlan::DurationStarLevel(int pl) const {
  FC_CHECK(pl >= 0 && pl < static_cast<int>(path_levels.size()));
  const int cut = path_levels[static_cast<size_t>(pl)].cut_index;
  for (size_t i = 0; i < path_levels.size(); ++i) {
    if (path_levels[i].cut_index == cut && path_levels[i].duration_level == 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TransformedDatabase::TransformedDatabase(SchemaPtr schema, MiningPlan plan)
    : schema_(std::move(schema)),
      plan_(std::move(plan)),
      catalog_(std::make_unique<ItemCatalog>(schema_)),
      aggregator_(schema_) {
  FC_CHECK_MSG(plan_.dim_levels.size() == schema_->num_dimensions(),
               "plan covers a different number of dimensions than the schema");
  FC_CHECK_MSG(plan_.path_levels.size() < 16,
               "at most 15 path abstraction levels are supported");
  for (const PathLevel& pl : plan_.path_levels) {
    FC_CHECK(pl.cut_index >= 0 &&
             pl.cut_index < static_cast<int>(plan_.cuts.size()));
    FC_CHECK(pl.duration_level >= 0 &&
             pl.duration_level <= schema_->durations.MaxLevel());
  }
}

void TransformedDatabase::Append(const PathRecord& record) {
  Transaction t;
  // Dimension items at every interesting level (the multi-level encoding of
  // Table 3: "121" contributes 121 and 12*).
  for (size_t d = 0; d < record.dims.size(); ++d) {
    const ConceptHierarchy& h = schema_->dimensions[d];
    for (int level : plan_.dim_levels[d]) {
      const NodeId n = h.AncestorAtLevel(record.dims[d], level);
      if (h.Level(n) == 0) continue;  // record value above this level
      t.items.push_back(catalog_->DimItem(d, n));
    }
  }
  // Stage items at every interesting path abstraction level, encoded as
  // (prefix, duration) with the prefix interned in the shared trie.
  for (size_t pl = 0; pl < plan_.path_levels.size(); ++pl) {
    const PathLevel& level = plan_.path_levels[pl];
    const Path aggregated = aggregator_.AggregatePath(
        record.path, plan_.cuts[static_cast<size_t>(level.cut_index)],
        level.duration_level);
    PrefixId prefix = kEmptyPrefix;
    for (const Stage& s : aggregated.stages) {
      prefix = catalog_->mutable_trie().Intern(prefix, s.location);
      t.items.push_back(catalog_->InternStageItem(static_cast<uint8_t>(pl),
                                                  prefix, s.duration));
    }
  }
  std::sort(t.items.begin(), t.items.end());
  t.items.erase(std::unique(t.items.begin(), t.items.end()), t.items.end());
  txns_.push_back(std::move(t));
}

Result<TransformedDatabase> TransformPathDatabase(const PathDatabase& db,
                                                  const MiningPlan& plan) {
  if (plan.dim_levels.size() != db.schema().num_dimensions()) {
    return Status::InvalidArgument(
        "mining plan does not match the schema's dimension count");
  }
  if (plan.cuts.empty() || plan.path_levels.empty()) {
    return Status::InvalidArgument(
        "mining plan needs at least one cut and one path level");
  }
  TransformedDatabase out(db.schema_ptr(), plan);
  for (const PathRecord& rec : db.records()) {
    out.Append(rec);
  }
  FC_AUDIT(AuditItemCatalog(out.catalog()));
  return out;
}

}  // namespace flowcube
