#ifndef FLOWCUBE_MINING_APRIORI_H_
#define FLOWCUBE_MINING_APRIORI_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/simd.h"
#include "mining/transaction.h"

namespace flowcube {

// Which engine evaluates candidate supports (DESIGN.md §13). Supports are
// exact integer counts under every backend, so the choice can never change
// mining results — only how fast they arrive.
enum class CountBackend {
  kAuto,     // resolve FLOWCUBE_COUNT_BACKEND; default = horizontal SIMD
  kScalar,   // horizontal transaction scan, scalar kernels
  kSimd,     // horizontal transaction scan, SIMD kernels (active ISA level)
  kTidlist,  // vertical sorted-tidlist intersection counting
};

// Counts supports of a set of candidate itemsets (each of length >= 2,
// sorted) in one scan over transactions. Candidates are indexed by their
// two smallest items in a flat open-addressing hash table; per transaction,
// every in-transaction item pair is enumerated and the matching chain's
// candidates verified by subset check. Supports mixed candidate lengths in
// one pass, which is what lets algorithm Shared pre-count length-(k+1)
// high-level patterns while counting length-k candidates.
//
// The hot structures are laid out for the counting loop (DESIGN.md §13):
// 16-byte {key, head} slots so one cache line resolves a probe, candidate
// items in a single flat arena walked sequentially during subset
// verification, and a u32 relevance mask sized for the SIMD gather filter.
// Probe starts for a whole transaction suffix are computed by
// simd::PairProbeSlots and the slot lines software-prefetched in blocks.
//
// Usage: Add() every candidate, call Finalize() once, then CountTransaction
// per transaction — either directly, or through per-thread Shards when the
// transaction scan is split across a thread pool. CountAllTransactions
// (mining/counting_backend.h) wraps the scan behind the backend knob.
class CandidateCounter {
 public:
  // Reusable per-thread buffers of the counting kernel.
  struct Scratch {
    std::vector<ItemId> filtered;
    std::vector<uint32_t> slots;
  };

  // Private counts + scratch of one counting thread. The candidate index
  // itself is read-only during counting, so any number of threads may count
  // concurrently as long as each uses its own shard; Absorb() folds the
  // partial counts back. Counts are additive, so the totals are identical
  // to a serial scan regardless of how transactions were partitioned.
  class Shard {
   public:
    Shard() = default;

   private:
    friend class CandidateCounter;
    std::vector<uint32_t> counts_;
    Scratch scratch_;
  };

  // Removes all candidates and counts.
  void Clear();

  // Pre-sizes candidate storage (and the Finalize-time slot table) for
  // `expected_candidates` Adds, mirroring Cuboid::Reserve.
  void Reserve(size_t expected_candidates);

  // Adds a candidate (sorted, unique, length >= 2); returns its index.
  size_t Add(Itemset candidate);

  size_t size() const { return candidates_.size(); }

  // Builds the pair index, item bitmaps, and the flat candidate arena.
  // Must be called after the last Add() and before the first
  // CountTransaction(). Records per-insert probe lengths into the
  // mining.counter.probe_length histogram.
  void Finalize();

  // Registers one transaction's (sorted, duplicate-free) items against
  // every candidate, running kernels at the given SIMD level.
  void CountTransaction(std::span<const ItemId> txn,
                        simd::Level level = simd::ActiveLevel());

  // Thread-safe variant: counts into `shard`, which is lazily sized on
  // first use and must belong to exactly one thread.
  void CountTransaction(std::span<const ItemId> txn, Shard* shard,
                        simd::Level level = simd::ActiveLevel()) const;

  // Adds a shard's partial counts into the main counters (serial).
  void Absorb(const Shard& shard);

  // Adds directly into one candidate's count (counting backends that
  // evaluate candidates independently, e.g. tidlist intersection).
  void AddCount(size_t idx, uint32_t delta) { counts_[idx] += delta; }

  const Itemset& candidate(size_t idx) const { return candidates_[idx]; }
  uint32_t count(size_t idx) const { return counts_[idx]; }

 private:
  static constexpr uint32_t kNoCandidate = static_cast<uint32_t>(-1);

  // One open-addressing slot: the (first << 32 | second) pair key and the
  // head of the chain of candidate indices sharing it (chained through
  // next_). 16 bytes so a probe touches exactly one cache line for both
  // the key compare and the chain head; pad stays zero.
  struct Slot {
    uint64_t key = 0;
    uint32_t head = kNoCandidate;
    uint32_t pad = 0;
  };

  // The counting kernel: scans `txn` against the finalized index,
  // incrementing `counts` and using `scratch` for the filtered
  // transaction and the precomputed probe starts.
  void CountInto(std::span<const ItemId> txn, simd::Level level,
                 std::vector<uint32_t>* counts, Scratch* scratch) const;

  bool finalized_ = false;
  std::vector<Itemset> candidates_;
  std::vector<uint32_t> counts_;
  // Open-addressing table (power-of-two capacity, linear probing, load
  // factor <= kMaxLoadPercent/100).
  std::vector<Slot> slots_;
  std::vector<uint32_t> next_;
  uint64_t slot_mask_ = 0;
  // Flat candidate arena: items of candidate i live at
  // cand_items_[cand_begin_[i] .. cand_begin_[i+1]) — sequential memory
  // for the subset-verification walk.
  std::vector<uint32_t> cand_begin_;
  std::vector<ItemId> cand_items_;
  // Masks by item id: items appearing in any candidate (u32 0/1, the
  // layout simd::FilterByU32Mask gathers from), and items that are some
  // candidate's smallest (bytes, probed scalar).
  std::vector<uint32_t> relevant_;
  std::vector<uint8_t> first_;
  // Scratch reused across CountTransaction calls on the owner thread.
  Scratch scratch_;
};

// The classic Apriori candidate join: pairs of frequent (k-1)-itemsets
// sharing their first k-2 items produce a k-candidate. `frequent` must be
// sorted lexicographically. Returns sorted candidates.
std::vector<Itemset> AprioriJoin(const std::vector<Itemset>& frequent);

// True when every (k-1)-subset of `candidate` is present in `frequent_set`.
bool AllSubsetsFrequent(
    const Itemset& candidate,
    const std::unordered_set<Itemset, ItemsetHash>& frequent_set);

// Options of the plain Apriori miner.
struct AprioriOptions {
  // Absolute minimum support count.
  uint32_t min_support = 1;
  // Optional extra candidate filter; return false to drop a candidate
  // before counting. Applied after the standard subset-frequency prune.
  std::function<bool(const Itemset&)> candidate_filter;
  // Counting engine; kAuto honours FLOWCUBE_COUNT_BACKEND.
  CountBackend count_backend = CountBackend::kAuto;
};

// Statistics every miner reports; Figure 11 plots candidates_per_length.
struct MiningStats {
  // candidates counted / found frequent, indexed by itemset length
  // (index 0 unused).
  std::vector<uint64_t> candidates_per_length;
  std::vector<uint64_t> frequent_per_length;
  // Number of passes over the transaction data.
  int passes = 0;

  uint64_t TotalCandidates() const;
  uint64_t TotalFrequent() const;
  // Accumulates `other` into this (used when Cubing sums per-cell runs).
  void Merge(const MiningStats& other);
};

// Plain Apriori over a list of transactions (each a sorted item span). This
// is the per-cell miner that algorithm Cubing invokes; it has no knowledge
// of the item/path abstraction lattices beyond what the encoded items
// carry, so it cannot cross-prune between them — exactly the handicap the
// paper ascribes to the cubing approach.
class Apriori {
 public:
  explicit Apriori(AprioriOptions options);

  // Mines all frequent itemsets of length >= 1. Stats accumulate across
  // calls (merge per-cell runs); call stats() once at the end.
  std::vector<FrequentItemset> Mine(
      const std::vector<std::span<const ItemId>>& txns);

  const MiningStats& stats() const { return stats_; }

 private:
  AprioriOptions options_;
  MiningStats stats_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_APRIORI_H_
