#ifndef FLOWCUBE_MINING_APRIORI_H_
#define FLOWCUBE_MINING_APRIORI_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mining/transaction.h"

namespace flowcube {

// Counts supports of a set of candidate itemsets (each of length >= 2,
// sorted) in one scan over transactions. Candidates are indexed by their
// two smallest items in a flat open-addressing hash table; per transaction,
// every in-transaction item pair is enumerated and the matching chain's
// candidates verified by subset check. Supports mixed candidate lengths in
// one pass, which is what lets algorithm Shared pre-count length-(k+1)
// high-level patterns while counting length-k candidates.
//
// Usage: Add() every candidate, call Finalize() once, then CountTransaction
// per transaction — either directly, or through per-thread Shards when the
// transaction scan is split across a thread pool.
class CandidateCounter {
 public:
  // Private counts + scratch of one counting thread. The candidate index
  // itself is read-only during counting, so any number of threads may count
  // concurrently as long as each uses its own shard; Absorb() folds the
  // partial counts back. Counts are additive, so the totals are identical
  // to a serial scan regardless of how transactions were partitioned.
  class Shard {
   public:
    Shard() = default;

   private:
    friend class CandidateCounter;
    std::vector<uint32_t> counts_;
    std::vector<ItemId> filtered_;
  };

  // Removes all candidates and counts.
  void Clear();

  // Adds a candidate (sorted, unique, length >= 2); returns its index.
  size_t Add(Itemset candidate);

  size_t size() const { return candidates_.size(); }

  // Builds the pair index and item bitmaps. Must be called after the last
  // Add() and before the first CountTransaction().
  void Finalize();

  // Registers one transaction's (sorted) items against every candidate.
  void CountTransaction(std::span<const ItemId> txn);

  // Thread-safe variant: counts into `shard`, which is lazily sized on
  // first use and must belong to exactly one thread.
  void CountTransaction(std::span<const ItemId> txn, Shard* shard) const;

  // Adds a shard's partial counts into the main counters (serial).
  void Absorb(const Shard& shard);

  const Itemset& candidate(size_t idx) const { return candidates_[idx]; }
  uint32_t count(size_t idx) const { return counts_[idx]; }

 private:
  uint32_t FindSlot(uint64_t key) const;
  // The counting kernel: scans `txn` against the finalized index,
  // incrementing `counts` and using `filtered` as scratch.
  void CountInto(std::span<const ItemId> txn, std::vector<uint32_t>* counts,
                 std::vector<ItemId>* filtered) const;

  bool finalized_ = false;
  std::vector<Itemset> candidates_;
  std::vector<uint32_t> counts_;
  // Open-addressing table from (first << 32 | second) pair keys to chains
  // of candidate indices (chained through next_).
  std::vector<uint64_t> slot_key_;
  std::vector<uint32_t> slot_head_;
  std::vector<uint32_t> next_;
  uint64_t slot_mask_ = 0;
  // Bitmaps by item id: items appearing in any candidate, and items that
  // are some candidate's smallest.
  std::vector<uint8_t> relevant_;
  std::vector<uint8_t> first_;
  // Scratch buffer reused across CountTransaction calls.
  std::vector<ItemId> filtered_;
};

// The classic Apriori candidate join: pairs of frequent (k-1)-itemsets
// sharing their first k-2 items produce a k-candidate. `frequent` must be
// sorted lexicographically. Returns sorted candidates.
std::vector<Itemset> AprioriJoin(const std::vector<Itemset>& frequent);

// True when every (k-1)-subset of `candidate` is present in `frequent_set`.
bool AllSubsetsFrequent(
    const Itemset& candidate,
    const std::unordered_set<Itemset, ItemsetHash>& frequent_set);

// Options of the plain Apriori miner.
struct AprioriOptions {
  // Absolute minimum support count.
  uint32_t min_support = 1;
  // Optional extra candidate filter; return false to drop a candidate
  // before counting. Applied after the standard subset-frequency prune.
  std::function<bool(const Itemset&)> candidate_filter;
};

// Statistics every miner reports; Figure 11 plots candidates_per_length.
struct MiningStats {
  // candidates counted / found frequent, indexed by itemset length
  // (index 0 unused).
  std::vector<uint64_t> candidates_per_length;
  std::vector<uint64_t> frequent_per_length;
  // Number of passes over the transaction data.
  int passes = 0;

  uint64_t TotalCandidates() const;
  uint64_t TotalFrequent() const;
  // Accumulates `other` into this (used when Cubing sums per-cell runs).
  void Merge(const MiningStats& other);
};

// Plain Apriori over a list of transactions (each a sorted item span). This
// is the per-cell miner that algorithm Cubing invokes; it has no knowledge
// of the item/path abstraction lattices beyond what the encoded items
// carry, so it cannot cross-prune between them — exactly the handicap the
// paper ascribes to the cubing approach.
class Apriori {
 public:
  explicit Apriori(AprioriOptions options);

  // Mines all frequent itemsets of length >= 1. Stats accumulate across
  // calls (merge per-cell runs); call stats() once at the end.
  std::vector<FrequentItemset> Mine(
      const std::vector<std::span<const ItemId>>& txns);

  const MiningStats& stats() const { return stats_; }

 private:
  AprioriOptions options_;
  MiningStats stats_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_APRIORI_H_
