#ifndef FLOWCUBE_MINING_TRANSACTION_H_
#define FLOWCUBE_MINING_TRANSACTION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mining/item_catalog.h"

namespace flowcube {

// A sorted set of item ids. Used both for transactions and for mined
// itemsets/candidates.
using Itemset = std::vector<ItemId>;

// FNV-1a hash over an itemset; itemsets are always kept sorted so equal sets
// hash equally.
struct ItemsetHash {
  size_t operator()(const Itemset& items) const {
    uint64_t h = 1469598103934665603ULL;
    for (ItemId id : items) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// One transformed transaction (paper Table 3): the encoded form of one path
// record, holding the record's dimension items at every interesting level
// plus its stage items at every interesting path abstraction level. Items
// are sorted and unique; because dimension items occupy the low id range,
// the cell part and the segment part are contiguous.
struct Transaction {
  Itemset items;

  // Items that are dimension values (the potential cell coordinates).
  std::span<const ItemId> DimItems(const ItemCatalog& catalog) const;

  // Items that are path stages.
  std::span<const ItemId> StageItems(const ItemCatalog& catalog) const;
};

// A frequent itemset with its exact support count.
struct FrequentItemset {
  Itemset items;
  uint32_t support = 0;

  friend bool operator==(const FrequentItemset& a, const FrequentItemset& b) {
    return a.items == b.items && a.support == b.support;
  }
};

// Renders "{product=shoes, (f>d,2)@L0} : 4".
std::string FrequentItemsetToString(const ItemCatalog& catalog,
                                    const FrequentItemset& fi);

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_TRANSACTION_H_
