#ifndef FLOWCUBE_MINING_TRANSFORM_H_
#define FLOWCUBE_MINING_TRANSFORM_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "hierarchy/lattice.h"
#include "mining/transaction.h"
#include "path/path_aggregator.h"
#include "path/path_database.h"

namespace flowcube {

// The materialization plan for mining: which abstraction levels of the item
// and path lattices are "interesting" (paper Section 5, partial
// materialization). The miners collect counts only at these levels.
struct MiningPlan {
  // For each dimension, the hierarchy levels (>= 1) to encode, ascending.
  std::vector<std::vector<int>> dim_levels;

  // The location cuts in use. cuts[0] should be the finest (identity) cut.
  std::vector<LocationCut> cuts;

  // The path abstraction levels: (cut index, duration level) pairs. The
  // paper's experiments use 4: {raw cut, one-up cut} x {raw duration, '*'}.
  std::vector<PathLevel> path_levels;

  // Builds the default plan for `schema`: every dimension level, the
  // identity location cut plus the one-level-up cut, durations at their
  // finest level and at '*'.
  static Result<MiningPlan> Default(const PathSchema& schema);

  // Index of the path level with the same cut as `pl` but duration '*'; -1
  // if the plan does not contain one. Used for pre-counting.
  int DurationStarLevel(int pl) const;
};

// The transformed transaction database (paper Table 3) plus the catalogs
// required to interpret it. Produced by TransformPathDatabase; consumed by
// every miner. Movable, not copyable (the catalogs can be large).
class TransformedDatabase {
 public:
  TransformedDatabase(SchemaPtr schema, MiningPlan plan);
  TransformedDatabase(TransformedDatabase&&) = default;
  TransformedDatabase& operator=(TransformedDatabase&&) = default;
  TransformedDatabase(const TransformedDatabase&) = delete;
  TransformedDatabase& operator=(const TransformedDatabase&) = delete;

  const PathSchema& schema() const { return *schema_; }
  SchemaPtr schema_ptr() const { return schema_; }
  const MiningPlan& plan() const { return plan_; }
  const ItemCatalog& catalog() const { return *catalog_; }

  const std::vector<Transaction>& transactions() const { return txns_; }
  size_t size() const { return txns_.size(); }

  // Encodes and appends one record. Transaction ids equal the record's
  // position in the source path database when records are appended in
  // order.
  void Append(const PathRecord& record);

 private:
  SchemaPtr schema_;
  MiningPlan plan_;
  std::unique_ptr<ItemCatalog> catalog_;
  PathAggregator aggregator_;
  std::vector<Transaction> txns_;
};

// Encodes the whole path database (the "first scan" of algorithm Shared,
// step 1). Fails if the plan is inconsistent with the schema.
Result<TransformedDatabase> TransformPathDatabase(const PathDatabase& db,
                                                  const MiningPlan& plan);

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_TRANSFORM_H_
