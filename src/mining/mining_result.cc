#include "mining/mining_result.h"

#include <algorithm>

#include "common/logging.h"

namespace flowcube {

MiningResult::MiningResult(const TransformedDatabase* db,
                           std::vector<FrequentItemset> frequent)
    : db_(db), frequent_(std::move(frequent)) {
  FC_CHECK(db_ != nullptr);
  const ItemCatalog& cat = db_->catalog();
  const ItemId boundary = static_cast<ItemId>(cat.num_dim_items());
  for (uint32_t i = 0; i < frequent_.size(); ++i) {
    const Itemset& items = frequent_[i].items;
    const auto split =
        std::lower_bound(items.begin(), items.end(), boundary);
    Itemset cell(items.begin(), split);
    by_cell_[std::move(cell)].push_back(i);
  }
}

std::optional<uint32_t> MiningResult::CellSupport(
    const Itemset& cell_dims) const {
  if (cell_dims.empty()) {
    return static_cast<uint32_t>(db_->size());
  }
  const auto it = by_cell_.find(cell_dims);
  if (it == by_cell_.end()) return std::nullopt;
  for (uint32_t idx : it->second) {
    if (frequent_[idx].items.size() == cell_dims.size()) {
      return frequent_[idx].support;
    }
  }
  return std::nullopt;
}

std::vector<Itemset> MiningResult::FrequentCells() const {
  std::vector<Itemset> out;
  out.push_back({});  // apex
  const ItemCatalog& cat = db_->catalog();
  for (const FrequentItemset& fi : frequent_) {
    if (fi.items.empty()) continue;
    if (cat.IsDimItem(fi.items.back())) {
      out.push_back(fi.items);
    }
  }
  return out;
}

std::vector<Itemset> MiningResult::CellsAtLevel(const ItemLevel& level) const {
  const ItemCatalog& cat = db_->catalog();
  FC_CHECK(level.levels.size() == db_->schema().num_dimensions());
  std::vector<Itemset> out;
  for (const Itemset& cell : FrequentCells()) {
    std::vector<int> seen(level.levels.size(), 0);
    bool ok = true;
    for (ItemId id : cell) {
      const size_t d = cat.DimOf(id);
      if (cat.DimLevelOf(id) != level.levels[d] || seen[d] != 0) {
        ok = false;
        break;
      }
      seen[d] = 1;
    }
    if (!ok) continue;
    for (size_t d = 0; d < level.levels.size(); ++d) {
      if (level.levels[d] > 0 && seen[d] == 0) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(cell);
  }
  return out;
}

std::vector<SegmentPattern> MiningResult::SegmentsForCell(
    const Itemset& cell_dims, int path_level) const {
  std::vector<SegmentPattern> out;
  const auto it = by_cell_.find(cell_dims);
  if (it == by_cell_.end()) return out;
  const ItemCatalog& cat = db_->catalog();
  for (uint32_t idx : it->second) {
    const FrequentItemset& fi = frequent_[idx];
    if (fi.items.size() == cell_dims.size()) continue;  // the cell itself
    SegmentPattern seg;
    seg.support = fi.support;
    bool ok = true;
    for (size_t i = cell_dims.size(); i < fi.items.size(); ++i) {
      const ItemId id = fi.items[i];
      if (cat.StageOf(id).path_level != path_level) {
        ok = false;
        break;
      }
      seg.stages.push_back(id);
    }
    if (ok) out.push_back(std::move(seg));
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentPattern& a, const SegmentPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.stages < b.stages;
            });
  return out;
}

}  // namespace flowcube
