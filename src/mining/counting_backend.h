#ifndef FLOWCUBE_MINING_COUNTING_BACKEND_H_
#define FLOWCUBE_MINING_COUNTING_BACKEND_H_

#include <span>
#include <vector>

#include "mining/apriori.h"

namespace flowcube {

class ThreadPool;

// Resolves the backend knob: an explicit request wins; kAuto reads
// FLOWCUBE_COUNT_BACKEND (scalar | simd | tidlist; read once per process),
// defaulting to kSimd. Never returns kAuto.
CountBackend ResolveCountBackend(CountBackend requested = CountBackend::kAuto);

constexpr const char* CountBackendName(CountBackend backend) {
  switch (backend) {
    case CountBackend::kAuto:
      return "auto";
    case CountBackend::kScalar:
      return "scalar";
    case CountBackend::kSimd:
      return "simd";
    case CountBackend::kTidlist:
      return "tidlist";
  }
  return "auto";
}

// Evaluates every candidate's support over `txns` into `counter` (already
// Finalize()d, counts at zero for this scan's candidates) using the chosen
// backend. The horizontal backends (scalar/simd) scan transactions and
// split the scan across `pool` when it has more than one thread; the
// vertical tidlist backend builds sorted transaction-id lists per relevant
// item and intersects them per candidate, parallelized over candidates.
// All backends produce identical counts — supports are exact integers —
// so mining results never depend on the knob (DESIGN.md §13).
//
// `pool` may be null (serial). `grain` is the scheduling grain for
// transaction-indexed loops.
void CountAllTransactions(const std::vector<std::span<const ItemId>>& txns,
                          CountBackend backend, ThreadPool* pool, size_t grain,
                          CandidateCounter* counter);

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_COUNTING_BACKEND_H_
