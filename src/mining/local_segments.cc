#include "mining/local_segments.h"

#include <algorithm>

#include "common/logging.h"
#include "mining/apriori.h"

namespace flowcube {

std::vector<SegmentPattern> MineCellSegments(const TransformedDatabase& tdb,
                                             std::span<const uint32_t> tids,
                                             int path_level,
                                             uint32_t min_support) {
  const ItemCatalog& cat = tdb.catalog();

  // Project each member transaction onto the stage items of `path_level`.
  // Projections stay sorted because the source transactions are.
  std::vector<std::vector<ItemId>> projected(tids.size());
  std::vector<std::span<const ItemId>> txns;
  txns.reserve(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    FC_CHECK(tids[i] < tdb.size());
    for (ItemId id : tdb.transactions()[tids[i]].items) {
      if (cat.IsStageItem(id) && cat.StageOf(id).path_level == path_level) {
        projected[i].push_back(id);
      }
    }
    txns.push_back(projected[i]);
  }

  AprioriOptions apriori_options;
  apriori_options.min_support = min_support;
  Apriori miner(apriori_options);
  std::vector<SegmentPattern> out;
  for (FrequentItemset& fi : miner.Mine(txns)) {
    out.push_back(SegmentPattern{std::move(fi.items), fi.support});
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentPattern& a, const SegmentPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.stages < b.stages;
            });
  return out;
}

}  // namespace flowcube
