#include "mining/counting_backend.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/simd.h"
#include "common/thread_pool.h"

namespace flowcube {
namespace {

// Vertical (tidlist) counting: one sorted transaction-id list per item that
// appears in some candidate, built in a single pass over the database; a
// candidate's support is the size of the intersection of its items' lists.
// Pays off when candidates are few relative to transactions (late Apriori
// passes) or items are selective — every candidate is evaluated over
// exactly the transactions containing its rarest item pair instead of
// every transaction pair-enumerating its whole tail.
void CountAllTidlist(const std::vector<std::span<const ItemId>>& txns,
                     ThreadPool* pool, size_t grain,
                     CandidateCounter* counter) {
  const size_t n_cand = counter->size();
  ItemId max_item = 0;
  for (size_t i = 0; i < n_cand; ++i) {
    max_item = std::max(max_item, counter->candidate(i).back());
  }

  // Dense slots for the items candidates actually touch.
  constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);
  std::vector<uint32_t> item_slot(static_cast<size_t>(max_item) + 1, kNoSlot);
  uint32_t n_slots = 0;
  for (size_t i = 0; i < n_cand; ++i) {
    for (ItemId id : counter->candidate(i)) {
      if (item_slot[id] == kNoSlot) item_slot[id] = n_slots++;
    }
  }

  // Tidlists are strictly increasing: transactions are visited in id order
  // and the back-guard drops repeated items within one transaction.
  std::vector<std::vector<uint32_t>> lists(n_slots);
  for (size_t ti = 0; ti < txns.size(); ++ti) {
    const uint32_t tid = static_cast<uint32_t>(ti);
    for (ItemId id : txns[ti]) {
      if (id >= item_slot.size() || item_slot[id] == kNoSlot) continue;
      std::vector<uint32_t>& list = lists[item_slot[id]];
      if (list.empty() || list.back() != tid) list.push_back(tid);
    }
  }

  // Dense items additionally get a packed bitmap over transaction ids:
  // frequent items cover >= minsup transactions, so their lists are long and
  // one streaming AND+popcount over n_txns/64 words beats the sorted merge.
  // A candidate uses the bitmap path only when every item of it is dense;
  // mixed/sparse candidates keep the list intersection.
  const size_t n_words = (txns.size() + 63) / 64;
  constexpr uint32_t kNoBitmap = static_cast<uint32_t>(-1);
  // Below this density the list merge touches fewer words than the bitmap
  // scan; 1/128 ~= the break-even of |a|+|b| merges vs n/64-word AND.
  const size_t dense_threshold = std::max<size_t>(1, txns.size() / 128);
  std::vector<uint32_t> bitmap_of(n_slots, kNoBitmap);
  uint32_t n_bitmaps = 0;
  for (uint32_t s = 0; s < n_slots; ++s) {
    if (lists[s].size() >= dense_threshold) bitmap_of[s] = n_bitmaps++;
  }
  std::vector<uint64_t> bitmaps(static_cast<size_t>(n_bitmaps) * n_words, 0);
  for (uint32_t s = 0; s < n_slots; ++s) {
    if (bitmap_of[s] == kNoBitmap) continue;
    uint64_t* words = bitmaps.data() + static_cast<size_t>(bitmap_of[s]) * n_words;
    for (uint32_t tid : lists[s]) {
      words[tid >> 6] |= uint64_t{1} << (tid & 63);
    }
  }
  auto bitmap_words = [&](ItemId id) -> const uint64_t* {
    const uint32_t b = bitmap_of[item_slot[id]];
    if (b == kNoBitmap) return nullptr;
    return bitmaps.data() + static_cast<size_t>(b) * n_words;
  };

  const simd::Level level = simd::ActiveLevel();
  // Candidates write disjoint counts, so the evaluation parallelizes over
  // candidate index with no shard merge.
  const size_t num_shards =
      (pool == nullptr) ? 1 : pool->num_threads();
  struct Scratch {
    std::vector<const std::vector<uint32_t>*> ordered;
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
    std::vector<uint64_t> words;
  };
  std::vector<Scratch> scratch(num_shards);

  auto eval = [&](size_t shard, size_t begin, size_t end) {
    Scratch& s = scratch[shard];
    for (size_t i = begin; i < end; ++i) {
      const Itemset& cand = counter->candidate(i);
      const uint64_t* first_words = bitmap_words(cand[0]);
      if (first_words != nullptr) {
        // All-dense candidate: AND+popcount over the packed bitmaps,
        // materializing intermediates only for 3+-way chains.
        bool all_dense = true;
        for (size_t k = 1; k < cand.size() && all_dense; ++k) {
          all_dense = bitmap_words(cand[k]) != nullptr;
        }
        if (all_dense) {
          if (cand.size() == 2) {
            const size_t c = simd::AndPopcountU64(
                first_words, bitmap_words(cand[1]), n_words, level);
            counter->AddCount(i, static_cast<uint32_t>(c));
            continue;
          }
          s.words.resize(n_words);
          simd::AndIntoU64(first_words, bitmap_words(cand[1]), n_words,
                           s.words.data(), level);
          for (size_t k = 2; k + 1 < cand.size(); ++k) {
            simd::AndIntoU64(s.words.data(), bitmap_words(cand[k]), n_words,
                             s.words.data(), level);
          }
          const size_t c = simd::AndPopcountU64(
              s.words.data(), bitmap_words(cand.back()), n_words, level);
          counter->AddCount(i, static_cast<uint32_t>(c));
          continue;
        }
      }
      s.ordered.clear();
      for (ItemId id : cand) s.ordered.push_back(&lists[item_slot[id]]);
      // Intersect shortest-first so intermediates shrink fastest.
      std::sort(s.ordered.begin(), s.ordered.end(),
                [](const std::vector<uint32_t>* x,
                   const std::vector<uint32_t>* y) {
                  return x->size() < y->size();
                });
      if (s.ordered.front()->empty()) continue;
      if (cand.size() == 2) {
        const size_t c = simd::IntersectCountU32(
            s.ordered[0]->data(), s.ordered[0]->size(), s.ordered[1]->data(),
            s.ordered[1]->size(), level);
        counter->AddCount(i, static_cast<uint32_t>(c));
        continue;
      }
      // Progressively materialize all but the last intersection, then
      // count-only against the longest list.
      std::vector<uint32_t>* cur = &s.a;
      std::vector<uint32_t>* nxt = &s.b;
      cur->resize(s.ordered[0]->size());
      size_t len = simd::IntersectU32(s.ordered[0]->data(),
                                      s.ordered[0]->size(),
                                      s.ordered[1]->data(),
                                      s.ordered[1]->size(), cur->data());
      for (size_t k = 2; k + 1 < s.ordered.size() && len > 0; ++k) {
        nxt->resize(len);
        len = simd::IntersectU32(cur->data(), len, s.ordered[k]->data(),
                                 s.ordered[k]->size(), nxt->data());
        std::swap(cur, nxt);
      }
      if (len == 0) continue;
      const size_t c = simd::IntersectCountU32(cur->data(), len,
                                               s.ordered.back()->data(),
                                               s.ordered.back()->size(), level);
      counter->AddCount(i, static_cast<uint32_t>(c));
    }
  };

  if (pool == nullptr || num_shards == 1) {
    eval(0, 0, n_cand);
  } else {
    pool->ParallelForChunks(n_cand, std::max<size_t>(1, grain / 8), eval);
  }
}

void CountAllHorizontal(const std::vector<std::span<const ItemId>>& txns,
                        simd::Level level, ThreadPool* pool, size_t grain,
                        CandidateCounter* counter) {
  if (pool == nullptr || pool->num_threads() == 1) {
    for (const auto& txn : txns) counter->CountTransaction(txn, level);
    return;
  }
  std::vector<CandidateCounter::Shard> shards(pool->num_threads());
  pool->ParallelForChunks(txns.size(), grain,
                          [&](size_t shard, size_t begin, size_t end) {
                            CandidateCounter::Shard& sh = shards[shard];
                            for (size_t ti = begin; ti < end; ++ti) {
                              counter->CountTransaction(txns[ti], &sh, level);
                            }
                          });
  for (const CandidateCounter::Shard& sh : shards) counter->Absorb(sh);
}

}  // namespace

CountBackend ResolveCountBackend(CountBackend requested) {
  if (requested != CountBackend::kAuto) return requested;
  static const CountBackend from_env = [] {
    // Read once before any worker thread starts; nothing calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("FLOWCUBE_COUNT_BACKEND");
    if (env != nullptr) {
      const std::string_view v(env);
      if (v == "scalar") return CountBackend::kScalar;
      if (v == "simd") return CountBackend::kSimd;
      if (v == "tidlist") return CountBackend::kTidlist;
    }
    return CountBackend::kSimd;
  }();
  return from_env;
}

void CountAllTransactions(const std::vector<std::span<const ItemId>>& txns,
                          CountBackend backend, ThreadPool* pool, size_t grain,
                          CandidateCounter* counter) {
  if (counter->size() == 0) return;
  switch (ResolveCountBackend(backend)) {
    case CountBackend::kScalar:
      CountAllHorizontal(txns, simd::Level::kScalar, pool, grain, counter);
      return;
    case CountBackend::kTidlist:
      CountAllTidlist(txns, pool, grain, counter);
      return;
    case CountBackend::kAuto:
    case CountBackend::kSimd:
      CountAllHorizontal(txns, simd::ActiveLevel(), pool, grain, counter);
      return;
  }
}

}  // namespace flowcube
