#ifndef FLOWCUBE_MINING_SHARED_MINER_H_
#define FLOWCUBE_MINING_SHARED_MINER_H_

#include <unordered_map>
#include <vector>

#include "mining/apriori.h"
#include "mining/compatibility.h"
#include "mining/transform.h"

namespace flowcube {

// Options of algorithm Shared (paper Section 5.1). The three toggles map to
// the paper's candidate-pruning optimizations; switching them all off yields
// algorithm Basic ("the same algorithm as Shared except that we do not
// perform any candidate pruning"). The fourth optimization — dropping
// items aggregated to '*' — is applied in the transform and is always on.
struct SharedMinerOptions {
  // Absolute minimum support count (the iceberg threshold delta).
  uint32_t min_support = 1;

  // Optimization 1: pre-count high-abstraction-level patterns of length k+1
  // while counting length-k candidates, and prune low-level candidates
  // whose high-level generalization is known infrequent.
  bool prune_precount = true;

  // Optimization 2: prune candidates whose items cannot co-occur in one
  // transaction — two stages whose prefixes are not in a strict prefix
  // relation, two stages at different path abstraction levels, or two
  // different non-ancestor values of the same dimension.
  bool prune_unlinkable = true;

  // Optimization 4 (from [Srikant & Agrawal 95]): never count a candidate
  // containing an item together with one of its ancestors — the ancestor is
  // implied, so the support equals the candidate without it.
  bool prune_ancestors = true;

  // Dimension items at hierarchy level <= this count as "high level" for
  // pre-counting (the paper pre-counts at abstraction level 2 of its 3-level
  // hierarchies). Stage items are high level when their duration is '*'.
  int high_level_dim_level = 2;

  // Threads for the transaction scans (pass 1 and each candidate-counting
  // pass). 0 = FLOWCUBE_THREADS env, falling back to hardware concurrency;
  // 1 = serial. Any value produces bit-identical output: per-thread
  // partial counters are merged at each pass boundary, so supports — and
  // therefore the frequent set and its order — never depend on the thread
  // count.
  int num_threads = 0;

  // Counting engine for the candidate-counting passes; kAuto honours
  // FLOWCUBE_COUNT_BACKEND. Supports are exact integers under every
  // backend, so this never changes mining results.
  CountBackend count_backend = CountBackend::kAuto;
};

// The result of a full mining run: every frequent itemset (cells, path
// segments, and cell+segment combinations, at every interesting
// abstraction level) plus counting statistics.
struct SharedMiningOutput {
  std::vector<FrequentItemset> frequent;
  MiningStats stats;
};

// Algorithm Shared: a modified Apriori over the transformed transaction
// database that simultaneously finds the frequent cells of the flowcube and
// the frequent path segments in every cell, at every abstraction level of
// the item and path lattices, in one set of shared scans.
class SharedMiner {
 public:
  SharedMiner(const TransformedDatabase& db, SharedMinerOptions options);

  // Runs the mining loop to completion.
  SharedMiningOutput Run();

  // True when items a and b may appear together in a candidate under the
  // enabled pruning rules. Exposed for tests.
  bool ItemsCompatible(ItemId a, ItemId b) const;

  // Maps an item to its high-level generalization for pre-count pruning:
  // dimension items roll up to high_level_dim_level, stage items to their
  // same-cut duration-'*' twin. Returns the item itself when it is already
  // high level; kInvalidItem when no generalization exists. Exposed for
  // tests.
  ItemId GeneralizeItem(ItemId id) const;

  // True when the item is at a high abstraction level. Exposed for tests.
  bool IsHighLevel(ItemId id) const;

 private:
  // Maps a whole candidate through GeneralizeItem (sorted, deduped).
  // Returns false when some item has no generalization.
  bool GeneralizeItemset(const Itemset& in, Itemset* out) const;

  const TransformedDatabase& db_;
  SharedMinerOptions options_;
  ItemCompatibility compat_;
  // Exact supports of every pre-counted high-level pattern.
  std::unordered_map<Itemset, uint32_t, ItemsetHash> hl_counts_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_MINING_SHARED_MINER_H_
