#ifndef FLOWCUBE_COMMON_STATUS_H_
#define FLOWCUBE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace flowcube {

// Status is the error-reporting vocabulary for every fallible operation in
// the library (the project does not use exceptions). A Status is either OK
// or carries an error code plus a human-readable message.
//
// Typical use:
//
//   Status s = db.Append(path);
//   if (!s.ok()) return s;
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
    // Appended after kInternal so existing wire encodings stay stable.
    kUnavailable,        // endpoint unreachable (refused / reset / closed)
    kDeadlineExceeded,   // connect or read timed out
  };

  // Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory functions, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }

  // True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }

  Code code() const { return code_; }

  // The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  // Renders "OK" or "<code>: <message>" for logs and error surfaces.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

// Returns the canonical name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(Status::Code code);

// Result<T> couples a Status with a value of type T: an operation either
// produced a value or failed with a non-OK status. Mirrors absl::StatusOr.
//
//   Result<PathDatabase> r = LoadPathDatabase(file);
//   if (!r.ok()) return r.status();
//   Use(r.value());
template <typename T>
class Result {
 public:
  // Success: wraps a value. Intentionally implicit so functions can
  // `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  // Failure: wraps a non-OK status. Intentionally implicit so functions can
  // `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value access. Must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define FC_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::flowcube::Status fc_status_macro_s = (expr);  \
    if (!fc_status_macro_s.ok()) {                  \
      return fc_status_macro_s;                     \
    }                                               \
  } while (false)

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_STATUS_H_
