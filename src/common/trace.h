#ifndef FLOWCUBE_COMMON_TRACE_H_
#define FLOWCUBE_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace flowcube {

// Phase tracing (DESIGN.md §8). A TraceSpan is an RAII timer around one
// named phase (a build phase, a mining pass, a bench setup step). Closing a
// span always records its duration into the global histogram
// "trace.<name>.seconds" — so per-phase timing statistics exist whenever
// metrics are rendered — and additionally appends a timeline event to the
// process-global TraceSink when event capture is enabled (it is off by
// default to bound memory; ConsumeMetricsFlag turns it on together with
// metrics output).
//
//   {
//     TraceSpan span("flowcube.measures");
//     ...               // phase body
//   }                   // closed here
//
// Spans may be closed early with Stop(), which also returns the elapsed
// seconds — used where a phase duration feeds a stats struct as well.

// One completed span. Times are seconds relative to the process trace
// epoch (the first use of the trace clock), so events from all threads
// share one timeline.
struct TraceEvent {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  // Dense per-thread index (0 = first thread that ever closed a span).
  uint32_t thread = 0;
};

// Process-global, thread-safe, bounded event buffer.
class TraceSink {
 public:
  static TraceSink& Global();

  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void SetEnabled(bool enabled);
  bool enabled() const;

  // Appends one event; drops (counting the drop) once the buffer is full.
  void Record(std::string_view name, double start_seconds,
              double duration_seconds);

  std::vector<TraceEvent> Events() const;
  uint64_t dropped() const;
  void Clear();

  // "    0.000123s +0.045600s  t0  flowcube.mining" per event, in record
  // order.
  std::string RenderText() const;
  // JSON array of {"name","start","dur","thread"} objects (one line).
  std::string RenderJson() const;

 private:
  // Enough for every phase of a large build; per-item spans do not exist.
  static constexpr size_t kMaxEvents = 65536;

  mutable Mutex mu_;
  bool enabled_ FC_GUARDED_BY(mu_) = false;
  uint64_t dropped_ FC_GUARDED_BY(mu_) = 0;
  std::vector<TraceEvent> events_ FC_GUARDED_BY(mu_);
};

// Seconds since the process trace epoch.
double TraceNowSeconds();

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Closes the span (idempotent) and returns its duration in seconds.
  double Stop();

 private:
  std::string name_;
  double start_seconds_ = 0.0;
  double duration_seconds_ = 0.0;
  bool stopped_ = false;
};

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_TRACE_H_
