#include "common/random.h"

#include "common/logging.h"

namespace flowcube {
namespace {

// splitmix64, used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Random::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  FC_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  FC_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace flowcube
