#ifndef FLOWCUBE_COMMON_THREAD_ANNOTATIONS_H_
#define FLOWCUBE_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

// Clang Thread Safety Analysis (DESIGN.md §11). Every lock in the tree is
// declared through the capability-annotated wrappers below, so the
// `thread-safety` preset (-Wthread-safety -Werror under clang) proves at
// compile time that each GUARDED_BY member is only touched with its mutex
// held and that every REQUIRES contract is met at each call site. Under
// compilers without the attribute (gcc builds this tree too) the macros
// expand to nothing and the wrappers cost exactly a std::mutex.
//
// Conventions:
//   - data members shared across threads carry GUARDED_BY(mu_);
//   - private helpers called with the lock held carry
//     FC_EXCLUSIVE_LOCKS_REQUIRED(mu_) instead of re-locking;
//   - public methods never require callers to hold internal locks
//     (FC_LOCKS_EXCLUDED documents the few that would self-deadlock);
//   - condition waits go through CondVar::Wait(mu) inside a while loop over
//     the guarded predicate, which the analysis can check — the predicate
//     lambda of std::condition_variable::wait cannot be annotated.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FC_THREAD_ANNOTATION
#define FC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define FC_CAPABILITY(x) FC_THREAD_ANNOTATION(capability(x))
#define FC_SCOPED_CAPABILITY FC_THREAD_ANNOTATION(scoped_lockable)
#define FC_GUARDED_BY(x) FC_THREAD_ANNOTATION(guarded_by(x))
#define FC_PT_GUARDED_BY(x) FC_THREAD_ANNOTATION(pt_guarded_by(x))
#define FC_ACQUIRE(...) \
  FC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FC_RELEASE(...) \
  FC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FC_TRY_ACQUIRE(...) \
  FC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FC_EXCLUSIVE_LOCKS_REQUIRED(...) \
  FC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FC_LOCKS_EXCLUDED(...) \
  FC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FC_ACQUIRED_AFTER(...) \
  FC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define FC_ACQUIRED_BEFORE(...) \
  FC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FC_RETURN_CAPABILITY(x) FC_THREAD_ANNOTATION(lock_returned(x))
#define FC_NO_THREAD_SAFETY_ANALYSIS \
  FC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace flowcube {

// std::mutex with a declared capability, so members can be GUARDED_BY it
// and functions can REQUIRE it. Satisfies BasicLockable (lowercase
// lock/unlock) for CondVar below.
class FC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FC_ACQUIRE() { mu_.lock(); }
  void Unlock() FC_RELEASE() { mu_.unlock(); }
  bool TryLock() FC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable interface for std::condition_variable_any. Do not call
  // directly; the analysis only tracks Lock/Unlock/MutexLock.
  void lock() FC_ACQUIRE() { mu_.lock(); }
  void unlock() FC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock whose scope the analysis understands (scoped_lockable).
class FC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to fc Mutex. Wait releases and reacquires `mu`,
// which the caller must hold; the REQUIRES contract makes forgetting the
// lock a compile error instead of UB. Always wait in a loop:
//
//   MutexLock lock(mu_);
//   while (!predicate_over_guarded_state()) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires before returning.
  // Spurious wakeups happen; re-check the predicate.
  void Wait(Mutex& mu) FC_EXCLUSIVE_LOCKS_REQUIRED(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_THREAD_ANNOTATIONS_H_
