#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "common/trace.h"

namespace flowcube {
namespace {

// JSON string escaping for instrument names (which are plain identifiers,
// but render defensively anyway).
std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*, so flatten dots.
std::string PromName(std::string_view name) {
  std::string out = "flowcube_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// %.17g keeps doubles round-trippable, matching the bench JSON convention.
std::string Num(double v) { return StrFormat("%.17g", v); }

MetricsFormat g_format = MetricsFormat::kNone;
bool g_format_resolved = false;

}  // namespace

void Gauge::SetMax(int64_t v) {
  int64_t cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int Histogram::BucketOf(double value) {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  std::frexp(value, &exp);  // value in [2^(exp-1), 2^exp)
  const int bucket = exp + 31;
  return bucket < 0 ? 0 : (bucket >= kNumBuckets ? kNumBuckets - 1 : bucket);
}

double Histogram::BucketMid(int bucket) {
  // Geometric midpoint of [2^(b-32), 2^(b-31)).
  return std::ldexp(1.0, bucket - 32) * std::sqrt(2.0);
}

void Histogram::Record(double value) {
  MutexLock lock(mu_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_++;
  sum_ += value;
  buckets_[BucketOf(value)]++;
}

void Histogram::Record(double value, uint64_t count) {
  if (count == 0) return;
  MutexLock lock(mu_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += count;
  sum_ += value * static_cast<double>(count);
  buckets_[BucketOf(value)] += count;
}

Histogram::Snapshot Histogram::snapshot() const {
  MutexLock lock(mu_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  if (count_ == 0) return s;
  s.mean = sum_ / static_cast<double>(count_);
  if (count_ == 1) {
    s.p50 = s.p90 = s.p99 = min_;
    return s;
  }
  const auto percentile = [this](double q) {
    const uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) {
        double v = BucketMid(b);
        if (v < min_) v = min_;
        if (v > max_) v = max_;
        return v;
      }
    }
    return max_;
  };
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::Reset() {
  MutexLock lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  std::memset(buckets_, 0, sizeof(buckets_));
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

ScopedEpoch::ScopedEpoch(MetricRegistry& registry) : registry_(registry) {
  MutexLock lock(registry_.mu_);
  for (auto& [name, c] : registry_.counters_) {
    counters_[name] = c->value();
    c->Reset();
  }
  for (auto& [name, g] : registry_.gauges_) {
    gauges_[name] = g->value();
    g->Reset();
  }
  for (auto& [name, h] : registry_.histograms_) {
    HistogramState s;
    {
      MutexLock hlock(h->mu_);
      s.count = h->count_;
      s.sum = h->sum_;
      s.min = h->min_;
      s.max = h->max_;
      s.buckets.assign(h->buckets_, h->buckets_ + Histogram::kNumBuckets);
    }
    histograms_[name] = std::move(s);
    h->Reset();
  }
}

ScopedEpoch::~ScopedEpoch() {
  MutexLock lock(registry_.mu_);
  // Counters and histograms are cumulative: the scope's activity adds onto
  // the snapshot. Instruments first registered inside the scope have no
  // snapshot entry and already hold pure scope activity.
  for (const auto& [name, saved] : counters_) {
    const auto it = registry_.counters_.find(name);
    if (it != registry_.counters_.end()) it->second->Add(saved);
  }
  // Gauges are point-in-time, so the most recent writer wins: a gauge the
  // scope touched keeps its new value; an untouched one (still zero from
  // the constructor's Reset) gets its pre-scope value back.
  for (const auto& [name, saved] : gauges_) {
    const auto it = registry_.gauges_.find(name);
    if (it != registry_.gauges_.end() && it->second->value() == 0) {
      it->second->Set(saved);
    }
  }
  for (const auto& [name, saved] : histograms_) {
    const auto it = registry_.histograms_.find(name);
    if (it == registry_.histograms_.end() || saved.count == 0) continue;
    Histogram& h = *it->second;
    MutexLock hlock(h.mu_);
    if (h.count_ == 0) {
      h.min_ = saved.min;
      h.max_ = saved.max;
    } else {
      h.min_ = std::min(h.min_, saved.min);
      h.max_ = std::max(h.max_, saved.max);
    }
    h.count_ += saved.count;
    h.sum_ += saved.sum;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      h.buckets_[b] += saved.buckets[static_cast<size_t>(b)];
    }
  }
}

std::string MetricRegistry::RenderText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%-48s %20llu\n", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%-48s %20lld\n", name.c_str(),
                     static_cast<long long>(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out += StrFormat(
        "%-48s count=%llu sum=%.6g min=%.6g p50=%.6g p90=%.6g p99=%.6g "
        "max=%.6g\n",
        name.c_str(), static_cast<unsigned long long>(s.count), s.sum, s.min,
        s.p50, s.p90, s.p99, s.max);
  }
  return out;
}

std::string MetricRegistry::RenderJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" +
           StrFormat("%llu", static_cast<unsigned long long>(c->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":" +
           StrFormat("%lld", static_cast<long long>(g->value()));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    if (!first) out += ",";
    first = false;
    out += JsonQuote(name) + ":{\"count\":" +
           StrFormat("%llu", static_cast<unsigned long long>(s.count)) +
           ",\"sum\":" + Num(s.sum) + ",\"min\":" + Num(s.min) +
           ",\"mean\":" + Num(s.mean) + ",\"p50\":" + Num(s.p50) +
           ",\"p90\":" + Num(s.p90) + ",\"p99\":" + Num(s.p99) +
           ",\"max\":" + Num(s.max) + "}";
  }
  out += "}}";
  return out;
}

std::string MetricRegistry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " +
           StrFormat("%llu", static_cast<unsigned long long>(c->value())) +
           "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + StrFormat("%lld", static_cast<long long>(g->value())) +
           "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    const std::string p = PromName(name);
    out += "# TYPE " + p + " summary\n";
    out += p + "_count " +
           StrFormat("%llu", static_cast<unsigned long long>(s.count)) + "\n";
    out += p + "_sum " + Num(s.sum) + "\n";
    out += p + "{quantile=\"0.5\"} " + Num(s.p50) + "\n";
    out += p + "{quantile=\"0.9\"} " + Num(s.p90) + "\n";
    out += p + "{quantile=\"0.99\"} " + Num(s.p99) + "\n";
  }
  return out;
}

MetricsFormat ParseMetricsFormat(std::string_view value) {
  if (value == "1" || value == "text" || value == "true" || value == "on") {
    return MetricsFormat::kText;
  }
  if (value == "json") return MetricsFormat::kJson;
  if (value == "prom" || value == "prometheus") {
    return MetricsFormat::kPrometheus;
  }
  return MetricsFormat::kNone;
}

MetricsFormat MetricsFormatFromEnv() {
  // getenv is safe here: read-only and resolved once, at first use, from
  // the thread that renders metrics (nothing in the process calls setenv).
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("FLOWCUBE_METRICS");
  return env == nullptr ? MetricsFormat::kNone : ParseMetricsFormat(env);
}

MetricsFormat metrics_format() {
  if (!g_format_resolved) {
    g_format_resolved = true;
    g_format = MetricsFormatFromEnv();
  }
  return g_format;
}

void set_metrics_format(MetricsFormat format) {
  g_format_resolved = true;
  g_format = format;
}

MetricsFormat ConsumeMetricsFlag(int* argc, char** argv) {
  MetricsFormat format = MetricsFormatFromEnv();
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics") == 0) {
      format = MetricsFormat::kText;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      format = ParseMetricsFormat(arg + 10);
      if (format == MetricsFormat::kNone) format = MetricsFormat::kText;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  *argc = kept;
  set_metrics_format(format);
  if (format != MetricsFormat::kNone) TraceSink::Global().SetEnabled(true);
  return format;
}

void DumpMetricsIfEnabled(std::FILE* out) {
  const MetricsFormat format = metrics_format();
  if (format == MetricsFormat::kNone) return;
  const MetricRegistry& reg = MetricRegistry::Global();
  switch (format) {
    case MetricsFormat::kText: {
      std::fputs("\n=== metrics ===\n", out);
      std::fputs(reg.RenderText().c_str(), out);
      const std::string trace = TraceSink::Global().RenderText();
      if (!trace.empty()) {
        std::fputs("=== trace ===\n", out);
        std::fputs(trace.c_str(), out);
      }
      break;
    }
    case MetricsFormat::kJson: {
      std::string line = reg.RenderJson();
      if (TraceSink::Global().enabled()) {
        // Splice the timeline into the same one-line object.
        line.pop_back();  // trailing '}'
        line += ",\"trace\":" + TraceSink::Global().RenderJson() + "}";
      }
      std::fputs(line.c_str(), out);
      std::fputc('\n', out);
      break;
    }
    case MetricsFormat::kPrometheus:
      std::fputs(reg.RenderPrometheus().c_str(), out);
      break;
    case MetricsFormat::kNone:
      break;
  }
}

}  // namespace flowcube
