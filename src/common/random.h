#ifndef FLOWCUBE_COMMON_RANDOM_H_
#define FLOWCUBE_COMMON_RANDOM_H_

#include <cstdint>

namespace flowcube {

// Deterministic, fast pseudo-random generator (xoshiro256**). All synthetic
// data in the library flows through this type so that workloads are exactly
// reproducible from a seed — a requirement for the paper's experiments and
// for the test suite.
class Random {
 public:
  // Seeds the generator. Two Random instances with the same seed produce
  // identical streams.
  explicit Random(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_RANDOM_H_
