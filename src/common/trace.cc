#include "common/trace.h"

#include <atomic>

#include "common/metrics.h"
#include "common/string_util.h"

namespace flowcube {
namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      // fc-lint: allow(raw-clock): the process trace epoch is the one
      std::chrono::steady_clock::now();  // shared monotonic-clock anchor
  return epoch;
}

// Dense thread ids keep the timeline readable; assignment order is
// first-span-closed order, not thread-creation order.
uint32_t CurrentThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace

double TraceNowSeconds() {
  // fc-lint: allow(raw-clock): trace timestamps are monotonic span timing,
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       TraceEpoch())  // never data-derived
      .count();
}

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

void TraceSink::SetEnabled(bool enabled) {
  MutexLock lock(mu_);
  enabled_ = enabled;
}

bool TraceSink::enabled() const {
  MutexLock lock(mu_);
  return enabled_;
}

void TraceSink::Record(std::string_view name, double start_seconds,
                       double duration_seconds) {
  MutexLock lock(mu_);
  if (!enabled_) return;
  if (events_.size() >= kMaxEvents) {
    dropped_++;
    return;
  }
  TraceEvent& e = events_.emplace_back();
  e.name = std::string(name);
  e.start_seconds = start_seconds;
  e.duration_seconds = duration_seconds;
  e.thread = CurrentThreadIndex();
}

std::vector<TraceEvent> TraceSink::Events() const {
  MutexLock lock(mu_);
  return events_;
}

uint64_t TraceSink::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void TraceSink::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceSink::RenderText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const TraceEvent& e : events_) {
    out += StrFormat("%12.6fs +%.6fs  t%u  %s\n", e.start_seconds,
                     e.duration_seconds, e.thread, e.name.c_str());
  }
  if (dropped_ > 0) {
    out += StrFormat("(%llu events dropped: buffer full)\n",
                     static_cast<unsigned long long>(dropped_));
  }
  return out;
}

std::string TraceSink::RenderJson() const {
  MutexLock lock(mu_);
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    std::string name;
    for (char c : e.name) {
      if (c == '"' || c == '\\') name += '\\';
      name += c;
    }
    out += StrFormat("{\"name\":\"%s\",\"start\":%.9f,\"dur\":%.9f,"
                     "\"thread\":%u}",
                     name.c_str(), e.start_seconds, e.duration_seconds,
                     e.thread);
  }
  out += "]";
  return out;
}

TraceSpan::TraceSpan(std::string_view name)
    : name_(name), start_seconds_(TraceNowSeconds()) {}

TraceSpan::~TraceSpan() { Stop(); }

double TraceSpan::Stop() {
  if (stopped_) return duration_seconds_;
  stopped_ = true;
  duration_seconds_ = TraceNowSeconds() - start_seconds_;
  MetricRegistry::Global()
      .histogram("trace." + name_ + ".seconds")
      .Record(duration_seconds_);
  TraceSink::Global().Record(name_, start_seconds_, duration_seconds_);
  return duration_seconds_;
}

}  // namespace flowcube
