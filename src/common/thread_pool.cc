#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"

namespace flowcube {
namespace {

// True while the current thread is executing a pool chunk; nested loops
// detect this and run inline instead of waiting on their own pool.
thread_local bool t_in_pool_task = false;

}  // namespace

size_t ResolveNumThreads(int requested) {
  if (requested >= 1) return static_cast<size_t>(requested);
  // getenv is safe here: read-only, and pools are created from one thread
  // before any workers exist (nothing in the process calls setenv).
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("FLOWCUBE_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(size_t num_threads) {
  FC_CHECK_MSG(num_threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerMain(size_t worker_index) {
  uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) wake_cv_.Wait(mu_);
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    RunShard(job, worker_index + 1);  // shard 0 is the caller
    {
      MutexLock lock(mu_);
      if (--workers_busy_ == 0) done_cv_.NotifyOne();
    }
  }
}

void ThreadPool::RecordError(Job* job, std::exception_ptr error) {
  MutexLock lock(mu_);
  if (!job->error) job->error = std::move(error);
}

void ThreadPool::RunShard(Job* job, size_t shard) {
  t_in_pool_task = true;
  uint64_t chunks_run = 0;
  for (;;) {
    const size_t begin = job->next.fetch_add(job->chunk);
    if (begin >= job->n) break;
    const size_t end = std::min(begin + job->chunk, job->n);
    chunks_run++;
    try {
      (*job->fn)(shard, begin, end);
    } catch (...) {
      RecordError(job, std::current_exception());
      break;  // abandon remaining chunks; others drain their current one
    }
  }
  t_in_pool_task = false;
  static Counter& m_chunks =
      MetricRegistry::Global().counter("threadpool.chunks_run");
  m_chunks.Add(chunks_run);
}

void ThreadPool::ParallelForChunks(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // Inline when there is nothing to fan out to, the range is a single
  // chunk anyway, or we are already inside a pool task (nested loop).
  if (workers_.empty() || n <= grain || t_in_pool_task) {
    static Counter& m_inline =
        MetricRegistry::Global().counter("threadpool.inline_runs");
    m_inline.Increment();
    fn(0, 0, n);
    return;
  }
  static Counter& m_jobs = MetricRegistry::Global().counter("threadpool.jobs");
  static Histogram& m_job_seconds =
      MetricRegistry::Global().histogram("threadpool.job.seconds");
  // Time the caller spends blocked after finishing its own shard — the
  // drain cost of the slowest worker (queue-wait from the caller's side).
  static Histogram& m_wait_seconds =
      MetricRegistry::Global().histogram("threadpool.caller_wait.seconds");
  m_jobs.Increment();
  Stopwatch job_watch;
  Job job;
  job.n = n;
  // A few chunks per worker so uneven iterations balance out; never below
  // the caller's grain.
  job.chunk = std::max(grain, n / (num_threads() * 8));
  job.fn = &fn;
  {
    MutexLock lock(mu_);
    job_ = &job;
    workers_busy_ = workers_.size();
    generation_++;
  }
  wake_cv_.NotifyAll();
  RunShard(&job, 0);
  Stopwatch wait_watch;
  {
    MutexLock lock(mu_);
    while (workers_busy_ != 0) done_cv_.Wait(mu_);
    job_ = nullptr;
  }
  m_wait_seconds.Record(wait_watch.ElapsedSeconds());
  m_job_seconds.Record(job_watch.ElapsedSeconds());
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t)>& fn) {
  ParallelForChunks(n, grain,
                    [&fn](size_t /*shard*/, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) fn(i);
                    });
}

}  // namespace flowcube
