#ifndef FLOWCUBE_COMMON_STOPWATCH_H_
#define FLOWCUBE_COMMON_STOPWATCH_H_

#include <chrono>

namespace flowcube {

// Wall-clock stopwatch used by the benchmark harness to time algorithm runs
// the way the paper reports them (seconds of end-to-end runtime).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_STOPWATCH_H_
