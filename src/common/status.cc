#include "common/status.h"

namespace flowcube {

std::string_view StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace flowcube
