#ifndef FLOWCUBE_COMMON_ZIPF_H_
#define FLOWCUBE_COMMON_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace flowcube {

// Samples ranks 0..n-1 from a Zipf distribution with exponent alpha:
// P(rank k) proportional to 1/(k+1)^alpha. alpha = 0 degenerates to uniform.
//
// The paper's generator (Section 6.1) draws hierarchy values, location
// sequences and stage durations "from a Zipf distribution with varying alpha
// to simulate different degrees of data skew"; this class is that substrate.
//
// Implementation: the CDF is precomputed (n is small in all our workloads:
// distinct values per hierarchy level, number of location sequences, number
// of distinct durations) and sampled with binary search in O(log n).
class ZipfSampler {
 public:
  // Creates a sampler over n ranks with skew alpha. Requires n >= 1 and
  // alpha >= 0.
  ZipfSampler(size_t n, double alpha);

  // Draws one rank in [0, n).
  size_t Sample(Random& rng) const;

  // Exact probability of a rank; exposed for tests and for analytical
  // verification of generated workloads.
  double Probability(size_t rank) const;

  size_t n() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_ZIPF_H_
