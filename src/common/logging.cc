#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace flowcube::internal {

void CheckFail(const char* file, int line, const char* condition,
               const std::string& message) {
  if (message.empty()) {
    std::fprintf(stderr, "FC_CHECK failed at %s:%d: %s\n", file, line,
                 condition);
  } else {
    std::fprintf(stderr, "FC_CHECK failed at %s:%d: %s (%s)\n", file, line,
                 condition, message.c_str());
  }
  std::abort();
}

}  // namespace flowcube::internal
