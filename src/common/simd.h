#ifndef FLOWCUBE_COMMON_SIMD_H_
#define FLOWCUBE_COMMON_SIMD_H_

// The one audited home of raw SIMD intrinsics (fc_lint rule
// `raw-intrinsics` rejects them anywhere else). Everything here is an
// integer kernel — filtering, sorted-set intersection, hash-slot
// computation — so every level produces bit-identical results and callers
// may dispatch freely without perturbing cube bytes.
//
// Levels:
//   kScalar  portable C++; the reference implementation of every kernel.
//   kSse2    x86-64 baseline (always available there).
//   kAvx2    selected at *runtime* via cpuid; the AVX2 bodies carry
//            __attribute__((target("avx2"))) so a default -march build can
//            still ship them.
//   kNeon    reserved for aarch64; kernels currently fall back to scalar
//            (no ARM hardware in CI to validate intrinsics against).
//
// Selection: ActiveLevel() resolves once per process — the best level the
// CPU supports, demoted by FLOWCUBE_SIMD=scalar|sse2|avx2 (requests above
// what the CPU supports clamp down) or pinned to kScalar at compile time
// by -DFLOWCUBE_FORCE_SCALAR=ON (which also compiles the intrinsics out,
// keeping the fallback path warning-clean on its own).
//
// Contract shared by all kernels: inputs are uint32 values < 2^31 (item
// ids / transaction ids are catalog- and database-bounded), and sorted
// inputs are strictly increasing (no duplicates).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#if !defined(FLOWCUBE_FORCE_SCALAR) && (defined(__x86_64__) || defined(_M_X64))
#define FLOWCUBE_SIMD_X86 1
#include <immintrin.h>
#endif

namespace flowcube::simd {

enum class Level { kScalar, kSse2, kAvx2, kNeon };

constexpr const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "scalar";
}

// The splitmix-style probe-start finalizer shared with the scalar hash
// paths (apriori.cc, shared_miner.cc).
constexpr uint64_t kHashMultiplier = 0x9e3779b97f4a7c15ULL;

namespace internal {

inline Level CompiledBest() {
#if defined(FLOWCUBE_FORCE_SCALAR)
  return Level::kScalar;
#elif defined(FLOWCUBE_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  return Level::kSse2;
#elif defined(__ARM_NEON)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

inline Level Clamp(Level requested, Level best) {
  return static_cast<int>(requested) <= static_cast<int>(best) ? requested
                                                               : best;
}

inline Level ResolveLevel() {
  const Level best = CompiledBest();
  // Read once before any worker thread starts; nothing calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("FLOWCUBE_SIMD");
  if (env == nullptr || env[0] == '\0') return best;
  const std::string_view v(env);
  if (v == "scalar") return Level::kScalar;
  if (v == "sse2") return Clamp(Level::kSse2, best);
  if (v == "avx2") return Clamp(Level::kAvx2, best);
  if (v == "neon") return Clamp(Level::kNeon, best);
  return best;  // unrecognized (incl. "auto") -> best available
}

}  // namespace internal

// The level every convenience overload dispatches to; resolved once.
inline Level ActiveLevel() {
  static const Level level = internal::ResolveLevel();
  return level;
}

// Hints the prefetcher at data needed a few dozen iterations ahead.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

// ---------------------------------------------------------------------------
// Kernel: FilterByU32Mask
//
// Compacts `ids[0..n)` into `out`, keeping ids with id < mask_size and
// mask01[id] != 0. Returns the number written. `out` needs room for n
// values; ids need not be sorted. This is the relevance filter in front of
// candidate counting: transactions carry every item at every abstraction
// level, while a pass's candidates touch only a subset.

inline size_t FilterByU32MaskScalar(const uint32_t* ids, size_t n,
                                    const uint32_t* mask01, size_t mask_size,
                                    uint32_t* out) {
  size_t written = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = ids[i];
    if (id < mask_size && mask01[id] != 0) out[written++] = id;
  }
  return written;
}

#if defined(FLOWCUBE_SIMD_X86)

namespace internal {

// perm[m] compacts the 32-bit lanes whose bit is set in m to the front
// (for _mm256_permutevar8x32_epi32).
struct CompressTable {
  alignas(32) uint32_t perm[256][8];
};

inline constexpr CompressTable kCompress = [] {
  CompressTable t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int b = 0; b < 8; ++b) {
      if ((m & (1 << b)) != 0) t.perm[m][k++] = static_cast<uint32_t>(b);
    }
    for (; k < 8; ++k) t.perm[m][k] = 0;
  }
  return t;
}();

}  // namespace internal

__attribute__((target("avx2"))) inline size_t FilterByU32MaskAvx2(
    const uint32_t* ids, size_t n, const uint32_t* mask01, size_t mask_size,
    uint32_t* out) {
  size_t written = 0;
  size_t i = 0;
  const __m256i vsize = _mm256_set1_epi32(static_cast<int>(mask_size));
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i vid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    // Signed compare is safe: ids and mask_size are < 2^31 by contract.
    const __m256i in_bounds = _mm256_cmpgt_epi32(vsize, vid);
    // Masked gather never touches lanes whose mask is clear, so
    // out-of-bounds ids read nothing.
    const __m256i hit = _mm256_mask_i32gather_epi32(
        zero, reinterpret_cast<const int*>(mask01), vid, in_bounds, 4);
    const __m256i keep =
        _mm256_andnot_si256(_mm256_cmpeq_epi32(hit, zero), in_bounds);
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(keep));
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(internal::kCompress.perm[m]));
    // Full 8-lane store; only popcount(m) lanes are kept. Safe: written
    // <= i here, so written + 8 <= n stays within `out`.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + written),
                        _mm256_permutevar8x32_epi32(vid, perm));
    written += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; i < n; ++i) {
    const uint32_t id = ids[i];
    if (id < mask_size && mask01[id] != 0) out[written++] = id;
  }
  return written;
}

#endif  // FLOWCUBE_SIMD_X86

inline size_t FilterByU32Mask(const uint32_t* ids, size_t n,
                              const uint32_t* mask01, size_t mask_size,
                              uint32_t* out, Level level) {
#if defined(FLOWCUBE_SIMD_X86)
  if (level == Level::kAvx2) {
    return FilterByU32MaskAvx2(ids, n, mask01, mask_size, out);
  }
#endif
  (void)level;  // SSE2 has no gather; scalar is the sub-AVX2 x86 path.
  return FilterByU32MaskScalar(ids, n, mask01, mask_size, out);
}

inline size_t FilterByU32Mask(const uint32_t* ids, size_t n,
                              const uint32_t* mask01, size_t mask_size,
                              uint32_t* out) {
  return FilterByU32Mask(ids, n, mask01, mask_size, out, ActiveLevel());
}

// ---------------------------------------------------------------------------
// Kernel: PairProbeSlots
//
// For a fixed first item `a` and second items `bs[0..n)`, computes the
// open-addressing probe-start slot of every pair key (a << 32) | bs[i]:
//   h = key * kHashMultiplier; h ^= h >> 32; slot = h & slot_mask.
// Callers prefetch their slot storage at these indices, then resolve.

inline void PairProbeSlotsScalar(uint32_t a, const uint32_t* bs, size_t n,
                                 uint64_t slot_mask, uint32_t* out_slots) {
  const uint64_t hi = static_cast<uint64_t>(a) << 32;
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = (hi | bs[i]) * kHashMultiplier;
    h ^= h >> 32;
    out_slots[i] = static_cast<uint32_t>(h & slot_mask);
  }
}

#if defined(FLOWCUBE_SIMD_X86)

__attribute__((target("avx2"))) inline void PairProbeSlotsAvx2(
    uint32_t a, const uint32_t* bs, size_t n, uint64_t slot_mask,
    uint32_t* out_slots) {
  // key * C mod 2^64 with key = (a << 32) | b decomposes into
  //   b * c_lo                      (full 64-bit, _mm256_mul_epu32)
  // + ((b * c_hi + a * c_lo) mod 2^32) << 32
  const uint32_t c_lo = static_cast<uint32_t>(kHashMultiplier);
  const uint32_t c_hi = static_cast<uint32_t>(kHashMultiplier >> 32);
  const uint32_t a_term = a * c_lo;  // (a * C) mod 2^32
  const __m256i vc_lo = _mm256_set1_epi64x(c_lo);
  const __m256i vc_hi = _mm256_set1_epi64x(c_hi);
  const __m256i va_term = _mm256_set1_epi64x(a_term);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(slot_mask));
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Zero-extend 4 b values into 64-bit lanes.
    const __m256i vb = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bs + i)));
    const __m256i t0 = _mm256_mul_epu32(vb, vc_lo);
    // Low 32-bit lanes hold (b * c_hi + a_term) mod 2^32; high lanes are
    // zero (vb's high lanes are zero, va_term's high lanes are zero).
    const __m256i cross =
        _mm256_add_epi32(_mm256_mullo_epi32(vb, vc_hi), va_term);
    __m256i h = _mm256_add_epi64(t0, _mm256_slli_epi64(cross, 32));
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
    h = _mm256_and_si256(h, vmask);
    // Slots fit in 32 bits (table capacity < 2^32): pack low halves.
    const __m256i packed = _mm256_permutevar8x32_epi32(h, pack);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_slots + i),
                     _mm256_castsi256_si128(packed));
  }
  if (i < n) PairProbeSlotsScalar(a, bs + i, n - i, slot_mask, out_slots + i);
}

#endif  // FLOWCUBE_SIMD_X86

inline void PairProbeSlots(uint32_t a, const uint32_t* bs, size_t n,
                           uint64_t slot_mask, uint32_t* out_slots,
                           Level level) {
#if defined(FLOWCUBE_SIMD_X86)
  if (level == Level::kAvx2) {
    PairProbeSlotsAvx2(a, bs, n, slot_mask, out_slots);
    return;
  }
#endif
  (void)level;
  PairProbeSlotsScalar(a, bs, n, slot_mask, out_slots);
}

// ---------------------------------------------------------------------------
// Kernel: IntersectCountU32 / IntersectU32
//
// Sorted-set intersection over strictly-increasing uint32 arrays — the
// tidlist counting backend's inner loop. The count-only form is the hot
// one (final support evaluation); the materializing form feeds progressive
// multi-way intersections and writes to `out` (room for min(na, nb)).

namespace internal {

// Galloping threshold: when one list is this many times longer, binary
// search beats the linear merge.
constexpr size_t kGallopRatio = 32;

inline const uint32_t* LowerBoundU32(const uint32_t* first,
                                     const uint32_t* last, uint32_t value) {
  size_t len = static_cast<size_t>(last - first);
  while (len > 0) {
    const size_t half = len / 2;
    const uint32_t* mid = first + half;
    if (*mid < value) {
      first = mid + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return first;
}

}  // namespace internal

inline size_t IntersectCountU32Scalar(const uint32_t* a, size_t na,
                                      const uint32_t* b, size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  size_t count = 0;
  if (nb / na >= internal::kGallopRatio) {
    const uint32_t* lo = b;
    const uint32_t* const end = b + nb;
    for (size_t i = 0; i < na; ++i) {
      lo = internal::LowerBoundU32(lo, end, a[i]);
      if (lo == end) break;
      if (*lo == a[i]) {
        ++count;
        ++lo;
      }
    }
    return count;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

#if defined(FLOWCUBE_SIMD_X86)

// Block-compare intersection: each 4/8-wide block of `a` is compared
// against every rotation of the current block of `b`; the block whose
// maximum is smaller advances. Inputs are strictly increasing, so each
// element matches at most once and the popcount is exact.

inline size_t IntersectCountU32Sse2(const uint32_t* a, size_t na,
                                    const uint32_t* b, size_t nb) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));  // rot 1
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4e)));  // rot 2
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));  // rot 3
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)))));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return count + IntersectCountU32Scalar(a + i, na - i, b + j, nb - j);
}

__attribute__((target("avx2"))) inline size_t IntersectCountU32Avx2(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i cmp = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
      cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, vb));
    }
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(cmp)))));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return count + IntersectCountU32Scalar(a + i, na - i, b + j, nb - j);
}

#endif  // FLOWCUBE_SIMD_X86

inline size_t IntersectCountU32(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb, Level level) {
#if defined(FLOWCUBE_SIMD_X86)
  if (level == Level::kAvx2) return IntersectCountU32Avx2(a, na, b, nb);
  if (level == Level::kSse2) return IntersectCountU32Sse2(a, na, b, nb);
#endif
  (void)level;
  return IntersectCountU32Scalar(a, na, b, nb);
}

inline size_t IntersectCountU32(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb) {
  return IntersectCountU32(a, na, b, nb, ActiveLevel());
}

// Materializing intersection (scalar with galloping at every level: the
// multi-way chains it feeds shrink geometrically, so the merge is never
// the hot loop). Returns the number written to `out`.
inline size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  size_t written = 0;
  if (nb / na >= internal::kGallopRatio) {
    const uint32_t* lo = b;
    const uint32_t* const end = b + nb;
    for (size_t i = 0; i < na; ++i) {
      lo = internal::LowerBoundU32(lo, end, a[i]);
      if (lo == end) break;
      if (*lo == a[i]) {
        out[written++] = a[i];
        ++lo;
      }
    }
    return written;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[written++] = a[i];
      ++i;
      ++j;
    }
  }
  return written;
}

// ---------------------------------------------------------------------------
// Kernel: AndPopcountU64 / AndIntoU64
//
// Dense-bitmap intersection for the vertical counting backend: tidlists of
// frequent items are dense enough (>= ~1% of transactions) that a packed
// bitmap beats sorted-list merging — support(A,B) is one streaming
// AND+popcount over words that live in L2/L3. AndIntoU64 materializes the
// AND for progressive k-way chains (triples and longer).
// ---------------------------------------------------------------------------

inline size_t AndPopcountU64Scalar(const uint64_t* a, const uint64_t* b,
                                   size_t n_words) {
  size_t count = 0;
  for (size_t i = 0; i < n_words; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

inline void AndIntoU64Scalar(const uint64_t* a, const uint64_t* b,
                             size_t n_words, uint64_t* out) {
  for (size_t i = 0; i < n_words; ++i) out[i] = a[i] & b[i];
}

#if defined(FLOWCUBE_SIMD_X86)

__attribute__((target("avx2"))) inline size_t AndPopcountU64Avx2(
    const uint64_t* a, const uint64_t* b, size_t n_words) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n_words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vand = _mm256_and_si256(va, vb);
    // popcnt on the extracted lanes: the loop is bandwidth-bound, so the
    // scalar popcounts overlap the next pair of loads.
    count += static_cast<size_t>(
        __builtin_popcountll(static_cast<uint64_t>(
            _mm256_extract_epi64(vand, 0))) +
        __builtin_popcountll(
            static_cast<uint64_t>(_mm256_extract_epi64(vand, 1))) +
        __builtin_popcountll(
            static_cast<uint64_t>(_mm256_extract_epi64(vand, 2))) +
        __builtin_popcountll(
            static_cast<uint64_t>(_mm256_extract_epi64(vand, 3))));
  }
  return count + AndPopcountU64Scalar(a + i, b + i, n_words - i);
}

__attribute__((target("avx2"))) inline void AndIntoU64Avx2(const uint64_t* a,
                                                           const uint64_t* b,
                                                           size_t n_words,
                                                           uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= n_words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  AndIntoU64Scalar(a + i, b + i, n_words - i, out + i);
}

__attribute__((target("sse2"))) inline void AndIntoU64Sse2(const uint64_t* a,
                                                           const uint64_t* b,
                                                           size_t n_words,
                                                           uint64_t* out) {
  size_t i = 0;
  for (; i + 2 <= n_words; i += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_and_si128(va, vb));
  }
  AndIntoU64Scalar(a + i, b + i, n_words - i, out + i);
}

#endif  // FLOWCUBE_SIMD_X86

inline size_t AndPopcountU64(const uint64_t* a, const uint64_t* b,
                             size_t n_words, Level level) {
#if defined(FLOWCUBE_SIMD_X86)
  if (level == Level::kAvx2) return AndPopcountU64Avx2(a, b, n_words);
#endif
  (void)level;
  return AndPopcountU64Scalar(a, b, n_words);
}

inline size_t AndPopcountU64(const uint64_t* a, const uint64_t* b,
                             size_t n_words) {
  return AndPopcountU64(a, b, n_words, ActiveLevel());
}

inline void AndIntoU64(const uint64_t* a, const uint64_t* b, size_t n_words,
                       uint64_t* out, Level level) {
#if defined(FLOWCUBE_SIMD_X86)
  if (level == Level::kAvx2) return AndIntoU64Avx2(a, b, n_words, out);
  if (level == Level::kSse2) return AndIntoU64Sse2(a, b, n_words, out);
#endif
  (void)level;
  AndIntoU64Scalar(a, b, n_words, out);
}

inline void AndIntoU64(const uint64_t* a, const uint64_t* b, size_t n_words,
                       uint64_t* out) {
  AndIntoU64(a, b, n_words, out, ActiveLevel());
}

}  // namespace flowcube::simd

#endif  // FLOWCUBE_COMMON_SIMD_H_
