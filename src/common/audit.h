#ifndef FLOWCUBE_COMMON_AUDIT_H_
#define FLOWCUBE_COMMON_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "flowcube/flowcube.h"
#include "flowgraph/flowgraph.h"
#include "hierarchy/concept_hierarchy.h"
#include "mining/item_catalog.h"
#include "mining/stage_catalog.h"
#include "path/path_database.h"

// The heaviest tier of invariant checking (above FC_CHECK / FC_DCHECK in
// common/logging.h): whole-structure sweeps that re-derive every invariant a
// data structure is supposed to maintain — count conservation and
// distribution normalization in flowgraphs, encode/decode bijections in the
// catalogs, roll-up consistency across flowcube cuboids. Audits are O(size
// of the structure) or worse, so they are compiled out of the FC_AUDIT macro
// unless the build defines FLOWCUBE_AUDIT (CMake -DFLOWCUBE_AUDIT=ON; the
// asan-ubsan preset turns it on).
//
// The Audit* functions themselves are always compiled and return an
// AuditReport rather than aborting, so tests can corrupt a structure and
// assert the audit notices; FC_AUDIT(expr) is the enforcement wrapper that
// prints every violation and aborts.

namespace flowcube {

// The outcome of one audit pass: the audited subject ("FlowGraph",
// "ItemCatalog", ...) plus every violated invariant, in discovery order.
class AuditReport {
 public:
  explicit AuditReport(std::string subject) : subject_(std::move(subject)) {}

  // Records one violation.
  void Fail(std::string message) { violations_.push_back(std::move(message)); }

  // Absorbs another report's violations, prefixing them with its subject.
  void Absorb(const AuditReport& other);

  bool ok() const { return violations_.empty(); }
  const std::string& subject() const { return subject_; }
  const std::vector<std::string>& violations() const { return violations_; }

  // Renders "FlowGraph audit: 2 violation(s)" followed by one line each.
  std::string ToString() const;

 private:
  std::string subject_;
  std::vector<std::string> violations_;
};

// Concept hierarchy: dense parent/child/level consistency and the
// name <-> id bijection (Find(Name(n)) == n).
AuditReport AuditConceptHierarchy(const ConceptHierarchy& hierarchy);

// Prefix trie: parent/depth consistency and the (parent, location) -> child
// lookup bijection.
AuditReport AuditPrefixTrie(const PrefixTrie& trie);

// Item catalog: dimension-item and stage-item encode/decode bijections,
// id-range partitioning, and the underlying prefix trie.
AuditReport AuditItemCatalog(const ItemCatalog& catalog);

// Path database: every record matches the schema (one value per dimension,
// ids in range, non-empty path, non-negative durations).
AuditReport AuditPathDatabase(const PathDatabase& db);

struct FlowGraphAuditOptions {
  // When > 0, every exception's condition support must be at least this (the
  // exception miner's delta): exceptions may only hang off frequent
  // prefixes.
  uint32_t min_condition_support = 0;
  // Tolerance for "distributions sum to 1" checks. Distributions are exact
  // count ratios, so only accumulated floating-point error is allowed.
  double probability_tolerance = 1e-9;
};

// Flowgraph: prefix-tree parent/child consistency, count conservation
// (path_count == terminate_count + sum of children's path_counts),
// duration/transition distributions summing to ~1, and every recorded
// exception being well-formed (condition nodes are ancestors sorted by
// depth, support and probabilities in range).
AuditReport AuditFlowGraph(const FlowGraph& graph,
                           const FlowGraphAuditOptions& options = {});

// Flowcube: per-cell iceberg condition (support >= min_support, Definition
// 4.5), cell coordinates consistent with the cuboid's item level, each
// cell's flowgraph aggregating exactly `support` paths (plus a full
// AuditFlowGraph), and roll-up consistency across cuboid pairs <Il, Pl>:
// whenever one materialized item level generalizes another at the same path
// level, every specific cell's ancestor cell exists and counts at least as
// many paths (anti-monotonicity of support).
AuditReport AuditFlowCube(const FlowCube& cube, uint32_t min_support,
                          const FlowGraphAuditOptions& graph_options = {});

namespace internal {

// Prints the report and aborts when it has violations. Out of line so the
// macro stays small.
void AuditFailIfNotOk(const AuditReport& report, const char* file, int line);

}  // namespace internal
}  // namespace flowcube

// FC_AUDIT(expr): evaluate an audit expression yielding an AuditReport and
// abort with the full violation list when it is not ok(). The expression is
// NOT evaluated unless FLOWCUBE_AUDIT is defined — audits may be arbitrarily
// expensive.
#ifdef FLOWCUBE_AUDIT
#define FC_AUDIT_ENABLED 1
#define FC_AUDIT(expr) \
  ::flowcube::internal::AuditFailIfNotOk((expr), __FILE__, __LINE__)
#else
#define FC_AUDIT_ENABLED 0
#define FC_AUDIT(expr) \
  do {                 \
  } while (false)
#endif

#endif  // FLOWCUBE_COMMON_AUDIT_H_
