#ifndef FLOWCUBE_COMMON_SEALED_COLUMN_H_
#define FLOWCUBE_COMMON_SEALED_COLUMN_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace flowcube {

// A read-mostly flat column that either owns its elements (a std::vector)
// or borrows them from an external allocation — typically a checkpoint
// mapping (src/store) — pinned by a shared keepalive handle. This is the
// ownership abstraction behind the sealed storage forms: readers go through
// one span view regardless of where the bytes live, and writers are only
// legal on owned storage (mutating a borrowed column FC_CHECKs, so a
// mapped cube can never be silently modified through a const_cast slip).
//
// Copying a borrowed column shares the borrow (span + keepalive); copying
// an owned column deep-copies the vector. Both directions keep the view
// pointing at the copy's own storage, so the implicit copy/move of an
// enclosing class (e.g. Cuboid) can never leave a dangling span behind.
template <typename T>
class SealedColumn {
 public:
  SealedColumn() = default;

  SealedColumn(const SealedColumn& other) { CopyFrom(other); }
  SealedColumn& operator=(const SealedColumn& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  SealedColumn(SealedColumn&& other) noexcept { MoveFrom(std::move(other)); }
  SealedColumn& operator=(SealedColumn&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  // Replaces the contents with `n` owned copies of `fill`. Requires owned
  // (or empty) storage: a borrowed column is immutable by contract.
  void Reset(size_t n, const T& fill) {
    FC_CHECK_MSG(!borrowed_, "cannot mutate a borrowed sealed column");
    owned_.assign(n, fill);
    view_ = std::span<const T>(owned_.data(), owned_.size());
  }

  // Points the column at externally owned elements; `keepalive` pins the
  // allocation (e.g. the mmap handle) for as long as any copy of this
  // column is alive.
  void Borrow(std::span<const T> view, std::shared_ptr<const void> keepalive) {
    owned_.clear();
    owned_.shrink_to_fit();
    view_ = view;
    keepalive_ = std::move(keepalive);
    borrowed_ = true;
  }

  // In-place element write. Requires owned storage; never reallocates, so
  // the view stays valid.
  T& Mut(size_t i) {
    FC_CHECK_MSG(!borrowed_, "cannot mutate a borrowed sealed column");
    FC_DCHECK(i < owned_.size());
    return owned_[i];
  }

  const T& operator[](size_t i) const { return view_[i]; }
  std::span<const T> view() const { return view_; }
  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  bool borrowed() const { return borrowed_; }

  // Heap bytes owned by this column (0 when borrowed — the mapping owns
  // the bytes and is accounted by the store layer).
  size_t OwnedBytes() const { return owned_.capacity() * sizeof(T); }

 private:
  void CopyFrom(const SealedColumn& other) {
    owned_ = other.owned_;
    keepalive_ = other.keepalive_;
    borrowed_ = other.borrowed_;
    view_ = borrowed_ ? other.view_
                      : std::span<const T>(owned_.data(), owned_.size());
  }

  void MoveFrom(SealedColumn&& other) noexcept {
    owned_ = std::move(other.owned_);
    keepalive_ = std::move(other.keepalive_);
    borrowed_ = other.borrowed_;
    view_ = borrowed_ ? other.view_
                      : std::span<const T>(owned_.data(), owned_.size());
    other.view_ = {};
    other.borrowed_ = false;
  }

  std::vector<T> owned_;
  std::span<const T> view_;
  std::shared_ptr<const void> keepalive_;
  bool borrowed_ = false;
};

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_SEALED_COLUMN_H_
