#ifndef FLOWCUBE_COMMON_METRICS_H_
#define FLOWCUBE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace flowcube {

// Lightweight process-wide observability (DESIGN.md §8): named counters,
// gauges, and histograms held in a global registry, fed by the hot layers
// (miners, cube builders, thread pool, query surface) and rendered on
// demand as human text, one-line JSON, or a Prometheus-style text dump.
//
// Collection is always on and deliberately cheap — a relaxed atomic add per
// event, with every hot loop accumulating into locals and flushing once per
// pass/phase — so enabling the *output* (FLOWCUBE_METRICS / --metrics)
// never changes what was measured. Call sites cache instrument references:
//
//   static Counter& passes = MetricRegistry::Global().counter("mining.shared.passes");
//   passes.Increment();
//
// Instrument names are dot-separated lowercase paths, "layer.subsystem.what"
// (e.g. "cube.buc.cells_visited", "trace.flowcube.measures.seconds").

// A monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  friend class ScopedEpoch;
  void Reset() { v_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> v_{0};
};

// A point-in-time signed value (resolved thread count, deepest recursion).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  // Raises the gauge to `v` if larger (high-water marks).
  void SetMax(int64_t v);
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  friend class ScopedEpoch;
  void Reset() { v_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> v_{0};
};

// A distribution of non-negative samples (mostly phase durations in
// seconds). Exact count/sum/min/max plus power-of-two buckets for
// approximate percentiles. Thread-safe; Record costs one short mutex hold,
// so it belongs at pass/phase granularity, never inside per-item loops.
class Histogram {
 public:
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    // Approximate (bucket-resolution) percentiles; exact when count <= 1.
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  void Record(double value);
  // Records `value` occurring `count` times under one mutex hold — how hot
  // loops flush a locally accumulated distribution (e.g. probe lengths) in
  // O(distinct values) instead of O(samples).
  void Record(double value, uint64_t count);
  Snapshot snapshot() const;

 private:
  friend class MetricRegistry;
  friend class ScopedEpoch;
  void Reset();

  // Bucket i covers [2^(i-32), 2^(i-31)) — ~2.3e-10 up to ~4.3e9, enough
  // for nanoseconds-to-years when samples are seconds.
  static constexpr int kNumBuckets = 64;
  static int BucketOf(double value);
  static double BucketMid(int bucket);

  mutable Mutex mu_;
  uint64_t count_ FC_GUARDED_BY(mu_) = 0;
  double sum_ FC_GUARDED_BY(mu_) = 0.0;
  double min_ FC_GUARDED_BY(mu_) = 0.0;
  double max_ FC_GUARDED_BY(mu_) = 0.0;
  uint64_t buckets_[kNumBuckets] FC_GUARDED_BY(mu_) = {};
};

// The process-global instrument registry. Instrument references returned by
// counter()/gauge()/histogram() stay valid for the process lifetime;
// Reset() zeroes values but never invalidates references.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Zeroes every registered instrument (tests / repeated bench runs).
  void Reset();

  // Renders every instrument, sorted by name. Text is one aligned line per
  // instrument; JSON is a single-line object
  //   {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
  // suitable for folding into BENCH_<name>.json; Prometheus is the text
  // exposition format with names prefixed "flowcube_" and dots flattened
  // to underscores.
  std::string RenderText() const;
  std::string RenderJson() const;
  std::string RenderPrometheus() const;

 private:
  friend class ScopedEpoch;

  mutable Mutex mu_;
  // Node-based maps: stable addresses + deterministic render order. The
  // maps are guarded; the pointed-to instruments are internally
  // synchronized and outlive every reference handed out.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      FC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      FC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      FC_GUARDED_BY(mu_);
};

// An isolation scope over a registry (the process-global one by default):
// the constructor snapshots every registered instrument and zeroes it, so
// the enclosed code observes counts as if the process had just started; the
// destructor folds the scope's activity back into the saved totals, leaving
// the registry exactly as if no epoch had been opened. This is what lets
// tests assert absolute instrument values without depending on whatever
// earlier tests (or fixtures) recorded, while long-lived processes keep
// cumulative totals intact. Scopes may nest. Not safe against instruments
// recording concurrently with the constructor/destructor themselves.
class ScopedEpoch {
 public:
  explicit ScopedEpoch(MetricRegistry& registry = MetricRegistry::Global());
  ~ScopedEpoch();

  ScopedEpoch(const ScopedEpoch&) = delete;
  ScopedEpoch& operator=(const ScopedEpoch&) = delete;

 private:
  struct HistogramState {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<uint64_t> buckets;
  };

  MetricRegistry& registry_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, int64_t, std::less<>> gauges_;
  std::map<std::string, HistogramState, std::less<>> histograms_;
};

// ---------------------------------------------------------------------------
// Output selection. Rendering is opt-in via the FLOWCUBE_METRICS environment
// variable ("text"/"1", "json", "prom"/"prometheus") or a --metrics[=FORMAT]
// command-line flag on the bench and example binaries.

enum class MetricsFormat { kNone, kText, kJson, kPrometheus };

// Parses a format name; unrecognized values mean kNone.
MetricsFormat ParseMetricsFormat(std::string_view value);

// The FLOWCUBE_METRICS environment knob.
MetricsFormat MetricsFormatFromEnv();

// Strips --metrics / --metrics=FORMAT from argv (so downstream flag parsers
// like benchmark::Initialize never see it) and resolves the process-wide
// format: the flag wins, falling back to FLOWCUBE_METRICS. A bare
// --metrics selects text. Also enables trace-event capture (common/trace.h)
// when a format is selected.
MetricsFormat ConsumeMetricsFlag(int* argc, char** argv);

// Process-wide output format chosen by ConsumeMetricsFlag (or, before any
// call, the environment knob).
MetricsFormat metrics_format();
void set_metrics_format(MetricsFormat format);

// Writes the global registry (and the trace timeline, when captured) to
// `out` in the process-wide format; no-op when the format is kNone.
void DumpMetricsIfEnabled(std::FILE* out);

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_METRICS_H_
