#ifndef FLOWCUBE_COMMON_STRING_UTIL_H_
#define FLOWCUBE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace flowcube {

// Joins the elements of `parts` with `sep`: {"a","b"} + "," -> "a,b".
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Splits `s` on the single character `sep`. Empty fields are preserved:
// "a,,b" -> {"a","","b"}; "" -> {""}.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Renders a double with up to `digits` fractional digits, trimming trailing
// zeros ("0.50" -> "0.5", "3.00" -> "3"). Used by the flowgraph renderer.
std::string FormatDouble(double v, int digits);

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_STRING_UTIL_H_
