#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace flowcube {

ZipfSampler::ZipfSampler(size_t n, double alpha) : alpha_(alpha) {
  FC_CHECK_MSG(n >= 1, "ZipfSampler requires n >= 1");
  FC_CHECK_MSG(alpha >= 0.0, "ZipfSampler requires alpha >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Random& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t rank) const {
  FC_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace flowcube
