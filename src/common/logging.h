#ifndef FLOWCUBE_COMMON_LOGGING_H_
#define FLOWCUBE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking. FC_CHECK aborts with a source location when its
// condition is false; it is always on (benchmark-measured code paths avoid
// heavy checks inside tight loops). FC_DCHECK compiles away in NDEBUG builds.
//
// These are for programmer errors (broken invariants). User-visible failures
// (bad input, missing cells, ...) are reported through Status instead.

#define FC_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define FC_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FC_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define FC_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define FC_DCHECK(cond) FC_CHECK(cond)
#endif

#endif  // FLOWCUBE_COMMON_LOGGING_H_
