#ifndef FLOWCUBE_COMMON_LOGGING_H_
#define FLOWCUBE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

// Invariant checking. FC_CHECK aborts with a source location when its
// condition is false; it is always on (benchmark-measured code paths avoid
// heavy checks inside tight loops). FC_DCHECK compiles away in NDEBUG builds.
// FC_AUDIT (common/audit.h) is the heavier third tier: whole-structure
// invariant sweeps, off unless FLOWCUBE_AUDIT is defined.
//
// These are for programmer errors (broken invariants). User-visible failures
// (bad input, missing cells, ...) are reported through Status instead.
//
// FC_CHECK_MSG takes a stream-style message so call sites can report the
// offending values:
//
//   FC_CHECK_MSG(m >= 0, "hierarchy depth must be >= 0, got " << m);

namespace flowcube::internal {

// Prints "FC_CHECK failed at file:line: condition (message)" to stderr and
// aborts. Out of line so the macros stay cheap at the call site.
[[noreturn]] void CheckFail(const char* file, int line, const char* condition,
                            const std::string& message);

}  // namespace flowcube::internal

#define FC_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::flowcube::internal::CheckFail(__FILE__, __LINE__, #cond, ""); \
    }                                                                 \
  } while (false)

// `...` so that stream expressions containing commas (template arguments,
// function calls) still parse as one message.
#define FC_CHECK_MSG(cond, ...)                                  \
  do {                                                           \
    if (!(cond)) {                                               \
      std::ostringstream fc_check_msg_stream_;                   \
      fc_check_msg_stream_ << __VA_ARGS__;                       \
      ::flowcube::internal::CheckFail(__FILE__, __LINE__, #cond, \
                                      fc_check_msg_stream_.str());  \
    }                                                            \
  } while (false)

#ifdef NDEBUG
#define FC_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define FC_DCHECK(cond) FC_CHECK(cond)
#endif

#endif  // FLOWCUBE_COMMON_LOGGING_H_
