#include "common/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <map>

#include "common/string_util.h"

namespace flowcube {

void AuditReport::Absorb(const AuditReport& other) {
  for (const std::string& v : other.violations()) {
    violations_.push_back(other.subject() + ": " + v);
  }
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  out << subject_ << " audit: " << violations_.size() << " violation(s)";
  for (const std::string& v : violations_) out << "\n  " << v;
  return out.str();
}

AuditReport AuditConceptHierarchy(const ConceptHierarchy& hierarchy) {
  AuditReport report("ConceptHierarchy(" + hierarchy.dimension_name() + ")");
  const size_t n = hierarchy.NodeCount();
  if (n == 0) {
    report.Fail("hierarchy has no root");
    return report;
  }
  if (hierarchy.Level(hierarchy.root()) != 0) {
    report.Fail("root is not at level 0");
  }
  if (hierarchy.Parent(hierarchy.root()) != kInvalidNode) {
    report.Fail("root has a parent");
  }
  int max_level_seen = 0;
  for (NodeId node = 0; node < n; ++node) {
    max_level_seen = std::max(max_level_seen, hierarchy.Level(node));
    // Name <-> id bijection.
    Result<NodeId> found = hierarchy.Find(hierarchy.Name(node));
    if (!found.ok() || found.value() != node) {
      report.Fail(StrFormat("Find(Name(%u)) does not resolve back to node %u",
                            node, node));
    }
    if (node == hierarchy.root()) continue;
    const NodeId parent = hierarchy.Parent(node);
    if (parent >= node) {
      // Children are always appended after their parent, so ids increase
      // along every root path; this also rules out cycles.
      report.Fail(StrFormat("node %u has parent %u >= itself", node, parent));
      continue;
    }
    if (hierarchy.Level(node) != hierarchy.Level(parent) + 1) {
      report.Fail(StrFormat("node %u level %d != parent %u level %d + 1", node,
                            hierarchy.Level(node), parent,
                            hierarchy.Level(parent)));
    }
    const std::vector<NodeId>& siblings = hierarchy.Children(parent);
    if (std::count(siblings.begin(), siblings.end(), node) != 1) {
      report.Fail(StrFormat("node %u missing from parent %u's children", node,
                            parent));
    }
  }
  for (NodeId node = 0; node < n; ++node) {
    for (NodeId child : hierarchy.Children(node)) {
      if (child >= n) {
        report.Fail(StrFormat("node %u has out-of-range child %u", node,
                              child));
      } else if (hierarchy.Parent(child) != node) {
        report.Fail(StrFormat("child %u of node %u points back at parent %u",
                              child, node, hierarchy.Parent(child)));
      }
    }
  }
  if (hierarchy.MaxLevel() != max_level_seen) {
    report.Fail(StrFormat("MaxLevel() is %d but deepest node is at %d",
                          hierarchy.MaxLevel(), max_level_seen));
  }
  return report;
}

AuditReport AuditPrefixTrie(const PrefixTrie& trie) {
  AuditReport report("PrefixTrie");
  const size_t n = trie.size();
  if (n == 0) {
    report.Fail("trie is missing the empty prefix");
    return report;
  }
  if (trie.depth(kEmptyPrefix) != 0) {
    report.Fail("empty prefix is not at depth 0");
  }
  if (trie.parent(kEmptyPrefix) != PrefixTrie::kInvalidPrefix) {
    report.Fail("empty prefix has a parent");
  }
  if (trie.location(kEmptyPrefix) != kInvalidNode) {
    report.Fail("empty prefix has a location");
  }
  for (PrefixId p = 1; p < n; ++p) {
    const PrefixId parent = trie.parent(p);
    if (parent >= p) {
      report.Fail(StrFormat("prefix %u has parent %u >= itself", p, parent));
      continue;
    }
    if (trie.depth(p) != trie.depth(parent) + 1) {
      report.Fail(StrFormat("prefix %u depth %d != parent %u depth %d + 1", p,
                            trie.depth(p), parent, trie.depth(parent)));
    }
    if (trie.location(p) == kInvalidNode) {
      report.Fail(StrFormat("non-empty prefix %u has no location", p));
    }
    // (parent, location) -> child lookup bijection.
    if (trie.Find(parent, trie.location(p)) != p) {
      report.Fail(StrFormat(
          "Find(parent(%u), location(%u)) does not resolve back to %u", p, p,
          p));
    }
  }
  return report;
}

AuditReport AuditItemCatalog(const ItemCatalog& catalog) {
  AuditReport report("ItemCatalog");
  report.Absorb(AuditPrefixTrie(catalog.trie()));
  const PathSchema& schema = catalog.schema();

  // Dimension items pre-intern every node at level >= 1 of every dimension;
  // together with the per-id bijection below this pins the id range exactly.
  size_t expected_dim_items = 0;
  for (const ConceptHierarchy& h : schema.dimensions) {
    expected_dim_items += h.NodeCount() - 1;  // everything but the root
  }
  if (catalog.num_dim_items() != expected_dim_items) {
    report.Fail(StrFormat("%zu dimension items interned, schema defines %zu",
                          catalog.num_dim_items(), expected_dim_items));
  }

  for (ItemId id = 0; id < catalog.num_dim_items(); ++id) {
    if (!catalog.IsDimItem(id) || catalog.IsStageItem(id)) {
      report.Fail(StrFormat("dim item %u misclassified by the id partition",
                            id));
    }
    const size_t dim = catalog.DimOf(id);
    if (dim >= schema.num_dimensions()) {
      report.Fail(StrFormat("dim item %u references dimension %zu of %zu", id,
                            dim, schema.num_dimensions()));
      continue;
    }
    const ConceptHierarchy& h = schema.dimensions[dim];
    const NodeId node = catalog.NodeOf(id);
    if (node >= h.NodeCount()) {
      report.Fail(StrFormat("dim item %u references node %u of %zu", id, node,
                            h.NodeCount()));
      continue;
    }
    if (h.Level(node) < 1) {
      report.Fail(StrFormat("dim item %u encodes the root of dimension %zu",
                            id, dim));
      continue;
    }
    if (catalog.DimLevelOf(id) != h.Level(node)) {
      report.Fail(StrFormat("dim item %u caches level %d, hierarchy says %d",
                            id, catalog.DimLevelOf(id), h.Level(node)));
    }
    // Encode/decode bijection.
    if (catalog.DimItem(dim, node) != id) {
      report.Fail(StrFormat(
          "DimItem(DimOf(%u), NodeOf(%u)) does not resolve back to %u", id,
          id, id));
    }
  }

  for (ItemId id = static_cast<ItemId>(catalog.num_dim_items());
       id < catalog.num_items(); ++id) {
    if (!catalog.IsStageItem(id) || catalog.IsDimItem(id)) {
      report.Fail(StrFormat("stage item %u misclassified by the id partition",
                            id));
    }
    const ItemCatalog::StageInfo& info = catalog.StageOf(id);
    if (info.prefix >= catalog.trie().size()) {
      report.Fail(StrFormat("stage item %u references prefix %u of %zu", id,
                            info.prefix, catalog.trie().size()));
      continue;
    }
    if (info.prefix == kEmptyPrefix) {
      report.Fail(StrFormat("stage item %u encodes the empty prefix", id));
    }
    if (info.duration < 0 && info.duration != kAnyDuration) {
      report.Fail(StrFormat("stage item %u has negative duration %lld", id,
                            static_cast<long long>(info.duration)));
    }
    // Encode/decode bijection.
    if (catalog.FindStageItem(info.path_level, info.prefix, info.duration) !=
        id) {
      report.Fail(StrFormat(
          "FindStageItem(StageOf(%u)) does not resolve back to %u", id, id));
    }
  }
  return report;
}

AuditReport AuditPathDatabase(const PathDatabase& db) {
  AuditReport report("PathDatabase");
  const PathSchema& schema = db.schema();
  for (uint32_t tid = 0; tid < db.size(); ++tid) {
    const PathRecord& rec = db.record(tid);
    if (rec.dims.size() != schema.num_dimensions()) {
      report.Fail(StrFormat("record %u has %zu dimension values of %zu", tid,
                            rec.dims.size(), schema.num_dimensions()));
      continue;
    }
    for (size_t d = 0; d < rec.dims.size(); ++d) {
      if (rec.dims[d] >= schema.dimensions[d].NodeCount()) {
        report.Fail(StrFormat("record %u dimension %zu value %u out of range",
                              tid, d, rec.dims[d]));
      }
    }
    if (rec.path.empty()) {
      report.Fail(StrFormat("record %u has an empty path", tid));
      continue;
    }
    for (size_t s = 0; s < rec.path.stages.size(); ++s) {
      const Stage& stage = rec.path.stages[s];
      if (stage.location >= schema.locations.NodeCount()) {
        report.Fail(StrFormat("record %u stage %zu location %u out of range",
                              tid, s, stage.location));
      }
      if (stage.duration < 0) {
        report.Fail(StrFormat("record %u stage %zu has negative duration %lld",
                              tid, s,
                              static_cast<long long>(stage.duration)));
      }
    }
  }
  return report;
}

namespace {

bool NodeIsAncestorOrSelf(const FlowGraph& g, FlowNodeId ancestor,
                          FlowNodeId node) {
  FlowNodeId cur = node;
  for (;;) {
    if (cur == ancestor) return true;
    if (cur == FlowGraph::kRoot) return false;
    cur = g.parent(cur);
  }
}

void AuditFlowException(const FlowGraph& g, size_t index,
                        const FlowException& e,
                        const FlowGraphAuditOptions& options,
                        AuditReport* report) {
  const auto fail = [&](const std::string& msg) {
    report->Fail(StrFormat("exception %zu: ", index) + msg);
  };
  if (e.node >= g.num_nodes() || e.node == FlowGraph::kRoot) {
    fail(StrFormat("deviating node %u is not a proper node", e.node));
    return;
  }
  if (e.condition.empty()) {
    fail("has no condition");
    return;
  }
  bool informative = false;
  int prev_depth = 0;
  bool conditions_ok = true;
  for (const StageCondition& c : e.condition) {
    if (c.node >= g.num_nodes() || c.node == FlowGraph::kRoot) {
      fail(StrFormat("condition node %u is not a proper node", c.node));
      conditions_ok = false;
      break;
    }
    if (g.depth(c.node) <= prev_depth) {
      fail("condition nodes are not sorted by strictly increasing depth");
      conditions_ok = false;
      break;
    }
    prev_depth = g.depth(c.node);
    if (!NodeIsAncestorOrSelf(g, c.node, e.node)) {
      fail(StrFormat("condition node %u is not an ancestor of node %u",
                     c.node, e.node));
      conditions_ok = false;
      break;
    }
    if (c.duration != kAnyDuration) {
      informative = true;
      if (c.duration < 0) {
        fail(StrFormat("condition duration %lld is negative",
                       static_cast<long long>(c.duration)));
      }
    }
  }
  if (!conditions_ok) return;
  if (!informative) {
    fail("condition constrains no duration (matches every path)");
  }
  const FlowNodeId deepest = e.condition.back().node;
  if (e.kind == FlowException::Kind::kTransition) {
    if (deepest != e.node) {
      fail(StrFormat("transition exception at node %u, deepest condition is "
                     "node %u",
                     e.node, deepest));
    }
    if (e.transition_target != FlowGraph::kTerminate &&
        (e.transition_target >= g.num_nodes() ||
         g.parent(e.transition_target) != e.node ||
         e.transition_target == FlowGraph::kRoot)) {
      fail(StrFormat("transition target %u is not a child of node %u",
                     e.transition_target, e.node));
    }
  } else {
    if (g.parent(e.node) != deepest) {
      fail(StrFormat("duration exception at node %u, deepest condition %u is "
                     "not its parent",
                     e.node, deepest));
    }
  }
  // Exceptions may only hang off frequent prefixes.
  const uint32_t min_support = std::max(options.min_condition_support, 1u);
  if (e.condition_support < min_support) {
    fail(StrFormat("condition support %u below the miner's delta %u",
                   e.condition_support, min_support));
  }
  if (e.condition_support > g.path_count(e.node)) {
    fail(StrFormat("condition support %u exceeds node %u's path count %u",
                   e.condition_support, e.node, g.path_count(e.node)));
  }
  if (e.global_probability < 0.0 || e.global_probability > 1.0 ||
      e.conditional_probability < 0.0 || e.conditional_probability > 1.0) {
    fail("probabilities are outside [0, 1]");
  }
}

}  // namespace

AuditReport AuditFlowGraph(const FlowGraph& graph,
                           const FlowGraphAuditOptions& options) {
  AuditReport report("FlowGraph");
  const size_t n = graph.num_nodes();
  if (n == 0) {
    report.Fail("graph has no root");
    return report;
  }
  if (graph.depth(FlowGraph::kRoot) != 0) {
    report.Fail("root is not at depth 0");
  }
  if (!graph.duration_counts(FlowGraph::kRoot).empty()) {
    report.Fail("root (the empty prefix) has duration counts");
  }
  if (graph.terminate_count(FlowGraph::kRoot) != 0) {
    report.Fail("root has a terminate count (paths are non-empty)");
  }

  for (FlowNodeId node = 0; node < n; ++node) {
    // Prefix-tree parent/child consistency.
    if (node != FlowGraph::kRoot) {
      const FlowNodeId parent = graph.parent(node);
      if (parent >= node) {
        // Nodes are appended after their parent, so ids increase along every
        // root path; this also rules out cycles.
        report.Fail(StrFormat("node %u has parent %u >= itself", node,
                              parent));
        continue;
      }
      if (graph.depth(node) != graph.depth(parent) + 1) {
        report.Fail(StrFormat("node %u depth %d != parent %u depth %d + 1",
                              node, graph.depth(node), parent,
                              graph.depth(parent)));
      }
      if (graph.location(node) == kInvalidNode) {
        report.Fail(StrFormat("node %u has no location", node));
      } else if (graph.FindChild(parent, graph.location(node)) != node) {
        // Also catches two siblings sharing a location.
        report.Fail(StrFormat(
            "FindChild(parent(%u), location(%u)) does not resolve back to %u",
            node, node, node));
      }
    }

    // Count conservation: every path through a node either terminates there
    // or continues into exactly one child.
    uint64_t child_sum = graph.terminate_count(node);
    bool children_consistent = true;
    for (FlowNodeId child : graph.children(node)) {
      if (child >= n || child == FlowGraph::kRoot) {
        report.Fail(StrFormat("node %u has invalid child %u", node, child));
        children_consistent = false;
        continue;
      }
      if (graph.parent(child) != node) {
        report.Fail(StrFormat("child %u of node %u points back at parent %u",
                              child, node, graph.parent(child)));
        children_consistent = false;
      }
      child_sum += graph.path_count(child);
    }
    if (child_sum != graph.path_count(node)) {
      report.Fail(StrFormat(
          "node %u path count %u != terminate count + children's counts %llu",
          node, graph.path_count(node),
          static_cast<unsigned long long>(child_sum)));
    }

    // Duration counts sum to the node's path count (each path through the
    // node stayed exactly once).
    if (node != FlowGraph::kRoot) {
      uint64_t duration_sum = 0;
      for (const auto& [d, c] : graph.duration_counts(node)) {
        if (d < 0 && d != kAnyDuration) {
          report.Fail(StrFormat("node %u counts negative duration %lld", node,
                                static_cast<long long>(d)));
        }
        duration_sum += c;
      }
      if (duration_sum != graph.path_count(node)) {
        report.Fail(StrFormat(
            "node %u duration counts sum to %llu, path count is %u", node,
            static_cast<unsigned long long>(duration_sum),
            graph.path_count(node)));
      }
    }

    // Distributions sum to ~1 (they are exact count ratios, Lemma 4.2).
    // TransitionProbability itself FC_CHECKs parent/child consistency, so
    // only evaluate it when the structure around this node is sound.
    if (children_consistent && graph.path_count(node) > 0) {
      double transition_sum =
          graph.TransitionProbability(node, FlowGraph::kTerminate);
      for (FlowNodeId child : graph.children(node)) {
        transition_sum += graph.TransitionProbability(node, child);
      }
      if (std::fabs(transition_sum - 1.0) > options.probability_tolerance) {
        report.Fail(StrFormat(
            "node %u transition distribution sums to %.12f", node,
            transition_sum));
      }
      if (node != FlowGraph::kRoot) {
        double duration_sum = 0.0;
        for (const auto& [d, unused] : graph.duration_counts(node)) {
          duration_sum += graph.DurationProbability(node, d);
        }
        if (std::fabs(duration_sum - 1.0) > options.probability_tolerance) {
          report.Fail(StrFormat("node %u duration distribution sums to %.12f",
                                node, duration_sum));
        }
      }
    }
  }

  for (size_t i = 0; i < graph.exceptions().size(); ++i) {
    AuditFlowException(graph, i, graph.exceptions()[i], options, &report);
  }
  return report;
}

namespace {

// Rolls a cell's coordinates up to `target` (which must generalize the
// cell's own item level). Items whose dimension generalizes to '*' drop out.
Itemset RollUpCell(const Itemset& dims, const ItemLevel& target,
                   const ItemCatalog& catalog) {
  Itemset out;
  out.reserve(dims.size());
  const PathSchema& schema = catalog.schema();
  for (ItemId id : dims) {
    const size_t dim = catalog.DimOf(id);
    const int level = target.levels[dim];
    if (level == 0) continue;
    const ConceptHierarchy& h = schema.dimensions[dim];
    const NodeId up = h.AncestorAtLevel(catalog.NodeOf(id), level);
    if (h.Level(up) == 0) continue;
    out.push_back(catalog.DimItem(dim, up));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

AuditReport AuditFlowCube(const FlowCube& cube, uint32_t min_support,
                          const FlowGraphAuditOptions& graph_options) {
  AuditReport report("FlowCube");
  const FlowCubePlan& plan = cube.plan();
  const ItemCatalog& catalog = cube.catalog();
  report.Absorb(AuditItemCatalog(catalog));

  for (size_t i = 0; i < plan.item_levels.size(); ++i) {
    const ItemLevel& il = plan.item_levels[i];
    for (size_t p = 0; p < plan.path_levels.size(); ++p) {
      const Cuboid& cuboid = cube.cuboid(i, p);
      const std::string cuboid_name =
          StrFormat("cuboid <%s,%d>", il.ToString().c_str(),
                    plan.path_levels[p]);
      if (!(cuboid.item_level() == il) ||
          cuboid.path_level() != plan.path_levels[p]) {
        report.Fail(cuboid_name + " disagrees with the plan's levels");
      }
      // Canonical cell order, so any violations report deterministically.
      for (const FlowCell* cell_ptr : cuboid.SortedCells()) {
        const FlowCell& cell = *cell_ptr;
        const std::string cell_name =
            cuboid_name + " cell " + cube.CellName(cell.dims);
        if (!std::is_sorted(cell.dims.begin(), cell.dims.end()) ||
            std::adjacent_find(cell.dims.begin(), cell.dims.end()) !=
                cell.dims.end()) {
          report.Fail(cell_name + ": coordinates are not sorted and unique");
        }
        std::vector<bool> seen_dim(il.levels.size(), false);
        for (ItemId id : cell.dims) {
          if (!catalog.IsDimItem(id)) {
            report.Fail(cell_name +
                        StrFormat(": coordinate %u is not a dimension item",
                                  id));
            continue;
          }
          const size_t dim = catalog.DimOf(id);
          if (seen_dim[dim]) {
            report.Fail(cell_name +
                        StrFormat(": two coordinates for dimension %zu", dim));
          }
          seen_dim[dim] = true;
          if (il.levels[dim] < 1 || catalog.DimLevelOf(id) > il.levels[dim]) {
            report.Fail(
                cell_name +
                StrFormat(": coordinate %u at level %d, cuboid allows %d", id,
                          catalog.DimLevelOf(id), il.levels[dim]));
          }
        }
        // Iceberg condition (Definition 4.5). The apex cell (empty
        // coordinates) is exempt: the builder always materializes it with
        // support >= 1 so roll-ups terminate.
        const uint32_t cell_floor = cell.dims.empty() ? 1 : min_support;
        if (cell.support < cell_floor) {
          report.Fail(cell_name +
                      StrFormat(": support %u below iceberg threshold %u",
                                cell.support, cell_floor));
        }
        // The measure aggregates exactly the cell's paths.
        if (cell.graph.total_paths() != cell.support) {
          report.Fail(cell_name +
                      StrFormat(": flowgraph aggregates %u paths, support is "
                                "%u",
                                cell.graph.total_paths(), cell.support));
        }
        AuditReport graph_report = AuditFlowGraph(cell.graph, graph_options);
        if (!graph_report.ok()) {
          AuditReport named(cell_name);
          named.Absorb(graph_report);
          report.Absorb(named);
        }
      }
    }
  }

  // Roll-up consistency across cuboid pairs <Il, Pl> at the same path level:
  // support is anti-monotone along the item lattice, so every cell's roll-up
  // to a materialized more-general level must exist and must count at least
  // as many paths; distinct cells roll up to disjoint path sets, so the
  // rolled-up counts also sum to at most the ancestor's.
  for (size_t gi = 0; gi < plan.item_levels.size(); ++gi) {
    for (size_t si = 0; si < plan.item_levels.size(); ++si) {
      if (gi == si) continue;
      const ItemLevel& general = plan.item_levels[gi];
      const ItemLevel& specific = plan.item_levels[si];
      if (!ItemLattice::GeneralizesOrEquals(general, specific)) continue;
      for (size_t p = 0; p < plan.path_levels.size(); ++p) {
        const Cuboid& general_cuboid = cube.cuboid(gi, p);
        const Cuboid& specific_cuboid = cube.cuboid(si, p);
        // Ordered map: the failure report must name violations in a
        // deterministic (lexicographic-key) order, and audits are cold.
        std::map<Itemset, uint64_t> rolled_support;
        for (const FlowCell* cell_ptr : specific_cuboid.SortedCells()) {
          const FlowCell& cell = *cell_ptr;
          const Itemset up = RollUpCell(cell.dims, general, catalog);
          rolled_support[up] += cell.support;
          const FlowCell* ancestor = general_cuboid.Find(up);
          if (ancestor == nullptr) {
            report.Fail(StrFormat(
                "cell %s of cuboid <%s,%d> has no ancestor cell %s in "
                "cuboid <%s,%d>",
                cube.CellName(cell.dims).c_str(),
                specific.ToString().c_str(), plan.path_levels[p],
                cube.CellName(up).c_str(), general.ToString().c_str(),
                plan.path_levels[p]));
          } else if (ancestor->support < cell.support) {
            report.Fail(StrFormat(
                "cell %s support %u exceeds ancestor %s support %u "
                "(anti-monotonicity violated between item levels %s and %s)",
                cube.CellName(cell.dims).c_str(), cell.support,
                cube.CellName(up).c_str(), ancestor->support,
                specific.ToString().c_str(), general.ToString().c_str()));
          }
        }
        for (const auto& [up, sum] : rolled_support) {
          const FlowCell* ancestor = general_cuboid.Find(up);
          if (ancestor != nullptr && sum > ancestor->support) {
            report.Fail(StrFormat(
                "cells rolling up to %s sum to %llu paths, ancestor counts "
                "%u (cells at item level %s are not disjoint)",
                cube.CellName(up).c_str(),
                static_cast<unsigned long long>(sum), ancestor->support,
                specific.ToString().c_str()));
          }
        }
      }
    }
  }
  return report;
}

namespace internal {

void AuditFailIfNotOk(const AuditReport& report, const char* file, int line) {
  if (report.ok()) return;
  std::fprintf(stderr, "FC_AUDIT failed at %s:%d:\n%s\n", file, line,
               report.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace flowcube
