#ifndef FLOWCUBE_COMMON_THREAD_POOL_H_
#define FLOWCUBE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace flowcube {

// Resolves a thread-count knob: `requested` >= 1 is used as-is; 0 (the
// default everywhere) reads the FLOWCUBE_THREADS environment variable,
// falling back to std::thread::hardware_concurrency(). Always >= 1.
size_t ResolveNumThreads(int requested = 0);

// A fixed pool of worker threads driving chunked parallel loops. There is
// deliberately no work stealing and no task graph: every construction phase
// is a flat loop over independent indices, so a shared atomic chunk cursor
// is all the scheduling needed, and per-shard partial state merged at the
// loop boundary keeps results bit-identical to a serial run.
//
// `num_threads` counts the calling thread: a pool of size T spawns T - 1
// background workers and the caller participates in every loop. A pool of
// size 1 runs everything inline, so the serial code path and the parallel
// one are literally the same code.
//
// Loops started from inside a pool task run inline on the calling shard
// (nested parallelism never deadlocks, it just serializes). The first
// exception thrown by any iteration is rethrown on the calling thread after
// the loop drains; remaining chunks are abandoned.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Workers participating in a loop, calling thread included.
  size_t num_threads() const { return workers_.size() + 1; }

  // Partitions [0, n) into chunks of roughly `grain` (at least `grain`)
  // indices and runs fn(shard, begin, end) for each chunk. `shard` is a
  // stable worker index in [0, num_threads()); one shard may process many
  // chunks, so per-shard state must be merged additively. Blocks until the
  // whole range is processed.
  void ParallelForChunks(
      size_t n, size_t grain,
      const std::function<void(size_t shard, size_t begin, size_t end)>& fn);

  // Runs fn(i) for every i in [0, n), chunked as above with `grain`
  // indices per scheduling unit.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t)>& fn);

 private:
  struct Job {
    size_t n = 0;
    size_t chunk = 1;
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    // First failure. Written under the pool mutex (RecordError); read by
    // the caller only after every worker drained, which the mutex
    // handshake orders — the analysis cannot express a capability living
    // in another object, hence no GUARDED_BY here.
    std::exception_ptr error;
  };

  void WorkerMain(size_t worker_index);
  // Grabs chunks of the current job until the range (or an error) exhausts
  // them. `shard` is this participant's stable index.
  void RunShard(Job* job, size_t shard);
  // Stores the shard's exception as the job's first failure.
  void RecordError(Job* job, std::exception_ptr error) FC_LOCKS_EXCLUDED(mu_);

  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar wake_cv_;   // workers wait for a new generation
  CondVar done_cv_;   // caller waits for workers_busy_ == 0
  uint64_t generation_ FC_GUARDED_BY(mu_) = 0;
  size_t workers_busy_ FC_GUARDED_BY(mu_) = 0;
  Job* job_ FC_GUARDED_BY(mu_) = nullptr;
  bool stop_ FC_GUARDED_BY(mu_) = false;
};

}  // namespace flowcube

#endif  // FLOWCUBE_COMMON_THREAD_POOL_H_
