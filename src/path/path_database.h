#ifndef FLOWCUBE_PATH_PATH_DATABASE_H_
#define FLOWCUBE_PATH_PATH_DATABASE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "path/path.h"

namespace flowcube {

// Checks that `record` is well-formed against `schema`: one value per
// dimension, ids in range, non-empty path, non-negative durations. Shared
// by PathDatabase::Append and the streaming ingestion surface.
Status ValidateRecord(const PathSchema& schema, const PathRecord& record);

// A collection of PathRecords over a fixed schema (paper Section 2,
// Table 1). Records are append-only and identified by dense PathId in
// insertion order, which the miners use as transaction ids.
class PathDatabase {
 public:
  using PathId = uint32_t;

  // The database keeps `schema` alive; all node ids inside records are
  // interpreted against it.
  explicit PathDatabase(SchemaPtr schema);

  const PathSchema& schema() const { return *schema_; }
  SchemaPtr schema_ptr() const { return schema_; }

  // Appends a record after validating that it matches the schema: one value
  // per dimension, ids in range, non-empty path, non-negative durations.
  Status Append(PathRecord record);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const PathRecord& record(PathId id) const;

  const std::vector<PathRecord>& records() const { return records_; }

  // Approximate in-memory footprint in bytes; used by benchmarks to report
  // dataset sizes the way the paper does ("disk size of 6 to 65 MB").
  size_t ApproximateBytes() const;

 private:
  SchemaPtr schema_;
  std::vector<PathRecord> records_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_PATH_PATH_DATABASE_H_
