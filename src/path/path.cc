#include "path/path.h"

#include "common/string_util.h"

namespace flowcube {

std::string PathToString(const PathSchema& schema, const Path& path) {
  std::string out;
  for (const Stage& s : path.stages) {
    out += "(" + schema.locations.Name(s.location) + "," +
           schema.durations.ToString(s.duration) + ")";
  }
  return out;
}

std::string RecordToString(const PathSchema& schema, const PathRecord& rec) {
  std::vector<std::string> dims;
  dims.reserve(rec.dims.size());
  for (size_t i = 0; i < rec.dims.size(); ++i) {
    dims.push_back(schema.dimensions[i].Name(rec.dims[i]));
  }
  return StrJoin(dims, ",") + " : " + PathToString(schema, rec.path);
}

}  // namespace flowcube
