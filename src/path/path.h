#ifndef FLOWCUBE_PATH_PATH_H_
#define FLOWCUBE_PATH_PATH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hierarchy/concept_hierarchy.h"
#include "rfid/discretizer.h"

namespace flowcube {

// One stage of a path (paper Section 2): the item sat at `location` (a node
// of the schema's location hierarchy) for `duration` discretized time units.
struct Stage {
  NodeId location = kInvalidNode;
  Duration duration = 0;

  friend bool operator==(const Stage& a, const Stage& b) {
    return a.location == b.location && a.duration == b.duration;
  }
};

// The ordered sequence of stages an item traversed.
struct Path {
  std::vector<Stage> stages;

  size_t size() const { return stages.size(); }
  bool empty() const { return stages.empty(); }

  friend bool operator==(const Path& a, const Path& b) {
    return a.stages == b.stages;
  }
};

// The schema of a path database: one concept hierarchy per path-independent
// dimension, the location hierarchy for stages, and the duration hierarchy.
// Shared immutably (via SchemaPtr) between the database, the miners, and the
// flowcube.
struct PathSchema {
  // Path-independent dimensions (product, brand, ...), paper Section 2.
  std::vector<ConceptHierarchy> dimensions;
  // Stage location hierarchy (Figure 5).
  ConceptHierarchy locations{"location"};
  // Stage duration hierarchy.
  DurationHierarchy durations;

  size_t num_dimensions() const { return dimensions.size(); }
};

using SchemaPtr = std::shared_ptr<const PathSchema>;

// One record of the path database: the item's dimension values (a node per
// dimension, normally a leaf) plus the path it traversed. This is the
// cleaned, duration-relative form of Table 1.
struct PathRecord {
  std::vector<NodeId> dims;
  Path path;
};

// Renders a path like "(f,10)(d,2)(t,1)(s,5)(c,0)" using schema names.
std::string PathToString(const PathSchema& schema, const Path& path);

// Renders a record like "tennis,nike : (f,10)(d,2)...".
std::string RecordToString(const PathSchema& schema, const PathRecord& rec);

}  // namespace flowcube

#endif  // FLOWCUBE_PATH_PATH_H_
