#include "path/path_database.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace flowcube {

PathDatabase::PathDatabase(SchemaPtr schema) : schema_(std::move(schema)) {
  FC_CHECK_MSG(schema_ != nullptr, "PathDatabase requires a schema");
}

Status ValidateRecord(const PathSchema& schema, const PathRecord& record) {
  if (record.dims.size() != schema.num_dimensions()) {
    return Status::InvalidArgument(StrFormat(
        "record has %zu dimension values, schema has %zu dimensions",
        record.dims.size(), schema.num_dimensions()));
  }
  for (size_t i = 0; i < record.dims.size(); ++i) {
    if (record.dims[i] >= schema.dimensions[i].NodeCount()) {
      return Status::InvalidArgument(
          StrFormat("dimension %zu value id out of range", i));
    }
  }
  if (record.path.empty()) {
    return Status::InvalidArgument("record has an empty path");
  }
  for (const Stage& s : record.path.stages) {
    if (s.location >= schema.locations.NodeCount()) {
      return Status::InvalidArgument("stage location id out of range");
    }
    if (s.duration < 0) {
      return Status::InvalidArgument("stage duration must be >= 0");
    }
  }
  return Status::OK();
}

Status PathDatabase::Append(PathRecord record) {
  FC_RETURN_IF_ERROR(ValidateRecord(*schema_, record));
  records_.push_back(std::move(record));
  return Status::OK();
}

const PathRecord& PathDatabase::record(PathId id) const {
  FC_CHECK(id < records_.size());
  return records_[id];
}

size_t PathDatabase::ApproximateBytes() const {
  size_t bytes = 0;
  for (const PathRecord& r : records_) {
    bytes += r.dims.size() * sizeof(NodeId);
    bytes += r.path.stages.size() * sizeof(Stage);
    bytes += sizeof(PathRecord);
  }
  return bytes;
}

}  // namespace flowcube
