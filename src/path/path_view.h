#ifndef FLOWCUBE_PATH_PATH_VIEW_H_
#define FLOWCUBE_PATH_PATH_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "path/path.h"

namespace flowcube {

// A non-owning, read-only view over a collection of paths: either a
// contiguous array, or a gather of selected indices over a base array
// (how a flowcube cell views the rows of the per-path-level aggregation
// table without copying them). The viewed storage must outlive the view.
class PathView {
 public:
  PathView() = default;

  // Contiguous views.
  PathView(const Path* data, size_t size) : data_(data), size_(size) {}
  PathView(std::span<const Path> paths)  // NOLINT(google-explicit-constructor)
      : data_(paths.data()), size_(paths.size()) {}
  PathView(const std::vector<Path>& paths)  // NOLINT(google-explicit-constructor)
      : data_(paths.data()), size_(paths.size()) {}

  // Gathered view: element i is base[indices[i]].
  PathView(std::span<const Path> base, std::span<const uint32_t> indices)
      : data_(base.data()), idx_(indices.data()), size_(indices.size()) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Path& operator[](size_t i) const {
    return idx_ == nullptr ? data_[i] : data_[idx_[i]];
  }

  // Minimal forward iteration for range-for loops.
  class Iterator {
   public:
    Iterator(const PathView* view, size_t pos) : view_(view), pos_(pos) {}
    const Path& operator*() const { return (*view_)[pos_]; }
    Iterator& operator++() {
      ++pos_;
      return *this;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.pos_ != b.pos_;
    }

   private:
    const PathView* view_;
    size_t pos_;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size_); }

 private:
  const Path* data_ = nullptr;
  const uint32_t* idx_ = nullptr;
  size_t size_ = 0;
};

}  // namespace flowcube

#endif  // FLOWCUBE_PATH_PATH_VIEW_H_
