#include "path/path_aggregator.h"

#include "common/logging.h"

namespace flowcube {

PathAggregator::PathAggregator(SchemaPtr schema)
    : schema_(std::move(schema)) {
  FC_CHECK_MSG(schema_ != nullptr, "PathAggregator requires a schema");
}

Path PathAggregator::AggregatePath(const Path& path, const LocationCut& cut,
                                   int duration_level) const {
  Path out;
  out.stages.reserve(path.stages.size());
  NodeId run_location = kInvalidNode;
  Duration run_raw_duration = 0;
  auto flush = [&]() {
    if (run_location == kInvalidNode) return;
    out.stages.push_back(Stage{
        run_location,
        schema_->durations.Aggregate(run_raw_duration, duration_level)});
  };
  for (const Stage& s : path.stages) {
    const NodeId mapped = cut.Map(s.location);
    FC_CHECK_MSG(mapped != kInvalidNode,
                 "stage location lies above the location cut");
    if (mapped == run_location) {
      run_raw_duration += s.duration;
    } else {
      flush();
      run_location = mapped;
      run_raw_duration = s.duration;
    }
  }
  flush();
  return out;
}

std::vector<NodeId> PathAggregator::AggregateDims(
    const std::vector<NodeId>& dims, const ItemLevel& level) const {
  FC_CHECK(dims.size() == schema_->num_dimensions());
  FC_CHECK(level.levels.size() == dims.size());
  std::vector<NodeId> out(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    out[i] = schema_->dimensions[i].AncestorAtLevel(dims[i], level.levels[i]);
  }
  return out;
}

}  // namespace flowcube
