#ifndef FLOWCUBE_PATH_PATH_AGGREGATOR_H_
#define FLOWCUBE_PATH_PATH_AGGREGATOR_H_

#include <vector>

#include "hierarchy/lattice.h"
#include "path/path.h"

namespace flowcube {

// Path and item aggregation (paper Section 4.1).
//
// Path aggregation is the operation that is unique to flowcubes: the
// dimensions of a record stay unchanged, but the path itself is rewritten to
// a coarser view. Per the paper it happens in two steps:
//   1. each stage's location is mapped to its representative node in the
//      location cut, and its duration to the requested duration level;
//   2. consecutive stages that mapped to the same concept are merged. The
//      merged stage's duration is the sum of the *raw* durations of the run,
//      aggregated to the requested level afterwards (the paper leaves the
//      merge rule application-defined and suggests summing; summing raw
//      values before bucketing keeps the merge associative).
class PathAggregator {
 public:
  explicit PathAggregator(SchemaPtr schema);

  // Aggregates `path` to the path abstraction level (`cut`,
  // `duration_level`). Every stage location must be at-or-below the cut.
  Path AggregatePath(const Path& path, const LocationCut& cut,
                     int duration_level) const;

  // Aggregates a record's dimension values to an item abstraction level:
  // dims[i] is replaced by its ancestor at level.levels[i].
  std::vector<NodeId> AggregateDims(const std::vector<NodeId>& dims,
                                    const ItemLevel& level) const;

 private:
  SchemaPtr schema_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_PATH_PATH_AGGREGATOR_H_
