#ifndef FLOWCUBE_RFID_CLEANER_H_
#define FLOWCUBE_RFID_CLEANER_H_

#include <vector>

#include "path/path.h"
#include "rfid/discretizer.h"
#include "rfid/reading.h"

namespace flowcube {

// Knobs for the reading-stream cleaner.
struct CleanerOptions {
  // Two readings of the same tag at the same location more than this many
  // seconds apart start a new stay (the item left and came back).
  int64_t max_gap_seconds = 3600;
};

// The data-cleaning stage of Section 2: turns a raw (EPC, location, time)
// stream into per-item stays of the form (location, time_in, time_out), and
// from there into relative-duration paths.
class ReadingCleaner {
 public:
  explicit ReadingCleaner(CleanerOptions options);

  // Groups `readings` by EPC, sorts each group by time, deduplicates, and
  // merges runs of same-location readings (with gaps <= max_gap_seconds)
  // into stays. Output itineraries are sorted by EPC; stays are in time
  // order.
  std::vector<Itinerary> Clean(const std::vector<RawReading>& readings) const;

  // Cleans one item's readings (all must carry `epc`). The streaming
  // ingestor uses this per-item form when an item's path closes; Clean() is
  // this applied per EPC group.
  Itinerary CleanItem(EpcId epc, std::vector<RawReading> readings) const;

  // Converts cleaned stays to a Path by discarding absolute time and
  // discretizing each stay length (time_out - time_in).
  static Path ToPath(const Itinerary& itinerary,
                     const DurationDiscretizer& discretizer);

 private:
  CleanerOptions options_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_RFID_CLEANER_H_
