#include "rfid/cleaner.h"

#include <algorithm>
#include <map>

namespace flowcube {

ReadingCleaner::ReadingCleaner(CleanerOptions options) : options_(options) {}

std::vector<Itinerary> ReadingCleaner::Clean(
    const std::vector<RawReading>& readings) const {
  std::map<EpcId, std::vector<RawReading>> by_epc;
  for (const RawReading& r : readings) {
    by_epc[r.epc].push_back(r);
  }

  std::vector<Itinerary> out;
  out.reserve(by_epc.size());
  for (auto& [epc, group] : by_epc) {
    out.push_back(CleanItem(epc, std::move(group)));
  }
  return out;
}

Itinerary ReadingCleaner::CleanItem(EpcId epc,
                                    std::vector<RawReading> readings) const {
  std::stable_sort(readings.begin(), readings.end(),
                   [](const RawReading& a, const RawReading& b) {
                     return a.timestamp < b.timestamp;
                   });
  Itinerary it;
  it.epc = epc;
  for (const RawReading& r : readings) {
    if (!it.stays.empty()) {
      Stay& last = it.stays.back();
      const bool same_location = last.location == r.location;
      const bool within_gap =
          r.timestamp - last.time_out <= options_.max_gap_seconds;
      if (same_location && within_gap) {
        last.time_out = std::max(last.time_out, r.timestamp);
        continue;
      }
    }
    it.stays.push_back(Stay{r.location, r.timestamp, r.timestamp});
  }
  return it;
}

Path ReadingCleaner::ToPath(const Itinerary& itinerary,
                            const DurationDiscretizer& discretizer) {
  Path path;
  path.stages.reserve(itinerary.stays.size());
  for (const Stay& s : itinerary.stays) {
    path.stages.push_back(Stage{
        s.location, discretizer.Discretize(s.time_out - s.time_in)});
  }
  return path;
}

}  // namespace flowcube
