#include "rfid/reader_simulator.h"

#include <algorithm>

#include "common/logging.h"

namespace flowcube {

ReaderSimulator::ReaderSimulator(ReaderSimulatorOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  FC_CHECK_MSG(options_.read_interval_seconds > 0,
               "read_interval_seconds must be > 0");
}

std::vector<RawReading> ReaderSimulator::Simulate(
    const std::vector<Itinerary>& itineraries) {
  std::vector<RawReading> out;
  for (const Itinerary& it : itineraries) {
    for (const Stay& stay : it.stays) {
      FC_CHECK_MSG(stay.time_out >= stay.time_in,
                   "stay must have time_out >= time_in");
      bool emitted_any = false;
      for (int64_t t = stay.time_in; t <= stay.time_out;
           t += options_.read_interval_seconds) {
        if (rng_.Bernoulli(options_.drop_probability)) continue;
        int64_t ts = t;
        if (options_.timestamp_jitter_seconds > 0) {
          ts += rng_.UniformRange(-options_.timestamp_jitter_seconds,
                                  options_.timestamp_jitter_seconds);
          ts = std::clamp(ts, stay.time_in, stay.time_out);
        }
        out.push_back(RawReading{it.epc, stay.location, ts});
        emitted_any = true;
        if (rng_.Bernoulli(options_.duplicate_probability)) {
          out.push_back(RawReading{it.epc, stay.location, ts});
        }
      }
      if (!emitted_any) {
        // Guarantee recoverability: a stay is never completely silent.
        const int64_t mid = stay.time_in + (stay.time_out - stay.time_in) / 2;
        out.push_back(RawReading{it.epc, stay.location, mid});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RawReading& a, const RawReading& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              if (a.epc != b.epc) return a.epc < b.epc;
              return a.location < b.location;
            });
  return out;
}

}  // namespace flowcube
