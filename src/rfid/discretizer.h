#ifndef FLOWCUBE_RFID_DISCRETIZER_H_
#define FLOWCUBE_RFID_DISCRETIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace flowcube {

// Discretized stage duration. Raw RFID timestamps are reduced to relative
// durations and then discretized (paper Section 2: "duration may not need to
// be at the precision of seconds, we could discretize the value by
// aggregating it to a higher abstraction level"). kAnyDuration is the fully
// aggregated '*' duration.
using Duration = int64_t;
inline constexpr Duration kAnyDuration = -1;

// The concept hierarchy over durations. Unlike categorical hierarchies this
// one is arithmetic: level `max` is the discretized value itself and each
// step up divides by that level's bucket factor; level 0 is '*'.
//
// Example: DurationHierarchy({24, 7}) models hour -> day -> week:
//   level 3 = hours (raw discretized value),
//   level 2 = hour / 24  (days),
//   level 1 = hour / (24*7) (weeks),
//   level 0 = '*'.
//
// The default DurationHierarchy() has the single factor-free refinement the
// paper's experiments use: level 1 = the value, level 0 = '*'.
class DurationHierarchy {
 public:
  // `factors[i]` is the bucket width dividing level (max-i) into level
  // (max-i-1); see the class comment. Factors must be >= 2.
  explicit DurationHierarchy(std::vector<int64_t> factors = {});

  // Deepest level (raw values). Equal to factors.size() + 1.
  int MaxLevel() const { return static_cast<int>(factors_.size()) + 1; }

  // Aggregates a raw (deepest-level) duration to `level`. Level 0 returns
  // kAnyDuration; MaxLevel() returns the value unchanged. kAnyDuration
  // aggregates to kAnyDuration at every level.
  Duration Aggregate(Duration raw, int level) const;

  // Renders a duration at a level ("5", "*", ...).
  std::string ToString(Duration value) const;

  // The bucket factors this hierarchy was built from (empty for the
  // default two-level hierarchy). Exposed for serialization.
  const std::vector<int64_t>& factors() const { return factors_; }

  friend bool operator==(const DurationHierarchy& a,
                         const DurationHierarchy& b) {
    return a.factors_ == b.factors_;
  }

 private:
  std::vector<int64_t> factors_;
  // cumulative_[l] = product of factors needed to go from MaxLevel to l.
  std::vector<int64_t> cumulative_;
};

// Maps continuous stay lengths (in seconds) to discretized Duration values,
// the numerosity-reduction step of Section 2. Uniform-width binning: a stay
// of s seconds becomes floor(s / bin_seconds).
class DurationDiscretizer {
 public:
  // `bin_seconds` is the width of one discrete duration unit (e.g. 3600 for
  // hours). Must be > 0.
  explicit DurationDiscretizer(int64_t bin_seconds);

  // Discretizes a stay length in seconds (negative stays clamp to 0).
  Duration Discretize(int64_t seconds) const;

  int64_t bin_seconds() const { return bin_seconds_; }

 private:
  int64_t bin_seconds_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_RFID_DISCRETIZER_H_
