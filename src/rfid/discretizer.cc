#include "rfid/discretizer.h"

#include "common/logging.h"

namespace flowcube {

DurationHierarchy::DurationHierarchy(std::vector<int64_t> factors)
    : factors_(std::move(factors)) {
  for (int64_t f : factors_) {
    FC_CHECK_MSG(f >= 2, "duration bucket factors must be >= 2");
  }
  // cumulative_[l] for l in [0, MaxLevel()]: divisor from raw to level l.
  // Level MaxLevel() -> 1; level 0 unused (always '*').
  cumulative_.assign(static_cast<size_t>(MaxLevel()) + 1, 1);
  int64_t acc = 1;
  for (int l = MaxLevel() - 1; l >= 1; --l) {
    acc *= factors_[static_cast<size_t>(MaxLevel() - 1 - l)];
    cumulative_[static_cast<size_t>(l)] = acc;
  }
}

Duration DurationHierarchy::Aggregate(Duration raw, int level) const {
  FC_CHECK(level >= 0 && level <= MaxLevel());
  if (raw == kAnyDuration || level == 0) return kAnyDuration;
  FC_CHECK_MSG(raw >= 0, "durations must be non-negative");
  return raw / cumulative_[static_cast<size_t>(level)];
}

std::string DurationHierarchy::ToString(Duration value) const {
  if (value == kAnyDuration) return "*";
  return std::to_string(value);
}

DurationDiscretizer::DurationDiscretizer(int64_t bin_seconds)
    : bin_seconds_(bin_seconds) {
  FC_CHECK_MSG(bin_seconds > 0, "bin_seconds must be > 0");
}

Duration DurationDiscretizer::Discretize(int64_t seconds) const {
  if (seconds < 0) seconds = 0;
  return seconds / bin_seconds_;
}

}  // namespace flowcube
