#ifndef FLOWCUBE_RFID_READING_H_
#define FLOWCUBE_RFID_READING_H_

#include <cstdint>
#include <vector>

#include "hierarchy/concept_hierarchy.h"

namespace flowcube {

// Electronic Product Code — the unique identifier on an RFID tag.
using EpcId = uint64_t;

// One raw RFID reading (paper Section 2): tag `epc` was seen by the reader
// at `location` at Unix-style `timestamp` (seconds). An item generates many
// readings per location; the cleaning step collapses them into stays.
struct RawReading {
  EpcId epc = 0;
  NodeId location = kInvalidNode;
  int64_t timestamp = 0;

  friend bool operator==(const RawReading& a, const RawReading& b) {
    return a.epc == b.epc && a.location == b.location &&
           a.timestamp == b.timestamp;
  }
};

// A cleaned stay: the item occupied `location` from `time_in` to `time_out`
// (the (location, time_in, time_out) stage form of Section 2).
struct Stay {
  NodeId location = kInvalidNode;
  int64_t time_in = 0;
  int64_t time_out = 0;

  friend bool operator==(const Stay& a, const Stay& b) {
    return a.location == b.location && a.time_in == b.time_in &&
           a.time_out == b.time_out;
  }
};

// The full movement history of one item: its EPC plus ordered stays. Used
// both as simulator ground truth and as cleaner output.
struct Itinerary {
  EpcId epc = 0;
  std::vector<Stay> stays;
};

}  // namespace flowcube

#endif  // FLOWCUBE_RFID_READING_H_
