#ifndef FLOWCUBE_RFID_READER_SIMULATOR_H_
#define FLOWCUBE_RFID_READER_SIMULATOR_H_

#include <vector>

#include "common/random.h"
#include "rfid/reading.h"

namespace flowcube {

// Knobs for the RFID reading-stream simulator.
struct ReaderSimulatorOptions {
  // A reader scans its field every `read_interval_seconds`; an item standing
  // at the location produces one reading per scan cycle it is present for
  // (so a long stay yields the "hundreds of readings" the paper describes).
  int64_t read_interval_seconds = 600;

  // Each scheduled reading is dropped with this probability (tag not
  // energized, occlusion).
  double drop_probability = 0.05;

  // Each emitted reading is duplicated with this probability (two antennas
  // covering the same portal).
  double duplicate_probability = 0.10;

  // Uniform timestamp jitter in [-jitter, +jitter] seconds applied per
  // reading (reader clock skew). Jittered timestamps are clamped to the
  // stay's [time_in, time_out] window.
  int64_t timestamp_jitter_seconds = 30;
};

// Simulates the raw data stream of an RFID deployment. This is the
// substitution for real reader hardware: given ground-truth itineraries it
// produces the interleaved, noisy (EPC, location, time) stream that the
// cleaning stage (rfid/cleaner.h) consumes, so the full
// readings -> stays -> paths pipeline of Section 2 is exercised.
class ReaderSimulator {
 public:
  ReaderSimulator(ReaderSimulatorOptions options, uint64_t seed);

  // Emits the noisy reading stream for `itineraries`, globally sorted by
  // timestamp (ties broken by EPC) the way a collected site-wide stream
  // would arrive. Every stay produces at least one reading even under
  // drops, so cleaning can recover the itinerary structure.
  std::vector<RawReading> Simulate(const std::vector<Itinerary>& itineraries);

 private:
  ReaderSimulatorOptions options_;
  Random rng_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_RFID_READER_SIMULATOR_H_
