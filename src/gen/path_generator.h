#ifndef FLOWCUBE_GEN_PATH_GENERATOR_H_
#define FLOWCUBE_GEN_PATH_GENERATOR_H_

#include <memory>
#include <vector>

#include "gen/generator_config.h"
#include "gen/sequence_pool.h"
#include "path/path_database.h"
#include "rfid/reading.h"

namespace flowcube {

// The synthetic path generator of Section 6.1: "simulates the movement of
// items in a retail operation". Construction builds the schema (dimension
// hierarchies, location hierarchy) and the valid-sequence pool; Generate()
// then draws any number of records:
//   1. dimension values are drawn level by level from Zipf distributions,
//   2. a valid location sequence is drawn (Zipf over the pool),
//   3. each stage gets a Zipf-distributed duration.
class PathGenerator {
 public:
  explicit PathGenerator(const GeneratorConfig& config);

  // The schema shared by everything generated from this generator.
  SchemaPtr schema() const { return schema_; }

  const SequencePool& sequence_pool() const { return *pool_; }

  // Generates a fresh database of `num_paths` records. Repeated calls
  // continue the generator's random stream (they produce different data);
  // rebuild the PathGenerator to replay from the seed.
  PathDatabase Generate(size_t num_paths);

  // Expands a generated database into ground-truth itineraries with absolute
  // timestamps (stage k of item i runs back-to-back, each duration unit
  // lasting `bin_seconds`). Lets examples/tests drive the full RFID
  // pipeline: itineraries -> ReaderSimulator -> ReadingCleaner -> paths.
  static std::vector<Itinerary> ToItineraries(const PathDatabase& db,
                                              int64_t bin_seconds);

 private:
  GeneratorConfig config_;
  SchemaPtr schema_;
  std::unique_ptr<SequencePool> pool_;
  Random rng_;
  // leaf_ids_[dim] indexes leaves as [i1][i2][i3] flattened.
  std::vector<std::vector<NodeId>> leaf_ids_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_GEN_PATH_GENERATOR_H_
