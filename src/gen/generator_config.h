#ifndef FLOWCUBE_GEN_GENERATOR_CONFIG_H_
#define FLOWCUBE_GEN_GENERATOR_CONFIG_H_

#include <cstdint>
#include <vector>

namespace flowcube {

// Configuration of the synthetic path generator, mirroring the knobs the
// paper's experiments vary (Section 6.1):
//   * number of records N and path-independent dimensions d,
//   * distinct values and skew per concept-hierarchy level (item density),
//   * number of distinct valid location sequences (path density),
//   * Zipf skew for dimension values, sequence choice, and durations.
struct GeneratorConfig {
  // Path-independent dimensions; each gets a 3-level concept hierarchy
  // ("Each dimension has a 3 level concept hierarchy").
  int num_dimensions = 5;

  // Distinct values per hierarchy level for every dimension, from the most
  // general level down. Fig. 9's datasets a/b/c use (2,2,5), (4,4,6),
  // (5,5,10): level 1 has distinct_per_level[0] nodes, each with
  // distinct_per_level[1] children, each with distinct_per_level[2] leaves.
  std::vector<int> dim_distinct_per_level = {4, 4, 6};

  // Zipf exponent used when drawing a value at each dimension level.
  double dim_zipf_alpha = 0.8;

  // Stage locations get a 2-level hierarchy ("Each location ... has an
  // associated concept hierarchy with 2 levels of abstraction"): level 1 has
  // num_location_groups nodes, each with locations_per_group level-2 leaves.
  int num_location_groups = 8;
  int locations_per_group = 5;

  // Zipf exponent for drawing locations when building the sequence pool.
  double location_zipf_alpha = 0.8;

  // "We first generate the set of all valid sequences of locations that an
  // item can take": size of that pool (Fig. 10 varies 10..150) and the
  // length range of each sequence.
  int num_sequences = 50;
  int min_sequence_length = 3;
  int max_sequence_length = 8;

  // Zipf exponent for choosing which valid sequence a generated path takes.
  double sequence_zipf_alpha = 0.8;

  // Stage durations are ranks drawn from Zipf over this many distinct
  // values.
  int num_distinct_durations = 10;
  double duration_zipf_alpha = 0.8;

  // Seed for the whole generation process; equal configs with equal seeds
  // produce byte-identical databases.
  uint64_t seed = 42;
};

}  // namespace flowcube

#endif  // FLOWCUBE_GEN_GENERATOR_CONFIG_H_
