#ifndef FLOWCUBE_GEN_SEQUENCE_POOL_H_
#define FLOWCUBE_GEN_SEQUENCE_POOL_H_

#include <vector>

#include "common/random.h"
#include "gen/generator_config.h"
#include "hierarchy/concept_hierarchy.h"

namespace flowcube {

// The pool of valid location sequences items may traverse (paper
// Section 6.1: "We first generate the set of all valid sequences of
// locations that an item can take through the system"). A sequence is a
// list of concrete (leaf) location nodes with no immediate repetitions.
class SequencePool {
 public:
  // Builds the pool against `locations` (which must already contain the
  // generator's 2-level hierarchy; see BuildLocationHierarchy). Sequences
  // are distinct; lengths are uniform in [min, max]; locations are drawn
  // Zipf-skewed so some sites are much hotter than others.
  SequencePool(const GeneratorConfig& config,
               const ConceptHierarchy& locations, Random& rng);

  size_t size() const { return sequences_.size(); }

  const std::vector<NodeId>& sequence(size_t i) const;

  // Constructs the generator's location hierarchy into an empty hierarchy:
  // groups "T0".."T{g-1}" at level 1, leaves "T{i}.{j}" at level 2.
  static void BuildLocationHierarchy(const GeneratorConfig& config,
                                     ConceptHierarchy* locations);

 private:
  std::vector<std::vector<NodeId>> sequences_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_GEN_SEQUENCE_POOL_H_
