#ifndef FLOWCUBE_GEN_PAPER_EXAMPLE_H_
#define FLOWCUBE_GEN_PAPER_EXAMPLE_H_

#include "path/path_database.h"

namespace flowcube {

// The paper's running example. Builds the schema of Table 1:
//
//   * dimension "product" with hierarchy
//       clothing -> {shoes -> {tennis, sandals}, outerwear -> {shirt,
//       jacket}}
//   * dimension "brand" with hierarchy
//       brand -> {premium -> {nike}, value -> {adidas}}
//   * location hierarchy of Figure 5:
//       transportation -> {dist.center, truck}; factory; store ->
//       {warehouse, shelf, checkout}
//
// (The paper abbreviates locations as f, d, t, w, s, c; this schema uses
// full names. The brand hierarchy's intermediate level is ours — the paper
// leaves brand's hierarchy unspecified but the encoding "211" implies a
// 2-level one.)
SchemaPtr MakePaperSchema();

// The 8 records of Table 1 against MakePaperSchema():
//
//   1 tennis  nike   (f,10)(d,2)(t,1)(s,5)(c,0)
//   2 tennis  nike   (f,5)(d,2)(t,1)(s,10)(c,0)
//   3 sandals nike   (f,10)(d,1)(t,2)(s,5)(c,0)
//   4 shirt   nike   (f,10)(t,1)(s,5)(c,0)
//   5 jacket  nike   (f,10)(t,2)(s,5)(c,1)
//   6 jacket  nike   (f,10)(t,1)(w,5)
//   7 tennis  adidas (f,5)(d,2)(t,2)(s,20)
//   8 tennis  adidas (f,5)(d,2)(t,3)(s,10)(d,5)
PathDatabase MakePaperDatabase();

}  // namespace flowcube

#endif  // FLOWCUBE_GEN_PAPER_EXAMPLE_H_
