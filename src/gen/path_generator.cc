#include "gen/path_generator.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "common/zipf.h"

namespace flowcube {

PathGenerator::PathGenerator(const GeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  FC_CHECK_MSG(config_.num_dimensions >= 1, "need at least one dimension");
  FC_CHECK_MSG(!config_.dim_distinct_per_level.empty(),
               "dim_distinct_per_level must not be empty");
  for (int v : config_.dim_distinct_per_level) {
    FC_CHECK_MSG(v >= 1, "distinct values per level must be >= 1");
  }

  auto schema = std::make_shared<PathSchema>();
  // Dimension hierarchies: a full tree with
  // dim_distinct_per_level[l] children at each level-l node.
  leaf_ids_.resize(static_cast<size_t>(config_.num_dimensions));
  for (int d = 0; d < config_.num_dimensions; ++d) {
    ConceptHierarchy h(StrFormat("dim%d", d));
    std::vector<NodeId> frontier = {h.root()};
    for (size_t level = 0; level < config_.dim_distinct_per_level.size();
         ++level) {
      std::vector<NodeId> next;
      const int fanout = config_.dim_distinct_per_level[level];
      for (NodeId parent : frontier) {
        const std::string prefix =
            parent == h.root() ? StrFormat("d%d_", d) : h.Name(parent) + ".";
        for (int i = 0; i < fanout; ++i) {
          Result<NodeId> child = h.AddChild(parent, prefix + std::to_string(i));
          FC_CHECK(child.ok());
          next.push_back(child.value());
        }
      }
      frontier = std::move(next);
    }
    leaf_ids_[static_cast<size_t>(d)] = frontier;
    schema->dimensions.push_back(std::move(h));
  }

  SequencePool::BuildLocationHierarchy(config_, &schema->locations);
  schema->durations = DurationHierarchy();
  schema_ = std::move(schema);
  pool_ = std::make_unique<SequencePool>(config_, schema_->locations, rng_);
}

PathDatabase PathGenerator::Generate(size_t num_paths) {
  PathDatabase db(schema_);
  const size_t num_levels = config_.dim_distinct_per_level.size();
  std::vector<ZipfSampler> level_pick;
  level_pick.reserve(num_levels);
  for (size_t l = 0; l < num_levels; ++l) {
    level_pick.emplace_back(
        static_cast<size_t>(config_.dim_distinct_per_level[l]),
        config_.dim_zipf_alpha);
  }
  const ZipfSampler seq_pick(pool_->size(), config_.sequence_zipf_alpha);
  const ZipfSampler dur_pick(
      static_cast<size_t>(config_.num_distinct_durations),
      config_.duration_zipf_alpha);

  for (size_t n = 0; n < num_paths; ++n) {
    PathRecord rec;
    rec.dims.resize(static_cast<size_t>(config_.num_dimensions));
    for (int d = 0; d < config_.num_dimensions; ++d) {
      // Walk the dimension tree level by level with Zipf-skewed branching;
      // the flattened index of the reached leaf is the mixed-radix number of
      // the branch choices.
      size_t flat = 0;
      for (size_t l = 0; l < num_levels; ++l) {
        flat = flat * static_cast<size_t>(config_.dim_distinct_per_level[l]) +
               level_pick[l].Sample(rng_);
      }
      rec.dims[static_cast<size_t>(d)] = leaf_ids_[static_cast<size_t>(d)][flat];
    }
    const std::vector<NodeId>& seq = pool_->sequence(seq_pick.Sample(rng_));
    rec.path.stages.reserve(seq.size());
    for (NodeId loc : seq) {
      rec.path.stages.push_back(
          Stage{loc, static_cast<Duration>(dur_pick.Sample(rng_))});
    }
    const Status s = db.Append(std::move(rec));
    FC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return db;
}

std::vector<Itinerary> PathGenerator::ToItineraries(const PathDatabase& db,
                                                    int64_t bin_seconds) {
  FC_CHECK(bin_seconds > 0);
  std::vector<Itinerary> out;
  out.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    const PathRecord& rec = db.record(static_cast<PathDatabase::PathId>(i));
    Itinerary it;
    it.epc = static_cast<EpcId>(i + 1);
    int64_t t = 0;
    for (const Stage& s : rec.path.stages) {
      // A duration of k bins means the stay lasted k full bins; give it a
      // midpoint so it discretizes back to k.
      const int64_t length = s.duration * bin_seconds + bin_seconds / 2;
      it.stays.push_back(Stay{s.location, t, t + length});
      t += length + 1;
    }
    out.push_back(std::move(it));
  }
  return out;
}

}  // namespace flowcube
