#include "gen/paper_example.h"

#include "common/audit.h"
#include "common/logging.h"

namespace flowcube {
namespace {

NodeId MustAddPath(ConceptHierarchy* h, const std::vector<std::string>& names) {
  Result<NodeId> r = h->AddPath(names);
  FC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r.value();
}

NodeId MustFind(const ConceptHierarchy& h, const std::string& name) {
  Result<NodeId> r = h.Find(name);
  FC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r.value();
}

}  // namespace

SchemaPtr MakePaperSchema() {
  auto schema = std::make_shared<PathSchema>();

  ConceptHierarchy product("product");
  MustAddPath(&product, {"clothing", "shoes", "tennis"});
  MustAddPath(&product, {"clothing", "shoes", "sandals"});
  MustAddPath(&product, {"clothing", "outerwear", "shirt"});
  MustAddPath(&product, {"clothing", "outerwear", "jacket"});
  schema->dimensions.push_back(std::move(product));

  ConceptHierarchy brand("brand");
  MustAddPath(&brand, {"premium", "nike"});
  MustAddPath(&brand, {"value", "adidas"});
  schema->dimensions.push_back(std::move(brand));

  MustAddPath(&schema->locations, {"transportation", "dist.center"});
  MustAddPath(&schema->locations, {"transportation", "truck"});
  MustAddPath(&schema->locations, {"production", "factory"});
  MustAddPath(&schema->locations, {"store", "warehouse"});
  MustAddPath(&schema->locations, {"store", "shelf"});
  MustAddPath(&schema->locations, {"store", "checkout"});

  schema->durations = DurationHierarchy();
  return schema;
}

PathDatabase MakePaperDatabase() {
  SchemaPtr schema = MakePaperSchema();
  PathDatabase db(schema);

  const NodeId tennis = MustFind(schema->dimensions[0], "tennis");
  const NodeId sandals = MustFind(schema->dimensions[0], "sandals");
  const NodeId shirt = MustFind(schema->dimensions[0], "shirt");
  const NodeId jacket = MustFind(schema->dimensions[0], "jacket");
  const NodeId nike = MustFind(schema->dimensions[1], "nike");
  const NodeId adidas = MustFind(schema->dimensions[1], "adidas");
  const NodeId f = MustFind(schema->locations, "factory");
  const NodeId d = MustFind(schema->locations, "dist.center");
  const NodeId t = MustFind(schema->locations, "truck");
  const NodeId w = MustFind(schema->locations, "warehouse");
  const NodeId s = MustFind(schema->locations, "shelf");
  const NodeId c = MustFind(schema->locations, "checkout");

  auto add = [&db](std::vector<NodeId> dims, std::vector<Stage> stages) {
    PathRecord rec;
    rec.dims = std::move(dims);
    rec.path.stages = std::move(stages);
    const Status st = db.Append(std::move(rec));
    FC_CHECK_MSG(st.ok(), st.ToString().c_str());
  };

  add({tennis, nike}, {{f, 10}, {d, 2}, {t, 1}, {s, 5}, {c, 0}});
  add({tennis, nike}, {{f, 5}, {d, 2}, {t, 1}, {s, 10}, {c, 0}});
  add({sandals, nike}, {{f, 10}, {d, 1}, {t, 2}, {s, 5}, {c, 0}});
  add({shirt, nike}, {{f, 10}, {t, 1}, {s, 5}, {c, 0}});
  add({jacket, nike}, {{f, 10}, {t, 2}, {s, 5}, {c, 1}});
  add({jacket, nike}, {{f, 10}, {t, 1}, {w, 5}});
  add({tennis, adidas}, {{f, 5}, {d, 2}, {t, 2}, {s, 20}});
  add({tennis, adidas}, {{f, 5}, {d, 2}, {t, 3}, {s, 10}, {d, 5}});
  FC_AUDIT(AuditPathDatabase(db));
  return db;
}

}  // namespace flowcube
