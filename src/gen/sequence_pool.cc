#include "gen/sequence_pool.h"

#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/zipf.h"

namespace flowcube {

void SequencePool::BuildLocationHierarchy(const GeneratorConfig& config,
                                          ConceptHierarchy* locations) {
  FC_CHECK(locations != nullptr);
  FC_CHECK_MSG(locations->NodeCount() == 1,
               "location hierarchy must be empty");
  for (int g = 0; g < config.num_location_groups; ++g) {
    Result<NodeId> group =
        locations->AddChild(locations->root(), StrFormat("T%d", g));
    FC_CHECK(group.ok());
    for (int j = 0; j < config.locations_per_group; ++j) {
      Result<NodeId> leaf =
          locations->AddChild(group.value(), StrFormat("T%d.%d", g, j));
      FC_CHECK(leaf.ok());
    }
  }
}

SequencePool::SequencePool(const GeneratorConfig& config,
                           const ConceptHierarchy& locations, Random& rng) {
  FC_CHECK_MSG(config.num_sequences > 0, "need at least one sequence");
  FC_CHECK_MSG(config.min_sequence_length >= 1 &&
                   config.max_sequence_length >= config.min_sequence_length,
               "invalid sequence length range");
  const std::vector<NodeId> leaves = locations.Leaves();
  FC_CHECK_MSG(leaves.size() >= 2, "need at least two concrete locations");
  const ZipfSampler location_pick(leaves.size(), config.location_zipf_alpha);

  std::set<std::vector<NodeId>> seen;
  // A finite location set bounds the number of distinct sequences; cap the
  // attempts so a tiny configuration cannot loop forever.
  const int max_attempts = config.num_sequences * 200;
  int attempts = 0;
  while (static_cast<int>(sequences_.size()) < config.num_sequences &&
         attempts < max_attempts) {
    ++attempts;
    const int len = static_cast<int>(rng.UniformRange(
        config.min_sequence_length, config.max_sequence_length));
    std::vector<NodeId> seq;
    seq.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      NodeId loc = leaves[location_pick.Sample(rng)];
      // No immediate repetitions: a stay at one location is one stage.
      while (!seq.empty() && loc == seq.back()) {
        loc = leaves[rng.Uniform(leaves.size())];
      }
      seq.push_back(loc);
    }
    if (seen.insert(seq).second) {
      sequences_.push_back(std::move(seq));
    }
  }
  FC_CHECK_MSG(!sequences_.empty(), "failed to generate any sequence");
}

const std::vector<NodeId>& SequencePool::sequence(size_t i) const {
  FC_CHECK(i < sequences_.size());
  return sequences_[i];
}

}  // namespace flowcube
