#include "io/text_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace flowcube {
namespace {

constexpr char kMagic[] = "flowcube-paths v1";

bool NameIsSafe(const std::string& name) {
  for (char c : name) {
    if (c == ',' || c == '|' || c == ':' || c == ';' || c == ' ' ||
        c == '\t' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return !name.empty();
}

Status WriteHierarchy(const ConceptHierarchy& h, std::ostream& out) {
  // Ids ascend from the root, so parents always precede children.
  for (NodeId n = 1; n < h.NodeCount(); ++n) {
    const std::string& name = h.Name(n);
    const std::string& parent =
        h.Parent(n) == h.root() ? "*" : h.Name(h.Parent(n));
    if (!NameIsSafe(name)) {
      return Status::InvalidArgument("concept name '" + name +
                                     "' contains a delimiter");
    }
    out << "concept " << name << " " << parent << "\n";
  }
  out << "end\n";
  return Status::OK();
}

// Reads "concept <name> <parent>" lines until "end" into `h`.
Status ReadHierarchy(std::istream& in, ConceptHierarchy* h) {
  std::string line;
  while (std::getline(in, line)) {
    if (line == "end") return Status::OK();
    std::istringstream ls(line);
    std::string tag, name, parent;
    if (!(ls >> tag >> name >> parent) || tag != "concept") {
      return Status::InvalidArgument("malformed concept line: " + line);
    }
    NodeId parent_id = h->root();
    if (parent != "*") {
      Result<NodeId> p = h->Find(parent);
      if (!p.ok()) return p.status();
      parent_id = p.value();
    }
    Result<NodeId> added = h->AddChild(parent_id, name);
    if (!added.ok()) return added.status();
  }
  return Status::InvalidArgument("unterminated hierarchy block");
}

}  // namespace

Status WritePathDatabase(const PathDatabase& db, std::ostream& out) {
  const PathSchema& schema = db.schema();
  out << kMagic << "\n";
  for (const ConceptHierarchy& dim : schema.dimensions) {
    if (!NameIsSafe(dim.dimension_name())) {
      return Status::InvalidArgument("dimension name contains a delimiter");
    }
    out << "dimension " << dim.dimension_name() << "\n";
    FC_RETURN_IF_ERROR(WriteHierarchy(dim, out));
  }
  out << "locations\n";
  FC_RETURN_IF_ERROR(WriteHierarchy(schema.locations, out));
  out << "durations";
  for (int64_t factor : schema.durations.factors()) {
    out << " " << factor;
  }
  out << "\n";
  out << "records " << db.size() << "\n";
  for (const PathRecord& rec : db.records()) {
    std::string line;
    for (size_t d = 0; d < rec.dims.size(); ++d) {
      const std::string& name = schema.dimensions[d].Name(rec.dims[d]);
      if (!NameIsSafe(name) && name != "*") {
        return Status::InvalidArgument("value name contains a delimiter");
      }
      if (d > 0) line += ",";
      line += name;
    }
    line += "|";
    for (size_t s = 0; s < rec.path.stages.size(); ++s) {
      const Stage& stage = rec.path.stages[s];
      if (s > 0) line += ";";
      line += schema.locations.Name(stage.location) + ":" +
              std::to_string(stage.duration);
    }
    out << line << "\n";
  }
  return out.good() ? Status::OK() : Status::Internal("stream write failed");
}

Status WritePathDatabaseFile(const PathDatabase& db,
                             const std::string& filename) {
  std::ofstream out(filename);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + filename + " for writing");
  }
  return WritePathDatabase(db, out);
}

Result<PathDatabase> ReadPathDatabase(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::InvalidArgument("missing flowcube-paths header");
  }
  auto schema = std::make_shared<PathSchema>();
  std::vector<int64_t> factors;
  size_t num_records = 0;
  for (;;) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("unexpected end of schema section");
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "dimension") {
      std::string name;
      if (!(ls >> name)) {
        return Status::InvalidArgument("dimension line missing name");
      }
      ConceptHierarchy dim(name);
      FC_RETURN_IF_ERROR(ReadHierarchy(in, &dim));
      schema->dimensions.push_back(std::move(dim));
    } else if (tag == "locations") {
      FC_RETURN_IF_ERROR(ReadHierarchy(in, &schema->locations));
    } else if (tag == "durations") {
      int64_t factor = 0;
      while (ls >> factor) {
        if (factor < 2) {
          return Status::InvalidArgument("duration factors must be >= 2");
        }
        factors.push_back(factor);
      }
    } else if (tag == "records") {
      if (!(ls >> num_records)) {
        return Status::InvalidArgument("records line missing count");
      }
      break;
    } else {
      return Status::InvalidArgument("unknown section: " + line);
    }
  }
  schema->durations = DurationHierarchy(factors);

  PathDatabase db(schema);
  for (size_t i = 0; i < num_records; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument(
          StrFormat("expected %zu records, got %zu", num_records, i));
    }
    const size_t bar = line.find('|');
    if (bar == std::string::npos) {
      return Status::InvalidArgument("record line missing '|': " + line);
    }
    PathRecord rec;
    // An empty dims part means a 0-dimension schema, not one empty value
    // (StrSplit("") yields {""}); skip the loop so such databases
    // round-trip.
    if (bar > 0) {
      for (const std::string& value : StrSplit(line.substr(0, bar), ',')) {
        const size_t d = rec.dims.size();
        if (d >= schema->num_dimensions()) {
          return Status::InvalidArgument("too many dimension values: " +
                                         line);
        }
        Result<NodeId> node = schema->dimensions[d].Find(value);
        if (!node.ok()) return node.status();
        rec.dims.push_back(node.value());
      }
    }
    for (const std::string& stage_str :
         StrSplit(line.substr(bar + 1), ';')) {
      const size_t colon = stage_str.rfind(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("stage missing ':': " + stage_str);
      }
      Result<NodeId> loc =
          schema->locations.Find(stage_str.substr(0, colon));
      if (!loc.ok()) return loc.status();
      char* end = nullptr;
      const long long dur =
          std::strtoll(stage_str.c_str() + colon + 1, &end, 10);
      // Reject both a missing number and trailing garbage ("A:12x"), which
      // strtoll would otherwise silently truncate.
      if (end == stage_str.c_str() + colon + 1 || *end != '\0') {
        return Status::InvalidArgument("bad duration in: " + stage_str);
      }
      rec.path.stages.push_back(
          Stage{loc.value(), static_cast<Duration>(dur)});
    }
    FC_RETURN_IF_ERROR(db.Append(std::move(rec)));
  }
  return db;
}

Result<PathDatabase> ReadPathDatabaseFile(const std::string& filename) {
  std::ifstream in(filename);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + filename);
  }
  return ReadPathDatabase(in);
}

}  // namespace flowcube
