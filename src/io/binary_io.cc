#include "io/binary_io.h"

#include <cstring>

#include "common/logging.h"

namespace flowcube {

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(std::string_view s) {
  U64(s.size());
  buf_.append(s.data(), s.size());
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  FC_CHECK_MSG(offset + 4 <= buf_.size(), "PatchU32 offset out of range");
  for (int i = 0; i < 4; ++i) {
    buf_[offset + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

Status ByteReader::Take(size_t n, const char** out) {
  if (n > data_.size() - pos_) {
    return Status::OutOfRange("binary input truncated");
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status ByteReader::U8(uint8_t* v) {
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(1, &p));
  *v = static_cast<uint8_t>(*p);
  return Status::OK();
}

Status ByteReader::U32(uint32_t* v) {
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(4, &p));
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::U64(uint64_t* v) {
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(8, &p));
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::I64(int64_t* v) {
  uint64_t u = 0;
  FC_RETURN_IF_ERROR(U64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status ByteReader::F64(double* v) {
  uint64_t bits = 0;
  FC_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::Str(std::string* s) {
  uint64_t len = 0;
  FC_RETURN_IF_ERROR(U64(&len));
  if (len > remaining()) {
    return Status::OutOfRange("binary input truncated (string length)");
  }
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(static_cast<size_t>(len), &p));
  s->assign(p, static_cast<size_t>(len));
  return Status::OK();
}

uint32_t Crc32(std::string_view data) {
  // Table-driven CRC-32 (IEEE), table built once.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace flowcube
