#include "io/binary_io.h"

#include <bit>
#include <cstring>

#include "common/logging.h"

namespace flowcube {

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(std::string_view s) {
  U64(s.size());
  buf_.append(s.data(), s.size());
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  FC_CHECK_MSG(offset + 4 <= buf_.size(), "PatchU32 offset out of range");
  for (int i = 0; i < 4; ++i) {
    buf_[offset + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

Status ByteReader::Take(size_t n, const char** out) {
  if (n > data_.size() - pos_) {
    return Status::OutOfRange("binary input truncated");
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status ByteReader::U8(uint8_t* v) {
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(1, &p));
  *v = static_cast<uint8_t>(*p);
  return Status::OK();
}

Status ByteReader::U32(uint32_t* v) {
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(4, &p));
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::U64(uint64_t* v) {
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(8, &p));
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::I64(int64_t* v) {
  uint64_t u = 0;
  FC_RETURN_IF_ERROR(U64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status ByteReader::F64(double* v) {
  uint64_t bits = 0;
  FC_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::Str(std::string* s) {
  uint64_t len = 0;
  FC_RETURN_IF_ERROR(U64(&len));
  if (len > remaining()) {
    return Status::OutOfRange("binary input truncated (string length)");
  }
  const char* p = nullptr;
  FC_RETURN_IF_ERROR(Take(static_cast<size_t>(len), &p));
  s->assign(p, static_cast<size_t>(len));
  return Status::OK();
}

uint32_t Crc32(std::string_view data) {
  // Slice-by-8 table-driven CRC-32 (IEEE), tables built once. The v2 store
  // checksums whole mapped checkpoints, so this sits on the cold-start
  // critical path — the 8-lane variant runs at memory bandwidth where the
  // classic one-byte table loop tops out around a few hundred MB/s.
  using Tables = uint32_t[8][256];
  static const Tables& kTables = []() -> const Tables& {
    static Tables tables;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      tables[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables[0][i];
      for (int t = 1; t < 8; ++t) {
        c = tables[0][c & 0xffu] ^ (c >> 8);
        tables[t][i] = c;
      }
    }
    return tables;
  }();

  uint32_t crc = 0xffffffffu;
  const char* p = data.data();
  size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint64_t chunk = 0;
      std::memcpy(&chunk, p, 8);
      chunk ^= crc;
      crc = kTables[7][chunk & 0xffu] ^
            kTables[6][(chunk >> 8) & 0xffu] ^
            kTables[5][(chunk >> 16) & 0xffu] ^
            kTables[4][(chunk >> 24) & 0xffu] ^
            kTables[3][(chunk >> 32) & 0xffu] ^
            kTables[2][(chunk >> 40) & 0xffu] ^
            kTables[1][(chunk >> 48) & 0xffu] ^
            kTables[0][chunk >> 56];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; ++p, --n) {
    crc = kTables[0][(crc ^ static_cast<uint8_t>(*p)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace flowcube
