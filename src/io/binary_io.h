#ifndef FLOWCUBE_IO_BINARY_IO_H_
#define FLOWCUBE_IO_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace flowcube {

// Little-endian binary encoding primitives plus CRC-32, the substrate of
// the stream checkpoint format (src/stream/checkpoint.cc). The writer is
// append-only; the reader is strictly bounds-checked and reports truncation
// as a Status instead of reading past the buffer, so arbitrarily corrupted
// inputs are rejected without undefined behavior.

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  // IEEE-754 bit pattern, via the u64 encoding.
  void F64(double v);
  // u64 length prefix followed by the raw bytes.
  void Str(std::string_view s);

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }

  // Overwrites 4 bytes at `offset` (for patching length/checksum slots
  // reserved earlier). `offset + 4` must not exceed size().
  void PatchU32(size_t offset, uint32_t v);

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  // Reads a u64 length prefix and that many bytes. Fails cleanly when the
  // declared length exceeds the remaining bytes.
  Status Str(std::string* s);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`.
uint32_t Crc32(std::string_view data);

}  // namespace flowcube

#endif  // FLOWCUBE_IO_BINARY_IO_H_
