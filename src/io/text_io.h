#ifndef FLOWCUBE_IO_TEXT_IO_H_
#define FLOWCUBE_IO_TEXT_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "path/path_database.h"

namespace flowcube {

// Self-contained text serialization of a path database: the schema (every
// concept hierarchy and the duration hierarchy) followed by the records.
// The format is line-oriented and diff-friendly:
//
//   flowcube-paths v1
//   dimension product
//   concept clothing *
//   concept shoes clothing
//   ...
//   end
//   locations
//   concept transportation *
//   ...
//   end
//   durations 24 7
//   records 8
//   tennis,nike|factory:10;dist.center:2;truck:1;shelf:5;checkout:0
//   ...
//
// Concept names must not contain the delimiters (',', '|', ':', ';', or
// whitespace); writing fails with InvalidArgument otherwise.

// Serializes `db` to a stream / file.
Status WritePathDatabase(const PathDatabase& db, std::ostream& out);
Status WritePathDatabaseFile(const PathDatabase& db,
                             const std::string& filename);

// Parses a database previously written by WritePathDatabase. The returned
// database owns a freshly built schema.
Result<PathDatabase> ReadPathDatabase(std::istream& in);
Result<PathDatabase> ReadPathDatabaseFile(const std::string& filename);

}  // namespace flowcube

#endif  // FLOWCUBE_IO_TEXT_IO_H_
