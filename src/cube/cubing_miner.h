#ifndef FLOWCUBE_CUBE_CUBING_MINER_H_
#define FLOWCUBE_CUBE_CUBING_MINER_H_

#include "cube/buc.h"
#include "mining/shared_miner.h"
#include "mining/transform.h"

namespace flowcube {

// Options of algorithm Cubing.
struct CubingMinerOptions {
  // Absolute minimum support count, used both as the iceberg threshold of
  // the BUC cube and as the per-cell Apriori support.
  uint32_t min_support = 1;
};

// Algorithm Cubing (paper Section 5.2): the natural competitor to Shared.
// It (1) computes the iceberg cube over the path-independent dimensions
// with tid lists as measures, then (2) independently runs a plain Apriori
// over the stage items of each frequent cell's transactions. It cannot
// prune across the path abstraction lattice: a stage that is globally
// infrequent is re-generated and re-counted as a candidate in every cell.
//
// The output is the same (frequent cells + frequent path segments per
// cell, all abstraction levels) as SharedMiner's, modulo the redundant
// patterns that Shared's candidate pruning skips (segments mixing path
// levels, or containing a stage together with its implied ancestor).
class CubingMiner {
 public:
  // `transformed` must be the transform of `paths` under the same plan the
  // Shared run would use; both must outlive the miner.
  CubingMiner(const PathDatabase& paths, const TransformedDatabase& transformed,
              CubingMinerOptions options);

  SharedMiningOutput Run();

 private:
  const PathDatabase& paths_;
  const TransformedDatabase& db_;
  CubingMinerOptions options_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_CUBE_CUBING_MINER_H_
