#ifndef FLOWCUBE_CUBE_BUC_H_
#define FLOWCUBE_CUBE_BUC_H_

#include <functional>
#include <vector>

#include "cube/cell.h"
#include "path/path_database.h"

namespace flowcube {

// Bottom-Up Computation of the iceberg cube over the path-independent
// dimensions (Beyer & Ramakrishnan's BUC, extended with hierarchy
// drill-down as algorithm Cubing requires, paper Section 5.2). The
// recursion visits cells from high abstraction (few dimensions
// instantiated, shallow levels) to low, partitioning tid lists and pruning
// any partition below the iceberg threshold — so no descendant of an
// infrequent cell is ever touched.
class BucIcebergCube {
 public:
  struct Options {
    // Iceberg threshold: cells with fewer paths are pruned together with
    // their entire specialization subtree.
    uint32_t min_support = 1;
  };

  explicit BucIcebergCube(Options options);

  // Visits every frequent cell (including the apex, all dimensions '*')
  // exactly once. The callback receives the cell with its tid list; the
  // list is only valid during the call.
  void Visit(const PathDatabase& db,
             const std::function<void(const CubeCell&)>& callback) const;

  // Convenience: collects every frequent cell. Memory-heavy on large
  // databases (each cell copies its tid list) — prefer Visit.
  std::vector<CubeCell> Compute(const PathDatabase& db) const;

 private:
  // Per-Visit observability tallies, accumulated recursion-locally and
  // flushed to the global MetricRegistry once per Visit. The invariant
  //   partitions_enumerated == cells_visited + pruned_iceberg
  //                            + skipped_shallow
  // holds for every traversal (the apex is counted separately in
  // apex_visited since it is emitted before any partitioning).
  struct VisitCounters {
    uint64_t partitions_enumerated = 0;
    uint64_t cells_visited = 0;
    uint64_t pruned_iceberg = 0;
    uint64_t skipped_shallow = 0;
    uint64_t apex_visited = 0;
    // Deepest recursion reached, in instantiated (dimension, level) steps.
    int max_depth = 0;
  };

  void Partition(const PathDatabase& db, const std::vector<uint32_t>& tids,
                 size_t dim, int level, int depth, CubeCell* cell,
                 const std::function<void(const CubeCell&)>& callback,
                 VisitCounters* counters) const;
  void Expand(const PathDatabase& db, const std::vector<uint32_t>& tids,
              size_t next_dim, int depth, CubeCell* cell,
              const std::function<void(const CubeCell&)>& callback,
              VisitCounters* counters) const;

  Options options_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_CUBE_BUC_H_
