#ifndef FLOWCUBE_CUBE_BUC_H_
#define FLOWCUBE_CUBE_BUC_H_

#include <functional>
#include <vector>

#include "cube/cell.h"
#include "path/path_database.h"

namespace flowcube {

// Bottom-Up Computation of the iceberg cube over the path-independent
// dimensions (Beyer & Ramakrishnan's BUC, extended with hierarchy
// drill-down as algorithm Cubing requires, paper Section 5.2). The
// recursion visits cells from high abstraction (few dimensions
// instantiated, shallow levels) to low, partitioning tid lists and pruning
// any partition below the iceberg threshold — so no descendant of an
// infrequent cell is ever touched.
class BucIcebergCube {
 public:
  struct Options {
    // Iceberg threshold: cells with fewer paths are pruned together with
    // their entire specialization subtree.
    uint32_t min_support = 1;
  };

  explicit BucIcebergCube(Options options);

  // Visits every frequent cell (including the apex, all dimensions '*')
  // exactly once. The callback receives the cell with its tid list; the
  // list is only valid during the call.
  void Visit(const PathDatabase& db,
             const std::function<void(const CubeCell&)>& callback) const;

  // Convenience: collects every frequent cell. Memory-heavy on large
  // databases (each cell copies its tid list) — prefer Visit.
  std::vector<CubeCell> Compute(const PathDatabase& db) const;

 private:
  void Partition(const PathDatabase& db, const std::vector<uint32_t>& tids,
                 size_t dim, int level, CubeCell* cell,
                 const std::function<void(const CubeCell&)>& callback) const;
  void Expand(const PathDatabase& db, const std::vector<uint32_t>& tids,
              size_t next_dim, CubeCell* cell,
              const std::function<void(const CubeCell&)>& callback) const;

  Options options_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_CUBE_BUC_H_
