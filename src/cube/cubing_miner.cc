#include "cube/cubing_miner.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "mining/apriori.h"
#include "mining/compatibility.h"

namespace flowcube {

CubingMiner::CubingMiner(const PathDatabase& paths,
                         const TransformedDatabase& transformed,
                         CubingMinerOptions options)
    : paths_(paths), db_(transformed), options_(options) {
  FC_CHECK_MSG(paths.size() == transformed.size(),
               "path database and transformed database differ in size");
}

SharedMiningOutput CubingMiner::Run() {
  SharedMiningOutput out;
  const ItemCatalog& cat = db_.catalog();

  BucIcebergCube cube(BucIcebergCube::Options{options_.min_support});
  // Per-cell Apriori applies the local within-transaction rules any
  // multi-level miner uses (level homogeneity, prefix linkability, no
  // implied ancestors); what it cannot do is Shared's *global*
  // cross-lattice pruning — every cell rediscovers globally infrequent
  // stages from scratch.
  const ItemCompatibility compat(&db_, /*prune_unlinkable=*/true,
                                 /*prune_ancestors=*/true);
  AprioriOptions aopts;
  aopts.min_support = options_.min_support;
  aopts.candidate_filter = [&compat](const Itemset& cand) {
    return compat.CandidateOk(cand);
  };
  Apriori apriori(aopts);

  // The BUC visit is serial, so these accumulate without synchronization
  // and flush to the registry once per Run.
  uint64_t cells_mined = 0;
  uint64_t tid_rows_read = 0;
  cube.Visit(paths_, [&](const CubeCell& cell) {
    cells_mined++;
    tid_rows_read += cell.tids.size();
    // The cell's dimension itemset ('*' coordinates contribute nothing).
    Itemset cell_items;
    for (size_t d = 0; d < cell.coords.size(); ++d) {
      if (db_.schema().dimensions[d].Level(cell.coords[d]) > 0) {
        cell_items.push_back(cat.DimItem(d, cell.coords[d]));
      }
    }
    std::sort(cell_items.begin(), cell_items.end());

    if (!cell_items.empty()) {
      out.frequent.push_back(FrequentItemset{
          cell_items, static_cast<uint32_t>(cell.tids.size())});
    }

    // Algorithm 2 step 5, "read the transactions aggregated in the cell":
    // the cell's transactions are materialized into a local buffer before
    // mining. This data movement is the tid-list read cost the paper calls
    // out ("these lists were much larger than the path database itself") —
    // in-memory it is a copy, on disk it would be I/O.
    std::vector<std::vector<ItemId>> cell_data;
    cell_data.reserve(cell.tids.size());
    for (uint32_t tid : cell.tids) {
      const auto stages = db_.transactions()[tid].StageItems(cat);
      cell_data.emplace_back(stages.begin(), stages.end());
    }
    std::vector<std::span<const ItemId>> cell_txns;
    cell_txns.reserve(cell_data.size());
    for (const auto& t : cell_data) cell_txns.emplace_back(t.data(), t.size());
    for (FrequentItemset& fi : apriori.Mine(cell_txns)) {
      Itemset combined = cell_items;
      combined.insert(combined.end(), fi.items.begin(), fi.items.end());
      out.frequent.push_back(FrequentItemset{std::move(combined), fi.support});
    }
  });

  out.stats = apriori.stats();

  {
    MetricRegistry& reg = MetricRegistry::Global();
    static Counter& m_runs = reg.counter("cube.cubing.runs");
    static Counter& m_cells = reg.counter("cube.cubing.cells_mined");
    // The per-cell transaction copies the paper calls out as the dominant
    // Cubing cost ("these lists were much larger than the path database
    // itself") — in rows, so it is directly comparable to database size.
    static Counter& m_rows = reg.counter("cube.cubing.tid_list_rows_read");
    static Counter& m_frequent = reg.counter("cube.cubing.frequent");
    m_runs.Increment();
    m_cells.Add(cells_mined);
    m_rows.Add(tid_rows_read);
    m_frequent.Add(out.frequent.size());
  }
  return out;
}

}  // namespace flowcube
