#include "cube/buc.h"

#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"

namespace flowcube {

BucIcebergCube::BucIcebergCube(Options options) : options_(options) {
  FC_CHECK_MSG(options_.min_support >= 1, "min_support must be >= 1");
}

void BucIcebergCube::Visit(
    const PathDatabase& db,
    const std::function<void(const CubeCell&)>& callback) const {
  VisitCounters counters;
  std::vector<uint32_t> all(db.size());
  std::iota(all.begin(), all.end(), 0);
  CubeCell cell;
  cell.coords.assign(db.schema().num_dimensions(), 0);  // all '*'
  for (size_t d = 0; d < cell.coords.size(); ++d) {
    cell.coords[d] = db.schema().dimensions[d].root();
  }
  if (all.size() >= options_.min_support) {
    counters.apex_visited++;
    cell.tids = all;
    callback(cell);
    cell.tids.clear();
    Expand(db, all, 0, /*depth=*/0, &cell, callback, &counters);
  }

  MetricRegistry& reg = MetricRegistry::Global();
  static Counter& m_visits = reg.counter("cube.buc.visits");
  static Counter& m_partitions =
      reg.counter("cube.buc.partitions_enumerated");
  static Counter& m_cells = reg.counter("cube.buc.cells_visited");
  static Counter& m_pruned = reg.counter("cube.buc.pruned_iceberg");
  static Counter& m_shallow = reg.counter("cube.buc.skipped_shallow");
  static Counter& m_apex = reg.counter("cube.buc.apex_visited");
  static Gauge& m_depth = reg.gauge("cube.buc.max_depth");
  m_visits.Increment();
  m_partitions.Add(counters.partitions_enumerated);
  m_cells.Add(counters.cells_visited);
  m_pruned.Add(counters.pruned_iceberg);
  m_shallow.Add(counters.skipped_shallow);
  m_apex.Add(counters.apex_visited);
  m_depth.SetMax(counters.max_depth);
}

void BucIcebergCube::Expand(
    const PathDatabase& db, const std::vector<uint32_t>& tids, size_t next_dim,
    int depth, CubeCell* cell,
    const std::function<void(const CubeCell&)>& callback,
    VisitCounters* counters) const {
  for (size_t d = next_dim; d < db.schema().num_dimensions(); ++d) {
    Partition(db, tids, d, /*level=*/1, depth, cell, callback, counters);
  }
}

void BucIcebergCube::Partition(
    const PathDatabase& db, const std::vector<uint32_t>& tids, size_t dim,
    int level, int depth, CubeCell* cell,
    const std::function<void(const CubeCell&)>& callback,
    VisitCounters* counters) const {
  const ConceptHierarchy& h = db.schema().dimensions[dim];
  if (level > h.MaxLevel()) return;
  if (depth + 1 > counters->max_depth) counters->max_depth = depth + 1;
  std::unordered_map<NodeId, std::vector<uint32_t>> groups;
  for (uint32_t tid : tids) {
    const NodeId value = h.AncestorAtLevel(db.record(tid).dims[dim], level);
    groups[value].push_back(tid);
  }
  counters->partitions_enumerated += groups.size();
  const NodeId saved = cell->coords[dim];
  for (auto& [value, group] : groups) {
    if (group.size() < options_.min_support) {  // iceberg prune
      counters->pruned_iceberg++;
      continue;
    }
    if (h.Level(value) < level) {
      // The record value itself is shallower than the requested level; the
      // cell was already emitted when partitioning at that shallower level.
      counters->skipped_shallow++;
      continue;
    }
    counters->cells_visited++;
    cell->coords[dim] = value;
    cell->tids = group;
    callback(*cell);
    cell->tids.clear();
    // Drill one level deeper inside this dimension ...
    Partition(db, group, dim, level + 1, depth + 1, cell, callback, counters);
    // ... and instantiate further dimensions.
    Expand(db, group, dim + 1, depth + 1, cell, callback, counters);
  }
  cell->coords[dim] = saved;
}

std::vector<CubeCell> BucIcebergCube::Compute(const PathDatabase& db) const {
  std::vector<CubeCell> out;
  Visit(db, [&out](const CubeCell& cell) { out.push_back(cell); });
  return out;
}

}  // namespace flowcube
