#include "cube/buc.h"

#include <numeric>
#include <unordered_map>

#include "common/logging.h"

namespace flowcube {

BucIcebergCube::BucIcebergCube(Options options) : options_(options) {
  FC_CHECK_MSG(options_.min_support >= 1, "min_support must be >= 1");
}

void BucIcebergCube::Visit(
    const PathDatabase& db,
    const std::function<void(const CubeCell&)>& callback) const {
  std::vector<uint32_t> all(db.size());
  std::iota(all.begin(), all.end(), 0);
  CubeCell cell;
  cell.coords.assign(db.schema().num_dimensions(), 0);  // all '*'
  for (size_t d = 0; d < cell.coords.size(); ++d) {
    cell.coords[d] = db.schema().dimensions[d].root();
  }
  if (all.size() >= options_.min_support) {
    cell.tids = all;
    callback(cell);
    cell.tids.clear();
    Expand(db, all, 0, &cell, callback);
  }
}

void BucIcebergCube::Expand(
    const PathDatabase& db, const std::vector<uint32_t>& tids, size_t next_dim,
    CubeCell* cell,
    const std::function<void(const CubeCell&)>& callback) const {
  for (size_t d = next_dim; d < db.schema().num_dimensions(); ++d) {
    Partition(db, tids, d, /*level=*/1, cell, callback);
  }
}

void BucIcebergCube::Partition(
    const PathDatabase& db, const std::vector<uint32_t>& tids, size_t dim,
    int level, CubeCell* cell,
    const std::function<void(const CubeCell&)>& callback) const {
  const ConceptHierarchy& h = db.schema().dimensions[dim];
  if (level > h.MaxLevel()) return;
  std::unordered_map<NodeId, std::vector<uint32_t>> groups;
  for (uint32_t tid : tids) {
    const NodeId value = h.AncestorAtLevel(db.record(tid).dims[dim], level);
    groups[value].push_back(tid);
  }
  const NodeId saved = cell->coords[dim];
  for (auto& [value, group] : groups) {
    if (group.size() < options_.min_support) continue;  // iceberg prune
    if (h.Level(value) < level) {
      // The record value itself is shallower than the requested level; the
      // cell was already emitted when partitioning at that shallower level.
      continue;
    }
    cell->coords[dim] = value;
    cell->tids = group;
    callback(*cell);
    cell->tids.clear();
    // Drill one level deeper inside this dimension ...
    Partition(db, group, dim, level + 1, cell, callback);
    // ... and instantiate further dimensions.
    Expand(db, group, dim + 1, cell, callback);
  }
  cell->coords[dim] = saved;
}

std::vector<CubeCell> BucIcebergCube::Compute(const PathDatabase& db) const {
  std::vector<CubeCell> out;
  Visit(db, [&out](const CubeCell& cell) { out.push_back(cell); });
  return out;
}

}  // namespace flowcube
