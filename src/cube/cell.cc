#include "cube/cell.h"

#include "common/string_util.h"

namespace flowcube {

std::string CubeCell::ToString(const PathSchema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(coords.size());
  for (size_t d = 0; d < coords.size(); ++d) {
    parts.push_back(schema.dimensions[d].Name(coords[d]));
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

}  // namespace flowcube
