#ifndef FLOWCUBE_CUBE_CELL_H_
#define FLOWCUBE_CUBE_CELL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "path/path.h"

namespace flowcube {

// One cell of the iceberg cube over the path-independent dimensions: a
// value (hierarchy node) per dimension — the root node meaning '*' — plus
// the ids of the paths aggregated into the cell. Produced by BUC; consumed
// by algorithm Cubing, which mines frequent path segments per cell, and by
// the flowcube builder, which computes a flowgraph per cell.
struct CubeCell {
  std::vector<NodeId> coords;
  std::vector<uint32_t> tids;

  // Renders like "(outerwear, nike)" / "(*, nike)".
  std::string ToString(const PathSchema& schema) const;
};

}  // namespace flowcube

#endif  // FLOWCUBE_CUBE_CELL_H_
