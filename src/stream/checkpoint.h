#ifndef FLOWCUBE_STREAM_CHECKPOINT_H_
#define FLOWCUBE_STREAM_CHECKPOINT_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "flowgraph/flowgraph.h"
#include "io/binary_io.h"
#include "stream/incremental_maintainer.h"
#include "stream/stream_ingestor.h"

namespace flowcube {

// Binary checkpoint of a streaming pipeline: the maintainer's live path
// records and its cube's cells (flowgraphs and exceptions verbatim), plus
// optionally the ingestor's resumable state (registrations, buffered
// readings, watermark). A restored pipeline continues exactly where the
// snapshot left off — DumpFlowCube of the restored cube is byte-identical
// to the snapshotted one, and no mining is replayed on restore.
//
// Layout (all integers little-endian):
//   u32 magic "FCSP" | u32 version | u32 crc32(payload) | u64 payload size
//   payload:
//     u32 config fingerprint (schema shape + plan + options)
//     live records, cube cells per cuboid, optional IngestorState
//
// The reader is strictly bounds-checked: truncated, bit-flipped, or
// otherwise malformed checkpoints are rejected with a Status (never UB),
// and the payload CRC catches corruption before any structure is parsed.

inline constexpr uint32_t kCheckpointMagic = 0x50534346;  // "FCSP"
inline constexpr uint32_t kCheckpointVersion = 1;

// A restored pipeline: the maintainer is fully rebuilt; ingestor_state is
// present when the checkpoint captured one and can seed
// StreamIngestor's resume constructor.
struct RestoredPipeline {
  IncrementalMaintainer maintainer;
  std::optional<IngestorState> ingestor_state;
};

// Serializes the pipeline. `ingestor_state` may be null (maintainer-only
// checkpoint); callers snapshotting a live ingestor must Flush() it first.
std::string EncodeCheckpoint(const IncrementalMaintainer& maintainer,
                             const IngestorState* ingestor_state = nullptr);

// Rebuilds a pipeline from checkpoint bytes. The caller supplies the same
// schema, plan, and options the snapshotted pipeline ran with; a config
// fingerprint stored in the checkpoint rejects mismatches.
Result<RestoredPipeline> DecodeCheckpoint(std::string_view bytes,
                                          SchemaPtr schema, FlowCubePlan plan,
                                          IncrementalMaintainerOptions options);

// Standalone flowgraph codec — the exact node-table encoding FCSP uses for
// cube cells (children order, sorted duration counts, exceptions verbatim),
// exposed for wire transfer of single measures (the shard layer ships
// per-cell flowgraphs to the coordinator this way). Encoding reads through
// the accessor API (both storage forms encode identically); decoding is
// strictly bounds-checked, validates tree structure against `schema`, and
// returns a sealed graph.
void EncodeFlowGraph(const FlowGraph& graph, ByteWriter* writer);
Status DecodeFlowGraph(ByteReader* reader, const PathSchema& schema,
                       FlowGraph* graph);

// File variants.
Status SaveCheckpoint(const IncrementalMaintainer& maintainer,
                      const IngestorState* ingestor_state,
                      const std::string& filename);
Result<RestoredPipeline> LoadCheckpoint(const std::string& filename,
                                        SchemaPtr schema, FlowCubePlan plan,
                                        IncrementalMaintainerOptions options);

}  // namespace flowcube

#endif  // FLOWCUBE_STREAM_CHECKPOINT_H_
