#ifndef FLOWCUBE_STREAM_CHECKPOINT_H_
#define FLOWCUBE_STREAM_CHECKPOINT_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "flowgraph/flowgraph.h"
#include "io/binary_io.h"
#include "stream/incremental_maintainer.h"
#include "stream/stream_ingestor.h"

namespace flowcube {

// Binary checkpoint of a streaming pipeline: the maintainer's live path
// records and its cube's cells (flowgraphs and exceptions verbatim), plus
// optionally the ingestor's resumable state (registrations, buffered
// readings, watermark). A restored pipeline continues exactly where the
// snapshot left off — DumpFlowCube of the restored cube is byte-identical
// to the snapshotted one, and no mining is replayed on restore.
//
// Two on-disk formats share the "FCSP" magic and are negotiated by the
// version word; both are written and read here.
//
// v1 (the original field-by-field stream):
//   u32 magic "FCSP" | u32 version=1 | u32 crc32(payload) | u64 payload size
//   payload:
//     u32 config fingerprint (schema shape + plan + options)
//     live records, cube cells per cuboid, optional IngestorState
//
// v2 (the out-of-core relocatable layout, store/format.h): a 96-byte
// header, a meta stream, a 64-aligned column arena holding the cube's
// sealed forms with pointers rewritten as base-relative offsets, and a
// resume section (live records + ingestor state). A v2 file restores here
// with full CRC + structural validation — the restored cube's flowgraph
// columns VIEW the checkpoint image instead of copying it — and the same
// file can be served zero-copy by store/mapped_cube.h without building a
// maintainer at all.
//
// Writers pick the format per call (or per process via the
// FLOWCUBE_CHECKPOINT_FORMAT env knob, default v2); readers auto-detect.
//
// The readers are strictly bounds-checked: truncated, bit-flipped, or
// otherwise malformed checkpoints are rejected with a Status (never UB),
// and CRCs catch corruption before any structure is parsed.

inline constexpr uint32_t kCheckpointMagic = 0x50534346;  // "FCSP"
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr uint32_t kCheckpointFormatV1 = 1;
inline constexpr uint32_t kCheckpointFormatV2 = 2;

// The format EncodeCheckpoint/SaveCheckpoint use when the caller passes
// format 0: FLOWCUBE_CHECKPOINT_FORMAT=1 selects the v1 stream, anything
// else (including unset) selects v2.
uint32_t DefaultCheckpointFormat();

// A restored pipeline: the maintainer is fully rebuilt; ingestor_state is
// present when the checkpoint captured one and can seed
// StreamIngestor's resume constructor.
struct RestoredPipeline {
  IncrementalMaintainer maintainer;
  std::optional<IngestorState> ingestor_state;
  // Format the checkpoint was read from (kCheckpointFormatV1 / V2).
  uint32_t format = 0;
};

// Serializes the pipeline. `ingestor_state` may be null (maintainer-only
// checkpoint); callers snapshotting a live ingestor must Flush() it first.
// `format` is kCheckpointFormatV1, kCheckpointFormatV2, or 0 for
// DefaultCheckpointFormat().
std::string EncodeCheckpoint(const IncrementalMaintainer& maintainer,
                             const IngestorState* ingestor_state = nullptr,
                             uint32_t format = 0);

// Rebuilds a pipeline from checkpoint bytes (either format, auto-detected).
// The caller supplies the same schema, plan, and options the snapshotted
// pipeline ran with; a config fingerprint stored in the checkpoint rejects
// mismatches.
Result<RestoredPipeline> DecodeCheckpoint(std::string_view bytes,
                                          SchemaPtr schema, FlowCubePlan plan,
                                          IncrementalMaintainerOptions options);

// Standalone flowgraph codec — the exact node-table encoding FCSP uses for
// cube cells (children order, sorted duration counts, exceptions verbatim),
// exposed for wire transfer of single measures (the shard layer ships
// per-cell flowgraphs to the coordinator this way). Encoding reads through
// the accessor API (both storage forms encode identically); decoding is
// strictly bounds-checked, validates tree structure against `schema`, and
// returns a sealed graph.
void EncodeFlowGraph(const FlowGraph& graph, ByteWriter* writer);
Status DecodeFlowGraph(ByteReader* reader, const PathSchema& schema,
                       FlowGraph* graph);

// File variants.
Status SaveCheckpoint(const IncrementalMaintainer& maintainer,
                      const IngestorState* ingestor_state,
                      const std::string& filename, uint32_t format = 0);
Result<RestoredPipeline> LoadCheckpoint(const std::string& filename,
                                        SchemaPtr schema, FlowCubePlan plan,
                                        IncrementalMaintainerOptions options);

}  // namespace flowcube

#endif  // FLOWCUBE_STREAM_CHECKPOINT_H_
