#ifndef FLOWCUBE_STREAM_STREAM_INGESTOR_H_
#define FLOWCUBE_STREAM_STREAM_INGESTOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "path/path.h"
#include "rfid/cleaner.h"
#include "rfid/discretizer.h"
#include "rfid/reading.h"
#include "stream/bounded_queue.h"

namespace flowcube {

// Knobs of the streaming front end (DESIGN.md §9).
struct StreamIngestorOptions {
  // Cleaning parameters applied per item when its path closes.
  CleanerOptions cleaner;

  // Width of one discretized duration unit (DurationDiscretizer).
  int64_t bin_seconds = 3600;

  // Watermark horizon: an item's path is considered complete once the
  // stream watermark (largest timestamp ingested so far) has advanced at
  // least this far past the item's last reading. Must be larger than the
  // reader scan interval plus clock jitter, or stays get split.
  int64_t close_after_seconds = 7200;

  // Capacity (in batches) of the inbound raw-reading queue. Push blocks
  // when the pipeline falls this many batches behind — the backpressure
  // bound.
  size_t queue_capacity = 8;

  // Capacity (in deltas) of the outbound queue; the worker blocks when the
  // consumer falls this far behind.
  size_t delta_queue_capacity = 64;
};

// One micro-batch of completed paths, ready for the IncrementalMaintainer.
struct StreamDelta {
  // Sequence number of the raw batch that completed these paths (counting
  // from 0); the final flush on Close() carries the next number.
  uint64_t batch_sequence = 0;
  // Completed path records, in ascending-EPC order within the delta. The
  // concatenation of all deltas' records is the stream's union path
  // database, in a deterministic order.
  std::vector<PathRecord> records;
};

// The resumable state of an ingestor: everything needed to continue the
// stream after a restart. Captured by SnapshotState(), serialized by the
// checkpoint layer, and fed back through StreamIngestor::FromState.
struct IngestorState {
  // EPC -> dimension values, from RegisterItem.
  std::map<EpcId, std::vector<NodeId>> registrations;
  // Readings of items whose paths have not closed yet.
  std::map<EpcId, std::vector<RawReading>> open_readings;
  // Largest timestamp ingested so far.
  int64_t watermark = std::numeric_limits<int64_t>::min();
  // Raw batches consumed so far (the next delta's sequence number).
  uint64_t batches_processed = 0;
};

// The streaming front end: raw RFID reading batches go in through a
// bounded, backpressure-aware queue; delta path records of items whose
// paths completed come out. A single worker thread drains the inbound
// queue, buffers readings per item, advances the watermark, and — once an
// item has been silent for `close_after_seconds` of stream time — runs the
// existing cleaner/discretizer over its readings and emits the finished
// PathRecord. Items are closed in ascending EPC order per batch, so the
// delta stream is deterministic for a given input stream.
//
// An item's dimension values must be registered (RegisterItem) before its
// path closes; readings of unregistered items are dropped at close time and
// counted in stream.ingest.readings_dropped.
class StreamIngestor {
 public:
  StreamIngestor(SchemaPtr schema, StreamIngestorOptions options);

  // Resumes from checkpointed state: buffered readings, registrations, and
  // the watermark continue where the snapshot left off.
  StreamIngestor(SchemaPtr schema, StreamIngestorOptions options,
                 IngestorState state);

  // Closes the stream and joins the worker.
  ~StreamIngestor();

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  const PathSchema& schema() const { return *schema_; }
  const StreamIngestorOptions& options() const { return options_; }

  // Declares the dimension values of an item (one value per schema
  // dimension, ids in range). May be called at any time before the item's
  // path closes; re-registration overwrites.
  Status RegisterItem(EpcId epc, std::vector<NodeId> dims);

  // Enqueues one raw batch. Blocks while `queue_capacity` batches are
  // already in flight (backpressure); fails with FailedPrecondition after
  // Close().
  Status Push(std::vector<RawReading> batch);

  // Ends the input stream: after pending batches drain, every still-open
  // item is flushed as a final delta and Pop() starts returning nullopt.
  // Idempotent.
  void Close();

  // Blocks until the input queue has been fully drained by the worker, so
  // SnapshotState() observes a quiescent pipeline. Must not race with
  // concurrent Push() calls.
  void Flush();

  // Next completed delta; blocks until one is ready. nullopt once the
  // ingestor is closed and every delta has been consumed. Deltas with no
  // completed paths are not emitted.
  std::optional<StreamDelta> Pop();

  // Non-blocking Pop.
  std::optional<StreamDelta> TryPop();

  // Copies the resumable state. Callers must Flush() first (and must not
  // Push concurrently); state captured mid-batch would drop the in-flight
  // readings.
  IngestorState SnapshotState();

 private:
  void WorkerLoop();
  // Processes one raw batch under state_mu_, emitting a delta when paths
  // closed. `flush_all` (used on Close) closes every open item regardless
  // of the watermark.
  void ProcessBatch(std::vector<RawReading> batch, bool flush_all);

  SchemaPtr schema_;
  StreamIngestorOptions options_;
  DurationDiscretizer discretizer_;
  ReadingCleaner cleaner_;

  BoundedQueue<std::vector<RawReading>> raw_queue_;
  BoundedQueue<StreamDelta> delta_queue_;

  Mutex state_mu_;
  CondVar drained_cv_;
  IngestorState state_ FC_GUARDED_BY(state_mu_);
  uint64_t batches_pushed_ FC_GUARDED_BY(state_mu_) = 0;
  bool closed_ FC_GUARDED_BY(state_mu_) = false;

  std::thread worker_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_STREAM_STREAM_INGESTOR_H_
