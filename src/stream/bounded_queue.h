#ifndef FLOWCUBE_STREAM_BOUNDED_QUEUE_H_
#define FLOWCUBE_STREAM_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace flowcube {

// A bounded multi-producer/multi-consumer blocking queue — the backpressure
// primitive of the streaming ingestor (DESIGN.md §9). Push blocks while the
// queue is full, so a producer outrunning the pipeline is throttled instead
// of buffering unboundedly; Pop blocks while it is empty. Close() wakes
// every waiter: pending items still drain, then Pop returns nullopt and
// Push returns false.
//
// Shutdown contract (exercised by tests/bounded_queue_stress_test.cc):
//   - Push/TryPush return false iff the item was NOT enqueued; a true
//     return means some Pop will (or already did) observe the item, even
//     when Close() lands immediately after.
//   - After Close(), no Push succeeds — not even into free capacity — so
//     the set of delivered items is exactly the set of accepted pushes.
//   - Pop drains the backlog after Close() and only then returns nullopt;
//     a Push blocked on a full queue at Close() time wakes and fails
//     without enqueueing (its item is dropped at the call site, never
//     half-delivered).
// Every state transition happens under mu_, so the close/pop interleaving
// has no window where an accepted item could be lost or a closed queue
// could accept one.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    FC_CHECK_MSG(capacity_ > 0, "BoundedQueue capacity must be > 0");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room (or the queue is closed). Returns false —
  // dropping `item` — iff the queue was closed.
  bool Push(T item) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  // Non-blocking Push. Returns false when full or closed.
  bool TryPush(T item) {
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks until an item is available (or the queue is closed *and*
  // drained, which yields nullopt).
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  // Non-blocking Pop: nullopt when nothing is queued right now.
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  // Marks the queue closed and wakes every blocked Push/Pop. Idempotent.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ FC_GUARDED_BY(mu_);
  bool closed_ FC_GUARDED_BY(mu_) = false;
};

}  // namespace flowcube

#endif  // FLOWCUBE_STREAM_BOUNDED_QUEUE_H_
