#ifndef FLOWCUBE_STREAM_BOUNDED_QUEUE_H_
#define FLOWCUBE_STREAM_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"

namespace flowcube {

// A bounded multi-producer/multi-consumer blocking queue — the backpressure
// primitive of the streaming ingestor (DESIGN.md §9). Push blocks while the
// queue is full, so a producer outrunning the pipeline is throttled instead
// of buffering unboundedly; Pop blocks while it is empty. Close() wakes
// every waiter: pending items still drain, then Pop returns nullopt and
// Push returns false.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    FC_CHECK_MSG(capacity_ > 0, "BoundedQueue capacity must be > 0");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room (or the queue is closed). Returns false —
  // dropping `item` — iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking Push. Returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available (or the queue is closed *and*
  // drained, which yields nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking Pop: nullopt when nothing is queued right now.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Marks the queue closed and wakes every blocked Push/Pop. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace flowcube

#endif  // FLOWCUBE_STREAM_BOUNDED_QUEUE_H_
