#include "stream/stream_ingestor.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "path/path_database.h"

namespace flowcube {
namespace {

struct IngestMetrics {
  Counter& batches;
  Counter& readings;
  Counter& paths_emitted;
  Counter& readings_dropped;
  Counter& records_invalid;
  Gauge& queue_depth_peak;

  static IngestMetrics& Get() {
    MetricRegistry& reg = MetricRegistry::Global();
    static IngestMetrics m{reg.counter("stream.ingest.batches"),
                           reg.counter("stream.ingest.readings"),
                           reg.counter("stream.ingest.paths_emitted"),
                           reg.counter("stream.ingest.readings_dropped"),
                           reg.counter("stream.ingest.records_invalid"),
                           reg.gauge("stream.ingest.queue_depth_peak")};
    return m;
  }
};

}  // namespace

StreamIngestor::StreamIngestor(SchemaPtr schema, StreamIngestorOptions options)
    : StreamIngestor(std::move(schema), options, IngestorState()) {}

StreamIngestor::StreamIngestor(SchemaPtr schema, StreamIngestorOptions options,
                               IngestorState state)
    : schema_(std::move(schema)),
      options_(options),
      discretizer_(options.bin_seconds),
      cleaner_(options.cleaner),
      raw_queue_(options.queue_capacity),
      delta_queue_(options.delta_queue_capacity),
      state_(std::move(state)) {
  FC_CHECK_MSG(schema_ != nullptr, "StreamIngestor requires a schema");
  FC_CHECK_MSG(options_.close_after_seconds > 0,
               "close_after_seconds must be > 0");
  batches_pushed_ = state_.batches_processed;
  worker_ = std::thread([this] { WorkerLoop(); });
}

StreamIngestor::~StreamIngestor() {
  Close();
  if (worker_.joinable()) worker_.join();
}

Status StreamIngestor::RegisterItem(EpcId epc, std::vector<NodeId> dims) {
  if (dims.size() != schema_->num_dimensions()) {
    return Status::InvalidArgument(
        StrFormat("item registers %zu dimension values, schema has %zu",
                  dims.size(), schema_->num_dimensions()));
  }
  for (size_t d = 0; d < dims.size(); ++d) {
    if (dims[d] >= schema_->dimensions[d].NodeCount()) {
      return Status::InvalidArgument(
          StrFormat("dimension %zu value id out of range", d));
    }
  }
  MutexLock lock(state_mu_);
  state_.registrations[epc] = std::move(dims);
  return Status::OK();
}

Status StreamIngestor::Push(std::vector<RawReading> batch) {
  {
    MutexLock lock(state_mu_);
    if (closed_) {
      return Status::FailedPrecondition("ingestor is closed");
    }
    batches_pushed_++;
  }
  IngestMetrics::Get().queue_depth_peak.SetMax(
      static_cast<int64_t>(raw_queue_.size() + 1));
  if (!raw_queue_.Push(std::move(batch))) {
    // Closed between the check above and the enqueue.
    MutexLock lock(state_mu_);
    batches_pushed_--;
    return Status::FailedPrecondition("ingestor is closed");
  }
  return Status::OK();
}

void StreamIngestor::Close() {
  {
    MutexLock lock(state_mu_);
    closed_ = true;
  }
  raw_queue_.Close();
}

void StreamIngestor::Flush() {
  MutexLock lock(state_mu_);
  while (state_.batches_processed != batches_pushed_) {
    drained_cv_.Wait(state_mu_);
  }
}

std::optional<StreamDelta> StreamIngestor::Pop() { return delta_queue_.Pop(); }

std::optional<StreamDelta> StreamIngestor::TryPop() {
  return delta_queue_.TryPop();
}

IngestorState StreamIngestor::SnapshotState() {
  MutexLock lock(state_mu_);
  return state_;
}

void StreamIngestor::WorkerLoop() {
  while (auto batch = raw_queue_.Pop()) {
    ProcessBatch(std::move(*batch), /*flush_all=*/false);
  }
  // Input closed and drained: flush every still-open item.
  ProcessBatch({}, /*flush_all=*/true);
  delta_queue_.Close();
}

void StreamIngestor::ProcessBatch(std::vector<RawReading> batch,
                                  bool flush_all) {
  TraceSpan span("stream.ingest.batch");
  IngestMetrics& metrics = IngestMetrics::Get();
  StreamDelta delta;
  {
    MutexLock lock(state_mu_);
    delta.batch_sequence = state_.batches_processed;
    for (const RawReading& r : batch) {
      state_.watermark = std::max(state_.watermark, r.timestamp);
      state_.open_readings[r.epc].push_back(r);
    }
    metrics.readings.Add(batch.size());

    // Items silent past the watermark horizon have completed their paths.
    // std::map iteration closes them in ascending-EPC order, which makes
    // the delta stream deterministic for a given input stream.
    std::vector<EpcId> closable;
    for (const auto& [epc, readings] : state_.open_readings) {
      if (flush_all) {
        closable.push_back(epc);
        continue;
      }
      int64_t last = std::numeric_limits<int64_t>::min();
      for (const RawReading& r : readings) {
        last = std::max(last, r.timestamp);
      }
      if (state_.watermark - last >= options_.close_after_seconds) {
        closable.push_back(epc);
      }
    }
    for (EpcId epc : closable) {
      auto node = state_.open_readings.extract(epc);
      std::vector<RawReading>& readings = node.mapped();
      const auto reg = state_.registrations.find(epc);
      if (reg == state_.registrations.end()) {
        metrics.readings_dropped.Add(readings.size());
        continue;
      }
      const Itinerary itinerary =
          cleaner_.CleanItem(epc, std::move(readings));
      PathRecord rec;
      rec.dims = reg->second;
      rec.path = ReadingCleaner::ToPath(itinerary, discretizer_);
      if (const Status s = ValidateRecord(*schema_, rec); !s.ok()) {
        metrics.records_invalid.Increment();
        continue;
      }
      delta.records.push_back(std::move(rec));
    }
    metrics.paths_emitted.Add(delta.records.size());
    if (!flush_all) metrics.batches.Increment();
  }

  // Enqueue outside state_mu_ so a full delta queue blocks only the worker,
  // never RegisterItem/Flush — and strictly before the batch is counted as
  // processed, so a Flush()ed pipeline has every delta visible to TryPop.
  if (!delta.records.empty()) {
    delta_queue_.Push(std::move(delta));
  }
  if (!flush_all) {
    MutexLock lock(state_mu_);
    state_.batches_processed++;
    drained_cv_.NotifyAll();
  }
}

}  // namespace flowcube
