#include "stream/incremental_maintainer.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "flowcube/cell_build.h"
#include "mining/local_segments.h"
#include "path/path_database.h"
#include "path/path_view.h"

namespace flowcube {
namespace {

struct MaintainMetrics {
  Counter& batches;
  Counter& records;
  Counter& records_retired;
  Counter& cells_rebuilt;
  Counter& cells_promoted;
  Counter& cells_demoted;
  Counter& redundancy_updates;
  Gauge& live_records;
  // Shared with the batch builder: whoever touched the cube last reports
  // its current storage footprint.
  Gauge& memory_bytes;

  static MaintainMetrics& Get() {
    MetricRegistry& reg = MetricRegistry::Global();
    static MaintainMetrics m{reg.counter("stream.maintain.batches"),
                             reg.counter("stream.maintain.records"),
                             reg.counter("stream.maintain.records_retired"),
                             reg.counter("stream.maintain.cells_rebuilt"),
                             reg.counter("stream.maintain.cells_promoted"),
                             reg.counter("stream.maintain.cells_demoted"),
                             reg.counter("stream.maintain.redundancy_updates"),
                             reg.gauge("stream.maintain.live_records"),
                             reg.gauge("flowcube.memory_bytes")};
    return m;
  }
};

}  // namespace

Result<IncrementalMaintainer> IncrementalMaintainer::Create(
    SchemaPtr schema, FlowCubePlan plan, IncrementalMaintainerOptions options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("IncrementalMaintainer requires a schema");
  }
  if (options.build.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (options.window_records > 0 && options.build.compute_exceptions) {
    return Status::InvalidArgument(
        "sliding-window maintenance cannot compute exceptions: segment "
        "ordering depends on the full stream's stage interning order; set "
        "build.compute_exceptions = false");
  }
  // Mirror the checks TransformedDatabase/TransformPathDatabase enforce with
  // FC_CHECK, returning a Status instead of aborting on a bad plan.
  const MiningPlan& mining = plan.mining;
  if (mining.dim_levels.size() != schema->num_dimensions()) {
    return Status::InvalidArgument(
        "mining plan does not match the schema's dimension count");
  }
  if (mining.cuts.empty() || mining.path_levels.empty()) {
    return Status::InvalidArgument(
        "mining plan needs at least one cut and one path level");
  }
  if (mining.path_levels.size() >= 16) {
    return Status::InvalidArgument(
        "at most 15 path abstraction levels are supported");
  }
  for (const PathLevel& pl : mining.path_levels) {
    if (pl.cut_index < 0 ||
        pl.cut_index >= static_cast<int>(mining.cuts.size())) {
      return Status::InvalidArgument("path level cut index out of range");
    }
    if (pl.duration_level < 0 ||
        pl.duration_level > schema->durations.MaxLevel()) {
      return Status::InvalidArgument("path level duration level out of range");
    }
  }
  if (plan.item_levels.empty() || plan.path_levels.empty()) {
    return Status::InvalidArgument(
        "flowcube plan needs at least one item level and one path level");
  }
  for (const ItemLevel& il : plan.item_levels) {
    if (il.levels.size() != schema->num_dimensions()) {
      return Status::InvalidArgument(
          "item level does not match the schema's dimension count");
    }
    for (size_t d = 0; d < il.levels.size(); ++d) {
      if (il.levels[d] < 0 ||
          il.levels[d] > schema->dimensions[d].MaxLevel()) {
        return Status::InvalidArgument(
            StrFormat("item level out of range for dimension %zu", d));
      }
    }
  }
  for (int p : plan.path_levels) {
    if (p < 0 || p >= static_cast<int>(mining.path_levels.size())) {
      return Status::InvalidArgument(
          "materialized path level index out of range");
    }
  }
  return IncrementalMaintainer(std::move(schema), std::move(plan), options);
}

IncrementalMaintainer::IncrementalMaintainer(
    SchemaPtr schema, FlowCubePlan plan, IncrementalMaintainerOptions options)
    : schema_(std::move(schema)),
      plan_(std::move(plan)),
      options_(options),
      aggregator_(schema_),
      exception_miner_(options.build.exceptions),
      tdb_(schema_, plan_.mining),
      agg_(plan_.path_levels.size()),
      cells_(plan_.item_levels.size()),
      cube_(plan_, schema_) {}

bool IncrementalMaintainer::KeyComplete(const ItemLevel& il,
                                        const Itemset& key) {
  size_t expected = 0;
  for (int level : il.levels) {
    if (level > 0) expected++;
  }
  return key.size() == expected;
}

Status IncrementalMaintainer::Apply(const StreamDelta& delta,
                                    ApplyStats* stats) {
  return ApplyRecords(delta.records, stats);
}

Status IncrementalMaintainer::ApplyRecords(std::span<const PathRecord> records,
                                           ApplyStats* stats) {
  ApplyStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ApplyStats();
  TraceSpan span("stream.apply");

  // Validate the whole delta before touching any index, so a malformed
  // record leaves the maintainer (and its cube) exactly as it was.
  for (const PathRecord& rec : records) {
    FC_RETURN_IF_ERROR(ValidateRecord(*schema_, rec));
  }
  FC_CHECK_MSG(records_.size() + records.size() <
                   std::numeric_limits<uint32_t>::max(),
               "transaction id space exhausted");

  // The delta size is known up front: pre-size the live indexes once so the
  // append loop never reallocates mid-batch.
  const size_t total_records = records_.size() + records.size();
  records_.reserve(total_records);
  for (std::vector<Path>& paths : agg_) paths.reserve(total_records);

  std::vector<KeySet> dirty(plan_.item_levels.size());
  for (const PathRecord& rec : records) {
    AppendToIndexes(rec, &dirty);
    stats->records_applied++;
  }
  if (options_.window_records > 0) {
    while (live_record_count() > options_.window_records) {
      RetireOldest(&dirty);
      stats->records_retired++;
    }
  }

  RebuildDirtyCells(dirty, stats);
  if (options_.build.mark_redundant) {
    RecomputeRedundancy(dirty, stats);
  }
  stats->seconds = span.Stop();

  MaintainMetrics& metrics = MaintainMetrics::Get();
  metrics.batches.Increment();
  metrics.records.Add(stats->records_applied);
  metrics.records_retired.Add(stats->records_retired);
  metrics.cells_rebuilt.Add(stats->cells_rebuilt);
  metrics.cells_promoted.Add(stats->cells_promoted);
  metrics.cells_demoted.Add(stats->cells_demoted);
  metrics.redundancy_updates.Add(stats->redundancy_updates);
  metrics.live_records.Set(static_cast<int64_t>(live_record_count()));
  metrics.memory_bytes.Set(static_cast<int64_t>(cube_.MemoryUsage()));
  if (publish_hook_) publish_hook_(*this);
  return Status::OK();
}

void IncrementalMaintainer::AppendToIndexes(const PathRecord& rec,
                                            std::vector<KeySet>* dirty) {
  const uint32_t tid = static_cast<uint32_t>(records_.size());
  records_.push_back(rec);
  // Appending in tid order reproduces the stage-item interning order of a
  // batch transform over the same records.
  tdb_.Append(records_[tid]);
  for (size_t p = 0; p < plan_.path_levels.size(); ++p) {
    const PathLevel& level =
        plan_.mining.path_levels[static_cast<size_t>(plan_.path_levels[p])];
    agg_[p].push_back(aggregator_.AggregatePath(
        rec.path, plan_.mining.cuts[static_cast<size_t>(level.cut_index)],
        level.duration_level));
  }

  const ItemCatalog& cat = tdb_.catalog();
  Itemset key;
  for (size_t i = 0; i < plan_.item_levels.size(); ++i) {
    const ItemLevel& il = plan_.item_levels[i];
    CellKeyAtLevel(records_[tid], il, cat, *schema_, &key);
    // Records whose dimension values sit above the level belong to no cell
    // of this cuboid (their key misses a dimension), same as in the batch
    // build where mining emits only level-complete cell keys.
    if (!KeyComplete(il, key)) continue;
    cells_[i][key].tids.push_back(tid);
    (*dirty)[i].insert(key);
  }
}

void IncrementalMaintainer::RetireOldest(std::vector<KeySet>* dirty) {
  FC_CHECK(first_live_ < records_.size());
  const uint32_t tid = static_cast<uint32_t>(first_live_);
  const PathRecord& rec = records_[tid];
  const ItemCatalog& cat = tdb_.catalog();
  Itemset key;
  for (size_t i = 0; i < plan_.item_levels.size(); ++i) {
    const ItemLevel& il = plan_.item_levels[i];
    CellKeyAtLevel(rec, il, cat, *schema_, &key);
    if (!KeyComplete(il, key)) continue;
    const auto it = cells_[i].find(key);
    FC_CHECK_MSG(it != cells_[i].end() && !it->second.tids.empty() &&
                     it->second.tids.front() == tid,
                 "membership index out of sync with the record log");
    it->second.tids.erase(it->second.tids.begin());
    (*dirty)[i].insert(key);
  }
  first_live_++;
}

void IncrementalMaintainer::RebuildDirtyCells(const std::vector<KeySet>& dirty,
                                              ApplyStats* stats) {
  const ItemCatalog& cat = tdb_.catalog();
  const uint32_t min_support = options_.build.min_support;
  for (size_t i = 0; i < plan_.item_levels.size(); ++i) {
    for (const Itemset& key : dirty[i]) {
      const auto it = cells_[i].find(key);
      FC_CHECK(it != cells_[i].end());
      CellState& state = it->second;
      const uint32_t support = static_cast<uint32_t>(state.tids.size());
      // The iceberg condition. The apex cell (all dimensions at '*') is
      // always materialized — mining emits it unconditionally, so the batch
      // build keeps it regardless of delta.
      const bool qualifies =
          key.empty() ? support >= 1 : support >= min_support;
      if (!qualifies) {
        if (state.materialized) {
          for (size_t p = 0; p < plan_.path_levels.size(); ++p) {
            cube_.mutable_cuboid(i, p).Erase(key);
          }
          state.materialized = false;
          stats->cells_demoted++;
        }
        if (state.tids.empty()) cells_[i].erase(it);
        continue;
      }
      if (!state.materialized) stats->cells_promoted++;
      for (size_t p = 0; p < plan_.path_levels.size(); ++p) {
        const PathView paths(agg_[p], state.tids);
        FlowCell cell;
        cell.dims = key;
        const std::vector<SegmentPattern> segments =
            options_.build.compute_exceptions
                ? MineCellSegments(tdb_, state.tids, plan_.path_levels[p],
                                   min_support)
                : std::vector<SegmentPattern>();
        FillCellMeasure(
            paths, segments, cat,
            options_.build.compute_exceptions ? &exception_miner_ : nullptr,
            &cell);
        Cuboid& cuboid = cube_.mutable_cuboid(i, p);
        cuboid.Erase(key);
        cuboid.Insert(std::move(cell));
        stats->cells_rebuilt++;
      }
      state.materialized = true;
    }
  }
}

void IncrementalMaintainer::RecomputeRedundancy(
    const std::vector<KeySet>& dirty, ApplyStats* stats) {
  const ItemCatalog& cat = cube_.catalog();
  for (size_t i = 0; i < plan_.item_levels.size(); ++i) {
    const ItemLevel& il = plan_.item_levels[i];
    // A cell's redundancy flag depends on its own graph and its materialized
    // parents' graphs, so it must be re-evaluated when the cell itself or
    // any parent cell changed (promotion and demotion included — both are
    // membership changes, so both keys are in the dirty sets).
    std::vector<Itemset> affected;
    cube_.cuboid(i, 0).ForEach([&](const FlowCell& cell) {
      bool hit = dirty[i].contains(cell.dims);
      for (size_t d = 0; !hit && d < schema_->num_dimensions(); ++d) {
        if (il.levels[d] == 0) continue;
        ItemLevel parent_level = il;
        parent_level.levels[d]--;
        const int pi = plan_.FindItemLevel(parent_level);
        if (pi < 0) continue;
        Itemset parent_key;
        if (!ParentCellKey(cell.dims, d, cat, *schema_, &parent_key)) continue;
        hit = dirty[static_cast<size_t>(pi)].contains(parent_key);
      }
      if (hit) affected.push_back(cell.dims);
    });
    for (size_t p = 0; p < plan_.path_levels.size(); ++p) {
      Cuboid& cuboid = cube_.mutable_cuboid(i, p);
      for (const Itemset& key : affected) {
        FlowCell* cell = cuboid.FindMutable(key);
        FC_CHECK(cell != nullptr);
        cell->redundant =
            CellIsRedundant(cube_, il, p, *cell, options_.build.redundancy_tau,
                            options_.build.similarity);
        stats->redundancy_updates++;
      }
    }
  }
}

std::vector<PathRecord> IncrementalMaintainer::LiveRecords() const {
  return std::vector<PathRecord>(records_.begin() +
                                     static_cast<ptrdiff_t>(first_live_),
                                 records_.end());
}

}  // namespace flowcube
