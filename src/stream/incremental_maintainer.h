#ifndef FLOWCUBE_STREAM_INCREMENTAL_MAINTAINER_H_
#define FLOWCUBE_STREAM_INCREMENTAL_MAINTAINER_H_

#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "flowcube/builder.h"
#include "flowcube/flowcube.h"
#include "flowgraph/exception_miner.h"
#include "mining/transform.h"
#include "path/path_aggregator.h"
#include "stream/stream_ingestor.h"

namespace flowcube {

class CheckpointCodec;

// Knobs of incremental flowcube maintenance.
struct IncrementalMaintainerOptions {
  // The construction parameters the maintained cube must agree with: the
  // iceberg threshold delta (min_support), exception mining, and redundancy
  // marking all apply exactly as in FlowCubeBuilder, so the maintained cube
  // dumps byte-identically to a batch rebuild over the union database.
  // (num_threads and the mining pruning toggles are ignored — maintenance
  // re-mines locally, per dirty cell.)
  FlowCubeBuilderOptions build;

  // Sliding window: when > 0, only the newest `window_records` path records
  // stay live; older records retire as new ones arrive, demoting cells that
  // drop below delta. Incompatible with build.compute_exceptions (segment
  // tie-breaking depends on stage-item interning order, which a fresh
  // rebuild over the window alone would not reproduce); Create() rejects
  // the combination. 0 = unbounded, the paper's append-only setting.
  uint32_t window_records = 0;
};

// Counters filled by one Apply() call.
struct ApplyStats {
  size_t records_applied = 0;
  size_t records_retired = 0;
  // Cells whose measure was recomputed, summed over path levels.
  size_t cells_rebuilt = 0;
  // Cells crossing the iceberg threshold delta (counted once per key, not
  // per path level).
  size_t cells_promoted = 0;
  size_t cells_demoted = 0;
  // Redundancy flags re-evaluated, summed over path levels.
  size_t redundancy_updates = 0;
  double seconds = 0.0;
};

// Folds micro-batch deltas into a live FlowCube. Instead of re-running the
// whole transform/Shared/measure pipeline, each Apply():
//   1. appends the delta's records to the live indexes (transaction table,
//      per-path-level aggregation table, per-item-level membership lists);
//   2. updates cell supports and promotes/demotes cells across the iceberg
//      threshold delta, re-mining segments and rebuilding flowgraph
//      measures only for the cells the delta touched;
//   3. re-evaluates redundancy flags only for touched cells and cells
//      whose parent (one-dimension generalization) was touched.
// The maintained cube is bit-identical to FlowCubeBuilder::Build over the
// union path database after every Apply — cells are assembled through the
// same flowcube/cell_build.h primitives, and the per-cell local segment
// miner is exact (mining/local_segments.h).
//
// Threading contract: the maintainer holds no locks and must be externally
// synchronized — one logical owner calls Apply, and cube() readers must not
// overlap an Apply. The planned serving layer keeps this class
// single-writer and publishes immutable sealed-cube snapshots to readers
// via epoch/RCU pointer swap instead of locking here (ROADMAP: concurrent
// query serving); the thread-safety preset keeps that boundary honest by
// annotating every lock that does exist in src/common and src/stream.
class IncrementalMaintainer {
 public:
  // Validates plan/options against the schema. Rejects
  // window_records > 0 together with build.compute_exceptions.
  static Result<IncrementalMaintainer> Create(
      SchemaPtr schema, FlowCubePlan plan,
      IncrementalMaintainerOptions options);

  IncrementalMaintainer(IncrementalMaintainer&&) = default;
  IncrementalMaintainer& operator=(IncrementalMaintainer&&) = default;
  IncrementalMaintainer(const IncrementalMaintainer&) = delete;
  IncrementalMaintainer& operator=(const IncrementalMaintainer&) = delete;

  const PathSchema& schema() const { return *schema_; }
  SchemaPtr schema_ptr() const { return schema_; }
  const FlowCubePlan& plan() const { return plan_; }
  const IncrementalMaintainerOptions& options() const { return options_; }

  // The maintained cube. Valid (and queryable) between Apply calls.
  const FlowCube& cube() const { return cube_; }

  // Folds one delta into the cube.
  Status Apply(const StreamDelta& delta, ApplyStats* stats = nullptr);
  Status ApplyRecords(std::span<const PathRecord> records,
                      ApplyStats* stats = nullptr);

  // Called after every successful Apply/ApplyRecords, while the cube is
  // quiescent — the hook may read cube() and live_record_count() freely.
  // The serving layer uses this to clone and publish an immutable snapshot
  // per batch (serve/snapshot_registry.h); stream/ itself stays unaware of
  // the serving types. nullptr clears the hook. Runs on the Apply caller's
  // thread; external synchronization rules are unchanged.
  using PublishHook = std::function<void(const IncrementalMaintainer&)>;
  void SetPublishHook(PublishHook hook) { publish_hook_ = std::move(hook); }

  // Records currently live (the whole stream, or the trailing window), in
  // ingestion order. A batch rebuild over exactly these records reproduces
  // cube() byte-for-byte.
  std::vector<PathRecord> LiveRecords() const;
  size_t live_record_count() const { return records_.size() - first_live_; }
  // Total records ever applied, including retired ones.
  uint64_t total_records() const { return records_.size(); }

 private:
  friend class CheckpointCodec;

  // Live membership of one cell: its member transaction ids (ascending;
  // indexes into records_/agg_ rows) and whether it is currently
  // materialized in the cube.
  struct CellState {
    std::vector<uint32_t> tids;
    bool materialized = false;
  };
  using CellMap = std::unordered_map<Itemset, CellState, ItemsetHash>;
  using KeySet = std::unordered_set<Itemset, ItemsetHash>;

  IncrementalMaintainer(SchemaPtr schema, FlowCubePlan plan,
                        IncrementalMaintainerOptions options);

  // True when `key` is a complete cell coordinate at item level `il` (one
  // item for every dimension whose level is > 0); incomplete keys belong to
  // no cell of that cuboid.
  static bool KeyComplete(const ItemLevel& il, const Itemset& key);

  // Appends one (validated) record to every index; records the touched cell
  // key per item level in `dirty`.
  void AppendToIndexes(const PathRecord& rec, std::vector<KeySet>* dirty);

  // Retires the oldest live record; records touched keys in `dirty`.
  void RetireOldest(std::vector<KeySet>* dirty);

  // Phase 2 of Apply: rebuild/promote/demote every dirty cell.
  void RebuildDirtyCells(const std::vector<KeySet>& dirty, ApplyStats* stats);

  // Phase 3 of Apply: recompute redundancy flags of cells affected by the
  // dirty set (the cells themselves plus their children).
  void RecomputeRedundancy(const std::vector<KeySet>& dirty,
                           ApplyStats* stats);

  SchemaPtr schema_;
  FlowCubePlan plan_;
  IncrementalMaintainerOptions options_;
  PathAggregator aggregator_;
  ExceptionMiner exception_miner_;

  // Every record ever applied; index = transaction id. Retired records keep
  // their slot (ids are never reused) but drop out of every membership.
  std::vector<PathRecord> records_;
  size_t first_live_ = 0;

  // Encoded transactions + the item/stage catalog, maintained in lockstep
  // with records_. Stage-item interning order matches a batch transform of
  // the same records in the same order, which keeps exception segment
  // ordering identical to a full rebuild.
  TransformedDatabase tdb_;

  // agg_[p][tid] = records_[tid].path aggregated to materialized path
  // level p (indexes plan_.path_levels), mirroring the builder's shared
  // aggregation table.
  std::vector<std::vector<Path>> agg_;

  // cells_[i] = membership of every (complete) cell key seen at item level
  // i, including keys below the iceberg threshold.
  std::vector<CellMap> cells_;

  FlowCube cube_;
  PublishHook publish_hook_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_STREAM_INCREMENTAL_MAINTAINER_H_
