#include "stream/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "flowgraph/flowgraph.h"
#include "io/binary_io.h"
#include "path/path_database.h"
#include "store/arena_writer.h"
#include "store/cube_codec.h"
#include "store/format.h"

namespace flowcube {

namespace {

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt checkpoint: ") + what);
}

Status CorruptV2(const char* what) {
  return Status::InvalidArgument(std::string("corrupt v2 checkpoint: ") +
                                 what);
}

// Reads a u64 element count and rejects counts that could not possibly fit
// in the remaining bytes (every encoded element consumes at least one
// byte), so a corrupted count can never drive a huge allocation or loop.
Status ReadCount(ByteReader* r, uint64_t* count) {
  FC_RETURN_IF_ERROR(r->U64(count));
  if (*count > r->remaining()) {
    return Corrupt("element count exceeds payload size");
  }
  return Status::OK();
}

void EncodeRecord(const PathRecord& rec, ByteWriter* w) {
  w->U64(rec.dims.size());
  for (NodeId d : rec.dims) w->U32(d);
  w->U64(rec.path.stages.size());
  for (const Stage& s : rec.path.stages) {
    w->U32(s.location);
    w->I64(s.duration);
  }
}

Status DecodeRecord(ByteReader* r, PathRecord* rec) {
  uint64_t num_dims = 0;
  FC_RETURN_IF_ERROR(ReadCount(r, &num_dims));
  rec->dims.clear();
  for (uint64_t i = 0; i < num_dims; ++i) {
    uint32_t d = 0;
    FC_RETURN_IF_ERROR(r->U32(&d));
    rec->dims.push_back(d);
  }
  uint64_t num_stages = 0;
  FC_RETURN_IF_ERROR(ReadCount(r, &num_stages));
  rec->path.stages.clear();
  for (uint64_t i = 0; i < num_stages; ++i) {
    Stage s;
    FC_RETURN_IF_ERROR(r->U32(&s.location));
    FC_RETURN_IF_ERROR(r->I64(&s.duration));
    rec->path.stages.push_back(s);
  }
  return Status::OK();
}

// Optional-ingestor tail shared byte-for-byte by the v1 payload and the v2
// resume section: u8 presence flag, then registrations, open readings,
// watermark, batch count.
void EncodeIngestorTail(const IngestorState* ing, ByteWriter* w) {
  w->U8(ing != nullptr ? 1 : 0);
  if (ing != nullptr) {
    w->U64(ing->registrations.size());
    for (const auto& [epc, dims] : ing->registrations) {
      w->U64(epc);
      w->U64(dims.size());
      for (NodeId d : dims) w->U32(d);
    }
    w->U64(ing->open_readings.size());
    for (const auto& [epc, readings] : ing->open_readings) {
      w->U64(epc);
      w->U64(readings.size());
      for (const RawReading& r : readings) {
        w->U32(r.location);
        w->I64(r.timestamp);
      }
    }
    w->I64(ing->watermark);
    w->U64(ing->batches_processed);
  }
}

// Decoder for the same tail; `corrupt` supplies the version-specific error
// prefix so v1 messages stay exactly as they were.
Status DecodeIngestorTail(ByteReader* r, const PathSchema& s,
                          std::optional<IngestorState>* out,
                          Status (*corrupt)(const char*)) {
  auto read_count = [&](uint64_t* count) -> Status {
    FC_RETURN_IF_ERROR(r->U64(count));
    if (*count > r->remaining()) {
      return corrupt("element count exceeds payload size");
    }
    return Status::OK();
  };

  uint8_t has_ingestor = 0;
  FC_RETURN_IF_ERROR(r->U8(&has_ingestor));
  if (has_ingestor > 1) return corrupt("ingestor flag out of range");
  if (has_ingestor == 0) return Status::OK();

  IngestorState state;
  uint64_t num_regs = 0;
  FC_RETURN_IF_ERROR(read_count(&num_regs));
  for (uint64_t i = 0; i < num_regs; ++i) {
    uint64_t epc = 0;
    FC_RETURN_IF_ERROR(r->U64(&epc));
    uint64_t num_dims = 0;
    FC_RETURN_IF_ERROR(read_count(&num_dims));
    if (num_dims != s.num_dimensions()) {
      return corrupt("registration dimension count mismatch");
    }
    std::vector<NodeId> dims;
    for (uint64_t d = 0; d < num_dims; ++d) {
      uint32_t v = 0;
      FC_RETURN_IF_ERROR(r->U32(&v));
      if (v >= s.dimensions[d].NodeCount()) {
        return corrupt("registration dimension value out of range");
      }
      dims.push_back(v);
    }
    state.registrations[epc] = std::move(dims);
  }
  uint64_t num_open = 0;
  FC_RETURN_IF_ERROR(read_count(&num_open));
  for (uint64_t i = 0; i < num_open; ++i) {
    uint64_t epc = 0;
    FC_RETURN_IF_ERROR(r->U64(&epc));
    uint64_t num_readings = 0;
    FC_RETURN_IF_ERROR(read_count(&num_readings));
    std::vector<RawReading>& readings = state.open_readings[epc];
    for (uint64_t j = 0; j < num_readings; ++j) {
      RawReading reading;
      reading.epc = epc;
      FC_RETURN_IF_ERROR(r->U32(&reading.location));
      FC_RETURN_IF_ERROR(r->I64(&reading.timestamp));
      if (reading.location >= s.locations.NodeCount()) {
        return corrupt("buffered reading location out of range");
      }
      readings.push_back(reading);
    }
  }
  FC_RETURN_IF_ERROR(r->I64(&state.watermark));
  FC_RETURN_IF_ERROR(r->U64(&state.batches_processed));
  *out = std::move(state);
  return Status::OK();
}

}  // namespace

// Serializes FlowGraph node tables verbatim — children order, sorted
// duration counts, and the exception list included — so a restored graph
// renders byte-identically under DumpFlowCube. Reads through the accessor
// API (both storage forms encode identically); decoding accumulates into
// the mutable form and seals the finished graph. Friend of FlowGraph.
struct FlowGraphSerializer {
  static void Encode(const FlowGraph& g, ByteWriter* w) {
    w->U64(g.num_nodes());
    for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
      w->U32(g.location(n));
      w->U32(g.parent(n));
      w->U32(static_cast<uint32_t>(g.depth(n)));
      const auto children = g.children(n);
      w->U64(children.size());
      for (FlowNodeId c : children) w->U32(c);
      w->U32(g.path_count(n));
      w->U32(g.terminate_count(n));
      const auto durations = g.duration_counts(n);
      w->U64(durations.size());
      for (const DurationCount& dc : durations) {
        w->I64(dc.duration);
        w->U32(dc.count);
      }
    }
    w->U64(g.exceptions_.size());
    for (const FlowException& e : g.exceptions_) {
      w->U8(e.kind == FlowException::Kind::kTransition ? 0 : 1);
      w->U64(e.condition.size());
      for (const StageCondition& c : e.condition) {
        w->U32(c.node);
        w->I64(c.duration);
      }
      w->U32(e.node);
      w->U32(e.transition_target);
      w->I64(e.duration_value);
      w->F64(e.global_probability);
      w->F64(e.conditional_probability);
      w->U32(e.condition_support);
    }
  }

  static Status Decode(ByteReader* r, const PathSchema& schema, FlowGraph* g) {
    uint64_t num_nodes = 0;
    FC_RETURN_IF_ERROR(ReadCount(r, &num_nodes));
    if (num_nodes < 1) return Corrupt("flowgraph has no root node");
    g->nodes_.clear();
    g->exceptions_.clear();
    for (uint64_t i = 0; i < num_nodes; ++i) {
      FlowGraph::Node n;
      uint32_t depth = 0;
      FC_RETURN_IF_ERROR(r->U32(&n.location));
      FC_RETURN_IF_ERROR(r->U32(&n.parent));
      FC_RETURN_IF_ERROR(r->U32(&depth));
      n.depth = static_cast<int>(depth);
      if (i == 0) {
        if (n.location != kInvalidNode || n.parent != FlowGraph::kRoot ||
            n.depth != 0) {
          return Corrupt("malformed flowgraph root");
        }
      } else {
        if (n.location >= schema.locations.NodeCount()) {
          return Corrupt("flowgraph node location out of range");
        }
        // Nodes are created parents-first, so a well-formed table has
        // parent < node < children — which also rules out cycles.
        if (n.parent >= i) return Corrupt("flowgraph parent out of order");
        if (n.depth != g->nodes_[n.parent].depth + 1) {
          return Corrupt("flowgraph node depth mismatch");
        }
      }
      uint64_t num_children = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_children));
      for (uint64_t c = 0; c < num_children; ++c) {
        uint32_t child = 0;
        FC_RETURN_IF_ERROR(r->U32(&child));
        if (child <= i || child >= num_nodes) {
          return Corrupt("flowgraph child id out of order");
        }
        n.children.push_back(child);
      }
      FC_RETURN_IF_ERROR(r->U32(&n.path_count));
      FC_RETURN_IF_ERROR(r->U32(&n.terminate_count));
      uint64_t num_durations = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_durations));
      Duration prev = std::numeric_limits<Duration>::min();
      for (uint64_t d = 0; d < num_durations; ++d) {
        Duration value = 0;
        uint32_t count = 0;
        FC_RETURN_IF_ERROR(r->I64(&value));
        FC_RETURN_IF_ERROR(r->U32(&count));
        if (d > 0 && value <= prev) {
          return Corrupt("flowgraph duration counts out of order");
        }
        prev = value;
        n.duration_counts.push_back(DurationCount{value, count});
      }
      g->nodes_.push_back(std::move(n));
    }
    uint64_t num_exceptions = 0;
    FC_RETURN_IF_ERROR(ReadCount(r, &num_exceptions));
    for (uint64_t i = 0; i < num_exceptions; ++i) {
      FlowException e;
      uint8_t kind = 0;
      FC_RETURN_IF_ERROR(r->U8(&kind));
      if (kind > 1) return Corrupt("unknown exception kind");
      e.kind = kind == 0 ? FlowException::Kind::kTransition
                         : FlowException::Kind::kDuration;
      uint64_t num_conditions = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_conditions));
      for (uint64_t c = 0; c < num_conditions; ++c) {
        StageCondition cond;
        FC_RETURN_IF_ERROR(r->U32(&cond.node));
        FC_RETURN_IF_ERROR(r->I64(&cond.duration));
        if (cond.node >= num_nodes) {
          return Corrupt("exception condition node out of range");
        }
        e.condition.push_back(cond);
      }
      FC_RETURN_IF_ERROR(r->U32(&e.node));
      FC_RETURN_IF_ERROR(r->U32(&e.transition_target));
      FC_RETURN_IF_ERROR(r->I64(&e.duration_value));
      FC_RETURN_IF_ERROR(r->F64(&e.global_probability));
      FC_RETURN_IF_ERROR(r->F64(&e.conditional_probability));
      FC_RETURN_IF_ERROR(r->U32(&e.condition_support));
      if (e.node >= num_nodes) return Corrupt("exception node out of range");
      if (e.transition_target != FlowGraph::kTerminate &&
          e.transition_target >= num_nodes) {
        return Corrupt("exception transition target out of range");
      }
      if (!std::isfinite(e.global_probability) ||
          !std::isfinite(e.conditional_probability)) {
        return Corrupt("exception probability is not finite");
      }
      g->exceptions_.push_back(std::move(e));
    }
    // Cube-resident graphs are sealed everywhere (batch build, stream
    // re-seal, restore); sealing here keeps the restored cube's layout —
    // and MemoryUsage accounting — identical to a freshly built one.
    g->Seal();
    return Status::OK();
  }
};

void EncodeFlowGraph(const FlowGraph& graph, ByteWriter* writer) {
  FlowGraphSerializer::Encode(graph, writer);
}

Status DecodeFlowGraph(ByteReader* reader, const PathSchema& schema,
                       FlowGraph* graph) {
  return FlowGraphSerializer::Decode(reader, schema, graph);
}

// Friend of IncrementalMaintainer: reads its private indexes to encode, and
// rebuilds them on decode by re-appending the live records (index rebuild is
// linear — no mining replay; the cube's cells install verbatim).
class CheckpointCodec {
 public:
  // The fingerprint recipe itself now lives in store/format.cc, shared by
  // the v1 payload and the v2 header; the byte values are unchanged, so
  // existing checkpoints keep validating.
  static uint32_t ConfigFingerprint(const PathSchema& schema,
                                    const FlowCubePlan& plan,
                                    const IncrementalMaintainerOptions& opts) {
    return CheckpointConfigFingerprint(schema, plan, opts);
  }

  static void EncodePayload(const IncrementalMaintainer& m,
                            const IngestorState* ing, ByteWriter* w) {
    w->U32(ConfigFingerprint(*m.schema_, m.plan_, m.options_));

    const std::vector<PathRecord> live = m.LiveRecords();
    w->U64(live.size());
    for (const PathRecord& rec : live) EncodeRecord(rec, w);

    // Cells sorted by coordinates within each cuboid, so re-encoding a
    // restored pipeline reproduces the checkpoint byte-for-byte regardless
    // of hash-map iteration order.
    for (size_t i = 0; i < m.plan_.item_levels.size(); ++i) {
      for (size_t p = 0; p < m.plan_.path_levels.size(); ++p) {
        const Cuboid& cuboid = m.cube_.cuboid(i, p);
        const std::vector<const FlowCell*> cells = cuboid.SortedCells();
        w->U32(static_cast<uint32_t>(i));
        w->U32(static_cast<uint32_t>(p));
        w->U64(cells.size());
        for (const FlowCell* cell : cells) {
          w->U64(cell->dims.size());
          for (ItemId item : cell->dims) w->U32(item);
          w->U32(cell->support);
          w->U8(cell->redundant ? 1 : 0);
          FlowGraphSerializer::Encode(cell->graph, w);
        }
      }
    }

    EncodeIngestorTail(ing, w);
  }

  // The v2 resume section: live records then the ingestor tail. The cube
  // itself lives in the meta/arena sections (store/cube_codec.h).
  static void EncodeResume(const IncrementalMaintainer& m,
                           const IngestorState* ing, ByteWriter* w) {
    const std::vector<PathRecord> live = m.LiveRecords();
    w->U64(live.size());
    for (const PathRecord& rec : live) EncodeRecord(rec, w);
    EncodeIngestorTail(ing, w);
  }

  static Result<RestoredPipeline> DecodePayload(
      ByteReader* r, SchemaPtr schema, FlowCubePlan plan,
      IncrementalMaintainerOptions options) {
    uint32_t fingerprint = 0;
    FC_RETURN_IF_ERROR(r->U32(&fingerprint));
    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        std::move(schema), std::move(plan), options);
    if (!created.ok()) return created.status();
    IncrementalMaintainer m = std::move(created.value());
    if (fingerprint != ConfigFingerprint(*m.schema_, m.plan_, m.options_)) {
      return Status::InvalidArgument(
          "checkpoint was written with a different schema, plan, or options");
    }

    // Live records: validated, then re-appended through the same code path
    // as Apply, which rebuilds the transaction, aggregation, and membership
    // indexes exactly (linear in the data — no mining runs on restore).
    uint64_t num_records = 0;
    FC_RETURN_IF_ERROR(ReadCount(r, &num_records));
    std::vector<IncrementalMaintainer::KeySet> scratch_dirty(
        m.plan_.item_levels.size());
    for (uint64_t i = 0; i < num_records; ++i) {
      PathRecord rec;
      FC_RETURN_IF_ERROR(DecodeRecord(r, &rec));
      if (const Status s = ValidateRecord(*m.schema_, rec); !s.ok()) {
        return Corrupt("live record fails schema validation");
      }
      m.AppendToIndexes(rec, &scratch_dirty);
    }

    // Cube cells, installed verbatim after cross-checking each against the
    // freshly rebuilt membership index.
    for (size_t i = 0; i < m.plan_.item_levels.size(); ++i) {
      for (size_t p = 0; p < m.plan_.path_levels.size(); ++p) {
        uint32_t il_index = 0;
        uint32_t pl_index = 0;
        FC_RETURN_IF_ERROR(r->U32(&il_index));
        FC_RETURN_IF_ERROR(r->U32(&pl_index));
        if (il_index != i || pl_index != p) {
          return Corrupt("cuboid out of order");
        }
        uint64_t num_cells = 0;
        FC_RETURN_IF_ERROR(ReadCount(r, &num_cells));
        Cuboid& cuboid = m.cube_.mutable_cuboid(i, p);
        for (uint64_t c = 0; c < num_cells; ++c) {
          FlowCell cell;
          uint64_t num_items = 0;
          FC_RETURN_IF_ERROR(ReadCount(r, &num_items));
          for (uint64_t it = 0; it < num_items; ++it) {
            uint32_t item = 0;
            FC_RETURN_IF_ERROR(r->U32(&item));
            cell.dims.push_back(item);
          }
          FC_RETURN_IF_ERROR(r->U32(&cell.support));
          uint8_t redundant = 0;
          FC_RETURN_IF_ERROR(r->U8(&redundant));
          if (redundant > 1) return Corrupt("redundancy flag out of range");
          cell.redundant = redundant == 1;
          FC_RETURN_IF_ERROR(
              FlowGraphSerializer::Decode(r, *m.schema_, &cell.graph));

          const auto member = m.cells_[i].find(cell.dims);
          if (member == m.cells_[i].end() ||
              member->second.tids.size() != cell.support) {
            return Corrupt("cell support disagrees with the live records");
          }
          const bool qualifies =
              cell.dims.empty()
                  ? cell.support >= 1
                  : cell.support >= m.options_.build.min_support;
          if (!qualifies) {
            return Corrupt("cell below the iceberg threshold");
          }
          if (cell.graph.total_paths() != cell.support) {
            return Corrupt("flowgraph path count disagrees with support");
          }
          if (cuboid.Find(cell.dims) != nullptr) {
            return Corrupt("duplicate cell in cuboid");
          }
          member->second.materialized = true;
          cuboid.Insert(std::move(cell));
        }
        if (p == 0) {
          // Converse check: every qualifying membership key must have been
          // installed, or the restored cube would silently miss cells.
          for (const auto& [key, state] : m.cells_[i]) {
            const bool qualifies =
                key.empty() ? !state.tids.empty()
                            : state.tids.size() >=
                                  m.options_.build.min_support;
            if (qualifies && !state.materialized) {
              return Corrupt("cube is missing a qualifying cell");
            }
          }
        }
      }
    }

    RestoredPipeline restored{std::move(m), std::nullopt,
                              kCheckpointFormatV1};
    FC_RETURN_IF_ERROR(DecodeIngestorTail(
        r, *restored.maintainer.schema_, &restored.ingestor_state, &Corrupt));

    if (!r->AtEnd()) return Corrupt("trailing bytes after payload");
    return restored;
  }

  // --- v2 (store/format.h layout) -----------------------------------------

  static std::string EncodeV2(const IncrementalMaintainer& m,
                              const IngestorState* ing) {
    ByteWriter meta;
    ArenaWriter arena;
    EncodeCubeSections(m.cube_, &meta, &arena);
    ByteWriter resume;
    EncodeResume(m, ing, &resume);

    FcspV2Header h;
    h.config_fingerprint = ConfigFingerprint(*m.schema_, m.plan_, m.options_);
    h.meta_offset = kFcspV2HeaderSize;
    h.meta_size = meta.size();
    h.meta_crc = Crc32(meta.data());
    h.arena_offset =
        FcspAlignUp(kFcspV2HeaderSize + meta.size(), kFcspArenaAlignment);
    h.arena_size = arena.size();
    h.arena_crc = Crc32(arena.data());
    h.resume_offset = h.arena_offset + h.arena_size;
    h.resume_size = resume.size();
    h.resume_crc = Crc32(resume.data());
    h.live_records = m.live_record_count();
    h.file_size = h.resume_offset + h.resume_size;

    std::string out;
    out.reserve(h.file_size);
    out += EncodeV2Header(h);
    out += meta.data();
    out.resize(h.arena_offset, '\0');  // canonical zero padding
    out += arena.data();
    out += resume.data();
    FC_CHECK(out.size() == h.file_size);
    return out;
  }

  // Strict v2 restore: every CRC verified, canonical layout enforced, the
  // cube rebuilt as views into a pinned copy of the file image, live
  // records replayed through the same index path as Apply, and every
  // maintainer-side invariant cross-checked exactly as in v1.
  static Result<RestoredPipeline> DecodeV2(
      std::string_view bytes, SchemaPtr schema, FlowCubePlan plan,
      IncrementalMaintainerOptions options) {
    FcspV2Header h;
    FC_RETURN_IF_ERROR(ValidateV2Header(bytes, &h));
    if (Crc32(bytes.substr(h.meta_offset, h.meta_size)) != h.meta_crc) {
      return CorruptV2("meta checksum mismatch");
    }
    if (Crc32(bytes.substr(h.arena_offset, h.arena_size)) != h.arena_crc) {
      return CorruptV2("arena checksum mismatch");
    }
    if (h.resume_size == 0) {
      return Status::InvalidArgument(
          "v2 checkpoint has no resume section (cube-only file)");
    }
    if (Crc32(bytes.substr(h.resume_offset, h.resume_size)) != h.resume_crc) {
      return CorruptV2("resume checksum mismatch");
    }

    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        std::move(schema), std::move(plan), options);
    if (!created.ok()) return created.status();
    IncrementalMaintainer m = std::move(created.value());
    if (h.config_fingerprint !=
        ConfigFingerprint(*m.schema_, m.plan_, m.options_)) {
      return Status::InvalidArgument(
          "checkpoint was written with a different schema, plan, or options");
    }

    // Pin a copy of the image; the restored graphs' columns view it, so no
    // per-node structures are re-allocated for unchanged cells.
    auto buffer = std::make_shared<const std::string>(bytes);
    const std::string_view view(*buffer);
    Result<FlowCube> built = BuildCubeFromSections(
        view.substr(h.meta_offset, h.meta_size),
        view.substr(h.arena_offset, h.arena_size), buffer, m.schema_,
        m.plan_, m.options_);
    if (!built.ok()) return built.status();

    // Resume section: live records replayed through AppendToIndexes.
    ByteReader rr(view.substr(h.resume_offset, h.resume_size));
    uint64_t num_records = 0;
    FC_RETURN_IF_ERROR(rr.U64(&num_records));
    if (num_records != h.live_records) {
      return CorruptV2("live record count disagrees with the header");
    }
    std::vector<IncrementalMaintainer::KeySet> scratch_dirty(
        m.plan_.item_levels.size());
    for (uint64_t i = 0; i < num_records; ++i) {
      PathRecord rec;
      if (!DecodeRecord(&rr, &rec).ok()) {
        return CorruptV2("malformed live record");
      }
      if (const Status s = ValidateRecord(*m.schema_, rec); !s.ok()) {
        return CorruptV2("live record fails schema validation");
      }
      m.AppendToIndexes(rec, &scratch_dirty);
    }

    // Install the cells into the maintainer's cube, cross-checking each
    // against the rebuilt membership index. The cells (and their slot
    // tables) are copied into owned cuboids so the maintainer can keep
    // mutating them, but each cell's flowgraph still SHARES the pinned
    // image — continuation replaces only the cells a future batch dirties.
    for (size_t i = 0; i < m.plan_.item_levels.size(); ++i) {
      for (size_t p = 0; p < m.plan_.path_levels.size(); ++p) {
        const Cuboid& src = built.value().cuboid(i, p);
        Cuboid& dst = m.cube_.mutable_cuboid(i, p);
        dst.Reserve(src.size());
        Status install = Status::OK();
        src.ForEach([&](const FlowCell& cell) {
          if (!install.ok()) return;
          const auto member = m.cells_[i].find(cell.dims);
          if (member == m.cells_[i].end() ||
              member->second.tids.size() != cell.support) {
            install =
                CorruptV2("cell support disagrees with the live records");
            return;
          }
          member->second.materialized = true;
          dst.Insert(cell);
        });
        FC_RETURN_IF_ERROR(install);
        if (p == 0) {
          for (const auto& [key, state] : m.cells_[i]) {
            const bool qualifies =
                key.empty() ? !state.tids.empty()
                            : state.tids.size() >=
                                  m.options_.build.min_support;
            if (qualifies && !state.materialized) {
              return CorruptV2("cube is missing a qualifying cell");
            }
          }
        }
      }
    }

    RestoredPipeline restored{std::move(m), std::nullopt,
                              kCheckpointFormatV2};
    FC_RETURN_IF_ERROR(DecodeIngestorTail(&rr, *restored.maintainer.schema_,
                                          &restored.ingestor_state,
                                          &CorruptV2));
    if (!rr.AtEnd()) {
      return CorruptV2("trailing bytes after resume section");
    }
    return restored;
  }
};

uint32_t DefaultCheckpointFormat() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("FLOWCUBE_CHECKPOINT_FORMAT");
  if (v != nullptr && std::strcmp(v, "1") == 0) return kCheckpointFormatV1;
  return kCheckpointFormatV2;
}

std::string EncodeCheckpoint(const IncrementalMaintainer& maintainer,
                             const IngestorState* ingestor_state,
                             uint32_t format) {
  TraceSpan span("stream.checkpoint.save");
  if (format == 0) format = DefaultCheckpointFormat();
  FC_CHECK_MSG(
      format == kCheckpointFormatV1 || format == kCheckpointFormatV2,
      "unknown checkpoint format");

  std::string bytes;
  if (format == kCheckpointFormatV2) {
    bytes = CheckpointCodec::EncodeV2(maintainer, ingestor_state);
  } else {
    ByteWriter payload;
    CheckpointCodec::EncodePayload(maintainer, ingestor_state, &payload);
    ByteWriter out;
    out.U32(kCheckpointMagic);
    out.U32(kCheckpointVersion);
    out.U32(Crc32(payload.data()));
    out.Str(payload.data());  // u64 payload size + payload bytes
    bytes = out.data();
  }
  MetricRegistry& reg = MetricRegistry::Global();
  static Counter& m_saves = reg.counter("stream.checkpoint.saves");
  static Counter& m_bytes = reg.counter("stream.checkpoint.bytes_written");
  m_saves.Increment();
  m_bytes.Add(bytes.size());
  return bytes;
}

Result<RestoredPipeline> DecodeCheckpoint(
    std::string_view bytes, SchemaPtr schema, FlowCubePlan plan,
    IncrementalMaintainerOptions options) {
  TraceSpan span("stream.checkpoint.restore");
  ByteReader r(bytes);
  uint32_t magic = 0;
  if (!r.U32(&magic).ok() || magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a flowcube checkpoint (bad magic)");
  }
  uint32_t version = 0;
  FC_RETURN_IF_ERROR(r.U32(&version));
  if (version != kCheckpointFormatV1 && version != kCheckpointFormatV2) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }

  Result<RestoredPipeline> restored = Status::OK();
  if (version == kCheckpointFormatV2) {
    restored = CheckpointCodec::DecodeV2(bytes, std::move(schema),
                                         std::move(plan), options);
  } else {
    uint32_t crc = 0;
    FC_RETURN_IF_ERROR(r.U32(&crc));
    std::string payload;
    if (!r.Str(&payload).ok()) {
      return Corrupt("payload truncated");
    }
    if (!r.AtEnd()) return Corrupt("trailing bytes after payload");
    if (Crc32(payload) != crc) {
      return Corrupt("payload checksum mismatch");
    }
    ByteReader pr(payload);
    restored = CheckpointCodec::DecodePayload(&pr, std::move(schema),
                                              std::move(plan), options);
  }
  if (restored.ok()) {
    MetricRegistry::Global().counter("stream.checkpoint.restores").Increment();
  }
  return restored;
}

Status SaveCheckpoint(const IncrementalMaintainer& maintainer,
                      const IngestorState* ingestor_state,
                      const std::string& filename, uint32_t format) {
  const std::string bytes =
      EncodeCheckpoint(maintainer, ingestor_state, format);
  std::ofstream out(filename, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + filename + " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good() ? Status::OK()
                    : Status::Internal("checkpoint write failed");
}

Result<RestoredPipeline> LoadCheckpoint(const std::string& filename,
                                        SchemaPtr schema, FlowCubePlan plan,
                                        IncrementalMaintainerOptions options) {
  std::ifstream in(filename, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + filename);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("checkpoint read failed");
  }
  return DecodeCheckpoint(buffer.str(), std::move(schema), std::move(plan),
                          options);
}

}  // namespace flowcube
