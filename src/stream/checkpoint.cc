#include "stream/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "flowgraph/flowgraph.h"
#include "io/binary_io.h"
#include "path/path_database.h"

namespace flowcube {

namespace {

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt checkpoint: ") + what);
}

// Reads a u64 element count and rejects counts that could not possibly fit
// in the remaining bytes (every encoded element consumes at least one
// byte), so a corrupted count can never drive a huge allocation or loop.
Status ReadCount(ByteReader* r, uint64_t* count) {
  FC_RETURN_IF_ERROR(r->U64(count));
  if (*count > r->remaining()) {
    return Corrupt("element count exceeds payload size");
  }
  return Status::OK();
}

void EncodeRecord(const PathRecord& rec, ByteWriter* w) {
  w->U64(rec.dims.size());
  for (NodeId d : rec.dims) w->U32(d);
  w->U64(rec.path.stages.size());
  for (const Stage& s : rec.path.stages) {
    w->U32(s.location);
    w->I64(s.duration);
  }
}

Status DecodeRecord(ByteReader* r, PathRecord* rec) {
  uint64_t num_dims = 0;
  FC_RETURN_IF_ERROR(ReadCount(r, &num_dims));
  rec->dims.clear();
  for (uint64_t i = 0; i < num_dims; ++i) {
    uint32_t d = 0;
    FC_RETURN_IF_ERROR(r->U32(&d));
    rec->dims.push_back(d);
  }
  uint64_t num_stages = 0;
  FC_RETURN_IF_ERROR(ReadCount(r, &num_stages));
  rec->path.stages.clear();
  for (uint64_t i = 0; i < num_stages; ++i) {
    Stage s;
    FC_RETURN_IF_ERROR(r->U32(&s.location));
    FC_RETURN_IF_ERROR(r->I64(&s.duration));
    rec->path.stages.push_back(s);
  }
  return Status::OK();
}

}  // namespace

// Serializes FlowGraph node tables verbatim — children order, sorted
// duration counts, and the exception list included — so a restored graph
// renders byte-identically under DumpFlowCube. Reads through the accessor
// API (both storage forms encode identically); decoding accumulates into
// the mutable form and seals the finished graph. Friend of FlowGraph.
struct FlowGraphSerializer {
  static void Encode(const FlowGraph& g, ByteWriter* w) {
    w->U64(g.num_nodes());
    for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
      w->U32(g.location(n));
      w->U32(g.parent(n));
      w->U32(static_cast<uint32_t>(g.depth(n)));
      const auto children = g.children(n);
      w->U64(children.size());
      for (FlowNodeId c : children) w->U32(c);
      w->U32(g.path_count(n));
      w->U32(g.terminate_count(n));
      const auto durations = g.duration_counts(n);
      w->U64(durations.size());
      for (const DurationCount& dc : durations) {
        w->I64(dc.duration);
        w->U32(dc.count);
      }
    }
    w->U64(g.exceptions_.size());
    for (const FlowException& e : g.exceptions_) {
      w->U8(e.kind == FlowException::Kind::kTransition ? 0 : 1);
      w->U64(e.condition.size());
      for (const StageCondition& c : e.condition) {
        w->U32(c.node);
        w->I64(c.duration);
      }
      w->U32(e.node);
      w->U32(e.transition_target);
      w->I64(e.duration_value);
      w->F64(e.global_probability);
      w->F64(e.conditional_probability);
      w->U32(e.condition_support);
    }
  }

  static Status Decode(ByteReader* r, const PathSchema& schema, FlowGraph* g) {
    uint64_t num_nodes = 0;
    FC_RETURN_IF_ERROR(ReadCount(r, &num_nodes));
    if (num_nodes < 1) return Corrupt("flowgraph has no root node");
    g->nodes_.clear();
    g->exceptions_.clear();
    for (uint64_t i = 0; i < num_nodes; ++i) {
      FlowGraph::Node n;
      uint32_t depth = 0;
      FC_RETURN_IF_ERROR(r->U32(&n.location));
      FC_RETURN_IF_ERROR(r->U32(&n.parent));
      FC_RETURN_IF_ERROR(r->U32(&depth));
      n.depth = static_cast<int>(depth);
      if (i == 0) {
        if (n.location != kInvalidNode || n.parent != FlowGraph::kRoot ||
            n.depth != 0) {
          return Corrupt("malformed flowgraph root");
        }
      } else {
        if (n.location >= schema.locations.NodeCount()) {
          return Corrupt("flowgraph node location out of range");
        }
        // Nodes are created parents-first, so a well-formed table has
        // parent < node < children — which also rules out cycles.
        if (n.parent >= i) return Corrupt("flowgraph parent out of order");
        if (n.depth != g->nodes_[n.parent].depth + 1) {
          return Corrupt("flowgraph node depth mismatch");
        }
      }
      uint64_t num_children = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_children));
      for (uint64_t c = 0; c < num_children; ++c) {
        uint32_t child = 0;
        FC_RETURN_IF_ERROR(r->U32(&child));
        if (child <= i || child >= num_nodes) {
          return Corrupt("flowgraph child id out of order");
        }
        n.children.push_back(child);
      }
      FC_RETURN_IF_ERROR(r->U32(&n.path_count));
      FC_RETURN_IF_ERROR(r->U32(&n.terminate_count));
      uint64_t num_durations = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_durations));
      Duration prev = std::numeric_limits<Duration>::min();
      for (uint64_t d = 0; d < num_durations; ++d) {
        Duration value = 0;
        uint32_t count = 0;
        FC_RETURN_IF_ERROR(r->I64(&value));
        FC_RETURN_IF_ERROR(r->U32(&count));
        if (d > 0 && value <= prev) {
          return Corrupt("flowgraph duration counts out of order");
        }
        prev = value;
        n.duration_counts.push_back(DurationCount{value, count});
      }
      g->nodes_.push_back(std::move(n));
    }
    uint64_t num_exceptions = 0;
    FC_RETURN_IF_ERROR(ReadCount(r, &num_exceptions));
    for (uint64_t i = 0; i < num_exceptions; ++i) {
      FlowException e;
      uint8_t kind = 0;
      FC_RETURN_IF_ERROR(r->U8(&kind));
      if (kind > 1) return Corrupt("unknown exception kind");
      e.kind = kind == 0 ? FlowException::Kind::kTransition
                         : FlowException::Kind::kDuration;
      uint64_t num_conditions = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_conditions));
      for (uint64_t c = 0; c < num_conditions; ++c) {
        StageCondition cond;
        FC_RETURN_IF_ERROR(r->U32(&cond.node));
        FC_RETURN_IF_ERROR(r->I64(&cond.duration));
        if (cond.node >= num_nodes) {
          return Corrupt("exception condition node out of range");
        }
        e.condition.push_back(cond);
      }
      FC_RETURN_IF_ERROR(r->U32(&e.node));
      FC_RETURN_IF_ERROR(r->U32(&e.transition_target));
      FC_RETURN_IF_ERROR(r->I64(&e.duration_value));
      FC_RETURN_IF_ERROR(r->F64(&e.global_probability));
      FC_RETURN_IF_ERROR(r->F64(&e.conditional_probability));
      FC_RETURN_IF_ERROR(r->U32(&e.condition_support));
      if (e.node >= num_nodes) return Corrupt("exception node out of range");
      if (e.transition_target != FlowGraph::kTerminate &&
          e.transition_target >= num_nodes) {
        return Corrupt("exception transition target out of range");
      }
      if (!std::isfinite(e.global_probability) ||
          !std::isfinite(e.conditional_probability)) {
        return Corrupt("exception probability is not finite");
      }
      g->exceptions_.push_back(std::move(e));
    }
    // Cube-resident graphs are sealed everywhere (batch build, stream
    // re-seal, restore); sealing here keeps the restored cube's layout —
    // and MemoryUsage accounting — identical to a freshly built one.
    g->Seal();
    return Status::OK();
  }
};

void EncodeFlowGraph(const FlowGraph& graph, ByteWriter* writer) {
  FlowGraphSerializer::Encode(graph, writer);
}

Status DecodeFlowGraph(ByteReader* reader, const PathSchema& schema,
                       FlowGraph* graph) {
  return FlowGraphSerializer::Decode(reader, schema, graph);
}

// Friend of IncrementalMaintainer: reads its private indexes to encode, and
// rebuilds them on decode by re-appending the live records (index rebuild is
// linear — no mining replay; the cube's cells install verbatim).
class CheckpointCodec {
 public:
  static uint32_t ConfigFingerprint(const PathSchema& schema,
                                    const FlowCubePlan& plan,
                                    const IncrementalMaintainerOptions& opts) {
    ByteWriter w;
    w.U64(schema.num_dimensions());
    for (const ConceptHierarchy& h : schema.dimensions) {
      w.U64(h.NodeCount());
      w.U32(static_cast<uint32_t>(h.MaxLevel()));
    }
    w.U64(schema.locations.NodeCount());
    w.U32(static_cast<uint32_t>(schema.locations.MaxLevel()));
    w.U64(schema.durations.factors().size());
    for (int64_t f : schema.durations.factors()) w.I64(f);

    w.U64(plan.mining.dim_levels.size());
    for (const std::vector<int>& levels : plan.mining.dim_levels) {
      w.U64(levels.size());
      for (int l : levels) w.U32(static_cast<uint32_t>(l));
    }
    w.U64(plan.mining.cuts.size());
    for (const LocationCut& cut : plan.mining.cuts) {
      w.U64(cut.nodes().size());
      for (NodeId n : cut.nodes()) w.U32(n);
    }
    w.U64(plan.mining.path_levels.size());
    for (const PathLevel& pl : plan.mining.path_levels) {
      w.U32(static_cast<uint32_t>(pl.cut_index));
      w.U32(static_cast<uint32_t>(pl.duration_level));
    }
    w.U64(plan.item_levels.size());
    for (const ItemLevel& il : plan.item_levels) {
      w.U64(il.levels.size());
      for (int l : il.levels) w.U32(static_cast<uint32_t>(l));
    }
    w.U64(plan.path_levels.size());
    for (int p : plan.path_levels) w.U32(static_cast<uint32_t>(p));

    w.U32(opts.build.min_support);
    w.U8(opts.build.compute_exceptions ? 1 : 0);
    w.F64(opts.build.exceptions.epsilon);
    w.U32(opts.build.exceptions.min_support);
    w.U8(opts.build.mark_redundant ? 1 : 0);
    w.F64(opts.build.redundancy_tau);
    w.U8(static_cast<uint8_t>(opts.build.similarity.kind));
    w.F64(opts.build.similarity.kl_smoothing);
    w.U32(opts.window_records);
    return Crc32(w.data());
  }

  static void EncodePayload(const IncrementalMaintainer& m,
                            const IngestorState* ing, ByteWriter* w) {
    w->U32(ConfigFingerprint(*m.schema_, m.plan_, m.options_));

    const std::vector<PathRecord> live = m.LiveRecords();
    w->U64(live.size());
    for (const PathRecord& rec : live) EncodeRecord(rec, w);

    // Cells sorted by coordinates within each cuboid, so re-encoding a
    // restored pipeline reproduces the checkpoint byte-for-byte regardless
    // of hash-map iteration order.
    for (size_t i = 0; i < m.plan_.item_levels.size(); ++i) {
      for (size_t p = 0; p < m.plan_.path_levels.size(); ++p) {
        const Cuboid& cuboid = m.cube_.cuboid(i, p);
        const std::vector<const FlowCell*> cells = cuboid.SortedCells();
        w->U32(static_cast<uint32_t>(i));
        w->U32(static_cast<uint32_t>(p));
        w->U64(cells.size());
        for (const FlowCell* cell : cells) {
          w->U64(cell->dims.size());
          for (ItemId item : cell->dims) w->U32(item);
          w->U32(cell->support);
          w->U8(cell->redundant ? 1 : 0);
          FlowGraphSerializer::Encode(cell->graph, w);
        }
      }
    }

    w->U8(ing != nullptr ? 1 : 0);
    if (ing != nullptr) {
      w->U64(ing->registrations.size());
      for (const auto& [epc, dims] : ing->registrations) {
        w->U64(epc);
        w->U64(dims.size());
        for (NodeId d : dims) w->U32(d);
      }
      w->U64(ing->open_readings.size());
      for (const auto& [epc, readings] : ing->open_readings) {
        w->U64(epc);
        w->U64(readings.size());
        for (const RawReading& r : readings) {
          w->U32(r.location);
          w->I64(r.timestamp);
        }
      }
      w->I64(ing->watermark);
      w->U64(ing->batches_processed);
    }
  }

  static Result<RestoredPipeline> DecodePayload(
      ByteReader* r, SchemaPtr schema, FlowCubePlan plan,
      IncrementalMaintainerOptions options) {
    uint32_t fingerprint = 0;
    FC_RETURN_IF_ERROR(r->U32(&fingerprint));
    Result<IncrementalMaintainer> created = IncrementalMaintainer::Create(
        std::move(schema), std::move(plan), options);
    if (!created.ok()) return created.status();
    IncrementalMaintainer m = std::move(created.value());
    if (fingerprint != ConfigFingerprint(*m.schema_, m.plan_, m.options_)) {
      return Status::InvalidArgument(
          "checkpoint was written with a different schema, plan, or options");
    }

    // Live records: validated, then re-appended through the same code path
    // as Apply, which rebuilds the transaction, aggregation, and membership
    // indexes exactly (linear in the data — no mining runs on restore).
    uint64_t num_records = 0;
    FC_RETURN_IF_ERROR(ReadCount(r, &num_records));
    std::vector<IncrementalMaintainer::KeySet> scratch_dirty(
        m.plan_.item_levels.size());
    for (uint64_t i = 0; i < num_records; ++i) {
      PathRecord rec;
      FC_RETURN_IF_ERROR(DecodeRecord(r, &rec));
      if (const Status s = ValidateRecord(*m.schema_, rec); !s.ok()) {
        return Corrupt("live record fails schema validation");
      }
      m.AppendToIndexes(rec, &scratch_dirty);
    }

    // Cube cells, installed verbatim after cross-checking each against the
    // freshly rebuilt membership index.
    for (size_t i = 0; i < m.plan_.item_levels.size(); ++i) {
      for (size_t p = 0; p < m.plan_.path_levels.size(); ++p) {
        uint32_t il_index = 0;
        uint32_t pl_index = 0;
        FC_RETURN_IF_ERROR(r->U32(&il_index));
        FC_RETURN_IF_ERROR(r->U32(&pl_index));
        if (il_index != i || pl_index != p) {
          return Corrupt("cuboid out of order");
        }
        uint64_t num_cells = 0;
        FC_RETURN_IF_ERROR(ReadCount(r, &num_cells));
        Cuboid& cuboid = m.cube_.mutable_cuboid(i, p);
        for (uint64_t c = 0; c < num_cells; ++c) {
          FlowCell cell;
          uint64_t num_items = 0;
          FC_RETURN_IF_ERROR(ReadCount(r, &num_items));
          for (uint64_t it = 0; it < num_items; ++it) {
            uint32_t item = 0;
            FC_RETURN_IF_ERROR(r->U32(&item));
            cell.dims.push_back(item);
          }
          FC_RETURN_IF_ERROR(r->U32(&cell.support));
          uint8_t redundant = 0;
          FC_RETURN_IF_ERROR(r->U8(&redundant));
          if (redundant > 1) return Corrupt("redundancy flag out of range");
          cell.redundant = redundant == 1;
          FC_RETURN_IF_ERROR(
              FlowGraphSerializer::Decode(r, *m.schema_, &cell.graph));

          const auto member = m.cells_[i].find(cell.dims);
          if (member == m.cells_[i].end() ||
              member->second.tids.size() != cell.support) {
            return Corrupt("cell support disagrees with the live records");
          }
          const bool qualifies =
              cell.dims.empty()
                  ? cell.support >= 1
                  : cell.support >= m.options_.build.min_support;
          if (!qualifies) {
            return Corrupt("cell below the iceberg threshold");
          }
          if (cell.graph.total_paths() != cell.support) {
            return Corrupt("flowgraph path count disagrees with support");
          }
          if (cuboid.Find(cell.dims) != nullptr) {
            return Corrupt("duplicate cell in cuboid");
          }
          member->second.materialized = true;
          cuboid.Insert(std::move(cell));
        }
        if (p == 0) {
          // Converse check: every qualifying membership key must have been
          // installed, or the restored cube would silently miss cells.
          for (const auto& [key, state] : m.cells_[i]) {
            const bool qualifies =
                key.empty() ? !state.tids.empty()
                            : state.tids.size() >=
                                  m.options_.build.min_support;
            if (qualifies && !state.materialized) {
              return Corrupt("cube is missing a qualifying cell");
            }
          }
        }
      }
    }

    RestoredPipeline restored{std::move(m), std::nullopt};

    uint8_t has_ingestor = 0;
    FC_RETURN_IF_ERROR(r->U8(&has_ingestor));
    if (has_ingestor > 1) return Corrupt("ingestor flag out of range");
    if (has_ingestor == 1) {
      IngestorState state;
      const PathSchema& s = *restored.maintainer.schema_;
      uint64_t num_regs = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_regs));
      for (uint64_t i = 0; i < num_regs; ++i) {
        uint64_t epc = 0;
        FC_RETURN_IF_ERROR(r->U64(&epc));
        uint64_t num_dims = 0;
        FC_RETURN_IF_ERROR(ReadCount(r, &num_dims));
        if (num_dims != s.num_dimensions()) {
          return Corrupt("registration dimension count mismatch");
        }
        std::vector<NodeId> dims;
        for (uint64_t d = 0; d < num_dims; ++d) {
          uint32_t v = 0;
          FC_RETURN_IF_ERROR(r->U32(&v));
          if (v >= s.dimensions[d].NodeCount()) {
            return Corrupt("registration dimension value out of range");
          }
          dims.push_back(v);
        }
        state.registrations[epc] = std::move(dims);
      }
      uint64_t num_open = 0;
      FC_RETURN_IF_ERROR(ReadCount(r, &num_open));
      for (uint64_t i = 0; i < num_open; ++i) {
        uint64_t epc = 0;
        FC_RETURN_IF_ERROR(r->U64(&epc));
        uint64_t num_readings = 0;
        FC_RETURN_IF_ERROR(ReadCount(r, &num_readings));
        std::vector<RawReading>& readings = state.open_readings[epc];
        for (uint64_t j = 0; j < num_readings; ++j) {
          RawReading reading;
          reading.epc = epc;
          FC_RETURN_IF_ERROR(r->U32(&reading.location));
          FC_RETURN_IF_ERROR(r->I64(&reading.timestamp));
          if (reading.location >= s.locations.NodeCount()) {
            return Corrupt("buffered reading location out of range");
          }
          readings.push_back(reading);
        }
      }
      FC_RETURN_IF_ERROR(r->I64(&state.watermark));
      FC_RETURN_IF_ERROR(r->U64(&state.batches_processed));
      restored.ingestor_state = std::move(state);
    }

    if (!r->AtEnd()) return Corrupt("trailing bytes after payload");
    return restored;
  }
};

std::string EncodeCheckpoint(const IncrementalMaintainer& maintainer,
                             const IngestorState* ingestor_state) {
  TraceSpan span("stream.checkpoint.save");
  ByteWriter payload;
  CheckpointCodec::EncodePayload(maintainer, ingestor_state, &payload);
  ByteWriter out;
  out.U32(kCheckpointMagic);
  out.U32(kCheckpointVersion);
  out.U32(Crc32(payload.data()));
  out.Str(payload.data());  // u64 payload size + payload bytes
  MetricRegistry& reg = MetricRegistry::Global();
  static Counter& m_saves = reg.counter("stream.checkpoint.saves");
  static Counter& m_bytes = reg.counter("stream.checkpoint.bytes_written");
  m_saves.Increment();
  m_bytes.Add(out.size());
  return out.data();
}

Result<RestoredPipeline> DecodeCheckpoint(
    std::string_view bytes, SchemaPtr schema, FlowCubePlan plan,
    IncrementalMaintainerOptions options) {
  TraceSpan span("stream.checkpoint.restore");
  ByteReader r(bytes);
  uint32_t magic = 0;
  if (!r.U32(&magic).ok() || magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a flowcube checkpoint (bad magic)");
  }
  uint32_t version = 0;
  FC_RETURN_IF_ERROR(r.U32(&version));
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  uint32_t crc = 0;
  FC_RETURN_IF_ERROR(r.U32(&crc));
  std::string payload;
  if (!r.Str(&payload).ok()) {
    return Corrupt("payload truncated");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes after payload");
  if (Crc32(payload) != crc) {
    return Corrupt("payload checksum mismatch");
  }
  ByteReader pr(payload);
  Result<RestoredPipeline> restored = CheckpointCodec::DecodePayload(
      &pr, std::move(schema), std::move(plan), options);
  if (restored.ok()) {
    MetricRegistry::Global().counter("stream.checkpoint.restores").Increment();
  }
  return restored;
}

Status SaveCheckpoint(const IncrementalMaintainer& maintainer,
                      const IngestorState* ingestor_state,
                      const std::string& filename) {
  const std::string bytes = EncodeCheckpoint(maintainer, ingestor_state);
  std::ofstream out(filename, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + filename + " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good() ? Status::OK()
                    : Status::Internal("checkpoint write failed");
}

Result<RestoredPipeline> LoadCheckpoint(const std::string& filename,
                                        SchemaPtr schema, FlowCubePlan plan,
                                        IncrementalMaintainerOptions options) {
  std::ifstream in(filename, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + filename);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("checkpoint read failed");
  }
  return DecodeCheckpoint(buffer.str(), std::move(schema), std::move(plan),
                          options);
}

}  // namespace flowcube
