#ifndef FLOWCUBE_STORE_FORMAT_H_
#define FLOWCUBE_STORE_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "flowgraph/flowgraph.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {

// FCSP v2: the out-of-core checkpoint layout (DESIGN.md §16). Where v1
// stores a field-by-field serialization that must be decoded into freshly
// allocated structures, the v2 payload *is* the sealed columnar arenas —
// every internal pointer rewritten as a base-relative u64 offset into one
// aligned, CRC-protected blob — so a loader can mmap the file and serve
// queries straight out of the mapping (store/mapped_cube.h).
//
// File layout (all integers little-endian; offsets from the file start):
//
//   [0, 96)                 header (fixed size, kFcspV2HeaderSize)
//   [96, 96 + meta_size)    meta stream: cuboid grid shape, per-cuboid
//                           element counts + column offsets, per-cell
//                           exception lists (ByteWriter encoding)
//   [.., arena_offset)      zero padding to a 64-byte boundary
//   [arena_offset, +size)   column arena: the raw little-endian columns,
//                           each aligned to its element type
//   [resume_offset, +size)  resume section: live path records + optional
//                           ingestor state (absent in cube-only files)
//
// Header fields (byte offset, type):
//    0  u32  magic "FCSP" (shared with v1)
//    4  u32  version = 2
//    8  u32  header CRC-32 of bytes [12, 96)
//   12  u32  config fingerprint (schema shape + plan + options)
//   16  u64  file size
//   24  u64  meta offset (always 96)
//   32  u64  meta size
//   40  u32  meta CRC-32
//   44  u32  arena CRC-32
//   48  u64  arena offset (64-byte aligned)
//   56  u64  arena size
//   64  u64  resume offset (0 when the file carries no resume section)
//   72  u64  resume size
//   80  u32  resume CRC-32
//   84  u32  reserved, must be 0
//   88  u64  live record count (equals the resume section's record count)
//
// The layout is *canonical*: every section offset is a pure function of the
// section sizes (meta at 96, arena at the next 64-byte boundary, resume
// immediately after the arena), padding is zeroed, and the arena's column
// offsets are the deterministic packing ExpectedCuboidLayout computes
// (cube_codec.h). Validation enforces canonical form, which is what makes
// "decode then re-encode" byte-identical — the fuzz oracle's fixed point.

// "FCSP", same magic as v1 (stream/checkpoint.h kCheckpointMagic).
inline constexpr uint32_t kFcspMagic = 0x50534346;
inline constexpr uint32_t kFcspFormatV1 = 1;
inline constexpr uint32_t kFcspFormatV2 = 2;
inline constexpr size_t kFcspV2HeaderSize = 96;
inline constexpr size_t kFcspArenaAlignment = 64;

// Mapped columns are reinterpreted in place, so the element layouts are
// part of the on-disk contract. DurationCount is written element-wise
// (i64 duration, u32 count, u32 zero padding) and read back by
// reinterpreting 16-byte records.
static_assert(std::endian::native == std::endian::little,
              "FCSP v2 mapped columns require a little-endian host");
static_assert(sizeof(DurationCount) == 16 && alignof(DurationCount) == 8,
              "DurationCount on-disk layout drifted");
static_assert(offsetof(DurationCount, duration) == 0 &&
                  offsetof(DurationCount, count) == 8,
              "DurationCount field offsets drifted");
static_assert(sizeof(FlowNodeId) == 4 && sizeof(ItemId) == 4 &&
                  sizeof(NodeId) == 4 && sizeof(Duration) == 8,
              "column element widths are part of the FCSP v2 contract");

inline constexpr uint64_t FcspAlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

// Decoded v2 header (everything but the magic/version/CRC plumbing).
struct FcspV2Header {
  uint32_t config_fingerprint = 0;
  uint64_t file_size = 0;
  uint64_t meta_offset = 0;
  uint64_t meta_size = 0;
  uint32_t meta_crc = 0;
  uint32_t arena_crc = 0;
  uint64_t arena_offset = 0;
  uint64_t arena_size = 0;
  uint64_t resume_offset = 0;
  uint64_t resume_size = 0;
  uint32_t resume_crc = 0;
  uint64_t live_records = 0;
};

// Serializes the fixed 96-byte header, computing the header CRC.
std::string EncodeV2Header(const FcspV2Header& h);

// Parses the header of a v2 file and validates everything that does not
// require reading the sections: magic, version, header CRC, declared file
// size against bytes.size(), canonical section layout (meta at 96,
// 64-aligned arena immediately after, resume last or absent), zeroed
// inter-section padding, and the reserved word. Section CRCs are the
// caller's call (MappedCubeOptions::verify_crc / the strict restore path).
// Every failure is an InvalidArgument with a distinct message.
Status ValidateV2Header(std::string_view bytes, FcspV2Header* out);

// Reads the magic/version prefix without validating anything else. False
// when `bytes` is too short or the magic does not match.
bool PeekFcspVersion(std::string_view bytes, uint32_t* version);

// Fingerprint of (schema shape, plan, maintainer options) — the config a
// checkpoint is only valid against. Shared by v1 (in the payload) and v2
// (in the header); the byte recipe must never change, or existing
// checkpoints stop validating.
uint32_t CheckpointConfigFingerprint(const PathSchema& schema,
                                     const FlowCubePlan& plan,
                                     const IncrementalMaintainerOptions& opts);

}  // namespace flowcube

#endif  // FLOWCUBE_STORE_FORMAT_H_
