#include "store/format.h"

#include <string>

#include "common/logging.h"
#include "io/binary_io.h"

namespace flowcube {

namespace {

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt v2 checkpoint: ") +
                                 what);
}

}  // namespace

std::string EncodeV2Header(const FcspV2Header& h) {
  ByteWriter body;  // bytes [12, 96) — what the header CRC covers
  body.U32(h.config_fingerprint);
  body.U64(h.file_size);
  body.U64(h.meta_offset);
  body.U64(h.meta_size);
  body.U32(h.meta_crc);
  body.U32(h.arena_crc);
  body.U64(h.arena_offset);
  body.U64(h.arena_size);
  body.U64(h.resume_offset);
  body.U64(h.resume_size);
  body.U32(h.resume_crc);
  body.U32(0);  // reserved
  body.U64(h.live_records);
  FC_CHECK(body.size() == kFcspV2HeaderSize - 12);

  ByteWriter out;
  out.U32(kFcspMagic);
  out.U32(kFcspFormatV2);
  out.U32(Crc32(body.data()));
  std::string bytes = out.data();
  bytes += body.data();
  return bytes;
}

Status ValidateV2Header(std::string_view bytes, FcspV2Header* out) {
  if (bytes.size() < kFcspV2HeaderSize) return Corrupt("truncated header");
  ByteReader r(bytes.substr(0, kFcspV2HeaderSize));
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t header_crc = 0;
  FC_RETURN_IF_ERROR(r.U32(&magic));
  if (magic != kFcspMagic) {
    return Status::InvalidArgument("not a flowcube checkpoint (bad magic)");
  }
  FC_RETURN_IF_ERROR(r.U32(&version));
  if (version != kFcspFormatV2) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  FC_RETURN_IF_ERROR(r.U32(&header_crc));
  if (Crc32(bytes.substr(12, kFcspV2HeaderSize - 12)) != header_crc) {
    return Corrupt("header checksum mismatch");
  }

  FcspV2Header h;
  uint32_t reserved = 0;
  FC_RETURN_IF_ERROR(r.U32(&h.config_fingerprint));
  FC_RETURN_IF_ERROR(r.U64(&h.file_size));
  FC_RETURN_IF_ERROR(r.U64(&h.meta_offset));
  FC_RETURN_IF_ERROR(r.U64(&h.meta_size));
  FC_RETURN_IF_ERROR(r.U32(&h.meta_crc));
  FC_RETURN_IF_ERROR(r.U32(&h.arena_crc));
  FC_RETURN_IF_ERROR(r.U64(&h.arena_offset));
  FC_RETURN_IF_ERROR(r.U64(&h.arena_size));
  FC_RETURN_IF_ERROR(r.U64(&h.resume_offset));
  FC_RETURN_IF_ERROR(r.U64(&h.resume_size));
  FC_RETURN_IF_ERROR(r.U32(&h.resume_crc));
  FC_RETURN_IF_ERROR(r.U32(&reserved));
  FC_RETURN_IF_ERROR(r.U64(&h.live_records));

  if (reserved != 0) return Corrupt("reserved header field is not zero");
  if (h.file_size != bytes.size()) {
    return Corrupt("file size disagrees with header");
  }
  if (h.meta_offset != kFcspV2HeaderSize) {
    return Corrupt("meta section is not at the canonical offset");
  }
  if (h.meta_size > bytes.size() - kFcspV2HeaderSize) {
    return Corrupt("meta section exceeds the file");
  }
  // Canonical layout: the arena starts at the first 64-byte boundary after
  // the meta stream, and the resume section (when present) follows it
  // immediately — offsets are a pure function of the section sizes, which
  // is what makes re-encoding a decoded file byte-identical.
  const uint64_t canonical_arena =
      FcspAlignUp(kFcspV2HeaderSize + h.meta_size, kFcspArenaAlignment);
  if (h.arena_offset != canonical_arena) {
    return Corrupt("arena is not at the canonical aligned offset");
  }
  if (h.arena_offset > bytes.size() ||
      h.arena_size > bytes.size() - h.arena_offset) {
    return Corrupt("arena section exceeds the file");
  }
  const uint64_t arena_end = h.arena_offset + h.arena_size;
  if (h.resume_size == 0) {
    if (h.resume_offset != 0 || h.resume_crc != 0) {
      return Corrupt("empty resume section with nonzero offset or checksum");
    }
    if (arena_end != bytes.size()) {
      return Corrupt("file size disagrees with the section sizes");
    }
  } else {
    if (h.resume_offset != arena_end) {
      return Corrupt("resume section is not at the canonical offset");
    }
    if (bytes.size() - h.resume_offset != h.resume_size) {
      return Corrupt("file size disagrees with the section sizes");
    }
  }
  for (uint64_t i = kFcspV2HeaderSize + h.meta_size; i < h.arena_offset; ++i) {
    if (bytes[i] != 0) return Corrupt("nonzero padding between sections");
  }
  if (out != nullptr) *out = h;
  return Status::OK();
}

bool PeekFcspVersion(std::string_view bytes, uint32_t* version) {
  ByteReader r(bytes);
  uint32_t magic = 0;
  uint32_t v = 0;
  if (!r.U32(&magic).ok() || magic != kFcspMagic) return false;
  if (!r.U32(&v).ok()) return false;
  if (version != nullptr) *version = v;
  return true;
}

uint32_t CheckpointConfigFingerprint(const PathSchema& schema,
                                     const FlowCubePlan& plan,
                                     const IncrementalMaintainerOptions& opts) {
  ByteWriter w;
  w.U64(schema.num_dimensions());
  for (const ConceptHierarchy& h : schema.dimensions) {
    w.U64(h.NodeCount());
    w.U32(static_cast<uint32_t>(h.MaxLevel()));
  }
  w.U64(schema.locations.NodeCount());
  w.U32(static_cast<uint32_t>(schema.locations.MaxLevel()));
  w.U64(schema.durations.factors().size());
  for (int64_t f : schema.durations.factors()) w.I64(f);

  w.U64(plan.mining.dim_levels.size());
  for (const std::vector<int>& levels : plan.mining.dim_levels) {
    w.U64(levels.size());
    for (int l : levels) w.U32(static_cast<uint32_t>(l));
  }
  w.U64(plan.mining.cuts.size());
  for (const LocationCut& cut : plan.mining.cuts) {
    w.U64(cut.nodes().size());
    for (NodeId n : cut.nodes()) w.U32(n);
  }
  w.U64(plan.mining.path_levels.size());
  for (const PathLevel& pl : plan.mining.path_levels) {
    w.U32(static_cast<uint32_t>(pl.cut_index));
    w.U32(static_cast<uint32_t>(pl.duration_level));
  }
  w.U64(plan.item_levels.size());
  for (const ItemLevel& il : plan.item_levels) {
    w.U64(il.levels.size());
    for (int l : il.levels) w.U32(static_cast<uint32_t>(l));
  }
  w.U64(plan.path_levels.size());
  for (int p : plan.path_levels) w.U32(static_cast<uint32_t>(p));

  w.U32(opts.build.min_support);
  w.U8(opts.build.compute_exceptions ? 1 : 0);
  w.F64(opts.build.exceptions.epsilon);
  w.U32(opts.build.exceptions.min_support);
  w.U8(opts.build.mark_redundant ? 1 : 0);
  w.F64(opts.build.redundancy_tau);
  w.U8(static_cast<uint8_t>(opts.build.similarity.kind));
  w.F64(opts.build.similarity.kl_smoothing);
  w.U32(opts.window_records);
  return Crc32(w.data());
}

}  // namespace flowcube
