#include "store/arena_writer.h"

#include <cstring>

namespace flowcube {

uint64_t ArenaWriter::AppendDurations(std::span<const DurationCount> values) {
  AlignTo(alignof(DurationCount));
  const uint64_t offset = buf_.size();
  buf_.resize(buf_.size() + values.size() * sizeof(DurationCount), '\0');
  char* out = buf_.data() + offset;
  for (const DurationCount& dc : values) {
    const int64_t d = dc.duration;
    const uint32_t c = dc.count;
    std::memcpy(out, &d, sizeof(d));
    std::memcpy(out + 8, &c, sizeof(c));
    // Bytes [12, 16) stay zero from the resize.
    out += sizeof(DurationCount);
  }
  return offset;
}

}  // namespace flowcube
