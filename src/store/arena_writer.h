#ifndef FLOWCUBE_STORE_ARENA_WRITER_H_
#define FLOWCUBE_STORE_ARENA_WRITER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>

#include "flowgraph/flowgraph.h"
#include "store/format.h"

namespace flowcube {

// Builds the FCSP v2 column arena: a flat byte buffer of raw little-endian
// columns, each aligned to its element type so a mapped loader can
// reinterpret them in place. Padding bytes are always zeroed — the arena is
// CRC-covered, and canonical-form validation rejects nonzero fill.
class ArenaWriter {
 public:
  // Zero-pads the cursor up to a multiple of `align` (a power of two).
  void AlignTo(size_t align) {
    buf_.resize(FcspAlignUp(buf_.size(), align), '\0');
  }

  // Appends a column of trivially copyable elements with no internal
  // padding, aligned to the element type. Returns the arena-relative byte
  // offset of the first element.
  template <typename T>
  uint64_t Append(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::has_unique_object_representations_v<T>,
                  "column elements must have a unique byte representation");
    AlignTo(alignof(T));
    const uint64_t offset = buf_.size();
    buf_.append(reinterpret_cast<const char*>(values.data()),
                values.size_bytes());
    return offset;
  }

  // DurationCount carries 4 bytes of struct padding, so a raw memcpy would
  // leak indeterminate bytes into the CRC-covered arena. Each record is
  // written element-wise instead: i64 duration, u32 count, u32 zero.
  uint64_t AppendDurations(std::span<const DurationCount> values);

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }

 private:
  std::string buf_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_STORE_ARENA_WRITER_H_
