#include "store/upgrade.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "io/binary_io.h"
#include "stream/checkpoint.h"

namespace flowcube {

namespace {

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt checkpoint: ") + what);
}

Status CorruptV2(const char* what) {
  return Status::InvalidArgument(std::string("corrupt v2 checkpoint: ") +
                                 what);
}

Result<std::string> ReadFile(const std::string& filename) {
  std::ifstream in(filename, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + filename);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("checkpoint read failed");
  }
  return buffer.str();
}

}  // namespace

Result<CheckpointFileInfo> InspectCheckpointFile(const std::string& filename) {
  Result<std::string> bytes = ReadFile(filename);
  if (!bytes.ok()) return bytes.status();
  const std::string& data = bytes.value();

  CheckpointFileInfo info;
  info.file_size = data.size();

  ByteReader r(data);
  uint32_t magic = 0;
  if (!r.U32(&magic).ok() || magic != kFcspMagic) {
    return Status::InvalidArgument("not a flowcube checkpoint (bad magic)");
  }
  uint32_t version = 0;
  FC_RETURN_IF_ERROR(r.U32(&version));

  if (version == kFcspFormatV2) {
    FcspV2Header h;
    FC_RETURN_IF_ERROR(ValidateV2Header(data, &h));
    if (Crc32(std::string_view(data).substr(h.meta_offset, h.meta_size)) !=
        h.meta_crc) {
      return CorruptV2("meta checksum mismatch");
    }
    if (Crc32(std::string_view(data).substr(h.arena_offset, h.arena_size)) !=
        h.arena_crc) {
      return CorruptV2("arena checksum mismatch");
    }
    if (h.resume_size != 0 &&
        Crc32(std::string_view(data).substr(h.resume_offset,
                                            h.resume_size)) != h.resume_crc) {
      return CorruptV2("resume checksum mismatch");
    }
    info.format = kFcspFormatV2;
    info.config_fingerprint = h.config_fingerprint;
    info.live_records = h.live_records;
    info.meta_size = h.meta_size;
    info.arena_size = h.arena_size;
    info.resume_size = h.resume_size;
    return info;
  }

  if (version != kFcspFormatV1) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }

  uint32_t crc = 0;
  FC_RETURN_IF_ERROR(r.U32(&crc));
  std::string payload;
  if (!r.Str(&payload).ok()) {
    return Corrupt("payload truncated");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes after payload");
  if (Crc32(payload) != crc) {
    return Corrupt("payload checksum mismatch");
  }
  ByteReader pr(payload);
  uint64_t live = 0;
  if (!pr.U32(&info.config_fingerprint).ok() || !pr.U64(&live).ok()) {
    return Corrupt("payload truncated");
  }
  info.format = kFcspFormatV1;
  info.live_records = live;
  info.resume_size = payload.size();
  return info;
}

Status UpgradeCheckpointFile(const std::string& in, const std::string& out,
                             SchemaPtr schema, const FlowCubePlan& plan,
                             const IncrementalMaintainerOptions& options,
                             uint32_t format) {
  Result<RestoredPipeline> restored =
      LoadCheckpoint(in, std::move(schema), plan, options);
  if (!restored.ok()) return restored.status();
  const IngestorState* ing = restored.value().ingestor_state.has_value()
                                 ? &*restored.value().ingestor_state
                                 : nullptr;
  return SaveCheckpoint(restored.value().maintainer, ing, out, format);
}

}  // namespace flowcube
